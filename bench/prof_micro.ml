(* Micro-benchmark for the profiler's attribution paths. The two numbers
   bound what [Obs.Prof.note] can cost a synthesized interface: the fast
   path (same region as the previous call) and the switch path (a loop
   body straddling a region boundary, the ping-pong worst case). The
   bench harness's `profiler` section measures the same costs end to end;
   this isolates them when the end-to-end number needs explaining. *)

let () =
  let p = Obs.Prof.create () in
  let n = 50_000_000 in
  let t0 = Unix.gettimeofday () in
  for i = 1 to n do
    Obs.Prof.note p ~pc:(Int64.of_int (0x1000 + (i land 63))) ~instrs:1
  done;
  let dt = Unix.gettimeofday () -. t0 in
  Printf.printf "note fast path: %.1f ns/call\n" (dt /. float_of_int n *. 1e9);
  let p2 = Obs.Prof.create () in
  let t0 = Unix.gettimeofday () in
  for i = 1 to n do
    Obs.Prof.note p2 ~pc:(Int64.of_int (0x1000 + ((i land 1) lsl 6))) ~instrs:1
  done;
  let dt = Unix.gettimeofday () -. t0 in
  Printf.printf "note switch path: %.1f ns/call\n" (dt /. float_of_int n *. 1e9)
