(* Benchmark harness: regenerates every table and figure of the paper's
   evaluation (Penry, ISPASS 2011).

     dune exec bench/main.exe              -- everything, paper-vs-measured
     dune exec bench/main.exe -- --quick   -- smaller budgets
     dune exec bench/main.exe -- table2    -- a single experiment
     dune exec bench/main.exe -- --bechamel -- Bechamel micro-benchmarks

   Experiments: table1 table2 table3 dispatch fig1 fig24 ablation sampling
   inject fuzz overhead profiler supervision workload validate.
   [--gate-profiler]
   exits nonzero when the profiler section's overhead exceeds its budget.
   Absolute numbers are host- and substrate-dependent; the reproduction
   targets are the *shapes*: which interface wins, by roughly what factor,
   and where the costs come from. See EXPERIMENTS.md.

   Alongside the text tables, a machine-readable BENCH_results.json is
   written to the working directory: per-interface MIPS and ns/instr
   (table2), the observability overhead measurements, and a full counter
   snapshot per interface. *)

let quick = ref false
let only : string list ref = ref []
let use_bechamel = ref false

(* ------------------------------------------------------------------ *)
(* Measurement helpers                                                  *)
(* ------------------------------------------------------------------ *)

(* Drive an interface the way its semantic level intends: block calls,
   single calls, or seven step calls per instruction. *)
let drive (iface : Specsim.Iface.t) budget =
  let n_eps = Specsim.Iface.n_entrypoints iface in
  if n_eps = 1 then Specsim.Iface.run_n iface budget
  else begin
    let st = iface.st in
    let start = st.instr_count in
    let di = Specsim.Di.create ~info_slots:iface.slots.di_size in
    let executed () = Int64.to_int (Int64.sub st.instr_count start) in
    while (not st.halted) && executed () < budget do
      di.pc <- st.pc;
      di.instr_index <- -1;
      di.fault <- None;
      let k = ref 0 in
      while !k < n_eps && not st.halted do
        iface.step di !k;
        incr k
      done;
      if not st.halted then iface.retire di
    done;
    executed ()
  end

(* Measured MIPS of one (target, buildset, kernel) after warmup: best of
   [reps] runs (the machine may be shared; peak throughput is the stable
   statistic). [chain]/[site_cache] select the block-engine dispatch
   configuration (defaults on — see the dispatch experiment). *)
let measure_mips ?chain ?site_cache ?absint (t : Workload.target) ~buildset
    (k : Vir.Kernels.sized) =
  let warm = if !quick then 5_000 else 20_000 in
  let budget = if !quick then 80_000 else 150_000 in
  let reps = if !quick then 2 else 4 in
  let best = ref 0. in
  for _ = 1 to reps do
    let l = Workload.load ?chain ?site_cache ?absint t ~buildset k.program in
    ignore (drive l.iface warm);
    Gc.full_major ();
    let t0 = Unix.gettimeofday () in
    let n = drive l.iface budget in
    let dt = Unix.gettimeofday () -. t0 in
    let mips = if n = 0 then 0. else float_of_int n /. dt /. 1e6 in
    if mips > !best then best := mips
  done;
  !best

(* Machine-readable results, accumulated per experiment and written as
   one JSON document at the end of the run. *)
let json_sections : (string * Obs.Export.json) list ref = ref []

let add_json name j =
  json_sections := (name, j) :: List.remove_assoc name !json_sections

(* A partial run (e.g. `bench absint`) must not clobber the sections an
   earlier full run wrote: merge over whatever is already on disk. *)
let write_json_results () =
  if !json_sections <> [] then begin
    let existing =
      match
        let ic = open_in "BENCH_results.json" in
        let n = in_channel_length ic in
        let s = really_input_string ic n in
        close_in ic;
        Obs.Export.parse_opt s
      with
      | Some (Obs.Export.Obj kvs) -> kvs
      | Some _ | None -> []
      | exception Sys_error _ -> []
    in
    let fresh = List.rev !json_sections in
    let kept =
      List.filter (fun (name, _) -> not (List.mem_assoc name fresh)) existing
    in
    let merged = kept @ fresh in
    let oc = open_out "BENCH_results.json" in
    Obs.Export.to_channel oc (Obs.Export.Obj merged);
    output_char oc '\n';
    close_out oc;
    Printf.printf "wrote BENCH_results.json (%d sections, %d updated)\n"
      (List.length merged) (List.length fresh)
  end

let geomean = function
  | [] -> 0.
  | xs ->
    exp
      (List.fold_left (fun a x -> a +. log (max x 1e-9)) 0. xs
      /. float_of_int (List.length xs))

let kernels () =
  if !quick then
    [ List.hd Vir.Kernels.bench_suite; List.nth Vir.Kernels.bench_suite 4 ]
  else Vir.Kernels.bench_suite

(* Calibrated host "simple operation" rate (ops per second), used to
   express costs in host-op equivalents for Table III. *)
let host_ops_per_sec =
  lazy
    (let n = 100_000_000 in
     let acc = ref 0 in
     let t0 = Unix.gettimeofday () in
     for i = 1 to n do
       acc := !acc + (i lxor (!acc lsl 1))
     done;
     let dt = Unix.gettimeofday () -. t0 in
     ignore (Sys.opaque_identity !acc);
     (* the loop body is ~4 machine ops *)
     float_of_int (4 * n) /. dt)

(* ------------------------------------------------------------------ *)
(* Table I: instruction-set characteristics                             *)
(* ------------------------------------------------------------------ *)

let paper_table1 =
  (* ISA lines, OS lines, buildset lines, lines/buildset, #instrs *)
  [
    ("alpha", (1656, 317, 308, 13., 200));
    ("arm", (2047, 225, 308, 13., 240));
    ("ppc", (3805, 182, 327, 14., 327));
  ]

let table1 () =
  print_endline "=== Table I: instruction-set characteristics ===";
  print_endline
    "                      ----------- measured -----------    ------- paper -------";
  Printf.printf "%-6s %9s %8s %9s %8s %7s | %6s %5s %7s %7s\n" "ISA" "ISA-lines"
    "OS-lines" "bs-lines" "lines/bs" "instrs" "ISA" "OS" "per-bs" "instrs";
  List.iter
    (fun (t : Workload.target) ->
      let spec = Lazy.force t.spec in
      let s = spec.line_stats in
      let paper =
        (* riscv post-dates the paper's evaluation: no reference row *)
        match List.assoc_opt t.tname paper_table1 with
        | Some (p_isa, p_os, _, p_per, p_n) ->
          Printf.sprintf "%6d %5d %7.0f %7d" p_isa p_os p_per p_n
        | None -> Printf.sprintf "%6s %5s %7s %7s" "-" "-" "-" "-"
      in
      Printf.printf "%-6s %9d %8d %9d %8.1f %7d | %s\n" t.tname s.isa_lines
        s.os_lines s.buildset_lines
        (Lis.Count.lines_per_buildset s)
        (Array.length spec.instrs)
        paper)
    Workload.targets;
  print_endline
    "(our subsets are smaller than the full ISAs, but the structure matches:\n\
    \ an OS-support file of a few dozen lines and ~6-12 lines per buildset)\n"

(* ------------------------------------------------------------------ *)
(* Table II: simulation speed per interface                             *)
(* ------------------------------------------------------------------ *)

(* Paper values where the source table is legible; None = garbled in our
   copy of the text (see EXPERIMENTS.md). *)
let paper_table2 : (string * float option array) list =
  [
    ("block_min", [| Some 37.8; Some 26.8; Some 19.3 |]);
    ("block_decode", [| None; None; None |]);
    ("block_decode_spec", [| None; None; None |]);
    ("block_all", [| None; None; None |]);
    ("block_all_spec", [| None; None; None |]);
    ("one_min", [| None; None; None |]);
    ("one_decode", [| None; None; None |]);
    ("one_decode_spec", [| None; None; None |]);
    ("one_all", [| Some 7.47; Some 6.19; Some 5.61 |]);
    ("one_all_spec", [| Some 6.92; Some 5.53; Some 5.15 |]);
    ("step_all", [| Some 2.79; Some 2.54; Some 2.34 |]);
    ("step_all_spec", [| Some 2.62; Some 2.35; Some 2.20 |]);
  ]

let table2_results : (string * float array) list ref = ref []

let table2 () =
  print_endline "=== Table II: simulation speed (MIPS) ===";
  print_endline
    "geometric mean over the benchmark kernels; paper values in parentheses\n\
     where the source is legible";
  Printf.printf "%-20s" "interface";
  List.iter
    (fun (t : Workload.target) -> Printf.printf " %17s" t.tname)
    Workload.targets;
  print_newline ();
  let interfaces = List.map fst paper_table2 in
  let results =
    List.map
      (fun bs ->
        let row =
          Array.of_list
            (List.map
               (fun t ->
                 geomean
                   (List.map (fun k -> measure_mips t ~buildset:bs k) (kernels ())))
               Workload.targets)
        in
        (bs, row))
      interfaces
  in
  table2_results := results;
  add_json "table2"
    (Obs.Export.Obj
       (List.map
          (fun (bs, row) ->
            ( bs,
              Obs.Export.Obj
                (List.mapi
                   (fun i (t : Workload.target) ->
                     let mips = row.(i) in
                     ( t.tname,
                       Obs.Export.Obj
                         [
                           ("mips", Obs.Export.Float mips);
                           ( "ns_per_instr",
                             Obs.Export.Float
                               (if mips <= 0. then 0. else 1e3 /. mips) );
                         ] ))
                   Workload.targets) ))
          results));
  List.iter
    (fun (bs, row) ->
      let paper = List.assoc bs paper_table2 in
      Printf.printf "%-20s" bs;
      Array.iteri
        (fun i v ->
          (* the paper's rows stop at ppc; riscv has no reference cell *)
          let p =
            match if i < Array.length paper then paper.(i) else None with
            | Some x -> Printf.sprintf "(%5.2f)" x
            | None -> "(  -  )"
          in
          Printf.printf " %8.2f %s" v p)
        row;
      print_newline ())
    results;
  (* headline ratio *)
  let get name i = (List.assoc name results).(i) in
  print_string "\nlowest/highest-detail speed ratio:";
  List.iteri
    (fun i (t : Workload.target) ->
      Printf.printf "%s %s %.1fx"
        (if i = 0 then "" else ",")
        t.tname
        (get "block_min" i /. get "step_all_spec" i))
    Workload.targets;
  print_endline " (paper: up to 14.4x)\n"

(* ------------------------------------------------------------------ *)
(* Table III: costs of detail (host-op equivalents)                     *)
(* ------------------------------------------------------------------ *)

let paper_table3 =
  [
    ("base cost (One/Min/No)", [| 103.98; 134.95; 143.61 |]);
    ("incremental: decode information", [| 46.17; 53.77; 63.10 |]);
    ("incremental: full information", [| 150.51; 268.48; 221.5 |]);
    ("incremental: block-call", [| -52.28; -49.73; -49.87 |]);
    ("incremental: multiple calls", [| 237.7; 222.7; 213.1 |]);
    ("incremental: speculation", [| 14.75; 32.66; 27.32 |]);
  ]

let table3 () =
  print_endline
    "=== Table III: costs of detail (host ops per simulated instruction) ===";
  if !table2_results = [] then table2 ();
  let results = !table2_results in
  let hz = Lazy.force host_ops_per_sec in
  Printf.printf "host calibration: %.2f Gops/s\n" (hz /. 1e9);
  let cost bs i =
    let mips = (List.assoc bs results).(i) in
    if mips <= 0. then nan else hz /. (mips *. 1e6)
  in
  let rows =
    [
      ("base cost (One/Min/No)", fun i -> cost "one_min" i);
      ( "incremental: decode information",
        fun i -> cost "one_decode" i -. cost "one_min" i );
      ( "incremental: full information",
        fun i -> cost "one_all" i -. cost "one_min" i );
      ("incremental: block-call", fun i -> cost "block_min" i -. cost "one_min" i);
      ( "incremental: multiple calls",
        fun i -> cost "step_all" i -. cost "one_all" i );
      ( "incremental: speculation",
        fun i ->
          (cost "one_all_spec" i -. cost "one_all" i
          +. (cost "one_decode_spec" i -. cost "one_decode" i)
          +. (cost "block_all_spec" i -. cost "block_all" i))
          /. 3. );
    ]
  in
  let measured_hdr =
    String.concat "/"
      (List.map (fun (t : Workload.target) -> t.tname) Workload.targets)
  in
  Printf.printf "%-34s %37s | %s\n" ""
    ("measured (" ^ measured_hdr ^ ")")
    "paper (alpha/arm/ppc)";
  List.iter
    (fun (name, f) ->
      let paper = List.assoc name paper_table3 in
      Printf.printf "%-34s" name;
      List.iteri
        (fun i (_ : Workload.target) -> Printf.printf " %8.1f" (f i))
        Workload.targets;
      Printf.printf " | %7.2f %7.2f %7.2f\n" paper.(0) paper.(1) paper.(2))
    rows;
  print_endline
    "(signs and ordering are the reproduction target: block-calls pay back,\n\
    \ extra information and extra calls cost)\n"

(* ------------------------------------------------------------------ *)
(* Dispatch: the block engine's translation cache, A/B                  *)
(* ------------------------------------------------------------------ *)

(* Before = chaining and site sharing disabled (every dispatch probes
   the block hash table, every block compiles its own sites, loads and
   stores cross the paged-memory abstraction) — the pre-translation-
   cache engine. After = the defaults. The rates come from a separate
   counted pass over the same kernels. *)
let dispatch () =
  print_endline
    "=== Dispatch: block-engine translation cache (chaining, site sharing, \
     per-site TLB) ===";
  let block_rows =
    List.filter_map
      (fun (bs, _) ->
        if String.length bs >= 5 && String.equal (String.sub bs 0 5) "block"
        then Some bs
        else None)
      paper_table2
  in
  let stat_budget = if !quick then 30_000 else 100_000 in
  let rate a b =
    if a + b = 0 then 0. else 100. *. float_of_int a /. float_of_int (a + b)
  in
  Printf.printf "%-20s %-6s %8s %8s %8s %7s %7s %12s\n" "interface" "isa"
    "before" "after" "speedup" "chain%" "blkhit%" "site-reuse";
  let sections =
    List.map
      (fun bs ->
        let per_isa =
          List.map
            (fun (t : Workload.target) ->
              let before =
                geomean
                  (List.map
                     (fun k ->
                       measure_mips ~chain:false ~site_cache:false t
                         ~buildset:bs k)
                     (kernels ()))
              in
              let after =
                geomean
                  (List.map (fun k -> measure_mips t ~buildset:bs k) (kernels ()))
              in
              let bh = ref 0 and bc = ref 0 in
              let ct = ref 0 and cm = ref 0 in
              let sh = ref 0 and sc = ref 0 in
              List.iter
                (fun (k : Vir.Kernels.sized) ->
                  let l = Workload.load t ~buildset:bs k.program in
                  ignore (drive l.iface stat_budget);
                  let s : Specsim.Iface.stats = l.iface.stats in
                  bh := !bh + s.block_hits;
                  bc := !bc + s.blocks_compiled;
                  ct := !ct + s.chain_taken;
                  cm := !cm + s.chain_miss;
                  sh := !sh + s.site_cache_hits;
                  sc := !sc + s.sites_compiled)
                (kernels ());
              let speedup = if before <= 0. then 0. else after /. before in
              Printf.printf
                "%-20s %-6s %8.2f %8.2f %7.2fx %6.1f%% %6.1f%% %6d/%-5d\n" bs
                t.tname before after speedup (rate !ct !cm) (rate !bh !bc) !sh
                !sc;
              ( t.tname,
                Obs.Export.Obj
                  [
                    ("mips_before", Obs.Export.Float before);
                    ("mips_after", Obs.Export.Float after);
                    ("speedup", Obs.Export.Float speedup);
                    ("chain_taken", Obs.Export.Int (Int64.of_int !ct));
                    ("chain_miss", Obs.Export.Int (Int64.of_int !cm));
                    ("chain_rate_pct", Obs.Export.Float (rate !ct !cm));
                    ("block_hits", Obs.Export.Int (Int64.of_int !bh));
                    ("blocks_compiled", Obs.Export.Int (Int64.of_int !bc));
                    ("block_hit_rate_pct", Obs.Export.Float (rate !bh !bc));
                    ("site_cache_hits", Obs.Export.Int (Int64.of_int !sh));
                    ("sites_compiled", Obs.Export.Int (Int64.of_int !sc));
                    ("site_reuse_rate_pct", Obs.Export.Float (rate !sh !sc));
                  ] ))
            Workload.targets
        in
        (bs, Obs.Export.Obj per_isa))
      block_rows
  in
  add_json "dispatch" (Obs.Export.Obj sections);
  print_endline
    "(before = --no-chain --no-site-cache: hash-probe dispatch, per-block \
     site\n compilation, abstracted memory; after = chained dispatch through \
     the\n successor caches, shared (instr,encoding) sites, per-site page \
     TLBs)\n"

(* ------------------------------------------------------------------ *)
(* Figure 1: the five decoupled organizations, demonstrated             *)
(* ------------------------------------------------------------------ *)

let fig1 () =
  print_endline
    "=== Figure 1: decoupled simulator organizations (demonstrators) ===";
  let t = Workload.alpha in
  let kernel = List.nth Vir.Kernels.test_suite 3 in
  let budget = 10_000_000 in
  Printf.printf "%-28s %-12s %-10s %-8s %s\n" "organization" "interface" "instrs"
    "IPC" "notes";
  (* functional-first *)
  let l = Workload.load t ~buildset:"one_decode" kernel.program in
  let ff = Timing.Funcfirst.create l.iface in
  let r = Timing.Funcfirst.run ff ~budget in
  Printf.printf "%-28s %-12s %-10Ld %-8.3f mispredict %.1f%%, d$ miss %.1f%%\n"
    "functional-first" "One/Decode" r.instructions r.ipc
    (100. *. r.mispredict_rate)
    (100. *. r.dcache_miss_rate);
  (* timing-directed *)
  let l = Workload.load t ~buildset:"step_all" kernel.program in
  let r = Timing.Directed.run l.iface ~budget in
  Printf.printf "%-28s %-12s %-10Ld %-8.3f RAW stalls %Ld, flushes %Ld\n"
    "timing-directed" "Step/All" r.instructions r.ipc r.raw_stall_cycles
    r.branch_flushes;
  (* timing-first *)
  let lt = Workload.load t ~buildset:"one_min" kernel.program in
  let lc = Workload.load t ~buildset:"one_min" kernel.program in
  let count = ref 0 in
  let bug (st : Machine.State.t) _ =
    incr count;
    if !count mod 991 = 0 then
      Machine.Regfile.write st.regs ~cls:0 ~idx:2
        (Int64.add (Machine.Regfile.read st.regs ~cls:0 ~idx:2) 1L)
  in
  let r =
    Timing.Timingfirst.run ~bug ~timing:lt.iface ~checker:lc.iface ~budget ()
  in
  Printf.printf "%-28s %-12s %-10Ld %-8.3f %Ld mismatches caught\n"
    "timing-first (buggy model)" "One/Min" r.instructions r.ipc r.mismatches;
  (* speculative functional-first *)
  let l = Workload.load t ~buildset:"one_decode_spec" kernel.program in
  let r = Timing.Specff.run l.iface ~budget in
  Printf.printf "%-28s %-12s %-10Ld %-8.3f %Ld rollbacks\n"
    "speculative functional-first" "One/Dec/spec" r.instructions r.ipc
    r.rollbacks;
  (* sampling *)
  let spec = Lazy.force t.spec in
  let st = Lis.Spec.make_machine spec in
  let detailed = Specsim.Synth.make ~st spec "one_decode" in
  let fast = Specsim.Synth.make ~st spec "block_min" in
  let os = Machine.Os_emu.create () in
  (match spec.abi with Some abi -> Machine.Os_emu.install os abi st | None -> ());
  let words = t.encode ~base:0x1000L kernel.program in
  List.iteri
    (fun i w ->
      Machine.Memory.write st.mem
        ~addr:(Int64.add 0x1000L (Int64.of_int (4 * i)))
        ~width:4 w)
    words;
  Machine.State.reset st ~pc:0x1000L;
  let r = Timing.Sampling.run ~detailed ~fast ~budget () in
  Printf.printf "%-28s %-12s %-10Ld %-8.3f sampled %.1f%% of instructions\n\n"
    "sampling (two interfaces)" "Dec + B/Min" r.instructions r.estimated_ipc
    (100. *. r.sampled_fraction)

(* ------------------------------------------------------------------ *)
(* Figures 2-4: manual vs synthesized (ablation)                        *)
(* ------------------------------------------------------------------ *)

let demo_loop_program =
  (* long-running loop for the demo ISA: ~240k dynamic instructions *)
  Demo_isa.
    [
      addi ~ra:31 ~imm:30000 ~rc:1;
      addi ~ra:31 ~imm:0 ~rc:2;
      add ~ra:2 ~rb:1 ~rc:2;
      mul ~ra:2 ~rb:2 ~rc:3;
      stq ~ra:31 ~imm:0x100 ~rb:3;
      ldq ~ra:31 ~imm:0x100 ~rc:4;
      addi ~ra:1 ~imm:(-1) ~rc:1;
      beqz ~ra:1 ~off:1;
      br ~off:(-7);
      addi ~ra:31 ~imm:0 ~rc:0;
      add ~ra:2 ~rb:31 ~rc:1;
      sys;
    ]

let run_demo_manual mode =
  let st = Manual.Manual_sim.make_machine () in
  let os = Machine.Os_emu.create () in
  let abi =
    { Machine.Os_emu.nr = (0, 0); args = [| (0, 1); (0, 2); (0, 3) |]; ret = (0, 0) }
  in
  Machine.Os_emu.install os abi st;
  List.iteri
    (fun i w ->
      Machine.Memory.write st.mem
        ~addr:(Int64.add 0x1000L (Int64.of_int (4 * i)))
        ~width:4 w)
    demo_loop_program;
  Machine.State.reset st ~pc:0x1000L;
  let t0 = Unix.gettimeofday () in
  (match mode with
  | `Full ->
    let di = Manual.Manual_sim.Fig2.create () in
    while not st.halted do
      Manual.Manual_sim.do_in_one st di
    done
  | `Min ->
    let di = Manual.Manual_sim.min_di () in
    while not st.halted do
      Manual.Manual_sim.do_in_one_less_info st di
    done);
  let dt = Unix.gettimeofday () -. t0 in
  (Int64.to_float st.instr_count /. dt /. 1e6, st.instr_count)

let run_demo_synth buildset =
  let spec = Lazy.force Demo_isa.spec in
  let iface = Specsim.Synth.make spec buildset in
  let st = iface.st in
  let os = Machine.Os_emu.create () in
  (match spec.abi with Some abi -> Machine.Os_emu.install os abi st | None -> ());
  Demo_isa.load_program st ~base:0x1000L demo_loop_program;
  let t0 = Unix.gettimeofday () in
  let n = Specsim.Iface.run_n iface max_int in
  let dt = Unix.gettimeofday () -. t0 in
  (float_of_int n /. dt /. 1e6, Int64.of_int n)

let fig24 () =
  print_endline
    "=== Figures 2-4: manual single-specification structuring vs ADL synthesis ===";
  let m_full, n = run_demo_manual `Full in
  let m_min, _ = run_demo_manual `Min in
  let s_full, _ = run_demo_synth "one_all" in
  let s_min, _ = run_demo_synth "one_min" in
  Printf.printf "demo ISA, %Ld dynamic instructions:\n" n;
  Printf.printf "  manual Fig.3 (one call, all info)     %7.2f MIPS\n" m_full;
  Printf.printf "  manual Fig.4 (one call, less info)    %7.2f MIPS\n" m_min;
  Printf.printf "  synthesized one_all                   %7.2f MIPS\n" s_full;
  Printf.printf "  synthesized one_min                   %7.2f MIPS\n" s_min;
  Printf.printf
    "  info-detail speedup: manual %.2fx, synthesized %.2fx\n\
     (the synthesizer derives Fig.4's locals automatically; by hand it is\n\
    \ a per-instruction-step rewrite — the paper's §IV-A tedium)\n\n"
    (m_min /. m_full) (s_min /. s_full)

(* ------------------------------------------------------------------ *)
(* Ablation: interpreted vs compiled execution (paper footnote 5)       *)
(* ------------------------------------------------------------------ *)

let ablation () =
  print_endline
    "=== Ablation: interpreted vs closure-compiled execution (footnote 5) ===";
  let t = Workload.alpha in
  let k = List.nth Vir.Kernels.bench_suite 4 in
  let budget = if !quick then 60_000 else 200_000 in
  let speed backend buildset =
    let l = Workload.load ~backend t ~buildset k.program in
    ignore (Specsim.Iface.run_n l.iface 20_000);
    Gc.full_major ();
    let t0 = Unix.gettimeofday () in
    let n = Specsim.Iface.run_n l.iface budget in
    let dt = Unix.gettimeofday () -. t0 in
    float_of_int n /. dt /. 1e6
  in
  let compiled = speed Specsim.Synth.Compiled "one_min" in
  let interpreted = speed Specsim.Synth.Interpreted "one_min" in
  Printf.printf
    "One/Min/No on alpha: compiled %.2f MIPS, interpreted %.2f MIPS (%.2fx)\n"
    compiled interpreted (compiled /. interpreted);
  Printf.printf
    "(paper: 103.98 vs 205.5 host instructions per instruction, 1.98x)\n";
  (* The paper's future-work question: is specialization still worth it
     when the interface is highly detailed? *)
  let c_hi = speed Specsim.Synth.Compiled "one_all" in
  let i_hi = speed Specsim.Synth.Interpreted "one_all" in
  let c_blk = speed Specsim.Synth.Compiled "block_all" in
  let i_blk = speed Specsim.Synth.Interpreted "block_all" in
  Printf.printf
    "at high detail (One/All): compiled %.2f vs interpreted %.2f MIPS (%.2fx)\n"
    c_hi i_hi (c_hi /. i_hi);
  Printf.printf
    "at Block/All: compiled %.2f vs interpreted %.2f MIPS (%.2fx)\n" c_blk
    i_blk (c_blk /. i_blk);
  Printf.printf
    "(the paper asks whether translation pays off at high detail — here the\n\
    \ advantage persists at every level and is largest for block interfaces,\n\
    \ where specialization also removes per-instruction fetch and decode)\n\n"

(* ------------------------------------------------------------------ *)
(* Sampling accuracy: how well does the two-interface design estimate   *)
(* the detailed model's IPC?                                            *)
(* ------------------------------------------------------------------ *)

let sampling_accuracy () =
  print_endline
    "=== Sampling accuracy: detailed-interval IPC estimate vs full run ===";
  let t = Workload.alpha in
  let kernel = List.nth Vir.Kernels.bench_suite 3 (* sort *) in
  (* ground truth: every instruction through the detailed model *)
  let l = Workload.load t ~buildset:"one_decode" kernel.program in
  let ff = Timing.Funcfirst.create l.iface in
  let truth = Timing.Funcfirst.run ff ~budget:max_int in
  Printf.printf "true IPC (all %Ld instructions detailed): %.4f\n"
    truth.instructions truth.ipc;
  List.iter
    (fun (measure, fastforward) ->
      let spec = Lazy.force t.spec in
      let st = Lis.Spec.make_machine spec in
      let detailed = Specsim.Synth.make ~st spec "one_decode" in
      let fast = Specsim.Synth.make ~st spec "block_min" in
      let os = Machine.Os_emu.create () in
      (match spec.abi with
      | Some abi -> Machine.Os_emu.install os abi st
      | None -> ());
      let words = t.encode ~base:0x1000L kernel.program in
      List.iteri
        (fun i w ->
          Machine.Memory.write st.mem
            ~addr:(Int64.add 0x1000L (Int64.of_int (4 * i)))
            ~width:4 w)
        words;
      Machine.State.reset st ~pc:0x1000L;
      let t0 = Unix.gettimeofday () in
      let r =
        Timing.Sampling.run
          ~config:
            { Timing.Sampling.measure; fastforward;
              timing_model = Timing.Funcfirst.default_config }
          ~detailed ~fast ~budget:max_int ()
      in
      let dt = Unix.gettimeofday () -. t0 in
      Printf.printf
        "sampled %5.1f%%: estimated IPC %.4f (error %+.1f%%), wall %.2f MIPS\n"
        (100. *. r.sampled_fraction) r.estimated_ipc
        (100. *. (r.estimated_ipc -. truth.ipc) /. truth.ipc)
        (Int64.to_float r.instructions /. dt /. 1e6))
    [ (2_000, 8_000); (1_000, 19_000); (500, 49_500) ];
  print_endline
    "(the low-detail fast-forward interface buys wall-clock speed at a\n\
    \ small, quantified estimation error — the paper's sampling use case)\n"

(* ------------------------------------------------------------------ *)
(* Fault injection: detection coverage/latency vs rate, checker cost    *)
(* ------------------------------------------------------------------ *)

let inject () =
  print_endline
    "=== Fault injection: timing-first checker as a divergence detector ===";
  let budget = if !quick then 100_000 else 300_000 in
  let spec_trials = if !quick then 4 else 16 in
  Printf.printf "%-8s %10s %10s %10s %9s %9s %9s\n" "rate" "injected"
    "detected" "coverage" "latency" "repairs" "restores";
  List.iter
    (fun rate ->
      let cfg =
        { Inject.Campaign.default_config with rate; budget; spec_trials }
      in
      let reports =
        Inject.Campaign.run ~isas:[ "alpha"; "arm"; "ppc"; "riscv" ] cfg
      in
      let sum f = List.fold_left (fun a r -> a + f r) 0 reports in
      let arch = sum (fun r -> r.Inject.Campaign.r_architectural) in
      let det = sum (fun r -> r.Inject.Campaign.r_detected) in
      let lat =
        List.fold_left
          (fun a (r : Inject.Campaign.report) -> Int64.add a r.r_latency_sum)
          0L reports
      in
      Printf.printf "%-8g %10d %10d %9.1f%% %9.2f %9d %9d\n" rate arch det
        (if arch = 0 then 100.0 else 100. *. float_of_int det /. float_of_int arch)
        (if det = 0 then 0.0 else Int64.to_float lat /. float_of_int det)
        (sum (fun r -> r.Inject.Campaign.r_repairs))
        (sum (fun r -> r.Inject.Campaign.r_restores)))
    [ 1e-5; 1e-4; 1e-3; 5e-3 ];
  (* what the hardened checker costs: timing-first MIPS with no injection,
     as a function of how often memory digests are compared *)
  let t = Workload.alpha in
  let k = List.nth Vir.Kernels.bench_suite 3 in
  print_endline "\nchecker overhead (no faults injected, alpha/sort):";
  List.iter
    (fun interval ->
      let lt = Workload.load t ~buildset:"one_min" k.program in
      let lc = Workload.load t ~buildset:"one_min" k.program in
      Gc.full_major ();
      let t0 = Unix.gettimeofday () in
      let r =
        Timing.Timingfirst.run ~mem_check_interval:interval ~timing:lt.iface
          ~checker:lc.iface ~budget ()
      in
      let dt = Unix.gettimeofday () -. t0 in
      Printf.printf
        "  memory digest every %6d instrs: %6.2f MIPS (%Ld mismatches)\n"
        interval
        (Int64.to_float r.instructions /. dt /. 1e6)
        r.mismatches)
    [ 16; 64; 1024; max_int ];
  print_endline
    "(coverage stays high as rates rise; repairs dominate at low rates and\n\
    \ checkpoint restores appear once divergence storms set in)\n"

(* ------------------------------------------------------------------ *)
(* Observability overhead: zero when disabled, measured when enabled    *)
(* ------------------------------------------------------------------ *)

(* The zero-overhead claim is structural — with obs omitted,
   Specsim.Synth.make hands out exactly the closures it built before the
   observability layer existed (no flag tests, no indirection). This
   experiment backs the claim empirically: the uninstrumented interface
   is measured twice, and the spread between the two measurements (pure
   run-to-run noise) is the honest bound on what "instrumented off"
   costs. The instrumented build is then measured for comparison, and
   every interface's counter snapshot goes into BENCH_results.json. *)
let overhead () =
  print_endline
    "=== Observability overhead: instrumented-off vs instrumented-on ===";
  let t = Workload.alpha in
  let k = List.nth Vir.Kernels.bench_suite 4 (* hash_loop *) in
  (* The comparison chases a <=2% effect on a possibly-shared host.
     Coarse back-to-back runs cannot resolve that here (load spikes from
     co-tenants swing whole runs by more than 2%), so the three sides —
     baseline A, baseline B (identical machine code to A), and the
     instrumented build — advance in small timed chunks with rotating
     order inside one loop. Every side samples the same noise
     environment; aggregate throughput per side is then comparable at
     well under the 2% budget. The A/B pair executes the same closures,
     so their residual spread is the honest noise floor. *)
  let warm = if !quick then 5_000 else 20_000 in
  let rows =
    List.map
      (fun (bs, mult) ->
        let chunk = (if !quick then 10_000 else 20_000) * mult in
        let rounds = if !quick then 60 else 120 in
        let side ?obs () =
          let fresh () = Workload.load ?obs t ~buildset:bs k.program in
          let l : Workload.loaded ref = ref (fresh ()) in
          ignore (drive !l.iface warm);
          let chunks = ref [] in
          let run () =
            if !l.iface.st.halted then l := fresh ();
            (* GC work happens outside the timed window *)
            Gc.minor ();
            let t0 = Unix.gettimeofday () in
            let c = drive !l.iface chunk in
            let dt = Unix.gettimeofday () -. t0 in
            if c > 0 then chunks := (c, dt) :: !chunks
          in
          (* trimmed aggregate over the middle chunks: the slow tail
             carries major GC slices and co-tenant spikes, the fast tail
             lucky turbo windows; both sides are trimmed identically so
             they stay comparable *)
          let mips () =
            let sorted =
              List.sort
                (fun (na, da) (nb, db) ->
                  Float.compare (da /. float_of_int na) (db /. float_of_int nb))
                !chunks
            in
            let total = List.length sorted in
            let lo = total / 10 and hi = total - (total / 5) in
            let kept = List.filteri (fun i _ -> i >= lo && i < hi) sorted in
            let n = List.fold_left (fun a (c, _) -> a + c) 0 kept in
            let dt = List.fold_left (fun a (_, d) -> a +. d) 0. kept in
            if dt <= 0. then 0. else float_of_int n /. dt /. 1e6
          in
          (run, mips)
        in
        let run_a, mips_a = side () in
        let run_b, mips_b = side () in
        let run_o, mips_o = side ~obs:(Obs.create ()) () in
        Gc.full_major ();
        for i = 1 to rounds do
          match i mod 3 with
          | 1 ->
            run_a ();
            run_b ();
            run_o ()
          | 2 ->
            run_b ();
            run_o ();
            run_a ()
          | _ ->
            run_o ();
            run_a ();
            run_b ()
        done;
        let off_a = mips_a () in
        let off_b = mips_b () in
        let on_ = mips_o () in
        let spread =
          100. *. Float.abs (off_a -. off_b) /. Float.max off_a off_b
        in
        Printf.printf
          "  %-12s off %7.2f / %7.2f MIPS (spread %4.1f%%)   on %7.2f MIPS \
           (%.2fx when enabled)\n"
          bs off_a off_b spread on_
          (if on_ <= 0. then 0. else Float.max off_a off_b /. on_);
        (bs, off_a, off_b, on_, spread))
      [ ("block_min", 8); ("one_all", 1); ("step_all", 1) ]
  in
  let worst =
    List.fold_left (fun a (_, _, _, _, s) -> Float.max a s) 0. rows
  in
  Printf.printf
    "instrumented-off is the seed fast path (obs compiled out at synthesis \
     time);\nmeasured spread %.1f%% %s the 2%% zero-overhead budget\n\n"
    worst
    (if worst <= 2.0 then "is within" else "EXCEEDS");
  add_json "overhead"
    (Obs.Export.Obj
       (List.map
          (fun (bs, off_a, off_b, on_, spread) ->
            ( bs,
              Obs.Export.Obj
                [
                  ("mips_off", Obs.Export.Float (Float.max off_a off_b));
                  ("mips_off_remeasured", Obs.Export.Float (Float.min off_a off_b));
                  ("off_spread_pct", Obs.Export.Float spread);
                  ("mips_on", Obs.Export.Float on_);
                ] ))
          rows));
  (* one counter snapshot per interface, for the machine-readable output *)
  let snap_budget = if !quick then 20_000 else 60_000 in
  add_json "counters"
    (Obs.Export.Obj
       (List.map
          (fun (bs, _) ->
            let o = Obs.create () in
            let l = Workload.load ~obs:o t ~buildset:bs k.program in
            ignore (drive l.iface snap_budget);
            (bs, Obs.Export.json_of_snapshot (Obs.snapshot o)))
          paper_table2))

(* ------------------------------------------------------------------ *)
(* Profiler overhead: hot-region attribution off vs on                  *)
(* ------------------------------------------------------------------ *)

(* Same rotating-chunk methodology as the observability experiment, but
   the instrumented side is a profile-only context (Obs.profile_only):
   synthesis keeps the seed closures — including the chained block fast
   path — and adds only the profiler's cached-region compare-and-add.
   block_min exercises the per-block note inside the chained dispatch
   loop (one note per basic block); step_all exercises the
   per-retirement note (one note per instruction, the worst case). The
   budget is the same 2%: profiling has to be cheap enough to leave on
   while hunting hot regions. [--gate-profiler] turns the budget into an
   exit status for CI, with the A/B noise floor as the tolerance when
   the host is too noisy to resolve 2%. *)
let gate_profiler = ref false
let profiler_worst = ref 0.
let profiler_floor = ref 0.

let median = function
  | [] -> 0.
  | xs ->
    let a = Array.of_list xs in
    Array.sort Float.compare a;
    let n = Array.length a in
    if n land 1 = 1 then a.(n / 2) else (a.((n / 2) - 1) +. a.(n / 2)) /. 2.

let profiler () =
  print_endline "=== Profiler overhead: hot-region attribution off vs on ===";
  let t = Workload.alpha in
  let k = List.nth Vir.Kernels.bench_suite 4 (* hash_loop *) in
  let warm = if !quick then 5_000 else 20_000 in
  let rows =
    List.map
      (fun (bs, mult) ->
        let chunk = (if !quick then 10_000 else 20_000) * mult in
        let rounds = if !quick then 60 else 120 in
        (* one side = one prebuilt simulator; [run] times one chunk and
           returns its throughput (instructions per second) *)
        let side ?obs () =
          let fresh () = Workload.load ?obs t ~buildset:bs k.program in
          let l : Workload.loaded ref = ref (fresh ()) in
          ignore (drive !l.iface warm);
          fun () ->
            if !l.iface.st.halted then l := fresh ();
            (* GC work happens outside the timed window *)
            Gc.minor ();
            let t0 = Unix.gettimeofday () in
            let c = drive !l.iface chunk in
            let dt = Unix.gettimeofday () -. t0 in
            if c > 0 && dt > 0. then float_of_int c /. dt else 0.
        in
        let run_a = side () in
        let run_b = side () in
        let run_p = side ~obs:(Obs.profile_only ()) () in
        Gc.full_major ();
        (* The comparison chases a <=2% effect on a possibly-shared host.
           Each round times one chunk per side back-to-back in rotating
           order, and the statistic is the MEDIAN over rounds of the
           per-round paired ratio — host load drifting between rounds
           cancels within each round, and co-tenant spikes land in the
           tails the median ignores. The A/B pair runs identical machine
           code, so the median of its per-round spread is the honest
           noise floor on the same estimator. *)
        let per_round = ref [] in
        for i = 1 to rounds do
          let a = ref 0. and b = ref 0. and p = ref 0. in
          (match i mod 3 with
          | 1 ->
            a := run_a ();
            b := run_b ();
            p := run_p ()
          | 2 ->
            b := run_b ();
            p := run_p ();
            a := run_a ()
          | _ ->
            p := run_p ();
            a := run_a ();
            b := run_b ());
          if !a > 0. && !b > 0. && !p > 0. then
            per_round := (!a, !b, !p) :: !per_round
        done;
        let rs = !per_round in
        let off_mips =
          median (List.map (fun (a, b, _) -> (a +. b) /. 2. /. 1e6) rs)
        in
        let on_mips = median (List.map (fun (_, _, p) -> p /. 1e6) rs) in
        let overhead_pct =
          median
            (List.map (fun (a, b, p) -> 100. *. (((a +. b) /. 2. /. p) -. 1.)) rs)
        in
        let spread =
          median
            (List.map
               (fun (a, b, _) -> 100. *. Float.abs (a -. b) /. Float.max a b)
               rs)
        in
        Printf.printf
          "  %-12s off %7.2f MIPS (A/B spread %4.1f%%)   profiled %7.2f MIPS \
           (overhead %4.1f%%)\n"
          bs off_mips spread on_mips overhead_pct;
        (bs, off_mips, on_mips, spread, overhead_pct))
      [ ("block_min", 8); ("step_all", 1) ]
  in
  let worst_over =
    List.fold_left (fun a (_, _, _, _, o) -> Float.max a o) 0. rows
  in
  let worst_spread =
    List.fold_left (fun a (_, _, _, s, _) -> Float.max a s) 0. rows
  in
  profiler_worst := worst_over;
  profiler_floor := worst_spread;
  Printf.printf
    "worst profiler overhead %.1f%% (A/B noise floor %.1f%%) %s the 2%% budget\n"
    worst_over worst_spread
    (if worst_over <= Float.max 2.0 worst_spread then "is within" else "EXCEEDS");
  add_json "profiler"
    (Obs.Export.Obj
       (List.map
          (fun (bs, off_mips, on_mips, spread, overhead_pct) ->
            ( bs,
              Obs.Export.Obj
                [
                  ("mips_off", Obs.Export.Float off_mips);
                  ("mips_on", Obs.Export.Float on_mips);
                  ("off_spread_pct", Obs.Export.Float spread);
                  ("overhead_pct", Obs.Export.Float overhead_pct);
                ] ))
          rows));
  (* sanity: the profiler finds the kernel's hot loop *)
  let prof = Obs.Prof.create () in
  let l =
    Workload.load ~obs:(Obs.profile_only ~prof ()) t ~buildset:"one_all"
      k.program
  in
  ignore (drive l.iface (if !quick then 50_000 else 200_000));
  (match Obs.Prof.report ~top:1 prof with
  | r :: _ ->
    Printf.printf
      "hot region (one_all, %s): 0x%Lx-0x%Lx with %.1f%% of instructions\n\n"
      k.kname r.Obs.Prof.rg_lo r.Obs.Prof.rg_hi (100. *. r.Obs.Prof.rg_share)
  | [] -> print_newline ())

(* ------------------------------------------------------------------ *)
(* Fuzz throughput: cost of the 12-way conformance oracle               *)
(* ------------------------------------------------------------------ *)

(* One oracle execution = one candidate/reference lockstep run of a
   generated program with periodic digest comparison. The rate bounds
   how large a nightly campaign budget is affordable, and the
   generator-only rate shows the oracle (not generation) dominates. *)
let fuzz_bench () =
  print_endline
    "=== Fuzz throughput: spec-derived generator and 12-way oracle ===";
  let budget = if !quick then 300 else 1_500 in
  Printf.printf "%-6s %10s %10s %12s %12s %12s\n" "isa" "programs" "execs"
    "execs/s" "programs/s" "gen-only/s";
  let sections =
    List.map
      (fun isa ->
        (* generation alone: the same programs the campaign would test *)
        let spec = Fuzz.Driver.spec_of_isa isa in
        let cx = Fuzz.Gen.make_ctx ~isa spec in
        let gen_n = if !quick then 2_000 else 10_000 in
        let t0 = Unix.gettimeofday () in
        for i = 0 to gen_n - 1 do
          ignore (Fuzz.Gen.generate cx ~seed:42L ~index:i)
        done;
        let gen_rate = float_of_int gen_n /. (Unix.gettimeofday () -. t0) in
        (* full campaign: generate + run the 12-way oracle (seed 42 is a
           verified-healthy seed, so the budget is spent end to end) *)
        let t0 = Unix.gettimeofday () in
        let o = Fuzz.Driver.hunt ~isa ~seed:42L ~budget () in
        let dt = Unix.gettimeofday () -. t0 in
        assert (o.Fuzz.Driver.o_found = None);
        let execs_s = float_of_int o.Fuzz.Driver.o_execs /. dt in
        let progs_s = float_of_int o.Fuzz.Driver.o_programs /. dt in
        Printf.printf "%-6s %10d %10d %12.0f %12.1f %12.0f\n" isa
          o.Fuzz.Driver.o_programs o.Fuzz.Driver.o_execs execs_s progs_s
          gen_rate;
        ( isa,
          Obs.Export.Obj
            [
              ("oracle_execs_per_sec", Obs.Export.Float execs_s);
              ("programs_per_sec", Obs.Export.Float progs_s);
              ("generator_only_per_sec", Obs.Export.Float gen_rate);
            ] ))
      Fuzz.Driver.all_isas
  in
  add_json "fuzz" (Obs.Export.Obj sections);
  print_endline
    "(an oracle execution runs candidate and reference in lockstep with\n\
    \ digest checks every 16 instructions; generation is noise by\n\
    \ comparison, so campaign budgets are oracle-bound — see the nightly\n\
    \ workflow's 20k-execution budget)\n"

(* ------------------------------------------------------------------ *)
(* Fleet scaling: oracle execs/s across domain counts                  *)
(* ------------------------------------------------------------------ *)

(* How the parallel campaign driver scales with --jobs. Honest numbers:
   [host_cores] is recorded alongside, and on a 1-core host every level
   above 1 is expected to sit at ~1x (the fleet is then purely a
   correctness construct). The digest check at the end runs the same
   seeded-defect campaign at jobs 1 and jobs 4 and compares the
   quarantined reproducers byte for byte. *)
let jobs_override : int option ref = ref None

let fleet_bench () =
  print_endline "=== Fleet scaling: parallel campaign driver ===";
  let host_cores = Domain.recommended_domain_count () in
  let levels =
    let base = match !jobs_override with Some n -> [ 1; n ] | None -> [ 1; 2; 4; host_cores ] in
    List.sort_uniq compare (List.filter (fun n -> n >= 1) base)
  in
  Printf.printf "host cores: %d; jobs levels: %s\n" host_cores
    (String.concat " " (List.map string_of_int levels));
  let budget = if !quick then 200 else 600 in
  let hunt_rate ~isa ~jobs =
    let run fleet =
      let t0 = Unix.gettimeofday () in
      let o = Fuzz.Driver.hunt ~isa ~seed:42L ~budget ?fleet () in
      let dt = Unix.gettimeofday () -. t0 in
      assert (o.Fuzz.Driver.o_found = None);
      float_of_int o.Fuzz.Driver.o_execs /. dt
    in
    if jobs <= 1 then run None
    else Fleet.with_pool ~jobs (fun fl -> run (Some fl))
  in
  Printf.printf "%-6s %s\n" "isa"
    (String.concat " "
       (List.map (fun n -> Printf.sprintf "%11s" (Printf.sprintf "jobs=%d/s" n)) levels));
  let isa_sections =
    List.map
      (fun isa ->
        let rates = List.map (fun jobs -> (jobs, hunt_rate ~isa ~jobs)) levels in
        Printf.printf "%-6s %s\n" isa
          (String.concat " "
             (List.map (fun (_, r) -> Printf.sprintf "%11.0f" r) rates));
        ( isa,
          Obs.Export.Obj
            (List.map
               (fun (jobs, r) ->
                 (Printf.sprintf "jobs_%d_execs_per_sec" jobs, Obs.Export.Float r))
               rates) ))
      [ "tiny"; "alpha"; "ppc" ]
  in
  (* scaling efficiency at the widest level, averaged over ISAs — the
     number the CI summary quotes *)
  let widest = List.fold_left max 1 levels in
  let eff =
    let per_isa =
      List.filter_map
        (fun (_, s) ->
          match s with
          | Obs.Export.Obj kvs -> (
            match
              ( List.assoc_opt "jobs_1_execs_per_sec" kvs,
                List.assoc_opt
                  (Printf.sprintf "jobs_%d_execs_per_sec" widest)
                  kvs )
            with
            | Some (Obs.Export.Float a), Some (Obs.Export.Float b) when a > 0. ->
              Some (b /. a)
            | _ -> None)
          | _ -> None)
        isa_sections
    in
    match per_isa with
    | [] -> 1.
    | l -> List.fold_left ( +. ) 0. l /. float_of_int (List.length l)
  in
  Printf.printf
    "fleet scaling: %.2fx at %d jobs on a %d-core host (%.0f%% efficiency)\n"
    eff widest host_cores
    (100. *. eff /. float_of_int (min widest host_cores));
  if widest > host_cores then
    print_endline
      "(jobs exceed host cores: domains time-slice one core and every minor\n\
      \ GC is a stop-the-world handshake across all of them, so levels above\n\
      \ the core count slow down rather than break even — --jobs defaults to\n\
      \ the core count for exactly this reason)";
  (* parallel-vs-sequential digest check: a seeded defect must
     quarantine byte-identical reproducers at every jobs level *)
  let quarantine_digest ~jobs =
    let tag = Printf.sprintf "fleet-bench-j%d-%d" jobs (Unix.getpid ()) in
    let dir = Filename.concat (Filename.get_temp_dir_name ()) tag in
    let journal = dir ^ ".jsonl" in
    if Sys.file_exists journal then Sys.remove journal;
    if Sys.file_exists dir then
      Array.iter (fun f -> Sys.remove (Filename.concat dir f)) (Sys.readdir dir);
    let cfg =
      {
        Fuzz.Oracle.default_config with
        mutate = Some Specsim.Synth.Stride4;
        buildsets = [ "block_min" ];
      }
    in
    let run fleet =
      ignore
        (Fuzz.Campaign.run ~cfg ?fleet ~isa:"tiny" ~seed:0xBEEFL ~budget:10
           ~journal ~quarantine:dir ())
    in
    if jobs <= 1 then run None
    else Fleet.with_pool ~jobs (fun fl -> run (Some fl));
    let files = List.sort String.compare (Array.to_list (Sys.readdir dir)) in
    let d =
      Digest.string
        (String.concat "\x00"
           (List.map
              (fun f ->
                let ic = open_in_bin (Filename.concat dir f) in
                let s = really_input_string ic (in_channel_length ic) in
                close_in ic;
                f ^ "\x01" ^ s)
              files))
    in
    Sys.remove journal;
    Array.iter (fun f -> Sys.remove (Filename.concat dir f)) (Sys.readdir dir);
    Unix.rmdir dir;
    (List.length files, Digest.to_hex d)
  in
  let n1, d1 = quarantine_digest ~jobs:1 in
  let n4, d4 = quarantine_digest ~jobs:4 in
  let digest_match = n1 = n4 && String.equal d1 d4 in
  Printf.printf
    "digest check: jobs=1 %d reproducer(s) %s, jobs=4 %d reproducer(s) %s — %s\n\n"
    n1 d1 n4 d4
    (if digest_match then "MATCH" else "MISMATCH");
  add_json "fleet"
    (Obs.Export.Obj
       [
         ("host_cores", Obs.Export.Int (Int64.of_int host_cores));
         ( "scaling",
           Obs.Export.Obj
             [
               ("widest_jobs", Obs.Export.Int (Int64.of_int widest));
               ("speedup", Obs.Export.Float eff);
             ] );
         ("isas", Obs.Export.Obj isa_sections);
         ( "digest_check",
           Obs.Export.Obj
             [
               ("reproducers", Obs.Export.Int (Int64.of_int n1));
               ("jobs1", Obs.Export.Str d1);
               ("jobs4", Obs.Export.Str d4);
               ("match", Obs.Export.Bool digest_match);
             ] );
       ]);
  if not digest_match then begin
    print_endline "fleet digest check: FAIL";
    exit 1
  end

(* ------------------------------------------------------------------ *)
(* Supervision overhead: the journaled campaign vs the bare oracle loop *)
(* ------------------------------------------------------------------ *)

(* The supervised campaign wraps every oracle execution in a case — a
   retry policy, a taxonomy classification, and one flushed journal
   line. On a healthy seed nothing retries and nothing quarantines, so
   the measured difference from the bare Driver.hunt loop is the pure
   supervision tax. Budget: within 2% of plain oracle execs/s. *)
let supervision () =
  print_endline
    "=== Supervision overhead: bare oracle loop vs journaled campaign ===";
  let budget = if !quick then 300 else 1_500 in
  let reps = if !quick then 2 else 3 in
  Printf.printf "%-6s %12s %12s %10s\n" "isa" "plain e/s" "super e/s"
    "overhead";
  let sections =
    List.map
      (fun isa ->
        (* best-of-reps on both sides: the oracle dominates, so peak
           throughput is the stable statistic (as in measure_mips) *)
        let best f =
          let b = ref 0. in
          for _ = 1 to reps do
            let r = f () in
            if r > !b then b := r
          done;
          !b
        in
        let plain =
          best (fun () ->
              let t0 = Unix.gettimeofday () in
              let o = Fuzz.Driver.hunt ~isa ~seed:42L ~budget () in
              let dt = Unix.gettimeofday () -. t0 in
              assert (o.Fuzz.Driver.o_found = None);
              float_of_int o.Fuzz.Driver.o_execs /. dt)
        in
        let journal = Filename.temp_file "lisim-bench-journal" ".jsonl" in
        let quarantine = Filename.temp_file "lisim-bench-quarantine" ".d" in
        Sys.remove quarantine;
        let supervised =
          best (fun () ->
              if Sys.file_exists journal then Sys.remove journal;
              let t0 = Unix.gettimeofday () in
              let p =
                Fuzz.Campaign.run ~isa ~seed:42L ~budget ~journal ~quarantine
                  ()
              in
              let dt = Unix.gettimeofday () -. t0 in
              assert (p.Fuzz.Campaign.p_quarantined = 0);
              float_of_int p.Fuzz.Campaign.p_execs /. dt)
        in
        if Sys.file_exists journal then Sys.remove journal;
        (try Unix.rmdir quarantine with Unix.Unix_error _ -> ());
        let overhead_pct = 100. *. (plain -. supervised) /. plain in
        Printf.printf "%-6s %12.0f %12.0f %9.1f%%\n" isa plain supervised
          overhead_pct;
        ( isa,
          Obs.Export.Obj
            [
              ("plain_execs_per_sec", Obs.Export.Float plain);
              ("supervised_execs_per_sec", Obs.Export.Float supervised);
              ("overhead_pct", Obs.Export.Float overhead_pct);
            ] ))
      [ "alpha"; "tiny" ]
  in
  add_json "supervision" (Obs.Export.Obj sections);
  let worst =
    List.fold_left
      (fun a (_, j) ->
        match j with
        | Obs.Export.Obj kvs -> (
          match List.assoc "overhead_pct" kvs with
          | Obs.Export.Float p -> Float.max a p
          | _ -> a)
        | _ -> a)
      0. sections
  in
  Printf.printf
    "worst supervision overhead %.1f%% %s the 2%% budget\n\
     (per case: one splitmix draw, one exception classification, one \
     flushed\n\
    \ journal line — the oracle itself is untouched)\n\n"
    worst
    (if worst <= 2.0 then "is within" else "EXCEEDS")

(* ------------------------------------------------------------------ *)
(* Abstract interpretation: gating effect, analysis cost, visibility    *)
(* dogfood (3 ISAs x 12 buildsets)                                      *)
(* ------------------------------------------------------------------ *)

let absint_bench () =
  print_endline
    "=== Abstract interpretation: synthesis gating and visibility dogfood ===";
  let k = List.hd (kernels ()) in
  (* A/B: the same kernel through analyzed and unanalyzed engines *)
  let speed =
    List.map
      (fun buildset ->
        let on = measure_mips ~absint:true Workload.alpha ~buildset k in
        let off = measure_mips ~absint:false Workload.alpha ~buildset k in
        Printf.printf
          "  alpha/%-9s %-10s  absint on %7.2f MIPS, off %7.2f MIPS (%+.1f%%)\n"
          buildset k.kname on off
          (if off > 0. then (on -. off) /. off *. 100. else 0.);
        ( buildset,
          Obs.Export.Obj
            [
              ("mips_absint_on", Obs.Export.Float on);
              ("mips_absint_off", Obs.Export.Float off);
            ] ))
      [ "one_all"; "block_min" ]
  in
  (* analysis cost and verdicts per ISA, stable blocks after a run (the
     sort kernel has store-free comparison blocks; a kernel that stores
     in every block would honestly report zero) *)
  let ks =
    match
      List.find_opt
        (fun (k : Vir.Kernels.sized) -> k.kname = "sort")
        Vir.Kernels.bench_suite
    with
    | Some k -> k
    | None -> k
  in
  let cost =
    List.map
      (fun (t : Workload.target) ->
        let l = Workload.load t ~buildset:"block_min" ks.program in
        ignore (drive l.iface (if !quick then 20_000 else 100_000));
        let s = l.iface.stats in
        let sums = Analysis.Absint.summarize (Lazy.force t.spec) in
        let free =
          Array.fold_left
            (fun n su -> if Analysis.Absint.store_free su then n + 1 else n)
            0 sums
        in
        Printf.printf
          "  %-6s analysis %7d ns for %3d classes (%3d store-free), %d \
           stable blocks\n"
          t.tname s.Specsim.Iface.absint_ns (Array.length sums) free
          s.Specsim.Iface.stable_blocks;
        ( t.tname,
          Obs.Export.Obj
            [
              ("absint_ns", Obs.Export.Int (Int64.of_int s.Specsim.Iface.absint_ns));
              ("classes", Obs.Export.Int (Int64.of_int (Array.length sums)));
              ("store_free_classes", Obs.Export.Int (Int64.of_int free));
              ( "stable_blocks",
                Obs.Export.Int (Int64.of_int s.Specsim.Iface.stable_blocks) );
            ] ))
      Workload.targets
  in
  (* dogfood: L08x across every shipped buildset, plus how far each
     visible set is from the computed minimum *)
  let visibility =
    List.map
      (fun (t : Workload.target) ->
        let spec = Lazy.force t.spec in
        let sums = Analysis.Absint.summarize spec in
        let l08x =
          match Analysis.Lint.run spec with
          | Ok ds ->
            List.length
              (List.filter
                 (fun (d : Analysis.Diag.t) ->
                   d.code = "L080" || d.code = "L081")
                 ds)
          | Error _ -> -1
        in
        let per_bs =
          Array.to_list spec.buildsets
          |> List.map (fun (bs : Lis.Spec.buildset) ->
                 let shown =
                   Array.fold_left
                     (fun n v -> if v then n + 1 else n)
                     0 bs.bs_visible
                 in
                 let minimal =
                   Semir.Absint.Iset.cardinal
                     (Analysis.Absint.minimal_visible spec sums bs)
                 in
                 let tightened =
                   Analysis.Absint.suggest_buildset spec sums bs <> None
                 in
                 ( bs.bs_name,
                   Obs.Export.Obj
                     [
                       ("shown_cells", Obs.Export.Int (Int64.of_int shown));
                       ("minimal_cells", Obs.Export.Int (Int64.of_int minimal));
                       ("tightened", Obs.Export.Bool tightened);
                     ] ))
        in
        let tightened_n =
          List.length
            (List.filter
               (fun (_, j) ->
                 match j with
                 | Obs.Export.Obj kvs ->
                   List.assoc "tightened" kvs = Obs.Export.Bool true
                 | _ -> false)
               per_bs)
        in
        Printf.printf
          "  %-6s L08x diagnostics: %d; %d of %d buildsets can be tightened \
           (see lisim check --suggest-buildset)\n"
          t.tname l08x tightened_n (List.length per_bs);
        ( t.tname,
          Obs.Export.Obj
            (("l08x_diagnostics", Obs.Export.Int (Int64.of_int l08x))
            :: per_bs) ))
      Workload.targets
  in
  add_json "absint"
    (Obs.Export.Obj
       [
         ("speed", Obs.Export.Obj speed);
         ("analysis", Obs.Export.Obj cost);
         ("visibility", Obs.Export.Obj visibility);
       ]);
  print_newline ()

(* ------------------------------------------------------------------ *)
(* Hostile workloads: the interface machinery under attack              *)
(* ------------------------------------------------------------------ *)

(* Where the benchmark kernels reproduce the paper's SPEC-like mixes,
   these four (lib/workload/hostile.ml) are built to break the block
   engine's assumptions: a heap-mutating GC chase, a megamorphic
   threaded-interpreter dispatch, a syscall storm, and self-modifying
   trampolines. Every (kernel x ISA x interface) cell reports measured
   MIPS plus the chain and site-cache hit rates from the same run — the
   point is to see *which* machinery each kernel defeats (the interp's
   indirect dispatch must drag the chain hit rate under 90%). *)
let workload_bench () =
  print_endline
    "=== Hostile workloads: MIPS and translation-cache hit rates ===";
  let suite =
    if !quick then Workload.Hostile.test_suite else Workload.Hostile.bench_suite
  in
  let ifaces = [ "block_min"; "one_all"; "step_all" ] in
  let rate a b =
    if a + b = 0 then 0. else 100. *. float_of_int a /. float_of_int (a + b)
  in
  Printf.printf "%-14s %-6s %-10s %8s %7s %7s %7s %6s\n" "kernel" "isa"
    "interface" "MIPS" "chain%" "site%" "invals" "exit";
  (* worst chain hit rate per kernel over block interfaces, for the
     headline *)
  let worst_chain : (string * float) list ref = ref [] in
  let sections =
    List.map
      (fun (k : Workload.Hostile.kernel) ->
        let expected =
          if k.reference_safe then
            Some (Workload.reference k.program).Workload.exit_status
          else k.expected_exit
        in
        let per_isa =
          List.map
            (fun (t : Workload.target) ->
              let per_bs =
                List.map
                  (fun bs ->
                    let l = Workload.load t ~buildset:bs k.program in
                    Gc.full_major ();
                    let t0 = Unix.gettimeofday () in
                    let o = Workload.run_to_completion ~budget:200_000_000 l in
                    let dt = Unix.gettimeofday () -. t0 in
                    let mips =
                      if dt <= 0. then 0.
                      else Int64.to_float o.instructions /. dt /. 1e6
                    in
                    let s : Specsim.Iface.stats = l.iface.stats in
                    let chain = rate s.chain_taken s.chain_miss in
                    let site = rate s.site_cache_hits s.sites_compiled in
                    let ok =
                      match expected with
                      | Some e -> e = o.exit_status
                      | None -> true
                    in
                    if String.length bs >= 5 && String.sub bs 0 5 = "block"
                    then
                      worst_chain :=
                        (match List.assoc_opt k.hname !worst_chain with
                        | Some c when c <= chain -> !worst_chain
                        | _ ->
                          (k.hname, chain)
                          :: List.remove_assoc k.hname !worst_chain);
                    Printf.printf
                      "%-14s %-6s %-10s %8.2f %6.1f%% %6.1f%% %7d %6s\n"
                      k.hname t.tname bs mips chain site s.block_invalidations
                      (if ok then "OK" else "BAD!");
                    ( bs,
                      Obs.Export.Obj
                        [
                          ("mips", Obs.Export.Float mips);
                          ("chain_rate_pct", Obs.Export.Float chain);
                          ("site_reuse_rate_pct", Obs.Export.Float site);
                          ( "block_invalidations",
                            Obs.Export.Int (Int64.of_int s.block_invalidations)
                          );
                          ( "instructions",
                            Obs.Export.Int o.instructions );
                          ("exit_ok", Obs.Export.Bool ok);
                        ] ))
                  ifaces
              in
              (t.tname, Obs.Export.Obj per_bs))
            Workload.targets
        in
        (k.hname, Obs.Export.Obj per_isa))
      suite
  in
  add_json "workload" (Obs.Export.Obj sections);
  let collapsed =
    List.filter (fun (_, c) -> c < 90.) !worst_chain |> List.map fst
  in
  Printf.printf
    "\nchain hit rate under 90%% on a block interface: %s\n\
     (the megamorphic interpreter dispatch is the designed-in failure;\n\
    \ the trampoline's invalidation counts are the SMC evidence)\n\n"
    (match collapsed with
    | [] -> "NONE — the hostile corpus lost its teeth"
    | l -> String.concat ", " l)

(* ------------------------------------------------------------------ *)
(* Validation (paper §V-D)                                              *)
(* ------------------------------------------------------------------ *)

let validate () =
  print_endline "=== Validation: rotating interfaces over all kernels (§V-D) ===";
  List.iter
    (fun (t : Workload.target) ->
      let spec = Lazy.force t.spec in
      let buildsets = Lis.Spec.buildset_names spec in
      List.iter
        (fun (k : Vir.Kernels.sized) ->
          let expected = Workload.reference k.program in
          let got = Workload.run_rotating t ~buildsets k.program in
          Printf.printf "  %-6s %-12s %s (%Ld instructions, %d interfaces)\n"
            t.tname k.kname
            (if Workload.agrees expected got then "OK" else "MISMATCH!")
            got.instructions (List.length buildsets))
        Vir.Kernels.test_suite)
    Workload.targets;
  print_newline ()

(* ------------------------------------------------------------------ *)
(* Bechamel micro-benchmarks (one Test.make per table/figure)           *)
(* ------------------------------------------------------------------ *)

let bechamel_tests () =
  let open Bechamel in
  (* pre-built simulators over a non-terminating loop program *)
  let forever : Vir.Lang.program =
    (* a long straight-line body so block mode amortizes its dispatch *)
    Vir.Lang.Label "top"
    :: List.concat
         (List.init 8 (fun _ ->
              [ Vir.Lang.Addi (8, 8, 1); Vir.Lang.Xor_ (9, 9, 8) ]))
    @ [ Vir.Lang.Jmp "top" ]
  in
  let prebuilt bs =
    let l = Workload.load Workload.alpha ~buildset:bs forever in
    ignore (drive l.iface 10_000);
    l.iface
  in
  let one_min = prebuilt "one_min" in
  let one_all = prebuilt "one_all" in
  let block_min = prebuilt "block_min" in
  let t1 =
    Test.make ~name:"table1/line-count"
      (Staged.stage (fun () ->
           ignore (Lis.Count.of_sources Isa_alpha.Alpha.sources)))
  in
  let t2 =
    Test.make ~name:"table2/one_min-1k-instrs"
      (Staged.stage (fun () -> ignore (Specsim.Iface.run_n one_min 1_000)))
  in
  let t2b =
    Test.make ~name:"table2/block_min-1k-instrs"
      (Staged.stage (fun () -> ignore (Specsim.Iface.run_n block_min 1_000)))
  in
  let t3 =
    Test.make ~name:"table3/one_all-1k-instrs"
      (Staged.stage (fun () -> ignore (Specsim.Iface.run_n one_all 1_000)))
  in
  let manual_st = Manual.Manual_sim.make_machine () in
  let () =
    List.iteri
      (fun i w ->
        Machine.Memory.write manual_st.mem
          ~addr:(Int64.add 0x1000L (Int64.of_int (4 * i)))
          ~width:4 w)
      Demo_isa.[ addi ~ra:8 ~imm:1 ~rc:8; br ~off:(-2) ]
  in
  let mdi = Manual.Manual_sim.Fig2.create () in
  let f24 =
    Test.make ~name:"fig24/manual-1k-instrs"
      (Staged.stage (fun () ->
           Machine.State.reset manual_st ~pc:0x1000L;
           for _ = 1 to 1_000 do
             Manual.Manual_sim.do_in_one manual_st mdi
           done))
  in
  let ff = Timing.Funcfirst.create one_all in
  let di = Specsim.Di.create ~info_slots:one_all.slots.di_size in
  let f1 =
    Test.make ~name:"fig1/funcfirst-consume"
      (Staged.stage (fun () -> Timing.Funcfirst.consume ff di))
  in
  Test.make_grouped ~name:"lisim" [ t1; t2; t2b; t3; f24; f1 ]

let run_bechamel () =
  let open Bechamel in
  let open Toolkit in
  let ols =
    Analyze.ols ~bootstrap:0 ~r_square:true ~predictors:[| Measure.run |]
  in
  let instances = Instance.[ monotonic_clock ] in
  let cfg =
    Benchmark.cfg ~limit:2000 ~quota:(Time.second 0.5) ~kde:(Some 1000) ()
  in
  let raw = Benchmark.all cfg instances (bechamel_tests ()) in
  let results = Analyze.all ols Instance.monotonic_clock raw in
  Hashtbl.iter
    (fun name ols ->
      match Analyze.OLS.estimates ols with
      | Some [ est ] -> Printf.printf "%-32s %12.1f ns/run\n" name est
      | _ -> Printf.printf "%-32s (no estimate)\n" name)
    results

(* ------------------------------------------------------------------ *)

let () =
  Array.iteri
    (fun i a ->
      if i > 0 then
        match a with
        | "--quick" -> quick := true
        | "--bechamel" -> use_bechamel := true
        | "--gate-profiler" -> gate_profiler := true
        | a
          when String.length a > 7 && String.sub a 0 7 = "--jobs=" ->
          let v = String.sub a 7 (String.length a - 7) in
          (match int_of_string_opt v with
          | Some n when n > 0 -> jobs_override := Some n
          | _ ->
            prerr_endline "bench: --jobs=N requires a positive integer";
            exit 2)
        | name -> only := name :: !only)
    Sys.argv;
  if !use_bechamel then run_bechamel ()
  else begin
    let want name = !only = [] || List.mem name !only in
    if want "table1" then table1 ();
    if want "table2" then table2 ();
    if want "table3" then table3 ();
    if want "dispatch" then dispatch ();
    if want "fig1" then fig1 ();
    if want "fig24" then fig24 ();
    if want "ablation" then ablation ();
    if want "sampling" then sampling_accuracy ();
    if want "inject" then inject ();
    if want "fuzz" then fuzz_bench ();
    if want "fleet" then fleet_bench ();
    if want "overhead" then overhead ();
    if want "profiler" then profiler ();
    if want "supervision" then supervision ();
    if want "absint" then absint_bench ();
    if want "workload" then workload_bench ();
    if want "validate" then validate ();
    write_json_results ();
    if !gate_profiler then begin
      let budget = Float.max 2.0 !profiler_floor in
      if !profiler_worst > budget then begin
        Printf.printf
          "profiler gate: FAIL — overhead %.1f%% exceeds budget %.1f%%\n"
          !profiler_worst budget;
        exit 1
      end
      else
        Printf.printf "profiler gate: OK (%.1f%% <= %.1f%%)\n" !profiler_worst
          budget
    end
  end
