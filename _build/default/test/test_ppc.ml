(** PowerPC ISA tests: CR semantics, rlwinm, bdnz loops, and differential
    kernel validation against the VIR reference. *)

let spec () = Lazy.force Isa_ppc.Ppc.spec

let run_snippet ?(setup = fun _ -> ()) words =
  let spec = spec () in
  let iface = Specsim.Synth.make spec "one_all" in
  let st = iface.st in
  setup st;
  List.iteri
    (fun i w ->
      Machine.Memory.write st.mem
        ~addr:(Int64.add 0x1000L (Int64.of_int (4 * i)))
        ~width:4 w)
    words;
  Machine.State.reset st ~pc:0x1000L;
  let di = Specsim.Di.create ~info_slots:iface.slots.di_size in
  for _ = 1 to List.length words do
    if not st.halted then iface.run_one di
  done;
  st

let reg st i = Machine.Regfile.read st.Machine.State.regs ~cls:0 ~idx:i
let cr st = Machine.Regfile.read st.Machine.State.regs ~cls:1 ~idx:0
let spr st i = Machine.Regfile.read st.Machine.State.regs ~cls:2 ~idx:i
let set_reg st i v = Machine.Regfile.write st.Machine.State.regs ~cls:0 ~idx:i v

open Isa_ppc.Ppc_asm

let test_addi_addis () =
  let st =
    run_snippet
      [ addi ~rd:3 ~ra:0 ~imm:(-5); addis ~rd:4 ~ra:0 ~imm:0x1234;
        ori ~ra:4 ~rs:4 ~imm:0x5678 ]
  in
  Alcotest.(check int64) "addi r0-literal-0 sign-extends+masks" 0xFFFFFFFBL (reg st 3);
  Alcotest.(check int64) "addis/ori" 0x12345678L (reg st 4)

let test_addi_ra_nonzero () =
  let st =
    run_snippet ~setup:(fun st -> set_reg st 5 100L) [ addi ~rd:3 ~ra:5 ~imm:(-1) ]
  in
  Alcotest.(check int64) "addi with base" 99L (reg st 3)

let test_arith () =
  let st =
    run_snippet
      ~setup:(fun st ->
        set_reg st 5 7L;
        set_reg st 6 3L)
      [
        add ~rd:3 ~ra:5 ~rb:6 ();
        subf ~rd:4 ~ra:6 ~rb:5 () (* r4 = r5 - r6 *);
        mullw ~rd:7 ~ra:5 ~rb:6 ();
        divw ~rd:8 ~ra:5 ~rb:6 ();
        divwu ~rd:9 ~ra:5 ~rb:6 ();
        neg ~rd:10 ~ra:5 ();
      ]
  in
  Alcotest.(check int64) "add" 10L (reg st 3);
  Alcotest.(check int64) "subf" 4L (reg st 4);
  Alcotest.(check int64) "mullw" 21L (reg st 7);
  Alcotest.(check int64) "divw" 2L (reg st 8);
  Alcotest.(check int64) "divwu" 2L (reg st 9);
  Alcotest.(check int64) "neg" 0xFFFFFFF9L (reg st 10)

let test_mulhw () =
  let st =
    run_snippet
      ~setup:(fun st ->
        set_reg st 5 0xFFFFFFFFL (* -1 signed *);
        set_reg st 6 2L)
      [ mulhw ~rd:3 ~ra:5 ~rb:6 (); mulhwu ~rd:4 ~ra:5 ~rb:6 () ]
  in
  Alcotest.(check int64) "mulhw (-1 * 2 high)" 0xFFFFFFFFL (reg st 3);
  Alcotest.(check int64) "mulhwu" 1L (reg st 4)

let test_rlwinm () =
  let st =
    run_snippet
      ~setup:(fun st -> set_reg st 5 0x12345678L)
      [
        slwi ~ra:3 ~rs:5 ~sh:8;
        srwi ~ra:4 ~rs:5 ~sh:16;
        rlwinm ~ra:6 ~rs:5 ~sh:8 ~mb:24 ~me:31 () (* extract top byte *);
        rlwinm ~ra:7 ~rs:5 ~sh:0 ~mb:28 ~me:3 () (* wrapping mask *);
      ]
  in
  Alcotest.(check int64) "slwi" 0x34567800L (reg st 3);
  Alcotest.(check int64) "srwi" 0x1234L (reg st 4);
  Alcotest.(check int64) "byte extract" 0x12L (reg st 6);
  Alcotest.(check int64) "wrapping mask" 0x10000008L (reg st 7)

let test_cr_and_bc () =
  (* cmpi cr0; blt should branch *)
  let st =
    run_snippet
      ~setup:(fun st -> set_reg st 5 (-2L |> Int64.logand 0xFFFFFFFFL))
      [
        cmpi ~crf:0 ~ra:5 ~imm:1;
        bc_raw ~bo:12 ~bi:0 8 (* blt +8 *);
        addi ~rd:3 ~ra:0 ~imm:99 (* skipped *);
        addi ~rd:4 ~ra:0 ~imm:1;
      ]
  in
  Alcotest.(check bool) "LT bit set" true
    (Int64.logand (cr st) 0x80000000L <> 0L);
  Alcotest.(check int64) "skipped" 0L (reg st 3);
  Alcotest.(check int64) "landed" 1L (reg st 4)

let test_record_form () =
  let st =
    run_snippet
      ~setup:(fun st -> set_reg st 5 5L)
      [ subf ~rc:true ~rd:3 ~ra:5 ~rb:5 () (* 0 -> EQ *) ]
  in
  Alcotest.(check int64) "CR0 EQ" 0x20000000L
    (Int64.logand (cr st) 0xF0000000L)

let test_bdnz () =
  (* load ctr = 3; loop: addi r3 += 1; bdnz loop *)
  let st =
    run_snippet
      [
        addi ~rd:5 ~ra:0 ~imm:3;
        mtctr ~rs:5;
        addi ~rd:3 ~ra:3 ~imm:1;
        bc_raw ~bo:16 ~bi:0 (-4) (* bdnz -4 *);
      ]
    (* run_snippet executes (List.length words) instructions = 4; the loop
       needs more; extend manually below *)
  in
  ignore st;
  (* redo with an explicit run loop *)
  let spec = spec () in
  let iface = Specsim.Synth.make spec "one_all" in
  let st = iface.st in
  let words =
    [
      addi ~rd:5 ~ra:0 ~imm:3;
      mtctr ~rs:5;
      addi ~rd:3 ~ra:3 ~imm:1;
      bc_raw ~bo:16 ~bi:0 (-4);
      sc;
    ]
  in
  List.iteri
    (fun i w ->
      Machine.Memory.write st.mem
        ~addr:(Int64.add 0x1000L (Int64.of_int (4 * i)))
        ~width:4 w)
    words;
  (* exit(0) syscall setup: r0 = 0 *)
  Machine.State.reset st ~pc:0x1000L;
  let os = Machine.Os_emu.create () in
  (match spec.abi with Some abi -> Machine.Os_emu.install os abi st | None -> ());
  let _ = Specsim.Iface.run_n iface 1000 in
  Alcotest.(check int64) "loop ran 3 times" 3L (reg st 3);
  Alcotest.(check int64) "ctr exhausted" 0L (spr st 1)

let test_lr_blr () =
  let st =
    run_snippet
      [
        b_raw ~lk:true 12 (* bl +12: LR = 0x1004, jump to 0x100C *);
        addi ~rd:3 ~ra:0 ~imm:99 (* 0x1004: executed after return *);
        b_raw 8 (* 0x1008: jump to 0x1010 (end) *);
        blr (* 0x100C: return to LR = 0x1004 *);
        addi ~rd:4 ~ra:0 ~imm:1 (* 0x1010 *);
      ]
  in
  Alcotest.(check int64) "lr" 0x1004L (spr st 0);
  Alcotest.(check int64) "returned" 99L (reg st 3)

let test_rlwimi_rlwnm () =
  let rlwimi ~ra ~rs ~sh ~mb ~me =
    Int64.of_int ((20 lsl 26) lor (rs lsl 21) lor (ra lsl 16) lor (sh lsl 11) lor (mb lsl 6) lor (me lsl 1))
  in
  let rlwnm ~ra ~rs ~rb ~mb ~me =
    Int64.of_int ((23 lsl 26) lor (rs lsl 21) lor (ra lsl 16) lor (rb lsl 11) lor (mb lsl 6) lor (me lsl 1))
  in
  let st =
    run_snippet
      ~setup:(fun st ->
        set_reg st 5 0x000000FFL;
        set_reg st 6 0xAAAAAAAAL;
        set_reg st 7 8L)
      [
        rlwimi ~ra:6 ~rs:5 ~sh:8 ~mb:16 ~me:23 (* insert FF at bits 8-15 *);
        rlwnm ~ra:3 ~rs:5 ~rb:7 ~mb:0 ~me:31 (* rotate left 8 *);
      ]
  in
  Alcotest.(check int64) "rlwimi inserts" 0xAAAAFFAAL (reg st 6);
  Alcotest.(check int64) "rlwnm rotates" 0x0000FF00L (reg st 3)

let test_cr_logic () =
  let crop xo ~bd ~ba ~bb =
    Int64.of_int ((19 lsl 26) lor (bd lsl 21) lor (ba lsl 16) lor (bb lsl 11) lor (xo lsl 1))
  in
  let st =
    run_snippet
      ~setup:(fun st -> set_reg st 5 1L)
      [
        cmpi ~crf:0 ~ra:5 ~imm:1 (* CR0 = EQ: bit 2 set *);
        crop 449 ~bd:4 ~ba:2 ~bb:2 (* cror 4,2,2: copy EQ into CR1.LT *);
        crop 193 ~bd:5 ~ba:2 ~bb:2 (* crxor 5,2,2: clear *);
      ]
  in
  let crv = cr st in
  Alcotest.(check bool) "CR0.EQ set" true (Int64.logand crv 0x20000000L <> 0L);
  Alcotest.(check bool) "CR1.LT set by cror" true
    (Int64.logand crv 0x08000000L <> 0L);
  Alcotest.(check bool) "CR1.GT cleared by crxor" true
    (Int64.logand crv 0x04000000L = 0L)

let test_indexed_halfword () =
  let lhzx ~rd ~ra ~rb = x_form ~xo:279 ~rs:rd ~ra ~rb () in
  let sthx ~rs ~ra ~rb = x_form ~xo:407 ~rs ~ra ~rb () in
  let st =
    run_snippet
      ~setup:(fun st ->
        set_reg st 5 0x2000L;
        set_reg st 6 4L;
        set_reg st 7 0xBEEFL)
      [ sthx ~rs:7 ~ra:5 ~rb:6; lhzx ~rd:3 ~ra:5 ~rb:6 ]
  in
  Alcotest.(check int64) "sthx/lhzx roundtrip" 0xBEEFL (reg st 3)

let test_memory_bigendian () =
  let st =
    run_snippet
      ~setup:(fun st -> set_reg st 5 0x2000L)
      [
        addis ~rd:3 ~ra:0 ~imm:0x1122;
        ori ~ra:3 ~rs:3 ~imm:0x3344;
        stw ~rs:3 ~ra:5 ~imm:0;
        lbz ~rd:4 ~ra:5 ~imm:0;
        lhz ~rd:6 ~ra:5 ~imm:2;
        lha ~rd:7 ~ra:5 ~imm:0;
      ]
  in
  Alcotest.(check int64) "big-endian first byte is MSB" 0x11L (reg st 4);
  Alcotest.(check int64) "lhz low half" 0x3344L (reg st 6);
  Alcotest.(check int64) "lha" 0x1122L (reg st 7)

(* ----------------------------------------------------------------- *)

let run_kernel bs (k : Vir.Kernels.sized) =
  let spec = spec () in
  let iface = Specsim.Synth.make spec bs in
  let st = iface.st in
  let os = Machine.Os_emu.create () in
  (match spec.abi with Some abi -> Machine.Os_emu.install os abi st | None -> ());
  let words = Isa_ppc.Ppc_asm.encode ~base:0x1000L k.program in
  List.iteri
    (fun i w ->
      Machine.Memory.write st.mem
        ~addr:(Int64.add 0x1000L (Int64.of_int (4 * i)))
        ~width:4 w)
    words;
  Machine.State.reset st ~pc:0x1000L;
  let _ = Specsim.Iface.run_n iface 50_000_000 in
  if not st.halted then Alcotest.failf "kernel %s did not terminate" k.kname;
  ( (match Machine.State.exit_status st with
    | Some s -> s land 0xff
    | None -> Alcotest.failf "kernel %s: no exit status" k.kname),
    Machine.Os_emu.output os )

let check_kernel bs (k : Vir.Kernels.sized) () =
  let expected = Vir.Lang.run k.program in
  let status, output = run_kernel bs k in
  Alcotest.(check int) (k.kname ^ " exit") expected.exit_status status;
  Alcotest.(check string) (k.kname ^ " output") expected.output output

let suite =
  [
    Alcotest.test_case "addi/addis/ori" `Quick test_addi_addis;
    Alcotest.test_case "addi with base" `Quick test_addi_ra_nonzero;
    Alcotest.test_case "arithmetic" `Quick test_arith;
    Alcotest.test_case "mulhw/mulhwu" `Quick test_mulhw;
    Alcotest.test_case "rlwinm" `Quick test_rlwinm;
    Alcotest.test_case "cr and bc" `Quick test_cr_and_bc;
    Alcotest.test_case "record form" `Quick test_record_form;
    Alcotest.test_case "bdnz" `Quick test_bdnz;
    Alcotest.test_case "lr/blr" `Quick test_lr_blr;
    Alcotest.test_case "rlwimi/rlwnm" `Quick test_rlwimi_rlwnm;
    Alcotest.test_case "cr logic" `Quick test_cr_logic;
    Alcotest.test_case "indexed halfword" `Quick test_indexed_halfword;
    Alcotest.test_case "big-endian memory" `Quick test_memory_bigendian;
  ]
  @ List.map
      (fun k ->
        Alcotest.test_case ("kernel " ^ k.Vir.Kernels.kname) `Quick
          (check_kernel "one_all" k))
      Vir.Kernels.test_suite
  @ List.map
      (fun k ->
        Alcotest.test_case ("kernel (block) " ^ k.Vir.Kernels.kname) `Quick
          (check_kernel "block_min" k))
      Vir.Kernels.test_suite
