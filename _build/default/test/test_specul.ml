(** Speculation journal: unit tests plus a model-based property test —
    rolling back to any checkpoint must restore exactly the state captured
    at that checkpoint, regardless of the interleaving of writes,
    checkpoints, commits and compactions. *)

open Machine

let classes =
  [ { Regfile.cname = "G"; count = 16; width = 64; hardwired_zero = None } ]

let fresh () =
  let st = State.create ~endian:Memory.Little classes in
  st.pc <- 0x1000L;
  (st, Specsim.Specul.create ())

(* journaled write helpers (what compiled hooks do) *)
let jwrite_reg j st flat v =
  Specsim.Specul.record_reg j st flat;
  Regfile.write_flat st.regs flat v

let jwrite_mem j st addr v =
  Specsim.Specul.record_store j st addr 8;
  Memory.write st.mem ~addr ~width:8 v

let test_basic_rollback () =
  let st, j = fresh () in
  Regfile.write_flat st.regs 3 100L;
  let t = Specsim.Specul.checkpoint j st in
  jwrite_reg j st 3 200L;
  jwrite_mem j st 0x40L 77L;
  st.pc <- 0x2000L;
  Specsim.Specul.rollback j st t;
  Alcotest.(check int64) "register restored" 100L (Regfile.read_flat st.regs 3);
  Alcotest.(check int64) "memory restored" 0L (Memory.read st.mem ~addr:0x40L ~width:8);
  Alcotest.(check int64) "pc restored" 0x1000L st.pc

let test_nested_rollback () =
  let st, j = fresh () in
  let t1 = Specsim.Specul.checkpoint j st in
  jwrite_reg j st 1 10L;
  let t2 = Specsim.Specul.checkpoint j st in
  jwrite_reg j st 1 20L;
  let t3 = Specsim.Specul.checkpoint j st in
  jwrite_reg j st 1 30L;
  Specsim.Specul.rollback j st t3;
  Alcotest.(check int64) "inner undone" 20L (Regfile.read_flat st.regs 1);
  Specsim.Specul.rollback j st t2;
  Alcotest.(check int64) "middle undone" 10L (Regfile.read_flat st.regs 1);
  Specsim.Specul.rollback j st t1;
  Alcotest.(check int64) "outer undone" 0L (Regfile.read_flat st.regs 1)

let test_commit_invalidates () =
  let st, j = fresh () in
  let t1 = Specsim.Specul.checkpoint j st in
  jwrite_reg j st 1 1L;
  let t2 = Specsim.Specul.checkpoint j st in
  jwrite_reg j st 1 2L;
  Specsim.Specul.commit j t1;
  Alcotest.check_raises "rollback below commit rejected"
    (Invalid_argument "Specul.rollback: invalid token") (fun () ->
      Specsim.Specul.rollback j st t1);
  (* the newer checkpoint still works *)
  Specsim.Specul.rollback j st t2;
  Alcotest.(check int64) "t2 still rollbackable" 1L (Regfile.read_flat st.regs 1)

let test_commit_all_resets () =
  let st, j = fresh () in
  let t1 = Specsim.Specul.checkpoint j st in
  jwrite_reg j st 1 1L;
  let t2 = Specsim.Specul.checkpoint j st in
  jwrite_reg j st 2 2L;
  Specsim.Specul.commit j t1;
  Specsim.Specul.commit j t2;
  Alcotest.(check int) "depth zero" 0 (Specsim.Specul.depth j);
  Alcotest.(check (pair int int)) "log reset" (0, 0) (Specsim.Specul.log_sizes j)

let test_tokens_survive_compact () =
  let st, j = fresh () in
  (* build many checkpoints, commit most, compact, then roll back a
     still-open one: the token must remain valid *)
  let tokens = Array.init 100 (fun i ->
      let t = Specsim.Specul.checkpoint j st in
      jwrite_reg j st (i mod 16) (Int64.of_int i);
      t)
  in
  Specsim.Specul.commit j tokens.(89);
  Specsim.Specul.compact j;
  let expected = Regfile.read_flat st.regs (95 mod 16) in
  ignore expected;
  Specsim.Specul.rollback j st tokens.(95);
  (* after rollback to checkpoint 95, writes 95..99 are undone *)
  Alcotest.(check int64) "write 95 undone: reg 15 has value from i=79"
    79L
    (Regfile.read_flat st.regs 15)

let test_rollback_clears_fault () =
  let st, j = fresh () in
  let t = Specsim.Specul.checkpoint j st in
  State.raise_fault st (Fault.Exit 1);
  Alcotest.(check bool) "halted" true st.halted;
  Specsim.Specul.rollback j st t;
  Alcotest.(check bool) "fault cleared" true (st.fault = None && not st.halted)

(* Model-based property: replay a random script of operations against
   both the journal and a list of full snapshots; rollback must agree. *)
let prop_matches_snapshots =
  let gen =
    QCheck.Gen.(
      list_size (int_range 5 60)
        (frequency
           [
             (4, map2 (fun r v -> `Wreg (r mod 16, Int64.of_int v)) nat int);
             (3, map2 (fun a v -> `Wmem ((a mod 32) * 8, Int64.of_int v)) nat int);
             (2, return `Checkpoint);
             (1, return `Commit_oldest);
           ]))
  in
  QCheck.Test.make ~count:200 ~name:"rollback restores snapshot state"
    (QCheck.make gen) (fun script ->
      let st, j = fresh () in
      (* (token, regs snapshot, mem snapshot) *)
      let snaps = ref [] in
      let committed = ref 0 in
      let mem_dump () =
        List.init 32 (fun i -> Memory.read st.mem ~addr:(Int64.of_int (i * 8)) ~width:8)
      in
      List.iter
        (fun op ->
          match op with
          | `Wreg (r, v) -> jwrite_reg j st r v
          | `Wmem (a, v) -> jwrite_mem j st (Int64.of_int a) v
          | `Checkpoint ->
            let t = Specsim.Specul.checkpoint j st in
            snaps := (t, Regfile.copy st.regs, mem_dump ()) :: !snaps
          | `Commit_oldest ->
            if Specsim.Specul.depth j > 0 then begin
              (* commit the oldest still-open snapshot *)
              match List.rev !snaps with
              | (t, _, _) :: _ when t >= !committed ->
                Specsim.Specul.commit j t;
                committed := t + 1;
                snaps := List.filter (fun (x, _, _) -> x > t) !snaps
              | _ -> ()
            end)
        script;
      match !snaps with
      | [] -> true
      | snaps ->
        (* roll back to a "random" (middle) open checkpoint *)
        let t, regs, mem = List.nth snaps (List.length snaps / 2) in
        Specsim.Specul.rollback j st t;
        Regfile.equal st.regs regs && mem_dump () = mem)

let suite =
  [
    Alcotest.test_case "basic rollback" `Quick test_basic_rollback;
    Alcotest.test_case "nested rollback" `Quick test_nested_rollback;
    Alcotest.test_case "commit invalidates" `Quick test_commit_invalidates;
    Alcotest.test_case "commit-all resets" `Quick test_commit_all_resets;
    Alcotest.test_case "tokens survive compact" `Quick test_tokens_survive_compact;
    Alcotest.test_case "rollback clears fault" `Quick test_rollback_clears_fault;
    QCheck_alcotest.to_alcotest prop_matches_snapshots;
  ]
