(** ARM ISA tests: flags, conditional execution, shifter operand, and
    differential kernel validation against the VIR reference. *)

let spec () = Lazy.force Isa_arm.Arm.spec

let run_snippet ?(setup = fun _ -> ()) words =
  let spec = spec () in
  let iface = Specsim.Synth.make spec "one_all" in
  let st = iface.st in
  setup st;
  List.iteri
    (fun i w ->
      Machine.Memory.write st.mem
        ~addr:(Int64.add 0x1000L (Int64.of_int (4 * i)))
        ~width:4 w)
    words;
  Machine.State.reset st ~pc:0x1000L;
  let di = Specsim.Di.create ~info_slots:iface.slots.di_size in
  for _ = 1 to List.length words do
    if not st.halted then iface.run_one di
  done;
  st

let reg st i = Machine.Regfile.read st.Machine.State.regs ~cls:0 ~idx:i
let flag st i = Machine.Regfile.read st.Machine.State.regs ~cls:1 ~idx:i
let set_reg st i v = Machine.Regfile.write st.Machine.State.regs ~cls:0 ~idx:i v

open Isa_arm.Arm_asm

let test_mov_imm () =
  let st = run_snippet [ dp_imm ~op:13 ~rn:0 ~rd:1 ~imm8:0xFF ~rot:14 () ] in
  (* 0xFF ror 28 = 0xFF0 *)
  Alcotest.(check int64) "rotated immediate" 0xFF0L (reg st 1)

let test_add_sub_flags () =
  let st =
    run_snippet
      ~setup:(fun st ->
        set_reg st 2 0xFFFFFFFFL;
        set_reg st 3 1L)
      [ dp_reg ~s:true ~op:4 ~rn:2 ~rd:1 ~rm:3 () ]
  in
  Alcotest.(check int64) "wraps to zero" 0L (reg st 1);
  Alcotest.(check int64) "Z set" 1L (flag st 1);
  Alcotest.(check int64) "C set" 1L (flag st 2);
  Alcotest.(check int64) "V clear" 0L (flag st 3)

let test_overflow () =
  let st =
    run_snippet
      ~setup:(fun st ->
        set_reg st 2 0x7FFFFFFFL;
        set_reg st 3 1L)
      [ dp_reg ~s:true ~op:4 ~rn:2 ~rd:1 ~rm:3 () ]
  in
  Alcotest.(check int64) "sum" 0x80000000L (reg st 1);
  Alcotest.(check int64) "V set" 1L (flag st 3);
  Alcotest.(check int64) "N set" 1L (flag st 0)

let test_conditional_execution () =
  (* cmp r2, r3 (equal); addeq r1, r1, #5 executes; addne r4, r4, #7 not *)
  let st =
    run_snippet
      ~setup:(fun st ->
        set_reg st 2 9L;
        set_reg st 3 9L)
      [
        dp_reg ~s:true ~op:10 ~rn:2 ~rd:0 ~rm:3 ();
        dp_imm ~cond:0x0 ~op:4 ~rn:1 ~rd:1 ~imm8:5 ~rot:0 ();
        dp_imm ~cond:0x1 ~op:4 ~rn:4 ~rd:4 ~imm8:7 ~rot:0 ();
      ]
  in
  Alcotest.(check int64) "eq executed" 5L (reg st 1);
  Alcotest.(check int64) "ne skipped" 0L (reg st 4)

let test_shifter_carry () =
  (* movs r1, r2, lsl #1 with r2 bit31 set -> C = 1 *)
  let st =
    run_snippet
      ~setup:(fun st -> set_reg st 2 0x80000001L)
      [ dp_reg ~s:true ~op:13 ~rn:0 ~rd:1 ~rm:2 ~shift_type:0 ~shift_imm:1 () ]
  in
  Alcotest.(check int64) "shifted" 2L (reg st 1);
  Alcotest.(check int64) "carry out of shifter" 1L (flag st 2)

let test_asr_special () =
  (* mov r1, r2, asr #0 means asr #32 *)
  let st =
    run_snippet
      ~setup:(fun st -> set_reg st 2 0x80000000L)
      [ dp_reg ~op:13 ~rn:0 ~rd:1 ~rm:2 ~shift_type:2 ~shift_imm:0 () ]
  in
  Alcotest.(check int64) "asr #32 of negative" 0xFFFFFFFFL (reg st 1)

let test_rsr_shift () =
  (* mov r1, r2, lsl r3 with r3 = 36 -> 0 *)
  let st =
    run_snippet
      ~setup:(fun st ->
        set_reg st 2 1L;
        set_reg st 3 36L)
      [ dp_rsr ~op:13 ~rn:0 ~rd:1 ~rm:2 ~shift_type:0 ~rs:3 () ]
  in
  Alcotest.(check int64) "lsl by 36 is 0" 0L (reg st 1)

let test_mul_mla () =
  let st =
    run_snippet
      ~setup:(fun st ->
        set_reg st 2 7L;
        set_reg st 3 6L;
        set_reg st 4 100L)
      [ mul ~rd:1 ~rm:2 ~rs:3 (); mla ~rd:5 ~rm:2 ~rs:3 ~ra:4 () ]
  in
  Alcotest.(check int64) "mul" 42L (reg st 1);
  Alcotest.(check int64) "mla" 142L (reg st 5)

let test_umull_smull () =
  let st =
    run_snippet
      ~setup:(fun st ->
        set_reg st 2 0xFFFFFFFFL;
        set_reg st 3 2L)
      [
        Int64.of_int ((0xE lsl 28) lor 0x00800090 lor (5 lsl 16) lor (4 lsl 12) lor (3 lsl 8) lor 2)
        (* umull r4(lo), r5(hi), r2, r3 *);
        Int64.of_int ((0xE lsl 28) lor 0x00C00090 lor (7 lsl 16) lor (6 lsl 12) lor (3 lsl 8) lor 2)
        (* smull r6(lo), r7(hi), r2, r3 *);
      ]
  in
  (* 0xFFFFFFFF * 2 = 0x1FFFFFFFE *)
  Alcotest.(check int64) "umull lo" 0xFFFFFFFEL (reg st 4);
  Alcotest.(check int64) "umull hi" 1L (reg st 5);
  (* -1 * 2 = -2 *)
  Alcotest.(check int64) "smull lo" 0xFFFFFFFEL (reg st 6);
  Alcotest.(check int64) "smull hi" 0xFFFFFFFFL (reg st 7)

let test_clz_mrs_msr () =
  let st =
    run_snippet
      ~setup:(fun st -> set_reg st 2 0x00010000L)
      [
        Int64.of_int ((0xE lsl 28) lor 0x016F0F10 lor (1 lsl 12) lor 2)
        (* clz r1, r2 *);
        (* set flags from r3 = 0xF0000000 via msr, then read back via mrs *)
        dp_imm ~op:13 ~rn:0 ~rd:3 ~imm8:0xF ~rot:2 () (* r3 = 0xF0000000 *);
        Int64.of_int ((0xE lsl 28) lor 0x0128F000 lor 3) (* msr cpsr_f, r3 *);
        Int64.of_int ((0xE lsl 28) lor 0x010F0000 lor (4 lsl 12)) (* mrs r4 *);
      ]
  in
  Alcotest.(check int64) "clz" 15L (reg st 1);
  Alcotest.(check int64) "NZCV set" 1L (flag st 0);
  Alcotest.(check int64) "mrs reads flags back" 0xF0000000L (reg st 4)

let test_memory () =
  let st =
    run_snippet
      ~setup:(fun st -> set_reg st 2 0x2000L)
      [
        dp_imm ~op:13 ~rn:0 ~rd:3 ~imm8:0xAB ~rot:0 ();
        strb ~rn:2 ~rt:3 ~imm:1 ();
        ldrb ~rn:2 ~rt:4 ~imm:1 ();
        strh ~rn:2 ~rt:3 ~imm:4 ();
        ldrh ~rn:2 ~rt:5 ~imm:4 ();
        str ~rn:2 ~rt:3 ~imm:8 ();
        ldr ~rn:2 ~rt:6 ~imm:8 ();
        ldrsb ~rn:2 ~rt:7 ~imm:1 ();
      ]
  in
  Alcotest.(check int64) "ldrb" 0xABL (reg st 4);
  Alcotest.(check int64) "ldrh" 0xABL (reg st 5);
  Alcotest.(check int64) "ldr" 0xABL (reg st 6);
  Alcotest.(check int64) "ldrsb sign-extends to 32" 0xFFFFFFABL (reg st 7)

let test_bl_bx () =
  let st =
    run_snippet
      ~setup:(fun st -> set_reg st 2 0L)
      [
        b_raw ~link:true ~off24:1 () (* bl +1: to 0x100C, lr = 0x1004 *);
        dp_imm ~op:4 ~rn:2 ~rd:2 ~imm8:99 ~rot:0 () (* skipped *);
        dp_imm ~op:4 ~rn:2 ~rd:2 ~imm8:1 ~rot:0 () (* 0x1008: ret lands here? no *);
        dp_imm ~op:4 ~rn:2 ~rd:2 ~imm8:2 ~rot:0 () (* 0x100C: executed *);
      ]
  in
  Alcotest.(check int64) "lr" 0x1004L (reg st 14);
  Alcotest.(check int64) "branched over" 2L (reg st 2)

(* ----------------------------------------------------------------- *)

let run_kernel bs (k : Vir.Kernels.sized) =
  let spec = spec () in
  let iface = Specsim.Synth.make spec bs in
  let st = iface.st in
  let os = Machine.Os_emu.create () in
  (match spec.abi with Some abi -> Machine.Os_emu.install os abi st | None -> ());
  let words = Isa_arm.Arm_asm.encode ~base:0x1000L k.program in
  List.iteri
    (fun i w ->
      Machine.Memory.write st.mem
        ~addr:(Int64.add 0x1000L (Int64.of_int (4 * i)))
        ~width:4 w)
    words;
  Machine.State.reset st ~pc:0x1000L;
  let _ = Specsim.Iface.run_n iface 50_000_000 in
  if not st.halted then Alcotest.failf "kernel %s did not terminate" k.kname;
  ( (match Machine.State.exit_status st with
    | Some s -> s land 0xff
    | None -> Alcotest.failf "kernel %s: no exit status" k.kname),
    Machine.Os_emu.output os )

let check_kernel bs (k : Vir.Kernels.sized) () =
  let expected = Vir.Lang.run k.program in
  let status, output = run_kernel bs k in
  Alcotest.(check int) (k.kname ^ " exit") expected.exit_status status;
  Alcotest.(check string) (k.kname ^ " output") expected.output output

let suite =
  [
    Alcotest.test_case "mov rotated imm" `Quick test_mov_imm;
    Alcotest.test_case "add/sub flags" `Quick test_add_sub_flags;
    Alcotest.test_case "overflow" `Quick test_overflow;
    Alcotest.test_case "conditional execution" `Quick test_conditional_execution;
    Alcotest.test_case "shifter carry" `Quick test_shifter_carry;
    Alcotest.test_case "asr #32 special case" `Quick test_asr_special;
    Alcotest.test_case "register shift saturation" `Quick test_rsr_shift;
    Alcotest.test_case "mul/mla" `Quick test_mul_mla;
    Alcotest.test_case "umull/smull" `Quick test_umull_smull;
    Alcotest.test_case "clz/mrs/msr" `Quick test_clz_mrs_msr;
    Alcotest.test_case "memory" `Quick test_memory;
    Alcotest.test_case "bl" `Quick test_bl_bx;
  ]
  @ List.map
      (fun k ->
        Alcotest.test_case ("kernel " ^ k.Vir.Kernels.kname) `Quick
          (check_kernel "one_all" k))
      Vir.Kernels.test_suite
  @ List.map
      (fun k ->
        Alcotest.test_case ("kernel (block) " ^ k.Vir.Kernels.kname) `Quick
          (check_kernel "block_min" k))
      Vir.Kernels.test_suite
