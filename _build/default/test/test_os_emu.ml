(** OS-emulation layer: deterministic syscalls through register ABIs. *)

open Machine

let abi : Os_emu.abi =
  { nr = (0, 0); args = [| (0, 1); (0, 2); (0, 3) |]; ret = (0, 0) }

let fresh ?input () =
  let st =
    State.create ~endian:Memory.Little
      [ { Regfile.cname = "G"; count = 8; width = 64; hardwired_zero = None } ]
  in
  let os = Os_emu.create ?input () in
  Os_emu.install os abi st;
  (st, os)

let syscall st n a b c =
  Regfile.write st.State.regs ~cls:0 ~idx:0 n;
  Regfile.write st.State.regs ~cls:0 ~idx:1 a;
  Regfile.write st.State.regs ~cls:0 ~idx:2 b;
  Regfile.write st.State.regs ~cls:0 ~idx:3 c;
  st.State.syscall_handler st;
  Regfile.read st.State.regs ~cls:0 ~idx:0

let test_exit () =
  let st, _ = fresh () in
  ignore (syscall st Os_emu.sys_exit 42L 0L 0L);
  Alcotest.(check bool) "halted" true st.halted;
  Alcotest.(check (option int)) "status" (Some 42) (State.exit_status st)

let test_write () =
  let st, os = fresh () in
  Memory.load_bytes st.mem 0x100L (Bytes.of_string "hello");
  let r = syscall st Os_emu.sys_write 1L 0x100L 5L in
  Alcotest.(check int64) "returns length" 5L r;
  Alcotest.(check string) "captured" "hello" (Os_emu.output os);
  ignore (syscall st Os_emu.sys_write 1L 0x100L 2L);
  Alcotest.(check string) "appends" "hellohe" (Os_emu.output os)

let test_read () =
  let st, _ = fresh ~input:"abcdef" () in
  let r = syscall st Os_emu.sys_read 0L 0x200L 4L in
  Alcotest.(check int64) "read 4" 4L r;
  Alcotest.(check string) "bytes placed" "abcd"
    (Bytes.to_string (Memory.dump_bytes st.mem 0x200L 4));
  let r = syscall st Os_emu.sys_read 0L 0x210L 10L in
  Alcotest.(check int64) "short read at eof" 2L r;
  let r = syscall st Os_emu.sys_read 0L 0x220L 10L in
  Alcotest.(check int64) "eof returns 0" 0L r

let test_brk () =
  let st, _ = fresh () in
  let initial = syscall st Os_emu.sys_brk 0L 0L 0L in
  Alcotest.(check int64) "default brk" 0x400000L initial;
  ignore (syscall st Os_emu.sys_brk 0x500000L 0L 0L);
  Alcotest.(check int64) "brk moved" 0x500000L (syscall st Os_emu.sys_brk 0L 0L 0L)

let test_time_deterministic () =
  let st, _ = fresh () in
  let a = syscall st Os_emu.sys_time 0L 0L 0L in
  let b = syscall st Os_emu.sys_time 0L 0L 0L in
  Alcotest.(check int64) "monotonic deterministic" (Int64.add a 1L) b

let test_getpid () =
  let st, _ = fresh () in
  Alcotest.(check int64) "pid" 42L (syscall st Os_emu.sys_getpid 0L 0L 0L)

let test_unknown () =
  let st, _ = fresh () in
  Alcotest.(check int64) "unknown returns -1" (-1L) (syscall st 999L 0L 0L 0L)

let test_default_handler_faults () =
  let st =
    State.create ~endian:Memory.Little
      [ { Regfile.cname = "G"; count = 8; width = 64; hardwired_zero = None } ]
  in
  st.syscall_handler st;
  Alcotest.(check bool) "faulted" true (st.fault <> None && st.halted)

let suite =
  [
    Alcotest.test_case "exit" `Quick test_exit;
    Alcotest.test_case "write" `Quick test_write;
    Alcotest.test_case "read" `Quick test_read;
    Alcotest.test_case "brk" `Quick test_brk;
    Alcotest.test_case "time deterministic" `Quick test_time_deterministic;
    Alcotest.test_case "getpid" `Quick test_getpid;
    Alcotest.test_case "unknown syscall" `Quick test_unknown;
    Alcotest.test_case "default handler faults" `Quick test_default_handler_faults;
  ]
