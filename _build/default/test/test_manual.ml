(** The hand-written simulator of §IV-A must agree with the synthesized
    one instruction by instruction, at both of its detail levels. *)

let load_manual program =
  let st = Manual.Manual_sim.make_machine () in
  let os = Machine.Os_emu.create () in
  let abi =
    { Machine.Os_emu.nr = (0, 0); args = [| (0, 1); (0, 2); (0, 3) |]; ret = (0, 0) }
  in
  Machine.Os_emu.install os abi st;
  List.iteri
    (fun i w ->
      Machine.Memory.write st.mem
        ~addr:(Int64.add 0x1000L (Int64.of_int (4 * i)))
        ~width:4 w)
    program;
  Machine.State.reset st ~pc:0x1000L;
  (st, os)

let run_manual mode program =
  let st, os = load_manual program in
  let budget = ref 1_000_000 in
  (match mode with
  | `Full ->
    let di = Manual.Manual_sim.Fig2.create () in
    while (not st.halted) && !budget > 0 do
      Manual.Manual_sim.do_in_one st di;
      decr budget
    done
  | `Min ->
    let di = Manual.Manual_sim.min_di () in
    while (not st.halted) && !budget > 0 do
      Manual.Manual_sim.do_in_one_less_info st di;
      decr budget
    done);
  (Machine.State.exit_status st, Machine.Os_emu.output os, st.instr_count)

let run_synthesized program =
  let spec = Lazy.force Demo_isa.spec in
  let iface = Specsim.Synth.make spec "one_all" in
  let st = iface.st in
  let os = Machine.Os_emu.create () in
  (match spec.abi with Some abi -> Machine.Os_emu.install os abi st | None -> ());
  Demo_isa.load_program st ~base:0x1000L program;
  let _ = Specsim.Iface.run_n iface 1_000_000 in
  (Machine.State.exit_status st, Machine.Os_emu.output os, st.instr_count)

let programs =
  [
    ("sum", Demo_isa.sum_program);
    ( "memory",
      Demo_isa.
        [
          addi ~ra:31 ~imm:0x2000 ~rc:4;
          addi ~ra:31 ~imm:(-77) ~rc:5;
          stq ~ra:4 ~imm:8 ~rb:5;
          ldq ~ra:4 ~imm:8 ~rc:6;
          cmplt ~ra:6 ~rb:31 ~rc:7 (* negative -> 1 *);
          addi ~ra:31 ~imm:0 ~rc:0;
          add ~ra:7 ~rb:31 ~rc:1;
          sys;
        ] );
    ( "branchy",
      Demo_isa.
        [
          addi ~ra:31 ~imm:5 ~rc:1;
          addi ~ra:31 ~imm:0 ~rc:2;
          mul ~ra:1 ~rb:1 ~rc:2 (* r2 = 25 *);
          beqz ~ra:31 ~off:1 (* always taken *);
          addi ~ra:31 ~imm:99 ~rc:2 (* skipped *);
          addi ~ra:31 ~imm:0 ~rc:0;
          add ~ra:2 ~rb:31 ~rc:1;
          sys;
        ] );
  ]

let check_program (name, program) () =
  let synth = run_synthesized program in
  let manual_full = run_manual `Full program in
  let manual_min = run_manual `Min program in
  Alcotest.(check (triple (option int) string int64))
    (name ^ ": Fig.3 interface matches synthesized")
    synth manual_full;
  Alcotest.(check (triple (option int) string int64))
    (name ^ ": Fig.4 interface matches synthesized")
    synth manual_min

(** Per-instruction information agreement: the manual Fig.3 structure and
    the synthesized one_all DI must expose the same effective address. *)
let test_info_agreement () =
  let program =
    Demo_isa.
      [
        addi ~ra:31 ~imm:0x3000 ~rc:4;
        addi ~ra:31 ~imm:42 ~rc:5;
        stq ~ra:4 ~imm:16 ~rb:5;
      ]
  in
  (* manual *)
  let st, _ = load_manual program in
  let mdi = Manual.Manual_sim.Fig2.create () in
  Manual.Manual_sim.do_in_one st mdi;
  Manual.Manual_sim.do_in_one st mdi;
  Manual.Manual_sim.do_in_one st mdi;
  (* synthesized *)
  let spec = Lazy.force Demo_isa.spec in
  let iface = Specsim.Synth.make spec "one_all" in
  Demo_isa.load_program iface.st ~base:0x1000L program;
  let sdi = Specsim.Di.create ~info_slots:iface.slots.di_size in
  iface.run_one sdi;
  iface.run_one sdi;
  iface.run_one sdi;
  let ea = Specsim.Iface.slot_of_exn iface "effective_addr" in
  Alcotest.(check int64) "same effective address" mdi.effective_addr
    (Specsim.Di.get sdi ea);
  Alcotest.(check int64) "same encoding" mdi.instr_bits sdi.encoding

let suite =
  List.map
    (fun p -> Alcotest.test_case ("manual vs synthesized: " ^ fst p) `Quick (check_program p))
    programs
  @ [ Alcotest.test_case "per-instruction info agreement" `Quick test_info_agreement ]
