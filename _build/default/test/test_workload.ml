(** Cross-ISA differential validation and the paper's rotating-interface
    validation procedure (§V-D). *)

let kernels = Vir.Kernels.test_suite

(** Every ISA must produce the VIR reference behaviour for every kernel —
    this is the closest analog of the paper's "ISA validation suite". *)
let check_cross_isa (k : Vir.Kernels.sized) () =
  let expected = Workload.reference k.program in
  List.iter
    (fun t ->
      let got = Workload.run t ~buildset:"one_all" k.program ~budget:50_000_000 in
      if not (Workload.agrees expected got) then
        Alcotest.failf "%s on %s: exit %d/%d output %S/%S" k.kname
          t.Workload.tname expected.exit_status got.exit_status
          expected.output got.output)
    Workload.targets

(** Rotating-interface validation: all twelve interfaces of an ISA share
    one machine, rotating per instruction/block. *)
let check_rotating (t : Workload.target) (k : Vir.Kernels.sized) () =
  let expected = Workload.reference k.program in
  let spec = Lazy.force t.spec in
  let buildsets = Lis.Spec.buildset_names spec in
  let got = Workload.run_rotating t ~buildsets k.program in
  Alcotest.(check int) (k.kname ^ " exit") expected.exit_status got.exit_status;
  Alcotest.(check string) (k.kname ^ " output") expected.output got.output

(** Interpreted backend agrees with the compiled backend on a full kernel. *)
let check_interpreted (t : Workload.target) () =
  let k = List.hd kernels in
  let a = Workload.run t ~buildset:"one_all" k.program in
  let b =
    Workload.run ~backend:Specsim.Synth.Interpreted t ~buildset:"one_all"
      k.program
  in
  Alcotest.(check bool) "backends agree" true (Workload.agrees a b)

(** The OS read syscall round-trips input across ISAs. *)
let echo_program =
  (* read up to 8 bytes into a buffer, write them back, exit(count) *)
  Vir.Lang.
    [
      Li (0, 2l) (* sys_read *);
      Li (1, 0l);
      Li (2, 0x00090000l);
      Li (3, 8l);
      Sys;
      Mv (4, 0) (* count *);
      Li (0, 1l) (* sys_write *);
      Li (1, 1l);
      Li (2, 0x00090000l);
      Mv (3, 4);
      Sys;
      Li (0, 0l);
      Mv (1, 4);
      Sys;
    ]

let check_echo (t : Workload.target) () =
  let got = Workload.run ~input:"hi there" t ~buildset:"one_all" echo_program in
  Alcotest.(check string) "echoed" "hi there" got.output;
  Alcotest.(check int) "count" 8 got.exit_status

(* ----------------------------------------------------------------- *)
(* Random-program differential testing                                 *)
(* ----------------------------------------------------------------- *)

(* Structured random VIR programs: v8 holds the data base, a prologue
   seeds registers, a body of random ALU/memory ops runs (optionally
   inside one bounded countdown loop), and the epilogue folds all
   registers into a checksum that is written out and returned. *)
let gen_vir_program =
  let open QCheck.Gen in
  let reg = int_range 9 14 in
  let op =
    frequency
      [
        (3, map2 (fun d v -> Vir.Lang.Li (d, Int32.of_int (v - 500))) reg (int_bound 1000));
        (2, map2 (fun d s -> Vir.Lang.Mv (d, s)) reg reg);
        (4, map3 (fun d a b -> Vir.Lang.Add (d, a, b)) reg reg reg);
        (2, map3 (fun d a b -> Vir.Lang.Sub (d, a, b)) reg reg reg);
        (2, map3 (fun d a b -> Vir.Lang.Mul (d, a, b)) reg reg reg);
        (2, map3 (fun d a b -> Vir.Lang.And_ (d, a, b)) reg reg reg);
        (2, map3 (fun d a b -> Vir.Lang.Or_ (d, a, b)) reg reg reg);
        (2, map3 (fun d a b -> Vir.Lang.Xor_ (d, a, b)) reg reg reg);
        (3, map3 (fun d a i -> Vir.Lang.Addi (d, a, i - 100)) reg reg (int_bound 200));
        (2, map3 (fun d a i -> Vir.Lang.Andi (d, a, i)) reg reg (int_bound 255));
        (2, map3 (fun d a i -> Vir.Lang.Shli (d, a, i)) reg reg (int_bound 31));
        (2, map3 (fun d a i -> Vir.Lang.Shri (d, a, i)) reg reg (int_bound 31));
        (2, map3 (fun d a i -> Vir.Lang.Sari (d, a, i)) reg reg (int_bound 31));
        (2, map2 (fun s i -> Vir.Lang.Stw (s, 8, 4 * i)) reg (int_bound 63));
        (2, map2 (fun d i -> Vir.Lang.Ldw (d, 8, 4 * i)) reg (int_bound 63));
        (1, map2 (fun s i -> Vir.Lang.Stb (s, 8, 256 + i)) reg (int_bound 63));
        (1, map2 (fun d i -> Vir.Lang.Ldb (d, 8, 256 + i)) reg (int_bound 63));
      ]
  in
  let* body = list_size (int_range 8 40) op in
  let* with_loop = bool in
  let* iters = int_range 2 9 in
  let prologue =
    Vir.Lang.
      [
        Li (8, 0x00100000l);
        Li (9, 3l); Li (10, 5l); Li (11, 7l); Li (12, 11l); Li (13, 13l);
        Li (14, 17l);
      ]
  in
  let wrapped =
    if with_loop then
      (Vir.Lang.Li (7, Int32.of_int iters) :: Vir.Lang.Label "body" :: body)
      @ Vir.Lang.[ Addi (7, 7, -1); Bcond (Ne, 7, 0, "body") ]
      (* note: v0 is 0 from reset *)
    else body
  in
  let fold =
    Vir.Lang.
      [
        Li (4, 0l);
        Add (4, 4, 9); Xor_ (4, 4, 10); Add (4, 4, 11); Xor_ (4, 4, 12);
        Add (4, 4, 13); Xor_ (4, 4, 14);
      ]
  in
  return (prologue @ wrapped @ fold @ Vir.Kernels.epilogue)

let arb_vir =
  QCheck.make gen_vir_program
    ~print:(fun p -> Format.asprintf "%a" Vir.Lang.pp p)

let prop_random_programs =
  QCheck.Test.make ~count:25 ~name:"random programs agree across ISAs and interfaces"
    arb_vir
    (fun program ->
      Vir.Lang.validate program;
      let expected = Workload.reference program in
      List.for_all
        (fun t ->
          List.for_all
            (fun bs ->
              let got = Workload.run t ~buildset:bs program ~budget:5_000_000 in
              Workload.agrees expected got)
            [ "one_all"; "block_min" ])
        Workload.targets)

let suite =
  List.map
    (fun (k : Vir.Kernels.sized) ->
      Alcotest.test_case ("cross-ISA " ^ k.kname) `Quick (check_cross_isa k))
    kernels
  @ List.concat_map
      (fun t ->
        [
          Alcotest.test_case
            ("rotating " ^ t.Workload.tname)
            `Quick
            (check_rotating t (List.nth kernels 3));
          Alcotest.test_case
            ("interpreted backend " ^ t.Workload.tname)
            `Quick (check_interpreted t);
          Alcotest.test_case ("echo " ^ t.Workload.tname) `Quick (check_echo t);
        ])
      Workload.targets
  @ [ QCheck_alcotest.to_alcotest prop_random_programs ]
