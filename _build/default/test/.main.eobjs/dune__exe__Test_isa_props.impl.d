test/test_isa_props.ml: Int32 Int64 Isa_alpha Isa_arm Isa_ppc Lazy Machine QCheck QCheck_alcotest Semir Specsim
