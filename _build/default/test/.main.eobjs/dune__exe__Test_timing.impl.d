test/test_timing.ml: Alcotest Int64 Isa_alpha Lazy Lis List Machine Specsim Timing Vir Workload
