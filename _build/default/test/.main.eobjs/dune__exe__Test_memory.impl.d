test/test_memory.ml: Alcotest Bytes Int64 Machine Memory QCheck QCheck_alcotest Semir
