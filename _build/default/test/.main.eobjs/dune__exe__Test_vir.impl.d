test/test_vir.ml: Alcotest Int64 Kernels Lang List Lower Printf String Vir Workload
