test/test_arm.ml: Alcotest Int64 Isa_arm Lazy List Machine Specsim Vir
