test/test_alpha.ml: Alcotest Int64 Isa_alpha Lazy List Machine Semir Specsim Vir
