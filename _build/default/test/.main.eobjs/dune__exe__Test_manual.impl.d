test/test_manual.ml: Alcotest Demo_isa Int64 Lazy List Machine Manual Specsim
