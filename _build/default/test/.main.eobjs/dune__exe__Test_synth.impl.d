test/test_synth.ml: Alcotest Demo_isa Int64 Lazy Lis List Machine Printf Specsim String
