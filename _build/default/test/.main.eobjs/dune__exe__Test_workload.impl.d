test/test_workload.ml: Alcotest Format Int32 Lazy Lis List QCheck QCheck_alcotest Specsim Vir Workload
