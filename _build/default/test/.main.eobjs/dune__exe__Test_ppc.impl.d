test/test_ppc.ml: Alcotest Int64 Isa_ppc Lazy List Machine Specsim Vir
