test/test_semir.ml: Alcotest Array Compile Eval Format Frame Int64 Ir List Machine Opt QCheck QCheck_alcotest Semir Value
