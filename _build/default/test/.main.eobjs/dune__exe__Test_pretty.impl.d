test/test_pretty.ml: Alcotest Array Demo_isa Int64 Isa_alpha Isa_arm Isa_ppc Lis List Machine Option Specsim Vir
