test/main.mli:
