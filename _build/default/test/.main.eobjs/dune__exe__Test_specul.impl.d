test/test_specul.ml: Alcotest Array Fault Int64 List Machine Memory QCheck QCheck_alcotest Regfile Specsim State
