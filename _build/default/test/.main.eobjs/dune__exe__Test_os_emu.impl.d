test/test_os_emu.ml: Alcotest Bytes Int64 Machine Memory Os_emu Regfile State
