test/test_regfile.ml: Alcotest Int64 Machine QCheck QCheck_alcotest Regfile
