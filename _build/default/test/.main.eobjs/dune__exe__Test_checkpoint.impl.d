test/test_checkpoint.ml: Alcotest Lazy List Machine Option Printf Specsim Vir Workload
