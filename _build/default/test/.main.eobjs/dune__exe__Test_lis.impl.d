test/test_lis.ml: Alcotest Array Demo_isa Int64 Lazy Lis List Machine Printf Semir Specsim String
