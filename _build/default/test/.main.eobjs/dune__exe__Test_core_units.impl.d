test/test_core_units.ml: Alcotest Array Demo_isa Int64 Isa_alpha Isa_arm Isa_ppc Lazy Lis List Printf QCheck QCheck_alcotest Specsim String Workload
