(** SemIR: the closure compiler is property-tested against the reference
    interpreter, and every optimization pass must preserve semantics. *)

open Semir

let n_cells = 4
let n_classes = 1

let classes =
  [ { Machine.Regfile.cname = "R"; count = 8; width = 64; hardwired_zero = None } ]

(* ------------------------------------------------------------------ *)
(* Random IR generation                                                *)
(* ------------------------------------------------------------------ *)

let gen_binop =
  QCheck.Gen.oneofl
    Ir.
      [
        Add; Sub; Mul; Mulhs; Mulhu; Divs; Divu; Rems; Remu; And; Or; Xor; Shl; Lshr; Ashr;
        Ror; Eq; Ne; Lts; Ltu; Les; Leu;
      ]

let gen_unop =
  QCheck.Gen.(
    oneof
      [
        return Ir.Neg;
        return Ir.Not;
        return Ir.Bool_not;
        map (fun n -> Ir.Sext (1 + (n mod 64))) nat;
        map (fun n -> Ir.Zext (1 + (n mod 64))) nat;
        return Ir.Popcount;
        return Ir.Clz;
        return Ir.Ctz;
      ])

let rec gen_expr depth =
  let open QCheck.Gen in
  if depth <= 0 then
    oneof
      [
        map (fun v -> Ir.Const (Int64.of_int v)) int;
        map (fun c -> Ir.Cell (c mod n_cells)) nat;
        return Ir.Pc;
        return Ir.Next_pc;
        map
          (fun (lo, len) ->
            let lo = lo mod 60 and len = 1 + (len mod 4) in
            Ir.Enc { lo; len; signed = len mod 2 = 0 })
          (pair nat nat);
      ]
  else
    let sub = gen_expr (depth - 1) in
    oneof
      [
        map (fun v -> Ir.Const (Int64.of_int v)) int;
        map (fun c -> Ir.Cell (c mod n_cells)) nat;
        map3 (fun op a b -> Ir.Bin (op, a, b)) gen_binop sub sub;
        map2 (fun op a -> Ir.Un (op, a)) gen_unop sub;
        map3 (fun c a b -> Ir.Ite (c, a, b)) sub sub sub;
        (* loads restricted to a small window so states stay comparable *)
        map
          (fun a ->
            Ir.Load
              {
                width = W8;
                signed = false;
                addr = Ir.Bin (And, a, Const 0xF8L);
              })
          sub;
        map
          (fun i ->
            Ir.Reg_read { cls = 0; index = Ir.Bin (And, i, Const 7L) })
          sub;
      ]

let rec gen_stmt depth =
  let open QCheck.Gen in
  let e = gen_expr 2 in
  let base =
    [
      map2 (fun c v -> Ir.Set_cell (c mod n_cells, v)) nat e;
      map2
        (fun a v ->
          Ir.Store
            { width = W8; addr = Ir.Bin (And, a, Const 0xF8L); value = v })
        e e;
      map (fun v -> Ir.Set_next_pc v) e;
      map2
        (fun i v ->
          Ir.Reg_write { cls = 0; index = Ir.Bin (And, i, Const 7L); value = v })
        e e;
    ]
  in
  if depth <= 0 then oneof base
  else
    oneof
      (map3
         (fun c t f -> Ir.If (c, t, f))
         e
         (list_size (int_bound 3) (gen_stmt (depth - 1)))
         (list_size (int_bound 3) (gen_stmt (depth - 1)))
      :: base)

let gen_program = QCheck.Gen.(list_size (int_bound 8) (gen_stmt 2))

let arb_program =
  QCheck.make gen_program
    ~print:(Format.asprintf "%a" (Ir.pp_program ?cell_name:None))

(* ------------------------------------------------------------------ *)
(* Execution harness                                                   *)
(* ------------------------------------------------------------------ *)

type mode = Interp | Compiled

let all_scratch = Array.init n_cells (fun i -> Frame.In_scratch i)

let fresh_state seed =
  let st = Machine.State.create ~endian:Machine.Memory.Little classes in
  for i = 0 to 7 do
    Machine.Regfile.write st.regs ~cls:0 ~idx:i (Int64.of_int ((seed * 31) + (i * 1234567)))
  done;
  for i = 0 to 31 do
    Machine.Memory.write st.mem
      ~addr:(Int64.of_int (i * 8))
      ~width:8
      (Int64.of_int ((seed * 7) + (i * 987654321)))
  done;
  st

let fresh_frame seed =
  let fr = Frame.create ~di_slots:1 ~scratch_slots:n_cells in
  fr.pc <- Int64.of_int (4096 + (seed mod 64 * 4));
  fr.next_pc <- Int64.add fr.pc 4L;
  fr.enc <- Int64.of_int (seed * 2654435761);
  for i = 0 to n_cells - 1 do
    fr.scratch.(i) <- Int64.of_int ((seed * 13) + (i * 55555))
  done;
  fr

let run mode ?(loc = all_scratch) p seed =
  let st = fresh_state seed in
  let fr = fresh_frame seed in
  (match mode with
  | Interp -> Eval.exec ~loc st fr p
  | Compiled -> (Compile.program ~loc p) st fr);
  (st, fr)

let observe_full (st, (fr : Frame.t)) =
  let regs = List.init 8 (fun i -> Machine.Regfile.read st.Machine.State.regs ~cls:0 ~idx:i) in
  let mem =
    List.init 32 (fun i ->
        Machine.Memory.read st.Machine.State.mem ~addr:(Int64.of_int (i * 8)) ~width:8)
  in
  let cells = Array.to_list (Array.copy fr.scratch) in
  (regs, mem, cells, fr.next_pc)

let observe_arch (st, (fr : Frame.t)) =
  (* architectural state only: what DCE must preserve *)
  let regs = List.init 8 (fun i -> Machine.Regfile.read st.Machine.State.regs ~cls:0 ~idx:i) in
  let mem =
    List.init 32 (fun i ->
        Machine.Memory.read st.Machine.State.mem ~addr:(Int64.of_int (i * 8)) ~width:8)
  in
  (regs, mem, fr.next_pc)

(* ------------------------------------------------------------------ *)
(* Properties                                                          *)
(* ------------------------------------------------------------------ *)

let prop_compile_matches_eval =
  QCheck.Test.make ~name:"compiled closures = reference interpreter" ~count:300
    QCheck.(pair arb_program small_nat)
    (fun (p, seed) ->
      observe_full (run Interp p seed) = observe_full (run Compiled p seed))

let prop_fold_preserves =
  QCheck.Test.make ~name:"constant folding preserves semantics" ~count:300
    QCheck.(pair arb_program small_nat)
    (fun (p, seed) ->
      observe_full (run Compiled p seed)
      = observe_full (run Compiled (Opt.fold p) seed))

let prop_const_prop_preserves =
  QCheck.Test.make ~name:"constant propagation preserves semantics" ~count:300
    QCheck.(pair arb_program small_nat)
    (fun (p, seed) ->
      observe_full (run Compiled p seed)
      = observe_full (run Compiled (Opt.const_prop p) seed))

let prop_dce_preserves_arch =
  QCheck.Test.make ~name:"DCE preserves architectural state" ~count:300
    QCheck.(pair arb_program small_nat)
    (fun (p, seed) ->
      let dced = Opt.dce ~keep:(fun _ -> false) p in
      observe_arch (run Compiled p seed) = observe_arch (run Compiled dced seed))

let prop_specialize_enc =
  QCheck.Test.make ~name:"encoding specialization preserves semantics"
    ~count:300
    QCheck.(pair arb_program small_nat)
    (fun (p, seed) ->
      let fr = fresh_frame seed in
      let sp = Opt.specialize_enc ~enc:fr.enc p in
      observe_full (run Compiled p seed) = observe_full (run Compiled sp seed))

let prop_full_pipeline =
  QCheck.Test.make ~name:"optimize pipeline preserves architectural state"
    ~count:300
    QCheck.(pair arb_program small_nat)
    (fun (p, seed) ->
      let fr = fresh_frame seed in
      let opt = Opt.optimize ~enc:fr.enc ~keep:(fun _ -> false) p in
      observe_arch (run Compiled p seed) = observe_arch (run Compiled opt seed))

(* ------------------------------------------------------------------ *)
(* Unit tests for scalar semantics                                     *)
(* ------------------------------------------------------------------ *)

let test_value_ops () =
  Alcotest.(check int64) "sext byte" (-1L) (Value.sext 0xFFL 8);
  Alcotest.(check int64) "sext positive" 0x7FL (Value.sext 0x7FL 8);
  Alcotest.(check int64) "zext" 0xFFL (Value.zext 0xFFFFFFFFFFFFFFFFL 8);
  Alcotest.(check int64) "ror" 0x8000000000000000L (Value.ror 1L 1);
  Alcotest.(check int64) "ror wrap" 1L (Value.ror 1L 64);
  Alcotest.(check int64) "popcount" 3L (Value.popcount 0b10101L);
  Alcotest.(check int64) "clz of 1" 63L (Value.clz 1L);
  Alcotest.(check int64) "clz of 0" 64L (Value.clz 0L);
  Alcotest.(check int64) "ctz" 3L (Value.ctz 8L);
  Alcotest.(check int64) "div by zero" 0L (Value.divs 5L 0L);
  Alcotest.(check int64) "min_int / -1" Int64.min_int (Value.divs Int64.min_int (-1L));
  Alcotest.(check int64) "unsigned div" 2L (Value.divu (-1L) 0x7FFFFFFFFFFFFFFFL)

let test_enc_bits () =
  let enc = 0xABCD1234L in
  Alcotest.(check int64) "low bits" 4L (Value.enc_bits enc ~lo:0 ~len:4 ~signed:false);
  Alcotest.(check int64) "mid bits" 0xCDL
    (Value.enc_bits enc ~lo:16 ~len:8 ~signed:false);
  Alcotest.(check int64) "signed bits" (-2L)
    (Value.enc_bits 0xEL ~lo:0 ~len:4 ~signed:true)

let test_validate () =
  (match Ir.validate ~n_cells:2 ~n_classes:1 [ Ir.Set_cell (5, Const 0L) ] with
  | exception Ir.Invalid _ -> ()
  | () -> Alcotest.fail "expected Invalid");
  match
    Ir.validate ~n_cells:2 ~n_classes:1
      [ Ir.Reg_write { cls = 3; index = Const 0L; value = Const 0L } ]
  with
  | exception Ir.Invalid _ -> ()
  | () -> Alcotest.fail "expected Invalid"

let test_dce_keeps_side_effects () =
  (* A dead cell assignment is removed, a store never is. *)
  let p =
    Ir.
      [
        Set_cell (0, Const 1L);
        Store { width = W8; addr = Const 0L; value = Const 42L };
      ]
  in
  let d = Opt.dce ~keep:(fun _ -> false) p in
  Alcotest.(check int) "only the store survives" 1 (List.length d)

let test_dce_keeps_visible () =
  let p = Ir.[ Set_cell (0, Const 1L); Set_cell (1, Const 2L) ] in
  let d = Opt.dce ~keep:(fun c -> c = 1) p in
  Alcotest.(check int) "one assignment survives" 1 (List.length d)

let test_dce_chain () =
  (* c0 feeds c1 feeds a store: everything live. *)
  let p =
    Ir.
      [
        Set_cell (0, Const 7L);
        Set_cell (1, Bin (Add, Cell 0, Const 1L));
        Store { width = W8; addr = Const 0L; value = Cell 1 };
      ]
  in
  let d = Opt.dce ~keep:(fun _ -> false) p in
  Alcotest.(check int) "chain kept" 3 (List.length d)

let test_const_prop_folds_regid () =
  (* The block-specialization pattern: decode writes a constant id cell,
     operand read indexes a register with it. *)
  let p =
    Ir.
      [
        Set_cell (0, Const 5L);
        Set_cell (1, Reg_read { cls = 0; index = Cell 0 });
      ]
  in
  match Opt.const_prop p with
  | [ _; Ir.Set_cell (1, Reg_read { index = Const 5L; _ }) ] -> ()
  | p' ->
    Alcotest.failf "register index not propagated: %a"
      (Ir.pp_program ?cell_name:None)
      p'

let suite =
  [
    Alcotest.test_case "scalar ops" `Quick test_value_ops;
    Alcotest.test_case "encoding bitfields" `Quick test_enc_bits;
    Alcotest.test_case "validate rejects bad IR" `Quick test_validate;
    Alcotest.test_case "DCE keeps side effects" `Quick test_dce_keeps_side_effects;
    Alcotest.test_case "DCE keeps visible cells" `Quick test_dce_keeps_visible;
    Alcotest.test_case "DCE keeps live chains" `Quick test_dce_chain;
    Alcotest.test_case "const-prop folds register ids" `Quick test_const_prop_folds_regid;
    QCheck_alcotest.to_alcotest prop_compile_matches_eval;
    QCheck_alcotest.to_alcotest prop_fold_preserves;
    QCheck_alcotest.to_alcotest prop_const_prop_preserves;
    QCheck_alcotest.to_alcotest prop_dce_preserves_arch;
    QCheck_alcotest.to_alcotest prop_specialize_enc;
    QCheck_alcotest.to_alcotest prop_full_pipeline;
  ]
