(** Alpha ISA tests: per-instruction semantics via hand-assembled snippets,
    and differential validation of every kernel against the VIR reference
    executor. *)

let spec () = Lazy.force Isa_alpha.Alpha.spec

(* ----------------------------------------------------------------- *)
(* Snippet harness: run a few hand-encoded instructions, inspect regs  *)
(* ----------------------------------------------------------------- *)

let run_snippet ?(setup = fun _ -> ()) words =
  let spec = spec () in
  let iface = Specsim.Synth.make spec "one_all" in
  let st = iface.st in
  setup st;
  List.iteri
    (fun i w ->
      Machine.Memory.write st.mem
        ~addr:(Int64.add 0x1000L (Int64.of_int (4 * i)))
        ~width:4 w)
    words;
  Machine.State.reset st ~pc:0x1000L;
  let di = Specsim.Di.create ~info_slots:iface.slots.di_size in
  let n = List.length words in
  for _ = 1 to n do
    if not st.halted then iface.run_one di
  done;
  st

let reg st i = Machine.Regfile.read st.Machine.State.regs ~cls:0 ~idx:i

let set_reg st i v = Machine.Regfile.write st.Machine.State.regs ~cls:0 ~idx:i v

let check_alu name words expected () =
  (* convention: result in R1; R2=7, R3=-3, R4=0x123456789A as inputs *)
  let st =
    run_snippet
      ~setup:(fun st ->
        set_reg st 2 7L;
        set_reg st 3 (-3L);
        set_reg st 4 0x123456789AL)
      words
  in
  Alcotest.(check int64) name expected (reg st 1)

open Isa_alpha.Alpha_asm

let alu_cases =
  [
    ("addq", [ addq ~ra:2 ~rb:3 ~rc:1 ], 4L);
    ("addq_lit", [ addq_lit ~ra:2 ~lit:200 ~rc:1 ], 207L);
    ("subq", [ subq ~ra:2 ~rb:3 ~rc:1 ], 10L);
    ("addl wraps+sext", [ addl ~ra:4 ~rb:2 ~rc:1 ], Semir.Value.sext 0x345678A1L 32);
    ("subl", [ subl ~ra:3 ~rb:2 ~rc:1 ], -10L);
    ("mull", [ mull ~ra:2 ~rb:3 ~rc:1 ], -21L);
    ("mulq", [ mulq ~ra:2 ~rb:3 ~rc:1 ], -21L);
    ("umulh", [ umulh ~ra:3 ~rb:2 ~rc:1 ], 6L);
    (* (2^64-3) * 7 = 7*2^64 - 21 -> high = 6 *)
    ("cmpeq false", [ cmpeq ~ra:2 ~rb:3 ~rc:1 ], 0L);
    ("cmplt", [ cmplt ~ra:3 ~rb:2 ~rc:1 ], 1L);
    ("cmple", [ cmple ~ra:2 ~rb:2 ~rc:1 ], 1L);
    ("cmpult on negative", [ cmpult ~ra:3 ~rb:2 ~rc:1 ], 0L);
    ("cmpule", [ cmpule ~ra:2 ~rb:3 ~rc:1 ], 1L);
    ("and", [ and_ ~ra:2 ~rb:3 ~rc:1 ], 5L);
    ("and_lit", [ and_lit ~ra:4 ~lit:0xFF ~rc:1 ], 0x9AL);
    ("bis", [ bis ~ra:2 ~rb:3 ~rc:1 ], -1L);
    ("xor", [ xor ~ra:2 ~rb:2 ~rc:1 ], 0L);
    ("sll_lit", [ sll_lit ~ra:2 ~lit:4 ~rc:1 ], 112L);
    ("srl_lit", [ srl_lit ~ra:3 ~lit:60 ~rc:1 ], 15L);
    ("sra_lit", [ sra_lit ~ra:3 ~lit:1 ~rc:1 ], -2L);
    ("zapnot low 4 bytes", [ zapnot_lit ~ra:4 ~lit:0x0F ~rc:1 ], 0x3456789AL);
    ("cmoveq not taken", [ cmoveq ~ra:2 ~rb:3 ~rc:1 ], 0L);
    ("s4addq", [ opr 0x10 0x22 ~ra:2 ~rb:3 ~rc:1 ], 25L);
    ("s8subq", [ opr 0x10 0x3B ~ra:2 ~rb:3 ~rc:1 ], 59L);
    ("s4addl wraps", [ opr 0x10 0x02 ~ra:4 ~rb:2 ~rc:1 ],
      Semir.Value.sext (Int64.add (Int64.shift_left 0x123456789AL 2) 7L) 32);
    ("insbl", [ opl 0x12 0x0B ~ra:2 ~lit:2 ~rc:1 ], 0x070000L);
    ("inswl", [ opr 0x12 0x1B ~ra:4 ~rb:2 ~rc:1 ],
      Int64.shift_left 0x789AL 56 |> fun _ -> 0x9A00000000000000L |> fun _ ->
      Int64.shift_left (Int64.logand 0x123456789AL 0xFFFFL) 56);
    ("mskbl", [ opr 0x12 0x02 ~ra:4 ~rb:31 ~rc:1 ], 0x1234567800L);
    ("mskql clears all", [ opr 0x12 0x32 ~ra:4 ~rb:31 ~rc:1 ], 0L);
    ("ctpop", [ opr 0x1C 0x30 ~ra:31 ~rb:2 ~rc:1 ], 3L);
    ("ctlz", [ opr 0x1C 0x32 ~ra:31 ~rb:2 ~rc:1 ], 61L);
    ("cttz", [ opr 0x1C 0x33 ~ra:31 ~rb:2 ~rc:1 ], 0L);
    ("extwl_lit", [ opl 0x12 0x16 ~ra:4 ~lit:1 ~rc:1 ], 0x5678L);
    ("cmovlbs_lit taken", [ opl 0x11 0x14 ~ra:2 ~lit:9 ~rc:1 ], 9L);
    ("lda", [ lda ~ra:1 ~rb:2 ~disp:(-7) ], 0L);
    ("ldah", [ ldah ~ra:1 ~rb:31 ~disp:2 ], 0x20000L);
  ]

let test_hardwired_r31 () =
  let st = run_snippet [ addq_lit ~ra:31 ~lit:5 ~rc:31 ] in
  Alcotest.(check int64) "R31 still zero" 0L (reg st 31)

let test_memory_roundtrip () =
  let st =
    run_snippet
      ~setup:(fun st -> set_reg st 2 0x2000L)
      [
        lda ~ra:3 ~rb:31 ~disp:(-256);
        stq ~ra:3 ~rb:2 ~disp:16;
        ldq ~ra:1 ~rb:2 ~disp:16;
        ldl ~ra:4 ~rb:2 ~disp:16;
        ldbu ~ra:5 ~rb:2 ~disp:17;
        ldwu ~ra:6 ~rb:2 ~disp:16;
      ]
  in
  Alcotest.(check int64) "ldq" (-256L) (reg st 1);
  Alcotest.(check int64) "ldl sign-extends" (-256L) (reg st 4);
  Alcotest.(check int64) "ldbu" 0xFFL (reg st 5);
  Alcotest.(check int64) "ldwu" 0xFF00L (reg st 6)

let test_branches () =
  (* beq taken skips the poison instruction *)
  let beq_taken =
    [
      br_raw 0x39 ~ra:31 ~disp21:1 (* beq r31 (+1): always taken *);
      addq_lit ~ra:31 ~lit:99 ~rc:1 (* skipped *);
      addq_lit ~ra:31 ~lit:5 ~rc:2;
    ]
  in
  let st = run_snippet beq_taken in
  Alcotest.(check int64) "skipped" 0L (reg st 1);
  Alcotest.(check int64) "landed" 5L (reg st 2)

let test_jmp_and_link () =
  let st =
    run_snippet
      ~setup:(fun st -> set_reg st 2 0x100CL)
      [
        jmp ~ra:1 ~rb:2 (* at 0x1000: r1 = 0x1004, jump to 0x100C *);
        addq_lit ~ra:31 ~lit:99 ~rc:3 (* 0x1004: skipped *);
        addq_lit ~ra:31 ~lit:98 ~rc:4 (* 0x1008: skipped *);
        addq_lit ~ra:31 ~lit:1 ~rc:5 (* 0x100C: executed *);
      ]
  in
  Alcotest.(check int64) "link" 0x1004L (reg st 1);
  Alcotest.(check int64) "skipped" 0L (reg st 3);
  Alcotest.(check int64) "landed" 1L (reg st 5)

(* ----------------------------------------------------------------- *)
(* Differential: kernels vs the VIR reference                          *)
(* ----------------------------------------------------------------- *)

let run_kernel bs (k : Vir.Kernels.sized) =
  let spec = spec () in
  let iface = Specsim.Synth.make spec bs in
  let st = iface.st in
  let os = Machine.Os_emu.create () in
  (match spec.abi with Some abi -> Machine.Os_emu.install os abi st | None -> ());
  let words = Isa_alpha.Alpha_asm.encode ~base:0x1000L k.program in
  List.iteri
    (fun i w ->
      Machine.Memory.write st.mem
        ~addr:(Int64.add 0x1000L (Int64.of_int (4 * i)))
        ~width:4 w)
    words;
  Machine.State.reset st ~pc:0x1000L;
  let budget = 50_000_000 in
  let _ = Specsim.Iface.run_n iface budget in
  if not st.halted then Alcotest.failf "kernel %s did not terminate" k.kname;
  ( (match Machine.State.exit_status st with
    | Some s -> s land 0xff
    | None -> Alcotest.failf "kernel %s: no exit status" k.kname),
    Machine.Os_emu.output os )

let check_kernel (k : Vir.Kernels.sized) () =
  let expected = Vir.Lang.run k.program in
  let status, output = run_kernel "one_all" k in
  Alcotest.(check int) (k.kname ^ " exit") expected.exit_status status;
  Alcotest.(check string) (k.kname ^ " output") expected.output output

let check_kernel_block (k : Vir.Kernels.sized) () =
  let expected = Vir.Lang.run k.program in
  let status, output = run_kernel "block_min" k in
  Alcotest.(check int) (k.kname ^ " exit") expected.exit_status status;
  Alcotest.(check string) (k.kname ^ " output") expected.output output

let suite =
  List.map
    (fun (name, words, expected) ->
      Alcotest.test_case name `Quick (check_alu name words expected))
    alu_cases
  @ [
      Alcotest.test_case "hardwired R31" `Quick test_hardwired_r31;
      Alcotest.test_case "memory roundtrip" `Quick test_memory_roundtrip;
      Alcotest.test_case "branches" `Quick test_branches;
      Alcotest.test_case "jmp and link" `Quick test_jmp_and_link;
    ]
  @ List.map
      (fun k ->
        Alcotest.test_case ("kernel " ^ k.Vir.Kernels.kname) `Quick
          (check_kernel k))
      Vir.Kernels.test_suite
  @ List.map
      (fun k ->
        Alcotest.test_case ("kernel (block) " ^ k.Vir.Kernels.kname) `Quick
          (check_kernel_block k))
      Vir.Kernels.test_suite
