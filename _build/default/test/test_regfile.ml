(** Unit and property tests for the register file. *)

open Machine

let classes =
  [
    { Regfile.cname = "GPR"; count = 32; width = 64; hardwired_zero = Some 31 };
    { Regfile.cname = "CR"; count = 8; width = 4; hardwired_zero = None };
    { Regfile.cname = "SPR"; count = 4; width = 32; hardwired_zero = None };
  ]

let test_layout () =
  let r = Regfile.create classes in
  Alcotest.(check int) "total" 44 (Regfile.total r);
  Alcotest.(check int) "GPR base" 0 (Regfile.base r 0);
  Alcotest.(check int) "CR base" 32 (Regfile.base r 1);
  Alcotest.(check int) "SPR base" 40 (Regfile.base r 2);
  Alcotest.(check int) "class lookup" 1 (Regfile.class_index r "CR")

let test_hardwired_zero () =
  let r = Regfile.create classes in
  Regfile.write r ~cls:0 ~idx:31 123L;
  Alcotest.(check int64) "R31 stays zero" 0L (Regfile.read r ~cls:0 ~idx:31);
  Regfile.write r ~cls:0 ~idx:30 123L;
  Alcotest.(check int64) "R30 written" 123L (Regfile.read r ~cls:0 ~idx:30);
  Alcotest.(check bool) "flat hardwired" true (Regfile.is_hardwired_flat r 31)

let test_width_masking () =
  let r = Regfile.create classes in
  Regfile.write r ~cls:1 ~idx:0 0xFFL;
  Alcotest.(check int64) "CR masked to 4 bits" 0xFL (Regfile.read r ~cls:1 ~idx:0);
  Regfile.write r ~cls:2 ~idx:0 0x1_FFFF_FFFFL;
  Alcotest.(check int64) "SPR masked to 32 bits" 0xFFFF_FFFFL
    (Regfile.read r ~cls:2 ~idx:0)

let test_bounds () =
  let r = Regfile.create classes in
  Alcotest.check_raises "out of range"
    (Invalid_argument "Regfile: index 32 out of range for class GPR") (fun () ->
      ignore (Regfile.read r ~cls:0 ~idx:32))

let test_bad_class_defs () =
  Alcotest.check_raises "duplicate class"
    (Invalid_argument "Regfile: duplicate class GPR") (fun () ->
      ignore
        (Regfile.create
           [
             { Regfile.cname = "GPR"; count = 4; width = 64; hardwired_zero = None };
             { Regfile.cname = "GPR"; count = 4; width = 64; hardwired_zero = None };
           ]))

let test_copy_blit_equal () =
  let a = Regfile.create classes in
  Regfile.write a ~cls:0 ~idx:5 99L;
  let b = Regfile.copy a in
  Alcotest.(check bool) "copy equal" true (Regfile.equal a b);
  Regfile.write b ~cls:0 ~idx:5 1L;
  Alcotest.(check bool) "copies independent" false (Regfile.equal a b);
  Regfile.blit ~src:a ~dst:b;
  Alcotest.(check bool) "blit restores" true (Regfile.equal a b)

(* Property: read_flat/write_flat agree with class-indexed access. *)
let prop_flat_agrees =
  QCheck.Test.make ~name:"flat accessors agree with class accessors" ~count:500
    QCheck.(pair (int_bound 43) (map Int64.of_int int))
    (fun (flat, v) ->
      let r = Regfile.create classes in
      (* find class of flat index *)
      let cls = if flat < 32 then 0 else if flat < 40 then 1 else 2 in
      let idx = flat - Regfile.base r cls in
      Regfile.write_flat r flat v;
      Int64.equal (Regfile.read r ~cls ~idx) (Regfile.read_flat r flat))

let suite =
  [
    Alcotest.test_case "layout" `Quick test_layout;
    Alcotest.test_case "hardwired zero" `Quick test_hardwired_zero;
    Alcotest.test_case "width masking" `Quick test_width_masking;
    Alcotest.test_case "bounds" `Quick test_bounds;
    Alcotest.test_case "bad class defs" `Quick test_bad_class_defs;
    Alcotest.test_case "copy/blit/equal" `Quick test_copy_blit_equal;
    QCheck_alcotest.to_alcotest prop_flat_agrees;
  ]
