(** Timing-simulator tests: substrates (cache, predictor) and all five
    decoupled organizations running real kernels. *)

let kernel = List.nth Vir.Kernels.test_suite 3 (* sort: branchy *)
let mem_kernel = List.hd Vir.Kernels.test_suite (* vec_sum: streaming *)

(* ----------------------------------------------------------------- *)
(* Cache                                                               *)
(* ----------------------------------------------------------------- *)

let test_cache_basic () =
  let c =
    Timing.Cache.create
      { size_bytes = 1024; ways = 2; line_bytes = 64; hit_latency = 1; miss_penalty = 10 }
  in
  Alcotest.(check bool) "cold miss" false (Timing.Cache.access c 0L);
  Alcotest.(check bool) "hit same line" true (Timing.Cache.access c 63L);
  Alcotest.(check bool) "miss next line" false (Timing.Cache.access c 64L);
  Alcotest.(check int) "hit latency" 1 (Timing.Cache.latency c 0L);
  Alcotest.(check int) "miss latency" 11 (Timing.Cache.latency c 0x10000L)

let test_cache_lru () =
  (* 2 ways, 8 sets of 64B: addresses 0, 1024, 2048 map to set 0 *)
  let c =
    Timing.Cache.create
      { size_bytes = 1024; ways = 2; line_bytes = 64; hit_latency = 1; miss_penalty = 10 }
  in
  ignore (Timing.Cache.access c 0L);
  ignore (Timing.Cache.access c 1024L);
  ignore (Timing.Cache.access c 0L) (* touch 0: now 1024 is LRU *);
  ignore (Timing.Cache.access c 2048L) (* evicts 1024 *);
  Alcotest.(check bool) "0 still resident" true (Timing.Cache.access c 0L);
  Alcotest.(check bool) "1024 evicted" false (Timing.Cache.access c 1024L)

let test_cache_bad_config () =
  Alcotest.(check bool) "rejects non-power-of-two sets" true
    (match
       Timing.Cache.create
         { size_bytes = 1000; ways = 3; line_bytes = 64; hit_latency = 1; miss_penalty = 1 }
     with
    | exception Invalid_argument _ -> true
    | _ -> false)

(* ----------------------------------------------------------------- *)
(* Predictor                                                           *)
(* ----------------------------------------------------------------- *)

let test_predictor_learns () =
  let p = Timing.Predictor.create (Timing.Predictor.Bimodal 10) in
  (* always-taken branch at one pc: after warmup, predictions correct *)
  for _ = 1 to 4 do
    ignore (Timing.Predictor.update p ~pc:0x1000L ~taken:true)
  done;
  Alcotest.(check bool) "learned taken" true (Timing.Predictor.predict p ~pc:0x1000L);
  for _ = 1 to 4 do
    ignore (Timing.Predictor.update p ~pc:0x1000L ~taken:false)
  done;
  Alcotest.(check bool) "learned not-taken" false
    (Timing.Predictor.predict p ~pc:0x1000L)

let test_predictor_static () =
  let p = Timing.Predictor.create Timing.Predictor.Static_taken in
  Alcotest.(check bool) "static taken" true (Timing.Predictor.predict p ~pc:0L)

(* ----------------------------------------------------------------- *)
(* Functional-first                                                    *)
(* ----------------------------------------------------------------- *)

let test_funcfirst () =
  let l = Workload.load Workload.alpha ~buildset:"one_decode" kernel.program in
  let ff = Timing.Funcfirst.create l.iface in
  let r = Timing.Funcfirst.run ff ~budget:10_000_000 in
  Alcotest.(check bool) "ran" true (Int64.to_int r.instructions > 1000);
  Alcotest.(check bool) "cycles >= instructions" true
    (Int64.compare r.cycles r.instructions >= 0);
  Alcotest.(check bool) "ipc sane" true (r.ipc > 0.05 && r.ipc <= 1.0);
  Alcotest.(check bool) "dcache modelled at Decode" true r.dcache_modelled;
  Alcotest.(check bool) "program finished correctly" true l.iface.st.halted

let test_funcfirst_min_detail () =
  (* at Min detail the D-cache cannot be modelled; the model reports it *)
  let l = Workload.load Workload.alpha ~buildset:"one_min" kernel.program in
  let ff = Timing.Funcfirst.create l.iface in
  let r = Timing.Funcfirst.run ff ~budget:10_000_000 in
  Alcotest.(check bool) "dcache not modelled at Min" false r.dcache_modelled;
  Alcotest.(check bool) "still runs" true (Int64.to_int r.instructions > 1000)

let test_funcfirst_block () =
  let l = Workload.load Workload.ppc ~buildset:"block_decode" kernel.program in
  let ff = Timing.Funcfirst.create l.iface in
  let r = Timing.Funcfirst.run ff ~budget:10_000_000 in
  Alcotest.(check bool) "block stream consumed" true
    (Int64.to_int r.instructions > 1000)

(* ----------------------------------------------------------------- *)
(* Timing-directed                                                     *)
(* ----------------------------------------------------------------- *)

let check_directed (t : Workload.target) () =
  let expected = Workload.reference kernel.program in
  let l = Workload.load t ~buildset:"step_all" kernel.program in
  let r = Timing.Directed.run l.iface ~budget:10_000_000 in
  (* functional correctness is driven by the timing model *)
  Alcotest.(check bool) "halted" true l.iface.st.halted;
  (match Machine.State.exit_status l.iface.st with
  | Some s -> Alcotest.(check int) "exit status" expected.exit_status (s land 0xff)
  | None -> Alcotest.fail "no exit status");
  Alcotest.(check string) "output" expected.output (Machine.Os_emu.output l.os);
  Alcotest.(check bool) "pipeline slower than 1 IPC" true (r.ipc < 1.0);
  Alcotest.(check bool) "some RAW stalls" true (Int64.to_int r.raw_stall_cycles > 0);
  Alcotest.(check bool) "some branch flushes" true (Int64.to_int r.branch_flushes > 0)

(* ----------------------------------------------------------------- *)
(* Timing-first                                                        *)
(* ----------------------------------------------------------------- *)

let test_timingfirst_clean () =
  let lt = Workload.load Workload.alpha ~buildset:"one_min" kernel.program in
  let lc = Workload.load Workload.alpha ~buildset:"one_min" kernel.program in
  let r =
    Timing.Timingfirst.run ~timing:lt.iface ~checker:lc.iface
      ~budget:10_000_000 ()
  in
  Alcotest.(check int64) "no mismatches without bugs" 0L r.mismatches;
  Alcotest.(check bool) "finished" true lt.iface.st.halted

let test_timingfirst_buggy () =
  let expected = Workload.reference kernel.program in
  let lt = Workload.load Workload.alpha ~buildset:"one_min" kernel.program in
  let lc = Workload.load Workload.alpha ~buildset:"one_min" kernel.program in
  (* inject a bug: every 997th instruction, corrupt register r1 *)
  let count = ref 0 in
  let bug (st : Machine.State.t) (_ : Specsim.Di.t) =
    incr count;
    if !count mod 997 = 0 then
      Machine.Regfile.write st.regs ~cls:0 ~idx:1
        (Int64.add (Machine.Regfile.read st.regs ~cls:0 ~idx:1) 1L)
  in
  let r =
    Timing.Timingfirst.run ~bug ~timing:lt.iface ~checker:lc.iface
      ~budget:10_000_000 ()
  in
  Alcotest.(check bool) "mismatches detected" true (Int64.to_int r.mismatches > 0);
  (* the checker keeps the run architecturally correct *)
  (match Machine.State.exit_status lc.iface.st with
  | Some s -> Alcotest.(check int) "exit status" expected.exit_status (s land 0xff)
  | None -> Alcotest.fail "checker did not exit");
  Alcotest.(check string) "output correct despite bugs" expected.output
    (Machine.Os_emu.output lc.os)

(* ----------------------------------------------------------------- *)
(* Speculative functional-first                                        *)
(* ----------------------------------------------------------------- *)

let test_specff_no_divergence () =
  let expected = Workload.reference kernel.program in
  let l = Workload.load Workload.alpha ~buildset:"one_decode_spec" kernel.program in
  let r = Timing.Specff.run l.iface ~budget:10_000_000 in
  Alcotest.(check int64) "no timer loads, no rollbacks" 0L r.rollbacks;
  (match Machine.State.exit_status l.iface.st with
  | Some s -> Alcotest.(check int) "exit" expected.exit_status (s land 0xff)
  | None -> Alcotest.fail "did not exit");
  Alcotest.(check string) "output" expected.output (Machine.Os_emu.output l.os)

(* a program that polls the timer MMIO location *)
let timer_program =
  Vir.Lang.
    [
      Li (8, 0x000F0000l) (* timer address *);
      Li (9, 2000l);
      Li (10, 0l);
      Li (4, 0l);
      Label "loop";
      Ldw (11, 8, 0) (* timing-dependent load *);
      Add (4, 4, 11);
      Addi (10, 10, 1);
      Bcond (Ne, 10, 9, "loop");
      Andi (4, 4, 255);
      Li (0, 0l);
      Mv (1, 4);
      Sys;
    ]

let test_specff_rollbacks () =
  let l = Workload.load Workload.alpha ~buildset:"one_decode_spec" timer_program in
  let r = Timing.Specff.run l.iface ~budget:10_000_000 in
  Alcotest.(check bool) "some rollbacks happened" true
    (Int64.to_int r.rollbacks > 0);
  Alcotest.(check bool) "program completed" true l.iface.st.halted

(* ----------------------------------------------------------------- *)
(* Sampling                                                            *)
(* ----------------------------------------------------------------- *)

let test_sampling () =
  let expected = Workload.reference mem_kernel.program in
  let spec = Lazy.force Workload.alpha.spec in
  let st = Lis.Spec.make_machine spec in
  let detailed = Specsim.Synth.make ~st spec "one_decode" in
  let fast = Specsim.Synth.make ~st spec "block_min" in
  let os = Machine.Os_emu.create () in
  (match spec.abi with Some abi -> Machine.Os_emu.install os abi st | None -> ());
  let words = Isa_alpha.Alpha_asm.encode ~base:0x1000L mem_kernel.program in
  List.iteri
    (fun i w ->
      Machine.Memory.write st.mem
        ~addr:(Int64.add 0x1000L (Int64.of_int (4 * i)))
        ~width:4 w)
    words;
  Machine.State.reset st ~pc:0x1000L;
  let r = Timing.Sampling.run ~detailed ~fast ~budget:10_000_000 () in
  Alcotest.(check bool) "finished" true st.halted;
  (match Machine.State.exit_status st with
  | Some s -> Alcotest.(check int) "exit" expected.exit_status (s land 0xff)
  | None -> Alcotest.fail "no exit");
  Alcotest.(check string) "output" expected.output (Machine.Os_emu.output os);
  Alcotest.(check bool) "only a fraction measured" true
    (r.sampled_fraction < 0.5 && r.sampled_fraction > 0.0);
  Alcotest.(check bool) "ipc estimated" true (r.estimated_ipc > 0.0)

let suite =
  [
    Alcotest.test_case "cache basic" `Quick test_cache_basic;
    Alcotest.test_case "cache LRU" `Quick test_cache_lru;
    Alcotest.test_case "cache bad config" `Quick test_cache_bad_config;
    Alcotest.test_case "predictor learns" `Quick test_predictor_learns;
    Alcotest.test_case "predictor static" `Quick test_predictor_static;
    Alcotest.test_case "functional-first" `Quick test_funcfirst;
    Alcotest.test_case "functional-first at Min" `Quick test_funcfirst_min_detail;
    Alcotest.test_case "functional-first on blocks" `Quick test_funcfirst_block;
    Alcotest.test_case "timing-directed alpha" `Quick (check_directed Workload.alpha);
    Alcotest.test_case "timing-directed arm" `Quick (check_directed Workload.arm);
    Alcotest.test_case "timing-directed ppc" `Quick (check_directed Workload.ppc);
    Alcotest.test_case "timing-first clean" `Quick test_timingfirst_clean;
    Alcotest.test_case "timing-first buggy" `Quick test_timingfirst_buggy;
    Alcotest.test_case "spec-ff no divergence" `Quick test_specff_no_divergence;
    Alcotest.test_case "spec-ff rollbacks" `Quick test_specff_rollbacks;
    Alcotest.test_case "sampling" `Quick test_sampling;
  ]
