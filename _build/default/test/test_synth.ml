(** End-to-end tests of the synthesizer on the demo ISA: every canonical
    interface must produce identical architectural results. *)

let spec () = Lazy.force Demo_isa.spec

(** Run [program] to completion under buildset [bs]; returns (exit status,
    os output, instructions retired). *)
let run_program ?(backend = Specsim.Synth.Compiled) ?(input = "") bs program =
  let spec = spec () in
  let iface = Specsim.Synth.make ~backend spec bs in
  let st = iface.st in
  let os = Machine.Os_emu.create ~input () in
  (match spec.abi with
  | Some abi -> Machine.Os_emu.install os abi st
  | None -> Alcotest.fail "demo ISA has no abi");
  Demo_isa.load_program st ~base:0x1000L program;
  let budget = 1_000_000 in
  let executed = Specsim.Iface.run_n iface budget in
  if executed >= budget then Alcotest.fail "program did not terminate";
  (Machine.State.exit_status st, Machine.Os_emu.output os, st.instr_count)

let all_buildsets () = Lis.Spec.buildset_names (spec ())

let check_sum_on bs () =
  let status, _, count = run_program bs Demo_isa.sum_program in
  Alcotest.(check (option int)) "exit status" (Some 55) status;
  Alcotest.(check bool) "retired some instructions" true (Int64.to_int count > 20)

let test_all_buildsets_agree () =
  let results =
    List.map (fun bs -> (bs, run_program bs Demo_isa.sum_program)) (all_buildsets ())
  in
  match results with
  | [] -> Alcotest.fail "no buildsets"
  | (_, r0) :: rest ->
    List.iter
      (fun (bs, r) ->
        Alcotest.(check (triple (option int) string int64))
          (Printf.sprintf "buildset %s matches" bs)
          r0 r)
      rest

let test_interpreted_matches_compiled () =
  let a = run_program ~backend:Specsim.Synth.Compiled "one_all" Demo_isa.sum_program in
  let b =
    run_program ~backend:Specsim.Synth.Interpreted "one_all" Demo_isa.sum_program
  in
  Alcotest.(check (triple (option int) string int64)) "backends agree" a b

(** Memory round-trip through the simulated ISA. *)
let memory_program =
  Demo_isa.
    [
      addi ~ra:31 ~imm:0x2000 ~rc:4 (* r4 = buffer *);
      addi ~ra:31 ~imm:1234 ~rc:5;
      stq ~ra:4 ~imm:8 ~rb:5 (* mem[r4+8] = 1234 *);
      ldq ~ra:4 ~imm:8 ~rc:6 (* r6 = mem[r4+8] *);
      addi ~ra:31 ~imm:0 ~rc:0;
      add ~ra:6 ~rb:31 ~rc:1 (* exit(r6) *);
      sys;
    ]

let check_memory_on bs () =
  let status, _, _ = run_program bs memory_program in
  Alcotest.(check (option int)) "exit status" (Some 1234) status

(** Step interface consumed call-by-call, like a timing-directed model. *)
let test_step_interface () =
  let spec = spec () in
  let iface = Specsim.Synth.make spec "step_all" in
  let st = iface.st in
  let os = Machine.Os_emu.create () in
  (match spec.abi with Some abi -> Machine.Os_emu.install os abi st | None -> ());
  Demo_isa.load_program st ~base:0x1000L Demo_isa.sum_program;
  let n_eps = Specsim.Iface.n_entrypoints iface in
  Alcotest.(check int) "seven entrypoints" 7 n_eps;
  let di = Specsim.Di.create ~info_slots:iface.slots.di_size in
  let steps = ref 0 in
  while (not st.halted) && !steps < 10_000 do
    di.pc <- st.pc;
    di.instr_index <- -1;
    di.fault <- None;
    let k = ref 0 in
    while !k < n_eps && not st.halted do
      iface.step di !k;
      incr k
    done;
    if not st.halted then iface.retire di;
    incr steps
  done;
  Alcotest.(check (option int)) "exit status" (Some 55) (Machine.State.exit_status st)

(** Visible DI information: effective address shows up at Decode detail. *)
let test_decode_info_visible () =
  let spec = spec () in
  let iface = Specsim.Synth.make spec "one_decode" in
  let st = iface.st in
  Demo_isa.load_program st ~base:0x1000L memory_program;
  let ea_slot = Specsim.Iface.slot_of_exn iface "effective_addr" in
  let di = Specsim.Di.create ~info_slots:iface.slots.di_size in
  (* run up to and including the STQ (3rd instruction) *)
  iface.run_one di;
  iface.run_one di;
  iface.run_one di;
  Alcotest.(check int64) "effective address" 0x2008L (Specsim.Di.get di ea_slot);
  (* operand values are NOT visible at Decode detail *)
  Alcotest.(check (option int)) "rb hidden" None (Specsim.Iface.slot_of iface "rb")

let test_min_hides_everything () =
  let spec = spec () in
  let iface = Specsim.Synth.make spec "one_min" in
  Alcotest.(check (option int)) "ea hidden" None (Specsim.Iface.slot_of iface "effective_addr");
  Alcotest.(check (option int)) "ra hidden" None (Specsim.Iface.slot_of iface "ra_id");
  Alcotest.(check int) "empty DI info" 0 iface.slots.di_size

let test_all_shows_everything () =
  let spec = spec () in
  let iface = Specsim.Synth.make spec "one_all" in
  Alcotest.(check bool) "ea visible" true (Specsim.Iface.slot_of iface "effective_addr" <> None);
  Alcotest.(check bool) "alu_out visible" true (Specsim.Iface.slot_of iface "alu_out" <> None);
  Alcotest.(check int) "all cells have slots" (Lis.Spec.n_cells spec)
    iface.slots.di_size

(** Speculative interfaces can undo instructions. *)
let test_rollback () =
  let spec = spec () in
  let iface = Specsim.Synth.make spec "one_all_spec" in
  let st = iface.st in
  Demo_isa.load_program st ~base:0x1000L memory_program;
  let di = Specsim.Di.create ~info_slots:iface.slots.di_size in
  iface.run_one di (* r4 = 0x2000 *);
  let before = Machine.State.snapshot st in
  iface.run_one di (* r5 = 1234 *);
  iface.run_one di (* store *);
  Alcotest.(check int64) "store happened" 1234L
    (Machine.Memory.read st.mem ~addr:0x2008L ~width:8);
  Specsim.Iface.rollback_di iface { di with ckpt = di.ckpt - 1 };
  Alcotest.(check bool) "state restored" true (Machine.State.matches_snapshot st before);
  Alcotest.(check int64) "store undone" 0L
    (Machine.Memory.read st.mem ~addr:0x2008L ~width:8)

(** Hidden-crossing buildsets are rejected at synthesis time. *)
let test_liveness_rejection () =
  let bad_buildset =
    {|
buildset step_min_bad {
  speculation off;
  visibility min;
  entrypoint f = fetch;
  entrypoint d = decode;
  entrypoint r = read_operands;
  entrypoint x = address, evaluate;
  entrypoint m = memory;
  entrypoint w = writeback;
  entrypoint e = exception;
}
|}
  in
  let sources =
    Demo_isa.sources
    @ [
        {
          Lis.Ast.src_role = Lis.Ast.Buildset_file;
          src_name = "bad.lis";
          src_text = bad_buildset;
        };
      ]
  in
  let spec = Lis.Sema.load sources in
  (match Specsim.Synth.make spec "step_min_bad" with
  | exception Specsim.Synth.Synth_error msg ->
    Alcotest.(check bool)
      "mentions a crossing cell" true
      (let contains s sub =
         let n = String.length sub in
         let rec go i =
           i + n <= String.length s && (String.sub s i n = sub || go (i + 1))
         in
         go 0
       in
       contains msg "ra")
  | _ -> Alcotest.fail "expected Synth_error");
  (* ...but the same buildset synthesizes with the escape hatch *)
  ignore (Specsim.Synth.make ~allow_hidden_crossing:true spec "step_min_bad")

(** The block cache actually caches. *)
let test_block_cache () =
  let spec = spec () in
  let iface = Specsim.Synth.make spec "block_min" in
  let st = iface.st in
  let os = Machine.Os_emu.create () in
  (match spec.abi with Some abi -> Machine.Os_emu.install os abi st | None -> ());
  Demo_isa.load_program st ~base:0x1000L Demo_isa.sum_program;
  let _ = Specsim.Iface.run_n iface 1_000_000 in
  Alcotest.(check (option int)) "exit" (Some 55) (Machine.State.exit_status st);
  Alcotest.(check bool) "few blocks compiled" true (iface.stats.blocks_compiled <= 8);
  Alcotest.(check bool) "cache hits dominate" true
    (iface.stats.block_hits > iface.stats.blocks_compiled)

let suite =
  let bs_cases =
    List.concat_map
      (fun bs ->
        [
          Alcotest.test_case (Printf.sprintf "sum on %s" bs) `Quick (check_sum_on bs);
          Alcotest.test_case
            (Printf.sprintf "memory on %s" bs)
            `Quick (check_memory_on bs);
        ])
      (all_buildsets ())
  in
  bs_cases
  @ [
      Alcotest.test_case "all buildsets agree" `Quick test_all_buildsets_agree;
      Alcotest.test_case "interpreted = compiled" `Quick test_interpreted_matches_compiled;
      Alcotest.test_case "step interface" `Quick test_step_interface;
      Alcotest.test_case "decode info visible" `Quick test_decode_info_visible;
      Alcotest.test_case "min hides everything" `Quick test_min_hides_everything;
      Alcotest.test_case "all shows everything" `Quick test_all_shows_everything;
      Alcotest.test_case "rollback" `Quick test_rollback;
      Alcotest.test_case "liveness rejection" `Quick test_liveness_rejection;
      Alcotest.test_case "block cache" `Quick test_block_cache;
    ]
