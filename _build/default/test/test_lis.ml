(** Front-end tests: lexer, parser, semantic analysis, statistics. *)

let spec () = Lazy.force Demo_isa.spec

let parse_isa ?(extra = "") () =
  Lis.Sema.load
    [
      {
        Lis.Ast.src_role = Lis.Ast.Isa_description;
        src_name = "demo.lis";
        src_text = Demo_isa.isa_text ^ extra;
      };
      {
        Lis.Ast.src_role = Lis.Ast.Buildset_file;
        src_name = "bs.lis";
        src_text = Demo_isa.buildsets_text;
      };
    ]

let expect_error ~substring f =
  match f () with
  | exception Lis.Loc.Error (span, msg) ->
    let text = Lis.Loc.error_to_string (span, msg) in
    let contains s sub =
      let n = String.length sub in
      let rec go i = i + n <= String.length s && (String.sub s i n = sub || go (i + 1)) in
      go 0
    in
    if not (contains text substring) then
      Alcotest.failf "error %S does not mention %S" text substring
  | _ -> Alcotest.fail "expected a front-end error"

(* ------------------------------------------------------------------ *)

let test_demo_shape () =
  let s = spec () in
  Alcotest.(check string) "name" "demo" s.name;
  Alcotest.(check int) "instructions" 10 (Array.length s.instrs);
  Alcotest.(check int) "buildsets" 12 (Array.length s.buildsets);
  Alcotest.(check int) "register classes" 1 (Array.length s.reg_classes);
  (* cells: effective_addr, alu_out, opclass, (ra,rb,rc) x (val,id) *)
  Alcotest.(check int) "cells" 9 (Lis.Spec.n_cells s);
  Alcotest.(check int) "wordsize" 64 s.wordsize;
  Alcotest.(check bool) "abi present" true (s.abi <> None)

let test_class_inheritance () =
  let s = spec () in
  let add = Lis.Spec.find_instr s "ADD" in
  Alcotest.(check int) "ADD has 3 operands" 3 (Array.length add.i_operands);
  let ldq = Lis.Spec.find_instr s "LDQ" in
  (* ra from class 'mem', rc its own *)
  Alcotest.(check int) "LDQ has 2 operands" 2 (Array.length ldq.i_operands);
  Alcotest.(check bool) "LDQ has class action 'address'" true
    (List.mem_assoc "address" ldq.i_user)

let test_decoder () =
  let s = spec () in
  let d = Specsim.Decoder.make s in
  let add = Lis.Spec.find_instr s "ADD" in
  Alcotest.(check int) "ADD decodes" add.i_index
    (Specsim.Decoder.decode d (Demo_isa.add ~ra:1 ~rb:2 ~rc:3));
  let sub = Lis.Spec.find_instr s "SUB" in
  Alcotest.(check int) "SUB decodes" sub.i_index
    (Specsim.Decoder.decode d (Demo_isa.sub ~ra:1 ~rb:2 ~rc:3));
  Alcotest.(check int) "garbage rejected" (-1) (Specsim.Decoder.decode d 0xFFFFFFFFL);
  Alcotest.(check (list (pair string string))) "no ambiguous encodings" []
    (Specsim.Decoder.overlaps s)

let test_line_stats () =
  let s = spec () in
  let st = s.line_stats in
  Alcotest.(check bool) "isa lines counted" true (st.isa_lines > 50);
  Alcotest.(check int) "buildsets counted" 12 st.buildset_count;
  let per = Lis.Count.lines_per_buildset st in
  Alcotest.(check bool) "a buildset is a handful of lines" true
    (per >= 4. && per <= 20.)

let test_comment_counting () =
  Alcotest.(check int) "comments and blanks ignored" 2
    (Lis.Count.code_lines "// nothing\n\nfield a : u64;\n/* block\ncomment */\nfield b : u64;\n")

(* ------------------------------------------------------------------ *)
(* Error reporting                                                     *)
(* ------------------------------------------------------------------ *)

let test_syntax_error_position () =
  expect_error ~substring:"bad.lis:3" (fun () ->
      Lis.Parser.parse ~file:"bad.lis" "isa \"x\" {\n  endian little;\n  wordsize;\n}")

let test_unknown_field () =
  expect_error ~substring:"unknown field or operand 'bogus'" (fun () ->
      parse_isa
        ~extra:
          {|
instr BAD match 0x5C000000 mask 0xFC000000 {
  action evaluate { bogus = 1; }
}
|}
        ())

let test_bad_partition () =
  expect_error ~substring:"must partition the action sequence" (fun () ->
      Lis.Sema.load
        [
          {
            Lis.Ast.src_role = Lis.Ast.Isa_description;
            src_name = "demo.lis";
            src_text = Demo_isa.isa_text;
          };
          {
            Lis.Ast.src_role = Lis.Ast.Buildset_file;
            src_name = "bad_bs.lis";
            src_text =
              {|
buildset broken {
  visibility all;
  entrypoint a = fetch, decode;
  entrypoint b = read_operands, evaluate, address, memory, writeback, exception;
}
|};
          };
        ])

let test_match_outside_mask () =
  expect_error ~substring:"outside mask" (fun () ->
      parse_isa
        ~extra:
          "\ninstr BAD2 match 0x5C000001 mask 0xFC000000 { action evaluate { alu_out = 1; } }\n"
        ())

let test_duplicate_instr () =
  expect_error ~substring:"duplicate instruction" (fun () ->
      parse_isa
        ~extra:
          "\ninstr ADD match 0x5C000000 mask 0xFC000000 { action evaluate { alu_out = 1; } }\n"
        ())

let test_unknown_action () =
  expect_error ~substring:"not in the sequence" (fun () ->
      parse_isa
        ~extra:
          "\ninstr BAD3 match 0x5C000000 mask 0xFC000000 { action frobnicate { alu_out = 1; } }\n"
        ())

let test_unterminated_comment () =
  expect_error ~substring:"unterminated" (fun () ->
      Lis.Parser.parse ~file:"c.lis" "/* oops")

let test_override () =
  let s =
    parse_isa
      ~extra:"\noverride SYS action exception { halt; }\n"
      ()
  in
  let sys = Lis.Spec.find_instr s "SYS" in
  match List.assoc "exception" sys.i_user with
  | [ Semir.Ir.Halt ] -> ()
  | p ->
    Alcotest.failf "override not applied: %a" (Semir.Ir.pp_program ?cell_name:None) p

(* ------------------------------------------------------------------ *)
(* Expression translation fidelity (via a one-instruction ISA)          *)
(* ------------------------------------------------------------------ *)

let eval_expr_text text =
  (* Wrap [text] as the evaluate action of a tiny ISA and execute it. *)
  let isa =
    Printf.sprintf
      {|
isa "x" { endian little; wordsize 64; instrsize 4; decodekey 26 6; }
regclass G 4 width 64;
field out : u64;
instr T match 0 mask 0 {
  action evaluate { out = %s; halt; }
}
buildset b {
  visibility all;
  entrypoint e = fetch, decode, read_operands, address, evaluate, memory, writeback, exception;
}
|}
      text
  in
  let spec =
    Lis.Sema.load
      [ { Lis.Ast.src_role = Lis.Ast.Isa_description; src_name = "x.lis"; src_text = isa } ]
  in
  let iface = Specsim.Synth.make spec "b" in
  Machine.Regfile.write iface.st.regs ~cls:0 ~idx:1 10L;
  Machine.Regfile.write iface.st.regs ~cls:0 ~idx:2 (-3L);
  let di = Specsim.Di.create ~info_slots:iface.slots.di_size in
  iface.run_one di;
  Specsim.Di.get di (Specsim.Iface.slot_of_exn iface "out")

let check_expr text expected () =
  Alcotest.(check int64) text expected (eval_expr_text text)

let expr_cases =
  [
    ("1 + 2 * 3", 7L);
    ("(1 + 2) * 3", 9L);
    ("10 - 2 - 3", 5L);
    ("1 << 4 | 2", 18L);
    ("0xFF & 0x0F0", 0xF0L);
    ("5 < 3", 0L);
    ("3 < 5 ? 42 : 7", 42L);
    ("-5 / 2", -2L);
    ("udiv(0 - 1, 2)", 0x7FFFFFFFFFFFFFFFL);
    ("sext(0xFF, 8)", -1L);
    ("zext(0 - 1, 16)", 0xFFFFL);
    ("asr(0 - 8, 1)", -4L);
    ("ror(1, 1)", Int64.min_int);
    ("ltu(0 - 1, 1)", 0L);
    ("gtu(0 - 1, 1)", 1L);
    ("popcount(0xFF)", 8L);
    ("clz(1)", 63L);
    ("1 && 2", 1L);
    ("0 || 3", 1L);
    ("!(5)", 0L);
    ("~0", -1L);
    ("reg.G[1]", 10L);
    ("reg.G[1] + reg.G[2]", 7L);
    ("reg.G[1] >= reg.G[2] ? 1 : 0", 1L);
    ("5 % 3", 2L);
    ("pc", 0L);
    ("next_pc", 4L);
  ]

let suite =
  [
    Alcotest.test_case "demo spec shape" `Quick test_demo_shape;
    Alcotest.test_case "class inheritance" `Quick test_class_inheritance;
    Alcotest.test_case "decoder" `Quick test_decoder;
    Alcotest.test_case "line statistics" `Quick test_line_stats;
    Alcotest.test_case "comment counting" `Quick test_comment_counting;
    Alcotest.test_case "syntax error position" `Quick test_syntax_error_position;
    Alcotest.test_case "unknown field" `Quick test_unknown_field;
    Alcotest.test_case "bad entrypoint partition" `Quick test_bad_partition;
    Alcotest.test_case "match outside mask" `Quick test_match_outside_mask;
    Alcotest.test_case "duplicate instruction" `Quick test_duplicate_instr;
    Alcotest.test_case "unknown action" `Quick test_unknown_action;
    Alcotest.test_case "unterminated comment" `Quick test_unterminated_comment;
    Alcotest.test_case "override" `Quick test_override;
  ]
  @ List.map
      (fun (text, expected) ->
        Alcotest.test_case (Printf.sprintf "expr: %s" text) `Quick
          (check_expr text expected))
      expr_cases
