examples/sampling_sim.ml: Array Int64 Lazy Lis List Machine Printf Specsim Sys Timing Unix Vir Workload
