examples/timing_first_checker.ml: Int64 List Machine Printf Specsim String Timing Vir Workload
