examples/new_interface.ml: Array Int64 Isa_alpha Lis List Machine Printf Specsim Vir
