examples/explore_interfaces.ml: Array Char Int64 Lazy Lis List Machine Printf Specsim String Sys Unix Vir Workload
