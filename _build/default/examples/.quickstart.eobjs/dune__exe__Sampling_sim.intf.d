examples/sampling_sim.mli:
