examples/timing_first_checker.mli:
