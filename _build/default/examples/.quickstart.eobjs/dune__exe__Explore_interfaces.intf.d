examples/explore_interfaces.mli:
