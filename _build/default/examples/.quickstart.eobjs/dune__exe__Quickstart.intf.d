examples/quickstart.mli:
