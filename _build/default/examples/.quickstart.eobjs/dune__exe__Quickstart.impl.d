examples/quickstart.ml: Array Demo_isa Lazy Machine Printf Specsim
