examples/new_interface.mli:
