(* "These few lines can be created in mere minutes": adding a brand-new
   tailored interface to an existing ISA is a dozen lines of LIS — no
   change to the instruction semantics, no revalidation of the ISA.

     dune exec examples/new_interface.exe

   We add a custom interface for a hypothetical timing simulator that
   wants (a) one call per instruction, (b) only branch information and
   effective addresses visible, and (c) rollback support. Then we add a
   *wrong* one that hides a value it needs, and show the synthesizer
   reject it with a precise diagnosis — the error class the paper says
   dominates interface development. *)

(* The whole cost of the new interface: *)
let my_interface =
  {|
buildset branch_watcher {
  speculation on;
  visibility show branch_taken, branch_target, effective_addr;
  entrypoint do_in_one = fetch, decode, read_operands, address,
                         evaluate, memory, writeback, exception;
}
|}

(* And a broken one: splits execution in two but hides the effective
   address, which the memory step needs. *)
let broken_interface =
  {|
buildset broken_split {
  visibility min;
  entrypoint front = fetch, decode, read_operands, address, evaluate;
  entrypoint back = memory, writeback, exception;
}
|}

let () =
  let sources extra =
    Isa_alpha.Alpha.sources
    @ [ { Lis.Ast.src_role = Lis.Ast.Buildset_file; src_name = "new.lis"; src_text = extra } ]
  in
  (* 1. The good interface synthesizes and runs immediately. *)
  let spec = Lis.Sema.load (sources my_interface) in
  Printf.printf "added buildset 'branch_watcher' (%d lines of LIS)\n"
    (Lis.Count.code_lines my_interface);
  let iface = Specsim.Synth.make spec "branch_watcher" in
  Printf.printf "DI info slots: %d (only what the timing simulator asked for)\n"
    iface.slots.di_size;

  let st = iface.st in
  let os = Machine.Os_emu.create () in
  (match spec.abi with Some abi -> Machine.Os_emu.install os abi st | None -> ());
  let kernel = List.nth Vir.Kernels.test_suite 3 in
  let words = Isa_alpha.Alpha_asm.encode ~base:0x1000L kernel.Vir.Kernels.program in
  List.iteri
    (fun i w ->
      Machine.Memory.write st.mem
        ~addr:(Int64.add 0x1000L (Int64.of_int (4 * i)))
        ~width:4 w)
    words;
  Machine.State.reset st ~pc:0x1000L;

  (* consume the branch information the interface exposes *)
  let taken_slot = Specsim.Iface.slot_of_exn iface "branch_taken" in
  let di = Specsim.Di.create ~info_slots:iface.slots.di_size in
  let branches = ref 0 and taken = ref 0 in
  let kinds = Specsim.Classify.of_spec spec in
  while not st.halted do
    iface.run_one di;
    if di.instr_index >= 0 && kinds.(di.instr_index).is_branch then begin
      incr branches;
      if not (Int64.equal (Specsim.Di.get di taken_slot) 0L) then incr taken
    end
  done;
  Printf.printf
    "ran kernel '%s': %Ld instructions, %d branches, %d taken (%.1f%%)\n"
    kernel.kname st.instr_count !branches !taken
    (100. *. float_of_int !taken /. float_of_int (max 1 !branches));
  Printf.printf "rollback support: %b\n\n" (iface.journal <> None);

  (* 2. The broken interface is rejected at synthesis time. *)
  Printf.printf "now trying the broken interface (hides a crossing value)...\n";
  let spec2 = Lis.Sema.load (sources broken_interface) in
  (match Specsim.Synth.make spec2 "broken_split" with
  | exception Specsim.Synth.Synth_error msg ->
    Printf.printf "rejected as expected:\n%s\n" msg
  | _ -> failwith "should have been rejected")
