(* Sampling simulation needs two interfaces at once (paper §II-C): a
   detailed one for measurement intervals and a low-detail one for
   fast-forwarding — both over the same machine, both derived from the
   same specification.

     dune exec examples/sampling_sim.exe [isa]                        *)

let () =
  let isa = if Array.length Sys.argv > 1 then Sys.argv.(1) else "ppc" in
  let target = Workload.find_target isa in
  let spec = Lazy.force target.spec in
  let kernel = List.hd Vir.Kernels.bench_suite in

  (* two interfaces sharing one machine *)
  let st = Lis.Spec.make_machine spec in
  let detailed = Specsim.Synth.make ~st spec "one_decode" in
  let fast = Specsim.Synth.make ~st spec "block_min" in

  let os = Machine.Os_emu.create () in
  (match spec.abi with Some abi -> Machine.Os_emu.install os abi st | None -> ());
  let words = target.encode ~base:0x1000L kernel.Vir.Kernels.program in
  List.iteri
    (fun i w ->
      Machine.Memory.write st.mem
        ~addr:(Int64.add 0x1000L (Int64.of_int (4 * i)))
        ~width:4 w)
    words;
  Machine.State.reset st ~pc:0x1000L;

  let t0 = Unix.gettimeofday () in
  let r =
    Timing.Sampling.run
      ~config:
        {
          Timing.Sampling.measure = 2_000;
          fastforward = 18_000;
          timing_model = Timing.Funcfirst.default_config;
        }
      ~detailed ~fast ~budget:100_000_000 ()
  in
  let dt = Unix.gettimeofday () -. t0 in
  Printf.printf "kernel %s on %s:\n" kernel.kname isa;
  Printf.printf "  total instructions     %Ld\n" r.instructions;
  Printf.printf "  measured in detail     %Ld (%.1f%% of the run)\n"
    r.measured_instructions
    (100. *. r.sampled_fraction);
  Printf.printf "  estimated IPC          %.3f\n" r.estimated_ipc;
  Printf.printf "  wall speed             %.2f MIPS\n"
    (Int64.to_float r.instructions /. dt /. 1e6);
  Printf.printf
    "\nDuring fast-forward the Block/Min interface does the running;\n\
     the detailed interface only pays its cost inside sample intervals.\n"
