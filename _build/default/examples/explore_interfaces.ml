(* The paper's headline result, live: the same single specification yields
   interfaces at many levels of detail, they all compute the same thing,
   and the low-detail ones are much faster.

     dune exec examples/explore_interfaces.exe [isa] [kernel]

   Defaults: alpha, hash_loop. *)

let () =
  let isa = if Array.length Sys.argv > 1 then Sys.argv.(1) else "alpha" in
  let kname = if Array.length Sys.argv > 2 then Sys.argv.(2) else "hash_loop" in
  let target = Workload.find_target isa in
  let kernel =
    match
      List.find_opt
        (fun (k : Vir.Kernels.sized) -> String.equal k.kname kname)
        Vir.Kernels.bench_suite
    with
    | Some k -> k
    | None -> failwith ("unknown kernel " ^ kname)
  in
  let spec = Lazy.force target.spec in
  Printf.printf
    "ISA %s: one specification (%d LIS lines), %d derived interfaces\n\n"
    spec.name spec.line_stats.isa_lines
    (Array.length spec.buildsets);
  Printf.printf "%-20s %-8s %-12s %-10s %s\n" "interface" "DI slots" "instrs"
    "MIPS" "output";
  let reference = ref None in
  List.iter
    (fun bs_name ->
      let l = Workload.load target ~buildset:bs_name kernel.program in
      let bs = l.iface.bs in
      (* Step interfaces are driven call by call below; others via their
         natural batch call. *)
      let t0 = Unix.gettimeofday () in
      let outcome =
        if Array.length bs.bs_entrypoints > 1 then begin
          let st = l.iface.st in
          let di = Specsim.Di.create ~info_slots:l.iface.slots.di_size in
          let n_eps = Specsim.Iface.n_entrypoints l.iface in
          while not st.halted do
            di.pc <- st.pc;
            di.instr_index <- -1;
            di.fault <- None;
            let k = ref 0 in
            while !k < n_eps && not st.halted do
              l.iface.step di !k;
              incr k
            done;
            if not st.halted then l.iface.retire di
          done;
          Workload.
            {
              exit_status =
                (match Machine.State.exit_status st with Some s -> s land 0xff | None -> -1);
              output = Machine.Os_emu.output l.os;
              instructions = st.instr_count;
            }
        end
        else Workload.run_to_completion l
      in
      let dt = Unix.gettimeofday () -. t0 in
      (match !reference with
      | None -> reference := Some outcome
      | Some r ->
        if not (Workload.agrees r outcome) then
          failwith ("interface " ^ bs_name ^ " disagrees!"));
      Printf.printf "%-20s %-8d %-12Ld %-10.2f %s\n" bs_name l.iface.slots.di_size
        outcome.instructions
        (Int64.to_float outcome.instructions /. dt /. 1e6)
        (String.concat ""
           (List.map
              (fun c -> Printf.sprintf "%02x" (Char.code c))
              (List.init (String.length outcome.output) (String.get outcome.output)))))
    (Lis.Spec.buildset_names spec);
  print_newline ();
  Printf.printf
    "Every interface produced identical architectural behaviour — derived\n\
     from one specification, at very different simulation speeds.\n"
