(* Quickstart: describe an ISA once, synthesize a simulator, run a program,
   and look at the per-instruction information the interface exposes.

     dune exec examples/quickstart.exe

   The demo ISA is a small load/store machine shaped like the paper's
   running example (Figs. 2-4): loads and stores compute an effective
   address field, ALU results stage through a destination operand. *)

let () =
  (* 1. Load the LIS description (ISA text + buildset file). *)
  let spec = Lazy.force Demo_isa.spec in
  Printf.printf "ISA %s: %d instructions, %d interface buildsets\n\n" spec.name
    (Array.length spec.instrs)
    (Array.length spec.buildsets);

  (* 2. Synthesize a simulator for the debugging interface the paper
        recommends: one call per instruction, everything visible. *)
  let iface = Specsim.Synth.make spec "one_all" in
  let st = iface.st in

  (* 3. Hook up the emulated OS and load a program: exit(sum of 1..10). *)
  let os = Machine.Os_emu.create () in
  (match spec.abi with
  | Some abi -> Machine.Os_emu.install os abi st
  | None -> assert false);
  Demo_isa.load_program st ~base:0x1000L Demo_isa.sum_program;

  (* 4. Run instruction by instruction, tracing interface information. *)
  let di = Specsim.Di.create ~info_slots:iface.slots.di_size in
  let ea = Specsim.Iface.slot_of_exn iface "effective_addr" in
  let alu = Specsim.Iface.slot_of_exn iface "alu_out" in
  Printf.printf "%-10s %-10s %-6s %-18s %s\n" "pc" "encoding" "instr" "alu_out"
    "next_pc";
  let steps = ref 0 in
  while (not st.halted) && !steps < 60 do
    iface.run_one di;
    incr steps;
    let name =
      if di.instr_index >= 0 then spec.instrs.(di.instr_index).i_name else "?"
    in
    Printf.printf "0x%-8Lx 0x%-8Lx %-6s 0x%-16Lx 0x%Lx\n" di.pc di.encoding name
      (Specsim.Di.get di alu) di.next_pc
  done;
  ignore ea;

  (* 5. The program's observable behaviour. *)
  (match Machine.State.exit_status st with
  | Some s -> Printf.printf "\nexit status: %d (= sum of 1..10)\n" s
  | None -> Printf.printf "\nno exit status!\n");
  Printf.printf "instructions retired: %Ld\n" st.instr_count
