(* Timing-first simulation (paper §II-D): the timing simulator executes
   instructions itself — bugs and all — and a functional simulator checks
   every instruction, reloading state on mismatch.

     dune exec examples/timing_first_checker.exe

   We inject a bug into the "timing simulator" (it occasionally corrupts
   a register) and show the checker both counting the mismatches and
   keeping the run architecturally correct. *)

let () =
  let target = Workload.alpha in
  let kernel = List.nth Vir.Kernels.test_suite 3 (* sort *) in
  let expected = Workload.reference kernel.Vir.Kernels.program in

  let lt = Workload.load target ~buildset:"one_min" kernel.Vir.Kernels.program in
  let lc = Workload.load target ~buildset:"one_min" kernel.Vir.Kernels.program in

  (* the injected timing-model bug: every 500th instruction, off-by-one *)
  let count = ref 0 in
  let bug (st : Machine.State.t) (_ : Specsim.Di.t) =
    incr count;
    if !count mod 500 = 0 then
      Machine.Regfile.write st.regs ~cls:0 ~idx:11
        (Int64.add (Machine.Regfile.read st.regs ~cls:0 ~idx:11) 1L)
  in
  let r =
    Timing.Timingfirst.run ~bug ~timing:lt.iface ~checker:lc.iface
      ~budget:50_000_000 ()
  in
  Printf.printf "kernel %s, timing model with an injected bug:\n" kernel.kname;
  Printf.printf "  instructions  %Ld\n" r.instructions;
  Printf.printf "  mismatches    %Ld (each one caught and repaired)\n"
    r.mismatches;
  Printf.printf "  IPC           %.3f\n" r.ipc;
  let got_exit =
    match Machine.State.exit_status lc.iface.st with Some s -> s land 0xff | None -> -1
  in
  Printf.printf "  exit status   %d (reference: %d)\n" got_exit
    expected.exit_status;
  Printf.printf "  output agrees with reference: %b\n"
    (String.equal (Machine.Os_emu.output lc.os) expected.output);
  Printf.printf
    "\nThe checker interface needed no per-instruction information at all\n\
     (One/Min): it compares architectural state directly, like TFsim.\n"
