(** Timing-first simulator (paper §II-D).

    An integrated timing simulator executes instructions itself (here: a
    synthesized One-detail simulator standing in for the timing model's
    own functional code, with an optional injected bug to demonstrate the
    methodology); after every instruction a separate functional simulator
    executes the same instruction and the architectural states are
    compared. On a mismatch the timing simulator's state is reloaded from
    the functional simulator, and the mismatch is counted — the paper's
    argument is that a low mismatch count justifies trusting the timing
    model's functional behaviour.

    The interface needs only low semantic and informational detail: one
    call per instruction, no per-instruction information (state is
    compared directly), exactly as TFsim does. *)

type result = {
  instructions : int64;
  mismatches : int64;
  cycles : int64;
  ipc : float;
}

(** [run ~timing ~checker ~budget] — [timing] and [checker] are interfaces
    over two different machines loaded with the same program. [bug], if
    given, corrupts the timing machine after each instruction with some
    probability (deterministic in the instruction count), to exercise the
    checking machinery. *)
let run ?(bug = fun (_ : Machine.State.t) (_ : Specsim.Di.t) -> ())
    ?(timing_model = Funcfirst.default_config) ~(timing : Specsim.Iface.t)
    ~(checker : Specsim.Iface.t) ~budget () : result =
  if timing.st == checker.st then
    invalid_arg "Timingfirst.run: timing and checker must be separate machines";
  let ff = Funcfirst.create ~config:timing_model timing in
  let t_di = Specsim.Di.create ~info_slots:timing.slots.di_size in
  let c_di = Specsim.Di.create ~info_slots:checker.slots.di_size in
  let mismatches = ref 0L in
  let retired = ref 0 in
  let tst = timing.st and cst = checker.st in
  while (not tst.halted) && (not cst.halted) && !retired < budget do
    timing.run_one t_di;
    bug tst t_di;
    Funcfirst.consume ff t_di;
    checker.run_one c_di;
    incr retired;
    (* compare architectural state: registers and next fetch pc *)
    let agree =
      Machine.Regfile.equal tst.regs cst.regs && Int64.equal tst.pc cst.pc
    in
    if not agree then begin
      mismatches := Int64.add !mismatches 1L;
      (* flush the pipeline and reload architectural state from the
         functional simulator *)
      Machine.Regfile.blit ~src:cst.regs ~dst:tst.regs;
      tst.pc <- cst.pc;
      timing.flush_code_cache ()
    end
  done;
  let cycles = Funcfirst.current_cycles ff in
  {
    instructions = Int64.of_int !retired;
    mismatches = !mismatches;
    cycles;
    ipc =
      (if Int64.equal cycles 0L then 0.
       else Int64.to_float (Int64.of_int !retired) /. Int64.to_float cycles);
  }
