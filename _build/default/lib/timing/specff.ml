(** Speculative functional-first simulator (paper §II-E).

    The functional simulator runs ahead of the timing simulator, every
    instruction considered speculative; the timing simulator consumes the
    stream with a delay. When it discovers that the functional execution
    used a timing-dependent value that turns out wrong — here, loads from
    a memory-mapped "timer" whose correct value depends on the simulated
    cycle — it commands the functional simulator to undo back to that
    instruction, overrides the memory value, and lets it re-execute down
    the corrected path (as UTFast/FastSim do for mis-speculated memory
    values).

    Requires a speculative interface with Decode-level information (the
    effective address identifies timer loads). *)

type config = {
  window : int;  (** how far the functional simulator runs ahead *)
  timer_addr : int64;  (** MMIO address whose value is cycle-dependent *)
  timing_model : Funcfirst.config;
}

let default_config =
  {
    window = 32;
    timer_addr = 0x000F_0000L;
    timing_model = Funcfirst.default_config;
  }

type result = {
  instructions : int64;
  rollbacks : int64;
  cycles : int64;
  ipc : float;
}

let run ?(config = default_config) (iface : Specsim.Iface.t) ~budget : result =
  if iface.journal = None then
    invalid_arg "Specff.run: needs a speculative interface (…_spec buildset)";
  let ea_slot =
    match Specsim.Iface.slot_of iface "effective_addr" with
    | Some s -> s
    | None ->
      invalid_arg "Specff.run: interface must expose effective_addr (Decode)"
  in
  let st = iface.st in
  let kinds = Specsim.Classify.of_spec iface.spec in
  let ff = Funcfirst.create ~config:config.timing_model iface in
  let scratch = Specsim.Di.create ~info_slots:iface.slots.di_size in
  let queue : Specsim.Di.t Queue.t = Queue.create () in
  let rollbacks = ref 0L in
  let retired = ref 0L in
  (* The "correct" timer value as a function of simulated time. *)
  (* Coarse enough that the value is stable across one speculative window,
     so divergences settle after a single rollback. *)
  let timer_now () =
    Int64.logand (Int64.shift_right_logical (Funcfirst.current_cycles ff) 10) 0xFFL
  in
  let budget64 = Int64.of_int budget in
  let speculation_stopped = ref false in
  while
    (Int64.compare !retired budget64 < 0)
    && not (Queue.is_empty queue && (st.halted || !speculation_stopped))
  do
    (* fill the speculative window *)
    while Queue.length queue < config.window && not st.halted do
      iface.run_one scratch;
      if scratch.fault = None || st.halted then ();
      if Queue.length queue < config.window then
        Queue.add (Specsim.Di.copy scratch) queue
    done;
    speculation_stopped := st.halted;
    (* timing simulator consumes the oldest instruction *)
    match Queue.take_opt queue with
    | None -> ()
    | Some di ->
      Funcfirst.consume ff di;
      let is_timer_load =
        di.instr_index >= 0
        && kinds.(di.instr_index).is_load
        && Int64.equal (Specsim.Di.get di ea_slot) config.timer_addr
      in
      let diverged =
        is_timer_load
        && not
             (Int64.equal
                (Machine.Memory.read st.mem ~addr:config.timer_addr ~width:4)
                (timer_now ()))
      in
      if diverged then begin
        (* undo this instruction and everything younger, fix the value,
           re-execute *)
        rollbacks := Int64.add !rollbacks 1L;
        Specsim.Iface.rollback_di iface di;
        Machine.Memory.write st.mem ~addr:config.timer_addr ~width:4
          (timer_now ());
        Queue.clear queue;
        speculation_stopped := false
      end
      else retired := Int64.add !retired 1L
  done;
  let cycles = Funcfirst.current_cycles ff in
  {
    instructions = !retired;
    rollbacks = !rollbacks;
    cycles;
    ipc =
      (if Int64.equal cycles 0L then 0.
       else Int64.to_float !retired /. Int64.to_float cycles);
  }
