lib/timing/predictor.ml: Array Bool Int64
