lib/timing/predictor.mli:
