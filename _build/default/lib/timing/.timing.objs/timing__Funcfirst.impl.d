lib/timing/funcfirst.ml: Array Cache Int64 Predictor Specsim
