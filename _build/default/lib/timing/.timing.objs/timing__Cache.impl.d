lib/timing/cache.ml: Array Int64
