lib/timing/sampling.ml: Funcfirst Int64 Specsim
