lib/timing/timingfirst.ml: Funcfirst Int64 Machine Specsim
