lib/timing/specff.ml: Array Funcfirst Int64 Machine Queue Specsim
