lib/timing/directed.ml: Array Cache Int64 List Machine Specsim
