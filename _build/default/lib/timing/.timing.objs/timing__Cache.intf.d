lib/timing/cache.mli:
