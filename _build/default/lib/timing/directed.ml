(** Timing-directed simulator (paper §II-C).

    The timing model is in control: a scalar in-order five-stage pipeline
    (IF ID EX MEM WB) asks the functional simulator to perform each element
    of an instruction's behaviour exactly when the microarchitecture would —
    fetch in IF, decode and operand fetch in ID, address/evaluate in EX,
    memory access in MEM, writeback and exceptions in WB. This requires an
    interface with high semantic detail (the seven-entrypoint Step
    interfaces) and high informational detail (operand register numbers
    feed the scoreboard).

    The pipeline stalls on RAW hazards via a scoreboard (no bypass
    network), takes I/D-cache latencies, resolves branches in EX with a
    not-taken fetch policy, and serializes system calls. *)

type config = {
  l1i : Cache.config;
  l1d : Cache.config;
  mispredict_penalty_extra : int;
      (** cycles beyond the natural refetch bubble *)
}

let default_config =
  { l1i = Cache.l1i_default; l1d = Cache.l1d_default; mispredict_penalty_extra = 0 }

type result = {
  instructions : int64;
  cycles : int64;
  ipc : float;
  raw_stall_cycles : int64;
  branch_flushes : int64;
  icache_miss_rate : float;
  dcache_miss_rate : float;
}

(* Entrypoint positions of the canonical step buildsets. *)
let ep_fetch = 0
let ep_decode = 1
let ep_operands = 2
let ep_execute = 3
let ep_memory = 4
let ep_writeback = 5
let ep_exception = 6

type slot = {
  di : Specsim.Di.t;
  mutable busy : bool;
  mutable stall : int;  (** remaining cycles in this stage *)
  mutable dests : int list;  (** flat register ids being produced *)
  mutable srcs : int list;
  mutable decoded : bool;
  mutable operands_read : bool;
  mutable syscall : bool;
}

let fresh_slot (iface : Specsim.Iface.t) =
  {
    di = Specsim.Di.create ~info_slots:iface.slots.di_size;
    busy = false;
    stall = 0;
    dests = [];
    srcs = [];
    decoded = false;
    operands_read = false;
    syscall = false;
  }

let clear (s : slot) =
  s.busy <- false;
  s.stall <- 0;
  s.dests <- [];
  s.srcs <- [];
  s.decoded <- false;
  s.operands_read <- false;
  s.syscall <- false

let run ?(config = default_config) (iface : Specsim.Iface.t) ~budget : result =
  if Specsim.Iface.n_entrypoints iface <> 7 then
    invalid_arg
      "Directed.run: needs a seven-entrypoint Step interface (e.g. step_all)";
  let st = iface.st in
  let kinds = Specsim.Classify.of_spec iface.spec in
  let slot_of_cell c = iface.slots.di_slot_of_cell.(c) in
  let regs = st.regs in
  let flat_of (cls, id_cell) (di : Specsim.Di.t) =
    let s = slot_of_cell id_cell in
    if s < 0 then None
    else
      Some
        (Machine.Regfile.base regs cls + Int64.to_int (Specsim.Di.get di s))
  in
  let l1i = Cache.create config.l1i in
  let l1d = Cache.create config.l1d in
  let ea_slot = Specsim.Iface.slot_of iface "effective_addr" in
  (* stage slots: 0 = IF, 1 = ID, 2 = EX, 3 = MEM, 4 = WB *)
  let stages = Array.init 5 (fun _ -> fresh_slot iface) in
  let fetch_pc = ref st.pc in
  let serialize = ref false in
  let cycles = ref 0L in
  let retired = ref 0L in
  let raw_stalls = ref 0L in
  let flushes = ref 0L in
  let move a b =
    (* move stage contents from index a to empty index b *)
    let tmp = stages.(b) in
    stages.(b) <- stages.(a);
    stages.(a) <- tmp;
    clear stages.(a)
  in
  let in_flight_dests ~from =
    let acc = ref [] in
    for i = from to 4 do
      if stages.(i).busy then acc := stages.(i).dests @ !acc
    done;
    !acc
  in
  let budget64 = Int64.of_int budget in
  while (not st.halted) && Int64.compare !retired budget64 < 0 do
    cycles := Int64.add !cycles 1L;
    (* ---- WB ---- *)
    let wb = stages.(4) in
    if wb.busy then begin
      iface.step wb.di ep_writeback;
      if not st.halted then iface.step wb.di ep_exception;
      if not st.halted then begin
        iface.retire wb.di;
        retired := Int64.add !retired 1L
      end;
      if wb.syscall then begin
        serialize := false;
        fetch_pc := wb.di.next_pc
      end;
      clear wb
    end;
    (* ---- MEM ---- *)
    let mem = stages.(3) in
    if mem.busy && not st.halted then
      if mem.stall > 0 then mem.stall <- mem.stall - 1
      else if not stages.(4).busy then move 3 4;
    (* ---- EX ---- *)
    let ex = stages.(2) in
    if ex.busy && not st.halted && not stages.(3).busy then begin
      iface.step ex.di ep_execute;
      (* branch resolution: not-taken fetch policy *)
      if not (Int64.equal ex.di.next_pc (Int64.add ex.di.pc 4L)) then begin
        clear stages.(0);
        clear stages.(1);
        (* a squashed younger syscall no longer serializes *)
        serialize := false;
        fetch_pc := ex.di.next_pc;
        flushes := Int64.add !flushes 1L;
        cycles := Int64.add !cycles (Int64.of_int config.mispredict_penalty_extra)
      end;
      (* D-cache access begins as the instruction enters MEM *)
      let k = if ex.di.instr_index >= 0 then Some kinds.(ex.di.instr_index) else None in
      let lat =
        match (k, ea_slot) with
        | Some k, Some s when k.is_load || k.is_store ->
          Cache.latency l1d (Specsim.Di.get ex.di s)
        | _ -> 1
      in
      move 2 3;
      stages.(3).stall <- lat - 1;
      (* the memory action itself runs as the access completes *)
      iface.step stages.(3).di ep_memory
    end;
    (* ---- ID ---- *)
    let id = stages.(1) in
    if id.busy && not st.halted && not stages.(2).busy then begin
      if not id.decoded then begin
        iface.step id.di ep_decode;
        id.decoded <- true;
        if (not st.halted) && id.di.instr_index >= 0 then begin
          let k = kinds.(id.di.instr_index) in
          id.syscall <- k.is_syscall;
          id.srcs <-
            Array.to_list k.src_regs
            |> List.filter_map (fun sr -> flat_of sr id.di);
          id.dests <-
            Array.to_list k.dest_regs
            |> List.filter_map (fun dr -> flat_of dr id.di);
          if k.is_syscall then begin
            (* serialize: squash the younger fetch, stop fetching *)
            clear stages.(0);
            serialize := true
          end
        end
      end;
      if st.halted then clear id
      else begin
        let hazards = in_flight_dests ~from:2 in
        let raw = List.exists (fun s -> List.mem s hazards) id.srcs in
        if raw then raw_stalls := Int64.add !raw_stalls 1L
        else begin
          iface.step id.di ep_operands;
          id.operands_read <- true;
          move 1 2
        end
      end
    end;
    (* ---- IF ---- *)
    let iff = stages.(0) in
    if (not st.halted) && not !serialize then
      if iff.busy then begin
        if iff.stall > 0 then iff.stall <- iff.stall - 1
        else if not stages.(1).busy then move 0 1
      end
      else if not stages.(1).busy then begin
        iff.busy <- true;
        iff.di.pc <- !fetch_pc;
        iff.di.instr_index <- -1;
        iff.di.fault <- None;
        iface.step iff.di ep_fetch;
        iff.stall <- Cache.latency l1i !fetch_pc - 1;
        fetch_pc := Int64.add !fetch_pc 4L;
        if iff.stall = 0 && not stages.(1).busy then move 0 1
      end
  done;
  {
    instructions = !retired;
    cycles = !cycles;
    ipc =
      (if Int64.equal !cycles 0L then 0.
       else Int64.to_float !retired /. Int64.to_float !cycles);
    raw_stall_cycles = !raw_stalls;
    branch_flushes = !flushes;
    icache_miss_rate = Cache.miss_rate l1i;
    dcache_miss_rate = Cache.miss_rate l1d;
  }
