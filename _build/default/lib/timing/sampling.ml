(** Sampling microarchitectural simulation (SMARTS-style, paper §II-C's
    fast-forward discussion).

    Two interfaces over the *same* machine: a detailed one (Decode-level,
    one call per instruction) driving the timing model during measurement
    intervals, and a low-detail Block/Min interface used to fast-forward
    between intervals. This is the paper's motivating case for multiple
    interface levels in one simulator: during fast-forward "the timing
    simulator needs very little information from … the functional
    simulator", and the speed of the whole run is dominated by the
    fast-forward interface. *)

type config = {
  measure : int;  (** instructions per detailed interval *)
  fastforward : int;  (** instructions skipped between intervals *)
  timing_model : Funcfirst.config;
}

let default_config =
  {
    measure = 1_000;
    fastforward = 9_000;
    timing_model = Funcfirst.default_config;
  }

type result = {
  instructions : int64;  (** total retired, measured + fast-forwarded *)
  measured_instructions : int64;
  measured_cycles : int64;
  estimated_ipc : float;
  sampled_fraction : float;
}

(** [run ~detailed ~fast ~budget] — both interfaces must share one machine
    (synthesize them with the same [?st]). *)
let run ?(config = default_config) ~(detailed : Specsim.Iface.t)
    ~(fast : Specsim.Iface.t) ~budget () : result =
  if detailed.st != fast.st then
    invalid_arg "Sampling.run: interfaces must share one machine";
  let st = detailed.st in
  let ff = Funcfirst.create ~config:config.timing_model detailed in
  let measured = ref 0L in
  let start = st.instr_count in
  let total () = Int64.to_int (Int64.sub st.instr_count start) in
  while (not st.halted) && total () < budget do
    (* measurement interval through the detailed interface *)
    let r = Funcfirst.run ff ~budget:config.measure in
    measured := Int64.add !measured r.instructions;
    (* fast-forward through the low-detail interface *)
    if not st.halted then ignore (Specsim.Iface.run_n fast config.fastforward)
  done;
  let cycles = Funcfirst.current_cycles ff in
  let instructions = Int64.sub st.instr_count start in
  {
    instructions;
    measured_instructions = !measured;
    measured_cycles = cycles;
    estimated_ipc =
      (if Int64.equal cycles 0L then 0.
       else Int64.to_float !measured /. Int64.to_float cycles);
    sampled_fraction =
      (if Int64.equal instructions 0L then 0.
       else Int64.to_float !measured /. Int64.to_float instructions);
  }
