(** Tokens of the LIS language. *)

type t =
  | Ident of string
  | Int of int64
  | String of string
  (* punctuation *)
  | Lparen
  | Rparen
  | Lbrace
  | Rbrace
  | Lbracket
  | Rbracket
  | Comma
  | Semi
  | Colon
  | Dot
  | Question
  (* operators *)
  | Assign  (** [=] *)
  | Plus
  | Minus
  | Star
  | Slash
  | Percent
  | Amp
  | Bar
  | Caret
  | Tilde
  | Bang
  | Shl  (** [<<] *)
  | Shr  (** [>>] (logical) *)
  | EqEq
  | NotEq
  | Lt
  | Le
  | Gt
  | Ge
  | AmpAmp
  | BarBar
  | Eof

let to_string = function
  | Ident s -> s
  | Int v -> Int64.to_string v
  | String s -> Printf.sprintf "%S" s
  | Lparen -> "("
  | Rparen -> ")"
  | Lbrace -> "{"
  | Rbrace -> "}"
  | Lbracket -> "["
  | Rbracket -> "]"
  | Comma -> ","
  | Semi -> ";"
  | Colon -> ":"
  | Dot -> "."
  | Question -> "?"
  | Assign -> "="
  | Plus -> "+"
  | Minus -> "-"
  | Star -> "*"
  | Slash -> "/"
  | Percent -> "%"
  | Amp -> "&"
  | Bar -> "|"
  | Caret -> "^"
  | Tilde -> "~"
  | Bang -> "!"
  | Shl -> "<<"
  | Shr -> ">>"
  | EqEq -> "=="
  | NotEq -> "!="
  | Lt -> "<"
  | Le -> "<="
  | Gt -> ">"
  | Ge -> ">="
  | AmpAmp -> "&&"
  | BarBar -> "||"
  | Eof -> "<eof>"
