(** Hand-written lexer for LIS.

    Supports [//] line comments and [/* ... */] block comments, decimal and
    hexadecimal integer literals, string literals with the usual escapes,
    and C-style operators. Produces the full token array up front so the
    parser can look ahead freely. *)

type lexed = { tok : Token.t; span : Loc.span }

type state = {
  src : string;
  file : string;
  mutable pos : int;
  mutable line : int;
  mutable bol : int;  (** offset of the beginning of the current line *)
}

let make_pos st : Loc.pos =
  { file = st.file; line = st.line; col = st.pos - st.bol + 1 }

let peek st = if st.pos < String.length st.src then Some st.src.[st.pos] else None

let peek2 st =
  if st.pos + 1 < String.length st.src then Some st.src.[st.pos + 1] else None

let advance st =
  (match peek st with
  | Some '\n' ->
    st.line <- st.line + 1;
    st.bol <- st.pos + 1
  | _ -> ());
  st.pos <- st.pos + 1

let error st fmt =
  let p = make_pos st in
  Loc.error { start = p; stop = p } fmt

let is_ident_start c =
  (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') || c = '_'

let is_ident_char c = is_ident_start c || (c >= '0' && c <= '9')
let is_digit c = c >= '0' && c <= '9'

let is_hex_digit c =
  is_digit c || (c >= 'a' && c <= 'f') || (c >= 'A' && c <= 'F')

let rec skip_ws_and_comments st =
  match peek st with
  | Some (' ' | '\t' | '\r' | '\n') ->
    advance st;
    skip_ws_and_comments st
  | Some '/' when peek2 st = Some '/' ->
    while peek st <> None && peek st <> Some '\n' do
      advance st
    done;
    skip_ws_and_comments st
  | Some '/' when peek2 st = Some '*' ->
    advance st;
    advance st;
    let rec close () =
      match peek st with
      | None -> error st "unterminated block comment"
      | Some '*' when peek2 st = Some '/' ->
        advance st;
        advance st
      | Some _ ->
        advance st;
        close ()
    in
    close ();
    skip_ws_and_comments st
  | _ -> ()

let lex_ident st =
  let start = st.pos in
  while match peek st with Some c when is_ident_char c -> true | _ -> false do
    advance st
  done;
  String.sub st.src start (st.pos - start)

let lex_number st =
  let start = st.pos in
  let hex =
    peek st = Some '0' && (peek2 st = Some 'x' || peek2 st = Some 'X')
  in
  if hex then begin
    advance st;
    advance st;
    if not (match peek st with Some c -> is_hex_digit c | None -> false) then
      error st "expected hexadecimal digits after 0x";
    while
      match peek st with
      | Some c when is_hex_digit c || c = '_' -> true
      | _ -> false
    do
      advance st
    done
  end
  else
    while
      match peek st with Some c when is_digit c || c = '_' -> true | _ -> false
    do
      advance st
    done;
  let text = String.sub st.src start (st.pos - start) in
  let text = String.concat "" (String.split_on_char '_' text) in
  (* Use unsigned parsing so 0xFFFFFFFFFFFFFFFF is accepted. *)
  match Int64.of_string_opt (if hex then text else "0u" ^ text) with
  | Some v -> v
  | None -> (
    match Int64.of_string_opt text with
    | Some v -> v
    | None -> error st "invalid integer literal %s" text)

let lex_string st =
  advance st;
  let buf = Buffer.create 16 in
  let rec go () =
    match peek st with
    | None -> error st "unterminated string literal"
    | Some '"' -> advance st
    | Some '\\' -> (
      advance st;
      match peek st with
      | Some 'n' ->
        Buffer.add_char buf '\n';
        advance st;
        go ()
      | Some 't' ->
        Buffer.add_char buf '\t';
        advance st;
        go ()
      | Some (('"' | '\\') as c) ->
        Buffer.add_char buf c;
        advance st;
        go ()
      | Some c -> error st "unknown escape \\%c" c
      | None -> error st "unterminated string literal")
    | Some c ->
      Buffer.add_char buf c;
      advance st;
      go ()
  in
  go ();
  Buffer.contents buf

let next_token st : lexed =
  skip_ws_and_comments st;
  let start = make_pos st in
  let simple (tok : Token.t) =
    advance st;
    tok
  in
  let two (tok : Token.t) =
    advance st;
    advance st;
    tok
  in
  let tok : Token.t =
    match peek st with
    | None -> Eof
    | Some c when is_ident_start c -> Ident (lex_ident st)
    | Some c when is_digit c -> Int (lex_number st)
    | Some '"' -> String (lex_string st)
    | Some '(' -> simple Lparen
    | Some ')' -> simple Rparen
    | Some '{' -> simple Lbrace
    | Some '}' -> simple Rbrace
    | Some '[' -> simple Lbracket
    | Some ']' -> simple Rbracket
    | Some ',' -> simple Comma
    | Some ';' -> simple Semi
    | Some ':' -> simple Colon
    | Some '.' -> simple Dot
    | Some '?' -> simple Question
    | Some '+' -> simple Plus
    | Some '-' -> simple Minus
    | Some '*' -> simple Star
    | Some '/' -> simple Slash
    | Some '%' -> simple Percent
    | Some '^' -> simple Caret
    | Some '~' -> simple Tilde
    | Some '&' -> if peek2 st = Some '&' then two AmpAmp else simple Amp
    | Some '|' -> if peek2 st = Some '|' then two BarBar else simple Bar
    | Some '=' -> if peek2 st = Some '=' then two EqEq else simple Assign
    | Some '!' -> if peek2 st = Some '=' then two NotEq else simple Bang
    | Some '<' ->
      if peek2 st = Some '<' then two Shl
      else if peek2 st = Some '=' then two Le
      else simple Lt
    | Some '>' ->
      if peek2 st = Some '>' then two Shr
      else if peek2 st = Some '=' then two Ge
      else simple Gt
    | Some c -> error st "unexpected character %C" c
  in
  let stop = make_pos st in
  { tok; span = { start; stop } }

(** [tokenize ~file src] lexes the whole source. The returned array always
    ends with an [Eof] token. @raise Loc.Error on lexical errors. *)
let tokenize ~file src : lexed array =
  let st = { src; file; pos = 0; line = 1; bol = 0 } in
  let toks = ref [] in
  let rec go () =
    let t = next_token st in
    toks := t :: !toks;
    if t.tok <> Eof then go ()
  in
  go ();
  Array.of_list (List.rev !toks)
