(** LIS pretty-printer: renders a surface AST back to concrete syntax.
    Round-trip property (checked by the test suite for every shipped ISA):
    parsing the printed text yields an equivalent resolved specification. *)

(** [to_string decls] renders a whole description. *)
val to_string : Ast.t -> string
