(** Semantic analysis: surface AST -> resolved {!Spec.t}.

    Name resolution (cells, register classes, actions), cell-id
    assignment, operand merging across instruction classes, translation of
    action bodies to {!Semir.Ir}, generation of the builtin decode /
    operand-fetch / writeback programs, and buildset entrypoint and
    visibility resolution. All errors raise {!Loc.Error}. *)

(** The default per-instruction action sequence used when a description
    has no [sequence] declaration: fetch, decode, read_operands, address,
    evaluate, memory, writeback, exception. *)
val default_sequence : string list

(** Names of the four builtin actions (their semantics are generated). *)
val builtin_action_names : string list

val sym_of_name : string -> Spec.action_sym

(** [analyze ?line_stats decls] resolves a parsed description. *)
val analyze : ?line_stats:Count.stats -> Ast.t -> Spec.t

(** [load sources] parses and analyzes a list of description files,
    attaching their line statistics (paper Table I). *)
val load : Ast.source list -> Spec.t
