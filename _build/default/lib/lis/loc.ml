(** Source positions and spans for LIS descriptions. *)

type pos = { file : string; line : int; col : int }

type span = { start : pos; stop : pos }

let dummy_pos = { file = "<none>"; line = 0; col = 0 }
let dummy = { start = dummy_pos; stop = dummy_pos }

let pp_pos ppf p = Format.fprintf ppf "%s:%d:%d" p.file p.line p.col
let pp ppf s = pp_pos ppf s.start

(** Errors raised by the LIS front end carry a span and a message. *)
exception Error of span * string

let error span fmt = Format.kasprintf (fun m -> raise (Error (span, m))) fmt

let error_to_string (span, msg) = Format.asprintf "%a: %s" pp span msg

(** [pp_error ppf (span, msg)] prints a compiler-style error message. *)
let pp_error ppf (span, msg) = Format.fprintf ppf "%a: error: %s" pp span msg
