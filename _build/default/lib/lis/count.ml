(** Source-line statistics for LIS description files (paper Table I).

    Counts non-blank, non-comment lines, classified by each file's role
    (ISA description, OS/simulator support, buildsets). *)

type stats = {
  isa_lines : int;
  os_lines : int;
  buildset_lines : int;
  buildset_count : int;  (** number of [buildset] declarations seen *)
}

let zero = { isa_lines = 0; os_lines = 0; buildset_lines = 0; buildset_count = 0 }

(** [code_lines text] counts lines that contain code after stripping [//]
    and [/* */] comments. *)
let code_lines text =
  let n = ref 0 in
  let in_block = ref false in
  String.split_on_char '\n' text
  |> List.iter (fun line ->
         let has_code = ref false in
         let i = ref 0 in
         let len = String.length line in
         while !i < len do
           if !in_block then
             if !i + 1 < len && line.[!i] = '*' && line.[!i + 1] = '/' then begin
               in_block := false;
               i := !i + 2
             end
             else incr i
           else if !i + 1 < len && line.[!i] = '/' && line.[!i + 1] = '/' then
             i := len
           else if !i + 1 < len && line.[!i] = '/' && line.[!i + 1] = '*' then begin
             in_block := true;
             i := !i + 2
           end
           else begin
             if not (line.[!i] = ' ' || line.[!i] = '\t' || line.[!i] = '\r')
             then has_code := true;
             incr i
           end
         done;
         if !has_code then incr n);
  !n

let count_buildsets text =
  (* Cheap token-level count; exact because 'buildset' only appears as a
     declaration keyword in LIS. *)
  let count = ref 0 in
  (try
     let toks = Lexer.tokenize ~file:"<count>" text in
     Array.iter
       (fun (t : Lexer.lexed) ->
         match t.tok with Ident "buildset" -> incr count | _ -> ())
       toks
   with Loc.Error _ -> ());
  !count

let of_sources (srcs : Ast.source list) : stats =
  List.fold_left
    (fun acc (s : Ast.source) ->
      let lines = code_lines s.src_text in
      match s.src_role with
      | Ast.Isa_description -> { acc with isa_lines = acc.isa_lines + lines }
      | Ast.Os_support -> { acc with os_lines = acc.os_lines + lines }
      | Ast.Buildset_file ->
        {
          acc with
          buildset_lines = acc.buildset_lines + lines;
          buildset_count = acc.buildset_count + count_buildsets s.src_text;
        })
    zero srcs

let lines_per_buildset s =
  if s.buildset_count = 0 then 0.
  else float_of_int s.buildset_lines /. float_of_int s.buildset_count
