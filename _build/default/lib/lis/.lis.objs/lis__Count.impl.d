lib/lis/count.ml: Array Ast Lexer List Loc String
