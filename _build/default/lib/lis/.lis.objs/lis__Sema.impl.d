lib/lis/sema.ml: Array Ast Count Hashtbl Int64 List Loc Machine Option Parser Semir Spec String
