lib/lis/ast.ml: Loc Machine Semir
