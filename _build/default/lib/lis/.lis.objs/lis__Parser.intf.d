lib/lis/parser.mli: Ast
