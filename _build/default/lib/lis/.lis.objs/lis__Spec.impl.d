lib/lis/spec.ml: Array Count List Machine Printf Semir String
