lib/lis/token.ml: Int64 Printf
