lib/lis/count.mli: Ast
