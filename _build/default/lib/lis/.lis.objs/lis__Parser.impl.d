lib/lis/parser.ml: Array Ast Int64 Lexer List Loc Machine Semir String Token
