lib/lis/lexer.ml: Array Buffer Int64 List Loc String Token
