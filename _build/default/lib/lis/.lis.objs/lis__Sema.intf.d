lib/lis/sema.mli: Ast Count Spec
