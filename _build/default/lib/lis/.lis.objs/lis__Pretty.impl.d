lib/lis/pretty.ml: Ast Buffer Int64 List Machine Printf Semir String
