lib/lis/pretty.mli: Ast
