lib/lis/loc.ml: Format
