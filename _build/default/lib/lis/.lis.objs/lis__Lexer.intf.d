lib/lis/lexer.mli: Loc Token
