(** Recursive-descent parser for LIS (LL(2); expressions by precedence
    climbing). All errors are reported through {!Loc.Error} with the
    offending span. *)

(** [parse ~file src] parses one LIS source file. *)
val parse : file:string -> string -> Ast.t

(** [parse_sources srcs] parses and concatenates several description files
    (ISA description, OS support, buildsets — the paper's file layout). *)
val parse_sources : Ast.source list -> Ast.t
