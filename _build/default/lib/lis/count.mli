(** Source-line statistics for LIS description files (paper Table I):
    non-blank, non-comment lines, classified by each file's role. *)

type stats = {
  isa_lines : int;
  os_lines : int;
  buildset_lines : int;
  buildset_count : int;  (** number of [buildset] declarations seen *)
}

val zero : stats

(** [code_lines text] counts lines that contain code after stripping
    [//] and [/* */] comments. *)
val code_lines : string -> int

(** [count_buildsets text] counts [buildset] declarations (token-level). *)
val count_buildsets : string -> int

val of_sources : Ast.source list -> stats

(** The paper's "lines per experimental buildset" statistic. *)
val lines_per_buildset : stats -> float
