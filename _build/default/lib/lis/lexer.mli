(** Hand-written lexer for LIS. Supports [//] and [/* */] comments,
    decimal/hexadecimal integers, string literals, and C-style operators. *)

type lexed = { tok : Token.t; span : Loc.span }

(** [tokenize ~file src] lexes the whole source up front (the parser looks
    ahead freely). The returned array always ends with [Eof].
    @raise Loc.Error on lexical errors. *)
val tokenize : file:string -> string -> lexed array
