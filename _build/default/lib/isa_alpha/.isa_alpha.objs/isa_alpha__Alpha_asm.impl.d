lib/isa_alpha/alpha_asm.ml: Int64 List Printf Semir Vir
