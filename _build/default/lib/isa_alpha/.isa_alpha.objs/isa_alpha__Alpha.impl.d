lib/isa_alpha/alpha.ml: Lis Specsim
