(** A small demonstration ISA used throughout the test suite.

    Little-endian, 64-bit, fixed 4-byte instructions, primary opcode in
    bits 26..31. It is deliberately shaped like the paper's running
    example (Figs. 2-4): loads and stores compute an effective address in
    a dedicated field, ALU instructions stage a destination operand that
    the generated writeback commits. *)

let isa_text =
  {|
isa "demo" {
  endian little;
  wordsize 64;
  instrsize 4;
  decodekey 26 6;
}

regclass GPR 32 width 64 zero 31;

field effective_addr : u64 decode;
field alu_out : u64;

class rr {
  operand ra : GPR[bits(21,5)] read;
  operand rb : GPR[bits(16,5)] read;
  operand rc : GPR[bits(11,5)] write;
}

class ri {
  operand ra : GPR[bits(21,5)] read;
  operand rc : GPR[bits(16,5)] write;
}

class mem {
  operand ra : GPR[bits(21,5)] read;
  action address { effective_addr = ra + sbits(0,16); }
}

instr ADD : rr match 0x40000000 mask 0xFC0007FF {
  action evaluate { alu_out = ra + rb; rc = alu_out; }
}

instr SUB : rr match 0x40000001 mask 0xFC0007FF {
  action evaluate { alu_out = ra - rb; rc = alu_out; }
}

instr MUL : rr match 0x40000002 mask 0xFC0007FF {
  action evaluate { alu_out = ra * rb; rc = alu_out; }
}

instr CMPLT : rr match 0x40000003 mask 0xFC0007FF {
  action evaluate { alu_out = ra < rb; rc = alu_out; }
}

// rc = ra + sext(imm16)
instr ADDI : ri match 0x44000000 mask 0xFC000000 {
  action evaluate { alu_out = ra + sbits(0,16); rc = alu_out; }
}

// load 64-bit: rc = mem[ra + imm16]
instr LDQ : mem match 0x48000000 mask 0xFC000000 {
  operand rc : GPR[bits(16,5)] write;
  action memory { rc = load.u64(effective_addr); }
}

// store 64-bit: mem[ra + imm16] = rb
instr STQ : mem match 0x4C000000 mask 0xFC000000 {
  operand rb : GPR[bits(16,5)] read;
  action memory { store.u64(effective_addr, rb); }
}

// branch if ra == 0, pc-relative in words
instr BEQZ match 0x50000000 mask 0xFC000000 {
  operand ra : GPR[bits(21,5)] read;
  action evaluate {
    if (ra == 0) { next_pc = pc + 4 + (sbits(0,16) << 2); }
  }
}

// unconditional branch
instr BR match 0x54000000 mask 0xFC000000 {
  action evaluate { next_pc = pc + 4 + (sbits(0,26) << 2); }
}

instr SYS match 0x58000000 mask 0xFC000000 {
  action exception { syscall; }
}

abi {
  nr = GPR[0];
  arg0 = GPR[1];
  arg1 = GPR[2];
  arg2 = GPR[3];
  ret = GPR[0];
}
|}

let buildsets_text = Specsim.Detail.canonical_buildset_file ()

let sources : Lis.Ast.source list =
  [
    { src_role = Lis.Ast.Isa_description; src_name = "demo.lis"; src_text = isa_text };
    {
      src_role = Lis.Ast.Buildset_file;
      src_name = "demo_buildsets.lis";
      src_text = buildsets_text;
    };
  ]

let spec = lazy (Lis.Sema.load sources)

(* --------------------------------------------------------------- *)
(* A tiny assembler for the demo ISA                                 *)
(* --------------------------------------------------------------- *)

let rr op ~ra ~rb ~rc =
  Int64.of_int
    ((0x10 lsl 26) lor (ra lsl 21) lor (rb lsl 16) lor (rc lsl 11) lor op)

let add ~ra ~rb ~rc = rr 0 ~ra ~rb ~rc
let sub ~ra ~rb ~rc = rr 1 ~ra ~rb ~rc
let mul ~ra ~rb ~rc = rr 2 ~ra ~rb ~rc
let cmplt ~ra ~rb ~rc = rr 3 ~ra ~rb ~rc

let addi ~ra ~imm ~rc =
  Int64.of_int
    ((0x11 lsl 26) lor (ra lsl 21) lor (rc lsl 16) lor (imm land 0xFFFF))

let ldq ~ra ~imm ~rc =
  Int64.of_int
    ((0x12 lsl 26) lor (ra lsl 21) lor (rc lsl 16) lor (imm land 0xFFFF))

let stq ~ra ~imm ~rb =
  Int64.of_int
    ((0x13 lsl 26) lor (ra lsl 21) lor (rb lsl 16) lor (imm land 0xFFFF))

let beqz ~ra ~off =
  Int64.of_int ((0x14 lsl 26) lor (ra lsl 21) lor (off land 0xFFFF))

let br ~off = Int64.of_int ((0x15 lsl 26) lor (off land 0x3FFFFFF))
let sys = Int64.of_int (0x16 lsl 26)

(** [load_program st ~base words] writes the program at [base]. *)
let load_program (st : Machine.State.t) ~base words =
  List.iteri
    (fun i w ->
      Machine.Memory.write st.mem
        ~addr:(Int64.add base (Int64.of_int (4 * i)))
        ~width:4 w)
    words;
  Machine.State.reset st ~pc:base

(** Program: exit(sum of 1..10) — exercises ALU, branches, memory. *)
let sum_program =
  [
    addi ~ra:31 ~imm:10 ~rc:1 (* r1 = 10 *);
    addi ~ra:31 ~imm:0 ~rc:2 (* r2 = 0 (sum) *);
    (* loop: *)
    add ~ra:2 ~rb:1 ~rc:2 (* r2 += r1 *);
    addi ~ra:1 ~imm:(-1) ~rc:1 (* r1 -= 1 *);
    beqz ~ra:1 ~off:1 (* if r1 == 0 skip back-branch *);
    br ~off:(-4) (* goto loop *);
    addi ~ra:31 ~imm:0 ~rc:0 (* r0 = 0 (sys_exit) *);
    add ~ra:2 ~rb:31 ~rc:1 (* r1 = r2 (arg0 = sum) *);
    sys;
  ]
