(** ARM v5 (user-mode integer subset) LIS description.

    32-bit, little-endian. Every instruction is predicated on the 4-bit
    condition field; flag-setting instructions update N/Z/C/V (a register
    class of four 1-bit registers). The shifter operand is modelled
    faithfully, including its carry output — the paper's example of an
    ARM-specific intermediate value ([shifter_out]) that a timing
    simulator may want to observe.

    Deviations (documented in DESIGN.md): r15 is a plain register (no
    pc+8 reads, no writes to pc via data-processing); generated code never
    touches it. Condition 0xF (ARMv5 media extensions) never executes. *)

let isa_text =
  {|
// ===================================================================
// ARM v5 user-mode integer instruction set
// ===================================================================
isa "arm" {
  endian little;
  wordsize 32;
  instrsize 4;
  decodekey 20 8;
}

regclass GPR 16 width 32;
// N=0, Z=1, C=2, V=3
regclass FLAGS 4 width 1;

field cond_ok : u64 decode;
field shift_amount : u64;
field shifter_out : u64;
field shifter_carry : u64;
field alu_out : u64;
field carry_out : u64;
field overflow_out : u64;
field effective_addr : u64 decode;
field branch_target : u64 decode;
field branch_taken : u64 decode;

sequence fetch, decode, read_operands, address, evaluate, memory, writeback, exception;

// ---------------- condition evaluation ------------------------------
class armcond {
  action address {
    cond_ok = bits(28,4) == 14 ? 1
            : bits(28,4) == 0 ? reg.FLAGS[1]
            : bits(28,4) == 1 ? !reg.FLAGS[1]
            : bits(28,4) == 2 ? reg.FLAGS[2]
            : bits(28,4) == 3 ? !reg.FLAGS[2]
            : bits(28,4) == 4 ? reg.FLAGS[0]
            : bits(28,4) == 5 ? !reg.FLAGS[0]
            : bits(28,4) == 6 ? reg.FLAGS[3]
            : bits(28,4) == 7 ? !reg.FLAGS[3]
            : bits(28,4) == 8 ? (reg.FLAGS[2] && !reg.FLAGS[1])
            : bits(28,4) == 9 ? (!reg.FLAGS[2] || reg.FLAGS[1])
            : bits(28,4) == 10 ? reg.FLAGS[0] == reg.FLAGS[3]
            : bits(28,4) == 11 ? reg.FLAGS[0] != reg.FLAGS[3]
            : bits(28,4) == 12 ? (!reg.FLAGS[1] && reg.FLAGS[0] == reg.FLAGS[3])
            : bits(28,4) == 13 ? (reg.FLAGS[1] || reg.FLAGS[0] != reg.FLAGS[3])
            : 0;
  }
}

// ---------------- shifter operand -----------------------------------
// Immediate: 8-bit value rotated right by twice the rotate field.
class sh_imm {
  action address {
    shift_amount = bits(8,4) << 1;
    shifter_out = ((bits(0,8) >> shift_amount)
                 | (bits(0,8) << (32 - shift_amount))) & 0xFFFFFFFF;
    shifter_carry = shift_amount == 0 ? reg.FLAGS[2] : (shifter_out >> 31) & 1;
  }
}

// Register shifted by immediate (including the LSR/ASR #32 and RRX
// special cases for a zero immediate).
class sh_regimm {
  operand rm : GPR[bits(0,4)] read;
  action address {
    shift_amount = bits(7,5);
    shifter_out =
        bits(5,2) == 0 ? ((rm << shift_amount) & 0xFFFFFFFF)
      : bits(5,2) == 1 ? (shift_amount == 0 ? 0 : rm >> shift_amount)
      : bits(5,2) == 2 ? zext(asr(sext(rm,32), shift_amount == 0 ? 32 : shift_amount), 32)
      : (shift_amount == 0
           ? ((reg.FLAGS[2] << 31) | (rm >> 1))
           : (((rm >> shift_amount) | (rm << (32 - shift_amount))) & 0xFFFFFFFF));
    shifter_carry =
        bits(5,2) == 0 ? (shift_amount == 0 ? reg.FLAGS[2] : (rm >> (32 - shift_amount)) & 1)
      : bits(5,2) == 1 ? (shift_amount == 0 ? (rm >> 31) & 1 : (rm >> (shift_amount - 1)) & 1)
      : bits(5,2) == 2 ? (shift_amount == 0 ? (rm >> 31) & 1 : (rm >> (shift_amount - 1)) & 1)
      : (shift_amount == 0 ? rm & 1 : (rm >> (shift_amount - 1)) & 1);
  }
}

// Register shifted by register (amount is the low byte of rs).
class sh_regreg {
  operand rm : GPR[bits(0,4)] read;
  operand rs : GPR[bits(8,4)] read;
  action address {
    shift_amount = rs & 0xFF;
    shifter_out =
        shift_amount == 0 ? rm
      : bits(5,2) == 0 ? (shift_amount < 32 ? ((rm << shift_amount) & 0xFFFFFFFF) : 0)
      : bits(5,2) == 1 ? (shift_amount < 32 ? (rm >> shift_amount) : 0)
      : bits(5,2) == 2 ? zext(asr(sext(rm,32), shift_amount < 32 ? shift_amount : 32), 32)
      : (((rm >> (shift_amount & 31)) | (rm << (32 - (shift_amount & 31)))) & 0xFFFFFFFF);
    shifter_carry =
        shift_amount == 0 ? reg.FLAGS[2]
      : bits(5,2) == 0 ? (shift_amount < 32 ? (rm >> (32 - shift_amount)) & 1
                          : (shift_amount == 32 ? rm & 1 : 0))
      : bits(5,2) == 1 ? (shift_amount < 32 ? (rm >> (shift_amount - 1)) & 1
                          : (shift_amount == 32 ? (rm >> 31) & 1 : 0))
      : bits(5,2) == 2 ? (shift_amount < 32 ? (rm >> (shift_amount - 1)) & 1 : (rm >> 31) & 1)
      : ((shift_amount & 31) == 0 ? (rm >> 31) & 1 : (rm >> ((shift_amount & 31) - 1)) & 1);
  }
}

class dp_rn {
  operand rn : GPR[bits(16,4)] read;
}

class dp_rd {
  operand rd : GPR[bits(12,4)] read write;
}

// Flag commit runs in the memory action, after evaluate has produced
// alu_out / carry_out / overflow_out.
class flags_logical {
  action memory {
    if (cond_ok && bits(20,1)) {
      reg.FLAGS[0] = (alu_out >> 31) & 1;
      reg.FLAGS[1] = alu_out == 0;
      reg.FLAGS[2] = shifter_carry;
    }
  }
}

class flags_arith {
  action memory {
    if (cond_ok && bits(20,1)) {
      reg.FLAGS[0] = (alu_out >> 31) & 1;
      reg.FLAGS[1] = alu_out == 0;
      reg.FLAGS[2] = carry_out;
      reg.FLAGS[3] = overflow_out;
    }
  }
}
|}

(* The sixteen data-processing opcodes in their three shifter flavours are
   mechanical; the evaluate bodies are shared per opcode. *)
let dp_body ~has_rn ~has_rd ~arith ~expr =
  let dest = if has_rd then "    if (cond_ok) { rd = alu_out; }\n" else "" in
  let _ = has_rn in
  if arith then
    Printf.sprintf "{\n  action evaluate {\n%s%s  }\n}" expr dest
  else
    Printf.sprintf "{\n  action evaluate {\n    alu_out = %s;\n%s  }\n}" expr
      dest

let dp_instrs =
  (* name, opcode, has_rn, has_rd, arith?, body *)
  let logical name op e =
    (name, op, true, true, false, Printf.sprintf "(%s) & 0xFFFFFFFF" e)
  in
  let test name op e =
    (name, op, true, false, false, Printf.sprintf "(%s) & 0xFFFFFFFF" e)
  in
  let arith name op ~has_rn ~has_rd body = (name, op, has_rn, has_rd, true, body) in
  let add_body a b cin =
    Printf.sprintf
      "    alu_out = (%s + %s + %s) & 0xFFFFFFFF;\n\
      \    carry_out = ((%s + %s + %s) >> 32) & 1;\n\
      \    overflow_out = ((~(%s ^ %s) & (%s ^ alu_out)) >> 31) & 1;\n"
      a b cin a b cin a b a
  in
  let sub_body a b borrow_in =
    (* a - b - borrow, with C = NOT borrow-out *)
    Printf.sprintf
      "    alu_out = (%s - %s - %s) & 0xFFFFFFFF;\n\
      \    carry_out = geu(%s, %s + %s);\n\
      \    overflow_out = (((%s ^ %s) & (%s ^ alu_out)) >> 31) & 1;\n"
      a b borrow_in a b borrow_in a b a
  in
  [
    logical "AND" 0 "rn & shifter_out";
    logical "EOR" 1 "rn ^ shifter_out";
    arith "SUB" 2 ~has_rn:true ~has_rd:true (sub_body "rn" "shifter_out" "0");
    arith "RSB" 3 ~has_rn:true ~has_rd:true (sub_body "shifter_out" "rn" "0");
    arith "ADD" 4 ~has_rn:true ~has_rd:true (add_body "rn" "shifter_out" "0");
    arith "ADC" 5 ~has_rn:true ~has_rd:true
      (add_body "rn" "shifter_out" "reg.FLAGS[2]");
    arith "SBC" 6 ~has_rn:true ~has_rd:true
      (sub_body "rn" "shifter_out" "(1 - reg.FLAGS[2])");
    arith "RSC" 7 ~has_rn:true ~has_rd:true
      (sub_body "shifter_out" "rn" "(1 - reg.FLAGS[2])");
    test "TST" 8 "rn & shifter_out";
    test "TEQ" 9 "rn ^ shifter_out";
    arith "CMP" 10 ~has_rn:true ~has_rd:false (sub_body "rn" "shifter_out" "0");
    arith "CMN" 11 ~has_rn:true ~has_rd:false (add_body "rn" "shifter_out" "0");
    logical "ORR" 12 "rn | shifter_out";
    ("MOV", 13, false, true, false, "shifter_out");
    logical "BIC" 14 "rn & ~shifter_out";
    ("MVN", 15, false, true, false, "(~shifter_out) & 0xFFFFFFFF");
  ]

(* The register-shifted-by-register flavour only for the common opcodes. *)
let rsr_opcodes = [ "AND"; "EOR"; "SUB"; "ADD"; "ORR"; "MOV"; "BIC"; "CMP" ]

let dp_text =
  let b = Buffer.create 4096 in
  List.iter
    (fun (name, op, has_rn, has_rd, arith, body_expr) ->
      let is_test = not has_rd in
      let flags = if arith then "flags_arith" else "flags_logical" in
      let classes ~sh =
        String.concat ", "
          (List.concat
             [
               [ "armcond"; sh ];
               (if has_rn then [ "dp_rn" ] else []);
               (if has_rd then [ "dp_rd" ] else []);
               [ flags ];
             ])
      in
      let body = dp_body ~has_rn ~has_rd ~arith ~expr:body_expr in
      (* S bit in mask for test ops (always set), free otherwise *)
      let smask = if is_test then 0x00100000 else 0 in
      let smatch = if is_test then 0x00100000 else 0 in
      (* immediate flavour: I=1 *)
      Printf.bprintf b "instr %s_IMM : %s match 0x%08X mask 0x%08X %s\n" name
        (classes ~sh:"sh_imm")
        (0x02000000 lor (op lsl 21) lor smatch)
        (0x0FE00000 lor smask) body;
      (* register-shift-by-immediate flavour: I=0, bit4=0 *)
      Printf.bprintf b "instr %s_REG : %s match 0x%08X mask 0x%08X %s\n" name
        (classes ~sh:"sh_regimm")
        ((op lsl 21) lor smatch)
        (0x0FE00010 lor smask) body;
      (* register-shift-by-register flavour: I=0, bit4=1, bit7=0 *)
      if List.mem name rsr_opcodes then
        Printf.bprintf b "instr %s_RSR : %s match 0x%08X mask 0x%08X %s\n" name
          (classes ~sh:"sh_regreg")
          ((op lsl 21) lor 0x10 lor smatch)
          (0x0FE00090 lor smask) body)
    dp_instrs;
  Buffer.contents b

let rest_text =
  {|
// ---------------- multiply -------------------------------------------
instr MUL : armcond match 0x00000090 mask 0x0FE000F0 {
  operand rdm : GPR[bits(16,4)] read write;
  operand rm : GPR[bits(0,4)] read;
  operand rs : GPR[bits(8,4)] read;
  action evaluate {
    alu_out = (rm * rs) & 0xFFFFFFFF;
    if (cond_ok) { rdm = alu_out; }
  }
  action memory {
    if (cond_ok && bits(20,1)) {
      reg.FLAGS[0] = (alu_out >> 31) & 1;
      reg.FLAGS[1] = alu_out == 0;
    }
  }
}

instr MLA : armcond match 0x00200090 mask 0x0FE000F0 {
  operand rdm : GPR[bits(16,4)] read write;
  operand rm : GPR[bits(0,4)] read;
  operand rs : GPR[bits(8,4)] read;
  operand racc : GPR[bits(12,4)] read;
  action evaluate {
    alu_out = (rm * rs + racc) & 0xFFFFFFFF;
    if (cond_ok) { rdm = alu_out; }
  }
  action memory {
    if (cond_ok && bits(20,1)) {
      reg.FLAGS[0] = (alu_out >> 31) & 1;
      reg.FLAGS[1] = alu_out == 0;
    }
  }
}

// ---------------- long multiply (ARMv4M) ------------------------------
class mull_ops {
  operand rdlo : GPR[bits(12,4)] read write;
  operand rdhi : GPR[bits(16,4)] read write;
  operand rm : GPR[bits(0,4)] read;
  operand rs : GPR[bits(8,4)] read;
}

class mull_flags {
  action memory {
    if (cond_ok && bits(20,1)) {
      reg.FLAGS[0] = (rdhi >> 31) & 1;
      reg.FLAGS[1] = rdhi == 0 && rdlo == 0;
    }
  }
}

instr UMULL : armcond, mull_ops, mull_flags match 0x00800090 mask 0x0FE000F0 {
  action evaluate {
    alu_out = rm * rs;
    if (cond_ok) { rdlo = alu_out & 0xFFFFFFFF; rdhi = alu_out >> 32; }
  }
}
instr UMLAL : armcond, mull_ops, mull_flags match 0x00A00090 mask 0x0FE000F0 {
  action evaluate {
    alu_out = rm * rs + ((rdhi << 32) | rdlo);
    if (cond_ok) { rdlo = alu_out & 0xFFFFFFFF; rdhi = alu_out >> 32; }
  }
}
instr SMULL : armcond, mull_ops, mull_flags match 0x00C00090 mask 0x0FE000F0 {
  action evaluate {
    alu_out = sext(rm,32) * sext(rs,32);
    if (cond_ok) { rdlo = alu_out & 0xFFFFFFFF; rdhi = (alu_out >> 32) & 0xFFFFFFFF; }
  }
}
instr SMLAL : armcond, mull_ops, mull_flags match 0x00E00090 mask 0x0FE000F0 {
  action evaluate {
    alu_out = sext(rm,32) * sext(rs,32) + ((rdhi << 32) | rdlo);
    if (cond_ok) { rdlo = alu_out & 0xFFFFFFFF; rdhi = (alu_out >> 32) & 0xFFFFFFFF; }
  }
}

// ---------------- CLZ (ARMv5) -----------------------------------------
instr CLZ : armcond match 0x016F0F10 mask 0x0FFF0FF0 {
  operand rd : GPR[bits(12,4)] read write;
  operand rm : GPR[bits(0,4)] read;
  action evaluate {
    alu_out = rm == 0 ? 32 : clz(rm) - 32;
    if (cond_ok) { rd = alu_out; }
  }
}

// ---------------- status register access ------------------------------
instr MRS : armcond match 0x010F0000 mask 0x0FFF0FFF {
  operand rd : GPR[bits(12,4)] read write;
  action evaluate {
    if (cond_ok) {
      rd = (reg.FLAGS[0] << 31) | (reg.FLAGS[1] << 30)
         | (reg.FLAGS[2] << 29) | (reg.FLAGS[3] << 28);
    }
  }
}
instr MSR_FLAGS : armcond match 0x0128F000 mask 0x0FFFFFF0 {
  operand rm : GPR[bits(0,4)] read;
  action evaluate {
    if (cond_ok) {
      reg.FLAGS[0] = (rm >> 31) & 1;
      reg.FLAGS[1] = (rm >> 30) & 1;
      reg.FLAGS[2] = (rm >> 29) & 1;
      reg.FLAGS[3] = (rm >> 28) & 1;
    }
  }
}

// ---------------- loads and stores -----------------------------------
class ldst_imm {
  operand rn : GPR[bits(16,4)] read;
  action address {
    effective_addr = (bits(23,1) ? rn + bits(0,12) : rn - bits(0,12)) & 0xFFFFFFFF;
  }
}

class ldst_reg {
  operand rn : GPR[bits(16,4)] read;
  operand rm : GPR[bits(0,4)] read;
  action address {
    effective_addr = (bits(23,1)
        ? rn + ((rm << bits(7,5)) & 0xFFFFFFFF)
        : rn - ((rm << bits(7,5)) & 0xFFFFFFFF)) & 0xFFFFFFFF;
  }
}

class ldst_half {
  operand rn : GPR[bits(16,4)] read;
  action address {
    effective_addr = (bits(23,1)
        ? rn + ((bits(8,4) << 4) | bits(0,4))
        : rn - ((bits(8,4) << 4) | bits(0,4))) & 0xFFFFFFFF;
  }
}

class ld_rt {
  operand rt : GPR[bits(12,4)] read write;
}

class st_rt {
  operand rt : GPR[bits(12,4)] read;
}

instr LDR_IMM : armcond, ldst_imm, ld_rt match 0x05100000 mask 0x0F700000 {
  action memory { if (cond_ok) { rt = load.u32(effective_addr); } }
}
instr LDRB_IMM : armcond, ldst_imm, ld_rt match 0x05500000 mask 0x0F700000 {
  action memory { if (cond_ok) { rt = load.u8(effective_addr); } }
}
instr STR_IMM : armcond, ldst_imm, st_rt match 0x05000000 mask 0x0F700000 {
  action memory { if (cond_ok) { store.u32(effective_addr, rt); } }
}
instr STRB_IMM : armcond, ldst_imm, st_rt match 0x05400000 mask 0x0F700000 {
  action memory { if (cond_ok) { store.u8(effective_addr, rt); } }
}
instr LDR_REG : armcond, ldst_reg, ld_rt match 0x07100000 mask 0x0F700070 {
  action memory { if (cond_ok) { rt = load.u32(effective_addr); } }
}
instr LDRB_REG : armcond, ldst_reg, ld_rt match 0x07500000 mask 0x0F700070 {
  action memory { if (cond_ok) { rt = load.u8(effective_addr); } }
}
instr STR_REG : armcond, ldst_reg, st_rt match 0x07000000 mask 0x0F700070 {
  action memory { if (cond_ok) { store.u32(effective_addr, rt); } }
}
instr STRB_REG : armcond, ldst_reg, st_rt match 0x07400000 mask 0x0F700070 {
  action memory { if (cond_ok) { store.u8(effective_addr, rt); } }
}
instr LDRH : armcond, ldst_half, ld_rt match 0x015000B0 mask 0x0F7000F0 {
  action memory { if (cond_ok) { rt = load.u16(effective_addr); } }
}
instr STRH : armcond, ldst_half, st_rt match 0x014000B0 mask 0x0F7000F0 {
  action memory { if (cond_ok) { store.u16(effective_addr, rt); } }
}
instr LDRSB : armcond, ldst_half, ld_rt match 0x015000D0 mask 0x0F7000F0 {
  action memory { if (cond_ok) { rt = zext(load.s8(effective_addr), 32); } }
}
instr LDRSH : armcond, ldst_half, ld_rt match 0x015000F0 mask 0x0F7000F0 {
  action memory { if (cond_ok) { rt = zext(load.s16(effective_addr), 32); } }
}

// ---------------- control flow ----------------------------------------
class armbr {
  action address { branch_target = (pc + 8 + (sbits(0,24) << 2)) & 0xFFFFFFFF; }
}

instr B : armcond, armbr match 0x0A000000 mask 0x0F000000 {
  action evaluate {
    branch_taken = cond_ok;
    if (cond_ok) { next_pc = branch_target; }
  }
}

instr BL : armcond, armbr match 0x0B000000 mask 0x0F000000 {
  action evaluate {
    branch_taken = cond_ok;
    if (cond_ok) {
      reg.GPR[14] = (pc + 4) & 0xFFFFFFFF;
      next_pc = branch_target;
    }
  }
}

instr BX : armcond match 0x012FFF10 mask 0x0FFFFFF0 {
  operand rm : GPR[bits(0,4)] read;
  action evaluate {
    branch_taken = cond_ok;
    if (cond_ok) { next_pc = rm & ~1; }
  }
}

// ---------------- software interrupt ----------------------------------
instr SWI : armcond match 0x0F000000 mask 0x0F000000 {
  action exception { if (cond_ok) { fault illegal; } }
}
|}

let os_text =
  {|
// OS emulation for ARM: syscall number in r0, arguments in r1-r3,
// result in r0 (the SWI immediate is ignored, like EABI).
abi {
  nr = GPR[0];
  arg0 = GPR[1];
  arg1 = GPR[2];
  arg2 = GPR[3];
  ret = GPR[0];
}

override SWI action exception {
  if (cond_ok) { syscall; }
}
|}

let full_isa_text = isa_text ^ "\n" ^ dp_text ^ "\n" ^ rest_text

let buildsets_text = Specsim.Detail.canonical_buildset_file ()

let sources : Lis.Ast.source list =
  [
    { src_role = Lis.Ast.Isa_description; src_name = "arm.lis"; src_text = full_isa_text };
    { src_role = Lis.Ast.Os_support; src_name = "arm_os.lis"; src_text = os_text };
    {
      src_role = Lis.Ast.Buildset_file;
      src_name = "arm_buildsets.lis";
      src_text = buildsets_text;
    };
  ]

let spec = lazy (Lis.Sema.load sources)
