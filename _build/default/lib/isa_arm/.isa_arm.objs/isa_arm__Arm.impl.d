lib/isa_arm/arm.ml: Buffer Lis List Printf Specsim String
