lib/isa_arm/arm_asm.ml: Int32 Int64 List Printf Vir
