(** Write-interception hooks for speculation support.

    When a buildset enables speculation, the synthesizer compiles actions
    with hooks that record the old value of every architectural write
    before it happens; the rollback journal ({!Specsim.Specul}) implements
    them. Hooks are compiled in — a non-speculative buildset pays nothing. *)

type t = {
  on_reg_write : Machine.State.t -> int -> unit;
      (** called with the flat register index about to be overwritten *)
  on_store : Machine.State.t -> int64 -> int -> unit;
      (** called with the address and width (bytes) about to be stored *)
}
