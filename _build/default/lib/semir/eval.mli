(** Reference AST interpreter for {!Ir} — the unspecialized baseline of the
    paper's footnote 5 and the oracle against which {!Compile} is
    property-tested. *)

(** [expr loc st fr e] evaluates [e] against frame [fr]; cell ids resolve
    through the location map [loc]. *)
val expr :
  Frame.location array -> Machine.State.t -> Frame.t -> Ir.expr -> int64

(** [exec ?hooks ~loc st fr p] interprets program [p] against frame [fr].
    [hooks] intercept architectural writes (speculation journaling). *)
val exec :
  ?hooks:Hooks.t ->
  loc:Frame.location array ->
  Machine.State.t ->
  Frame.t ->
  Ir.program ->
  unit
