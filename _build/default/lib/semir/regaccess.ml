(** Dynamic-index register access shared by {!Eval} and {!Compile}.

    Register indices normally come from encoding bitfields and are in range
    by construction; classes whose size is a power of two are accessed with
    a mask, others with a bounds check, so a malformed description can
    never corrupt adjacent register classes. *)

let is_power_of_two n = n > 0 && n land (n - 1) = 0

(** [clamp ~count idx] maps an arbitrary 64-bit index expression value into
    [0, count): masked for power-of-two classes, bounds-checked otherwise. *)
let clamp ~count idx =
  let i = Int64.to_int idx in
  if is_power_of_two count then i land (count - 1)
  else if i >= 0 && i < count then i
  else invalid_arg (Printf.sprintf "register index %d out of range (%d)" i count)

(** [flat regs ~cls idx] resolves a dynamic index to a flat register index. *)
let flat (regs : Machine.Regfile.t) ~cls idx =
  let count = (Machine.Regfile.class_def regs cls).count in
  Machine.Regfile.base regs cls + clamp ~count idx

let read (regs : Machine.Regfile.t) ~cls idx =
  let count = (Machine.Regfile.class_def regs cls).count in
  let base = Machine.Regfile.base regs cls in
  Machine.Regfile.read_flat regs (base + clamp ~count idx)

let write (regs : Machine.Regfile.t) ~cls idx v =
  let count = (Machine.Regfile.class_def regs cls).count in
  let base = Machine.Regfile.base regs cls in
  Machine.Regfile.write_flat regs (base + clamp ~count idx) v
