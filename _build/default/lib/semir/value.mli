(** Scalar operation semantics shared by the reference interpreter
    ({!Eval}) and the closure compiler ({!Compile}), so the two backends
    agree by construction. All values are 64-bit; narrower behaviour is
    expressed by explicit extension/masking. *)

(** [bool_ b] is [1L] for [true], [0L] for [false]. *)
val bool_ : bool -> int64

(** Shift amounts are taken modulo 64, like most 64-bit ISAs. *)
val shift_amount : int64 -> int

(** [sext v n] sign-extends [v] from its low [n] bits (1..64). *)
val sext : int64 -> int -> int64

(** [zext v n] keeps only the low [n] bits of [v]. *)
val zext : int64 -> int -> int64

(** [ror v n] rotates the 64-bit value right by [n] (mod 64). *)
val ror : int64 -> int -> int64

(** High 64 bits of the unsigned / signed 128-bit product. *)
val mulhu : int64 -> int64 -> int64

val mulhs : int64 -> int64 -> int64

(** Division and remainder define the division-by-zero result as [0L] and
    [min_int / -1] as [min_int] (no trap) — ISA descriptions that trap
    express the check explicitly. *)
val divs : int64 -> int64 -> int64

val divu : int64 -> int64 -> int64
val rems : int64 -> int64 -> int64
val remu : int64 -> int64 -> int64
val popcount : int64 -> int64

(** [clz 0L] and [ctz 0L] are [64L]. *)
val clz : int64 -> int64

val ctz : int64 -> int64

(** [binop op] is the total function implementing the binary operator. *)
val binop : Ir.binop -> int64 -> int64 -> int64

val unop : Ir.unop -> int64 -> int64

(** [enc_bits enc ~lo ~len ~signed] extracts encoding bits
    [lo .. lo+len-1], optionally sign-extended from [len] bits. *)
val enc_bits : int64 -> lo:int -> len:int -> signed:bool -> int64
