(** Reference AST interpreter for {!Ir}.

    This is the unspecialized baseline of the paper's footnote 5 (the
    "interpreted rather than binary-translated style of execution"). It is
    also the oracle against which {!Compile} is property-tested. *)

open Machine

let mem_width (w : Ir.width) = Ir.bytes_of_width w

let rec expr (loc : Frame.location array) (st : State.t) (fr : Frame.t)
    (e : Ir.expr) : int64 =
  match e with
  | Const v -> v
  | Cell c -> Frame.read fr loc.(c)
  | Enc { lo; len; signed } -> Value.enc_bits fr.enc ~lo ~len ~signed
  | Pc -> fr.pc
  | Next_pc -> fr.next_pc
  | Bin (op, a, b) ->
    (Value.binop op) (expr loc st fr a) (expr loc st fr b)
  | Un (op, a) -> (Value.unop op) (expr loc st fr a)
  | Ite (c, a, b) ->
    if Int64.equal (expr loc st fr c) 0L then expr loc st fr b
    else expr loc st fr a
  | Load { width; signed; addr } ->
    let a = expr loc st fr addr in
    if signed then Memory.read_signed st.mem ~addr:a ~width:(mem_width width)
    else Memory.read st.mem ~addr:a ~width:(mem_width width)
  | Reg_read { cls; index } ->
    Regaccess.read st.regs ~cls (expr loc st fr index)

let rec stmt (hooks : Hooks.t option) (loc : Frame.location array)
    (st : State.t) (fr : Frame.t) (s : Ir.stmt) : unit =
  match s with
  | Set_cell (c, e) -> Frame.write fr loc.(c) (expr loc st fr e)
  | Store { width; addr; value } ->
    let a = expr loc st fr addr in
    let v = expr loc st fr value in
    let w = mem_width width in
    (match hooks with Some h -> h.on_store st a w | None -> ());
    Memory.write st.mem ~addr:a ~width:w v
  | Set_next_pc e -> fr.next_pc <- expr loc st fr e
  | Reg_write { cls; index; value } -> (
    let i = expr loc st fr index in
    let v = expr loc st fr value in
    match hooks with
    | None -> Regaccess.write st.regs ~cls i v
    | Some h ->
      let flat = Regaccess.flat st.regs ~cls i in
      h.on_reg_write st flat;
      Regfile.write_flat st.regs flat v)
  | If (c, t, f) ->
    if Int64.equal (expr loc st fr c) 0L then block hooks loc st fr f
    else block hooks loc st fr t
  | Fault_illegal -> State.raise_fault st (Fault.Illegal_instruction fr.enc)
  | Fault_unaligned e ->
    State.raise_fault st (Fault.Unaligned_access (expr loc st fr e))
  | Fault_arith msg -> State.raise_fault st (Fault.Arith msg)
  | Syscall -> st.syscall_handler st
  | Halt -> st.halted <- true

and block hooks loc st fr stmts = List.iter (stmt hooks loc st fr) stmts

(** [exec ~loc st fr p] interprets program [p] against frame [fr]. *)
let exec ?hooks ~loc st fr (p : Ir.program) = block hooks loc st fr p
