(** Dynamic-index register access shared by {!Eval} and {!Compile}.
    Power-of-two register classes are accessed with a mask, others with a
    bounds check, so a malformed description can never corrupt adjacent
    register classes. *)

val is_power_of_two : int -> bool

(** [clamp ~count idx] maps a 64-bit index value into [0, count).
    @raise Invalid_argument for out-of-range indices of non-power-of-two
    classes. *)
val clamp : count:int -> int64 -> int

(** [flat regs ~cls idx] resolves a dynamic index to a flat register index. *)
val flat : Machine.Regfile.t -> cls:int -> int64 -> int

val read : Machine.Regfile.t -> cls:int -> int64 -> int64
val write : Machine.Regfile.t -> cls:int -> int64 -> int64 -> unit
