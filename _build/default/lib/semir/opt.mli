(** IR-level optimizations used by the synthesizer.

    - {!specialize_enc}: folds encoding bitfields against a concrete
      instruction encoding (the heart of the block-level specialization);
    - {!fold} / {!const_prop}: algebraic folding and forward constant
      propagation through cells, so decoded register numbers become static
      indices;
    - {!dce}: backward dead-code elimination — assignments to cells that
      are neither interface-visible nor read later are removed (the
      paper's "computation of information which is not actually needed
      semantically ... becomes dead code"). *)

val fold_expr : Ir.expr -> Ir.expr

(** [fold p] performs constant folding and branch pruning. *)
val fold : Ir.program -> Ir.program

(** [specialize_enc ~enc p] replaces every encoding bitfield with its value
    under the concrete encoding [enc], then folds. *)
val specialize_enc : enc:int64 -> Ir.program -> Ir.program

(** [const_prop p] propagates constants through straight-line cell
    assignments (writes under conditionals conservatively invalidate). *)
val const_prop : Ir.program -> Ir.program

(** [dce ~keep p] removes assignments to cells for which [keep] is false
    and that are not read later in [p]. Sound for loop-free action code. *)
val dce : keep:(Ir.cell -> bool) -> Ir.program -> Ir.program

(** [optimize ?enc ~keep p] is the synthesizer's standard pipeline:
    optional encoding specialization, folding, constant propagation, DCE. *)
val optimize : ?enc:int64 -> keep:(Ir.cell -> bool) -> Ir.program -> Ir.program
