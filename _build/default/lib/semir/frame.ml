(** Per-instruction execution frame.

    The frame is the runtime view of one dynamic instruction while its
    actions run: its pc, its encoding, its computed next pc, and the two
    cell stores — [di], the interface-visible information array retained in
    the dynamic-instruction record handed to the timing simulator, and
    [scratch], the hidden store that is reused from instruction to
    instruction and never escapes the functional simulator. Which cell
    lives where is the buildset's informational-detail decision. *)

(** Storage assignment for one cell, fixed at synthesis time. *)
type location =
  | In_di of int  (** visible: slot in the retained DI information array *)
  | In_scratch of int  (** hidden: slot in the reused scratch array *)

type t = {
  mutable pc : int64;
  mutable enc : int64;
  mutable next_pc : int64;
  mutable di : int64 array;
  scratch : int64 array;
}

let create ~di_slots ~scratch_slots =
  {
    pc = 0L;
    enc = 0L;
    next_pc = 0L;
    di = Array.make (max di_slots 1) 0L;
    scratch = Array.make (max scratch_slots 1) 0L;
  }

(** [read fr loc] and [write fr loc v] are the slow-path accessors used by
    the reference interpreter; compiled code resolves locations statically. *)
let read fr = function
  | In_di i -> fr.di.(i)
  | In_scratch i -> fr.scratch.(i)

let write fr loc v =
  match loc with
  | In_di i -> fr.di.(i) <- v
  | In_scratch i -> fr.scratch.(i) <- v
