(** Scalar operation semantics shared by the reference interpreter and the
    closure compiler, so the two backends agree by construction. *)

let bool_ b = if b then 1L else 0L

let shift_amount v = Int64.to_int v land 63

let sext v n =
  if n >= 64 then v
  else
    let s = 64 - n in
    Int64.shift_right (Int64.shift_left v s) s

let zext v n =
  if n >= 64 then v
  else Int64.logand v (Int64.sub (Int64.shift_left 1L n) 1L)

let ror v amount =
  let a = amount land 63 in
  if a = 0 then v
  else
    Int64.logor (Int64.shift_right_logical v a) (Int64.shift_left v (64 - a))

(* High half of the 128-bit product, via 32-bit limbs. *)
let mulhu a b =
  let lo32 x = Int64.logand x 0xFFFFFFFFL in
  let hi32 x = Int64.shift_right_logical x 32 in
  let a0 = lo32 a and a1 = hi32 a and b0 = lo32 b and b1 = hi32 b in
  let ll = Int64.mul a0 b0 in
  let lh = Int64.mul a0 b1 in
  let hl = Int64.mul a1 b0 in
  let hh = Int64.mul a1 b1 in
  let mid = Int64.add (Int64.add (hi32 ll) (lo32 lh)) (lo32 hl) in
  Int64.add (Int64.add hh (hi32 mid)) (Int64.add (hi32 lh) (hi32 hl))

let mulhs a b =
  (* mulhs = mulhu adjusted for the signs of the operands *)
  let h = mulhu a b in
  let h = if Int64.compare a 0L < 0 then Int64.sub h b else h in
  if Int64.compare b 0L < 0 then Int64.sub h a else h

let divs a b =
  if Int64.equal b 0L then 0L
  else if Int64.equal a Int64.min_int && Int64.equal b (-1L) then Int64.min_int
  else Int64.div a b

let divu a b = if Int64.equal b 0L then 0L else Int64.unsigned_div a b

let rems a b =
  if Int64.equal b 0L then 0L
  else if Int64.equal a Int64.min_int && Int64.equal b (-1L) then 0L
  else Int64.rem a b

let remu a b = if Int64.equal b 0L then 0L else Int64.unsigned_rem a b

let popcount v =
  let rec go acc v =
    if Int64.equal v 0L then acc
    else go (acc + 1) (Int64.logand v (Int64.sub v 1L))
  in
  Int64.of_int (go 0 v)

let clz v =
  if Int64.equal v 0L then 64L
  else
    let rec go n v =
      if Int64.compare (Int64.logand v 0x8000000000000000L) 0L <> 0 then n
      else go (Int64.add n 1L) (Int64.shift_left v 1)
    in
    go 0L v

let ctz v =
  if Int64.equal v 0L then 64L
  else
    let rec go n v =
      if Int64.equal (Int64.logand v 1L) 1L then n
      else go (Int64.add n 1L) (Int64.shift_right_logical v 1)
    in
    go 0L v

let binop (op : Ir.binop) : int64 -> int64 -> int64 =
  match op with
  | Add -> Int64.add
  | Sub -> Int64.sub
  | Mul -> Int64.mul
  | Mulhs -> mulhs
  | Mulhu -> mulhu
  | Divs -> divs
  | Divu -> divu
  | Rems -> rems
  | Remu -> remu
  | And -> Int64.logand
  | Or -> Int64.logor
  | Xor -> Int64.logxor
  | Shl -> fun a b -> Int64.shift_left a (shift_amount b)
  | Lshr -> fun a b -> Int64.shift_right_logical a (shift_amount b)
  | Ashr -> fun a b -> Int64.shift_right a (shift_amount b)
  | Ror -> fun a b -> ror a (Int64.to_int b)
  | Eq -> fun a b -> bool_ (Int64.equal a b)
  | Ne -> fun a b -> bool_ (not (Int64.equal a b))
  | Lts -> fun a b -> bool_ (Int64.compare a b < 0)
  | Ltu -> fun a b -> bool_ (Int64.unsigned_compare a b < 0)
  | Les -> fun a b -> bool_ (Int64.compare a b <= 0)
  | Leu -> fun a b -> bool_ (Int64.unsigned_compare a b <= 0)

let unop (op : Ir.unop) : int64 -> int64 =
  match op with
  | Neg -> Int64.neg
  | Not -> Int64.lognot
  | Bool_not -> fun v -> bool_ (Int64.equal v 0L)
  | Sext n -> fun v -> sext v n
  | Zext n -> fun v -> zext v n
  | Popcount -> popcount
  | Clz -> clz
  | Ctz -> ctz

(** Extract encoding bits [lo, lo+len-1], optionally sign-extended. *)
let enc_bits enc ~lo ~len ~signed =
  let v = zext (Int64.shift_right_logical enc lo) len in
  if signed then sext v len else v
