(** Typed intermediate representation for instruction semantics.

    LIS action bodies are parsed into this IR; the synthesizer then either
    interprets it ({!Eval}) or compiles it to OCaml closures ({!Compile})
    with a per-buildset storage mapping for cells.

    All values are 64-bit; narrower ISA types are expressed with explicit
    masking and sign/zero extension, exactly as a C implementation of a
    functional simulator would do with [uint64_t] plus casts. *)

(** Access width in bytes for memory operations. *)
type width = W1 | W2 | W4 | W8

let bytes_of_width = function W1 -> 1 | W2 -> 2 | W4 -> 4 | W8 -> 8

type binop =
  | Add
  | Sub
  | Mul
  | Mulhs  (** high 64 bits of the signed 128-bit product *)
  | Mulhu
  | Divs  (** signed division; division by zero yields 0 *)
  | Divu
  | Rems
  | Remu
  | And
  | Or
  | Xor
  | Shl  (** shift amount taken modulo 64 *)
  | Lshr
  | Ashr
  | Ror  (** rotate right (64-bit); ISA-width rotates are built from this *)
  | Eq  (** comparisons produce 1 or 0 *)
  | Ne
  | Lts
  | Ltu
  | Les
  | Leu

type unop =
  | Neg
  | Not  (** bitwise complement *)
  | Bool_not  (** 0 -> 1, non-zero -> 0 *)
  | Sext of int  (** sign-extend from the low [n] bits, 1 <= n <= 64 *)
  | Zext of int  (** keep only the low [n] bits *)
  | Popcount
  | Clz  (** count leading zeros over 64 bits *)
  | Ctz

(** A cell is a named storage location of the dynamic-instruction frame:
    a LIS [field] (intermediate value) or an operand value / register id.
    Cells are identified by dense integer ids assigned by the front end;
    their storage (interface-visible slot vs. hidden scratch) is chosen
    per buildset by the synthesizer. *)
type cell = int

type expr =
  | Const of int64
  | Cell of cell
  | Enc of { lo : int; len : int; signed : bool }
      (** bitfield [lo, lo+len-1] of the instruction encoding *)
  | Pc  (** the instruction's own pc (not the machine fetch pc) *)
  | Next_pc
  | Bin of binop * expr * expr
  | Un of unop * expr
  | Ite of expr * expr * expr
  | Load of { width : width; signed : bool; addr : expr }
  | Reg_read of { cls : int; index : expr }
      (** raw architectural register read, for state not modelled as a
          declared operand (rare; prefer operands) *)

type stmt =
  | Set_cell of cell * expr
  | Store of { width : width; addr : expr; value : expr }
  | Set_next_pc of expr
  | Reg_write of { cls : int; index : expr; value : expr }
  | If of expr * stmt list * stmt list
  | Fault_illegal
  | Fault_unaligned of expr
  | Fault_arith of string
  | Syscall
  | Halt  (** stop simulation without a fault (used by tests) *)

type program = stmt list

(* ------------------------------------------------------------------ *)
(* Well-formedness                                                     *)
(* ------------------------------------------------------------------ *)

exception Invalid of string

let invalid fmt = Format.kasprintf (fun s -> raise (Invalid s)) fmt

let rec validate_expr ~n_cells ~n_classes = function
  | Const _ | Pc | Next_pc -> ()
  | Cell c ->
    if c < 0 || c >= n_cells then invalid "cell id %d out of range" c
  | Enc { lo; len; _ } ->
    if lo < 0 || len <= 0 || lo + len > 64 then
      invalid "encoding bitfield [%d,+%d] out of range" lo len
  | Bin (_, a, b) ->
    validate_expr ~n_cells ~n_classes a;
    validate_expr ~n_cells ~n_classes b
  | Un (op, a) ->
    (match op with
    | Sext n | Zext n ->
      if n < 1 || n > 64 then invalid "extension width %d out of range" n
    | Neg | Not | Bool_not | Popcount | Clz | Ctz -> ());
    validate_expr ~n_cells ~n_classes a
  | Ite (c, a, b) ->
    validate_expr ~n_cells ~n_classes c;
    validate_expr ~n_cells ~n_classes a;
    validate_expr ~n_cells ~n_classes b
  | Load { addr; _ } -> validate_expr ~n_cells ~n_classes addr
  | Reg_read { cls; index } ->
    if cls < 0 || cls >= n_classes then invalid "register class %d out of range" cls;
    validate_expr ~n_cells ~n_classes index

let rec validate_stmt ~n_cells ~n_classes = function
  | Set_cell (c, e) ->
    if c < 0 || c >= n_cells then invalid "cell id %d out of range" c;
    validate_expr ~n_cells ~n_classes e
  | Store { addr; value; _ } ->
    validate_expr ~n_cells ~n_classes addr;
    validate_expr ~n_cells ~n_classes value
  | Set_next_pc e -> validate_expr ~n_cells ~n_classes e
  | Reg_write { cls; index; value } ->
    if cls < 0 || cls >= n_classes then invalid "register class %d out of range" cls;
    validate_expr ~n_cells ~n_classes index;
    validate_expr ~n_cells ~n_classes value
  | If (c, t, f) ->
    validate_expr ~n_cells ~n_classes c;
    List.iter (validate_stmt ~n_cells ~n_classes) t;
    List.iter (validate_stmt ~n_cells ~n_classes) f
  | Fault_unaligned e -> validate_expr ~n_cells ~n_classes e
  | Fault_illegal | Fault_arith _ | Syscall | Halt -> ()

(** [validate ~n_cells ~n_classes p] checks all cell ids and register
    classes are in range. @raise Invalid otherwise. *)
let validate ~n_cells ~n_classes p =
  List.iter (validate_stmt ~n_cells ~n_classes) p

(* ------------------------------------------------------------------ *)
(* Def/use analysis (drives the synthesizer's liveness check and DCE)  *)
(* ------------------------------------------------------------------ *)

let rec expr_cells acc = function
  | Const _ | Pc | Next_pc | Enc _ -> acc
  | Cell c -> c :: acc
  | Bin (_, a, b) -> expr_cells (expr_cells acc a) b
  | Un (_, a) -> expr_cells acc a
  | Ite (c, a, b) -> expr_cells (expr_cells (expr_cells acc c) a) b
  | Load { addr; _ } -> expr_cells acc addr
  | Reg_read { index; _ } -> expr_cells acc index

(** Cells read anywhere in a statement (including both branches of [If]). *)
let rec stmt_reads acc = function
  | Set_cell (_, e) | Set_next_pc e | Fault_unaligned e -> expr_cells acc e
  | Store { addr; value; _ } -> expr_cells (expr_cells acc addr) value
  | Reg_write { index; value; _ } -> expr_cells (expr_cells acc index) value
  | If (c, t, f) ->
    let acc = expr_cells acc c in
    let acc = List.fold_left stmt_reads acc t in
    List.fold_left stmt_reads acc f
  | Fault_illegal | Fault_arith _ | Syscall | Halt -> acc

(** Cells possibly written by a statement. *)
let rec stmt_writes acc = function
  | Set_cell (c, _) -> c :: acc
  | If (_, t, f) ->
    let acc = List.fold_left stmt_writes acc t in
    List.fold_left stmt_writes acc f
  | Store _ | Set_next_pc _ | Reg_write _ | Fault_illegal | Fault_unaligned _
  | Fault_arith _ | Syscall | Halt ->
    acc

let program_reads p = List.fold_left stmt_reads [] p
let program_writes p = List.fold_left stmt_writes [] p

(** A statement has an effect beyond writing cells (memory, registers,
    control flow, faults): such statements are never dead. *)
let rec stmt_has_side_effect = function
  | Set_cell _ -> false
  | Store _ | Set_next_pc _ | Reg_write _ | Fault_illegal | Fault_unaligned _
  | Fault_arith _ | Syscall | Halt ->
    true
  | If (_, t, f) ->
    List.exists stmt_has_side_effect t || List.exists stmt_has_side_effect f

(* ------------------------------------------------------------------ *)
(* Pretty-printing                                                     *)
(* ------------------------------------------------------------------ *)

let string_of_binop = function
  | Add -> "+"
  | Sub -> "-"
  | Mul -> "*"
  | Mulhs -> "*hs"
  | Mulhu -> "*hu"
  | Divs -> "/s"
  | Divu -> "/u"
  | Rems -> "%s"
  | Remu -> "%u"
  | And -> "&"
  | Or -> "|"
  | Xor -> "^"
  | Shl -> "<<"
  | Lshr -> ">>u"
  | Ashr -> ">>s"
  | Ror -> "ror"
  | Eq -> "=="
  | Ne -> "!="
  | Lts -> "<s"
  | Ltu -> "<u"
  | Les -> "<=s"
  | Leu -> "<=u"

let rec pp_expr ?cell_name ppf e =
  let pp = pp_expr ?cell_name in
  let cell c =
    match cell_name with Some f -> f c | None -> Printf.sprintf "c%d" c
  in
  match e with
  | Const v -> Format.fprintf ppf "%Ld" v
  | Cell c -> Format.pp_print_string ppf (cell c)
  | Enc { lo; len; signed } ->
    Format.fprintf ppf "enc%s[%d:%d]" (if signed then "s" else "") (lo + len - 1) lo
  | Pc -> Format.pp_print_string ppf "pc"
  | Next_pc -> Format.pp_print_string ppf "next_pc"
  | Bin (op, a, b) ->
    Format.fprintf ppf "(%a %s %a)" pp a (string_of_binop op) pp b
  | Un (Neg, a) -> Format.fprintf ppf "(- %a)" pp a
  | Un (Not, a) -> Format.fprintf ppf "(~ %a)" pp a
  | Un (Bool_not, a) -> Format.fprintf ppf "(! %a)" pp a
  | Un (Sext n, a) -> Format.fprintf ppf "sext(%a, %d)" pp a n
  | Un (Zext n, a) -> Format.fprintf ppf "zext(%a, %d)" pp a n
  | Un (Popcount, a) -> Format.fprintf ppf "popcount(%a)" pp a
  | Un (Clz, a) -> Format.fprintf ppf "clz(%a)" pp a
  | Un (Ctz, a) -> Format.fprintf ppf "ctz(%a)" pp a
  | Ite (c, a, b) -> Format.fprintf ppf "(%a ? %a : %a)" pp c pp a pp b
  | Load { width; signed; addr } ->
    Format.fprintf ppf "load.%s%d(%a)"
      (if signed then "s" else "u")
      (8 * bytes_of_width width)
      pp addr
  | Reg_read { cls; index } -> Format.fprintf ppf "reg%d[%a]" cls pp index

let rec pp_stmt ?cell_name ppf s =
  let ppe = pp_expr ?cell_name in
  let cell c =
    match cell_name with Some f -> f c | None -> Printf.sprintf "c%d" c
  in
  match s with
  | Set_cell (c, e) -> Format.fprintf ppf "%s = %a;" (cell c) ppe e
  | Store { width; addr; value } ->
    Format.fprintf ppf "store.%d(%a, %a);" (8 * bytes_of_width width) ppe addr
      ppe value
  | Set_next_pc e -> Format.fprintf ppf "next_pc = %a;" ppe e
  | Reg_write { cls; index; value } ->
    Format.fprintf ppf "reg%d[%a] = %a;" cls ppe index ppe value
  | If (c, t, []) ->
    Format.fprintf ppf "@[<v 2>if (%a) {@,%a@]@,}" ppe c (pp_block ?cell_name) t
  | If (c, t, f) ->
    Format.fprintf ppf "@[<v 2>if (%a) {@,%a@]@,@[<v 2>} else {@,%a@]@,}" ppe c
      (pp_block ?cell_name) t (pp_block ?cell_name) f
  | Fault_illegal -> Format.pp_print_string ppf "fault illegal;"
  | Fault_unaligned e -> Format.fprintf ppf "fault unaligned(%a);" ppe e
  | Fault_arith s -> Format.fprintf ppf "fault arith(%S);" s
  | Syscall -> Format.pp_print_string ppf "syscall;"
  | Halt -> Format.pp_print_string ppf "halt;"

and pp_block ?cell_name ppf stmts =
  Format.pp_print_list (pp_stmt ?cell_name) ppf stmts
    ~pp_sep:Format.pp_print_cut

let pp_program ?cell_name ppf p =
  Format.fprintf ppf "@[<v>%a@]" (pp_block ?cell_name) p
