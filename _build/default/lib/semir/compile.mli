(** Closure compiler for {!Ir} — the execution substrate of synthesized
    simulators (the analog of the paper's LLVM-based binary translation).
    Compilation happens once, at synthesis time; execution runs no IR
    dispatch at all. *)

(** A compiled expression: evaluates against the machine and the frame. *)
type ecode = Machine.State.t -> Frame.t -> int64

(** A compiled statement sequence. *)
type code = Machine.State.t -> Frame.t -> unit

val nop : code

(** [expr loc e] compiles one expression under the cell-location map. *)
val expr : Frame.location array -> Ir.expr -> ecode

(** [program ?hooks ?layout ~loc p] compiles a whole action body.
    [hooks] intercept architectural writes for speculation journaling;
    [layout], when given, lets static register numbers compile to single
    array accesses (it must match the register file of every machine the
    code will run against). *)
val program :
  ?hooks:Hooks.t ->
  ?layout:Machine.Regfile.t ->
  loc:Frame.location array ->
  Ir.program ->
  code

(** [sequence codes] fuses already-compiled codes into one (used when
    fusing actions into an entrypoint or instructions into a block). *)
val sequence : code list -> code
