(** IR-level optimizations used by the synthesizer.

    Three passes matter for the paper's results:

    - {!specialize_enc}: once an instruction is decoded, its encoding is a
      known constant; bitfield extractions fold away. This is the heart of
      the block-level "binary translation" win.
    - {!const_prop} + {!fold}: forward constant propagation through cells
      and algebraic folding, so register numbers become static indices.
    - {!dce}: backward dead-code elimination. A [Set_cell] whose target is
      hidden by the buildset and never read downstream is removed — the
      paper's "computation of information which is not actually needed
      semantically ... becomes dead code which can be optimized away". *)

(* ------------------------------------------------------------------ *)
(* Constant folding                                                    *)
(* ------------------------------------------------------------------ *)

let rec fold_expr (e : Ir.expr) : Ir.expr =
  match e with
  | Const _ | Cell _ | Enc _ | Pc | Next_pc -> e
  | Bin (op, a, b) -> (
    let a = fold_expr a and b = fold_expr b in
    match (a, b) with
    | Const x, Const y -> Const ((Value.binop op) x y)
    | Const 0L, _ when op = Add -> b
    | _, Const 0L when op = Add || op = Sub || op = Or || op = Xor -> a
    | _, Const 0L when op = Shl || op = Lshr || op = Ashr -> a
    | _, Const 0L when op = And || op = Mul -> Const 0L
    | Const 0L, _ when op = And || op = Mul -> Const 0L
    | _, Const 1L when op = Mul -> a
    | Const 1L, _ when op = Mul -> b
    | _ -> Bin (op, a, b))
  | Un (op, a) -> (
    let a = fold_expr a in
    match a with
    | Const x -> Const ((Value.unop op) x)
    | _ -> Un (op, a))
  | Ite (c, a, b) -> (
    let c = fold_expr c and a = fold_expr a and b = fold_expr b in
    match c with
    | Const 0L -> b
    | Const _ -> a
    | _ -> Ite (c, a, b))
  | Load l -> Load { l with addr = fold_expr l.addr }
  | Reg_read r -> Reg_read { r with index = fold_expr r.index }

let rec fold_stmt (s : Ir.stmt) : Ir.stmt list =
  match s with
  | Set_cell (c, e) -> [ Set_cell (c, fold_expr e) ]
  | Store { width; addr; value } ->
    [ Store { width; addr = fold_expr addr; value = fold_expr value } ]
  | Set_next_pc e -> [ Set_next_pc (fold_expr e) ]
  | Reg_write { cls; index; value } ->
    [ Reg_write { cls; index = fold_expr index; value = fold_expr value } ]
  | If (c, t, f) -> (
    let c = fold_expr c in
    let t = fold_block t and f = fold_block f in
    match (c, t, f) with
    | Const 0L, _, f -> f
    | Const _, t, _ -> t
    | _, [], [] -> []
    | _ -> [ If (c, t, f) ])
  | Fault_unaligned e -> [ Fault_unaligned (fold_expr e) ]
  | Fault_illegal | Fault_arith _ | Syscall | Halt -> [ s ]

and fold_block stmts = List.concat_map fold_stmt stmts

let fold (p : Ir.program) : Ir.program = fold_block p

(* ------------------------------------------------------------------ *)
(* Encoding specialization                                             *)
(* ------------------------------------------------------------------ *)

let rec subst_enc enc (e : Ir.expr) : Ir.expr =
  match e with
  | Enc { lo; len; signed } -> Const (Value.enc_bits enc ~lo ~len ~signed)
  | Const _ | Cell _ | Pc | Next_pc -> e
  | Bin (op, a, b) -> Bin (op, subst_enc enc a, subst_enc enc b)
  | Un (op, a) -> Un (op, subst_enc enc a)
  | Ite (c, a, b) -> Ite (subst_enc enc c, subst_enc enc a, subst_enc enc b)
  | Load l -> Load { l with addr = subst_enc enc l.addr }
  | Reg_read r -> Reg_read { r with index = subst_enc enc r.index }

let rec subst_enc_stmt enc (s : Ir.stmt) : Ir.stmt =
  match s with
  | Set_cell (c, e) -> Set_cell (c, subst_enc enc e)
  | Store { width; addr; value } ->
    Store { width; addr = subst_enc enc addr; value = subst_enc enc value }
  | Set_next_pc e -> Set_next_pc (subst_enc enc e)
  | Reg_write { cls; index; value } ->
    Reg_write { cls; index = subst_enc enc index; value = subst_enc enc value }
  | If (c, t, f) ->
    If
      ( subst_enc enc c,
        List.map (subst_enc_stmt enc) t,
        List.map (subst_enc_stmt enc) f )
  | Fault_unaligned e -> Fault_unaligned (subst_enc enc e)
  | Fault_illegal | Fault_arith _ | Syscall | Halt -> s

(** [specialize_enc ~enc p] replaces every encoding bitfield with its value
    under the concrete encoding [enc], then folds. *)
let specialize_enc ~enc (p : Ir.program) : Ir.program =
  fold (List.map (subst_enc_stmt enc) p)

(* ------------------------------------------------------------------ *)
(* Forward constant propagation through cells                          *)
(* ------------------------------------------------------------------ *)

module Imap = Map.Make (Int)

let rec prop_expr env (e : Ir.expr) : Ir.expr =
  match e with
  | Cell c -> (
    match Imap.find_opt c env with Some v -> Const v | None -> e)
  | Const _ | Enc _ | Pc | Next_pc -> e
  | Bin (op, a, b) -> Bin (op, prop_expr env a, prop_expr env b)
  | Un (op, a) -> Un (op, prop_expr env a)
  | Ite (c, a, b) -> Ite (prop_expr env c, prop_expr env a, prop_expr env b)
  | Load l -> Load { l with addr = prop_expr env l.addr }
  | Reg_read r -> Reg_read { r with index = prop_expr env r.index }

(* Straight-line propagation only: any write under an [If] invalidates the
   cell, which keeps the pass trivially sound. *)
let rec prop_block env (stmts : Ir.stmt list) : Ir.stmt list * int64 Imap.t =
  match stmts with
  | [] -> ([], env)
  | s :: rest ->
    let s, env =
      match s with
      | Ir.Set_cell (c, e) -> (
        let e = fold_expr (prop_expr env e) in
        match e with
        | Const v -> (Ir.Set_cell (c, e), Imap.add c v env)
        | _ -> (Ir.Set_cell (c, e), Imap.remove c env))
      | Store { width; addr; value } ->
        ( Store
            {
              width;
              addr = fold_expr (prop_expr env addr);
              value = fold_expr (prop_expr env value);
            },
          env )
      | Set_next_pc e -> (Set_next_pc (fold_expr (prop_expr env e)), env)
      | Reg_write { cls; index; value } ->
        ( Reg_write
            {
              cls;
              index = fold_expr (prop_expr env index);
              value = fold_expr (prop_expr env value);
            },
          env )
      | If (c, t, f) ->
        let c = fold_expr (prop_expr env c) in
        (* Branches are propagated with the incoming environment; cells
           written in either branch are invalidated afterwards. *)
        let t, _ = prop_block env t in
        let f, _ = prop_block env f in
        let written = Ir.program_writes (t @ f) in
        let env = List.fold_left (fun m c -> Imap.remove c m) env written in
        (If (c, t, f), env)
      | Fault_unaligned e -> (Fault_unaligned (fold_expr (prop_expr env e)), env)
      | Fault_illegal | Fault_arith _ | Syscall | Halt -> (s, env)
    in
    let rest, env = prop_block env rest in
    (s :: rest, env)

let const_prop (p : Ir.program) : Ir.program = fst (prop_block Imap.empty p)

(* ------------------------------------------------------------------ *)
(* Dead-code elimination                                               *)
(* ------------------------------------------------------------------ *)

module Iset = Set.Make (Int)

(* Backward pass. [live] is the set of cells whose current value may still
   be read later. [keep c] marks cells that must survive regardless (they
   are visible in the interface). *)
let rec dce_block ~keep (live : Iset.t) (stmts : Ir.stmt list) :
    Ir.stmt list * Iset.t =
  match stmts with
  | [] -> ([], live)
  | s :: rest -> (
    let rest, live = dce_block ~keep live rest in
    match s with
    | Ir.Set_cell (c, e) ->
      if keep c || Iset.mem c live then
        let live = Iset.remove c live in
        let live =
          List.fold_left (fun s c -> Iset.add c s) live (Ir.expr_cells [] e)
        in
        (Ir.Set_cell (c, e) :: rest, live)
      else (rest, live)
    | If (c, t, f) -> (
      let t, live_t = dce_block ~keep live t in
      let f, live_f = dce_block ~keep live f in
      let live = Iset.union live_t live_f in
      let live =
        List.fold_left (fun s c -> Iset.add c s) live (Ir.expr_cells [] c)
      in
      match (t, f) with
      | [], [] -> (rest, live)
      | _ -> (If (c, t, f) :: rest, live))
    | _ ->
      let live =
        List.fold_left (fun s c -> Iset.add c s) live (Ir.stmt_reads [] s)
      in
      (s :: rest, live))

(** [dce ~keep p] removes assignments to cells that are neither kept (the
    buildset makes them visible) nor read later in [p]. *)
let dce ~keep (p : Ir.program) : Ir.program =
  fst (dce_block ~keep Iset.empty p)

(** The synthesizer's standard pipeline for a fused action sequence. *)
let optimize ?enc ~keep (p : Ir.program) : Ir.program =
  let p = match enc with Some e -> List.map (subst_enc_stmt e) p | None -> p in
  p |> fold |> const_prop |> dce ~keep
