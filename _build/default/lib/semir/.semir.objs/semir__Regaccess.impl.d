lib/semir/regaccess.ml: Int64 Machine Printf
