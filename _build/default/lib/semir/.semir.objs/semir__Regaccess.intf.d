lib/semir/regaccess.mli: Machine
