lib/semir/ir.ml: Format List Printf
