lib/semir/opt.mli: Ir
