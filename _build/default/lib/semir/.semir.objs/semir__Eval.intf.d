lib/semir/eval.mli: Frame Hooks Ir Machine
