lib/semir/hooks.ml: Machine
