lib/semir/frame.ml: Array
