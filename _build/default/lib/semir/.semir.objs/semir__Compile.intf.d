lib/semir/compile.mli: Frame Hooks Ir Machine
