lib/semir/value.mli: Ir
