lib/semir/value.ml: Int64 Ir
