lib/semir/opt.ml: Int Ir List Map Set Value
