lib/semir/compile.ml: Array Fault Frame Hooks Int64 Ir List Machine Memory Regaccess Regfile State Value
