(** Architectural faults raised by instruction execution.

    Faults are reported through the functional-to-timing interface (the
    paper's "faults" item in the minimal informational detail level), not
    as OCaml exceptions, so a timing simulator can observe and act on them. *)

type t =
  | Illegal_instruction of int64  (** encoding that failed to decode *)
  | Unaligned_access of int64  (** effective address *)
  | Arith of string  (** e.g. division by zero when the ISA traps *)
  | Exit of int  (** program requested termination with a status code *)

let equal a b =
  match (a, b) with
  | Illegal_instruction x, Illegal_instruction y -> Int64.equal x y
  | Unaligned_access x, Unaligned_access y -> Int64.equal x y
  | Arith x, Arith y -> String.equal x y
  | Exit x, Exit y -> Int.equal x y
  | (Illegal_instruction _ | Unaligned_access _ | Arith _ | Exit _), _ -> false

let pp ppf = function
  | Illegal_instruction enc ->
    Format.fprintf ppf "illegal instruction (encoding 0x%Lx)" enc
  | Unaligned_access a -> Format.fprintf ppf "unaligned access at 0x%Lx" a
  | Arith s -> Format.fprintf ppf "arithmetic fault: %s" s
  | Exit c -> Format.fprintf ppf "exit(%d)" c

let to_string t = Format.asprintf "%a" pp t
