type class_def = {
  cname : string;
  count : int;
  width : int;
  hardwired_zero : int option;
}

type t = {
  classes : class_def array;
  bases : int array;
  total : int;
  v : int64 array;
  (* Per-flat-register write mask; 0L marks a hardwired-zero register. *)
  masks : int64 array;
}

let width_mask width =
  if width >= 64 then -1L
  else Int64.sub (Int64.shift_left 1L width) 1L

let create classes =
  let classes = Array.of_list classes in
  let seen = Hashtbl.create 8 in
  Array.iter
    (fun c ->
      if c.count <= 0 then invalid_arg ("Regfile: empty class " ^ c.cname);
      if c.width <= 0 || c.width > 64 then
        invalid_arg ("Regfile: bad width for class " ^ c.cname);
      (match c.hardwired_zero with
      | Some i when i < 0 || i >= c.count ->
        invalid_arg ("Regfile: bad hardwired index in " ^ c.cname)
      | _ -> ());
      if Hashtbl.mem seen c.cname then
        invalid_arg ("Regfile: duplicate class " ^ c.cname);
      Hashtbl.add seen c.cname ())
    classes;
  let n = Array.length classes in
  let bases = Array.make n 0 in
  let total = ref 0 in
  for i = 0 to n - 1 do
    bases.(i) <- !total;
    total := !total + classes.(i).count
  done;
  let masks = Array.make !total 0L in
  for i = 0 to n - 1 do
    let c = classes.(i) in
    let m = width_mask c.width in
    for j = 0 to c.count - 1 do
      masks.(bases.(i) + j) <-
        (match c.hardwired_zero with Some z when z = j -> 0L | _ -> m)
    done
  done;
  { classes; bases; total = !total; v = Array.make !total 0L; masks }

let copy t = { t with v = Array.copy t.v }

let class_index t name =
  let rec find i =
    if i >= Array.length t.classes then raise Not_found
    else if String.equal t.classes.(i).cname name then i
    else find (i + 1)
  in
  find 0

let class_count t = Array.length t.classes
let class_def t i = t.classes.(i)
let base t i = t.bases.(i)
let total t = t.total

let check t ~cls ~idx =
  if cls < 0 || cls >= Array.length t.classes then
    invalid_arg "Regfile: bad class index";
  if idx < 0 || idx >= t.classes.(cls).count then
    invalid_arg
      (Printf.sprintf "Regfile: index %d out of range for class %s" idx
         t.classes.(cls).cname)

let read t ~cls ~idx =
  check t ~cls ~idx;
  t.v.(t.bases.(cls) + idx)

let write t ~cls ~idx value =
  check t ~cls ~idx;
  let flat = t.bases.(cls) + idx in
  t.v.(flat) <- Int64.logand value t.masks.(flat)

let read_flat t i = Array.unsafe_get t.v i

let write_flat t i value =
  Array.unsafe_set t.v i (Int64.logand value (Array.unsafe_get t.masks i))

let is_hardwired_flat t i = Int64.equal t.masks.(i) 0L
let mask_flat t i = t.masks.(i)

let blit ~src ~dst =
  if src.total <> dst.total then invalid_arg "Regfile.blit: layout mismatch";
  Array.blit src.v 0 dst.v 0 src.total

let equal a b =
  a.total = b.total
  && Array.for_all2 (fun (x : class_def) y -> x = y) a.classes b.classes
  && Array.for_all2 Int64.equal a.v b.v

let pp ppf t =
  Array.iteri
    (fun ci c ->
      Format.fprintf ppf "@[<v 2>%s:@," c.cname;
      for i = 0 to c.count - 1 do
        let v = t.v.(t.bases.(ci) + i) in
        if not (Int64.equal v 0L) then
          Format.fprintf ppf "%s%d = 0x%Lx@," c.cname i v
      done;
      Format.fprintf ppf "@]")
    t.classes
