(** Architectural register file made of named register classes.

    An ISA declares classes such as [GPR\[32\]] or [CR\[8\]]; the register
    file flattens every class into one backing array. A class may declare a
    hardwired-zero register (Alpha's R31, for example): reads of it return
    zero and writes to it are discarded. Values wider than the class width
    are masked on write. *)

type class_def = {
  cname : string;
  count : int;  (** number of registers in the class *)
  width : int;  (** register width in bits, 1..64 *)
  hardwired_zero : int option;
      (** index within the class that always reads as zero *)
}

type t

(** [create classes] builds a register file with all registers zero.
    @raise Invalid_argument on duplicate class names or invalid sizes. *)
val create : class_def list -> t

(** [copy t] is a deep copy (used by checkpointing simulators). *)
val copy : t -> t

(** [class_index t name] is the positional index of class [name].
    @raise Not_found if there is no such class. *)
val class_index : t -> string -> int

val class_count : t -> int
val class_def : t -> int -> class_def

(** [base t c] is the offset of class [c] in the flat array; register [i] of
    class [c] lives at flat index [base t c + i]. *)
val base : t -> int -> int

(** Total number of registers across all classes. *)
val total : t -> int

(** [read t ~cls ~idx] reads register [idx] of class [cls] (bounds-checked). *)
val read : t -> cls:int -> idx:int -> int64

(** [write t ~cls ~idx v] writes [v] (masked to the class width) unless the
    register is the class's hardwired zero. *)
val write : t -> cls:int -> idx:int -> int64 -> unit

(** Flat accessors used by synthesized code after bounds and hardwiring have
    been resolved statically. [read_flat]/[write_flat] still honour
    hardwired-zero registers. *)
val read_flat : t -> int -> int64
val write_flat : t -> int -> int64 -> unit

(** [is_hardwired_flat t i] tells whether flat index [i] is a hardwired zero. *)
val is_hardwired_flat : t -> int -> bool

(** [mask_flat t i] is the width mask applied to writes at flat index [i]. *)
val mask_flat : t -> int -> int64

(** [blit ~src ~dst] copies all register values from [src] to [dst]
    (the layouts must match). *)
val blit : src:t -> dst:t -> unit

(** [equal a b] compares layouts and contents. *)
val equal : t -> t -> bool

val pp : Format.formatter -> t -> unit
