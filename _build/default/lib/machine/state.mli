(** Complete architectural state of a simulated processor plus the
    bookkeeping shared by every functional-simulator interface.

    The paper's functional simulator owns exactly this state; timing
    simulators observe or drive it only through a synthesized interface. *)

type t = {
  mem : Memory.t;
  regs : Regfile.t;
  mutable pc : int64;
  mutable next_pc : int64;  (** set by control-flow actions; committed by the engine *)
  mutable instr_count : int64;  (** retired (committed) instructions *)
  mutable fault : Fault.t option;
  mutable halted : bool;
  mutable syscall_handler : t -> unit;
      (** invoked by the [syscall] semantic statement; installed by the
          OS-emulation layer (the paper's "OS/simulator support" file) *)
}

(** [create ~endian classes] builds a fresh machine with zeroed state and a
    syscall handler that faults ([Fault.Arith "no syscall handler"]). *)
val create : endian:Memory.endian -> Regfile.class_def list -> t

(** [reset t ~pc] clears registers? No — it resets only control state:
    pc, next_pc, instruction count, fault, halt flag. Memory and registers
    are left untouched so a loaded program image survives. *)
val reset : t -> pc:int64 -> unit

(** [raise_fault t f] records [f] and halts the machine. *)
val raise_fault : t -> Fault.t -> unit

(** [snapshot t] captures registers, pc and next_pc (not memory) for cheap
    comparison; see {!matches_snapshot}. *)
type snapshot

val snapshot : t -> snapshot
val restore_snapshot : t -> snapshot -> unit
val matches_snapshot : t -> snapshot -> bool

(** Exit status recorded by an [Exit] fault, if any. *)
val exit_status : t -> int option
