type t = {
  mem : Memory.t;
  regs : Regfile.t;
  mutable pc : int64;
  mutable next_pc : int64;
  mutable instr_count : int64;
  mutable fault : Fault.t option;
  mutable halted : bool;
  mutable syscall_handler : t -> unit;
}

let default_handler t =
  t.fault <- Some (Fault.Arith "no syscall handler installed");
  t.halted <- true

let create ~endian classes =
  {
    mem = Memory.create endian;
    regs = Regfile.create classes;
    pc = 0L;
    next_pc = 0L;
    instr_count = 0L;
    fault = None;
    halted = false;
    syscall_handler = default_handler;
  }

let reset t ~pc =
  t.pc <- pc;
  t.next_pc <- pc;
  t.instr_count <- 0L;
  t.fault <- None;
  t.halted <- false

let raise_fault t f =
  t.fault <- Some f;
  t.halted <- true

type snapshot = { s_regs : Regfile.t; s_pc : int64; s_next_pc : int64 }

let snapshot t = { s_regs = Regfile.copy t.regs; s_pc = t.pc; s_next_pc = t.next_pc }

let restore_snapshot t s =
  Regfile.blit ~src:s.s_regs ~dst:t.regs;
  t.pc <- s.s_pc;
  t.next_pc <- s.s_next_pc

let matches_snapshot t s =
  Regfile.equal t.regs s.s_regs && Int64.equal t.pc s.s_pc

let exit_status t = match t.fault with Some (Fault.Exit c) -> Some c | _ -> None
