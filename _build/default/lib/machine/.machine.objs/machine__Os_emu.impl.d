lib/machine/os_emu.ml: Array Buffer Char Fault Int64 Memory Regfile State String
