lib/machine/regfile.mli: Format
