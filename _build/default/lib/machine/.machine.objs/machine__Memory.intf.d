lib/machine/memory.mli:
