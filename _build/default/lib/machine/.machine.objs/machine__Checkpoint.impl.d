lib/machine/checkpoint.ml: Buffer Bytes Fault Int64 Memory Regfile State String
