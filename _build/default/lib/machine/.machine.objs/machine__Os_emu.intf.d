lib/machine/os_emu.mli: State
