lib/machine/state.mli: Fault Memory Regfile
