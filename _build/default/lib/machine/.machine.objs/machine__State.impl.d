lib/machine/state.ml: Fault Int64 Memory Regfile
