lib/machine/fault.ml: Format Int Int64 String
