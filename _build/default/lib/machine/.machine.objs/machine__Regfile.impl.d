lib/machine/regfile.ml: Array Format Hashtbl Int64 Printf String
