(** Instruction decoder synthesized from the specification's (mask, match)
    pairs: a first-level table on the ISA's declared decode key narrows
    each encoding to a short candidate list scanned in declaration order
    (first match wins, so specialized encodings are declared before the
    general forms they refine). *)

type t

val make : Lis.Spec.t -> t

(** [decode t enc] is the matching instruction index, or [-1]. *)
val decode : t -> int64 -> int

(** Largest candidate-list length (decoder quality metric). *)
val max_bucket : t -> int

(** Pairs of instructions that can both match some encoding (the earlier
    one wins) — a description lint. *)
val overlaps : Lis.Spec.t -> (string * string) list
