(** OCaml source emission: the code-generation face of synthesis.

    The closure specializer ({!Synth}) is how simulators execute in this
    process; [buildset_to_ocaml] emits the same specialized simulator as
    readable OCaml source — the analog of the paper's LIS-to-C++
    synthesis. The emitted text shows exactly what the buildset bought:
    hidden cells appear as scratch slots (or vanish entirely under DCE),
    visible cells as DI-info stores, and each entrypoint is one function
    per instruction. It is what a user inspects to understand the cost of
    an interface, and what they would paste into a standalone project. *)

let buf_add = Buffer.add_string

let rec emit_expr (spec : Lis.Spec.t) (slots : Slots.t) b (e : Semir.Ir.expr) =
  let add = buf_add b in
  let sub e = emit_expr spec slots b e in
  match e with
  | Const v -> add (Printf.sprintf "0x%LxL" v)
  | Cell c -> (
    match slots.loc.(c) with
    | Semir.Frame.In_di i ->
      add (Printf.sprintf "fr.di.(%d) (* %s *)" i (Lis.Spec.cell_name spec c))
    | Semir.Frame.In_scratch i ->
      add (Printf.sprintf "fr.scratch.(%d) (* %s *)" i (Lis.Spec.cell_name spec c)))
  | Enc { lo; len; signed } ->
    add
      (Printf.sprintf "Semir.Value.enc_bits fr.enc ~lo:%d ~len:%d ~signed:%b" lo
         len signed)
  | Pc -> add "fr.pc"
  | Next_pc -> add "fr.next_pc"
  | Bin (op, x, y) ->
    add "(";
    add
      (match op with
      | Add -> "Int64.add "
      | Sub -> "Int64.sub "
      | Mul -> "Int64.mul "
      | And -> "Int64.logand "
      | Or -> "Int64.logor "
      | Xor -> "Int64.logxor "
      | _ -> Printf.sprintf "Semir.Value.binop %s " (binop_name op));
    add "(";
    sub x;
    add ") (";
    sub y;
    add "))"
  | Un (op, x) ->
    add "(";
    (match op with
    | Neg -> add "Int64.neg "
    | Not -> add "Int64.lognot "
    | Sext n -> add (Printf.sprintf "(fun v -> Semir.Value.sext v %d) " n)
    | Zext n -> add (Printf.sprintf "(fun v -> Semir.Value.zext v %d) " n)
    | Bool_not | Popcount | Clz | Ctz ->
      add (Printf.sprintf "Semir.Value.unop %s " (unop_name op)));
    add "(";
    sub x;
    add "))"
  | Ite (c, x, y) ->
    add "(if not (Int64.equal (";
    sub c;
    add ") 0L) then (";
    sub x;
    add ") else (";
    sub y;
    add "))"
  | Load { width; signed; addr } ->
    add
      (Printf.sprintf "(Machine.Memory.%s st.Machine.State.mem ~addr:("
         (if signed then "read_signed" else "read"));
    sub addr;
    add (Printf.sprintf ") ~width:%d)" (Semir.Ir.bytes_of_width width))
  | Reg_read { cls; index } ->
    add (Printf.sprintf "(Semir.Regaccess.read st.Machine.State.regs ~cls:%d (" cls);
    sub index;
    add "))"

and binop_name : Semir.Ir.binop -> string = function
  | Add -> "Semir.Ir.Add"
  | Sub -> "Semir.Ir.Sub"
  | Mul -> "Semir.Ir.Mul"
  | Mulhs -> "Semir.Ir.Mulhs"
  | Mulhu -> "Semir.Ir.Mulhu"
  | Divs -> "Semir.Ir.Divs"
  | Divu -> "Semir.Ir.Divu"
  | Rems -> "Semir.Ir.Rems"
  | Remu -> "Semir.Ir.Remu"
  | And -> "Semir.Ir.And"
  | Or -> "Semir.Ir.Or"
  | Xor -> "Semir.Ir.Xor"
  | Shl -> "Semir.Ir.Shl"
  | Lshr -> "Semir.Ir.Lshr"
  | Ashr -> "Semir.Ir.Ashr"
  | Ror -> "Semir.Ir.Ror"
  | Eq -> "Semir.Ir.Eq"
  | Ne -> "Semir.Ir.Ne"
  | Lts -> "Semir.Ir.Lts"
  | Ltu -> "Semir.Ir.Ltu"
  | Les -> "Semir.Ir.Les"
  | Leu -> "Semir.Ir.Leu"

and unop_name : Semir.Ir.unop -> string = function
  | Neg -> "Semir.Ir.Neg"
  | Not -> "Semir.Ir.Not"
  | Bool_not -> "Semir.Ir.Bool_not"
  | Sext n -> Printf.sprintf "(Semir.Ir.Sext %d)" n
  | Zext n -> Printf.sprintf "(Semir.Ir.Zext %d)" n
  | Popcount -> "Semir.Ir.Popcount"
  | Clz -> "Semir.Ir.Clz"
  | Ctz -> "Semir.Ir.Ctz"

let rec emit_stmt spec slots b ~indent (s : Semir.Ir.stmt) =
  let add = buf_add b in
  let pad = String.make indent ' ' in
  add pad;
  (match s with
  | Semir.Ir.Set_cell (c, e) ->
    (match slots.Slots.loc.(c) with
    | Semir.Frame.In_di i ->
      add (Printf.sprintf "fr.di.(%d) (* %s *) <- " i (Lis.Spec.cell_name spec c))
    | Semir.Frame.In_scratch i ->
      add
        (Printf.sprintf "fr.scratch.(%d) (* %s *) <- " i (Lis.Spec.cell_name spec c)));
    emit_expr spec slots b e;
    add ";"
  | Store { width; addr; value } ->
    add "Machine.Memory.write st.Machine.State.mem ~addr:(";
    emit_expr spec slots b addr;
    add (Printf.sprintf ") ~width:%d (" (Semir.Ir.bytes_of_width width));
    emit_expr spec slots b value;
    add ");"
  | Set_next_pc e ->
    add "fr.next_pc <- ";
    emit_expr spec slots b e;
    add ";"
  | Reg_write { cls; index; value } ->
    add (Printf.sprintf "Semir.Regaccess.write st.Machine.State.regs ~cls:%d (" cls);
    emit_expr spec slots b index;
    add ") (";
    emit_expr spec slots b value;
    add ");"
  | If (c, t, f) ->
    add "if not (Int64.equal (";
    emit_expr spec slots b c;
    add ") 0L) then begin\n";
    List.iter (emit_stmt spec slots b ~indent:(indent + 2)) t;
    add pad;
    (match f with
    | [] -> add "end;"
    | _ ->
      add "end else begin\n";
      List.iter (emit_stmt spec slots b ~indent:(indent + 2)) f;
      add pad;
      add "end;")
  | Fault_illegal ->
    add
      "Machine.State.raise_fault st (Machine.Fault.Illegal_instruction fr.enc);"
  | Fault_unaligned e ->
    add "Machine.State.raise_fault st (Machine.Fault.Unaligned_access (";
    emit_expr spec slots b e;
    add "));"
  | Fault_arith m ->
    add (Printf.sprintf "Machine.State.raise_fault st (Machine.Fault.Arith %S);" m)
  | Syscall -> add "st.Machine.State.syscall_handler st;"
  | Halt -> add "st.Machine.State.halted <- true;");
  add "\n"

let sanitize name =
  String.map (fun c -> if c = '.' || c = '-' then '_' else c) (String.lowercase_ascii name)

(** [buildset_to_ocaml spec bs_name] renders the specialized simulator for
    one buildset as OCaml source text. *)
let buildset_to_ocaml (spec : Lis.Spec.t) (bs_name : string) : string =
  let bs = Lis.Spec.find_buildset spec bs_name in
  let slots = Slots.make spec bs in
  let b = Buffer.create 65536 in
  buf_add b
    (Printf.sprintf
       "(* Synthesized functional simulator: ISA %s, interface %s.\n\
       \   Generated by Specsim.Emit — do not edit.\n\
       \   DI info slots: %d; hidden scratch slots: %d; speculation: %b. *)\n\n"
       spec.name bs.bs_name slots.di_size slots.scratch_size bs.bs_speculation);
  buf_add b "open Semir.Frame\n\n";
  let ep_segs =
    Array.map
      (fun (_, syms) -> Synth.segments_of_entrypoint syms)
      bs.bs_entrypoints
  in
  (* replicate the synthesizer's per-segment optimized IR *)
  let flat_segs = Array.to_list ep_segs |> List.concat in
  let flat = Array.of_list flat_segs in
  let n_segs = Array.length flat in
  Array.iter
    (fun (instr : Lis.Spec.instr) ->
      let irs = Array.map (Synth.seg_ir instr) flat in
      let module Iset = Set.Make (Int) in
      let downstream = Array.make (n_segs + 1) Iset.empty in
      for k = n_segs - 1 downto 0 do
        downstream.(k) <-
          Iset.union downstream.(k + 1)
            (Iset.of_list (Semir.Ir.program_reads irs.(k)))
      done;
      Array.iteri
        (fun k ir ->
          match flat.(k) with
          | Synth.Seg_fetch -> ()
          | Synth.Seg_decode | Synth.Seg_ir _ ->
            let keep c = bs.bs_visible.(c) || Iset.mem c downstream.(k + 1) in
            let ir = Semir.Opt.optimize ~keep ir in
            buf_add b
              (Printf.sprintf "let %s_seg%d (st : Machine.State.t) (fr : t) =\n"
                 (sanitize instr.i_name) k);
            if ir = [] then buf_add b "  ignore st; ignore fr; ()\n"
            else begin
              buf_add b "  ignore st;\n";
              List.iter (emit_stmt spec slots b ~indent:2) ir
            end;
            buf_add b "\n")
        irs)
    spec.instrs;
  (* dispatch tables *)
  Array.iteri
    (fun k seg ->
      match seg with
      | Synth.Seg_fetch -> ()
      | Synth.Seg_decode | Synth.Seg_ir _ ->
        buf_add b (Printf.sprintf "let seg%d_table = [|\n" k);
        Array.iter
          (fun (i : Lis.Spec.instr) ->
            buf_add b (Printf.sprintf "  %s_seg%d;\n" (sanitize i.i_name) k))
          spec.instrs;
        buf_add b "|]\n\n")
    flat;
  buf_add b
    (Printf.sprintf
       "(* Entrypoints (semantic detail): %s *)\n"
       (String.concat ", " (Array.to_list (Array.map fst bs.bs_entrypoints))));
  Buffer.contents b
