lib/core/di.ml: Array Machine
