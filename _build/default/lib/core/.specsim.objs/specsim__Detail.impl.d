lib/core/detail.ml: Buffer Lis List Printf String
