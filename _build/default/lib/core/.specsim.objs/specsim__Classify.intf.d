lib/core/classify.mli: Lis Semir
