lib/core/classify.ml: Array Lis List Semir
