lib/core/liveness.mli: Format Lis
