lib/core/specul.mli: Machine Semir
