lib/core/emit.mli: Lis
