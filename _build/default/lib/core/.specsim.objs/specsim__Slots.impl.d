lib/core/slots.ml: Array Lis Semir
