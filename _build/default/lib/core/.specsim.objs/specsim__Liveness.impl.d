lib/core/liveness.ml: Array Format Int Lis List Semir Set
