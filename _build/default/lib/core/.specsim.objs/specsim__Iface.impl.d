lib/core/iface.ml: Array Di Int64 Lis Machine Printf Slots Specul
