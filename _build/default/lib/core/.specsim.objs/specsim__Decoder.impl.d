lib/core/decoder.ml: Array Int64 Lis List
