lib/core/specul.ml: Array Machine Semir
