lib/core/synth.ml: Array Decoder Di Fault Format Hashtbl Iface Int Int64 Lis List Liveness Machine Memory Option Printf Semir Set Slots Specul State String
