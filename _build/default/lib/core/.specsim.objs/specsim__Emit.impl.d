lib/core/emit.ml: Array Buffer Int Lis List Printf Semir Set Slots String Synth
