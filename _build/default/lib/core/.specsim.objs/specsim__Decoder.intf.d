lib/core/decoder.mli: Lis
