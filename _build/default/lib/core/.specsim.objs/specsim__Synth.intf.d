lib/core/synth.mli: Iface Lis Machine Semir
