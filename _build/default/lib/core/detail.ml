(** Interface detail levels, exactly as the paper's evaluation names them.

    A buildset is free-form (any entrypoint grouping, any visibility); these
    labels classify the twelve canonical interfaces of Table II and drive
    the benchmark harness. *)

type semantic = Block | One | Step

type informational = Min | Decode | All

type t = { semantic : semantic; informational : informational; speculation : bool }

let semantic_to_string = function Block -> "Block" | One -> "One" | Step -> "Step"

let informational_to_string = function
  | Min -> "Min"
  | Decode -> "Decode"
  | All -> "All"

let to_string d =
  Printf.sprintf "%s/%s/%s"
    (semantic_to_string d.semantic)
    (informational_to_string d.informational)
    (if d.speculation then "Yes" else "No")

(** Canonical buildset name used in the shipped ISA descriptions, e.g.
    [block_decode_spec] or [one_all]. *)
let buildset_name d =
  let s =
    match d.semantic with Block -> "block" | One -> "one" | Step -> "step"
  in
  let i =
    match d.informational with Min -> "min" | Decode -> "decode" | All -> "all"
  in
  Printf.sprintf "%s_%s%s" s i (if d.speculation then "_spec" else "")

(** The twelve interfaces of Table II, in the paper's row order. *)
let table2_interfaces =
  [
    { semantic = Block; informational = Min; speculation = false };
    { semantic = Block; informational = Decode; speculation = false };
    { semantic = Block; informational = Decode; speculation = true };
    { semantic = Block; informational = All; speculation = false };
    { semantic = Block; informational = All; speculation = true };
    { semantic = One; informational = Min; speculation = false };
    { semantic = One; informational = Decode; speculation = false };
    { semantic = One; informational = Decode; speculation = true };
    { semantic = One; informational = All; speculation = false };
    { semantic = One; informational = All; speculation = true };
    { semantic = Step; informational = All; speculation = false };
    { semantic = Step; informational = All; speculation = true };
  ]

(** LIS source text for a canonical buildset (what a user would write: the
    paper's "about a dozen lines of code" per interface). [sequence] is the
    ISA's action sequence. *)
let to_lis ?(sequence = Lis.Sema.default_sequence) d =
  let b = Buffer.create 256 in
  Printf.bprintf b "buildset %s {\n" (buildset_name d);
  Printf.bprintf b "  speculation %s;\n" (if d.speculation then "on" else "off");
  if d.semantic = Block then Buffer.add_string b "  semantic block;\n";
  Printf.bprintf b "  visibility %s;\n"
    (match d.informational with Min -> "min" | Decode -> "decode" | All -> "all");
  (match d.semantic with
  | Block | One ->
    Printf.bprintf b "  entrypoint do_in_one = %s;\n" (String.concat ", " sequence)
  | Step ->
    (* Seven calls: fetch, decode, operand fetch, evaluate, memory,
       writeback, exception — the paper's step interface. User actions
       between read_operands and writeback are split so that memory-access
       actions form their own call. *)
    let rec split acc current = function
      | [] -> List.rev (List.rev current :: acc)
      | a :: rest ->
        if List.mem a [ "fetch"; "decode"; "read_operands"; "writeback" ] then
          let acc = if current = [] then acc else List.rev current :: acc in
          split ([ a ] :: acc) [] rest
        else if String.equal a "memory" then
          let acc = if current = [] then acc else List.rev current :: acc in
          split ([ a ] :: acc) [] rest
        else split acc (a :: current) rest
    in
    let groups = split [] [] sequence |> List.filter (fun g -> g <> []) in
    List.iteri
      (fun i g ->
        Printf.bprintf b "  entrypoint step%d_%s = %s;\n" i (List.hd g)
          (String.concat ", " g))
      groups);
  Buffer.add_string b "}\n";
  Buffer.contents b

(** A complete buildset file covering all twelve canonical interfaces. *)
let canonical_buildset_file ?sequence () =
  String.concat "\n" (List.map (to_lis ?sequence) table2_interfaces)
