(** Static instruction classification derived from the specification:
    timing simulators learn which instructions load, store, branch or trap
    from the IR itself — never hand-maintained per ISA. *)

type kind = {
  is_load : bool;
  is_store : bool;
  is_branch : bool;  (** may write next_pc *)
  is_syscall : bool;
  dest_regs : (int * Semir.Ir.cell) array;
      (** write-operands: (register class, id cell) — for scoreboarding *)
  src_regs : (int * Semir.Ir.cell) array;
}

val of_instr : Lis.Spec.instr -> kind

(** [of_spec spec] classifies every instruction, indexed by instruction id. *)
val of_spec : Lis.Spec.t -> kind array
