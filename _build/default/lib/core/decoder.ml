(** Instruction decoder synthesized from the (mask, match) pairs of the
    specification.

    A first-level table indexed by the ISA's declared decode key narrows
    each encoding to a short candidate list that is scanned in declaration
    order (first match wins, so specialized encodings are declared before
    the general forms they refine). *)

type t = {
  lo : int;
  len : int;
  buckets : (int64 * int64 * int) array array;
      (** per key value: (mask, match, instruction index) candidates *)
}

let make (spec : Lis.Spec.t) : t =
  let lo = spec.decode_lo and len = spec.decode_len in
  let n_keys = 1 lsl len in
  let key_mask = Int64.shift_left (Int64.sub (Int64.shift_left 1L len) 1L) lo in
  let buckets = Array.make n_keys [] in
  (* Walk instructions in reverse so each bucket list ends up in
     declaration order. *)
  for i = Array.length spec.instrs - 1 downto 0 do
    let ins = spec.instrs.(i) in
    let fixed = Int64.logand ins.i_mask key_mask in
    for key = 0 to n_keys - 1 do
      let key_bits = Int64.shift_left (Int64.of_int key) lo in
      (* The instruction can match an encoding with this key iff the key
         bits agree wherever the instruction's mask constrains them. *)
      if
        Int64.equal
          (Int64.logand key_bits fixed)
          (Int64.logand ins.i_match fixed)
      then
        buckets.(key) <- (ins.i_mask, ins.i_match, i) :: buckets.(key)
    done
  done;
  { lo; len; buckets = Array.map Array.of_list buckets }

(** [decode t enc] is the instruction index matching [enc], or [-1]. *)
let decode t enc =
  let key =
    Int64.to_int (Int64.shift_right_logical enc t.lo) land ((1 lsl t.len) - 1)
  in
  let cands = Array.unsafe_get t.buckets key in
  let n = Array.length cands in
  let rec go i =
    if i >= n then -1
    else
      let mask, mtch, idx = Array.unsafe_get cands i in
      if Int64.equal (Int64.logand enc mask) mtch then idx else go (i + 1)
  in
  go 0

(** Largest candidate-list length (decoder quality metric for tests). *)
let max_bucket t =
  Array.fold_left (fun m b -> max m (Array.length b)) 0 t.buckets

(** Pairs of instructions that can both match some encoding (the earlier
    one wins). Useful as a description lint: a pair is fine when it is an
    intentional specialization, suspicious otherwise. *)
let overlaps (spec : Lis.Spec.t) : (string * string) list =
  let res = ref [] in
  let n = Array.length spec.instrs in
  for i = 0 to n - 1 do
    for j = i + 1 to n - 1 do
      let a = spec.instrs.(i) and b = spec.instrs.(j) in
      let common = Int64.logand a.i_mask b.i_mask in
      if
        Int64.equal (Int64.logand a.i_match common)
          (Int64.logand b.i_match common)
      then res := (a.i_name, b.i_name) :: !res
    done
  done;
  List.rev !res
