(** Static instruction classification derived from the specification.

    Timing simulators need to know which instructions access memory or
    redirect control flow. Because instruction semantics are specified
    once in the IR, this is computed — not hand-maintained per ISA. *)

type kind = {
  is_load : bool;
  is_store : bool;
  is_branch : bool;  (** may write next_pc *)
  is_syscall : bool;
  dest_regs : (int * Semir.Ir.cell) array;
      (** write-operands: (register class, id cell) — for scoreboarding *)
  src_regs : (int * Semir.Ir.cell) array;
}

let rec expr_has_load (e : Semir.Ir.expr) =
  match e with
  | Load _ -> true
  | Const _ | Cell _ | Enc _ | Pc | Next_pc -> false
  | Bin (_, a, b) -> expr_has_load a || expr_has_load b
  | Un (_, a) -> expr_has_load a
  | Ite (c, a, b) -> expr_has_load c || expr_has_load a || expr_has_load b
  | Reg_read { index; _ } -> expr_has_load index

let rec stmt_scan (ld, st, br, sy) (s : Semir.Ir.stmt) =
  match s with
  | Set_cell (_, e) -> (ld || expr_has_load e, st, br, sy)
  | Store _ -> (ld, true, br, sy)
  | Set_next_pc _ -> (ld, st, true, sy)
  | Reg_write { index; value; _ } ->
    (ld || expr_has_load index || expr_has_load value, st, br, sy)
  | If (c, t, f) ->
    let acc = (ld || expr_has_load c, st, br, sy) in
    let acc = List.fold_left stmt_scan acc t in
    List.fold_left stmt_scan acc f
  | Fault_unaligned e -> (ld || expr_has_load e, st, br, sy)
  | Syscall -> (ld, st, br, true)
  | Fault_illegal | Fault_arith _ | Halt -> (ld, st, br, sy)

let of_instr (i : Lis.Spec.instr) : kind =
  let programs =
    i.i_decode :: i.i_read :: i.i_writeback :: List.map snd i.i_user
  in
  let ld, st, br, sy =
    List.fold_left
      (fun acc p -> List.fold_left stmt_scan acc p)
      (false, false, false, false)
      programs
  in
  let dest_regs =
    Array.of_list
      (Array.to_list i.i_operands
      |> List.filter (fun (o : Lis.Spec.operand) -> o.op_write)
      |> List.map (fun (o : Lis.Spec.operand) -> (o.op_cls, o.op_id_cell)))
  in
  let src_regs =
    Array.of_list
      (Array.to_list i.i_operands
      |> List.filter (fun (o : Lis.Spec.operand) -> o.op_read)
      |> List.map (fun (o : Lis.Spec.operand) -> (o.op_cls, o.op_id_cell)))
  in
  { is_load = ld; is_store = st; is_branch = br; is_syscall = sy; dest_regs; src_regs }

(** [of_spec spec] classifies every instruction, indexed by instruction id. *)
let of_spec (spec : Lis.Spec.t) : kind array = Array.map of_instr spec.instrs
