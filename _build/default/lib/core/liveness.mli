(** Static cross-entrypoint liveness check.

    Any cell written in one entrypoint and read in a later one must be
    interface-visible — hidden cells live in scratch storage that is not
    part of the per-instruction record and cannot be trusted across
    interface calls. This turns the paper's dominant runtime interface bug
    ("some intermediate value or operand that needs to be visible is
    hidden") into a synthesis-time error. *)

type violation = {
  v_instr : string;
  v_cell : string;
  v_writer : string;  (** entrypoint that writes the cell *)
  v_reader : string;  (** later entrypoint that reads it *)
}

val pp_violation : Format.formatter -> violation -> unit

(** [check spec bs] returns all hidden-but-crossing cells; empty means the
    buildset is safe for any number of in-flight instructions. *)
val check : Lis.Spec.t -> Lis.Spec.buildset -> violation list

(** Deduplicated (cell, writer, reader) triples across instructions. *)
val summarize : violation list -> (string * string * string) list
