(** OCaml source emission: the code-generation face of synthesis (the
    analog of the paper's LIS-to-C++ synthesis). The emitted text shows
    exactly what a buildset bought: hidden cells appear as scratch slots
    or vanish under dead-code elimination, visible cells as DI-info
    stores, and each entrypoint becomes one function per instruction. *)

(** [buildset_to_ocaml spec bs_name] renders the specialized simulator for
    one buildset as OCaml source text.
    @raise Invalid_argument if the buildset does not exist. *)
val buildset_to_ocaml : Lis.Spec.t -> string -> string
