(** Static cross-entrypoint liveness check.

    The paper observes that "nearly all errors ... occur because some
    intermediate value or operand that needs to be visible is hidden in
    the interface", and that they manifest at run time. Because our
    synthesizer knows every action's def/use sets, it can do better and
    reject such interfaces at synthesis time: any cell written in one
    entrypoint and read in a later one must be interface-visible — hidden
    cells live in scratch storage that is not part of the per-instruction
    record and cannot be trusted across interface calls (several dynamic
    instructions may be in flight). *)

type violation = {
  v_instr : string;
  v_cell : string;
  v_writer : string;  (** entrypoint that writes the cell *)
  v_reader : string;  (** later entrypoint that reads it *)
}

let pp_violation ppf v =
  Format.fprintf ppf
    "instruction %s: cell '%s' is written by entrypoint '%s' and read by \
     later entrypoint '%s' but is hidden by the buildset"
    v.v_instr v.v_cell v.v_writer v.v_reader

(** IR programs contributed by an action symbol for one instruction. *)
let action_programs (spec : Lis.Spec.t) (i : Lis.Spec.instr) = function
  | Lis.Spec.A_fetch -> []
  | Lis.Spec.A_decode -> [ i.i_decode ]
  | Lis.Spec.A_read_operands -> [ i.i_read ]
  | Lis.Spec.A_writeback -> [ i.i_writeback ]
  | Lis.Spec.A_user name ->
    ignore spec;
    [ Lis.Spec.user_action i name ]

(** [check spec bs] returns all hidden-but-crossing cells. An empty list
    means the buildset is safe for any number of in-flight instructions. *)
let check (spec : Lis.Spec.t) (bs : Lis.Spec.buildset) : violation list =
  let module Iset = Set.Make (Int) in
  let violations = ref [] in
  Array.iter
    (fun (i : Lis.Spec.instr) ->
      let eps =
        Array.map
          (fun (name, syms) ->
            let progs = List.concat_map (action_programs spec i) syms in
            let reads =
              List.fold_left
                (fun s p -> Iset.union s (Iset.of_list (Semir.Ir.program_reads p)))
                Iset.empty progs
            in
            let writes =
              List.fold_left
                (fun s p ->
                  Iset.union s (Iset.of_list (Semir.Ir.program_writes p)))
                Iset.empty progs
            in
            (name, reads, writes))
          bs.bs_entrypoints
      in
      let n = Array.length eps in
      for w = 0 to n - 1 do
        for r = w + 1 to n - 1 do
          let wname, _, writes = eps.(w) in
          let rname, reads, _ = eps.(r) in
          Iset.iter
            (fun c ->
              if Iset.mem c reads && not bs.bs_visible.(c) then
                violations :=
                  {
                    v_instr = i.i_name;
                    v_cell = Lis.Spec.cell_name spec c;
                    v_writer = wname;
                    v_reader = rname;
                  }
                  :: !violations)
            writes
        done
      done)
    spec.instrs;
  List.rev !violations

(** Deduplicated (cell, writer, reader) triples across instructions —
    the form a user wants to read. *)
let summarize (vs : violation list) : (string * string * string) list =
  List.sort_uniq compare
    (List.map (fun v -> (v.v_cell, v.v_writer, v.v_reader)) vs)
