(** Dynamic instruction record — the data structure passed across the
    functional-to-timing interface (paper Fig. 2).

    The header (pc, encoding, next pc, fault, instruction index) is the
    paper's "minimal information needed to control the simulator"; the
    [info] array holds the interface-visible cells for the chosen buildset,
    laid out by {!Slots}. *)

type t = {
  mutable pc : int64;
  mutable encoding : int64;
  mutable next_pc : int64;
  mutable instr_index : int;  (** decoded instruction id; -1 before decode *)
  mutable fault : Machine.Fault.t option;
  mutable ckpt : int;  (** speculation checkpoint token; -1 if none *)
  info : int64 array;
}

let create ~info_slots =
  {
    pc = 0L;
    encoding = 0L;
    next_pc = 0L;
    instr_index = -1;
    fault = None;
    ckpt = -1;
    info = Array.make (max info_slots 1) 0L;
  }

let clear t =
  t.pc <- 0L;
  t.encoding <- 0L;
  t.next_pc <- 0L;
  t.instr_index <- -1;
  t.fault <- None;
  t.ckpt <- -1;
  Array.fill t.info 0 (Array.length t.info) 0L

let copy t = { t with info = Array.copy t.info }

(** [get t slot] reads a visible cell by its DI slot (from {!Slots}). *)
let get t slot = t.info.(slot)
