(** Cell storage assignment for one buildset.

    Visible cells get consecutive slots in the retained DI [info] array;
    hidden cells get slots in the engine's reused scratch array. This is
    the mechanical realization of the paper's Fig. 4: hidden values become
    locals that never reach the dynamic-instruction structure. *)

type t = {
  loc : Semir.Frame.location array;  (** per cell *)
  di_size : int;
  scratch_size : int;
  di_slot_of_cell : int array;  (** per cell; -1 when hidden *)
}

let make (spec : Lis.Spec.t) (bs : Lis.Spec.buildset) : t =
  let n = Lis.Spec.n_cells spec in
  if Array.length bs.bs_visible <> n then
    invalid_arg "Slots.make: visibility array does not match cell table";
  let loc = Array.make n (Semir.Frame.In_scratch 0) in
  let di_slot_of_cell = Array.make n (-1) in
  let next_di = ref 0 and next_scratch = ref 0 in
  for c = 0 to n - 1 do
    if bs.bs_visible.(c) then begin
      loc.(c) <- Semir.Frame.In_di !next_di;
      di_slot_of_cell.(c) <- !next_di;
      incr next_di
    end
    else begin
      loc.(c) <- Semir.Frame.In_scratch !next_scratch;
      incr next_scratch
    end
  done;
  { loc; di_size = !next_di; scratch_size = !next_scratch; di_slot_of_cell }

(** [slot_of_name spec slots name] is the DI slot of cell [name], if the
    buildset makes it visible. Timing simulators use this to locate the
    information they need. *)
let slot_of_name (spec : Lis.Spec.t) t name =
  match Lis.Spec.cell_id spec name with
  | exception Not_found -> None
  | c -> if t.di_slot_of_cell.(c) >= 0 then Some t.di_slot_of_cell.(c) else None
