(** Manual practice of the single-specification principle (paper §IV-A,
    Figs. 2-4), hand-written for the demo ISA.

    The highest-detail interface functions take every piece of information
    by reference (here: they return values / take them as arguments), and
    the lower-detail interfaces are built by calling them:

    - {!Fig2}: the dynamic-instruction structure with every field — the
      high informational detail interface of Fig. 2.
    - {!do_in_one}: one call per instruction, all information recorded in
      the structure (Fig. 3).
    - {!do_in_one_less_info}: one call per instruction, with the effective
      address and opcode kept in locals that never reach the structure
      (Fig. 4) — the hand-derived lower informational detail.

    This module is the paper's baseline: deriving even one extra interface
    by hand means writing and maintaining functions like these for every
    instruction step, which is exactly the tedium the LIS buildsets
    eliminate. The test suite checks both manual interfaces against the
    synthesized simulator instruction by instruction. *)

open Machine

(* The demo ISA's opcodes (see Demo_isa for the encodings). *)
type opcode =
  | Add
  | Sub
  | Mul
  | Cmplt
  | Addi
  | Ldq
  | Stq
  | Beqz
  | Br
  | Sys
  | Illegal

(** Fig. 2: the dynamic-instruction structure of the high-detail interface. *)
module Fig2 = struct
  type dynamic_instr = {
    mutable pc : int64;
    mutable instr_bits : int64;
    mutable opcode : opcode;
    mutable src_operand_1 : int64;
    mutable src_operand_2 : int64;
    mutable dest_operand : int64;
    mutable dest_reg : int;
    mutable effective_addr : int64;
    mutable alu_out : int64;
    mutable next_pc : int64;
  }

  let create () =
    {
      pc = 0L;
      instr_bits = 0L;
      opcode = Illegal;
      src_operand_1 = 0L;
      src_operand_2 = 0L;
      dest_operand = 0L;
      dest_reg = 31;
      effective_addr = 0L;
      alu_out = 0L;
      next_pc = 0L;
    }
end

let field enc lo len =
  Int64.to_int (Semir.Value.enc_bits enc ~lo ~len ~signed:false)

let sfield enc lo len = Semir.Value.enc_bits enc ~lo ~len ~signed:true

(* ------------------------------------------------------------------ *)
(* Highest-detail interface functions: each step of instruction        *)
(* execution is a separate call, all information passed explicitly     *)
(* (the reference-parameter style of Fig. 4).                          *)
(* ------------------------------------------------------------------ *)

let fetch_instruction (st : State.t) ~pc = Memory.read st.mem ~addr:pc ~width:4

let decode_instruction instr_bits : opcode =
  match field instr_bits 26 6 with
  | 0x10 -> (
    match field instr_bits 0 11 with
    | 0 -> Add
    | 1 -> Sub
    | 2 -> Mul
    | 3 -> Cmplt
    | _ -> Illegal)
  | 0x11 -> Addi
  | 0x12 -> Ldq
  | 0x13 -> Stq
  | 0x14 -> Beqz
  | 0x15 -> Br
  | 0x16 -> Sys
  | _ -> Illegal

let read_src_operand_1 (st : State.t) instr_bits =
  Regfile.read st.regs ~cls:0 ~idx:(field instr_bits 21 5)

let read_src_operand_2 (st : State.t) opcode instr_bits =
  match opcode with
  | Add | Sub | Mul | Cmplt | Stq -> Regfile.read st.regs ~cls:0 ~idx:(field instr_bits 16 5)
  | Addi | Ldq | Beqz | Br | Sys | Illegal -> 0L

let decode_dest_reg opcode instr_bits =
  match opcode with
  | Add | Sub | Mul | Cmplt -> field instr_bits 11 5
  | Addi | Ldq -> field instr_bits 16 5
  | Stq | Beqz | Br | Sys | Illegal -> 31

let compute_effective_addr opcode ~src_operand_1 ~instr_bits =
  match opcode with
  | Ldq | Stq -> Int64.add src_operand_1 (sfield instr_bits 0 16)
  | Add | Sub | Mul | Cmplt | Addi | Beqz | Br | Sys | Illegal -> 0L

let evaluate_alu opcode ~pc ~instr_bits ~src_operand_1 ~src_operand_2 =
  (* returns (alu_out, next_pc) *)
  let fallthrough = Int64.add pc 4L in
  match opcode with
  | Add -> (Int64.add src_operand_1 src_operand_2, fallthrough)
  | Sub -> (Int64.sub src_operand_1 src_operand_2, fallthrough)
  | Mul -> (Int64.mul src_operand_1 src_operand_2, fallthrough)
  | Cmplt ->
    ((if Int64.compare src_operand_1 src_operand_2 < 0 then 1L else 0L), fallthrough)
  | Addi -> (Int64.add src_operand_1 (sfield instr_bits 0 16), fallthrough)
  | Beqz ->
    ( 0L,
      if Int64.equal src_operand_1 0L then
        Int64.add fallthrough (Int64.shift_left (sfield instr_bits 0 16) 2)
      else fallthrough )
  | Br -> (0L, Int64.add fallthrough (Int64.shift_left (sfield instr_bits 0 26) 2))
  | Ldq | Stq | Sys | Illegal -> (0L, fallthrough)

let do_load (st : State.t) opcode ~effective_addr =
  match opcode with
  | Ldq -> Memory.read st.mem ~addr:effective_addr ~width:8
  | _ -> 0L

let do_store (st : State.t) opcode ~effective_addr ~src_operand_2 =
  match opcode with
  | Stq -> Memory.write st.mem ~addr:effective_addr ~width:8 src_operand_2
  | _ -> ()

let writeback_dest (st : State.t) opcode ~dest_reg ~value =
  match opcode with
  | Add | Sub | Mul | Cmplt | Addi | Ldq ->
    Regfile.write st.regs ~cls:0 ~idx:dest_reg value
  | Stq | Beqz | Br | Sys | Illegal -> ()

let do_exception (st : State.t) opcode ~instr_bits =
  match opcode with
  | Sys -> st.syscall_handler st
  | Illegal -> State.raise_fault st (Fault.Illegal_instruction instr_bits)
  | Add | Sub | Mul | Cmplt | Addi | Ldq | Stq | Beqz | Br -> ()

(* ------------------------------------------------------------------ *)
(* Fig. 3: one call per instruction, high informational detail — every *)
(* value is stored into the dynamic-instruction structure.             *)
(* ------------------------------------------------------------------ *)

let do_in_one (st : State.t) (di : Fig2.dynamic_instr) =
  di.pc <- st.pc;
  di.instr_bits <- fetch_instruction st ~pc:di.pc;
  di.opcode <- decode_instruction di.instr_bits;
  di.src_operand_1 <- read_src_operand_1 st di.instr_bits;
  di.src_operand_2 <- read_src_operand_2 st di.opcode di.instr_bits;
  di.dest_reg <- decode_dest_reg di.opcode di.instr_bits;
  di.effective_addr <-
    compute_effective_addr di.opcode ~src_operand_1:di.src_operand_1
      ~instr_bits:di.instr_bits;
  let alu_out, next_pc =
    evaluate_alu di.opcode ~pc:di.pc ~instr_bits:di.instr_bits
      ~src_operand_1:di.src_operand_1 ~src_operand_2:di.src_operand_2
  in
  di.alu_out <- alu_out;
  di.next_pc <- next_pc;
  let loaded = do_load st di.opcode ~effective_addr:di.effective_addr in
  di.dest_operand <- (match di.opcode with Ldq -> loaded | _ -> di.alu_out);
  writeback_dest st di.opcode ~dest_reg:di.dest_reg ~value:di.dest_operand;
  do_store st di.opcode ~effective_addr:di.effective_addr
    ~src_operand_2:di.src_operand_2;
  do_exception st di.opcode ~instr_bits:di.instr_bits;
  if not st.halted then begin
    st.pc <- di.next_pc;
    st.instr_count <- Int64.add st.instr_count 1L
  end

(* ------------------------------------------------------------------ *)
(* Fig. 4: the lower-informational-detail derivation — the effective   *)
(* address and opcode live in locals and are never reported.           *)
(* ------------------------------------------------------------------ *)

type min_di = {
  mutable m_pc : int64;
  mutable m_instr_bits : int64;
  mutable m_next_pc : int64;
}

let min_di () = { m_pc = 0L; m_instr_bits = 0L; m_next_pc = 0L }

let do_in_one_less_info (st : State.t) (di : min_di) =
  di.m_pc <- st.pc;
  di.m_instr_bits <- fetch_instruction st ~pc:di.m_pc;
  (* locals: not part of the interface *)
  let opcode = decode_instruction di.m_instr_bits in
  let src1 = read_src_operand_1 st di.m_instr_bits in
  let src2 = read_src_operand_2 st opcode di.m_instr_bits in
  let dest_reg = decode_dest_reg opcode di.m_instr_bits in
  let effective_addr =
    compute_effective_addr opcode ~src_operand_1:src1 ~instr_bits:di.m_instr_bits
  in
  let alu_out, next_pc =
    evaluate_alu opcode ~pc:di.m_pc ~instr_bits:di.m_instr_bits
      ~src_operand_1:src1 ~src_operand_2:src2
  in
  di.m_next_pc <- next_pc;
  let value =
    match opcode with Ldq -> do_load st opcode ~effective_addr | _ -> alu_out
  in
  writeback_dest st opcode ~dest_reg ~value;
  do_store st opcode ~effective_addr ~src_operand_2:src2;
  do_exception st opcode ~instr_bits:di.m_instr_bits;
  if not st.halted then begin
    st.pc <- di.m_next_pc;
    st.instr_count <- Int64.add st.instr_count 1L
  end

(** Fresh machine with the demo ISA's register layout. *)
let make_machine () =
  State.create ~endian:Memory.Little
    [ { Regfile.cname = "GPR"; count = 32; width = 64; hardwired_zero = Some 31 } ]
