lib/manual/manual_sim.ml: Fault Int64 Machine Memory Regfile Semir State
