lib/isa_ppc/ppc.ml: Lis Specsim
