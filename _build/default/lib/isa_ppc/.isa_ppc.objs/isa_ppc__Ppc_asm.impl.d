lib/isa_ppc/ppc_asm.ml: Int32 Int64 List Printf Vir
