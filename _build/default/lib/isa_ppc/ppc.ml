(** PowerPC (32-bit user-mode integer subset) LIS description.

    Big-endian, 32-bit registers (the register class width masks writes).
    The condition register is modelled as one 32-bit register whose eight
    4-bit fields are updated by compares and record (Rc) forms; LR and CTR
    live in a small SPR class. BO/BI conditional branches implement the
    full decrement-CTR semantics, so bdnz loops work.

    Simplifications (documented in DESIGN.md): XER carry/overflow (CA, OV,
    SO) are not modelled — OE forms execute like their base forms and
    record forms always set the SO bit to zero; division by zero yields 0
    rather than an undefined value. *)

let isa_text =
  {|
// ===================================================================
// PowerPC 32-bit user-mode integer instruction set
// ===================================================================
isa "ppc" {
  endian big;
  wordsize 32;
  instrsize 4;
  decodekey 26 6;
}

regclass GPR 32 width 32;
regclass CR 1 width 32;
// SPR: 0 = LR, 1 = CTR, 2 = XER
regclass SPR 3 width 32;

field effective_addr : u64 decode;
field branch_target : u64 decode;
field branch_taken : u64 decode;
field alu_out : u64;
field cr_field : u64;
field rot_mask : u64;

sequence fetch, decode, read_operands, address, evaluate, memory, writeback, exception;

// ---------------- instruction classes -------------------------------
// D-form arithmetic: rD <- f(rA, imm)
class d_arith {
  operand rd : GPR[bits(21,5)] write;
  operand ra : GPR[bits(16,5)] read;
}

// XO-form arithmetic: rD <- f(rA, rB); OE is ignored, Rc handled by
// the record class.
class xo_arith {
  operand rd : GPR[bits(21,5)] write;
  operand ra : GPR[bits(16,5)] read;
  operand rb : GPR[bits(11,5)] read;
}

// X-form logical: rA <- f(rS, rB)  (source and destination swapped!)
class x_logical {
  operand rs : GPR[bits(21,5)] read;
  operand ra_dest : GPR[bits(16,5)] write;
  operand rb : GPR[bits(11,5)] read;
}

class x_logical_2op {
  operand rs : GPR[bits(21,5)] read;
  operand ra_dest : GPR[bits(16,5)] write;
}

// Record forms: if Rc (bit 0) is set, CR0 is updated from the result.
class rc_record {
  action memory {
    if (bits(0,1)) {
      cr_field = (((alu_out >> 31) & 1) << 3)
               | ((((alu_out >> 31) & 1) == 0 && alu_out != 0) << 2)
               | ((alu_out == 0) << 1);
      reg.CR[0] = (reg.CR[0] & ~(0xF << 28)) | (cr_field << 28);
    }
  }
}

// D-form memory: EA = (rA|0) + sext(d)
class mem_d_load {
  operand rd : GPR[bits(21,5)] write;
  operand ra : GPR[bits(16,5)] read;
  action address {
    effective_addr = ((ra_id == 0 ? 0 : ra) + sbits(0,16)) & 0xFFFFFFFF;
  }
}

class mem_d_store {
  operand rs : GPR[bits(21,5)] read;
  operand ra : GPR[bits(16,5)] read;
  action address {
    effective_addr = ((ra_id == 0 ? 0 : ra) + sbits(0,16)) & 0xFFFFFFFF;
  }
}

// X-form memory: EA = (rA|0) + rB
class mem_x_load {
  operand rd : GPR[bits(21,5)] write;
  operand ra : GPR[bits(16,5)] read;
  operand rb : GPR[bits(11,5)] read;
  action address {
    effective_addr = ((ra_id == 0 ? 0 : ra) + rb) & 0xFFFFFFFF;
  }
}

class mem_x_store {
  operand rs : GPR[bits(21,5)] read;
  operand ra : GPR[bits(16,5)] read;
  operand rb : GPR[bits(11,5)] read;
  action address {
    effective_addr = ((ra_id == 0 ? 0 : ra) + rb) & 0xFFFFFFFF;
  }
}

// ---------------- D-form arithmetic ---------------------------------
instr ADDI : d_arith match 0x38000000 mask 0xFC000000 {
  action evaluate { alu_out = ((ra_id == 0 ? 0 : ra) + sbits(0,16)) & 0xFFFFFFFF; rd = alu_out; }
}
instr ADDIS : d_arith match 0x3C000000 mask 0xFC000000 {
  action evaluate { alu_out = ((ra_id == 0 ? 0 : ra) + (sbits(0,16) << 16)) & 0xFFFFFFFF; rd = alu_out; }
}
instr MULLI : d_arith match 0x1C000000 mask 0xFC000000 {
  action evaluate { alu_out = (ra * sbits(0,16)) & 0xFFFFFFFF; rd = alu_out; }
}
instr SUBFIC : d_arith match 0x20000000 mask 0xFC000000 {
  action evaluate { alu_out = (sbits(0,16) - ra) & 0xFFFFFFFF; rd = alu_out; }
}
instr ADDIC : d_arith match 0x30000000 mask 0xFC000000 {
  action evaluate { alu_out = (ra + sbits(0,16)) & 0xFFFFFFFF; rd = alu_out; }
}

// D-form logical (note rS -> rA direction); andi./andis. always record.
instr ANDI_REC : x_logical_2op match 0x70000000 mask 0xFC000000 {
  action evaluate {
    alu_out = rs & bits(0,16);
    ra_dest = alu_out;
    cr_field = (((alu_out >> 31) & 1) << 3)
             | ((((alu_out >> 31) & 1) == 0 && alu_out != 0) << 2)
             | ((alu_out == 0) << 1);
    reg.CR[0] = (reg.CR[0] & ~(0xF << 28)) | (cr_field << 28);
  }
}
instr ANDIS_REC : x_logical_2op match 0x74000000 mask 0xFC000000 {
  action evaluate {
    alu_out = rs & (bits(0,16) << 16);
    ra_dest = alu_out;
    cr_field = (((alu_out >> 31) & 1) << 3)
             | ((((alu_out >> 31) & 1) == 0 && alu_out != 0) << 2)
             | ((alu_out == 0) << 1);
    reg.CR[0] = (reg.CR[0] & ~(0xF << 28)) | (cr_field << 28);
  }
}
instr ORI : x_logical_2op match 0x60000000 mask 0xFC000000 {
  action evaluate { alu_out = rs | bits(0,16); ra_dest = alu_out; }
}
instr ORIS : x_logical_2op match 0x64000000 mask 0xFC000000 {
  action evaluate { alu_out = rs | (bits(0,16) << 16); ra_dest = alu_out; }
}
instr XORI : x_logical_2op match 0x68000000 mask 0xFC000000 {
  action evaluate { alu_out = rs ^ bits(0,16); ra_dest = alu_out; }
}
instr XORIS : x_logical_2op match 0x6C000000 mask 0xFC000000 {
  action evaluate { alu_out = rs ^ (bits(0,16) << 16); ra_dest = alu_out; }
}

// ---------------- compares ------------------------------------------
instr CMPI match 0x2C000000 mask 0xFC000000 {
  operand ra : GPR[bits(16,5)] read;
  action evaluate {
    cr_field = sext(ra,32) < sbits(0,16) ? 8
             : sext(ra,32) > sbits(0,16) ? 4 : 2;
    reg.CR[0] = (reg.CR[0] & ~(0xF << ((7 - bits(23,3)) << 2)))
              | (cr_field << ((7 - bits(23,3)) << 2));
  }
}
instr CMPLI match 0x28000000 mask 0xFC000000 {
  operand ra : GPR[bits(16,5)] read;
  action evaluate {
    cr_field = ltu(ra, bits(0,16)) ? 8
             : gtu(ra, bits(0,16)) ? 4 : 2;
    reg.CR[0] = (reg.CR[0] & ~(0xF << ((7 - bits(23,3)) << 2)))
              | (cr_field << ((7 - bits(23,3)) << 2));
  }
}
instr CMP match 0x7C000000 mask 0xFC0007FE {
  operand ra : GPR[bits(16,5)] read;
  operand rb : GPR[bits(11,5)] read;
  action evaluate {
    cr_field = sext(ra,32) < sext(rb,32) ? 8
             : sext(ra,32) > sext(rb,32) ? 4 : 2;
    reg.CR[0] = (reg.CR[0] & ~(0xF << ((7 - bits(23,3)) << 2)))
              | (cr_field << ((7 - bits(23,3)) << 2));
  }
}
instr CMPL match 0x7C000040 mask 0xFC0007FE {
  operand ra : GPR[bits(16,5)] read;
  operand rb : GPR[bits(11,5)] read;
  action evaluate {
    cr_field = ltu(ra, rb) ? 8 : gtu(ra, rb) ? 4 : 2;
    reg.CR[0] = (reg.CR[0] & ~(0xF << ((7 - bits(23,3)) << 2)))
              | (cr_field << ((7 - bits(23,3)) << 2));
  }
}

// ---------------- XO-form arithmetic --------------------------------
instr ADD : xo_arith, rc_record match 0x7C000214 mask 0xFC0003FE {
  action evaluate { alu_out = (ra + rb) & 0xFFFFFFFF; rd = alu_out; }
}
instr SUBF : xo_arith, rc_record match 0x7C000050 mask 0xFC0003FE {
  action evaluate { alu_out = (rb - ra) & 0xFFFFFFFF; rd = alu_out; }
}
instr NEG : rc_record match 0x7C0000D0 mask 0xFC0003FE {
  operand rd : GPR[bits(21,5)] write;
  operand ra : GPR[bits(16,5)] read;
  action evaluate { alu_out = (0 - ra) & 0xFFFFFFFF; rd = alu_out; }
}
instr MULLW : xo_arith, rc_record match 0x7C0001D6 mask 0xFC0003FE {
  action evaluate { alu_out = (ra * rb) & 0xFFFFFFFF; rd = alu_out; }
}
instr MULHW : xo_arith, rc_record match 0x7C000096 mask 0xFC0003FE {
  action evaluate { alu_out = zext(asr(sext(ra,32) * sext(rb,32), 32), 32); rd = alu_out; }
}
instr MULHWU : xo_arith, rc_record match 0x7C000016 mask 0xFC0003FE {
  action evaluate { alu_out = (ra * rb) >> 32; rd = alu_out; }
}
instr DIVW : xo_arith, rc_record match 0x7C0003D6 mask 0xFC0003FE {
  action evaluate { alu_out = zext(sext(ra,32) / sext(rb,32), 32); rd = alu_out; }
}
instr DIVWU : xo_arith, rc_record match 0x7C000396 mask 0xFC0003FE {
  action evaluate { alu_out = udiv(ra, rb); rd = alu_out; }
}

// ---------------- X-form logical -------------------------------------
instr AND : x_logical, rc_record match 0x7C000038 mask 0xFC0007FE {
  action evaluate { alu_out = rs & rb; ra_dest = alu_out; }
}
instr ANDC : x_logical, rc_record match 0x7C000078 mask 0xFC0007FE {
  action evaluate { alu_out = rs & ~rb; ra_dest = alu_out; }
}
instr OR : x_logical, rc_record match 0x7C000378 mask 0xFC0007FE {
  action evaluate { alu_out = rs | rb; ra_dest = alu_out; }
}
instr ORC : x_logical, rc_record match 0x7C000338 mask 0xFC0007FE {
  action evaluate { alu_out = (rs | ~rb) & 0xFFFFFFFF; ra_dest = alu_out; }
}
instr XOR : x_logical, rc_record match 0x7C000278 mask 0xFC0007FE {
  action evaluate { alu_out = rs ^ rb; ra_dest = alu_out; }
}
instr NAND : x_logical, rc_record match 0x7C0003B8 mask 0xFC0007FE {
  action evaluate { alu_out = (~(rs & rb)) & 0xFFFFFFFF; ra_dest = alu_out; }
}
instr NOR : x_logical, rc_record match 0x7C0000F8 mask 0xFC0007FE {
  action evaluate { alu_out = (~(rs | rb)) & 0xFFFFFFFF; ra_dest = alu_out; }
}
instr EQV : x_logical, rc_record match 0x7C000238 mask 0xFC0007FE {
  action evaluate { alu_out = (~(rs ^ rb)) & 0xFFFFFFFF; ra_dest = alu_out; }
}
instr EXTSB : x_logical_2op, rc_record match 0x7C000774 mask 0xFC0007FE {
  action evaluate { alu_out = zext(sext(rs, 8), 32); ra_dest = alu_out; }
}
instr EXTSH : x_logical_2op, rc_record match 0x7C000734 mask 0xFC0007FE {
  action evaluate { alu_out = zext(sext(rs, 16), 32); ra_dest = alu_out; }
}
instr CNTLZW : x_logical_2op, rc_record match 0x7C000034 mask 0xFC0007FE {
  action evaluate { alu_out = rs == 0 ? 32 : clz(rs) - 32; ra_dest = alu_out; }
}

// ---------------- shifts ---------------------------------------------
instr SLW : x_logical, rc_record match 0x7C000030 mask 0xFC0007FE {
  action evaluate {
    alu_out = (rb & 0x20) ? 0 : ((rs << (rb & 0x1F)) & 0xFFFFFFFF);
    ra_dest = alu_out;
  }
}
instr SRW : x_logical, rc_record match 0x7C000430 mask 0xFC0007FE {
  action evaluate {
    alu_out = (rb & 0x20) ? 0 : (rs >> (rb & 0x1F));
    ra_dest = alu_out;
  }
}
instr SRAW : x_logical, rc_record match 0x7C000630 mask 0xFC0007FE {
  action evaluate {
    alu_out = zext(asr(sext(rs,32), (rb & 0x20) ? 63 : (rb & 0x1F)), 32);
    ra_dest = alu_out;
  }
}
instr SRAWI : x_logical_2op, rc_record match 0x7C000670 mask 0xFC0007FE {
  action evaluate {
    alu_out = zext(asr(sext(rs,32), bits(11,5)), 32);
    ra_dest = alu_out;
  }
}

// rlwinm: rotate left word immediate then AND with mask(MB,ME)
instr RLWINM : x_logical_2op, rc_record match 0x54000000 mask 0xFC000000 {
  action evaluate {
    rot_mask = bits(6,5) <= bits(1,5)
      ? ((0xFFFFFFFF >> bits(6,5)) & ((0xFFFFFFFF << (31 - bits(1,5))) & 0xFFFFFFFF))
      : ((0xFFFFFFFF >> bits(6,5)) | ((0xFFFFFFFF << (31 - bits(1,5))) & 0xFFFFFFFF));
    alu_out = (((rs << bits(11,5)) | (rs >> (32 - bits(11,5)))) & 0xFFFFFFFF) & rot_mask;
    ra_dest = alu_out;
  }
}

// rlwimi: rotate left then insert under mask (destination partially kept)
instr RLWIMI : rc_record match 0x50000000 mask 0xFC000000 {
  operand rs : GPR[bits(21,5)] read;
  operand ra_dest : GPR[bits(16,5)] read write;
  action evaluate {
    rot_mask = bits(6,5) <= bits(1,5)
      ? ((0xFFFFFFFF >> bits(6,5)) & ((0xFFFFFFFF << (31 - bits(1,5))) & 0xFFFFFFFF))
      : ((0xFFFFFFFF >> bits(6,5)) | ((0xFFFFFFFF << (31 - bits(1,5))) & 0xFFFFFFFF));
    alu_out = ((((rs << bits(11,5)) | (rs >> (32 - bits(11,5)))) & 0xFFFFFFFF) & rot_mask)
            | (ra_dest & ~rot_mask);
    ra_dest = alu_out;
  }
}

// rlwnm: rotate left by register then AND with mask
instr RLWNM : x_logical, rc_record match 0x5C000000 mask 0xFC000000 {
  action evaluate {
    rot_mask = bits(6,5) <= bits(1,5)
      ? ((0xFFFFFFFF >> bits(6,5)) & ((0xFFFFFFFF << (31 - bits(1,5))) & 0xFFFFFFFF))
      : ((0xFFFFFFFF >> bits(6,5)) | ((0xFFFFFFFF << (31 - bits(1,5))) & 0xFFFFFFFF));
    alu_out = (((rs << (rb & 0x1F)) | (rs >> (32 - (rb & 0x1F)))) & 0xFFFFFFFF) & rot_mask;
    ra_dest = alu_out;
  }
}

// ---------------- condition-register logic ----------------------------
instr CRAND match 0x4C000202 mask 0xFC0007FE {
  action evaluate {
    reg.CR[0] = (reg.CR[0] & ~(1 << (31 - bits(21,5))))
              | ((((reg.CR[0] >> (31 - bits(16,5))) & 1)
                 & ((reg.CR[0] >> (31 - bits(11,5))) & 1)) << (31 - bits(21,5)));
  }
}
instr CROR match 0x4C000382 mask 0xFC0007FE {
  action evaluate {
    reg.CR[0] = (reg.CR[0] & ~(1 << (31 - bits(21,5))))
              | ((((reg.CR[0] >> (31 - bits(16,5))) & 1)
                 | ((reg.CR[0] >> (31 - bits(11,5))) & 1)) << (31 - bits(21,5)));
  }
}
instr CRXOR match 0x4C000182 mask 0xFC0007FE {
  action evaluate {
    reg.CR[0] = (reg.CR[0] & ~(1 << (31 - bits(21,5))))
              | ((((reg.CR[0] >> (31 - bits(16,5))) & 1)
                 ^ ((reg.CR[0] >> (31 - bits(11,5))) & 1)) << (31 - bits(21,5)));
  }
}
instr CRNOR match 0x4C000042 mask 0xFC0007FE {
  action evaluate {
    reg.CR[0] = (reg.CR[0] & ~(1 << (31 - bits(21,5))))
              | (((1 - (((reg.CR[0] >> (31 - bits(16,5))) & 1)
                       | ((reg.CR[0] >> (31 - bits(11,5))) & 1)))
                  & 1) << (31 - bits(21,5)));
  }
}

// mcrf: copy one CR field to another
instr MCRF match 0x4C000000 mask 0xFC0007FE {
  action evaluate {
    cr_field = (reg.CR[0] >> ((7 - bits(18,3)) << 2)) & 0xF;
    reg.CR[0] = (reg.CR[0] & ~(0xF << ((7 - bits(23,3)) << 2)))
              | (cr_field << ((7 - bits(23,3)) << 2));
  }
}

// ---------------- memory ---------------------------------------------
instr LWZ : mem_d_load match 0x80000000 mask 0xFC000000 {
  action memory { rd = load.u32(effective_addr); }
}
instr LBZ : mem_d_load match 0x88000000 mask 0xFC000000 {
  action memory { rd = load.u8(effective_addr); }
}
instr LHZ : mem_d_load match 0xA0000000 mask 0xFC000000 {
  action memory { rd = load.u16(effective_addr); }
}
instr LHA : mem_d_load match 0xA8000000 mask 0xFC000000 {
  action memory { rd = zext(load.s16(effective_addr), 32); }
}
instr STW : mem_d_store match 0x90000000 mask 0xFC000000 {
  action memory { store.u32(effective_addr, rs); }
}
instr STB : mem_d_store match 0x98000000 mask 0xFC000000 {
  action memory { store.u8(effective_addr, rs); }
}
instr STH : mem_d_store match 0xB0000000 mask 0xFC000000 {
  action memory { store.u16(effective_addr, rs); }
}
instr LWZX : mem_x_load match 0x7C00002E mask 0xFC0007FE {
  action memory { rd = load.u32(effective_addr); }
}
instr LBZX : mem_x_load match 0x7C0000AE mask 0xFC0007FE {
  action memory { rd = load.u8(effective_addr); }
}
instr STWX : mem_x_store match 0x7C00012E mask 0xFC0007FE {
  action memory { store.u32(effective_addr, rs); }
}
instr STBX : mem_x_store match 0x7C0001AE mask 0xFC0007FE {
  action memory { store.u8(effective_addr, rs); }
}
instr LHZX : mem_x_load match 0x7C00022E mask 0xFC0007FE {
  action memory { rd = load.u16(effective_addr); }
}
instr LHAX : mem_x_load match 0x7C0002AE mask 0xFC0007FE {
  action memory { rd = zext(load.s16(effective_addr), 32); }
}
instr STHX : mem_x_store match 0x7C00032E mask 0xFC0007FE {
  action memory { store.u16(effective_addr, rs); }
}

// ---------------- branches -------------------------------------------
instr B match 0x48000000 mask 0xFC000000 {
  action address {
    branch_target = (bits(1,1) ? (sbits(2,24) << 2) : pc + (sbits(2,24) << 2)) & 0xFFFFFFFF;
  }
  action evaluate {
    branch_taken = 1;
    if (bits(0,1)) { reg.SPR[0] = (pc + 4) & 0xFFFFFFFF; }
    next_pc = branch_target;
  }
}

// Conditional branch: full BO/BI semantics including CTR decrement.
instr BC match 0x40000000 mask 0xFC000000 {
  action address {
    branch_target = (bits(1,1) ? (sbits(2,14) << 2) : pc + (sbits(2,14) << 2)) & 0xFFFFFFFF;
  }
  action evaluate {
    if (bits(23,1) == 0) { reg.SPR[1] = (reg.SPR[1] - 1) & 0xFFFFFFFF; }
    branch_taken =
      (bits(23,1) || ((reg.SPR[1] != 0) ^ bits(22,1)))
      && (bits(25,1) || (((reg.CR[0] >> (31 - bits(16,5))) & 1) == bits(24,1)));
    if (bits(0,1)) { reg.SPR[0] = (pc + 4) & 0xFFFFFFFF; }
    if (branch_taken) { next_pc = branch_target; }
  }
}

instr BCLR match 0x4C000020 mask 0xFC0007FE {
  action evaluate {
    branch_target = reg.SPR[0] & ~3;
    if (bits(23,1) == 0) { reg.SPR[1] = (reg.SPR[1] - 1) & 0xFFFFFFFF; }
    branch_taken =
      (bits(23,1) || ((reg.SPR[1] != 0) ^ bits(22,1)))
      && (bits(25,1) || (((reg.CR[0] >> (31 - bits(16,5))) & 1) == bits(24,1)));
    if (bits(0,1)) { reg.SPR[0] = (pc + 4) & 0xFFFFFFFF; }
    if (branch_taken) { next_pc = branch_target; }
  }
}

instr BCCTR match 0x4C000420 mask 0xFC0007FE {
  action evaluate {
    branch_target = reg.SPR[1] & ~3;
    branch_taken =
      bits(25,1) || (((reg.CR[0] >> (31 - bits(16,5))) & 1) == bits(24,1));
    if (bits(0,1)) { reg.SPR[0] = (pc + 4) & 0xFFFFFFFF; }
    if (branch_taken) { next_pc = branch_target; }
  }
}

// ---------------- special registers ----------------------------------
instr MFSPR match 0x7C0002A6 mask 0xFC0007FE {
  operand rd : GPR[bits(21,5)] write;
  action evaluate {
    alu_out = (bits(16,5) | (bits(11,5) << 5)) == 8 ? reg.SPR[0]
            : (bits(16,5) | (bits(11,5) << 5)) == 9 ? reg.SPR[1]
            : (bits(16,5) | (bits(11,5) << 5)) == 1 ? reg.SPR[2]
            : 0;
    rd = alu_out;
  }
}
instr MTSPR match 0x7C0003A6 mask 0xFC0007FE {
  operand rs : GPR[bits(21,5)] read;
  action evaluate {
    if ((bits(16,5) | (bits(11,5) << 5)) == 8) { reg.SPR[0] = rs; }
    if ((bits(16,5) | (bits(11,5) << 5)) == 9) { reg.SPR[1] = rs; }
    if ((bits(16,5) | (bits(11,5) << 5)) == 1) { reg.SPR[2] = rs; }
  }
}
instr MFCR match 0x7C000026 mask 0xFC0007FE {
  operand rd : GPR[bits(21,5)] write;
  action evaluate { rd = reg.CR[0]; }
}

// ---------------- system call ----------------------------------------
instr SC match 0x44000002 mask 0xFC000002 {
  action exception { fault illegal; }
}
|}

let os_text =
  {|
// OS emulation for PowerPC: conventional sc ABI — number in r0,
// arguments in r3-r5, result in r3.
abi {
  nr = GPR[0];
  arg0 = GPR[3];
  arg1 = GPR[4];
  arg2 = GPR[5];
  ret = GPR[3];
}

override SC action exception {
  syscall;
}
|}

let buildsets_text = Specsim.Detail.canonical_buildset_file ()

let sources : Lis.Ast.source list =
  [
    { src_role = Lis.Ast.Isa_description; src_name = "ppc.lis"; src_text = isa_text };
    { src_role = Lis.Ast.Os_support; src_name = "ppc_os.lis"; src_text = os_text };
    {
      src_role = Lis.Ast.Buildset_file;
      src_name = "ppc_buildsets.lis";
      src_text = buildsets_text;
    };
  ]

let spec = lazy (Lis.Sema.load sources)
