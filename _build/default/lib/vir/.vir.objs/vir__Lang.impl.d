lib/vir/lang.ml: Array Buffer Char Format Hashtbl Int32 List Printf String
