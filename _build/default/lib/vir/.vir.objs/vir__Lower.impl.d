lib/vir/lower.ml: Hashtbl Int64 Lang List
