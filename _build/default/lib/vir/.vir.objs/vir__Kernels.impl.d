lib/vir/kernels.ml: Int32 Lang
