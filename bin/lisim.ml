(** lisim — command-line front end for the LIS toolchain.

    - [lisim list] shows the built-in ISAs, their buildsets and kernels.
    - [lisim check FILES...] parses and analyzes LIS description files.
    - [lisim emit] prints the synthesized OCaml for one interface.
    - [lisim run] executes a benchmark kernel through an interface
      (watchdog-guarded: budget, wall clock and spin detection);
      [--stats] compiles instrumentation in, [--trace-out] exports the
      event ring (JSONL or Perfetto-loadable Chrome trace JSON).
    - [lisim stats] runs the full instrumented profile and prints the
      counter/histogram table.
    - [lisim profile] runs a kernel through a profile-only interface and
      prints regions ranked by decaying hotness; [--flame-out] exports a
      speedscope flame view of the region transition graph.
    - [lisim trace] prints the interface-visible information per
      instruction (text, JSONL or Chrome trace format).
    - [lisim validate] runs the rotating-interface validation (§V-D).
    - [lisim inject] runs a deterministic fault-injection campaign and
      reports detection coverage, latency and recovery statistics.
    - [lisim fuzz] runs the differential conformance fuzzer: spec-derived
      programs through all twelve interfaces in lockstep against the
      Step/All reference, with shrinking reproducers on divergence.

    Structured simulator errors ({!Machine.Sim_error}) are rendered as
    diagnostics with a per-component exit code, never as backtraces. *)

open Cmdliner

let isa_arg =
  let doc = "Instruction set: alpha, arm, ppc or riscv." in
  Arg.(value & opt string "alpha" & info [ "isa" ] ~docv:"ISA" ~doc)

let buildset_arg =
  let doc =
    "Interface buildset, e.g. one_all, block_min, step_all_spec. Canonical \
     names are <block|one|step>_<min|decode|all>[_spec]."
  in
  Arg.(value & opt string "one_all" & info [ "buildset"; "b" ] ~docv:"NAME" ~doc)

let kernel_arg =
  let doc =
    "Benchmark kernel: vec_sum, list_chase, matmul, sort, hash_loop, str_ops \
     (plus pathological watchdog workloads: spin, count_forever)."
  in
  Arg.(value & opt string "sort" & info [ "kernel"; "k" ] ~docv:"KERNEL" ~doc)

(* Exact kernel name, or a unique prefix ("hash" resolves to hash_loop). *)
let find_kernel name =
  let all = Vir.Kernels.bench_suite @ Vir.Kernels.pathological in
  match
    List.find_opt (fun (k : Vir.Kernels.sized) -> String.equal k.kname name) all
  with
  | Some k -> k
  | None -> (
    let is_prefix (k : Vir.Kernels.sized) =
      String.length name < String.length k.kname
      && String.equal (String.sub k.kname 0 (String.length name)) name
    in
    match List.filter is_prefix all with
    | [ k ] -> k
    | [] ->
      Machine.Sim_error.raisef ~component:"cli"
        ~context:[ ("kernel", name) ]
        "unknown kernel"
    | ks ->
      Machine.Sim_error.raisef ~component:"cli"
        ~context:
          [ ("kernel", name);
            ( "candidates",
              String.concat ", "
                (List.map (fun (k : Vir.Kernels.sized) -> k.kname) ks) ) ]
        "ambiguous kernel prefix")

(* ---------------- observability helpers -------------------------- *)

let stats_flag =
  Arg.(
    value & flag
    & info [ "stats" ]
        ~doc:
          "Compile instrumentation into the run and print the \
           counter/histogram table afterwards (see 'lisim stats').")

let format_arg ~default =
  let doc =
    "Trace output format: $(b,text), $(b,jsonl) (one JSON object per \
     event) or $(b,chrome) (trace-event JSON, loadable in Perfetto / \
     chrome://tracing)."
  in
  Arg.(
    value
    & opt (enum [ ("text", "text"); ("jsonl", "jsonl"); ("chrome", "chrome") ]) default
    & info [ "format" ] ~docv:"FMT" ~doc)

let trace_cap_arg =
  Arg.(
    value
    & opt (some int) None
    & info [ "trace-cap" ] ~docv:"N"
        ~doc:
          "Capacity of the trace event ring, in events (default 65536 for \
           'run --trace-out'; the traced instruction count for 'trace'). \
           Most recent events win when the ring wraps.")

let validate_trace_cap = function
  | Some n when n <= 0 ->
    Machine.Sim_error.raisef ~component:"cli"
      ~context:[ ("trace-cap", string_of_int n) ]
      "--trace-cap must be positive"
  | _ -> ()

let metrics_out_arg =
  Arg.(
    value
    & opt (some string) None
    & info [ "metrics-out" ] ~docv:"FILE"
        ~doc:
          "Write periodic metrics snapshots to FILE: a JSONL time series of \
           every registry counter and histogram (plus profiler top-N \
           regions when one is attached), one line per interval, each line \
           flushed durably.")

let metrics_interval_arg =
  Arg.(
    value & opt int 1000
    & info [ "metrics-interval" ] ~docv:"MS"
        ~doc:
          "Wall-clock interval between metrics snapshots in milliseconds \
           (with --metrics-out). 0 snapshots at every opportunity.")

let open_metrics metrics_out ~interval_ms =
  match metrics_out with
  | None -> None
  | Some path ->
    if interval_ms < 0 then
      Machine.Sim_error.raisef ~component:"cli"
        ~context:[ ("metrics-interval", string_of_int interval_ms) ]
        "--metrics-interval must be non-negative";
    Some (Obs.Metrics.open_ ~interval_ms ~path ())

(* Final snapshot + close, with a one-line receipt so scripts can find
   the series. *)
let close_metrics metrics (o : Obs.t) =
  match metrics with
  | None -> ()
  | Some m ->
    Obs.metrics_close m o;
    Printf.printf "wrote %d metrics snapshot(s) to %s\n" (Obs.Metrics.seq m)
      (Obs.Metrics.path m)

let write_out out contents =
  match out with
  | None -> print_string contents
  | Some path ->
    let oc = open_out path in
    output_string oc contents;
    close_out oc

(* ---------------- parallelism ------------------------------------ *)

let jobs_arg =
  Arg.(
    value
    & opt (some int) None
    & info [ "jobs"; "j" ] ~docv:"N"
        ~doc:
          "Campaign parallelism: spread independent cases over N domains. \
           Defaults to the LISIM_JOBS environment variable, then to the \
           host's recommended domain count. $(b,--jobs 1) runs the exact \
           sequential driver; results (quarantined reproducers, merged \
           counter totals) are identical at every N.")

let resolve_jobs jobs =
  let bad what v =
    Machine.Sim_error.raisef ~component:"cli" ~context:[ (what, v) ]
      "%s must be a positive integer" what
  in
  match jobs with
  | Some n -> if n <= 0 then bad "--jobs" (string_of_int n) else n
  | None -> (
    match Sys.getenv_opt "LISIM_JOBS" with
    | Some s -> (
      match int_of_string_opt (String.trim s) with
      | Some n when n > 0 -> n
      | _ -> bad "LISIM_JOBS" s)
    | None -> Domain.recommended_domain_count ())

(** [with_fleet jobs f] — [f (Some pool)] when parallelism was requested,
    [f None] (the untouched sequential path) for [--jobs 1]. *)
let with_fleet jobs f =
  if jobs > 1 then Fleet.with_pool ~jobs (fun fl -> f (Some fl)) else f None

let print_counters (o : Obs.t) =
  Format.printf "%a@?" Obs.Export.pp_snapshot (Obs.snapshot o)

(* Generic one-line-per-event text rendering (run --trace-out). *)
let text_of_events (events : Obs.Ring.event list) =
  let b = Buffer.create 4096 in
  List.iter
    (fun (e : Obs.Ring.event) ->
      Printf.bprintf b "%Ld %8d %-8s %-12s%s\n" e.ts_ns e.dur_ns e.cat e.name
        (String.concat ""
           (List.map
              (fun (k, v) ->
                Printf.sprintf " %s=%s" k
                  (match v with
                  | Obs.Ring.I i -> Printf.sprintf "0x%Lx" i
                  | Obs.Ring.S s -> s
                  | Obs.Ring.F f -> Printf.sprintf "%g" f))
              e.args)))
    events;
  Buffer.contents b

let events_to_string format events =
  match format with
  | "jsonl" -> Obs.Export.jsonl_of_events events
  | "chrome" -> Obs.Export.to_string (Obs.Export.chrome_of_events events) ^ "\n"
  | _ -> text_of_events events

(* Auxiliary profile passes behind [lisim stats] and [run --stats].
   When the primary buildset is not block-semantic, the kernel runs once
   more through a block interface so the block-cache and fused-closure
   counters are live; then a short timing-first checked window drives
   the checker.* and timing.* families. All passes share the primary
   registry (true counters aggregate; gauges are first-registration-wins,
   so the primary interface keeps the shared "core.*" names), making the
   printed table one aggregate profile of the kernel. *)
let profile_aux_passes (o : Obs.t) (t : Workload.target)
    (k : Vir.Kernels.sized) ~buildset ~budget =
  (* counters only — auxiliary passes must not pollute the trace ring *)
  let aux = { o with Obs.ring = None } in
  let spec = Lazy.force t.spec in
  let names = Lis.Spec.buildset_names spec in
  let is_block bs =
    String.length bs >= 5 && String.equal (String.sub bs 0 5) "block"
  in
  (if not (is_block buildset) then
     match List.find_opt is_block names with
     | Some bbs ->
       let lb = Workload.load ~obs:aux t ~buildset:bbs k.program in
       ignore (Specsim.Iface.run_n lb.iface budget)
     | None -> ());
  if List.mem "one_min" names then begin
    let lt = Workload.load t ~buildset:"one_min" k.program in
    let lc = Workload.load t ~buildset:"one_min" k.program in
    ignore
      (Timing.Timingfirst.run ~obs:aux ~timing:lt.iface ~checker:lc.iface
         ~budget:(min budget 50_000) ())
  end;
  (* a short supervised degradation window drives the super.* family *)
  let stats = Super.Supervisor.of_registry o.Obs.reg in
  let session =
    Super.Degrade.create ~stats ~spec ~buildset
      ~load:(fun st -> ignore (Workload.load_image t k.program st))
      ()
  in
  ignore (Super.Degrade.run ~budget:(min budget 20_000) session)

let parse_mutation m =
  match Specsim.Synth.mutation_of_string m with
  | Some m -> m
  | None ->
    Machine.Sim_error.raisef ~component:"cli" ~context:[ ("mutation", m) ]
      "unknown mutation (expected stale-chain, skip-invalidate or stride4)"

(* ---------------- list ------------------------------------------- *)

let list_cmd =
  let run () =
    Printf.printf "ISAs:\n";
    List.iter
      (fun (t : Workload.target) ->
        let spec = Lazy.force t.spec in
        Printf.printf "  %-6s %3d instructions, %d register classes, %s-endian\n"
          t.tname
          (Array.length spec.instrs)
          (Array.length spec.reg_classes)
          (match spec.endian with Machine.Memory.Little -> "little" | Big -> "big");
        Printf.printf "    buildsets: %s\n"
          (String.concat ", " (Lis.Spec.buildset_names spec)))
      Workload.targets;
    Printf.printf "Kernels: %s\n"
      (String.concat ", "
         (List.map (fun (k : Vir.Kernels.sized) -> k.kname) Vir.Kernels.bench_suite));
    0
  in
  Cmd.v (Cmd.info "list" ~doc:"List built-in ISAs, buildsets and kernels.")
    Term.(const run $ const ())

(* ---------------- check ------------------------------------------ *)

let role_of_filename f =
  let base = Filename.basename f in
  let has sub =
    let n = String.length sub in
    let rec go i =
      i + n <= String.length base && (String.sub base i n = sub || go (i + 1))
    in
    go 0
  in
  if has "buildset" then Lis.Ast.Buildset_file
  else if has "os" then Lis.Ast.Os_support
  else Lis.Ast.Isa_description

(* One lintable unit: a name plus the sources that form one spec. *)
let builtin_unit = function
  | "alpha" -> ("alpha", Isa_alpha.Alpha.sources)
  | "arm" -> ("arm", Isa_arm.Arm.sources)
  | "ppc" -> ("ppc", Isa_ppc.Ppc.sources)
  | "riscv" -> ("riscv", Isa_riscv.Riscv.sources)
  | "demo" -> ("demo", Demo_isa.sources)
  | name ->
    Machine.Sim_error.raisef ~component:"cli" ~context:[ ("isa", name) ]
      "unknown built-in ISA (expected alpha, arm, ppc, riscv, demo or all)"

(* Directories expand to the .lis files inside them (sorted), so
   [lisim check examples] lints everything shipped there as one spec. *)
let expand_lis_files paths =
  List.concat_map
    (fun p ->
      if Sys.is_directory p then
        Sys.readdir p |> Array.to_list |> List.sort compare
        |> List.filter (fun f -> Filename.check_suffix f ".lis")
        |> List.map (Filename.concat p)
      else [ p ])
    paths

let read_source f =
  let ic = open_in_bin f in
  let text = really_input_string ic (in_channel_length ic) in
  close_in ic;
  { Lis.Ast.src_role = role_of_filename f; src_name = f; src_text = text }

(* Lint one unit; returns its diagnostics plus the resolved spec (for
   consumers like --suggest-buildset that need more than diagnostics).
   Resolution errors from the accumulating front end become L001
   diagnostics so text and JSON consumers see one uniform stream. *)
let lint_unit ~flags (sources : Lis.Ast.source list) :
    Analysis.Diag.t list * Lis.Spec.t option =
  match Lis.Sema.load_all sources with
  | Error errs ->
    ( List.map
        (fun (span, msg) ->
          Analysis.Diag.make ~code:"L001" ~pass:"sema"
            ~severity:Analysis.Diag.Error span "%s" msg)
        errs,
      None )
  | Ok spec -> (
    match Analysis.Lint.run ~flags spec with
    | Ok diags -> (diags, Some spec)
    | Error msg ->
      Machine.Sim_error.raisef ~component:"cli" "%s" msg)

let check_cmd =
  let files =
    Arg.(
      value & pos_all file []
      & info [] ~docv:"FILES"
          ~doc:
            "LIS description files forming one specification, or \
             directories containing them (roles inferred from names: *os* \
             = OS support, *buildset* = buildsets).")
  in
  let builtin =
    Arg.(
      value
      & opt (some string) None
      & info [ "builtin" ] ~docv:"ISA"
          ~doc:"Lint a built-in description: alpha, arm, ppc, riscv, demo or all.")
  in
  let json =
    Arg.(
      value & flag
      & info [ "json" ]
          ~doc:
            "Emit diagnostics as JSON: an array with one report object \
             per linted specification.")
  in
  let warn_flags =
    Arg.(
      value & opt_all string []
      & info [ "W" ] ~docv:"PASS"
          ~doc:
            "Select analysis passes: $(b,-W) $(i,PASS) enables one, \
             $(b,-Wno-)$(i,PASS) disables one, $(b,-W) $(b,all) / \
             $(b,-Wno-all) everything (processed left to right). Passes: \
             decoder, defuse, deadstate, rollback, width, buildset, \
             effect, visibility, journal, coverage (coverage is off by \
             default).")
  in
  let sarif =
    Arg.(
      value & flag
      & info [ "sarif" ]
          ~doc:
            "Emit diagnostics as a SARIF 2.1.0 document (one run per \
             linted specification) for CI annotation. Takes precedence \
             over --json.")
  in
  let suggest =
    Arg.(
      value & flag
      & info [ "suggest-buildset" ]
          ~doc:
            "Instead of diagnostics, print re-parseable LIS text for \
             every buildset whose visible set can be tightened to what \
             its entrypoint crossings (and, under speculation, its \
             cross-instruction carriers) actually require.")
  in
  let run files builtin json sarif suggest flags =
    try
      let units =
        (match files with
        | [] -> []
        | fs ->
          let expanded = expand_lis_files fs in
          let name =
            match expanded with
            | [ f ] -> Filename.basename f
            | f :: _ -> Filename.basename (Filename.dirname f)
            | [] -> "files"
          in
          [ (name, List.map read_source expanded) ])
        @
        match builtin with
        | None -> []
        | Some "all" -> List.map builtin_unit [ "alpha"; "arm"; "ppc"; "riscv"; "demo" ]
        | Some isa -> [ builtin_unit isa ]
      in
      if units = [] then begin
        prerr_endline "lisim check: nothing to check (give FILES or --builtin)";
        2
      end
      else begin
        let reports =
          List.map
            (fun (name, sources) ->
              let diags, spec = lint_unit ~flags sources in
              (name, diags, spec))
            units
        in
        let pairs = List.map (fun (n, ds, _) -> (n, ds)) reports in
        (if suggest then
           List.iter
             (fun (name, _, spec) ->
               match spec with
               | None ->
                 Printf.printf
                   "// %s: specification did not resolve; fix errors first\n"
                   name
               | Some spec ->
                 let sums = Analysis.Absint.summarize spec in
                 let any = ref false in
                 Array.iter
                   (fun (bs : Lis.Spec.buildset) ->
                     match Analysis.Absint.suggest_buildset spec sums bs with
                     | None -> ()
                     | Some text ->
                       any := true;
                       Printf.printf "// %s: tightened from '%s'\n%s\n" name
                         bs.bs_name text)
                   spec.buildsets;
                 if not !any then
                   Printf.printf "// %s: every buildset is already minimal\n"
                     name)
             reports
         else if sarif then
           print_endline (Analysis.Diag.sarif_report ~units:pairs)
         else if json then begin
           print_string "[";
           List.iteri
             (fun i (name, diags) ->
               if i > 0 then print_string ",";
               print_string
                 (Analysis.Diag.json_report ~unit_name:name diags))
             pairs;
           print_endline "]"
         end
         else
           List.iter
             (fun (name, diags) ->
               List.iter
                 (fun d -> Format.printf "%a@." Analysis.Diag.pp d)
                 diags;
               let e, w, n = Analysis.Diag.counts diags in
               if e + w + n = 0 then Printf.printf "%s: clean\n" name
               else
                 Printf.printf "%s: %d error(s), %d warning(s), %d note(s)\n"
                   name e w n)
             pairs);
        if List.exists (fun (_, ds) -> Analysis.Diag.has_errors ds) pairs
        then 1
        else 0
      end
    with Sys_error e ->
      prerr_endline e;
      1
  in
  Cmd.v
    (Cmd.info "check"
       ~doc:
         "Statically analyze LIS description files (lislint): decoder \
          soundness, def-before-use, dead state, rollback safety, \
          width/constant checks and buildset legality, with stable \
          diagnostic codes. Exits non-zero if any error-severity \
          diagnostic is produced.")
    Term.(const run $ files $ builtin $ json $ sarif $ suggest $ warn_flags)

(* ---------------- emit ------------------------------------------- *)

let emit_cmd =
  let run isa buildset =
    let t = Workload.find_target isa in
    let spec = Lazy.force t.spec in
    print_string (Specsim.Emit.buildset_to_ocaml spec buildset);
    0
  in
  Cmd.v
    (Cmd.info "emit"
       ~doc:"Print the synthesized OCaml source for one interface of a built-in ISA.")
    Term.(const run $ isa_arg $ buildset_arg)

(* ---------------- run -------------------------------------------- *)

let run_cmd =
  let max_instrs =
    Arg.(
      value
      & opt int 1_000_000_000
      & info [ "max-instructions" ] ~docv:"N"
          ~doc:"Watchdog: halt after N retired instructions.")
  in
  let max_seconds =
    Arg.(
      value
      & opt (some float) None
      & info [ "max-seconds" ] ~docv:"S"
          ~doc:"Watchdog: halt after S wall-clock seconds.")
  in
  let trace_out =
    Arg.(
      value
      & opt (some string) None
      & info [ "trace-out" ] ~docv:"FILE"
          ~doc:
            "Buffer per-instruction trace events in the observability ring \
             and write them to FILE at the end of the run (format per \
             --format; most recent events win when the ring wraps).")
  in
  let no_chain =
    Arg.(
      value & flag
      & info [ "no-chain" ]
          ~doc:
            "Disable direct block chaining: every block dispatch probes the \
             block hash table (the pre-translation-cache behaviour, for A/B \
             comparison).")
  in
  let no_site_cache =
    Arg.(
      value & flag
      & info [ "no-site-cache" ]
          ~doc:
            "Disable the shared (instruction, encoding) site cache and the \
             per-site memory fast paths: every block compiles its own sites \
             (the pre-translation-cache behaviour, for A/B comparison).")
  in
  let no_absint =
    Arg.(
      value & flag
      & info [ "no-absint" ]
          ~doc:
            "Disable the synthesis-time abstract interpretation: every \
             store-free verdict degrades to unsafe, so no instruction \
             class gets the non-block memory fast path and no translated \
             block skips its per-site SMC recheck (for A/B comparison).")
  in
  let supervised =
    Arg.(
      value & flag
      & info [ "supervised" ]
          ~doc:
            "Run under the supervised execution runtime: a step_all shadow \
             verifies every slice, and engine misbehaviour demotes the \
             interface down the chain / site-cache / step_all ladder \
             instead of aborting.")
  in
  let mutate_r =
    Arg.(
      value & opt (some string) None
      & info [ "mutate" ] ~docv:"MUTATION"
          ~doc:
            "With --supervised: seed a deliberate engine defect \
             (stale-chain, skip-invalidate or stride4) to exercise the \
             demotion ladder.")
  in
  let run_supervised (t : Workload.target) (k : Vir.Kernels.sized) ~buildset
      ~budget ~deadline ~mutate ~chain ~site_cache (obs : Obs.t option) =
    let spec = Lazy.force t.spec in
    let stats = Option.map (fun (o : Obs.t) -> Super.Supervisor.of_registry o.Obs.reg) obs in
    let oses = ref [] in
    let load st = oses := (st, Workload.load_image t k.program st) :: !oses in
    let session =
      Super.Degrade.create ?obs ?stats ?mutate ~chain ~site_cache ~spec
        ~buildset ~load ()
    in
    let r = Super.Degrade.run ?deadline ~budget session in
    let sst = Super.Degrade.shadow_state session in
    let code =
      match Machine.State.exit_status sst with
      | Some s ->
        let output =
          match List.assq_opt sst !oses with
          | Some os -> Machine.Os_emu.output os
          | None -> ""
        in
        Printf.printf "%s on %s/%s (supervised): exit=%d output=%S\n" k.kname
          t.Workload.tname buildset (s land 0xff) output;
        0
      | None ->
        Printf.printf "%s on %s/%s (supervised): %s%s\n" k.kname
          t.Workload.tname buildset
          (if r.Super.Degrade.r_halted then "halted without exit status"
           else "instruction budget exhausted before halt")
          (match sst.fault with
          | Some f -> " (" ^ Machine.Fault.to_string f ^ ")"
          | None -> "");
        1
    in
    Printf.printf
      "supervision: level=%s demotions=%d replays=%d verified slices=%d \
       instructions=%Ld digest=0x%Lx\n"
      r.Super.Degrade.r_final_level r.Super.Degrade.r_demotions
      r.Super.Degrade.r_replays r.Super.Degrade.r_slices
      r.Super.Degrade.r_instructions r.Super.Degrade.r_digest;
    code
  in
  let run isa buildset kernel max_instructions max_seconds stats trace_out
      trace_cap format no_chain no_site_cache no_absint supervised mutate
      metrics_out metrics_interval =
    let t = Workload.find_target isa in
    let k = find_kernel kernel in
    let mutate = Option.map parse_mutation mutate in
    validate_trace_cap trace_cap;
    let obs =
      if stats || trace_out <> None || metrics_out <> None then
        Some
          (Obs.create ~trace:(trace_out <> None)
             ?ring_capacity:(if trace_out <> None then trace_cap else None)
             ())
      else None
    in
    let metrics = open_metrics metrics_out ~interval_ms:metrics_interval in
    if supervised then begin
      let deadline =
        Option.map (fun s -> Unix.gettimeofday () +. s) max_seconds
      in
      let code =
        run_supervised t k ~buildset ~budget:max_instructions ~deadline ~mutate
          ~chain:(not no_chain) ~site_cache:(not no_site_cache) obs
      in
      (match obs with Some o when stats -> print_counters o | _ -> ());
      (match obs with Some o -> close_metrics metrics o | None -> ());
      code
    end
    else begin
    (match mutate with
    | Some _ ->
      Machine.Sim_error.raisef ~component:"cli"
        "--mutate requires --supervised (a seeded defect without the \
         supervising shadow would just corrupt the run)"
    | None -> ());
    let l =
      Workload.load ~chain:(not no_chain) ~site_cache:(not no_site_cache)
        ~absint:(not no_absint) ?obs t ~buildset k.program
    in
    let on_slice =
      match (metrics, obs) with
      | Some m, Some o -> Some (fun () -> Obs.metrics_tick m o)
      | _ -> None
    in
    let t0 = Unix.gettimeofday () in
    Inject.Watchdog.run_guarded
      ~config:{ max_instructions; max_seconds; deadline = None; check_interval = 4096 }
      ?on_slice l.iface;
    let dt = Unix.gettimeofday () -. t0 in
    let code =
      match Machine.State.exit_status l.iface.st with
      | Some s ->
        Printf.printf "%s on %s/%s: exit=%d output=%S\n" k.kname isa buildset
          (s land 0xff)
          (Machine.Os_emu.output l.os);
        Printf.printf "%Ld instructions in %.3f s (%.2f MIPS)\n"
          l.iface.st.instr_count dt
          (Int64.to_float l.iface.st.instr_count /. dt /. 1e6);
        0
      | None ->
        Printf.printf "%s on %s/%s: halted without exit status%s\n" k.kname isa
          buildset
          (match l.iface.st.fault with
          | Some f -> " (" ^ Machine.Fault.to_string f ^ ")"
          | None -> "");
        1
    in
    (match obs with
    | None -> ()
    | Some o ->
      if stats then begin
        profile_aux_passes o t k ~buildset ~budget:(min max_instructions 200_000);
        print_counters o
      end;
      (match trace_out with
      | None -> ()
      | Some path ->
        let events = Obs.events o in
        write_out (Some path) (events_to_string format events);
        Printf.printf "wrote %d trace events to %s (%s)\n" (List.length events)
          path format);
      close_metrics metrics o);
    code
    end
  in
  Cmd.v
    (Cmd.info "run"
       ~doc:
         "Run a benchmark kernel through one interface (watchdog-guarded). \
          With --stats the interface is synthesized with instrumentation \
          compiled in; with --trace-out the event ring is exported.")
    Term.(
      const run $ isa_arg $ buildset_arg $ kernel_arg $ max_instrs
      $ max_seconds $ stats_flag $ trace_out $ trace_cap_arg
      $ format_arg ~default:"chrome" $ no_chain $ no_site_cache $ no_absint
      $ supervised $ mutate_r $ metrics_out_arg $ metrics_interval_arg)

(* ---------------- profile ----------------------------------------- *)

let profile_cmd =
  let budget =
    Arg.(
      value
      & opt int 5_000_000
      & info [ "budget" ] ~docv:"N"
          ~doc:"Instruction budget (profiling stops here if the kernel has \
                not exited).")
  in
  let top =
    Arg.(
      value & opt int 10
      & info [ "top" ] ~docv:"N" ~doc:"Rows in the hot-region table.")
  in
  let flame_out =
    Arg.(
      value
      & opt (some string) None
      & info [ "flame-out" ] ~docv:"FILE"
          ~doc:
            "Write a speedscope JSON document to FILE: a flame view of the \
             region transition graph plus per-region instruction weights \
             (load at speedscope.app).")
  in
  let regions =
    Arg.(
      value & opt int 64
      & info [ "regions" ] ~docv:"BYTES"
          ~doc:"Region granularity in bytes (a power of two).")
  in
  let half_life =
    Arg.(
      value
      & opt int Obs.Prof.default_half_life
      & info [ "half-life" ] ~docv:"N"
          ~doc:"Hotness half-life in retired instructions: a region's \
                decaying-window score halves every N instructions it does \
                not execute.")
  in
  let run isa buildset kernel budget top flame_out regions half_life =
    let t = Workload.find_target isa in
    let k = find_kernel kernel in
    if regions <= 0 || regions land (regions - 1) <> 0 then
      Machine.Sim_error.raisef ~component:"cli"
        ~context:[ ("regions", string_of_int regions) ]
        "--regions must be a positive power of two";
    if half_life <= 0 then
      Machine.Sim_error.raisef ~component:"cli"
        ~context:[ ("half-life", string_of_int half_life) ]
        "--half-life must be positive";
    let rec log2 v = if v <= 1 then 0 else 1 + log2 (v lsr 1) in
    let prof = Obs.Prof.create ~region_bits:(log2 regions) ~half_life () in
    let o = Obs.profile_only ~prof () in
    (* profile-only context: the interface keeps its chained fast path,
       paying one cached-region attribution per block/retirement *)
    let l = Workload.load ~obs:o t ~buildset k.program in
    let t0 = Unix.gettimeofday () in
    ignore (Specsim.Iface.run_n l.iface budget);
    let dt = Unix.gettimeofday () -. t0 in
    let st = l.iface.st in
    Printf.printf "%s on %s/%s: %Ld instructions in %.3f s (%.2f MIPS)%s\n"
      k.kname isa buildset st.instr_count dt
      (Int64.to_float st.instr_count /. dt /. 1e6)
      (match Machine.State.exit_status st with
      | Some s -> Printf.sprintf ", exit=%d" (s land 0xff)
      | None -> ", budget exhausted");
    Obs.Prof.pp_report ~top Format.std_formatter prof;
    Format.pp_print_flush Format.std_formatter ();
    (match flame_out with
    | None -> ()
    | Some path ->
      write_out (Some path)
        (Obs.Export.to_string
           (Obs.Prof.speedscope
              ~name:(Printf.sprintf "%s on %s/%s" k.kname isa buildset)
              prof)
        ^ "\n");
      Printf.printf "wrote speedscope flame view to %s\n" path);
    0
  in
  Cmd.v
    (Cmd.info "profile"
       ~doc:
         "Profile a kernel's hot regions: run it through a profile-only \
          interface (hot-region attribution compiled in, everything else \
          the seed closures) and print regions ranked by decaying hotness \
          — the signal adaptive tiering consumes. --flame-out exports a \
          speedscope flame view of the region transition graph.")
    Term.(
      const run $ isa_arg $ buildset_arg $ kernel_arg $ budget $ top
      $ flame_out $ regions $ half_life)

(* ---------------- export ------------------------------------------ *)

let export_cmd =
  let dir =
    Arg.(value & opt string "descriptions" & info [ "dir" ] ~docv:"DIR"
           ~doc:"Output directory for the .lis files.")
  in
  let run isa dir =
    let t = Workload.find_target isa in
    let sources =
      match isa with
      | "alpha" -> Isa_alpha.Alpha.sources
      | "arm" -> Isa_arm.Arm.sources
      | "ppc" -> Isa_ppc.Ppc.sources
      | "riscv" -> Isa_riscv.Riscv.sources
      | _ -> failwith "unknown ISA"
    in
    ignore t;
    if not (Sys.file_exists dir) then Unix.mkdir dir 0o755;
    List.iter
      (fun (s : Lis.Ast.source) ->
        let path = Filename.concat dir (Filename.basename s.src_name) in
        let oc = open_out path in
        output_string oc s.src_text;
        close_out oc;
        Printf.printf "wrote %s (%d lines of LIS)\n" path
          (Lis.Count.code_lines s.src_text))
      sources;
    0
  in
  Cmd.v
    (Cmd.info "export"
       ~doc:"Write a built-in ISA's LIS description files to disk (so they \
             can be edited and re-checked with 'lisim check').")
    Term.(const run $ isa_arg $ dir)

(* ---------------- trace ------------------------------------------- *)

let trace_cmd =
  let count =
    Arg.(value & opt int 30 & info [ "n" ] ~docv:"N" ~doc:"Instructions to trace.")
  in
  let out =
    Arg.(
      value
      & opt (some string) None
      & info [ "o"; "out" ] ~docv:"FILE"
          ~doc:"Write the trace to FILE instead of stdout.")
  in
  let run isa buildset kernel n format out trace_cap =
    let t = Workload.find_target isa in
    let k = find_kernel kernel in
    validate_trace_cap trace_cap;
    let l = Workload.load t ~buildset k.program in
    let iface = l.iface in
    let spec = iface.spec in
    (* visible cells, in slot order *)
    let visible =
      List.init (Lis.Spec.n_cells spec) (fun c -> c)
      |> List.filter_map (fun c ->
             let slot = iface.slots.di_slot_of_cell.(c) in
             if slot >= 0 then Some (Lis.Spec.cell_name spec c, slot) else None)
    in
    (* Events go through the observability ring — the same machinery
       behind [run --trace-out] — then render per --format. The first
       two args of every event are the pc and the raw encoding; the rest
       are the interface-visible cells in slot order. *)
    let capacity =
      match trace_cap with Some c -> c | None -> max n 1
    in
    let ring = Obs.Ring.create ~capacity in
    let di = Specsim.Di.create ~info_slots:iface.slots.di_size in
    let st = iface.st in
    let i = ref 0 in
    while (not st.halted) && !i < n do
      let t0 = Obs.Clock.now_ns () in
      iface.run_one di;
      let dur = Obs.Clock.elapsed_ns t0 in
      incr i;
      let name =
        if di.instr_index >= 0 then spec.instrs.(di.instr_index).i_name else "?"
      in
      Obs.Ring.record ring ~ts_ns:t0 ~dur_ns:dur ~name ~cat:"instr"
        ~args:
          (("pc", Obs.Ring.I di.pc)
          :: ("encoding", Obs.Ring.I di.encoding)
          :: List.map
               (fun (cell, slot) -> (cell, Obs.Ring.I (Specsim.Di.get di slot)))
               visible)
    done;
    let events = Obs.Ring.to_list ring in
    let contents =
      match format with
      | "jsonl" | "chrome" -> events_to_string format events
      | _ ->
        (* the historical text table, byte for byte *)
        let b = Buffer.create 4096 in
        Printf.bprintf b "%-10s %-10s %-12s %s\n" "pc" "encoding" "instr"
          (String.concat " " (List.map fst visible));
        List.iter
          (fun (e : Obs.Ring.event) ->
            let pc, enc, cells =
              match e.args with
              | ("pc", Obs.Ring.I pc) :: ("encoding", Obs.Ring.I enc) :: rest ->
                (pc, enc, rest)
              | _ -> (0L, 0L, [])
            in
            Printf.bprintf b "0x%-8Lx 0x%-8Lx %-12s %s\n" pc enc e.name
              (String.concat " "
                 (List.map
                    (fun (_, v) ->
                      match v with
                      | Obs.Ring.I x -> Printf.sprintf "%Lx" x
                      | _ -> "?")
                    cells)))
          events;
        Buffer.contents b
    in
    write_out out contents;
    0
  in
  Cmd.v
    (Cmd.info "trace"
       ~doc:"Trace the first N instructions of a kernel, printing the \
             interface-visible information per instruction (as text, JSONL \
             events, or a Perfetto-loadable Chrome trace).")
    Term.(
      const run $ isa_arg $ buildset_arg $ kernel_arg $ count
      $ format_arg ~default:"text" $ out $ trace_cap_arg)

(* ---------------- mix --------------------------------------------- *)

let mix_cmd =
  let run isa kernel stats =
    let t = Workload.find_target isa in
    let k = find_kernel kernel in
    let obs = if stats then Some (Obs.create ()) else None in
    let s = Instr_mix.collect ?obs t k.program in
    Format.printf "%s on %s:@." k.kname isa;
    Instr_mix.print Format.std_formatter s;
    (match obs with Some o -> print_counters o | None -> ());
    0
  in
  Cmd.v
    (Cmd.info "mix"
       ~doc:"Dynamic instruction-mix statistics for a kernel (a Decode-level \
             functional-first consumer).")
    Term.(const run $ isa_arg $ kernel_arg $ stats_flag)

(* ---------------- inject ----------------------------------------- *)

let inject_cmd =
  let isa =
    Arg.(
      value & opt string "all"
      & info [ "isa" ] ~docv:"ISA"
          ~doc:"Instruction set to inject into: alpha, arm, ppc, riscv or all.")
  in
  let seed =
    Arg.(
      value & opt int64 42L
      & info [ "seed" ] ~docv:"SEED"
          ~doc:"Campaign seed. Same seed, same campaign, instruction for \
                instruction.")
  in
  let rate =
    Arg.(
      value & opt float 1e-4
      & info [ "rate" ] ~docv:"RATE"
          ~doc:"Per-instruction injection probability, within [0, 1].")
  in
  let budget =
    Arg.(
      value & opt int 300_000
      & info [ "budget" ] ~docv:"N"
          ~doc:"Checker-instruction budget per campaign cell.")
  in
  let sites =
    Arg.(
      value & opt string "all"
      & info [ "sites" ] ~docv:"SITES"
          ~doc:"Comma-separated injection sites among reg, mem, pc, fault, di \
                — or all.")
  in
  let min_coverage =
    Arg.(
      value & opt (some float) None
      & info [ "min-coverage" ] ~docv:"PCT"
          ~doc:"Fail (exit 1) if detection coverage drops below PCT percent \
                or a recovered run diverges from the reference.")
  in
  let kernel_c =
    Arg.(
      value & opt string "sort"
      & info [ "kernel"; "k" ] ~docv:"KERNEL"
          ~doc:"Campaign kernel (from the test suite).")
  in
  let buildset_c =
    Arg.(
      value & opt string "one_min"
      & info [ "buildset"; "b" ] ~docv:"NAME" ~doc:"Interface buildset.")
  in
  let journal =
    Arg.(
      value & opt (some string) None
      & info [ "journal" ] ~docv:"FILE"
          ~doc:
            "Run the campaign supervised: one durable JSONL record per ISA \
             cell appended to FILE, deterministic failures quarantined as \
             replay-command files instead of aborting the sweep.")
  in
  let resume =
    Arg.(
      value & flag
      & info [ "resume" ]
          ~doc:"With --journal: skip cells the journal already records.")
  in
  let quarantine =
    Arg.(
      value & opt string "quarantine"
      & info [ "quarantine" ] ~docv:"DIR"
          ~doc:"Directory quarantined replay files are written into (with \
                --journal).")
  in
  let run isa seed rate budget sites min_coverage kernel buildset stats journal
      resume quarantine metrics_out metrics_interval jobs =
    let jobs = resolve_jobs jobs in
    let isas =
      match isa with "all" -> [ "alpha"; "arm"; "ppc"; "riscv" ] | i -> [ i ]
    in
    let sites =
      match sites with
      | "all" -> Inject.Injector.all_sites
      | s ->
        String.split_on_char ',' s
        |> List.map (fun name ->
               match Inject.Injector.site_of_string (String.trim name) with
               | Some site -> site
               | None ->
                 Machine.Sim_error.raisef ~component:"cli"
                   ~context:[ ("site", name) ]
                   "unknown injection site (expected reg, mem, pc, fault, di)")
    in
    let cfg =
      { Inject.Campaign.default_config with seed; rate; budget; sites; buildset }
    in
    let obs =
      if stats || metrics_out <> None then Some (Obs.create ()) else None
    in
    let metrics = open_metrics metrics_out ~interval_ms:metrics_interval in
    let reports =
      match journal with
      | Some journal ->
        let sstats =
          Option.map
            (fun (o : Obs.t) -> Super.Supervisor.of_registry o.Obs.reg)
            obs
        in
        let cells =
          with_fleet jobs (fun fleet ->
              Super.Inject_run.run ~isas ~kernel ?obs ?stats:sstats ?metrics
                ?fleet ~journal ~quarantine ~resume cfg)
        in
        Format.printf "%a" Super.Inject_run.pp_cells cells;
        (* coverage gating applies only to cells executed this run *)
        List.filter_map (fun c -> c.Super.Inject_run.c_report) cells
      | None ->
        let reports =
          with_fleet jobs (fun fleet ->
              match fleet with
              | Some fl when List.length isas > 1 ->
                (* one cell per worker; per-worker obs mirrors are merged
                   back so the aggregate inject.* counters stay exact *)
                List.iter
                  (fun isa ->
                    ignore
                      (Lazy.force (Workload.find_target isa).Workload.spec))
                  isas;
                let workers =
                  Array.init (Fleet.jobs fl) (fun _ ->
                      Super.Supervisor.worker_ctx ?obs ())
                in
                let out =
                  Fleet.map fl ~workers
                    ~tasks:
                      (Array.of_list
                         (List.map
                            (fun isa (ws : Super.Supervisor.worker_ctx) ->
                              Inject.Campaign.run ~isas:[ isa ] ~kernel
                                ?obs:ws.Super.Supervisor.wc_obs cfg)
                            isas))
                in
                Option.iter
                  (fun o ->
                    Array.iter
                      (Super.Supervisor.join_worker_ctx ?obs ~into:o)
                      workers)
                  obs;
                List.concat (Array.to_list out)
              | _ -> Inject.Campaign.run ?obs ~isas ~kernel cfg)
        in
        List.iter (Format.printf "%a@." Inject.Campaign.pp_report) reports;
        Format.printf "%a" Inject.Campaign.pp_summary reports;
        reports
    in
    (match obs with Some o when stats -> print_counters o | _ -> ());
    (match obs with Some o -> close_metrics metrics o | None -> ());
    match min_coverage with
    | None -> 0
    | Some pct ->
      let ok r =
        (100. *. Inject.Campaign.coverage r >= pct || r.Inject.Campaign.r_architectural = 0)
        && r.Inject.Campaign.r_outcome_ok
      in
      if List.for_all ok reports then 0 else 1
  in
  Cmd.v
    (Cmd.info "inject"
       ~doc:"Run a deterministic fault-injection campaign through the \
             timing-first checker and report detection coverage, detection \
             latency and recovery statistics.")
    Term.(
      const run $ isa $ seed $ rate $ budget $ sites $ min_coverage $ kernel_c
      $ buildset_c $ stats_flag $ journal $ resume $ quarantine
      $ metrics_out_arg $ metrics_interval_arg $ jobs_arg)

(* ---------------- stats ------------------------------------------ *)

let stats_cmd =
  let budget =
    Arg.(
      value
      & opt int 1_000_000
      & info [ "budget" ] ~docv:"N"
          ~doc:"Instruction budget for the primary pass (auxiliary passes \
                are capped below it).")
  in
  let run isa buildset kernel budget =
    let t = Workload.find_target isa in
    let k = find_kernel kernel in
    let o = Obs.create () in
    let l = Workload.load ~obs:o t ~buildset k.program in
    ignore (Specsim.Iface.run_n l.iface budget);
    profile_aux_passes o t k ~buildset ~budget;
    Format.printf "%s on %s/%s: instrumented profile@." k.kname isa buildset;
    print_counters o;
    0
  in
  Cmd.v
    (Cmd.info "stats"
       ~doc:
         "Run a kernel through an instrumented interface and print the \
          counter/histogram table: entrypoint crossings and per-segment \
          latency histograms, block-cache and fused-closure reuse, \
          speculation journal, timing-model and checker counters. The \
          profile aggregates the primary run with a block-translation pass \
          and a short timing-first checked window.")
    Term.(const run $ isa_arg $ buildset_arg $ kernel_arg $ budget)

(* ---------------- validate --------------------------------------- *)

let validate_cmd =
  let run isa kernel =
    let t = Workload.find_target isa in
    let k = find_kernel kernel in
    let spec = Lazy.force t.spec in
    let buildsets = Lis.Spec.buildset_names spec in
    let expected = Workload.reference k.program in
    let got = Workload.run_rotating t ~buildsets k.program in
    if Workload.agrees expected got then begin
      Printf.printf
        "OK: %s on %s agrees with the reference under rotating interfaces \
         (%d interfaces, %Ld instructions)\n"
        k.kname isa (List.length buildsets) got.instructions;
      0
    end
    else begin
      Printf.printf "MISMATCH: exit %d vs %d, output %S vs %S\n"
        expected.exit_status got.exit_status expected.output got.output;
      1
    end
  in
  Cmd.v
    (Cmd.info "validate"
       ~doc:"Rotating-interface validation (paper §V-D): every dynamic \
             instruction or basic block runs through a different interface.")
    Term.(const run $ isa_arg $ kernel_arg)

(* ---------------- fuzz ------------------------------------------- *)

let fuzz_cmd =
  let isa =
    Arg.(
      value & opt string "all"
      & info [ "isa" ] ~docv:"ISA"
          ~doc:"Instruction set to fuzz: alpha, arm, ppc, riscv, tiny (the \
                2-byte toy ISA) or all.")
  in
  let seed =
    Arg.(
      value & opt int64 42L
      & info [ "seed" ] ~docv:"SEED"
          ~doc:"Campaign seed (splitmix convention shared with 'lisim \
                inject' and the test suites). Same seed, same campaign, \
                draw for draw.")
  in
  let budget =
    Arg.(
      value & opt int 10_000
      & info [ "budget" ] ~docv:"N"
          ~doc:"Oracle-execution budget per ISA; one execution is one \
                candidate interface run in lockstep against the reference.")
  in
  let max_instrs =
    Arg.(
      value & opt int 2048
      & info [ "max-instructions" ] ~docv:"N"
          ~doc:"Retirement budget per program run.")
  in
  let replay =
    Arg.(
      value & opt (some string) None
      & info [ "replay" ] ~docv:"FILE"
          ~doc:"Replay a written reproducer instead of searching: rebuild \
                the recorded machines and report per-buildset verdicts \
                (byte-for-byte deterministic).")
  in
  let out =
    Arg.(
      value & opt string "."
      & info [ "out" ] ~docv:"DIR"
          ~doc:"Directory reproducer files are written into.")
  in
  let no_chain =
    Arg.(
      value & flag
      & info [ "no-chain" ]
          ~doc:"Fuzz candidate block engines with successor chaining \
                disabled (A/B against the cached engine).")
  in
  let no_site =
    Arg.(
      value & flag
      & info [ "no-site-cache" ]
          ~doc:"Fuzz candidate block engines with the shared site cache \
                and memory fast paths disabled.")
  in
  let mutate =
    Arg.(
      value & opt (some string) None
      & info [ "mutate" ] ~docv:"MUTATION"
          ~doc:"Fuzzer self-test: deliberately re-break the candidate \
                engine with one of stale-chain, skip-invalidate or stride4 \
                and check the campaign finds it (exit 1 expected; with \
                --journal the supervised campaign quarantines it and exits \
                0).")
  in
  let journal =
    Arg.(
      value & opt (some string) None
      & info [ "journal" ] ~docv:"FILE"
          ~doc:
            "Run the supervised campaign: append one durable JSONL record \
             per case to FILE, quarantine divergences as replayable \
             reproducers instead of aborting, and exit 0. Combine with \
             --resume to skip cases the journal already has.")
  in
  let resume =
    Arg.(
      value & flag
      & info [ "resume" ]
          ~doc:
            "With --journal: load the journal first and skip completed \
             cases (their budget slots are still consumed, so the case \
             window is identical to the interrupted run).")
  in
  let quarantine =
    Arg.(
      value & opt string "quarantine"
      & info [ "quarantine" ] ~docv:"DIR"
          ~doc:"Directory quarantined reproducers are written into (with \
                --journal).")
  in
  let flame_out =
    Arg.(
      value
      & opt (some string) None
      & info [ "flame-out" ] ~docv:"FILE"
          ~doc:
            "With --journal: attach a hot-region profiler to every oracle \
             candidate and write a campaign-wide speedscope flame view to \
             FILE — where the generated programs actually spent their \
             instructions.")
  in
  let run isa seed budget max_instrs replay out no_chain no_site mutate journal
      resume quarantine metrics_out metrics_interval flame_out jobs =
    let jobs = resolve_jobs jobs in
    let mutate = Option.map parse_mutation mutate in
    let cfg =
      {
        Fuzz.Oracle.default_config with
        chain = not no_chain;
        site_cache = not no_site;
        mutate;
        max_instrs;
      }
    in
    match replay with
    | Some path ->
      let r = Fuzz.Repro.load ~path in
      let rcfg = r.Fuzz.Repro.r_cfg in
      let rcfg =
        {
          rcfg with
          Fuzz.Oracle.chain = rcfg.Fuzz.Oracle.chain && not no_chain;
          site_cache = rcfg.Fuzz.Oracle.site_cache && not no_site;
          mutate =
            (match mutate with Some _ -> mutate | None -> rcfg.Fuzz.Oracle.mutate);
        }
      in
      let tc = r.Fuzz.Repro.r_tc in
      Printf.printf "replay %s: isa %s, %d instruction(s), seed 0x%Lx\n" path
        tc.Fuzz.Gen.tc_isa
        (Array.length tc.Fuzz.Gen.tc_code)
        tc.Fuzz.Gen.tc_seed;
      let results = Fuzz.Driver.replay { r with Fuzz.Repro.r_cfg = rcfg } in
      List.iter
        (fun (bs, dv) ->
          match dv with
          | None -> Printf.printf "  %-16s ok\n" bs
          | Some (d : Fuzz.Oracle.divergence) ->
            Printf.printf "  %-16s DIVERGES — %s after %Ld instruction(s): %s\n"
              bs d.Fuzz.Oracle.d_kind d.Fuzz.Oracle.d_retired
              d.Fuzz.Oracle.d_detail)
        results;
      let n =
        List.length (List.filter (fun (_, d) -> Option.is_some d) results)
      in
      Printf.printf "replay %s: %d diverging / %d checked\n" path n
        (List.length results);
      if n > 0 then 1 else 0
    | None when journal <> None ->
      let journal = Option.get journal in
      let isas =
        match isa with "all" -> Fuzz.Driver.all_isas | i -> [ i ]
      in
      let prof = Option.map (fun _ -> Obs.Prof.create ()) flame_out in
      let o = Obs.create ?prof () in
      let stats = Super.Supervisor.of_registry o.Obs.reg in
      let metrics = open_metrics metrics_out ~interval_ms:metrics_interval in
      (* case ids embed the isa, so one journal serves the whole sweep *)
      with_fleet jobs (fun fleet ->
          List.iter
            (fun isa ->
              let p =
                Fuzz.Campaign.run ~cfg ~obs:o ~stats ?metrics ?fleet ~isa ~seed
                  ~budget ~journal ~quarantine ~resume ()
              in
              Format.printf "%a" Fuzz.Campaign.pp_report p)
            isas);
      close_metrics metrics o;
      (match (flame_out, prof) with
      | Some path, Some p ->
        write_out (Some path)
          (Obs.Export.to_string
             (Obs.Prof.speedscope
                ~name:(Printf.sprintf "fuzz %s seed %Ld" isa seed)
                p)
          ^ "\n");
        Printf.printf "wrote campaign flame view to %s\n" path
      | _ -> ());
      Printf.printf "journal: %s\nquarantine: %d reproducer(s) in %s\n" journal
        (Super.Quarantine.count (Super.Quarantine.create ~dir:quarantine))
        quarantine;
      0
    | None ->
      if flame_out <> None then
        Machine.Sim_error.raisef ~component:"cli"
          "--flame-out requires --journal (the profiler rides the \
           supervised campaign's observability context)";
      let isas =
        match isa with "all" -> Fuzz.Driver.all_isas | i -> [ i ]
      in
      (* the bare hunt is uninstrumented; with --metrics-out the series
         still gets a per-ISA heartbeat (timestamps + an empty registry) *)
      let mobs = Obs.create () in
      let metrics = open_metrics metrics_out ~interval_ms:metrics_interval in
      let rc = ref 0 in
      with_fleet jobs (fun fleet ->
      List.iter
        (fun isa ->
          let o = Fuzz.Driver.hunt ~cfg ?fleet ~isa ~seed ~budget () in
          (match metrics with
          | Some m -> Obs.metrics_tick m mobs
          | None -> ());
          match o.Fuzz.Driver.o_found with
          | None ->
            Printf.printf
              "fuzz %s: no divergence (%d programs, %d oracle executions, \
               seed %Ld)\n"
              isa o.Fuzz.Driver.o_programs o.Fuzz.Driver.o_execs seed
          | Some (_, d) ->
            rc := 1;
            Printf.printf
              "fuzz %s: DIVERGENCE after %d oracle executions (seed %Ld)\n"
              isa o.Fuzz.Driver.o_execs seed;
            Printf.printf "  %s\n" (Fuzz.Oracle.pp_divergence d);
            (match o.Fuzz.Driver.o_shrunk with
            | None -> ()
            | Some (stc, sd) ->
              Printf.printf
                "  shrunk to %d instruction(s) in %d oracle executions\n"
                (Array.length stc.Fuzz.Gen.tc_code)
                o.Fuzz.Driver.o_shrink_tests;
              Printf.printf "  %s\n" (Fuzz.Oracle.pp_divergence sd);
              if not (Sys.file_exists out) then Unix.mkdir out 0o755;
              let path =
                Filename.concat out
                  (Printf.sprintf "fuzz-%s-%s.repro" isa
                     sd.Fuzz.Oracle.d_buildset)
              in
              Fuzz.Repro.write ~path cfg ~buildset:sd.Fuzz.Oracle.d_buildset
                stc;
              Printf.printf "  reproducer written to %s\n" path))
        isas);
      close_metrics metrics mobs;
      !rc
  in
  Cmd.v
    (Cmd.info "fuzz"
       ~doc:
         "Differential conformance fuzzing: generate random-but-valid \
          programs from the resolved LIS spec, run them through all twelve \
          synthesized interfaces in lockstep against the Step/All \
          reference (architectural state, memory digests, exit codes and \
          Obs crossing counts compared at every sync point), and shrink \
          any divergence to a minimal deterministic reproducer.")
    Term.(
      const run $ isa $ seed $ budget $ max_instrs $ replay $ out $ no_chain
      $ no_site $ mutate $ journal $ resume $ quarantine $ metrics_out_arg
      $ metrics_interval_arg $ flame_out $ jobs_arg)

let () =
  let info =
    Cmd.info "lisim" ~version:"1.0.0"
      ~doc:"Single-specification functional-to-timing simulator synthesis."
  in
  let group =
    Cmd.group info
      [ list_cmd; check_cmd; emit_cmd; run_cmd; profile_cmd; export_cmd;
        trace_cmd; mix_cmd; inject_cmd; validate_cmd; stats_cmd; fuzz_cmd ]
  in
  try exit (Cmd.eval' ~catch:false group) with
  | Machine.Sim_error.Error e ->
    (* stable one-line diagnostic + stable exit code (see README table) *)
    Format.eprintf "lisim: %s@." (Machine.Sim_error.one_line e);
    exit (Machine.Sim_error.exit_code e)
