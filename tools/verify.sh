#!/bin/sh
# Repo verification: build, full test suite, then a smoke fault-injection
# campaign (fixed seed, all three ISAs) that must hit the coverage bar,
# a watchdog check that a non-terminating kernel halts cleanly, an
# instrumented-run check that the observability counters are live, a
# profiler check (hot-region table, speedscope flame export, JSONL
# metrics series, --trace-cap validation), and a dispatch-stats check
# that block chaining and site sharing engage.
set -eu
cd "$(dirname "$0")/.."

tmp=$(mktemp)
trap 'rm -f "$tmp"' EXIT INT TERM

echo "== dune build =="
dune build

echo "== dune runtest =="
dune runtest

echo "== lislint: shipped descriptions must be clean, all buildsets =="
dune exec bin/lisim.exe -- check --builtin all

echo "== lislint: the seeded bad spec must fail with its error codes =="
if dune exec bin/lisim.exe -- check examples >"$tmp" 2>&1; then
  echo "FAIL: lint of examples/lint_badspec.lis exited zero" >&2
  exit 1
fi
for code in L010 L040 L060 L070 L071 L072 L080 L081 L090 L091; do
  if ! grep -q "\[$code\]" "$tmp"; then
    echo "FAIL: seeded defect $code not reported" >&2
    cat "$tmp" >&2
    exit 1
  fi
done

echo "== lislint: --sarif must emit a SARIF 2.1.0 document =="
dune exec bin/lisim.exe -- check --sarif --builtin all >"$tmp"
if ! grep -q '"version":"2.1.0"' "$tmp"; then
  echo "FAIL: --sarif output is not SARIF 2.1.0" >&2
  head -c 400 "$tmp" >&2
  exit 1
fi
if ! grep -q '"automationDetails"' "$tmp"; then
  echo "FAIL: --sarif output has no per-unit automationDetails" >&2
  exit 1
fi

echo "== lislint: --suggest-buildset must print re-parseable buildsets =="
dune exec bin/lisim.exe -- check --suggest-buildset --builtin alpha >"$tmp" || true
if ! grep -q "^buildset " "$tmp"; then
  echo "FAIL: --suggest-buildset printed no buildset declaration" >&2
  cat "$tmp" >&2
  exit 1
fi

echo "== lislint: diagnostics must be byte-stable across runs =="
dune exec bin/lisim.exe -- check --json examples >"$tmp" 2>&1 || true
json2=$(mktemp)
dune exec bin/lisim.exe -- check --json examples >"$json2" 2>&1 || true
if ! cmp -s "$tmp" "$json2"; then
  rm -f "$json2"
  echo "FAIL: two identical check --json runs differ" >&2
  exit 1
fi
rm -f "$json2"

echo "== smoke injection campaign (seed 42, all ISAs) =="
dune exec bin/lisim.exe -- inject --isa all --seed 42 --rate 1e-3 \
  --sites reg,mem,pc,fault --min-coverage 95

echo "== watchdog: spin kernel must halt with a structured error =="
if dune exec bin/lisim.exe -- run --kernel spin --max-instructions 100000 \
    2>"$tmp"; then
  echo "FAIL: spin kernel terminated normally" >&2
  exit 1
fi
if ! grep -q "watchdog" "$tmp"; then
  echo "FAIL: spin kernel did not trip the watchdog" >&2
  cat "$tmp" >&2
  exit 1
fi

echo "== observability: instrumented run must report nonzero crossings =="
dune exec bin/lisim.exe -- run --kernel hash --stats >"$tmp"
if ! grep -E "synth\.entrypoint_calls +[1-9]" "$tmp" >/dev/null; then
  echo "FAIL: --stats reported no entrypoint crossings" >&2
  cat "$tmp" >&2
  exit 1
fi

echo "== profiler: hash kernel's inner loop must dominate the region table =="
dune exec bin/lisim.exe -- profile --kernel hash >"$tmp"
# the first data row is the hottest region; the hash inner loop owns the
# clear majority of retired instructions
top_share=$(awk 'NR==3 { sub(/%/, "", $3); print int($3) }' "$tmp")
if [ -z "$top_share" ] || [ "$top_share" -lt 50 ]; then
  echo "FAIL: profile top region share is ${top_share:-missing}%, expected >50%" >&2
  cat "$tmp" >&2
  exit 1
fi

echo "== profiler: --flame-out must write a speedscope document =="
flame=$(mktemp)
trap 'rm -f "$tmp" "$flame"' EXIT INT TERM
dune exec bin/lisim.exe -- profile --kernel hash --flame-out "$flame" >"$tmp"
if ! grep -q '"\$schema":"https://www.speedscope.app/file-format-schema.json"' \
    "$flame"; then
  echo "FAIL: flame output is not a speedscope document" >&2
  head -c 400 "$flame" >&2
  exit 1
fi
if ! grep -q '"profiles":' "$flame"; then
  echo "FAIL: flame output has no profiles array" >&2
  exit 1
fi

echo "== metrics: --metrics-out must emit a parseable JSONL series =="
metrics=$(mktemp)
trap 'rm -f "$tmp" "$flame" "$metrics"' EXIT INT TERM
dune exec bin/lisim.exe -- run --kernel hash --metrics-out "$metrics" \
  --metrics-interval 0 >"$tmp"
if ! [ -s "$metrics" ]; then
  echo "FAIL: metrics file is empty" >&2
  exit 1
fi
if ! head -1 "$metrics" | grep -q '^{"v":1,"seq":0,'; then
  echo "FAIL: metrics first line is not a v1 seq-0 snapshot" >&2
  head -1 "$metrics" >&2
  exit 1
fi
if ! grep -q '"counters":{' "$metrics"; then
  echo "FAIL: metrics snapshots carry no counters" >&2
  exit 1
fi

echo "== trace ring: --trace-cap 0 must be a usage error =="
if dune exec bin/lisim.exe -- run --kernel hash --trace-cap 0 \
    >/dev/null 2>"$tmp"; then
  echo "FAIL: --trace-cap 0 was accepted" >&2
  exit 1
fi
if ! grep -q -- "--trace-cap must be positive" "$tmp"; then
  echo "FAIL: --trace-cap 0 did not report the usage error" >&2
  cat "$tmp" >&2
  exit 1
fi

echo "== dispatch: block engine must chain and share sites on a hot loop =="
dune exec bin/lisim.exe -- run --kernel sort -b block_min --stats >"$tmp"
for counter in chain_taken site_cache_hits; do
  if ! grep -E "core\.block_cache\.$counter +[1-9]" "$tmp" >/dev/null; then
    echo "FAIL: block_min run reported zero $counter" >&2
    cat "$tmp" >&2
    exit 1
  fi
done

echo "== dispatch: --no-chain --no-site-cache must run with caches cold =="
dune exec bin/lisim.exe -- run --kernel sort -b block_min --stats \
  --no-chain --no-site-cache >"$tmp"
for counter in chain_taken chain_miss site_cache_hits; do
  if grep -E "core\.block_cache\.$counter +[1-9]" "$tmp" >/dev/null; then
    echo "FAIL: $counter nonzero with translation caches disabled" >&2
    cat "$tmp" >&2
    exit 1
  fi
done

echo "== absint: store-free gating must engage, and --no-absint disable it =="
dune exec bin/lisim.exe -- run --kernel hash --stats >"$tmp"
if ! grep -E "core\.absint_fastpath_classes +[1-9]" "$tmp" >/dev/null; then
  echo "FAIL: no instruction classes took the absint fast path" >&2
  cat "$tmp" >&2
  exit 1
fi
dune exec bin/lisim.exe -- run --kernel sort -b block_min --stats >"$tmp"
if ! grep -E "core\.block_cache\.stable_blocks +[1-9]" "$tmp" >/dev/null; then
  echo "FAIL: block engine marked no blocks stable on the sort kernel" >&2
  cat "$tmp" >&2
  exit 1
fi
dune exec bin/lisim.exe -- run --kernel sort -b block_min --stats \
  --no-absint >"$tmp"
if grep -E "core\.block_cache\.stable_blocks +[1-9]" "$tmp" >/dev/null; then
  echo "FAIL: stable blocks nonzero with --no-absint" >&2
  cat "$tmp" >&2
  exit 1
fi

echo "== fuzz: bounded healthy campaign must stay quiet (seed 42) =="
# per-ISA budgets sized to ~1-2s each at measured oracle throughput
for pair in alpha:600 arm:200 ppc:600 riscv:600 tiny:300; do
  isa=${pair%:*}
  budget=${pair#*:}
  dune exec bin/lisim.exe -- fuzz --isa "$isa" --seed 42 --budget "$budget"
done

echo "== fuzz: a seeded defect must be caught, shrunk and replayable =="
fuzzdir=$(mktemp -d)
trap 'rm -f "$tmp" "$flame" "$metrics"; rm -rf "$fuzzdir"' EXIT INT TERM
if dune exec bin/lisim.exe -- fuzz --isa tiny --seed 42 --budget 50 \
    --mutate stride4 --out "$fuzzdir" >"$tmp" 2>&1; then
  echo "FAIL: stride4 mutation not detected" >&2
  cat "$tmp" >&2
  exit 1
fi
if ! grep -q "shrunk to" "$tmp"; then
  echo "FAIL: divergence was not shrunk" >&2
  cat "$tmp" >&2
  exit 1
fi
repro=$(ls "$fuzzdir"/fuzz-tiny-*.repro)
if dune exec bin/lisim.exe -- fuzz --isa tiny --replay "$repro" >"$tmp" 2>&1; then
  echo "FAIL: reproducer replayed clean" >&2
  cat "$tmp" >&2
  exit 1
fi
if ! grep -q "DIVERGES" "$tmp"; then
  echo "FAIL: replay did not report the divergence" >&2
  cat "$tmp" >&2
  exit 1
fi

echo "== super: supervised campaign must quarantine a seeded defect, exit 0 =="
superdir=$(mktemp -d)
trap 'rm -f "$tmp" "$flame" "$metrics"; rm -rf "$fuzzdir" "$superdir"' EXIT INT TERM
dune exec bin/lisim.exe -- fuzz --isa tiny --seed 42 --budget 50 \
  --mutate stride4 --journal "$superdir/journal.jsonl" \
  --quarantine "$superdir/quarantine" >"$tmp"
if ! ls "$superdir"/quarantine/*.repro >/dev/null 2>&1; then
  echo "FAIL: supervised campaign quarantined no reproducer" >&2
  cat "$tmp" >&2
  exit 1
fi
if ! grep -q '"outcome":"quarantined"' "$superdir/journal.jsonl"; then
  echo "FAIL: journal records no quarantined case" >&2
  cat "$superdir/journal.jsonl" >&2
  exit 1
fi

echo "== super: quarantined cases must demote to the step_all reference =="
if ! grep -q '"level":"step_all"' "$superdir/journal.jsonl"; then
  echo "FAIL: no quarantined case degraded to step_all" >&2
  cat "$superdir/journal.jsonl" >&2
  exit 1
fi

echo "== super: --resume must skip every journaled case =="
dune exec bin/lisim.exe -- fuzz --isa tiny --seed 42 --budget 50 \
  --mutate stride4 --journal "$superdir/journal.jsonl" \
  --quarantine "$superdir/quarantine" --resume >"$tmp"
if ! grep -q "(0 executed, 50 resumed)" "$tmp"; then
  echo "FAIL: resume re-executed journaled cases" >&2
  cat "$tmp" >&2
  exit 1
fi

echo "== fleet: --jobs 4 must quarantine the exact bytes --jobs 1 does =="
fleetdir=$(mktemp -d)
trap 'rm -f "$tmp" "$flame" "$metrics"; rm -rf "$fuzzdir" "$superdir" "$fleetdir"' EXIT INT TERM
for j in 1 4; do
  dune exec bin/lisim.exe -- fuzz --isa tiny --seed 42 --budget 50 \
    --mutate stride4 --jobs "$j" --journal "$fleetdir/j$j.jsonl" \
    --quarantine "$fleetdir/q$j" >"$tmp"
done
d1=$(cd "$fleetdir/q1" && cat $(ls | sort) | cksum)
d4=$(cd "$fleetdir/q4" && cat $(ls | sort) | cksum)
if [ "$(ls "$fleetdir/q1" | sort)" != "$(ls "$fleetdir/q4" | sort)" ] \
  || [ "$d1" != "$d4" ]; then
  echo "FAIL: parallel quarantine diverges from sequential" >&2
  echo "  jobs=1: $d1" >&2
  echo "  jobs=4: $d4" >&2
  exit 1
fi

echo "== fleet: --jobs 0 must be rejected with exit 2 =="
if dune exec bin/lisim.exe -- fuzz --isa tiny --budget 1 --jobs 0 \
    >/dev/null 2>"$tmp"; then
  echo "FAIL: --jobs 0 accepted" >&2
  exit 1
fi
if ! grep -q "jobs must be a positive integer" "$tmp"; then
  echo "FAIL: --jobs 0 did not report a usage error" >&2
  cat "$tmp" >&2
  exit 1
fi

echo "== super: supervised run must agree with the plain run =="
dune exec bin/lisim.exe -- run --kernel sort -b block_min >"$tmp"
plain=$(grep -o "exit=[0-9]* output=.*" "$tmp" | head -1)
dune exec bin/lisim.exe -- run --kernel sort -b block_min --supervised >"$tmp"
supervised=$(grep -o "exit=[0-9]* output=.*" "$tmp" | head -1)
if [ "$plain" != "$supervised" ]; then
  echo "FAIL: supervised run disagrees with plain run" >&2
  echo "  plain:      $plain" >&2
  echo "  supervised: $supervised" >&2
  exit 1
fi

echo "verify: OK"
