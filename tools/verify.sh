#!/bin/sh
# Repo verification: build, full test suite, then a smoke fault-injection
# campaign (fixed seed, all three ISAs) that must hit the coverage bar
# and a watchdog check that a non-terminating kernel halts cleanly.
set -eu
cd "$(dirname "$0")/.."

echo "== dune build =="
dune build

echo "== dune runtest =="
dune runtest

echo "== smoke injection campaign (seed 42, all ISAs) =="
dune exec bin/lisim.exe -- inject --isa all --seed 42 --rate 1e-3 \
  --sites reg,mem,pc,fault --min-coverage 95

echo "== watchdog: spin kernel must halt with a structured error =="
if dune exec bin/lisim.exe -- run --kernel spin --max-instructions 100000 \
    2>/tmp/lisim-watchdog.$$; then
  echo "FAIL: spin kernel terminated normally" >&2
  rm -f /tmp/lisim-watchdog.$$
  exit 1
fi
if ! grep -q "watchdog" /tmp/lisim-watchdog.$$; then
  echo "FAIL: spin kernel did not trip the watchdog" >&2
  cat /tmp/lisim-watchdog.$$ >&2
  rm -f /tmp/lisim-watchdog.$$
  exit 1
fi
rm -f /tmp/lisim-watchdog.$$

echo "verify: OK"
