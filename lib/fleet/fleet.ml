(** Domain fleet. See the interface for the contract; this comment is
    about the moving parts.

    Batch lifecycle: the collector waits until every worker is parked,
    loads the deques round-robin (task [k] to deque [k mod jobs],
    highest index first so owners pop in ascending order), then bumps
    the epoch and broadcasts. Workers wake, drain — own deque first
    (LIFO), then steal sweeps over the others (FIFO) — and park again
    when a full sweep finds nothing: tasks are only injected between
    epochs, so an empty sweep means the batch has no undispatched work
    left. Deque ownership is honored by the handoff: the collector
    touches a deque only while its owner is parked (the epoch mutex
    orders the two), so each deque has exactly one pusher at any time.

    Completions flow through a mutex-guarded queue of task indices; the
    result payload rides in a plain array, published by the queue's
    mutex ordering. Task exceptions are captured with their backtraces
    and re-raised on the collector once the batch has fully drained —
    never mid-batch, so the journal keeps every completed case even
    when a sibling case dies. *)

module Deque = Deque

type 'a outcome = Ret of 'a | Raised of exn * Printexc.raw_backtrace

type t = {
  n_jobs : int;
  deques : (int -> unit) Deque.t array;  (** thunks take the executing slot *)
  lock : Mutex.t;
  cond : Condition.t;  (** epoch bumps, worker parking, and stop *)
  mutable epoch : int;
  mutable parked : int;  (** workers waiting for the next epoch *)
  mutable stop : bool;
  done_lock : Mutex.t;
  done_cond : Condition.t;
  done_q : int Queue.t;  (** completed task indices, collector-drained *)
  mutable domains : unit Domain.t array;
}

let jobs t = t.n_jobs

let worker t slot =
  let mine = t.deques.(slot) in
  let steal_sweep () =
    let rec go i =
      if i >= t.n_jobs then None
      else
        let victim = (slot + i) mod t.n_jobs in
        match Deque.steal t.deques.(victim) with
        | Some f -> Some f
        | None -> go (i + 1)
    in
    go 1
  in
  let rec drain () =
    match Deque.pop mine with
    | Some f ->
      f slot;
      drain ()
    | None -> (
      match steal_sweep () with
      | Some f ->
        f slot;
        drain ()
      | None -> ())
  in
  let rec park epoch =
    Mutex.lock t.lock;
    t.parked <- t.parked + 1;
    if t.parked = t.n_jobs then Condition.broadcast t.cond;
    while (not t.stop) && t.epoch = epoch do
      Condition.wait t.cond t.lock
    done;
    let e = t.epoch and stop = t.stop in
    Mutex.unlock t.lock;
    if not stop then begin
      drain ();
      park e
    end
  in
  park 0

let create ?jobs:(n = Domain.recommended_domain_count ()) () =
  if n <= 0 then
    Machine.Sim_error.raisef ~component:"fleet"
      ~context:[ ("jobs", string_of_int n) ]
      "fleet size must be positive";
  let t =
    {
      n_jobs = n;
      deques = Array.init n (fun _ -> Deque.create ());
      lock = Mutex.create ();
      cond = Condition.create ();
      epoch = 0;
      parked = 0;
      stop = false;
      done_lock = Mutex.create ();
      done_cond = Condition.create ();
      done_q = Queue.create ();
      domains = [||];
    }
  in
  t.domains <- Array.init n (fun slot -> Domain.spawn (fun () -> worker t slot));
  t

let run (type w a) t ~(workers : w array) ~(tasks : (w -> a) array)
    ~(complete : int -> a -> unit) =
  let n = Array.length tasks in
  if Array.length workers <> t.n_jobs then
    Machine.Sim_error.raisef ~component:"fleet"
      ~context:
        [
          ("jobs", string_of_int t.n_jobs);
          ("workers", string_of_int (Array.length workers));
        ]
      "per-worker state array must match the fleet size";
  if n > 0 then begin
    let results = Array.make n (Raised (Exit, Printexc.get_callstack 0)) in
    let thunk k slot =
      (results.(k) <-
        (try Ret (tasks.(k) workers.(slot))
         with exn -> Raised (exn, Printexc.get_raw_backtrace ())));
      Mutex.lock t.done_lock;
      Queue.push k t.done_q;
      Condition.signal t.done_cond;
      Mutex.unlock t.done_lock
    in
    (* wait out any stragglers of the previous batch, then hand off *)
    Mutex.lock t.lock;
    if t.stop then begin
      Mutex.unlock t.lock;
      Machine.Sim_error.raisef ~component:"fleet" "fleet is shut down"
    end;
    while t.parked < t.n_jobs do
      Condition.wait t.cond t.lock
    done;
    for k = n - 1 downto 0 do
      Deque.push t.deques.(k mod t.n_jobs) (thunk k)
    done;
    t.parked <- 0;
    t.epoch <- t.epoch + 1;
    Condition.broadcast t.cond;
    Mutex.unlock t.lock;
    (* collect: exactly one completion per task *)
    let first_err = ref None in
    let complete_err = ref None in
    for _ = 1 to n do
      Mutex.lock t.done_lock;
      while Queue.is_empty t.done_q do
        Condition.wait t.done_cond t.done_lock
      done;
      let k = Queue.pop t.done_q in
      Mutex.unlock t.done_lock;
      match results.(k) with
      | Ret v -> (
        match !complete_err with
        | Some _ -> ()  (* collector callback already failed: drain only *)
        | None -> (
          try complete k v
          with exn ->
            complete_err := Some (exn, Printexc.get_raw_backtrace ())))
      | Raised (exn, bt) -> (
        match !first_err with
        | Some (k0, _, _) when k0 < k -> ()
        | _ -> first_err := Some (k, exn, bt))
    done;
    match (!first_err, !complete_err) with
    | Some (_, exn, bt), _ | None, Some (exn, bt) ->
      Printexc.raise_with_backtrace exn bt
    | None, None -> ()
  end

let map t ~workers ~tasks =
  let out = Array.make (Array.length tasks) None in
  run t ~workers ~tasks ~complete:(fun k v -> out.(k) <- Some v);
  Array.map Option.get out

let shutdown t =
  Mutex.lock t.lock;
  if not t.stop then begin
    t.stop <- true;
    Condition.broadcast t.cond;
    Mutex.unlock t.lock;
    Array.iter Domain.join t.domains
  end
  else Mutex.unlock t.lock

let with_pool ?jobs f =
  let t = create ?jobs () in
  Fun.protect ~finally:(fun () -> shutdown t) (fun () -> f t)
