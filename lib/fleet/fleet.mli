(** Domain fleet: a fixed pool of OCaml 5 domains with per-worker
    work-stealing deques, for batches of independent campaign cases.

    The calling domain is the {e collector}: it distributes a batch,
    then consumes completions as workers finish — so all effectful
    aggregation (journal appends, quarantine writes, report counters)
    happens on one domain and needs no locking, while the pure
    per-case work spreads across the pool. Workers carry caller-typed
    per-worker state ([workers.(i)] for worker slot [i]); a task only
    ever sees the state of the worker that executes it, so domain-local
    resources (an {!Obs} registry, a synthesis cache) are threaded by
    construction — reaching another domain's state is a type error, not
    a data race.

    Exceptions raised by tasks are captured per task and re-raised on
    the collector after the batch drains (lowest task index first), so
    {!Machine.Sim_error} taxonomy and exit codes propagate unchanged. *)

module Deque = Deque

type t

(** [create ~jobs ()] spawns [jobs] worker domains (default
    {!Domain.recommended_domain_count}), parked until the first batch.
    [jobs] must be positive. *)
val create : ?jobs:int -> unit -> t

val jobs : t -> int

(** [run t ~workers ~tasks ~complete] executes every [tasks.(k)]
    exactly once on some worker, passing that worker's state, and calls
    [complete k result] on the calling domain as completions arrive
    (completion order is schedule-dependent; [k] is the task index).
    [workers] must have length [jobs t]. Returns when every task has
    completed and every completion has been consumed; if tasks raised,
    the exception of the lowest-indexed raising task is re-raised here
    (after all completions of successful tasks were delivered). *)
val run :
  t ->
  workers:'w array ->
  tasks:('w -> 'a) array ->
  complete:(int -> 'a -> unit) ->
  unit

(** [map t ~workers ~tasks] — {!run} collecting results by task index. *)
val map : t -> workers:'w array -> tasks:('w -> 'a) array -> 'a array

(** Stop and join all worker domains. The pool is unusable afterwards. *)
val shutdown : t -> unit

(** [with_pool ?jobs f] — [create], run [f], always [shutdown]. *)
val with_pool : ?jobs:int -> (t -> 'b) -> 'b
