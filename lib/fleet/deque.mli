(** Lock-free work-stealing deque (Chase–Lev), the per-worker run queue
    of the domain {!Fleet}.

    One domain — the {e owner} — pushes and pops at the bottom in LIFO
    order; any other domain may {!steal} from the top in FIFO order, the
    scheduling shape of Manticore's parallel runtime. All cross-domain
    state is {!Atomic}, so the structure is data-race-free under the
    OCaml 5 memory model; the only synchronization on the owner's fast
    path is one compare-and-swap when the deque is down to its last
    element. The buffer grows geometrically and is never shrunk. *)

type 'a t

val create : unit -> 'a t

(** [push t v] — owner only: push at the bottom. *)
val push : 'a t -> 'a -> unit

(** [pop t] — owner only: pop the most recently pushed element
    (LIFO), or [None] when empty. *)
val pop : 'a t -> 'a option

(** [steal t] — any domain: claim the oldest element (FIFO), or [None]
    when empty. Retries internally when it loses a race to another
    thief. *)
val steal : 'a t -> 'a option

(** Approximate occupancy (exact when quiescent). *)
val size : 'a t -> int
