(** Chase–Lev work-stealing deque over OCaml 5 atomics.

    Indices [top] and [bottom] grow without bound; the element at index
    [i] lives in [cells.(i land mask)] of the current buffer. The owner
    writes [bottom]; thieves advance [top] by compare-and-swap. Claiming
    is what transfers ownership of a slot: a thief (or the owner, for
    the last element) reads the cell {e before} its CAS on [top], and a
    successful CAS proves the value it read was still unclaimed — a
    stale read that raced a wraparound always fails its CAS, because
    [top] is monotonic. Cells are atomic so a thief holding a pre-grow
    buffer still reads safely: [grow] copies the live window into a
    fresh buffer and never overwrites the old one, so old-buffer slots
    keep their values until the whole buffer is unreachable. *)

type 'a buf = { mask : int; cells : 'a option Atomic.t array }

type 'a t = {
  top : int Atomic.t;  (** next index to steal *)
  bottom : int Atomic.t;  (** next index to push; owner-written *)
  buf : 'a buf Atomic.t;
}

let make_buf cap =
  { mask = cap - 1; cells = Array.init cap (fun _ -> Atomic.make None) }

let initial_capacity = 8

let create () =
  {
    top = Atomic.make 0;
    bottom = Atomic.make 0;
    buf = Atomic.make (make_buf initial_capacity);
  }

let size t = max 0 (Atomic.get t.bottom - Atomic.get t.top)

(* Double the buffer, copying the live window [tp, b). Publishing the
   new buffer does not disturb thieves holding the old one: claims are
   arbitrated by [top] alone. *)
let grow t b tp (old : 'a buf) =
  let nb = make_buf ((old.mask + 1) * 2) in
  for i = tp to b - 1 do
    Atomic.set nb.cells.(i land nb.mask) (Atomic.get old.cells.(i land old.mask))
  done;
  Atomic.set t.buf nb;
  nb

let push t v =
  let b = Atomic.get t.bottom and tp = Atomic.get t.top in
  let bf = Atomic.get t.buf in
  let bf = if b - tp > bf.mask then grow t b tp bf else bf in
  Atomic.set bf.cells.(b land bf.mask) (Some v);
  Atomic.set t.bottom (b + 1)

let pop t =
  let b = Atomic.get t.bottom - 1 in
  Atomic.set t.bottom b;
  let tp = Atomic.get t.top in
  if b < tp then begin
    (* already empty: restore and bail *)
    Atomic.set t.bottom tp;
    None
  end
  else
    let bf = Atomic.get t.buf in
    let v = Atomic.get bf.cells.(b land bf.mask) in
    if b > tp then v
    else begin
      (* last element: race thieves for it on [top] *)
      let won = Atomic.compare_and_set t.top tp (tp + 1) in
      Atomic.set t.bottom (tp + 1);
      if won then v else None
    end

let rec steal t =
  let tp = Atomic.get t.top in
  let b = Atomic.get t.bottom in
  if tp >= b then None
  else
    let bf = Atomic.get t.buf in
    let v = Atomic.get bf.cells.(tp land bf.mask) in
    if Atomic.compare_and_set t.top tp (tp + 1) then v
    else begin
      (* lost to another thief (or the owner's last-element pop):
         re-examine from scratch *)
      Domain.cpu_relax ();
      steal t
    end
