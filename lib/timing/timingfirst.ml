(** Timing-first simulator (paper §II-D), hardened.

    An integrated timing simulator executes instructions itself (here: a
    synthesized One-detail simulator standing in for the timing model's
    own functional code, with an optional injected bug to exercise the
    checking machinery); after every instruction a separate functional
    simulator executes the same instruction and the architectural states
    are compared. On a mismatch the timing simulator's state is reloaded
    from the functional simulator and the mismatch is counted — the
    paper's argument is that a low mismatch count justifies trusting the
    timing model's functional behaviour.

    Beyond the paper's register + PC comparison, this checker also:

    - compares {e memories} via sparse page digests every
      [mem_check_interval] instructions (and once at the end of the run),
      so a memory-corrupting bug is detected within a bounded latency and
      {e repaired} rather than silently persisting;
    - treats halt/fault divergence (the timing simulator faulting or
      exiting when the functional simulator did not, or vice versa) as a
      detectable mismatch instead of ending the run;
    - keeps per-mismatch diagnostics: which site diverged and how many
      instructions the divergence could have been latent;
    - snapshots the (trusted) functional simulator periodically with
      {!Machine.Checkpoint} and, when mismatches cluster (a divergence
      storm), restores the timing machine from the snapshot and replays it
      forward — the checkpoint-based recovery path — verifying that the
      recovered state is exactly the checker's.

    The interface still needs only low semantic and informational detail:
    one call per instruction, no per-instruction information (state is
    compared directly), exactly as TFsim does. *)

(** Where a divergence was first observed. *)
type site = Regs | Pc | Memory | Halt

let site_to_string = function
  | Regs -> "regs"
  | Pc -> "pc"
  | Memory -> "memory"
  | Halt -> "halt"

(** One detected divergence. [latency_bound] is the number of instructions
    since the diverged site was last verified clean — an upper bound on
    the detection latency (registers and the PC are checked every
    instruction; memory every [mem_check_interval]). *)
type mismatch = { at_instr : int64; msite : site; latency_bound : int64 }

type result = {
  instructions : int64;
  mismatches : int64;
  cycles : int64;
  ipc : float;
  diagnostics : mismatch list;  (** chronological *)
  repairs : int;  (** direct state reloads from the functional simulator *)
  restores : int;  (** successful checkpoint restore-and-replay recoveries *)
  restore_failures : int;
      (** restore-and-replay attempts whose replay did not reconverge
          (the checker then fell back to a direct reload) *)
  demotions : int;
      (** timing interfaces swapped in by the [demote] ladder after a
          replay failed to reconverge *)
}

(** [run ~timing ~checker ~budget] — [timing] and [checker] are interfaces
    over two different machines loaded with the same program. [bug], if
    given, corrupts the timing machine after each instruction (fault
    injectors plug in here). [mem_check_interval] bounds memory-divergence
    detection latency; [ckpt_interval] is the checkpoint cadence of the
    recovery path; more than [storm_threshold] mismatches within
    [storm_window] instructions trigger restore-and-replay instead of a
    direct reload.

    [demote k], the graceful-degradation hook, is consulted when a
    restore-and-replay fails to reconverge for the [k]-th time: if it
    returns a replacement timing interface {e over the same machine}
    (typically the same buildset re-synthesized one rung down the
    cache-feature ladder), the checker swaps it in and retries the
    replay instead of falling back to a blunt reload. [None] ends the
    ladder. *)
let run ?(bug = fun (_ : Machine.State.t) (_ : Specsim.Di.t) -> ())
    ?(timing_model = Funcfirst.default_config) ?(mem_check_interval = 64)
    ?(ckpt_interval = 8192) ?(storm_window = 64) ?(storm_threshold = 8)
    ?(demote = fun (_ : int) -> (None : Specsim.Iface.t option)) ?obs
    ~(timing : Specsim.Iface.t) ~(checker : Specsim.Iface.t) ~budget () :
    result =
  if timing.st == checker.st then
    Machine.Sim_error.raisef ~component:"timing"
      "Timingfirst.run: timing and checker must be separate machines";
  let ff = Funcfirst.create ~config:timing_model timing in
  let timing = ref timing in
  let demotions = ref 0 in
  (match obs with Some o -> Funcfirst.register_obs ff o | None -> ());
  let t_di = Specsim.Di.create ~info_slots:(!timing).slots.di_size in
  let c_di = Specsim.Di.create ~info_slots:checker.slots.di_size in
  let mismatches = ref 0L in
  let diagnostics = ref [] in
  let repairs = ref 0 in
  let restores = ref 0 in
  let restore_failures = ref 0 in
  let retired = ref 0 in
  let last_mem_check = ref 0 in
  let tst = (!timing).st and cst = checker.st in
  (* Memory digests are the checker's one potentially-expensive compare;
     when observed, each one is timed (the "digest time" attribution).
     The comparison closure is selected once — unobserved runs keep the
     direct call. *)
  let mem_digests = ref 0 in
  let mem_digest_ns = ref 0 in
  let mem_agrees =
    match obs with
    | None -> fun () -> Machine.Memory.equal_contents tst.mem cst.mem
    | Some _ ->
      fun () ->
        let t0 = Obs.Clock.now_ns () in
        let r = Machine.Memory.equal_contents tst.mem cst.mem in
        mem_digest_ns := !mem_digest_ns + Obs.Clock.elapsed_ns t0;
        incr mem_digests;
        r
  in
  (* Recovery checkpoints are taken from the *functional* simulator — the
     trusted side — and restored into the timing machine (same spec, so
     the layouts match). *)
  let ckpt = ref (Machine.Checkpoint.save cst) in
  let ckpt_at = ref 0 in
  let storm_start = ref 0 in
  let storm_count = ref 0 in
  let states_agree () =
    Bool.equal tst.halted cst.halted
    && Option.equal Machine.Fault.equal tst.fault cst.fault
    && Machine.Regfile.equal tst.regs cst.regs
    && Int64.equal tst.pc cst.pc
    && Machine.Memory.equal_contents tst.mem cst.mem
  in
  (* Direct repair: reload the timing machine's architectural state from
     the functional simulator. Memory is copied only when the digests
     disagree (the common register-divergence case keeps O(regs) cost). *)
  let repair () =
    Machine.Regfile.blit ~src:cst.regs ~dst:tst.regs;
    tst.pc <- cst.pc;
    tst.next_pc <- cst.next_pc;
    tst.instr_count <- cst.instr_count;
    tst.fault <- cst.fault;
    tst.halted <- cst.halted;
    if not (mem_agrees ()) then
      Machine.Memory.blit_all ~src:cst.mem ~dst:tst.mem;
    (!timing).flush_code_cache ();
    incr repairs
  in
  (* Checkpoint recovery: rewind the timing machine to the last trusted
     snapshot and replay it forward (without the bug callback — replay is
     clean re-execution) until it catches up with the functional
     simulator; verify exact reconvergence. A replay that does not
     reconverge consults the demotion ladder before giving up: a less
     aggressive timing interface over the same machine retries the same
     replay. The recursion is bounded by the ladder returning [None]. *)
  let rec restore_and_replay () =
    Machine.Checkpoint.restore tst !ckpt;
    (!timing).flush_code_cache ();
    while
      Int64.compare tst.instr_count cst.instr_count < 0 && not tst.halted
    do
      (!timing).run_one t_di
    done;
    if states_agree () then incr restores
    else
      match demote !demotions with
      | Some (next : Specsim.Iface.t) when next.st == tst ->
        incr demotions;
        timing := next;
        restore_and_replay ()
      | _ ->
        incr restore_failures;
        repair ()
  in
  let record msite latency_bound =
    mismatches := Int64.add !mismatches 1L;
    diagnostics :=
      { at_instr = Int64.of_int !retired; msite; latency_bound }
      :: !diagnostics;
    if !retired - !storm_start > storm_window then begin
      storm_start := !retired;
      storm_count := 0
    end;
    incr storm_count;
    if !storm_count > storm_threshold then begin
      restore_and_replay ();
      storm_count := 0
    end
    else repair ();
    (* after recovery every site is known clean *)
    last_mem_check := !retired
  in
  while (not cst.halted) && !retired < budget do
    if not tst.halted then begin
      (!timing).run_one t_di;
      bug tst t_di;
      Funcfirst.consume ff t_di
    end;
    checker.run_one c_di;
    incr retired;
    (* compare architectural state, cheapest sites first *)
    if
      (not (Bool.equal tst.halted cst.halted))
      || not (Option.equal Machine.Fault.equal tst.fault cst.fault)
    then record Halt 0L
    else if not (Machine.Regfile.equal tst.regs cst.regs) then record Regs 0L
    else if not (Int64.equal tst.pc cst.pc) then record Pc 0L
    else if !retired - !last_mem_check >= mem_check_interval then
      if mem_agrees () then last_mem_check := !retired
      else record Memory (Int64.of_int (!retired - !last_mem_check));
    (* periodic recovery checkpoint of the trusted side *)
    if (not cst.halted) && !retired - !ckpt_at >= ckpt_interval then begin
      ckpt := Machine.Checkpoint.save cst;
      ckpt_at := !retired
    end
  done;
  (* final sweep: catch corruption injected after the last periodic
     memory check (otherwise tail-end faults would escape detection) *)
  if !retired > !last_mem_check && not (mem_agrees ()) then
    record Memory (Int64.of_int (!retired - !last_mem_check));
  let cycles = Funcfirst.current_cycles ff in
  (* flush checker counters into the registry (cold path: once per run) *)
  (match obs with
  | None -> ()
  | Some (o : Obs.t) ->
    let module R = Obs.Registry in
    R.add (R.counter o.reg "checker.compares") !retired;
    R.add (R.counter o.reg "checker.mem_digests") !mem_digests;
    R.add (R.counter o.reg "checker.mem_digest_ns") !mem_digest_ns;
    R.add (R.counter o.reg "checker.mismatches") (Int64.to_int !mismatches);
    R.add (R.counter o.reg "checker.repairs") !repairs;
    R.add (R.counter o.reg "checker.restores") !restores;
    R.add (R.counter o.reg "checker.restore_failures") !restore_failures;
    R.add (R.counter o.reg "checker.demotions") !demotions);
  {
    instructions = Int64.of_int !retired;
    mismatches = !mismatches;
    cycles;
    ipc =
      (if Int64.equal cycles 0L then 0.
       else Int64.to_float (Int64.of_int !retired) /. Int64.to_float cycles);
    diagnostics = List.rev !diagnostics;
    repairs = !repairs;
    restores = !restores;
    restore_failures = !restore_failures;
    demotions = !demotions;
  }
