(** Branch direction predictors: static, bimodal (2-bit counters) and
    gshare. Targets come from the interface's decode information
    ([branch_target]), so no BTB is modelled. *)

type kind = Static_taken | Static_not_taken | Bimodal of int | Gshare of int
(** the int is log2 of the counter-table size *)

type t = {
  kind : kind;
  table : int array;  (** 2-bit saturating counters *)
  mask : int;
  mutable history : int;
  mutable predictions : int64;
  mutable mispredictions : int64;
}

let create kind =
  let bits = match kind with Bimodal b | Gshare b -> b | _ -> 0 in
  let n = 1 lsl bits in
  {
    kind;
    table = Array.make (max n 1) 1 (* weakly not-taken *);
    mask = n - 1;
    history = 0;
    predictions = 0L;
    mispredictions = 0L;
  }

let index t (pc : int64) =
  let p = Int64.to_int (Int64.shift_right_logical pc 2) in
  match t.kind with
  | Bimodal _ -> p land t.mask
  | Gshare _ -> (p lxor t.history) land t.mask
  | Static_taken | Static_not_taken -> 0

let predict t ~pc : bool =
  match t.kind with
  | Static_taken -> true
  | Static_not_taken -> false
  | Bimodal _ | Gshare _ -> t.table.(index t pc) >= 2

(** [update t ~pc ~taken] trains the predictor and records accuracy. *)
let update t ~pc ~taken =
  let predicted = predict t ~pc in
  t.predictions <- Int64.add t.predictions 1L;
  if predicted <> taken then
    t.mispredictions <- Int64.add t.mispredictions 1L;
  (match t.kind with
  | Static_taken | Static_not_taken -> ()
  | Bimodal _ | Gshare _ ->
    let i = index t pc in
    let c = t.table.(i) in
    t.table.(i) <- (if taken then min 3 (c + 1) else max 0 (c - 1)));
  (match t.kind with
  | Gshare _ -> t.history <- ((t.history lsl 1) lor Bool.to_int taken) land t.mask
  | Static_taken | Static_not_taken | Bimodal _ -> ());
  predicted

let misprediction_rate t =
  if Int64.equal t.predictions 0L then 0.
  else Int64.to_float t.mispredictions /. Int64.to_float t.predictions

let stats t = (t.predictions, t.mispredictions)
