(** Functional-first timing simulator (paper §II-B).

    The functional simulator runs ahead, producing a stream of dynamic
    instruction records; this timing model consumes the stream and accounts
    cycles for an in-order scalar pipeline with I/D caches and a branch
    predictor. It needs only moderate informational detail — decoded
    operand identifiers, branch resolution, effective addresses — i.e. the
    Decode level; at Min detail it still runs but cannot model the D-cache
    (the effective address is hidden), which it reports.

    Control is one interface call per instruction (or per basic block when
    connected to a Block interface) and the timing model exerts no control
    over the functional simulator — the defining property of this
    organization. *)

type config = {
  l1i : Cache.config;
  l1d : Cache.config;
  predictor : Predictor.kind;
  mispredict_penalty : int;
}

let default_config =
  {
    l1i = Cache.l1i_default;
    l1d = Cache.l1d_default;
    predictor = Predictor.Gshare 12;
    mispredict_penalty = 8;
  }

type result = {
  instructions : int64;
  cycles : int64;
  ipc : float;
  icache_miss_rate : float;
  dcache_miss_rate : float;
  mispredict_rate : float;
  dcache_modelled : bool;
      (** false when the interface hides the effective address *)
}

type t = {
  iface : Specsim.Iface.t;
  config : config;
  l1i : Cache.t;
  l1d : Cache.t;
  predictor : Predictor.t;
  kinds : Specsim.Classify.kind array;
  ea_slot : int option;
  mutable cycles : int64;
}

let create ?(config = default_config) (iface : Specsim.Iface.t) : t =
  {
    iface;
    config;
    l1i = Cache.create config.l1i;
    l1d = Cache.create config.l1d;
    predictor = Predictor.create config.predictor;
    kinds = Specsim.Classify.of_spec iface.spec;
    ea_slot = Specsim.Iface.slot_of iface "effective_addr";
    cycles = 0L;
  }

let bump t n = t.cycles <- Int64.add t.cycles (Int64.of_int n)

(** [register_obs t obs] exports the timing model's cache and predictor
    statistics as "timing.*" pull gauges — the models already keep these
    counts, so observation costs the consume path nothing. *)
let register_obs (t : t) (obs : Obs.t) =
  let open Obs.Registry in
  let cache name (c : Cache.t) =
    probe obs.reg ("timing." ^ name ^ ".accesses") (fun () ->
        Int (Int64.to_int (fst (Cache.stats c))));
    probe obs.reg ("timing." ^ name ^ ".misses") (fun () ->
        Int (Int64.to_int (snd (Cache.stats c))));
    probe obs.reg ("timing." ^ name ^ ".miss_rate") (fun () ->
        Float (Cache.miss_rate c))
  in
  cache "l1i" t.l1i;
  cache "l1d" t.l1d;
  probe obs.reg "timing.bp.predictions" (fun () ->
      Int (Int64.to_int (fst (Predictor.stats t.predictor))));
  probe obs.reg "timing.bp.mispredictions" (fun () ->
      Int (Int64.to_int (snd (Predictor.stats t.predictor))));
  probe obs.reg "timing.bp.mispredict_rate" (fun () ->
      Float (Predictor.misprediction_rate t.predictor));
  probe obs.reg "timing.cycles" (fun () -> Int (Int64.to_int t.cycles))

(** Cycles accumulated so far by this timing model. *)
let current_cycles t = t.cycles

(** Account one retired dynamic instruction. *)
let consume t (di : Specsim.Di.t) =
  bump t 1;
  bump t (Cache.latency t.l1i di.pc - 1);
  if di.instr_index >= 0 then begin
    let k = t.kinds.(di.instr_index) in
    (if k.is_load || k.is_store then
       match t.ea_slot with
       | Some slot -> bump t (Cache.latency t.l1d (Specsim.Di.get di slot) - 1)
       | None -> ());
    if k.is_branch then begin
      let taken = not (Int64.equal di.next_pc (Int64.add di.pc 4L)) in
      let predicted = Predictor.update t.predictor ~pc:di.pc ~taken in
      if predicted <> taken then bump t t.config.mispredict_penalty
    end
  end

(** [run t ~budget] drives the functional simulator until halt or budget,
    consuming the instruction stream. *)
let run (t : t) ~budget : result =
  let iface = t.iface in
  let st = iface.st in
  let start = st.instr_count in
  let executed () = Int64.to_int (Int64.sub st.instr_count start) in
  if iface.bs.bs_block then
    while (not st.halted) && executed () < budget do
      let dis, n = iface.run_block () in
      for i = 0 to n - 1 do
        consume t dis.(i)
      done
    done
  else begin
    let di = Specsim.Di.create ~info_slots:iface.slots.di_size in
    while (not st.halted) && executed () < budget do
      iface.run_one di;
      if di.fault = None then consume t di
    done
  end;
  let instructions = Int64.sub st.instr_count start in
  {
    instructions;
    cycles = t.cycles;
    ipc =
      (if Int64.equal t.cycles 0L then 0.
       else Int64.to_float instructions /. Int64.to_float t.cycles);
    icache_miss_rate = Cache.miss_rate t.l1i;
    dcache_miss_rate = Cache.miss_rate t.l1d;
    mispredict_rate = Predictor.misprediction_rate t.predictor;
    dcache_modelled = t.ea_slot <> None;
  }
