(** Set-associative cache model with true-LRU replacement. Only hit/miss
    behaviour and latency are modelled — the functional simulator owns all
    data. *)

type config = {
  size_bytes : int;
  ways : int;
  line_bytes : int;
  hit_latency : int;
  miss_penalty : int;
}

(** 16 KiB 2-way / 16 KiB 4-way / 256 KiB 8-way, 64-byte lines. *)
val l1i_default : config

val l1d_default : config
val l2_default : config

type t

(** @raise Invalid_argument unless the set count is a power of two. *)
val create : config -> t

val reset : t -> unit

(** [access t addr] is [true] on hit; updates LRU state and statistics. *)
val access : t -> int64 -> bool

(** [latency t addr] combines an access with the configured latencies. *)
val latency : t -> int64 -> int

val miss_rate : t -> float

(** [(accesses, misses)] since creation or {!reset}. *)
val stats : t -> int64 * int64
