(** Set-associative cache model with true-LRU replacement.

    Timing simulators attach one per level; only hit/miss behaviour and
    occupancy are modelled (no data — the functional simulator owns data). *)

type config = {
  size_bytes : int;
  ways : int;
  line_bytes : int;
  hit_latency : int;
  miss_penalty : int;
}

let l1i_default =
  { size_bytes = 16 * 1024; ways = 2; line_bytes = 64; hit_latency = 1; miss_penalty = 12 }

let l1d_default =
  { size_bytes = 16 * 1024; ways = 4; line_bytes = 64; hit_latency = 1; miss_penalty = 12 }

let l2_default =
  { size_bytes = 256 * 1024; ways = 8; line_bytes = 64; hit_latency = 6; miss_penalty = 80 }

type t = {
  config : config;
  sets : int;
  line_bits : int;
  tags : int64 array;  (** sets * ways; -1 = invalid *)
  lru : int array;  (** age per way; 0 = most recent *)
  mutable accesses : int64;
  mutable misses : int64;
}

let log2 n =
  let rec go acc v = if v <= 1 then acc else go (acc + 1) (v lsr 1) in
  go 0 n

let create (config : config) =
  let sets = config.size_bytes / (config.ways * config.line_bytes) in
  if sets <= 0 || sets land (sets - 1) <> 0 then
    invalid_arg "Cache.create: set count must be a positive power of two";
  {
    config;
    sets;
    line_bits = log2 config.line_bytes;
    tags = Array.make (sets * config.ways) (-1L);
    lru = Array.init (sets * config.ways) (fun i -> i mod config.ways);
    accesses = 0L;
    misses = 0L;
  }

let reset t =
  Array.fill t.tags 0 (Array.length t.tags) (-1L);
  Array.iteri (fun i _ -> t.lru.(i) <- i mod t.config.ways) t.lru;
  t.accesses <- 0L;
  t.misses <- 0L

(** [access t addr] returns [true] on hit, updating LRU and statistics. *)
let access t (addr : int64) : bool =
  t.accesses <- Int64.add t.accesses 1L;
  let line = Int64.shift_right_logical addr t.line_bits in
  let set = Int64.to_int line land (t.sets - 1) in
  let base = set * t.config.ways in
  let hit_way = ref (-1) in
  for w = 0 to t.config.ways - 1 do
    if Int64.equal t.tags.(base + w) line then hit_way := w
  done;
  let touch way =
    let age = t.lru.(base + way) in
    for w = 0 to t.config.ways - 1 do
      if t.lru.(base + w) < age then t.lru.(base + w) <- t.lru.(base + w) + 1
    done;
    t.lru.(base + way) <- 0
  in
  if !hit_way >= 0 then begin
    touch !hit_way;
    true
  end
  else begin
    t.misses <- Int64.add t.misses 1L;
    (* evict the oldest way *)
    let victim = ref 0 in
    for w = 0 to t.config.ways - 1 do
      if t.lru.(base + w) > t.lru.(base + !victim) then victim := w
    done;
    t.tags.(base + !victim) <- line;
    touch !victim;
    false
  end

(** [latency t addr] combines access with the configured latencies. *)
let latency t addr =
  if access t addr then t.config.hit_latency
  else t.config.hit_latency + t.config.miss_penalty

let miss_rate t =
  if Int64.equal t.accesses 0L then 0.
  else Int64.to_float t.misses /. Int64.to_float t.accesses

let stats t = (t.accesses, t.misses)
