(** Branch direction predictors: static, bimodal (2-bit counters) and
    gshare. Targets come from the interface's decode information, so no
    BTB is modelled. *)

type kind =
  | Static_taken
  | Static_not_taken
  | Bimodal of int  (** log2 of the counter-table size *)
  | Gshare of int

type t

val create : kind -> t

val predict : t -> pc:int64 -> bool

(** [update t ~pc ~taken] trains the predictor, records accuracy, and
    returns the direction that was predicted before training. *)
val update : t -> pc:int64 -> taken:bool -> bool

val misprediction_rate : t -> float

(** [(predictions, mispredictions)] since creation. *)
val stats : t -> int64 * int64
