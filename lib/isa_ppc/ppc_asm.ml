(** PowerPC encoder and VIR lowering.

    VIR registers map to r14..r29 (callee-saved range); the emulated-OS
    ABI uses r0 (number) and r3..r5 (arguments), so syscall lowering moves
    values explicitly, like real PPC glue code. *)

let check_reg name v =
  if v < 0 || v > 31 then
    invalid_arg (Printf.sprintf "ppc asm: %s=%d out of range" name v)

(* ------------------------------------------------------------------ *)
(* Encoders                                                            *)
(* ------------------------------------------------------------------ *)

let d_form op ~rd ~ra ~imm =
  check_reg "rd" rd;
  check_reg "ra" ra;
  if imm < -32768 || imm > 65535 then invalid_arg "ppc asm: imm16 range";
  Int64.of_int
    ((op lsl 26) lor (rd lsl 21) lor (ra lsl 16) lor (imm land 0xFFFF))

let x_form ?(rc = false) ~xo ~rs ~ra ~rb () =
  Int64.of_int
    ((31 lsl 26) lor (rs lsl 21) lor (ra lsl 16) lor (rb lsl 11)
    lor (xo lsl 1)
    lor (if rc then 1 else 0))

let addi ~rd ~ra ~imm = d_form 14 ~rd ~ra ~imm
let addis ~rd ~ra ~imm = d_form 15 ~rd ~ra ~imm
let mulli ~rd ~ra ~imm = d_form 7 ~rd ~ra ~imm
let andi_rec ~ra ~rs ~imm = d_form 28 ~rd:rs ~ra ~imm
let ori ~ra ~rs ~imm = d_form 24 ~rd:rs ~ra ~imm
let oris ~ra ~rs ~imm = d_form 25 ~rd:rs ~ra ~imm
let xori ~ra ~rs ~imm = d_form 26 ~rd:rs ~ra ~imm
let lwz ~rd ~ra ~imm = d_form 32 ~rd ~ra ~imm
let lbz ~rd ~ra ~imm = d_form 34 ~rd ~ra ~imm
let lhz ~rd ~ra ~imm = d_form 40 ~rd ~ra ~imm
let lha ~rd ~ra ~imm = d_form 42 ~rd ~ra ~imm
let stw ~rs ~ra ~imm = d_form 36 ~rd:rs ~ra ~imm
let stb ~rs ~ra ~imm = d_form 38 ~rd:rs ~ra ~imm
let sth ~rs ~ra ~imm = d_form 44 ~rd:rs ~ra ~imm
let cmpi ~crf ~ra ~imm = d_form 11 ~rd:(crf lsl 2) ~ra ~imm
let cmpli ~crf ~ra ~imm = d_form 10 ~rd:(crf lsl 2) ~ra ~imm

let add ?rc ~rd ~ra ~rb () = x_form ?rc ~xo:266 ~rs:rd ~ra ~rb ()
let subf ?rc ~rd ~ra ~rb () = x_form ?rc ~xo:40 ~rs:rd ~ra ~rb ()
let neg ?rc ~rd ~ra () = x_form ?rc ~xo:104 ~rs:rd ~ra ~rb:0 ()
let mullw ?rc ~rd ~ra ~rb () = x_form ?rc ~xo:235 ~rs:rd ~ra ~rb ()
let mulhw ~rd ~ra ~rb () = x_form ~xo:75 ~rs:rd ~ra ~rb ()
let mulhwu ~rd ~ra ~rb () = x_form ~xo:11 ~rs:rd ~ra ~rb ()
let divw ~rd ~ra ~rb () = x_form ~xo:491 ~rs:rd ~ra ~rb ()
let divwu ~rd ~ra ~rb () = x_form ~xo:459 ~rs:rd ~ra ~rb ()
let and_ ?rc ~ra ~rs ~rb () = x_form ?rc ~xo:28 ~rs ~ra ~rb ()
let or_ ?rc ~ra ~rs ~rb () = x_form ?rc ~xo:444 ~rs ~ra ~rb ()
let xor_ ?rc ~ra ~rs ~rb () = x_form ?rc ~xo:316 ~rs ~ra ~rb ()
let nor ?rc ~ra ~rs ~rb () = x_form ?rc ~xo:124 ~rs ~ra ~rb ()
let slw ?rc ~ra ~rs ~rb () = x_form ?rc ~xo:24 ~rs ~ra ~rb ()
let srw ?rc ~ra ~rs ~rb () = x_form ?rc ~xo:536 ~rs ~ra ~rb ()
let sraw ?rc ~ra ~rs ~rb () = x_form ?rc ~xo:792 ~rs ~ra ~rb ()
let srawi ?rc ~ra ~rs ~sh () = x_form ?rc ~xo:824 ~rs ~ra ~rb:sh ()
let extsb ?rc ~ra ~rs () = x_form ?rc ~xo:954 ~rs ~ra ~rb:0 ()
let extsh ?rc ~ra ~rs () = x_form ?rc ~xo:922 ~rs ~ra ~rb:0 ()
let cntlzw ?rc ~ra ~rs () = x_form ?rc ~xo:26 ~rs ~ra ~rb:0 ()
let cmp ~crf ~ra ~rb = x_form ~xo:0 ~rs:(crf lsl 2) ~ra ~rb ()
let cmpl ~crf ~ra ~rb = x_form ~xo:32 ~rs:(crf lsl 2) ~ra ~rb ()
let lwzx ~rd ~ra ~rb = x_form ~xo:23 ~rs:rd ~ra ~rb ()
let lbzx ~rd ~ra ~rb = x_form ~xo:87 ~rs:rd ~ra ~rb ()
let stwx ~rs ~ra ~rb = x_form ~xo:151 ~rs ~ra ~rb ()
let stbx ~rs ~ra ~rb = x_form ~xo:215 ~rs ~ra ~rb ()
let mr ~rd ~rs = or_ ~ra:rd ~rs ~rb:rs ()

let rlwinm ?(rc = false) ~ra ~rs ~sh ~mb ~me () =
  Int64.of_int
    ((21 lsl 26) lor (rs lsl 21) lor (ra lsl 16) lor (sh lsl 11) lor (mb lsl 6)
    lor (me lsl 1)
    lor (if rc then 1 else 0))

let slwi ~ra ~rs ~sh = rlwinm ~ra ~rs ~sh ~mb:0 ~me:(31 - sh) ()
let srwi ~ra ~rs ~sh = rlwinm ~ra ~rs ~sh:((32 - sh) land 31) ~mb:sh ~me:31 ()

(* spr numbers are encoded with their halves swapped *)
let spr_split n = ((n land 0x1F) lsl 16) lor (((n lsr 5) land 0x1F) lsl 11)

let mfspr ~rd ~spr =
  Int64.of_int ((31 lsl 26) lor (rd lsl 21) lor spr_split spr lor (339 lsl 1))

let mtspr ~rs ~spr =
  Int64.of_int ((31 lsl 26) lor (rs lsl 21) lor spr_split spr lor (467 lsl 1))

let mflr ~rd = mfspr ~rd ~spr:8
let mtlr ~rs = mtspr ~rs ~spr:8
let mtctr ~rs = mtspr ~rs ~spr:9
let mfcr ~rd = Int64.of_int ((31 lsl 26) lor (rd lsl 21) lor (19 lsl 1))

let b_raw ?(aa = false) ?(lk = false) off =
  Int64.of_int
    ((18 lsl 26)
    lor (off land 0x3FFFFFC)
    lor (if aa then 2 else 0)
    lor if lk then 1 else 0)

let bc_raw ?(aa = false) ?(lk = false) ~bo ~bi off =
  Int64.of_int
    ((16 lsl 26) lor (bo lsl 21) lor (bi lsl 16)
    lor (off land 0xFFFC)
    lor (if aa then 2 else 0)
    lor if lk then 1 else 0)

let bclr ?(lk = false) ~bo ~bi () =
  Int64.of_int
    ((19 lsl 26) lor (bo lsl 21) lor (bi lsl 16) lor (16 lsl 1)
    lor if lk then 1 else 0)

let bcctr ?(lk = false) ~bo ~bi () =
  Int64.of_int
    ((19 lsl 26) lor (bo lsl 21) lor (bi lsl 16) lor (528 lsl 1)
    lor if lk then 1 else 0)

let blr = bclr ~bo:20 ~bi:0 ()
let sc = Int64.of_int ((17 lsl 26) lor 2)

(* ------------------------------------------------------------------ *)
(* VIR lowering                                                        *)
(* ------------------------------------------------------------------ *)

module Target : Vir.Lower.TARGET = struct
  let name = "ppc"

  let r v = v + 14

  let w x : Vir.Lower.item = Word x

  let li32 ~rd (v : int32) =
    let hi = (Int32.to_int (Int32.shift_right_logical v 16)) land 0xFFFF in
    let lo = Int32.to_int v land 0xFFFF in
    if hi = 0 && lo < 0x8000 then [ w (addi ~rd ~ra:0 ~imm:lo) ]
    else [ w (addis ~rd ~ra:0 ~imm:hi); w (ori ~ra:rd ~rs:rd ~imm:lo) ]

  let branch ?(bo_bi = None) label : Vir.Lower.item =
    Fix
      ( (fun ~self_pc ~target_pc ->
          let off = Int64.to_int (Int64.sub target_pc self_pc) in
          match bo_bi with
          | None ->
            if off < -(1 lsl 25) || off >= 1 lsl 25 then
              invalid_arg "ppc asm: branch range";
            b_raw off
          | Some (bo, bi) ->
            if off < -(1 lsl 15) || off >= 1 lsl 15 then
              invalid_arg "ppc asm: bc range";
            bc_raw ~bo ~bi off),
        label )

  let lower_instr (i : Vir.Lang.instr) : Vir.Lower.item list =
    match i with
    | Label l -> [ Mark l ]
    | Li (d, v) -> li32 ~rd:(r d) v
    | Mv (d, s) -> [ w (mr ~rd:(r d) ~rs:(r s)) ]
    | Add (d, a, b) -> [ w (add ~rd:(r d) ~ra:(r a) ~rb:(r b) ()) ]
    | Sub (d, a, b) -> [ w (subf ~rd:(r d) ~ra:(r b) ~rb:(r a) ()) ]
    | Mul (d, a, b) -> [ w (mullw ~rd:(r d) ~ra:(r a) ~rb:(r b) ()) ]
    | And_ (d, a, b) -> [ w (and_ ~ra:(r d) ~rs:(r a) ~rb:(r b) ()) ]
    | Or_ (d, a, b) -> [ w (or_ ~ra:(r d) ~rs:(r a) ~rb:(r b) ()) ]
    | Xor_ (d, a, b) -> [ w (xor_ ~ra:(r d) ~rs:(r a) ~rb:(r b) ()) ]
    | Addi (d, a, imm) -> [ w (addi ~rd:(r d) ~ra:(r a) ~imm) ]
    | Andi (d, a, imm) -> [ w (andi_rec ~ra:(r d) ~rs:(r a) ~imm) ]
    | Shli (d, a, sh) ->
      if sh = 0 then [ w (mr ~rd:(r d) ~rs:(r a)) ]
      else [ w (slwi ~ra:(r d) ~rs:(r a) ~sh) ]
    | Shri (d, a, sh) ->
      if sh = 0 then [ w (mr ~rd:(r d) ~rs:(r a)) ]
      else [ w (srwi ~ra:(r d) ~rs:(r a) ~sh) ]
    | Sari (d, a, sh) -> [ w (srawi ~ra:(r d) ~rs:(r a) ~sh ()) ]
    | Ldw (d, a, imm) -> [ w (lwz ~rd:(r d) ~ra:(r a) ~imm) ]
    | Stw (s, a, imm) -> [ w (stw ~rs:(r s) ~ra:(r a) ~imm) ]
    | Ldb (d, a, imm) -> [ w (lbz ~rd:(r d) ~ra:(r a) ~imm) ]
    | Stb (s, a, imm) -> [ w (stb ~rs:(r s) ~ra:(r a) ~imm) ]
    | Bcond (c, a, b, l) ->
      (* cr0 bits: LT=0, GT=1, EQ=2; bo 12 = branch if true, 4 = if false *)
      let compare, bo, bi =
        match c with
        | Vir.Lang.Eq -> (cmp ~crf:0 ~ra:(r a) ~rb:(r b), 12, 2)
        | Ne -> (cmp ~crf:0 ~ra:(r a) ~rb:(r b), 4, 2)
        | Lt -> (cmp ~crf:0 ~ra:(r a) ~rb:(r b), 12, 0)
        | Ge -> (cmp ~crf:0 ~ra:(r a) ~rb:(r b), 4, 0)
        | Ltu -> (cmpl ~crf:0 ~ra:(r a) ~rb:(r b), 12, 0)
        | Geu -> (cmpl ~crf:0 ~ra:(r a) ~rb:(r b), 4, 0)
      in
      [ w compare; branch ~bo_bi:(Some (bo, bi)) l ]
    | Jmp l -> [ branch l ]
    | Jr s -> [ w (mtctr ~rs:(r s)); w (bcctr ~bo:20 ~bi:0 ()) ]
    | La (d, l) ->
      let rd = r d in
      [
        Fix
          ( (fun ~self_pc:_ ~target_pc ->
              addis ~rd ~ra:0
                ~imm:(Int64.to_int (Int64.shift_right_logical target_pc 16) land 0xFFFF)),
            l );
        Fix
          ( (fun ~self_pc:_ ~target_pc ->
              ori ~ra:rd ~rs:rd ~imm:(Int64.to_int target_pc land 0xFFFF)),
            l );
      ]
    | Sys ->
      [
        w (mr ~rd:0 ~rs:(r 0));
        w (mr ~rd:3 ~rs:(r 1));
        w (mr ~rd:4 ~rs:(r 2));
        w (mr ~rd:5 ~rs:(r 3));
        w sc;
        w (mr ~rd:(r 0) ~rs:3);
      ]

  let lower (p : Vir.Lang.program) = List.concat_map lower_instr p
end

let encode ~base p = Vir.Lower.encode (module Target) ~base p
