(** Deterministic, stateless pseudo-random draws for fault injection.

    Every draw is a pure function of (seed, index, salt) — a
    splitmix64-style finalizer over their combination — so an injection
    campaign is exactly replayable from its seed: the [index] is the
    instruction count at the injection point and the [salt] separates the
    independent decisions made at one site (whether to inject, which
    register, which bit, …). No hidden stream state means recovery paths
    that re-execute instructions cannot perturb later draws. *)

let golden = 0x9E3779B97F4A7C15L

(* splitmix64 finalizer *)
let mix z =
  let z = Int64.mul (Int64.logxor z (Int64.shift_right_logical z 30)) 0xBF58476D1CE4E5B9L in
  let z = Int64.mul (Int64.logxor z (Int64.shift_right_logical z 27)) 0x94D049BB133111EBL in
  Int64.logxor z (Int64.shift_right_logical z 31)

(** [draw ~seed ~index ~salt] is a uniform 64-bit value. *)
let draw ~seed ~index ~salt =
  mix
    (Int64.add
       (mix (Int64.logxor seed (mix index)))
       (Int64.mul (Int64.of_int (salt + 1)) golden))

(** [uniform ~seed ~index ~salt] is a float in [0, 1). *)
let uniform ~seed ~index ~salt =
  let bits = Int64.shift_right_logical (draw ~seed ~index ~salt) 11 in
  Int64.to_float bits *. (1.0 /. 9007199254740992.0 (* 2^53 *))

(** [derive ~seed ~salt] is an independent sub-seed: the one-seed
    convention used across the repo (injection campaigns, the conformance
    fuzzer, the test suites) hands out per-stream seeds through this so
    every draw anywhere is reproducible from the single top-level seed. *)
let derive ~seed ~salt =
  mix (Int64.add (mix seed) (Int64.mul (Int64.of_int (salt + 1)) golden))

(** [below ~seed ~index ~salt n] is a uniform int in [0, n). *)
let below ~seed ~index ~salt n =
  if n <= 0 then 0
  else
    Int64.to_int
      (Int64.rem
         (Int64.shift_right_logical (draw ~seed ~index ~salt) 1)
         (Int64.of_int n))
