(** Execution watchdog: halts runaway simulations with a structured
    {!Machine.Sim_error} instead of spinning forever or dying with a
    backtrace.

    The guarded loop runs the interface in slices and trips on:

    - {b budget exceeded} — more instructions retired than allowed;
    - {b wall clock exceeded} — the run took too long in real time;
    - {b no forward progress} — two consecutive slice boundaries observed
      byte-identical registers and memory. Instructions are retiring but
      the machine's architectural state is a fixed point (an idle spin
      loop), so the program can never reach an exit. The PC is
      deliberately excluded from the fixed-point test: it always moves
      inside a spin loop.

    The check interval bounds both the overshoot past the budget and the
    latency of spin detection. *)

type reason =
  | Budget_exceeded
  | Wall_clock_exceeded
  | Deadline_exceeded
  | No_progress

let reason_to_string = function
  | Budget_exceeded -> "instruction budget exceeded"
  | Wall_clock_exceeded -> "wall-clock limit exceeded"
  | Deadline_exceeded -> "wall-clock deadline exceeded"
  | No_progress -> "no forward progress (architectural state is a fixed point)"

type config = {
  max_instructions : int;
  max_seconds : float option;  (** relative limit, from the start of the run *)
  deadline : float option;
      (** absolute wall-clock time ([Unix.gettimeofday] scale) after which
          the run trips, whatever progress it is making — the supervised
          runtime's per-case deadline *)
  check_interval : int;
}

let default =
  {
    max_instructions = 1_000_000_000;
    max_seconds = None;
    deadline = None;
    check_interval = 4096;
  }

let regs_digest (regs : Machine.Regfile.t) =
  let h = ref 0x2545F4914F6CDD1DL in
  for i = 0 to Machine.Regfile.total regs - 1 do
    h := Prng.mix (Int64.logxor !h (Machine.Regfile.read_flat regs i))
  done;
  !h

let trip reason (st : Machine.State.t) extra =
  Machine.Sim_error.raisef ~component:"watchdog"
    ~context:
      ([
         ("reason", reason_to_string reason);
         ("instructions", Int64.to_string st.instr_count);
         ("pc", Printf.sprintf "0x%Lx" st.pc);
       ]
      @ extra)
    "simulation halted by watchdog"

(** [check_deadline ?deadline st] trips {!Deadline_exceeded} when the
    absolute wall-clock [deadline] has passed. Slice-driven runners (the
    supervised degradation session, campaign cells) call this at their
    preemption points to share the watchdog's structured error. *)
let check_deadline ?deadline (st : Machine.State.t) =
  match deadline with
  | Some d when Unix.gettimeofday () > d ->
    trip Deadline_exceeded st [ ("deadline", Printf.sprintf "%.3f" d) ]
  | _ -> ()

(** [run_guarded ?config iface] drives [iface] until the machine halts.
    [on_slice] fires once per completed slice (the run's natural
    preemption points) — periodic-metrics ticking hangs off it.
    @raise Machine.Sim_error.Error when a watchdog condition trips. *)
let run_guarded ?(config = default) ?(on_slice = fun () -> ())
    (iface : Specsim.Iface.t) =
  let st = iface.st in
  let t0 = Unix.gettimeofday () in
  let slice = max 1 config.check_interval in
  let prev_sample = ref None in
  while not st.halted do
    ignore (Specsim.Iface.run_n iface slice);
    on_slice ();
    if not st.halted then begin
      if Int64.compare st.instr_count (Int64.of_int config.max_instructions) >= 0
      then
        trip Budget_exceeded st
          [ ("budget", string_of_int config.max_instructions) ];
      (match config.max_seconds with
      | Some limit when Unix.gettimeofday () -. t0 > limit ->
        trip Wall_clock_exceeded st [ ("limit_s", string_of_float limit) ]
      | _ -> ());
      check_deadline ?deadline:config.deadline st;
      let sample = (regs_digest st.regs, Machine.Memory.digest st.mem) in
      (match !prev_sample with
      | Some s when s = sample ->
        trip No_progress st [ ("slice", string_of_int slice) ]
      | _ -> ());
      prev_sample := Some sample
    end
  done
