(** Deterministic fault injectors.

    An injector corrupts the *timing* machine's state at configurable
    sites and rates; every decision is keyed on (seed, instruction index)
    through {!Prng}, so a campaign replays exactly. The corruption sites
    mirror the ways a buggy timing model can diverge from the functional
    specification:

    - [Reg_bitflip] — flip one bit of one architectural register;
    - [Mem_byte] — XOR one byte of an allocated memory page;
    - [Pc_skew] — displace the fetch PC by a few words;
    - [Fault_sub] — substitute a spurious architectural fault (the
      machine halts as if the ISA had trapped);
    - [Di_slot] — corrupt one visible cell of the dynamic-instruction
      record at the interface boundary. This perturbs only the
      information the timing model consumes, not architectural state, so
      a state-comparing checker is *expected not to* catch it; campaigns
      report it separately as "timing-only".

    The injector plugs into {!Timing.Timingfirst.run}'s [bug] callback. *)

type site = Reg_bitflip | Mem_byte | Pc_skew | Fault_sub | Di_slot

let all_sites = [ Reg_bitflip; Mem_byte; Pc_skew; Fault_sub; Di_slot ]
let architectural_sites = [ Reg_bitflip; Mem_byte; Pc_skew; Fault_sub ]

(** Sites whose corruption is visible in architectural state (and hence
    detectable by a state-comparing checker). *)
let is_architectural = function
  | Reg_bitflip | Mem_byte | Pc_skew | Fault_sub -> true
  | Di_slot -> false

let site_to_string = function
  | Reg_bitflip -> "reg"
  | Mem_byte -> "mem"
  | Pc_skew -> "pc"
  | Fault_sub -> "fault"
  | Di_slot -> "di"

let site_of_string = function
  | "reg" -> Some Reg_bitflip
  | "mem" -> Some Mem_byte
  | "pc" -> Some Pc_skew
  | "fault" -> Some Fault_sub
  | "di" -> Some Di_slot
  | _ -> None

(** One injection that actually happened. [e_index] is the victim
    machine's instruction count at injection time. *)
type event = { e_index : int64; e_site : site; e_desc : string }

type t = {
  seed : int64;
  rate : float;
  sites : site array;
  mutable events_rev : event list;
  mutable injected : int;
}

let create ~seed ~rate ?(sites = all_sites) () =
  if rate < 0.0 || rate > 1.0 then
    Machine.Sim_error.raisef ~component:"inject"
      ~context:[ ("rate", string_of_float rate) ]
      "injection rate must be within [0, 1]";
  if sites = [] then
    Machine.Sim_error.raisef ~component:"inject" "no injection sites enabled";
  { seed; rate; sites = Array.of_list sites; events_rev = []; injected = 0 }

(** Injections so far, in chronological order. *)
let events t = List.rev t.events_rev

let n_injected t = t.injected

let log t index site desc =
  t.events_rev <- { e_index = index; e_site = site; e_desc = desc } :: t.events_rev;
  t.injected <- t.injected + 1

let inject_reg t ~index (st : Machine.State.t) =
  let total = Machine.Regfile.total st.regs in
  (* skip hardwired-zero registers: writes to them are discarded *)
  let rec pick flat tries =
    if tries > total then None
    else if Machine.Regfile.is_hardwired_flat st.regs flat then
      pick ((flat + 1) mod total) (tries + 1)
    else Some flat
  in
  match pick (Prng.below ~seed:t.seed ~index ~salt:2 total) 0 with
  | None -> ()
  | Some flat ->
    let mask = Machine.Regfile.mask_flat st.regs flat in
    (* count the writable bits so the flipped bit survives the width mask *)
    let width = ref 0 in
    while
      !width < 64
      && not (Int64.equal (Int64.logand mask (Int64.shift_left 1L !width)) 0L)
    do
      incr width
    done;
    let bit = Prng.below ~seed:t.seed ~index ~salt:3 (max 1 !width) in
    let old = Machine.Regfile.read_flat st.regs flat in
    Machine.Regfile.write_flat st.regs flat
      (Int64.logxor old (Int64.shift_left 1L bit));
    log t index Reg_bitflip (Printf.sprintf "flat reg %d bit %d" flat bit)

let inject_mem t ~index (st : Machine.State.t) =
  let n_pages = Machine.Memory.page_count st.mem in
  if n_pages > 0 then begin
    let nth = Prng.below ~seed:t.seed ~index ~salt:4 n_pages in
    let page_idx =
      (* allocated pages in index order; find the nth *)
      let k = ref 0 and found = ref (-1) in
      Machine.Memory.fold_pages st.mem ~init:() ~f:(fun () idx _ ->
          if !k = nth then found := idx;
          incr k);
      !found
    in
    let off = Prng.below ~seed:t.seed ~index ~salt:5 Machine.Memory.page_size in
    let addr =
      Int64.of_int ((page_idx * Machine.Memory.page_size) + off)
    in
    let x = 1 + Prng.below ~seed:t.seed ~index ~salt:6 255 in
    let old = Machine.Memory.read_byte st.mem addr in
    Machine.Memory.write_byte st.mem addr (old lxor x);
    log t index Mem_byte (Printf.sprintf "byte at 0x%Lx xor 0x%02x" addr x)
  end

let inject_pc t ~index (st : Machine.State.t) =
  let words = 1 + Prng.below ~seed:t.seed ~index ~salt:7 4 in
  let sign = if Prng.below ~seed:t.seed ~index ~salt:8 2 = 0 then 1 else -1 in
  let delta = Int64.of_int (4 * words * sign) in
  st.pc <- Int64.add st.pc delta;
  log t index Pc_skew (Printf.sprintf "pc skewed by %Ld" delta)

let inject_fault t ~index (st : Machine.State.t) =
  Machine.State.raise_fault st
    (Machine.Fault.Arith (Printf.sprintf "injected@%Ld" index));
  log t index Fault_sub "spurious arithmetic fault"

let inject_di t ~index (di : Specsim.Di.t) =
  let n = Array.length di.info in
  let slot = Prng.below ~seed:t.seed ~index ~salt:9 n in
  di.info.(slot) <-
    Int64.logxor di.info.(slot) (Prng.draw ~seed:t.seed ~index ~salt:10);
  log t index Di_slot (Printf.sprintf "di slot %d" slot)

(** [bug t st di] — the per-instruction corruption hook. Keyed on
    [st.instr_count], so re-execution during recovery (which does not call
    the hook) cannot shift later injections. *)
let bug t (st : Machine.State.t) (di : Specsim.Di.t) =
  let index = st.instr_count in
  if Prng.uniform ~seed:t.seed ~index ~salt:0 < t.rate then
    let site =
      t.sites.(Prng.below ~seed:t.seed ~index ~salt:1 (Array.length t.sites))
    in
    match site with
    | Reg_bitflip -> inject_reg t ~index st
    | Mem_byte -> inject_mem t ~index st
    | Pc_skew -> inject_pc t ~index st
    | Fault_sub -> inject_fault t ~index st
    | Di_slot -> inject_di t ~index di

(** [journaled_corrupt t ~trial journal st] corrupts one register and one
    memory word *through the speculation journal* — the shape of a
    wrong-path write. Used to prove that {!Specsim.Specul} rollback
    restores state byte-exactly even when the speculative path was
    actively corrupting. *)
let journaled_corrupt t ~trial (j : Specsim.Specul.t) (st : Machine.State.t) =
  let index = Int64.of_int trial in
  let total = Machine.Regfile.total st.regs in
  let rec pick flat tries =
    if tries > total then None
    else if Machine.Regfile.is_hardwired_flat st.regs flat then
      pick ((flat + 1) mod total) (tries + 1)
    else Some flat
  in
  (match pick (Prng.below ~seed:t.seed ~index ~salt:11 total) 0 with
  | None -> ()
  | Some flat ->
    Specsim.Specul.record_reg j st flat;
    Machine.Regfile.write_flat st.regs flat
      (Prng.draw ~seed:t.seed ~index ~salt:12));
  let addr =
    Int64.of_int (8 * Prng.below ~seed:t.seed ~index ~salt:13 4096)
  in
  Specsim.Specul.record_store j st addr 8;
  Machine.Memory.write st.mem ~addr ~width:8
    (Prng.draw ~seed:t.seed ~index ~salt:14)
