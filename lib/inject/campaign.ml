(** Deterministic fault-injection campaigns.

    A campaign runs a benchmark kernel on the timing-first organization
    (hardened checker, {!Timing.Timingfirst}) with an {!Injector}
    corrupting the timing machine, then cross-references the injector's
    event log with the checker's mismatch diagnostics to compute:

    - {b detection coverage} — the fraction of architectural injections
      (register / memory / PC / fault) the checker caught;
    - {b mean detection latency} — instructions between injection and
      detection;
    - {b repair and restore counts} — how divergences were recovered;
    - {b outcome correctness} — whether the recovered run still produces
      the reference output (the checker side is the ground truth the
      paper's §II-D argues for).

    Separately, each campaign cell drives the speculation journal under
    journaled corruption — checkpoint, corrupt through {!Specsim.Specul}
    like a wrong-path write, roll back — and counts byte-exact restores.

    Everything is keyed on the campaign seed: the same (seed, rate, sites,
    kernel, budget) replays instruction-for-instruction. *)

type config = {
  seed : int64;
  rate : float;
  sites : Injector.site list;
  budget : int;
  buildset : string;
  mem_check_interval : int;
  ckpt_interval : int;
  storm_window : int;
  storm_threshold : int;
  spec_trials : int;
}

let default_config =
  {
    seed = 42L;
    rate = 1e-4;
    sites = Injector.all_sites;
    budget = 300_000;
    buildset = "one_min";
    mem_check_interval = 64;
    ckpt_interval = 4096;
    storm_window = 64;
    storm_threshold = 8;
    spec_trials = 16;
  }

type site_stat = {
  ss_injected : int;
  ss_detected : int;
  ss_latency_sum : int64;
}

type report = {
  r_isa : string;
  r_kernel : string;
  r_buildset : string;
  r_injected : int;  (** total injections, all sites *)
  r_architectural : int;  (** injections a state checker can see *)
  r_detected : int;
  r_undetected : int;
  r_timing_only : int;  (** DI-slot injections (not architecturally visible) *)
  r_latency_sum : int64;
  r_mismatches : int64;
  r_repairs : int;
  r_restores : int;
  r_restore_failures : int;
  r_demotions : int;
      (** timing interfaces demoted down the cache-feature ladder after a
          replay failed to reconverge (block buildsets only) *)
  r_outcome_ok : bool;
  r_per_site : (Injector.site * site_stat) list;
  r_rollback_trials : int;
  r_rollback_exact : int;
}

(** Detection coverage over architectural injections; 1.0 when nothing
    was injected. *)
let coverage r =
  if r.r_architectural = 0 then 1.0
  else float_of_int r.r_detected /. float_of_int r.r_architectural

let mean_latency r =
  if r.r_detected = 0 then 0.0
  else Int64.to_float r.r_latency_sum /. float_of_int r.r_detected

(* ------------------------------------------------------------------ *)
(* Speculation-rollback trials                                         *)
(* ------------------------------------------------------------------ *)

let spec_buildset = "one_decode_spec"

(* Checkpoint, run, corrupt through the journal, run, roll back; the
   restore must be byte-exact. Window kept well under the engine's
   auto-trim horizon so the manual token stays rollbackable. *)
let run_spec_trials (t : Workload.target) (kernel : Vir.Kernels.sized)
    (cfg : config) =
  let spec = Lazy.force t.spec in
  if not (List.mem spec_buildset (Lis.Spec.buildset_names spec)) then (0, 0)
  else begin
    let l = Workload.load t ~buildset:spec_buildset kernel.program in
    let iface = l.iface in
    match iface.journal with
    | None -> (0, 0)
    | Some j ->
      let inj = Injector.create ~seed:cfg.seed ~rate:1.0 () in
      let st = iface.st in
      let trials = ref 0 and exact = ref 0 in
      (try
         for trial = 1 to cfg.spec_trials do
           if not st.halted then begin
             let tok = iface.checkpoint () in
             let regs0 = Machine.Regfile.copy st.regs in
             let pc0 = st.pc and count0 = st.instr_count in
             let mem0 = Machine.Memory.digest st.mem in
             ignore (Specsim.Iface.run_n iface 20);
             Injector.journaled_corrupt inj ~trial j st;
             ignore (Specsim.Iface.run_n iface 20);
             iface.rollback tok;
             incr trials;
             if
               Machine.Regfile.equal st.regs regs0
               && Int64.equal st.pc pc0
               && Int64.equal st.instr_count count0
               && Int64.equal (Machine.Memory.digest st.mem) mem0
             then incr exact;
             ignore (Specsim.Iface.run_n iface 64)
           end
         done
       with Machine.Sim_error.Error _ -> ());
      (!trials, !exact)
  end

(* ------------------------------------------------------------------ *)
(* One campaign cell: (ISA, buildset, kernel)                          *)
(* ------------------------------------------------------------------ *)

let run_cell ?obs (t : Workload.target) ~(kernel : Vir.Kernels.sized)
    (cfg : config) : report =
  let lt = Workload.load t ~buildset:cfg.buildset kernel.program in
  let lc = Workload.load t ~buildset:cfg.buildset kernel.program in
  let inj = Injector.create ~seed:cfg.seed ~rate:cfg.rate ~sites:cfg.sites () in
  (* Graceful degradation: when the timing side uses the block engine and
     a checkpoint replay cannot reconverge, hand the checker the same
     buildset one rung down the cache-feature ladder (chain off, then
     site cache off too) over the same machine. Non-block buildsets (the
     default) have no ladder and keep the pre-supervision behaviour. *)
  let spec = Lazy.force t.spec in
  let demote_ladder =
    if (Lis.Spec.find_buildset spec cfg.buildset).Lis.Spec.bs_block then
      [ (false, true); (false, false) ]
    else []
  in
  let demote k =
    match List.nth_opt demote_ladder k with
    | Some (chain, site_cache) ->
      Some
        (Specsim.Synth.make ~chain ~site_cache ~st:lt.iface.st spec
           cfg.buildset)
    | None -> None
  in
  let r =
    Timing.Timingfirst.run ~bug:(Injector.bug inj)
      ~mem_check_interval:cfg.mem_check_interval
      ~ckpt_interval:cfg.ckpt_interval ~storm_window:cfg.storm_window
      ~storm_threshold:cfg.storm_threshold ~demote ?obs ~timing:lt.iface
      ~checker:lc.iface ~budget:cfg.budget ()
  in
  (* Attribute detections: a mismatch at instruction [d] resolves every
     architectural injection at or before [d] (recovery resynchronizes the
     whole state, ending the divergence episode). *)
  let events = Injector.events inj in
  let stats = Hashtbl.create 8 in
  let stat site =
    match Hashtbl.find_opt stats site with
    | Some s -> s
    | None ->
      let s = ref { ss_injected = 0; ss_detected = 0; ss_latency_sum = 0L } in
      Hashtbl.add stats site s;
      s
  in
  List.iter
    (fun (e : Injector.event) ->
      let s = stat e.e_site in
      s := { !s with ss_injected = !s.ss_injected + 1 })
    events;
  let pending =
    ref (List.filter (fun (e : Injector.event) -> Injector.is_architectural e.e_site) events)
  in
  let detected = ref 0 and latency_sum = ref 0L in
  List.iter
    (fun (d : Timing.Timingfirst.mismatch) ->
      let resolved, rest =
        List.partition
          (fun (e : Injector.event) -> Int64.compare e.e_index d.at_instr <= 0)
          !pending
      in
      pending := rest;
      List.iter
        (fun (e : Injector.event) ->
          let lat = Int64.sub d.at_instr e.e_index in
          incr detected;
          latency_sum := Int64.add !latency_sum lat;
          let s = stat e.e_site in
          s :=
            {
              !s with
              ss_detected = !s.ss_detected + 1;
              ss_latency_sum = Int64.add !s.ss_latency_sum lat;
            })
        resolved)
    r.diagnostics;
  let timing_only =
    List.length
      (List.filter (fun (e : Injector.event) -> not (Injector.is_architectural e.e_site)) events)
  in
  let architectural = Injector.n_injected inj - timing_only in
  (* The checker side is ground truth: the recovered run must still match
     the VIR reference observably. *)
  let outcome_ok =
    lc.iface.st.halted
    &&
    let expected = Workload.reference kernel.program in
    match Machine.State.exit_status lc.iface.st with
    | Some s ->
      s land 0xff = expected.exit_status
      && String.equal (Machine.Os_emu.output lc.os) expected.output
    | None -> false
  in
  let trials, exact = run_spec_trials t kernel cfg in
  {
    r_isa = t.tname;
    r_kernel = kernel.kname;
    r_buildset = cfg.buildset;
    r_injected = Injector.n_injected inj;
    r_architectural = architectural;
    r_detected = !detected;
    r_undetected = architectural - !detected;
    r_timing_only = timing_only;
    r_latency_sum = !latency_sum;
    r_mismatches = r.mismatches;
    r_repairs = r.repairs;
    r_restores = r.restores;
    r_restore_failures = r.restore_failures;
    r_demotions = r.demotions;
    r_outcome_ok = outcome_ok;
    r_per_site =
      List.filter_map
        (fun site ->
          Option.map (fun s -> (site, !s)) (Hashtbl.find_opt stats site))
        Injector.all_sites;
    r_rollback_trials = trials;
    r_rollback_exact = exact;
  }

(** [register_obs reports obs] exports a finished campaign's aggregate
    detection statistics as "inject.*" counters. *)
let register_obs (reports : report list) (obs : Obs.t) =
  let module R = Obs.Registry in
  let sum f = List.fold_left (fun a r -> a + f r) 0 reports in
  let set name v = R.add (R.counter obs.reg name) v in
  set "inject.injected" (sum (fun r -> r.r_injected));
  set "inject.architectural" (sum (fun r -> r.r_architectural));
  set "inject.detected" (sum (fun r -> r.r_detected));
  set "inject.undetected" (sum (fun r -> r.r_undetected));
  set "inject.timing_only" (sum (fun r -> r.r_timing_only));
  set "inject.latency_sum"
    (Int64.to_int
       (List.fold_left (fun a r -> Int64.add a r.r_latency_sum) 0L reports));
  set "inject.rollback_trials" (sum (fun r -> r.r_rollback_trials));
  set "inject.rollback_exact" (sum (fun r -> r.r_rollback_exact))

(** [run ?isas ?kernel ?obs cfg] — one cell per requested ISA. [obs]
    instruments the checker of every cell and, at the end, exports the
    aggregate "inject.*" detection counters. *)
let run ?(isas = [ "alpha"; "arm"; "ppc" ]) ?(kernel = "sort") ?obs
    (cfg : config) : report list =
  let k =
    match
      List.find_opt
        (fun (k : Vir.Kernels.sized) -> String.equal k.kname kernel)
        Vir.Kernels.test_suite
    with
    | Some k -> k
    | None ->
      Machine.Sim_error.raisef ~component:"inject"
        ~context:[ ("kernel", kernel) ]
        "unknown campaign kernel"
  in
  let reports =
    List.map (fun isa -> run_cell ?obs (Workload.find_target isa) ~kernel:k cfg) isas
  in
  (match obs with Some o -> register_obs reports o | None -> ());
  reports

(* ------------------------------------------------------------------ *)
(* Reporting                                                           *)
(* ------------------------------------------------------------------ *)

let pp_report ppf r =
  Format.fprintf ppf
    "%s/%s on %s: injected %d (architectural %d, timing-only %d)@\n" r.r_isa
    r.r_buildset r.r_kernel r.r_injected r.r_architectural r.r_timing_only;
  Format.fprintf ppf
    "  detected %d/%d (coverage %.1f%%), mean detection latency %.2f instrs@\n"
    r.r_detected r.r_architectural (100. *. coverage r) (mean_latency r);
  Format.fprintf ppf
    "  mismatches %Ld, repairs %d, checkpoint restores %d (failed %d), \
     demotions %d@\n"
    r.r_mismatches r.r_repairs r.r_restores r.r_restore_failures r.r_demotions;
  List.iter
    (fun (site, s) ->
      Format.fprintf ppf "    %-5s injected %3d  detected %3d  mean latency %s@\n"
        (Injector.site_to_string site)
        s.ss_injected s.ss_detected
        (if s.ss_detected = 0 then "-"
         else
           Printf.sprintf "%.2f"
             (Int64.to_float s.ss_latency_sum /. float_of_int s.ss_detected)))
    r.r_per_site;
  Format.fprintf ppf "  speculation rollback: %d/%d byte-exact@\n"
    r.r_rollback_exact r.r_rollback_trials;
  Format.fprintf ppf "  recovered run matches reference: %b@\n" r.r_outcome_ok

let pp_summary ppf (reports : report list) =
  let arch = List.fold_left (fun a r -> a + r.r_architectural) 0 reports in
  let det = List.fold_left (fun a r -> a + r.r_detected) 0 reports in
  let cov = if arch = 0 then 1.0 else float_of_int det /. float_of_int arch in
  Format.fprintf ppf
    "campaign total: %d architectural injections, %d detected (%.1f%%), all \
     outcomes correct: %b@\n"
    arch det (100. *. cov)
    (List.for_all (fun r -> r.r_outcome_ok) reports)
