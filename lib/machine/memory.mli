(** Sparse, paged byte-addressable memory.

    Pages are allocated on demand, so the full 64-bit address space is
    usable without preallocation. Reads of never-written locations return
    zero. Multi-byte accesses honour the endianness chosen at creation
    time and may span page boundaries. *)

type endian = Little | Big

type t

(** [create endian] returns an empty memory. *)
val create : endian -> t

val endian : t -> endian

(** Number of pages currently allocated (for tests and statistics). *)
val page_count : t -> int

(** [read mem ~addr ~width] reads [width] bytes (1, 2, 4 or 8) at [addr]
    and returns them zero-extended to 64 bits.
    @raise Invalid_argument on an unsupported width. *)
val read : t -> addr:int64 -> width:int -> int64

(** [read_signed] is [read] followed by sign extension from [width] bytes. *)
val read_signed : t -> addr:int64 -> width:int -> int64

(** [write mem ~addr ~width v] stores the low [width] bytes of [v] at [addr].
    @raise Invalid_argument on an unsupported width. *)
val write : t -> addr:int64 -> width:int -> int64 -> unit

val read_byte : t -> int64 -> int
val write_byte : t -> int64 -> int -> unit

(** [load_bytes mem addr b] copies the whole of [b] into memory at [addr]. *)
val load_bytes : t -> int64 -> bytes -> unit

(** [dump_bytes mem addr len] reads [len] bytes starting at [addr]. *)
val dump_bytes : t -> int64 -> int -> bytes

(** [clear mem] drops every page, returning the memory to its initial state. *)
val clear : t -> unit

(** [fold_pages mem ~init ~f] folds over allocated pages in increasing
    page-index order; each page is 4096 bytes. The callback must not
    mutate the memory. Used by {!Checkpoint}. *)
val fold_pages : t -> init:'a -> f:('a -> int -> bytes -> 'a) -> 'a

(** Page size in bytes (4096). *)
val page_size : int

(** log2 of {!page_size}: [addr lsr page_bits] is the page index. *)
val page_bits : int

(** [page_size - 1]: [addr land page_mask] is the in-page offset. *)
val page_mask : int

(** [addr_int a] is the canonical native-int form of address [a] (the
    full 64-bit space is truncated losslessly for programs living below
    [max_int]). Page index and offset are derived from this value. *)
val addr_int : int64 -> int

(** [lookup_page mem index] returns the backing bytes of page [index],
    allocating it on demand. The returned buffer is live: writes through
    it are visible to subsequent reads, but bypass code-page write hooks
    — callers caching it must revalidate via {!generation}. *)
val lookup_page : t -> int -> bytes

(** [generation mem] changes whenever previously handed-out page buffers
    may no longer be trusted: on {!clear} and when a page is newly marked
    as code. A one-entry per-site page cache is valid only while the
    generation it captured still matches. *)
val generation : t -> int

(** [note_code_page mem index] marks page [index] as holding translated
    code: subsequent writes to it invoke the code-write hooks. Bumps
    {!generation} the first time a page is marked. *)
val note_code_page : t -> int -> unit

val is_code_page : t -> int -> bool

(** [add_code_write_hook mem f] arranges for [f index] to run after any
    write that touches a page previously passed to {!note_code_page}.
    Hooks compose: earlier hooks still run (several synthesized
    interfaces may share one memory). {!clear} drops the code-page set
    but keeps the hooks installed. *)
val add_code_write_hook : t -> (int -> unit) -> unit

(** [digest mem] is a 64-bit hash of the allocated contents. All-zero
    pages hash like absent pages, so two memories with the same byte
    contents digest equally regardless of which addresses were merely
    touched. Used by divergence checkers to compare memories in O(pages)
    instead of O(address space). *)
val digest : t -> int64

(** [blit_all ~src ~dst] makes [dst]'s contents byte-equal to [src]
    (clearing [dst] first). The endiannesses must match.
    @raise Sim_error.Error on an endianness mismatch. *)
val blit_all : src:t -> dst:t -> unit

(** [equal_contents a b] compares contents via {!digest}. *)
val equal_contents : t -> t -> bool
