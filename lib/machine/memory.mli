(** Sparse, paged byte-addressable memory.

    Pages are allocated on demand, so the full 64-bit address space is
    usable without preallocation. Reads of never-written locations return
    zero. Multi-byte accesses honour the endianness chosen at creation
    time and may span page boundaries. *)

type endian = Little | Big

type t

(** [create endian] returns an empty memory. *)
val create : endian -> t

val endian : t -> endian

(** Number of pages currently allocated (for tests and statistics). *)
val page_count : t -> int

(** [read mem ~addr ~width] reads [width] bytes (1, 2, 4 or 8) at [addr]
    and returns them zero-extended to 64 bits.
    @raise Invalid_argument on an unsupported width. *)
val read : t -> addr:int64 -> width:int -> int64

(** [read_signed] is [read] followed by sign extension from [width] bytes. *)
val read_signed : t -> addr:int64 -> width:int -> int64

(** [write mem ~addr ~width v] stores the low [width] bytes of [v] at [addr].
    @raise Invalid_argument on an unsupported width. *)
val write : t -> addr:int64 -> width:int -> int64 -> unit

val read_byte : t -> int64 -> int
val write_byte : t -> int64 -> int -> unit

(** [load_bytes mem addr b] copies the whole of [b] into memory at [addr]. *)
val load_bytes : t -> int64 -> bytes -> unit

(** [dump_bytes mem addr len] reads [len] bytes starting at [addr]. *)
val dump_bytes : t -> int64 -> int -> bytes

(** [clear mem] drops every page, returning the memory to its initial state. *)
val clear : t -> unit

(** [fold_pages mem ~init ~f] folds over allocated pages in increasing
    page-index order; each page is 4096 bytes. The callback must not
    mutate the memory. Used by {!Checkpoint}. *)
val fold_pages : t -> init:'a -> f:('a -> int -> bytes -> 'a) -> 'a

(** Page size in bytes (4096). *)
val page_size : int

(** [digest mem] is a 64-bit hash of the allocated contents. All-zero
    pages hash like absent pages, so two memories with the same byte
    contents digest equally regardless of which addresses were merely
    touched. Used by divergence checkers to compare memories in O(pages)
    instead of O(address space). *)
val digest : t -> int64

(** [blit_all ~src ~dst] makes [dst]'s contents byte-equal to [src]
    (clearing [dst] first). The endiannesses must match.
    @raise Sim_error.Error on an endianness mismatch. *)
val blit_all : src:t -> dst:t -> unit

(** [equal_contents a b] compares contents via {!digest}. *)
val equal_contents : t -> t -> bool
