type abi = {
  nr : int * int;
  args : (int * int) array;
  ret : int * int;
}

let sys_exit = 0L
let sys_write = 1L
let sys_read = 2L
let sys_brk = 3L
let sys_time = 4L
let sys_getpid = 5L

type t = {
  out : Buffer.t;
  input : string;
  mutable in_pos : int;
  mutable brk : int64;
  mutable clock : int64;
  tally : int64 -> int64 -> unit;
      (** syscall accounting hook, bound at creation (compiled-in
          observability: the unobserved emulator holds a constant no-op) *)
}

(* The os.* counter family. Syscalls are orders of magnitude rarer than
   instructions, so one closure call per syscall is free; the closure is
   still selected at [create] time to follow the compiled-in rule. *)
let make_tally (o : Obs.t) =
  let module R = Obs.Registry in
  let reg = o.Obs.reg in
  let total = R.counter reg "os.syscalls" in
  let c name = R.counter reg ("os.sys." ^ name ^ ".calls") in
  let c_exit = c "exit"
  and c_write = c "write"
  and c_read = c "read"
  and c_brk = c "brk"
  and c_time = c "time"
  and c_getpid = c "getpid"
  and c_unknown = c "unknown" in
  let bytes_out = R.counter reg "os.bytes_written"
  and bytes_in = R.counter reg "os.bytes_read" in
  fun n result ->
    R.incr total;
    if Int64.equal n sys_exit then R.incr c_exit
    else if Int64.equal n sys_write then begin
      R.incr c_write;
      if Int64.compare result 0L > 0 then R.add bytes_out (Int64.to_int result)
    end
    else if Int64.equal n sys_read then begin
      R.incr c_read;
      if Int64.compare result 0L > 0 then R.add bytes_in (Int64.to_int result)
    end
    else if Int64.equal n sys_brk then R.incr c_brk
    else if Int64.equal n sys_time then R.incr c_time
    else if Int64.equal n sys_getpid then R.incr c_getpid
    else R.incr c_unknown

let create ?obs ?(input = "") ?(brk0 = 0x400000L) () =
  let tally =
    match obs with
    | Some o when o.Obs.full -> make_tally o
    | Some _ | None -> fun _ _ -> ()
  in
  { out = Buffer.create 256; input; in_pos = 0; brk = brk0; clock = 0L; tally }

let output t = Buffer.contents t.out
let clear_output t = Buffer.clear t.out

let reg state (cls, idx) = Regfile.read state.State.regs ~cls ~idx
let set_reg state (cls, idx) v = Regfile.write state.State.regs ~cls ~idx v

let do_write t state addr len =
  let len = Int64.to_int len in
  if len < 0 then -1L
  else begin
    for i = 0 to len - 1 do
      Buffer.add_char t.out
        (Char.chr (Memory.read_byte state.State.mem (Int64.add addr (Int64.of_int i))))
    done;
    Int64.of_int len
  end

let do_read t state addr len =
  let len = Int64.to_int len in
  let avail = String.length t.input - t.in_pos in
  let n = min len avail in
  if n < 0 then -1L
  else begin
    for i = 0 to n - 1 do
      Memory.write_byte state.State.mem
        (Int64.add addr (Int64.of_int i))
        (Char.code t.input.[t.in_pos + i])
    done;
    t.in_pos <- t.in_pos + n;
    Int64.of_int n
  end

let handle t abi state =
  let n = reg state abi.nr in
  let arg i = if i < Array.length abi.args then reg state abi.args.(i) else 0L in
  if Int64.equal n sys_exit then begin
    t.tally n 0L;
    State.raise_fault state (Fault.Exit (Int64.to_int (arg 0)))
  end
  else
    let result =
      if Int64.equal n sys_write then do_write t state (arg 1) (arg 2)
      else if Int64.equal n sys_read then do_read t state (arg 1) (arg 2)
      else if Int64.equal n sys_brk then begin
        let a = arg 0 in
        if not (Int64.equal a 0L) then t.brk <- a;
        t.brk
      end
      else if Int64.equal n sys_time then begin
        t.clock <- Int64.add t.clock 1L;
        t.clock
      end
      else if Int64.equal n sys_getpid then 42L
      else -1L
    in
    t.tally n result;
    set_reg state abi.ret result

let install t abi state = state.State.syscall_handler <- handle t abi
