(** Structured simulator errors.

    Library code reports misuse and resource-exhaustion conditions through
    this one typed channel instead of bare [failwith]/[invalid_arg], so
    drivers (the CLI, the fault-injection campaign runner, tests) can
    render a diagnostic and choose an exit code rather than print an OCaml
    backtrace. Architectural faults raised *by simulated programs* are a
    different thing and stay on the {!Fault} channel the interface
    carries. *)

type t = {
  component : string;  (** subsystem that detected the error, e.g. "vir" *)
  what : string;  (** one-line human description *)
  context : (string * string) list;
      (** structured key/value details: source location, instruction
          index, budget figures, … *)
}

exception Error of t

let make ~component ?(context = []) what = { component; what; context }

(** [raisef ~component ~context fmt …] formats a message and raises
    {!Error}. *)
let raisef ~component ?(context = []) fmt =
  Format.kasprintf (fun what -> raise (Error (make ~component ~context what))) fmt

let pp ppf e =
  Format.fprintf ppf "%s error: %s" e.component e.what;
  List.iter (fun (k, v) -> Format.fprintf ppf "@\n  %s: %s" k v) e.context

let to_string e = Format.asprintf "%a" pp e

(** [one_line e] renders the error as a single diagnostic line — the
    component, the message, and the context key/values inline — suitable
    for process stderr where a multi-line report or a backtrace would
    drown scripts. *)
let one_line e =
  let ctx =
    match e.context with
    | [] -> ""
    | kvs ->
      " ("
      ^ String.concat ", " (List.map (fun (k, v) -> k ^ "=" ^ v) kvs)
      ^ ")"
  in
  Printf.sprintf "%s error: %s%s" e.component e.what ctx

(** Stable process exit code per component. The CLI maps every
    {!Error} to one of these so scripts and CI can branch on the failure
    class without parsing stderr (the table is documented in README):

    - [2] — specification / usage errors: bad CLI arguments, VIR or
      assembler problems, malformed LIS input;
    - [3] — watchdog: instruction budget, wall-clock limit or deadline
      exceeded, or no forward progress;
    - [4] — internal invariant or unclassified component;
    - [5] — engine defect: a translation-cache invariant violation
      detected at dispatch time;
    - [6] — supervisor: the degradation ladder was exhausted without
      reaching agreement with the trusted reference. *)
let exit_code e =
  match e.component with
  | "cli" | "vir" | "asm" | "lis" -> 2
  | "watchdog" -> 3
  | "engine" -> 5
  | "super" -> 6
  | _ -> 4
