(** Structured simulator errors.

    Library code reports misuse and resource-exhaustion conditions through
    this one typed channel instead of bare [failwith]/[invalid_arg], so
    drivers (the CLI, the fault-injection campaign runner, tests) can
    render a diagnostic and choose an exit code rather than print an OCaml
    backtrace. Architectural faults raised *by simulated programs* are a
    different thing and stay on the {!Fault} channel the interface
    carries. *)

type t = {
  component : string;  (** subsystem that detected the error, e.g. "vir" *)
  what : string;  (** one-line human description *)
  context : (string * string) list;
      (** structured key/value details: source location, instruction
          index, budget figures, … *)
}

exception Error of t

let make ~component ?(context = []) what = { component; what; context }

(** [raisef ~component ~context fmt …] formats a message and raises
    {!Error}. *)
let raisef ~component ?(context = []) fmt =
  Format.kasprintf (fun what -> raise (Error (make ~component ~context what))) fmt

let pp ppf e =
  Format.fprintf ppf "%s error: %s" e.component e.what;
  List.iter (fun (k, v) -> Format.fprintf ppf "@\n  %s: %s" k v) e.context

let to_string e = Format.asprintf "%a" pp e

(** Suggested process exit code per component (used by the CLI so scripts
    can distinguish watchdog halts from misuse). *)
let exit_code e =
  match e.component with "watchdog" -> 3 | "vir" | "asm" -> 2 | _ -> 4
