type endian = Little | Big

let page_bits = 12
let page_size = 1 lsl page_bits
let page_mask = page_size - 1

type t = {
  endian : endian;
  pages : (int, Bytes.t) Hashtbl.t;
  (* One-entry cache of the most recently touched page: instruction fetch
     and stack traffic hit the same page repeatedly. *)
  mutable last_index : int;
  mutable last_page : Bytes.t;
  (* Bumped whenever the page table may have moved under an external
     cache: on [clear] and when a page is newly marked as holding
     translated code. Per-site page caches compare this before trusting
     a remembered [Bytes.t]. *)
  mutable generation : int;
  (* Pages known to hold translated code. [code_lo]/[code_hi] bound the
     marked page indices so the common data-store case pays two integer
     compares, not a hash probe. *)
  code_pages : (int, unit) Hashtbl.t;
  mutable code_lo : int;
  mutable code_hi : int;
  mutable on_code_write : int -> unit;
}

let no_page = Bytes.create 0

let create endian =
  {
    endian;
    pages = Hashtbl.create 64;
    last_index = -1;
    last_page = no_page;
    generation = 0;
    code_pages = Hashtbl.create 8;
    code_lo = max_int;
    code_hi = min_int;
    on_code_write = ignore;
  }

let endian t = t.endian
let page_count t = Hashtbl.length t.pages
let generation t = t.generation

let clear t =
  Hashtbl.reset t.pages;
  t.last_index <- -1;
  t.last_page <- no_page;
  Hashtbl.reset t.code_pages;
  t.code_lo <- max_int;
  t.code_hi <- min_int;
  t.generation <- t.generation + 1

let note_code_page t index =
  if not (Hashtbl.mem t.code_pages index) then begin
    Hashtbl.replace t.code_pages index ();
    if index < t.code_lo then t.code_lo <- index;
    if index > t.code_hi then t.code_hi <- index;
    (* A per-site cache may hold this page from when it was plain data;
       force those caches to revalidate so stores take the guarded path. *)
    t.generation <- t.generation + 1
  end

let is_code_page t index =
  index >= t.code_lo && index <= t.code_hi && Hashtbl.mem t.code_pages index

let add_code_write_hook t f =
  let prev = t.on_code_write in
  t.on_code_write <- (fun idx -> prev idx; f idx)

(* Addresses are truncated to the native-int range; programs in this
   simulator live far below 2^62 so the truncation is lossless. *)
let to_int (a : int64) = Int64.to_int a land max_int
let addr_int = to_int

let page t index =
  if index = t.last_index then t.last_page
  else
    let p =
      match Hashtbl.find_opt t.pages index with
      | Some p -> p
      | None ->
        let p = Bytes.make page_size '\000' in
        Hashtbl.add t.pages index p;
        p
    in
    t.last_index <- index;
    t.last_page <- p;
    p

let lookup_page = page

let read_byte t addr =
  let a = to_int addr in
  Bytes.unsafe_get (page t (a lsr page_bits)) (a land page_mask) |> Char.code

let write_byte t addr v =
  let a = to_int addr in
  let idx = a lsr page_bits in
  Bytes.unsafe_set (page t idx) (a land page_mask)
    (Char.unsafe_chr (v land 0xff));
  if idx >= t.code_lo && idx <= t.code_hi && Hashtbl.mem t.code_pages idx then
    t.on_code_write idx

let check_width width =
  match width with
  | 1 | 2 | 4 | 8 -> ()
  | _ -> invalid_arg (Printf.sprintf "Memory: unsupported width %d" width)

(* Slow path: assemble bytes one at a time (page-spanning or odd widths). *)
let read_bytes_slow t a width =
  let v = ref 0L in
  (match t.endian with
  | Little ->
    for i = width - 1 downto 0 do
      v :=
        Int64.logor
          (Int64.shift_left !v 8)
          (Int64.of_int (read_byte t (Int64.of_int (a + i))))
    done
  | Big ->
    for i = 0 to width - 1 do
      v :=
        Int64.logor
          (Int64.shift_left !v 8)
          (Int64.of_int (read_byte t (Int64.of_int (a + i))))
    done);
  !v

let write_bytes_slow t a width v =
  match t.endian with
  | Little ->
    for i = 0 to width - 1 do
      write_byte t
        (Int64.of_int (a + i))
        (Int64.to_int (Int64.shift_right_logical v (8 * i)) land 0xff)
    done
  | Big ->
    for i = 0 to width - 1 do
      write_byte t
        (Int64.of_int (a + i))
        (Int64.to_int (Int64.shift_right_logical v (8 * (width - 1 - i)))
        land 0xff)
    done

let read t ~addr ~width =
  check_width width;
  let a = to_int addr in
  let off = a land page_mask in
  if off + width <= page_size then begin
    let p = page t (a lsr page_bits) in
    match (width, t.endian) with
    | 1, _ -> Int64.of_int (Char.code (Bytes.unsafe_get p off))
    | 2, Little -> Int64.of_int (Bytes.get_uint16_le p off)
    | 2, Big -> Int64.of_int (Bytes.get_uint16_be p off)
    | 4, Little -> Int64.of_int32 (Bytes.get_int32_le p off) |> Int64.logand 0xFFFFFFFFL
    | 4, Big -> Int64.of_int32 (Bytes.get_int32_be p off) |> Int64.logand 0xFFFFFFFFL
    | 8, Little -> Bytes.get_int64_le p off
    | 8, Big -> Bytes.get_int64_be p off
    | _ -> assert false
  end
  else read_bytes_slow t a width

let sign_extend v width =
  let bits = 64 - (8 * width) in
  Int64.shift_right (Int64.shift_left v bits) bits

let read_signed t ~addr ~width = sign_extend (read t ~addr ~width) width

let write t ~addr ~width v =
  check_width width;
  let a = to_int addr in
  let off = a land page_mask in
  if off + width <= page_size then begin
    let idx = a lsr page_bits in
    let p = page t idx in
    (match (width, t.endian) with
    | 1, _ -> Bytes.unsafe_set p off (Char.unsafe_chr (Int64.to_int v land 0xff))
    | 2, Little -> Bytes.set_uint16_le p off (Int64.to_int v land 0xffff)
    | 2, Big -> Bytes.set_uint16_be p off (Int64.to_int v land 0xffff)
    | 4, Little -> Bytes.set_int32_le p off (Int64.to_int32 v)
    | 4, Big -> Bytes.set_int32_be p off (Int64.to_int32 v)
    | 8, Little -> Bytes.set_int64_le p off v
    | 8, Big -> Bytes.set_int64_be p off v
    | _ -> assert false);
    if idx >= t.code_lo && idx <= t.code_hi && Hashtbl.mem t.code_pages idx
    then t.on_code_write idx
  end
  else write_bytes_slow t a width v

let load_bytes t addr b =
  for i = 0 to Bytes.length b - 1 do
    write_byte t (Int64.add addr (Int64.of_int i)) (Char.code (Bytes.get b i))
  done

(* Iterate allocated pages in increasing index order (stable output for
   serialization). *)
let fold_pages t ~init ~f =
  Hashtbl.fold (fun idx page acc -> (idx, page) :: acc) t.pages []
  |> List.sort (fun (a, _) (b, _) -> compare a b)
  |> List.fold_left (fun acc (idx, page) -> f acc idx page) init

let zero_page = Bytes.make page_size '\000'

(* splitmix64 finalizer: a cheap, well-mixed 64-bit hash step. *)
let mix64 z =
  let z = Int64.mul (Int64.logxor z (Int64.shift_right_logical z 30)) 0xBF58476D1CE4E5B9L in
  let z = Int64.mul (Int64.logxor z (Int64.shift_right_logical z 27)) 0x94D049BB133111EBL in
  Int64.logxor z (Int64.shift_right_logical z 31)

let digest t =
  (* Canonical: an all-zero page hashes like an absent page, so machines
     that merely touched different addresses still compare equal. *)
  fold_pages t ~init:0x9E3779B97F4A7C15L ~f:(fun acc idx page ->
      if Bytes.equal page zero_page then acc
      else begin
        let h = ref (mix64 (Int64.logxor acc (Int64.of_int idx))) in
        for w = 0 to (page_size / 8) - 1 do
          h := mix64 (Int64.logxor !h (Bytes.get_int64_le page (w * 8)))
        done;
        !h
      end)

let blit_all ~src ~dst =
  if src.endian <> dst.endian then
    raise
      (Sim_error.Error
         (Sim_error.make ~component:"memory" "blit_all: endianness mismatch"));
  clear dst;
  fold_pages src ~init:() ~f:(fun () idx page ->
      if not (Bytes.equal page zero_page) then
        Hashtbl.replace dst.pages idx (Bytes.copy page))

let equal_contents a b = Int64.equal (digest a) (digest b)

let dump_bytes t addr len =
  let b = Bytes.create len in
  for i = 0 to len - 1 do
    Bytes.set b i (Char.chr (read_byte t (Int64.add addr (Int64.of_int i))))
  done;
  b
