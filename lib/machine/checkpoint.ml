(** Whole-machine checkpointing: serialize the complete architectural
    state (registers, allocated memory pages, control state) to a byte
    string and restore it into a compatible machine.

    This is the substrate for checkpoint-based sampling methodologies
    (SMARTS-style simulation points): capture the state once, then replay
    measurement intervals from it under different timing models. The
    format is versioned and self-describing enough to reject restores
    into machines with a different register layout or endianness. *)

let magic = "LISIMCK1"

let add_i64 b (v : int64) =
  let tmp = Bytes.create 8 in
  Bytes.set_int64_le tmp 0 v;
  Buffer.add_bytes b tmp

let add_int b v = add_i64 b (Int64.of_int v)

type reader = { data : string; mutable pos : int }

exception Corrupt of string

let read_i64 r =
  if r.pos + 8 > String.length r.data then raise (Corrupt "truncated");
  let v = String.get_int64_le r.data r.pos in
  r.pos <- r.pos + 8;
  v

let read_int r = Int64.to_int (read_i64 r)

(** [save st] serializes the machine's architectural state. The syscall
    handler and any attached OS-emulator state are not captured (an OS
    emulator has its own buffers; re-install it after restore). *)
let save (st : State.t) : string =
  let b = Buffer.create 65536 in
  Buffer.add_string b magic;
  Buffer.add_char b (match Memory.endian st.mem with Little -> 'L' | Big -> 'B');
  (* register classes: layout fingerprint + contents *)
  let n_classes = Regfile.class_count st.regs in
  add_int b n_classes;
  for c = 0 to n_classes - 1 do
    let def = Regfile.class_def st.regs c in
    add_int b (String.length def.cname);
    Buffer.add_string b def.cname;
    add_int b def.count;
    add_int b def.width;
    add_int b (match def.hardwired_zero with Some z -> z | None -> -1);
    for i = 0 to def.count - 1 do
      add_i64 b (Regfile.read st.regs ~cls:c ~idx:i)
    done
  done;
  (* control state *)
  add_i64 b st.pc;
  add_i64 b st.next_pc;
  add_i64 b st.instr_count;
  add_int b (if st.halted then 1 else 0);
  (match st.fault with
  | None -> add_int b 0
  | Some (Fault.Illegal_instruction e) ->
    add_int b 1;
    add_i64 b e
  | Some (Fault.Unaligned_access a) ->
    add_int b 2;
    add_i64 b a
  | Some (Fault.Arith m) ->
    add_int b 3;
    add_int b (String.length m);
    Buffer.add_string b m
  | Some (Fault.Exit c) ->
    add_int b 4;
    add_int b c);
  (* memory pages *)
  let n_pages = Memory.page_count st.mem in
  add_int b n_pages;
  Memory.fold_pages st.mem ~init:() ~f:(fun () idx page ->
      add_int b idx;
      Buffer.add_bytes b page);
  Buffer.contents b

(* splitmix64 finalizer, same step as {!Memory.digest} uses. *)
let mix64 z =
  let z = Int64.mul (Int64.logxor z (Int64.shift_right_logical z 30)) 0xBF58476D1CE4E5B9L in
  let z = Int64.mul (Int64.logxor z (Int64.shift_right_logical z 27)) 0x94D049BB133111EBL in
  Int64.logxor z (Int64.shift_right_logical z 31)

(** [digest st] is a canonical 64-bit digest of the architectural state:
    registers, control state (pc, instruction count, halt flag, fault) and
    memory contents. Memory goes through {!Memory.digest}, so machines
    that merely touched different addresses still compare equal — unlike
    hashing {!save} output, where zero-page allocation shows up. This is
    the state-comparison primitive of the conformance fuzzer. *)
let digest (st : State.t) : int64 =
  let h = ref (Memory.digest st.mem) in
  let mixin v = h := mix64 (Int64.logxor !h v) in
  let n_classes = Regfile.class_count st.regs in
  for c = 0 to n_classes - 1 do
    let def = Regfile.class_def st.regs c in
    for i = 0 to def.count - 1 do
      mixin (Regfile.read st.regs ~cls:c ~idx:i)
    done
  done;
  mixin st.pc;
  mixin st.instr_count;
  mixin (if st.halted then 1L else 0L);
  (match st.fault with
  | None -> mixin 0L
  | Some (Fault.Illegal_instruction e) -> mixin 1L; mixin e
  | Some (Fault.Unaligned_access a) -> mixin 2L; mixin a
  | Some (Fault.Arith m) ->
    mixin 3L;
    String.iter (fun ch -> mixin (Int64.of_int (Char.code ch))) m
  | Some (Fault.Exit c) -> mixin 4L; mixin (Int64.of_int c));
  !h

(** [restore st data] overwrites [st] with the checkpointed state.
    @raise Corrupt if the data is malformed or the register layout,
    endianness or class shapes do not match [st]. *)
let restore (st : State.t) (data : string) : unit =
  let r = { data; pos = 0 } in
  let expect_str s =
    let n = String.length s in
    if r.pos + n > String.length data || String.sub data r.pos n <> s then
      raise (Corrupt ("expected " ^ s));
    r.pos <- r.pos + n
  in
  expect_str magic;
  let e = data.[r.pos] in
  r.pos <- r.pos + 1;
  let expected_endian = match Memory.endian st.mem with Little -> 'L' | Big -> 'B' in
  if e <> expected_endian then raise (Corrupt "endianness mismatch");
  let n_classes = read_int r in
  if n_classes <> Regfile.class_count st.regs then
    raise (Corrupt "register class count mismatch");
  for c = 0 to n_classes - 1 do
    let def = Regfile.class_def st.regs c in
    let name_len = read_int r in
    if r.pos + name_len > String.length data then raise (Corrupt "truncated");
    let name = String.sub data r.pos name_len in
    r.pos <- r.pos + name_len;
    let count = read_int r in
    let width = read_int r in
    let hz = read_int r in
    if
      name <> def.cname || count <> def.count || width <> def.width
      || hz <> (match def.hardwired_zero with Some z -> z | None -> -1)
    then raise (Corrupt ("register class mismatch: " ^ name));
    for i = 0 to count - 1 do
      Regfile.write st.regs ~cls:c ~idx:i (read_i64 r)
    done
  done;
  st.pc <- read_i64 r;
  st.next_pc <- read_i64 r;
  st.instr_count <- read_i64 r;
  st.halted <- read_int r <> 0;
  (st.fault <-
     (match read_int r with
     | 0 -> None
     | 1 -> Some (Fault.Illegal_instruction (read_i64 r))
     | 2 -> Some (Fault.Unaligned_access (read_i64 r))
     | 3 ->
       let n = read_int r in
       if r.pos + n > String.length data then raise (Corrupt "truncated");
       let m = String.sub data r.pos n in
       r.pos <- r.pos + n;
       Some (Fault.Arith m)
     | 4 -> Some (Fault.Exit (read_int r))
     | _ -> raise (Corrupt "unknown fault tag")));
  Memory.clear st.mem;
  let n_pages = read_int r in
  for _ = 1 to n_pages do
    let idx = read_int r in
    if r.pos + Memory.page_size > String.length data then
      raise (Corrupt "truncated page");
    Memory.load_bytes st.mem
      (Int64.of_int (idx * Memory.page_size))
      (Bytes.of_string (String.sub data r.pos Memory.page_size));
    r.pos <- r.pos + Memory.page_size
  done
