(** Deterministic user-mode operating-system emulation.

    The paper's LIS descriptions include an "OS/simulator support" file that
    overrides the semantics of the ISA's trap instruction to call into an OS
    emulator. This module is that emulator: a small, deterministic syscall
    layer shared by all three ISA descriptions. Each ISA supplies an {!abi}
    saying which registers carry the syscall number, the arguments and the
    return value. *)

(** Register designators are (class index, register index) pairs into the
    machine's register file. *)
type abi = {
  nr : int * int;  (** register holding the syscall number *)
  args : (int * int) array;  (** argument registers, in order *)
  ret : int * int;  (** result register *)
}

(** Syscall numbers of the emulated ABI (identical across ISAs; the mapping
    from each ISA's native trap convention is done in its LIS description). *)
val sys_exit : int64

val sys_write : int64
val sys_read : int64
val sys_brk : int64
val sys_time : int64
val sys_getpid : int64

type t

(** [create ()] returns an emulator with empty output, empty input and a
    deterministic clock starting at zero. With [~obs] (a full context —
    profile-only contexts compile in nothing here), syscall traffic is
    counted into the "os.*" registry family: [os.syscalls],
    [os.sys.<name>.calls] per emulated call, and
    [os.bytes_written]/[os.bytes_read] for I/O volume. *)
val create : ?obs:Obs.t -> ?input:string -> ?brk0:int64 -> unit -> t

(** Bytes written via [sys_write] so far (the program's observable output;
    validation compares this across interfaces and ISAs). *)
val output : t -> string

val clear_output : t -> unit

(** [install t abi state] sets [state.syscall_handler] to dispatch into [t]. *)
val install : t -> abi -> State.t -> unit

(** [handle t abi state] performs one syscall based on current register
    values. Unknown syscall numbers return [-1]. *)
val handle : t -> abi -> State.t -> unit
