(** The lislint driver: pass registry, [-W] selection and the run loop.

    Passes are keyed by name for command-line selection. All passes are
    enabled by default except [coverage] (informational). Selection flags
    are processed left to right:
    - ["all"] / ["no-all"] enable / disable every pass;
    - ["<pass>"] enables one pass, ["no-<pass>"] disables it. *)

type pass = {
  p_name : string;
  p_doc : string;
  p_default : bool;
  p_run : Lis.Spec.t -> Diag.t list;
}

let passes =
  [
    {
      p_name = "decoder";
      p_doc = "shadowed instructions and suspicious encoding overlaps";
      p_default = true;
      p_run = Passes.decoder_pass;
    };
    {
      p_name = "defuse";
      p_doc = "cells read before any write on some path of the sequence";
      p_default = true;
      p_run = Passes.defuse_pass;
    };
    {
      p_name = "deadstate";
      p_doc =
        "write-only fields, unused operand fetches, unreachable statements, \
         dead next_pc writes";
      p_default = true;
      p_run = Passes.deadstate_pass;
    };
    {
      p_name = "rollback";
      p_doc = "architected writes a speculative rollback cannot undo";
      p_default = true;
      p_run = Passes.rollback_pass;
    };
    {
      p_name = "width";
      p_doc = "out-of-word bitfields, degenerate shifts, lossy extensions";
      p_default = true;
      p_run = Passes.width_pass;
    };
    {
      p_name = "buildset";
      p_doc = "hidden-but-crossing cells, for every declared buildset";
      p_default = true;
      p_run = Passes.buildset_pass;
    };
    {
      p_name = "effect";
      p_doc =
        "abstract interpretation: impure address actions, clamped \
         register indices, provably misaligned accesses";
      p_default = true;
      p_run = Passes.effect_pass;
    };
    {
      p_name = "visibility";
      p_doc =
        "abstract interpretation: never-written or non-minimal cells in \
         hand-picked visible sets";
      p_default = true;
      p_run = Passes.visibility_pass;
    };
    {
      p_name = "journal";
      p_doc =
        "abstract interpretation: cells carried across instructions that \
         a speculative rollback cannot restore";
      p_default = true;
      p_run = Passes.journal_pass;
    };
    {
      p_name = "coverage";
      p_doc = "decode-key values matching no instruction (informational)";
      p_default = false;
      p_run = Passes.coverage_pass;
    };
  ]

let pass_names = List.map (fun p -> p.p_name) passes

(** [selection flags] resolves [-W] flags into an enabled-set, or an
    error message naming the offending flag. *)
let selection (flags : string list) : ((string -> bool), string) result =
  let enabled : (string, bool) Hashtbl.t = Hashtbl.create 8 in
  List.iter (fun p -> Hashtbl.replace enabled p.p_name p.p_default) passes;
  let set v name = Hashtbl.replace enabled name v in
  let rec go = function
    | [] -> Ok (fun name -> Hashtbl.find_opt enabled name = Some true)
    | "all" :: rest ->
      List.iter (set true) pass_names;
      go rest
    | "no-all" :: rest ->
      List.iter (set false) pass_names;
      go rest
    | f :: rest ->
      let neg = String.length f > 3 && String.sub f 0 3 = "no-" in
      let name = if neg then String.sub f 3 (String.length f - 3) else f in
      if List.mem name pass_names then begin
        set (not neg) name;
        go rest
      end
      else
        Error
          (Printf.sprintf
             "unknown analysis pass '%s' (expected one of: all, %s)" f
             (String.concat ", " pass_names))
  in
  go flags

(** [run ?flags spec] runs the selected passes and returns their
    diagnostics in source order, deduplicated — the sort is total and
    identical diagnostics from different passes are collapsed, so the
    rendered output is byte-stable across runs. *)
let run ?(flags = []) (spec : Lis.Spec.t) : (Diag.t list, string) result =
  match selection flags with
  | Error _ as e -> e
  | Ok on ->
    Ok
      (passes
      |> List.concat_map (fun p -> if on p.p_name then p.p_run spec else [])
      |> List.stable_sort Diag.compare
      |> Diag.dedup)
