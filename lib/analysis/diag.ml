(** Structured diagnostics for the LIS static analyzer. See diag.mli. *)

type severity = Error | Warning | Note

let severity_name = function
  | Error -> "error"
  | Warning -> "warning"
  | Note -> "note"

type t = {
  code : string;
  severity : severity;
  pass : string;
  span : Lis.Loc.span;
  message : string;
  related : (Lis.Loc.span * string) list;
}

let make ~code ~pass ~severity ?(related = []) span fmt =
  Format.kasprintf
    (fun message -> { code; severity; pass; span; message; related })
    fmt

let compare a b =
  let p (s : Lis.Loc.span) = (s.start.file, s.start.line, s.start.col) in
  match Stdlib.compare (p a.span) (p b.span) with
  | 0 -> Stdlib.compare a.code b.code
  | c -> c

let pp ppf d =
  Format.fprintf ppf "%a: %s: %s [%s]" Lis.Loc.pp d.span
    (severity_name d.severity) d.message d.code;
  List.iter
    (fun (span, msg) ->
      Format.fprintf ppf "@\n  %a: note: %s" Lis.Loc.pp span msg)
    d.related

let counts ds =
  List.fold_left
    (fun (e, w, n) d ->
      match d.severity with
      | Error -> (e + 1, w, n)
      | Warning -> (e, w + 1, n)
      | Note -> (e, w, n + 1))
    (0, 0, 0) ds

let has_errors ds = List.exists (fun d -> d.severity = Error) ds

(* ------------------------------------------------------------------ *)
(* JSON rendering                                                      *)
(* ------------------------------------------------------------------ *)

let json_escape b s =
  String.iter
    (fun c ->
      match c with
      | '"' -> Buffer.add_string b "\\\""
      | '\\' -> Buffer.add_string b "\\\\"
      | '\n' -> Buffer.add_string b "\\n"
      | '\t' -> Buffer.add_string b "\\t"
      | c when Char.code c < 0x20 ->
        Buffer.add_string b (Printf.sprintf "\\u%04x" (Char.code c))
      | c -> Buffer.add_char b c)
    s

let json_str b s =
  Buffer.add_char b '"';
  json_escape b s;
  Buffer.add_char b '"'

let json_span b (s : Lis.Loc.span) =
  Printf.bprintf b "\"file\":";
  json_str b s.start.file;
  Printf.bprintf b ",\"line\":%d,\"col\":%d,\"end_line\":%d,\"end_col\":%d"
    s.start.line s.start.col s.stop.line s.stop.col

let json_diag b d =
  Buffer.add_char b '{';
  Printf.bprintf b "\"code\":";
  json_str b d.code;
  Printf.bprintf b ",\"severity\":";
  json_str b (severity_name d.severity);
  Printf.bprintf b ",\"pass\":";
  json_str b d.pass;
  Buffer.add_char b ',';
  json_span b d.span;
  Printf.bprintf b ",\"message\":";
  json_str b d.message;
  Printf.bprintf b ",\"related\":[";
  List.iteri
    (fun i (span, msg) ->
      if i > 0 then Buffer.add_char b ',';
      Buffer.add_char b '{';
      json_span b span;
      Printf.bprintf b ",\"message\":";
      json_str b msg;
      Buffer.add_char b '}')
    d.related;
  Buffer.add_string b "]}"

let json_report ~unit_name ds =
  let e, w, n = counts ds in
  let b = Buffer.create 1024 in
  Printf.bprintf b "{\"unit\":";
  json_str b unit_name;
  Printf.bprintf b ",\"errors\":%d,\"warnings\":%d,\"notes\":%d,\"diagnostics\":[" e w n;
  List.iteri
    (fun i d ->
      if i > 0 then Buffer.add_char b ',';
      json_diag b d)
    ds;
  Buffer.add_string b "]}";
  Buffer.contents b
