(** Structured diagnostics for the LIS static analyzer. See diag.mli. *)

type severity = Error | Warning | Note

let severity_name = function
  | Error -> "error"
  | Warning -> "warning"
  | Note -> "note"

type t = {
  code : string;
  severity : severity;
  pass : string;
  span : Lis.Loc.span;
  message : string;
  related : (Lis.Loc.span * string) list;
}

let make ~code ~pass ~severity ?(related = []) span fmt =
  Format.kasprintf
    (fun message -> { code; severity; pass; span; message; related })
    fmt

let compare a b =
  (* total order so sorted output is byte-stable across runs: full span,
     then code, then message, then producing pass *)
  let p (s : Lis.Loc.span) =
    (s.start.file, s.start.line, s.start.col, s.stop.line, s.stop.col)
  in
  match Stdlib.compare (p a.span) (p b.span) with
  | 0 -> (
    match Stdlib.compare a.code b.code with
    | 0 -> (
      match Stdlib.compare a.message b.message with
      | 0 -> Stdlib.compare a.pass b.pass
      | c -> c)
    | c -> c)
  | c -> c

(* Drop diagnostics identical up to the producing pass (two passes
   reporting the same fact at the same span). Input must be sorted with
   [compare]; the first occurrence wins. *)
let dedup ds =
  let same a b =
    a.code = b.code && a.severity = b.severity && a.message = b.message
    && a.span = b.span
  in
  let rec go = function
    | a :: b :: rest when same a b -> go (a :: rest)
    | a :: rest -> a :: go rest
    | [] -> []
  in
  go ds

let pp ppf d =
  Format.fprintf ppf "%a: %s: %s [%s]" Lis.Loc.pp d.span
    (severity_name d.severity) d.message d.code;
  List.iter
    (fun (span, msg) ->
      Format.fprintf ppf "@\n  %a: note: %s" Lis.Loc.pp span msg)
    d.related

let counts ds =
  List.fold_left
    (fun (e, w, n) d ->
      match d.severity with
      | Error -> (e + 1, w, n)
      | Warning -> (e, w + 1, n)
      | Note -> (e, w, n + 1))
    (0, 0, 0) ds

let has_errors ds = List.exists (fun d -> d.severity = Error) ds

(* ------------------------------------------------------------------ *)
(* JSON rendering                                                      *)
(* ------------------------------------------------------------------ *)

let json_escape b s =
  String.iter
    (fun c ->
      match c with
      | '"' -> Buffer.add_string b "\\\""
      | '\\' -> Buffer.add_string b "\\\\"
      | '\n' -> Buffer.add_string b "\\n"
      | '\t' -> Buffer.add_string b "\\t"
      | c when Char.code c < 0x20 ->
        Buffer.add_string b (Printf.sprintf "\\u%04x" (Char.code c))
      | c -> Buffer.add_char b c)
    s

let json_str b s =
  Buffer.add_char b '"';
  json_escape b s;
  Buffer.add_char b '"'

let json_span b (s : Lis.Loc.span) =
  Printf.bprintf b "\"file\":";
  json_str b s.start.file;
  Printf.bprintf b ",\"line\":%d,\"col\":%d,\"end_line\":%d,\"end_col\":%d"
    s.start.line s.start.col s.stop.line s.stop.col

let json_diag b d =
  Buffer.add_char b '{';
  Printf.bprintf b "\"code\":";
  json_str b d.code;
  Printf.bprintf b ",\"severity\":";
  json_str b (severity_name d.severity);
  Printf.bprintf b ",\"pass\":";
  json_str b d.pass;
  Buffer.add_char b ',';
  json_span b d.span;
  Printf.bprintf b ",\"message\":";
  json_str b d.message;
  Printf.bprintf b ",\"related\":[";
  List.iteri
    (fun i (span, msg) ->
      if i > 0 then Buffer.add_char b ',';
      Buffer.add_char b '{';
      json_span b span;
      Printf.bprintf b ",\"message\":";
      json_str b msg;
      Buffer.add_char b '}')
    d.related;
  Buffer.add_string b "]}"

(* ------------------------------------------------------------------ *)
(* SARIF 2.1.0 rendering                                               *)
(* ------------------------------------------------------------------ *)

let sarif_level = function
  | Error -> "error"
  | Warning -> "warning"
  | Note -> "note"

(* SARIF lines/columns are 1-based; clamp dummy spans *)
let sarif_region b (s : Lis.Loc.span) =
  Printf.bprintf b
    "{\"startLine\":%d,\"startColumn\":%d,\"endLine\":%d,\"endColumn\":%d}"
    (max 1 s.start.line) (max 1 s.start.col) (max 1 s.stop.line)
    (max 1 s.stop.col)

let sarif_location b (s : Lis.Loc.span) =
  Buffer.add_string b
    "{\"physicalLocation\":{\"artifactLocation\":{\"uri\":";
  json_str b s.start.file;
  Buffer.add_string b "},\"region\":";
  sarif_region b s;
  Buffer.add_string b "}}"

let sarif_run b ~unit_name ds =
  (* rule table: one entry per distinct code, in sorted order *)
  let rules =
    List.sort_uniq Stdlib.compare (List.map (fun d -> (d.code, d.pass)) ds)
  in
  Buffer.add_string b
    "{\"tool\":{\"driver\":{\"name\":\"lislint\",\"rules\":[";
  List.iteri
    (fun i (code, pass) ->
      if i > 0 then Buffer.add_char b ',';
      Printf.bprintf b "{\"id\":";
      json_str b code;
      Printf.bprintf b ",\"properties\":{\"pass\":";
      json_str b pass;
      Buffer.add_string b "}}")
    rules;
  Buffer.add_string b "]}},\"automationDetails\":{\"id\":";
  json_str b unit_name;
  Buffer.add_string b "},\"results\":[";
  List.iteri
    (fun i d ->
      if i > 0 then Buffer.add_char b ',';
      Printf.bprintf b "{\"ruleId\":";
      json_str b d.code;
      Printf.bprintf b ",\"level\":";
      json_str b (sarif_level d.severity);
      Printf.bprintf b ",\"message\":{\"text\":";
      json_str b d.message;
      Buffer.add_string b "},\"locations\":[";
      sarif_location b d.span;
      Buffer.add_char b ']';
      if d.related <> [] then begin
        Buffer.add_string b ",\"relatedLocations\":[";
        List.iteri
          (fun j (span, msg) ->
            if j > 0 then Buffer.add_char b ',';
            Buffer.add_string b
              "{\"physicalLocation\":{\"artifactLocation\":{\"uri\":";
            json_str b span.Lis.Loc.start.file;
            Buffer.add_string b "},\"region\":";
            sarif_region b span;
            Buffer.add_string b "},\"message\":{\"text\":";
            json_str b msg;
            Buffer.add_string b "}}")
          d.related;
        Buffer.add_char b ']'
      end;
      Buffer.add_char b '}')
    ds;
  Buffer.add_string b "]}"

let sarif_report ~units =
  let b = Buffer.create 4096 in
  Buffer.add_string b
    "{\"$schema\":\"https://json.schemastore.org/sarif-2.1.0.json\",\"version\":\"2.1.0\",\"runs\":[";
  List.iteri
    (fun i (unit_name, ds) ->
      if i > 0 then Buffer.add_char b ',';
      sarif_run b ~unit_name ds)
    units;
  Buffer.add_string b "]}";
  Buffer.contents b

let json_report ~unit_name ds =
  let e, w, n = counts ds in
  let b = Buffer.create 1024 in
  Printf.bprintf b "{\"unit\":";
  json_str b unit_name;
  Printf.bprintf b ",\"errors\":%d,\"warnings\":%d,\"notes\":%d,\"diagnostics\":[" e w n;
  List.iteri
    (fun i d ->
      if i > 0 then Buffer.add_char b ',';
      json_diag b d)
    ds;
  Buffer.add_string b "]}";
  Buffer.contents b
