(** The analysis passes of the LIS static analyzer ({!Lint}).

    Each pass maps a resolved {!Lis.Spec.t} to a list of {!Diag.t}. The
    passes work on the same artifacts the synthesizer consumes — the
    instruction table, the generated and user {!Semir.Ir} action bodies
    and the buildset entrypoint partitions — so anything they prove holds
    for every synthesized interface.

    Diagnostic code map:
    - L01x decoder soundness (shadowed instructions, suspicious overlap,
      decode-key coverage)
    - L02x def-before-use (uninitialized cell reads)
    - L03x dead state (write-only cells, unused operand fetches,
      unreachable statements, dead [next_pc] writes, unused actions)
    - L04x rollback safety (architected writes beyond the journal)
    - L05x width and constant checks
    - L06x buildset legality (hidden-but-crossing cells) *)

open Lis

(* ------------------------------------------------------------------ *)
(* Shared helpers                                                      *)
(* ------------------------------------------------------------------ *)

(** IR programs contributed by an action symbol for one instruction, with
    the action's name (the engine-owned [fetch] contributes none). *)
let programs_of (i : Spec.instr) = function
  | Spec.A_fetch -> []
  | Spec.A_decode -> [ ("decode", i.i_decode) ]
  | Spec.A_read_operands -> [ ("read_operands", i.i_read) ]
  | Spec.A_writeback -> [ ("writeback", i.i_writeback) ]
  | Spec.A_user name -> [ (name, Spec.user_action i name) ]

(** All of one instruction's programs in declared sequence order. *)
let sequence_programs (spec : Spec.t) (i : Spec.instr) :
    (string * Semir.Ir.program) list =
  Array.to_list spec.sequence |> List.concat_map (programs_of i)

let rec expr_reads_next_pc : Semir.Ir.expr -> bool = function
  | Next_pc -> true
  | Const _ | Cell _ | Enc _ | Pc -> false
  | Bin (_, a, b) -> expr_reads_next_pc a || expr_reads_next_pc b
  | Un (_, a) -> expr_reads_next_pc a
  | Ite (c, a, b) ->
    expr_reads_next_pc c || expr_reads_next_pc a || expr_reads_next_pc b
  | Load { addr; _ } -> expr_reads_next_pc addr
  | Reg_read { index; _ } -> expr_reads_next_pc index

let rec stmt_reads_next_pc : Semir.Ir.stmt -> bool = function
  | Set_cell (_, e) | Set_next_pc e | Fault_unaligned e ->
    expr_reads_next_pc e
  | Store { addr; value; _ } ->
    expr_reads_next_pc addr || expr_reads_next_pc value
  | Reg_write { index; value; _ } ->
    expr_reads_next_pc index || expr_reads_next_pc value
  | If (c, t, f) ->
    expr_reads_next_pc c
    || List.exists stmt_reads_next_pc t
    || List.exists stmt_reads_next_pc f
  | Fault_illegal | Fault_arith _ | Syscall | Halt -> false

(* ------------------------------------------------------------------ *)
(* Pass: decoder — L010 shadowed instruction, L011 suspicious overlap   *)
(* ------------------------------------------------------------------ *)

(** [overlap a b]: some encoding matches both [a] and [b]. *)
let overlap (a : Spec.instr) (b : Spec.instr) =
  let common = Int64.logand a.i_mask b.i_mask in
  Int64.equal (Int64.logand a.i_match common) (Int64.logand b.i_match common)

(** [subsumed_by a b]: every encoding matching [a] also matches [b]
    ([b]'s constrained bits are a subset of [a]'s and agree with it). *)
let subsumed_by (a : Spec.instr) (b : Spec.instr) =
  Int64.equal (Int64.logand b.i_mask (Int64.lognot a.i_mask)) 0L
  && Int64.equal b.i_match (Int64.logand a.i_match b.i_mask)

(** All index pairs [(i, j)], [i < j], whose encodings overlap — the
    ground truth the qcheck property compares brute-force decoding
    against. *)
let overlapping_pairs (spec : Spec.t) : (int * int) list =
  let res = ref [] in
  let n = Array.length spec.instrs in
  for i = n - 1 downto 0 do
    for j = n - 1 downto i + 1 do
      if overlap spec.instrs.(i) spec.instrs.(j) then res := (i, j) :: !res
    done
  done;
  !res

let decoder_pass (spec : Spec.t) : Diag.t list =
  List.concat_map
    (fun (ii, ji) ->
      let a = spec.instrs.(ii) and b = spec.instrs.(ji) in
      if subsumed_by b a then
        (* everything that matches the later b already matched a: the
           first-match-wins decoder can never select b *)
        [
          Diag.make ~code:"L010" ~pass:"decoder" ~severity:Diag.Error
            ~related:[ (a.i_span, Printf.sprintf "'%s' declared here" a.i_name) ]
            b.i_span
            "instruction '%s' is unreachable: every encoding it matches is \
             already matched by the earlier '%s' (first match wins)"
            b.i_name a.i_name;
        ]
      else if subsumed_by a b then
        (* the documented idiom: a specialized encoding declared before
           the general form it refines *)
        []
      else
        [
          Diag.make ~code:"L011" ~pass:"decoder" ~severity:Diag.Warning
            ~related:[ (a.i_span, Printf.sprintf "'%s' declared here" a.i_name) ]
            b.i_span
            "encodings of '%s' and the earlier '%s' partially overlap; on \
             the common encodings '%s' silently wins (declare a \
             specialization before its general form, or disambiguate the \
             masks)"
            b.i_name a.i_name a.i_name;
        ])
    (overlapping_pairs spec)

(* ------------------------------------------------------------------ *)
(* Pass: coverage — L012 decode-key values matching no instruction      *)
(* ------------------------------------------------------------------ *)

let coverage_pass (spec : Spec.t) : Diag.t list =
  if spec.decode_len > 20 then []
  else begin
    let n_keys = 1 lsl spec.decode_len in
    let key_mask =
      Int64.shift_left
        (Int64.sub (Int64.shift_left 1L spec.decode_len) 1L)
        spec.decode_lo
    in
    let covered = ref 0 in
    for key = 0 to n_keys - 1 do
      let key_bits = Int64.shift_left (Int64.of_int key) spec.decode_lo in
      let matches (i : Spec.instr) =
        let fixed = Int64.logand i.i_mask key_mask in
        Int64.equal (Int64.logand key_bits fixed)
          (Int64.logand i.i_match fixed)
      in
      if Array.exists matches spec.instrs then incr covered
    done;
    if !covered = n_keys then []
    else
      [
        Diag.make ~code:"L012" ~pass:"coverage" ~severity:Diag.Note
          spec.isa_span
          "decode key bits [%d,+%d]: %d of %d values match no instruction \
           (those encodings decode to an illegal-instruction fault)"
          spec.decode_lo spec.decode_len (n_keys - !covered) n_keys;
      ]
  end

(* ------------------------------------------------------------------ *)
(* Pass: defuse — L020 read-never-written, L021 maybe-uninitialized     *)
(* ------------------------------------------------------------------ *)

type init_status = Undef | Maybe | Def

let defuse_pass (spec : Spec.t) : Diag.t list =
  let diags = ref [] in
  Array.iter
    (fun (i : Spec.instr) ->
      let st = Array.make (Spec.n_cells spec) Undef in
      let reported : (int, unit) Hashtbl.t = Hashtbl.create 4 in
      let read ~guarded action (st : init_status array) c =
        if not (Hashtbl.mem reported c) then
          match st.(c) with
          | Def -> ()
          | Undef ->
            Hashtbl.add reported c ();
            diags :=
              Diag.make ~code:"L020" ~pass:"defuse" ~severity:Diag.Error
                ~related:
                  [
                    ( spec.cells.(c).cell_span,
                      Printf.sprintf "'%s' declared here"
                        (Spec.cell_name spec c) );
                  ]
                i.i_span
                "instruction '%s': cell '%s' is read in action '%s' but is \
                 never written earlier in the sequence (the read sees \
                 stale or undefined data)"
                i.i_name (Spec.cell_name spec c) action
              :: !diags
          | Maybe ->
            (* a guarded read of a sometimes-written cell is assumed to be
               correlated with the write's guard (the common predication
               idiom); an unguarded read is not excusable that way *)
            if not guarded then begin
              Hashtbl.add reported c ();
              diags :=
                Diag.make ~code:"L021" ~pass:"defuse" ~severity:Diag.Warning
                  ~related:
                    [
                      ( spec.cells.(c).cell_span,
                        Printf.sprintf "'%s' declared here"
                          (Spec.cell_name spec c) );
                    ]
                  i.i_span
                  "instruction '%s': cell '%s' is read unconditionally in \
                   action '%s' but written only on some paths before it"
                  i.i_name (Spec.cell_name spec c) action
                :: !diags
            end
      in
      let rec expr ~guarded action (st : init_status array) :
          Semir.Ir.expr -> unit = function
        | Const _ | Enc _ | Pc | Next_pc -> ()
        | Cell c -> read ~guarded action st c
        | Bin (_, a, b) ->
          expr ~guarded action st a;
          expr ~guarded action st b
        | Un (_, a) -> expr ~guarded action st a
        | Ite (c, a, b) ->
          expr ~guarded action st c;
          expr ~guarded:true action st a;
          expr ~guarded:true action st b
        | Load { addr; _ } -> expr ~guarded action st addr
        | Reg_read { index; _ } -> expr ~guarded action st index
      in
      let rec stmt ~guarded action (st : init_status array) :
          Semir.Ir.stmt -> unit = function
        | Set_cell (c, e) ->
          expr ~guarded action st e;
          st.(c) <- Def
        | Store { addr; value; _ } ->
          expr ~guarded action st addr;
          expr ~guarded action st value
        | Set_next_pc e | Fault_unaligned e -> expr ~guarded action st e
        | Reg_write { index; value; _ } ->
          expr ~guarded action st index;
          expr ~guarded action st value
        | If (c, t, f) ->
          expr ~guarded action st c;
          let st_t = Array.copy st and st_f = Array.copy st in
          List.iter (stmt ~guarded:true action st_t) t;
          List.iter (stmt ~guarded:true action st_f) f;
          Array.iteri
            (fun k _ -> st.(k) <- (if st_t.(k) = st_f.(k) then st_t.(k) else Maybe))
            st
        | Fault_illegal | Fault_arith _ | Syscall | Halt -> ()
      in
      List.iter
        (fun (action, prog) -> List.iter (stmt ~guarded:false action st) prog)
        (sequence_programs spec i))
    spec.instrs;
  List.rev !diags

(* ------------------------------------------------------------------ *)
(* Pass: deadstate — L030..L034                                         *)
(* ------------------------------------------------------------------ *)

let deadstate_pass (spec : Spec.t) : Diag.t list =
  let diags = ref [] in
  let add d = diags := d :: !diags in
  let module Iset = Set.Make (Int) in
  (* global def/use over every instruction's full sequence *)
  let all_reads = ref Iset.empty and all_writes = ref Iset.empty in
  Array.iter
    (fun (i : Spec.instr) ->
      List.iter
        (fun (_, p) ->
          all_reads :=
            Iset.union !all_reads (Iset.of_list (Semir.Ir.program_reads p));
          all_writes :=
            Iset.union !all_writes (Iset.of_list (Semir.Ir.program_writes p)))
        (sequence_programs spec i))
    spec.instrs;
  (* L030: a field that is never read can still earn its keep by being
     interface-visible (written for the timing simulator to consume) —
     but only a *selective* visibility listing expresses that intent, so
     blanket [visibility all] buildsets do not exempt it. *)
  let intent_visible c =
    Array.exists
      (fun (bs : Spec.buildset) ->
        bs.bs_visible.(c) && not (Array.for_all Fun.id bs.bs_visible))
      spec.buildsets
  in
  Array.iteri
    (fun c (info : Spec.cell_info) ->
      match info.kind with
      | K_field _ when c <> spec.opclass_cell ->
        let read = Iset.mem c !all_reads and written = Iset.mem c !all_writes in
        if (not read) && not (intent_visible c) then
          if written then
            add
              (Diag.make ~code:"L030" ~pass:"deadstate" ~severity:Diag.Warning
                 info.cell_span
                 "field '%s' is written but never read, and no buildset \
                  selectively exposes it (dead state)"
                 info.cell_name)
          else if not written then
            add
              (Diag.make ~code:"L030" ~pass:"deadstate" ~severity:Diag.Warning
                 info.cell_span "field '%s' is never used" info.cell_name)
      | _ -> ())
    spec.cells;
  (* L031: operand fetched but unused. Uses are reads anywhere outside
     the generated read_operands program (the writeback commit of a
     read-write operand is a legitimate use: the fetch carries the old
     value through). *)
  Array.iter
    (fun (i : Spec.instr) ->
      let uses =
        List.fold_left
          (fun acc (action, p) ->
            if String.equal action "read_operands" then acc
            else Iset.union acc (Iset.of_list (Semir.Ir.program_reads p)))
          Iset.empty (sequence_programs spec i)
      in
      Array.iter
        (fun (o : Spec.operand) ->
          if o.op_read && not (Iset.mem o.op_val_cell uses) then
            add
              (Diag.make ~code:"L031" ~pass:"deadstate" ~severity:Diag.Warning
                 i.i_span
                 "instruction '%s': operand '%s' is fetched by \
                  read_operands but its value is never used"
                 i.i_name o.op_name))
        i.i_operands)
    spec.instrs;
  (* L032: statements after an unconditional fault/halt *)
  let rec stmt_terminates : Semir.Ir.stmt -> bool = function
    | Fault_illegal | Fault_unaligned _ | Fault_arith _ | Halt -> true
    | If (_, t, f) -> block_terminates t && block_terminates f
    | _ -> false
  and block_terminates stmts = List.exists stmt_terminates stmts in
  Array.iter
    (fun (i : Spec.instr) ->
      let rec check_block action = function
        | [] -> ()
        | s :: rest ->
          (match s with
          | Semir.Ir.If (_, t, f) ->
            check_block action t;
            check_block action f
          | _ -> ());
          if stmt_terminates s && rest <> [] then
            add
              (Diag.make ~code:"L032" ~pass:"deadstate" ~severity:Diag.Warning
                 i.i_span
                 "instruction '%s': %d statement(s) in action '%s' follow \
                  an unconditional fault/halt and can never take effect"
                 i.i_name (List.length rest) action)
          else check_block action rest
      in
      List.iter
        (fun (action, p) -> check_block action p)
        (sequence_programs spec i))
    spec.instrs;
  (* L033: an unconditional next_pc write overwritten by a later
     unconditional one with no intervening next_pc read *)
  Array.iter
    (fun (i : Spec.instr) ->
      let pending = ref None in
      List.iter
        (fun (action, p) ->
          List.iter
            (fun (s : Semir.Ir.stmt) ->
              if stmt_reads_next_pc s then pending := None;
              match s with
              | Set_next_pc _ ->
                (match !pending with
                | Some first_action ->
                  add
                    (Diag.make ~code:"L033" ~pass:"deadstate"
                       ~severity:Diag.Warning i.i_span
                       "instruction '%s': next_pc assigned unconditionally \
                        in action '%s' is overwritten in action '%s' \
                        without being read"
                       i.i_name first_action action)
                | None -> ());
                pending := Some action
              | If _ ->
                (* a conditional write only sometimes overwrites: the
                   earlier write still matters on the other path *)
                ()
              | _ -> ())
            p)
        (sequence_programs spec i))
    spec.instrs;
  (* L034: user actions of the sequence that no instruction defines *)
  Array.iter
    (function
      | Spec.A_user name ->
        let used =
          Array.exists
            (fun (i : Spec.instr) -> List.mem_assoc name i.i_user)
            spec.instrs
        in
        if not used then
          add
            (Diag.make ~code:"L034" ~pass:"deadstate" ~severity:Diag.Warning
               spec.isa_span
               "action '%s' appears in the sequence but no instruction \
                defines it"
               name)
      | _ -> ())
    spec.sequence;
  List.rev !diags

(* ------------------------------------------------------------------ *)
(* Pass: rollback — L040 architected write beyond the journal           *)
(* ------------------------------------------------------------------ *)

type sysc = NoSys | MaybeSys | AfterSys

let rollback_pass (spec : Spec.t) : Diag.t list =
  let spec_buildsets =
    Array.to_list spec.buildsets
    |> List.filter (fun (b : Spec.buildset) -> b.bs_speculation)
    |> List.map (fun (b : Spec.buildset) -> b.bs_name)
  in
  if spec_buildsets = [] then []
  else begin
    let diags = ref [] in
    let bs_list = String.concat ", " spec_buildsets in
    Array.iter
      (fun (i : Spec.instr) ->
        let reported : (string, unit) Hashtbl.t = Hashtbl.create 2 in
        let report action what certain =
          let key = action ^ "/" ^ what in
          if not (Hashtbl.mem reported key) then begin
            Hashtbl.add reported key ();
            diags :=
              Diag.make ~code:"L040" ~pass:"rollback" ~severity:Diag.Error
                i.i_span
                "instruction '%s': %s in action '%s' %s executes after \
                 'syscall'; the rollback journal does not cover \
                 OS-emulator effects, so a speculative interface (%s) \
                 cannot undo it"
                i.i_name what action
                (if certain then "always" else "may")
                bs_list
              :: !diags
          end
        in
        let rec stmt action (after : sysc) : Semir.Ir.stmt -> sysc =
         fun s ->
          match s with
          | Syscall -> AfterSys
          | Store _ ->
            if after <> NoSys then report action "store" (after = AfterSys);
            after
          | Reg_write _ ->
            if after <> NoSys then
              report action "register write" (after = AfterSys);
            after
          | If (_, t, f) ->
            let at = List.fold_left (stmt action) after t in
            let af = List.fold_left (stmt action) after f in
            if at = af then at
            else if at = NoSys && af = NoSys then NoSys
            else MaybeSys
          | Set_cell _ | Set_next_pc _ | Fault_illegal | Fault_unaligned _
          | Fault_arith _ | Halt ->
            after
        in
        ignore
          (List.fold_left
             (fun after (action, p) -> List.fold_left (stmt action) after p)
             NoSys
             (sequence_programs spec i)))
      spec.instrs;
    List.rev !diags
  end

(* ------------------------------------------------------------------ *)
(* Pass: width — L050 out-of-word bitfield, L051 shift >= 64,           *)
(*               L052 lossy sext/zext                                   *)
(* ------------------------------------------------------------------ *)

(** Bits needed to represent a constant as an unsigned value (64 for
    negative constants). *)
let const_bits (c : int64) =
  if Int64.compare c 0L < 0 then 64
  else
    let rec go n v = if Int64.equal v 0L then max n 1 else go (n + 1) (Int64.shift_right_logical v 1) in
    go 0 c

(** Statically known width of an expression's value, when obvious. *)
let known_width : Semir.Ir.expr -> int option = function
  | Enc { len; signed = false; _ } -> Some len
  | Const c -> Some (const_bits c)
  | _ -> None

let width_pass (spec : Spec.t) : Diag.t list =
  let diags = ref [] in
  Array.iter
    (fun (i : Spec.instr) ->
      let word_bits = i.i_size * 8 in
      let reported : (string, unit) Hashtbl.t = Hashtbl.create 4 in
      let once key d =
        if not (Hashtbl.mem reported key) then begin
          Hashtbl.add reported key ();
          diags := d :: !diags
        end
      in
      let rec expr action : Semir.Ir.expr -> unit = function
        | Const _ | Cell _ | Pc | Next_pc -> ()
        | Enc { lo; len; _ } ->
          if lo + len > word_bits then
            once
              (Printf.sprintf "enc/%d/%d" lo len)
              (Diag.make ~code:"L050" ~pass:"width" ~severity:Diag.Error
                 i.i_span
                 "instruction '%s': bitfield [%d,+%d] in action '%s' \
                  reaches bit %d but the instruction word has only %d bits"
                 i.i_name lo len action (lo + len - 1) word_bits)
        | Bin (op, a, b) ->
          (match (op, b) with
          | (Shl | Lshr | Ashr | Ror), Const k
            when Int64.compare k 64L >= 0 || Int64.compare k 0L < 0 ->
            once
              (Printf.sprintf "shift/%Ld" k)
              (Diag.make ~code:"L051" ~pass:"width" ~severity:Diag.Warning
                 i.i_span
                 "instruction '%s': shift/rotate amount %Ld in action '%s' \
                  is outside [0,63] (shift amounts are taken modulo 64)"
                 i.i_name k action)
          | _ -> ());
          expr action a;
          expr action b
        | Un (op, a) ->
          (match op with
          | Sext n | Zext n -> (
            match known_width a with
            | Some w when w > n ->
              once
                (Printf.sprintf "ext/%d/%d" n w)
                (Diag.make ~code:"L052" ~pass:"width" ~severity:Diag.Warning
                   i.i_span
                   "instruction '%s': extension to %d bits in action '%s' \
                    discards the high bits of a %d-bit value"
                   i.i_name n action w)
            | _ -> ())
          | _ -> ());
          expr action a
        | Ite (c, a, b) ->
          expr action c;
          expr action a;
          expr action b
        | Load { addr; _ } -> expr action addr
        | Reg_read { index; _ } -> expr action index
      in
      let rec stmt action : Semir.Ir.stmt -> unit = function
        | Set_cell (_, e) | Set_next_pc e | Fault_unaligned e -> expr action e
        | Store { addr; value; _ } ->
          expr action addr;
          expr action value
        | Reg_write { index; value; _ } ->
          expr action index;
          expr action value
        | If (c, t, f) ->
          expr action c;
          List.iter (stmt action) t;
          List.iter (stmt action) f
        | Fault_illegal | Fault_arith _ | Syscall | Halt -> ()
      in
      List.iter
        (fun (action, p) -> List.iter (stmt action) p)
        (sequence_programs spec i))
    spec.instrs;
  List.rev !diags

(* ------------------------------------------------------------------ *)
(* Pass: buildset — L060 hidden-but-crossing cells                      *)
(* ------------------------------------------------------------------ *)

(** One hidden-but-crossing occurrence: [x_cell] is written by entrypoint
    [x_writer] of instruction [x_instr] and read by the later entrypoint
    [x_reader], but the buildset does not make it visible. This is the
    paper's dominant interface bug, detected statically
    ({!Specsim.Liveness} is a thin shim over this function). *)
type crossing = {
  x_instr : string;
  x_cell : int;
  x_writer : string;
  x_reader : string;
}

let crossings (spec : Spec.t) (bs : Spec.buildset) : crossing list =
  let module Iset = Set.Make (Int) in
  let violations = ref [] in
  Array.iter
    (fun (i : Spec.instr) ->
      let eps =
        Array.map
          (fun (name, syms) ->
            let progs =
              List.concat_map
                (fun sym -> List.map snd (programs_of i sym))
                syms
            in
            let reads =
              List.fold_left
                (fun s p ->
                  Iset.union s (Iset.of_list (Semir.Ir.program_reads p)))
                Iset.empty progs
            in
            let writes =
              List.fold_left
                (fun s p ->
                  Iset.union s (Iset.of_list (Semir.Ir.program_writes p)))
                Iset.empty progs
            in
            (name, reads, writes))
          bs.bs_entrypoints
      in
      let n = Array.length eps in
      for w = 0 to n - 1 do
        for r = w + 1 to n - 1 do
          let wname, _, writes = eps.(w) in
          let rname, reads, _ = eps.(r) in
          Iset.iter
            (fun c ->
              if Iset.mem c reads && not bs.bs_visible.(c) then
                violations :=
                  {
                    x_instr = i.i_name;
                    x_cell = c;
                    x_writer = wname;
                    x_reader = rname;
                  }
                  :: !violations)
            writes
        done
      done)
    spec.instrs;
  List.rev !violations

let buildset_pass (spec : Spec.t) : Diag.t list =
  Array.to_list spec.buildsets
  |> List.concat_map (fun (bs : Spec.buildset) ->
         let vs = crossings spec bs in
         (* one diagnostic per (cell, writer, reader), with the number of
            affected instructions *)
         let groups : (int * string * string, int) Hashtbl.t =
           Hashtbl.create 8
         in
         let order = ref [] in
         List.iter
           (fun v ->
             let key = (v.x_cell, v.x_writer, v.x_reader) in
             match Hashtbl.find_opt groups key with
             | Some n -> Hashtbl.replace groups key (n + 1)
             | None ->
               Hashtbl.add groups key 1;
               order := key :: !order)
           vs;
         List.rev_map
           (fun ((cell, writer, reader) as key) ->
             let n = Hashtbl.find groups key in
             Diag.make ~code:"L060" ~pass:"buildset" ~severity:Diag.Error
               ~related:
                 [
                   ( spec.cells.(cell).cell_span,
                     Printf.sprintf "'%s' declared here"
                       (Spec.cell_name spec cell) );
                 ]
               bs.bs_span
               "buildset '%s': cell '%s' is written by entrypoint '%s' and \
                read by the later entrypoint '%s' but is hidden (%d \
                instruction(s) affected); hidden cells cannot be trusted \
                across interface calls"
               bs.bs_name (Spec.cell_name spec cell) writer reader n)
           !order)

(* ------------------------------------------------------------------ *)
(* Abstract-interpretation passes (L07x effect, L08x visibility, L09x  *)
(* journal) — all built on the per-class summaries of {!Absint}.       *)
(* ------------------------------------------------------------------ *)

(** L070–L072: effect and purity facts per instruction class.

    - L070: the [address] action has an architected effect (memory
      store, register write, syscall or halt). By the paper's
      addressing convention the address action only computes cells, so
      the timing simulator may call it early and repeatedly; an
      architected effect there executes once per *call*, not once per
      instruction.
    - L071: a register index expression whose interval exceeds the
      class size — the access is silently clamped at runtime.
    - L072: a memory access whose address is provably misaligned (the
      congruence excludes every aligned value). *)
let effect_pass (spec : Spec.t) : Diag.t list =
  let module A = Semir.Absint in
  let diags = ref [] in
  let add d = diags := d :: !diags in
  let sums = Absint.summarize spec in
  Array.iter
    (fun (s : Absint.summary) ->
      let i = s.s_instr in
      (* L070 *)
      List.iter
        (fun (name, (r : A.result)) ->
          if String.equal name "address" && A.architected_effect r.effects
          then begin
            let what =
              List.filter_map Fun.id
                [
                  (if r.effects.stores then Some "a memory store" else None);
                  (if not (A.Iset.is_empty r.effects.reg_writes) then
                     Some "a register write"
                   else None);
                  (if r.effects.syscall then Some "a syscall" else None);
                  (if r.effects.halt then Some "a halt" else None);
                ]
            in
            add
              (Diag.make ~code:"L070" ~pass:"effect" ~severity:Diag.Warning
                 i.i_span
                 "instruction '%s': action 'address' has an architected \
                  effect (%s); address actions are assumed pure so a \
                  timing model may call them early and more than once"
                 i.i_name
                 (String.concat ", " what))
          end)
        s.s_actions;
      (* L071, one diagnostic per affected class *)
      let flagged = Hashtbl.create 4 in
      List.iter
        (fun (ra : A.reg_access) ->
          match ra.ra_index.itv with
          | Some (_, hi)
            when Int64.compare hi
                   (Int64.of_int spec.reg_classes.(ra.ra_cls).count)
                 >= 0
                 && not (Hashtbl.mem flagged ra.ra_cls) ->
            Hashtbl.add flagged ra.ra_cls ();
            add
              (Diag.make ~code:"L071" ~pass:"effect" ~severity:Diag.Warning
                 i.i_span
                 "instruction '%s': register index into class '%s' can \
                  reach %Ld but the class has %d registers; out-of-range \
                  indices are clamped at runtime"
                 i.i_name
                 spec.reg_classes.(ra.ra_cls).cname
                 hi
                 spec.reg_classes.(ra.ra_cls).count)
          | _ -> ())
        s.s_total.reg_acc;
      (* L072, one diagnostic per distinct (width, kind) *)
      let flagged = Hashtbl.create 4 in
      List.iter
        (fun (ma : A.mem_access) ->
          let key = (ma.ma_width, ma.ma_store) in
          if A.misaligned ma && not (Hashtbl.mem flagged key) then begin
            Hashtbl.add flagged key ();
            add
              (Diag.make ~code:"L072" ~pass:"effect" ~severity:Diag.Warning
                 i.i_span
                 "instruction '%s': %d-byte %s address is always \
                  congruent to %Ld (mod %Ld) and can never be aligned"
                 i.i_name
                 (Semir.Ir.bytes_of_width ma.ma_width)
                 (if ma.ma_store then "store" else "load")
                 ma.ma_addr.rem ma.ma_addr.modulus)
          end)
        s.s_total.mem_acc)
    sums;
  List.rev !diags

(** L080/L081: visibility minimality for hand-picked ([show]/[hide])
    visible sets. L080: a shown cell no instruction ever writes — its DI
    slot never carries defined data. L081 (note): a shown cell no
    entrypoint crossing (nor, under speculation, any cross-instruction
    carrier) requires — hiding it turns its DI store into a scratch
    local, the paper's minimal-visibility win. *)
let visibility_pass (spec : Spec.t) : Diag.t list =
  let explicit =
    Array.to_list spec.buildsets
    |> List.filter (fun (b : Spec.buildset) -> b.bs_explicit_visibility)
  in
  if explicit = [] then []
  else begin
    let module I = Absint.Iset in
    let sums = Absint.summarize spec in
    let written =
      Array.fold_left
        (fun acc (s : Absint.summary) ->
          I.union acc s.s_total.effects.writes)
        I.empty sums
    in
    List.concat_map
      (fun (bs : Spec.buildset) ->
        let minimal = Absint.minimal_visible spec sums bs in
        let ds = ref [] in
        Array.iteri
          (fun c visible ->
            if visible && c <> spec.opclass_cell then
              if not (I.mem c written) then
                ds :=
                  Diag.make ~code:"L080" ~pass:"visibility"
                    ~severity:Diag.Warning
                    ~related:
                      [
                        ( spec.cells.(c).cell_span,
                          Printf.sprintf "'%s' declared here"
                            (Spec.cell_name spec c) );
                      ]
                    bs.bs_span
                    "buildset '%s': visible cell '%s' is never written by \
                     any instruction; its interface slot never carries \
                     defined data"
                    bs.bs_name (Spec.cell_name spec c)
                  :: !ds
              else if not (I.mem c minimal) then
                ds :=
                  Diag.make ~code:"L081" ~pass:"visibility"
                    ~severity:Diag.Note
                    ~related:
                      [
                        ( spec.cells.(c).cell_span,
                          Printf.sprintf "'%s' declared here"
                            (Spec.cell_name spec c) );
                      ]
                    bs.bs_span
                    "buildset '%s': visible cell '%s' is not required by \
                     any entrypoint crossing; hiding it would turn its \
                     interface store into a scratch local (try 'lisim \
                     check --suggest-buildset')"
                    bs.bs_name (Spec.cell_name spec c)
                  :: !ds)
          bs.bs_visible;
        List.rev !ds)
      explicit
  end

(** L090/L091: rollback sufficiency for cross-instruction carriers.
    The speculation journal restores registers, memory, pc and machine
    control state — but not frame cells. A cell that carries a value
    from one dynamic instruction into a later one therefore survives a
    rollback with its wrong-path value: an error when the carrier is
    hidden (nothing outside the engine can even see it to fix it), a
    warning when visible (the timing simulator would have to re-supply
    it by hand). Semantic deepening of the syntactic L040 check. *)
let journal_pass (spec : Spec.t) : Diag.t list =
  let speculative =
    Array.to_list spec.buildsets
    |> List.filter (fun (b : Spec.buildset) -> b.bs_speculation)
  in
  if speculative = [] then []
  else begin
    let sums = Absint.summarize spec in
    let carriers = Absint.carriers sums in
    List.concat_map
      (fun (bs : Spec.buildset) ->
        List.map
          (fun (c : Absint.carrier) ->
            let name = Spec.cell_name spec c.c_cell in
            let related =
              [
                ( spec.cells.(c.c_cell).cell_span,
                  Printf.sprintf "'%s' declared here" name );
              ]
            in
            if not bs.bs_visible.(c.c_cell) then
              Diag.make ~code:"L090" ~pass:"journal" ~severity:Diag.Error
                ~related bs.bs_span
                "buildset '%s': hidden cell '%s' carries a value across \
                 instructions (read by '%s' before any write, written by \
                 '%s') but the speculation journal only restores \
                 registers, memory and control state; after a rollback \
                 the cell keeps its wrong-path value"
                bs.bs_name name c.c_reader c.c_writer
            else
              Diag.make ~code:"L091" ~pass:"journal" ~severity:Diag.Warning
                ~related bs.bs_span
                "buildset '%s': visible cell '%s' carries a value across \
                 instructions (read by '%s', written by '%s'); rollback \
                 does not restore interface cells, so the timing \
                 simulator must re-supply it after every mis-speculation"
                bs.bs_name name c.c_reader c.c_writer)
          carriers)
      speculative
  end
