(** Spec-level abstract interpretation: per-instruction-class effect
    summaries over {!Semir.Absint}, and the visibility / journal
    questions built on them.

    One summary per instruction class covers the whole action sequence
    with the abstract state threaded across actions (so a cell set by
    [address] is a known interval inside [memory]). The same summaries
    feed three consumers: the L07x/L08x/L09x lint passes, the
    synthesizer's store-free gating, and [--suggest-buildset]. *)

module A = Semir.Absint
module Iset = A.Iset
module Spec = Lis.Spec

type summary = {
  s_instr : Spec.instr;
  s_actions : (string * A.result) list;
      (** per named action body, in sequence order *)
  s_total : A.result;  (** sequential composition of the whole sequence *)
}

(* Same mapping as [programs_of]; duplicated (it is six lines) so
   the module dependency runs Passes -> Absint, not both ways. *)
let programs_of (i : Spec.instr) = function
  | Spec.A_fetch -> []
  | Spec.A_decode -> [ ("decode", i.i_decode) ]
  | Spec.A_read_operands -> [ ("read_operands", i.i_read) ]
  | Spec.A_writeback -> [ ("writeback", i.i_writeback) ]
  | Spec.A_user name -> [ (name, Spec.user_action i name) ]

let sequence_programs (spec : Spec.t) (i : Spec.instr) =
  Array.to_list spec.sequence |> List.concat_map (programs_of i)

let summarize_instr (spec : Spec.t) (i : Spec.instr) : summary =
  let n_cells = Spec.n_cells spec in
  let path = A.fresh_path ~n_cells in
  let actions, total =
    List.fold_left
      (fun (acts, total) (name, prog) ->
        let r = A.analyze path prog in
        ((name, r) :: acts, A.compose_result total r))
      ([], A.no_result)
      (sequence_programs spec i)
  in
  { s_instr = i; s_actions = List.rev actions; s_total = total }

let summarize (spec : Spec.t) : summary array =
  Array.map (summarize_instr spec) spec.instrs

(** A class is store-free when no path through its sequence can write
    memory — directly ([Store]) or via the syscall handler, which may
    mutate arbitrary state. Store-free classes can never invalidate a
    translated block, so they are safe for the memory fast path and for
    mid-block recheck elision. *)
let store_free (s : summary) =
  (not s.s_total.effects.stores) && not s.s_total.effects.syscall

(** {1 Cross-instruction carriers} *)

(** A cell that carries a value from one dynamic instruction to a later
    one: some class reads it before any write (so the value comes from
    outside the instruction) and some class writes it. The speculation
    journal restores registers, memory and machine control state but not
    frame cells, so carriers are wrong-path leaks under speculation. *)
type carrier = { c_cell : int; c_reader : string; c_writer : string }

let carriers (sums : summary array) : carrier list =
  let reader = Hashtbl.create 16 and writer = Hashtbl.create 16 in
  Array.iter
    (fun s ->
      Iset.iter
        (fun c ->
          if not (Hashtbl.mem reader c) then
            Hashtbl.add reader c s.s_instr.Spec.i_name)
        s.s_total.A.effects.A.reads;
      Iset.iter
        (fun c ->
          if not (Hashtbl.mem writer c) then
            Hashtbl.add writer c s.s_instr.Spec.i_name)
        s.s_total.A.effects.A.writes)
    sums;
  Hashtbl.fold
    (fun c r acc ->
      match Hashtbl.find_opt writer c with
      | Some w -> { c_cell = c; c_reader = r; c_writer = w } :: acc
      | None -> acc)
    reader []
  |> List.sort (fun a b -> compare a.c_cell b.c_cell)

(** {1 Visibility minimality} *)

(** Cells a buildset's entrypoint partition actually requires visible:
    written by one entrypoint and read by a later one, in some class.
    Matches the hidden-crossing check ({!Passes.crossings} / L060)
    exactly, so a buildset showing precisely this set passes liveness. *)
let required_visible (spec : Spec.t) (bs : Spec.buildset) : Iset.t =
  let req = ref Iset.empty in
  Array.iter
    (fun (i : Spec.instr) ->
      let eps =
        Array.map
          (fun (_, syms) ->
            let progs =
              List.concat_map
                (fun sym -> List.map snd (programs_of i sym))
                syms
            in
            let reads =
              List.fold_left
                (fun s p ->
                  Iset.union s (Iset.of_list (Semir.Ir.program_reads p)))
                Iset.empty progs
            in
            let writes =
              List.fold_left
                (fun s p ->
                  Iset.union s (Iset.of_list (Semir.Ir.program_writes p)))
                Iset.empty progs
            in
            (reads, writes))
          bs.bs_entrypoints
      in
      let n = Array.length eps in
      for w = 0 to n - 1 do
        for r = w + 1 to n - 1 do
          let _, writes = eps.(w) in
          let reads, _ = eps.(r) in
          req := Iset.union !req (Iset.inter writes reads)
        done
      done)
    spec.instrs;
  !req

(** The minimal visible set for a buildset: entrypoint crossings, plus —
    under speculation — the cross-instruction carriers (a hidden carrier
    survives rollback with its wrong-path value, L090). *)
let minimal_visible (spec : Spec.t) (sums : summary array) (bs : Spec.buildset)
    : Iset.t =
  let req = required_visible spec bs in
  if bs.bs_speculation then
    List.fold_left
      (fun s (c : carrier) -> Iset.add c.c_cell s)
      req (carriers sums)
  else req

(** Re-parseable LIS text for [bs] with its visibility tightened to the
    minimal set. Returns [None] when the buildset is already minimal. *)
let suggest_buildset (spec : Spec.t) (sums : summary array)
    (bs : Spec.buildset) : string option =
  let minimal = minimal_visible spec sums bs in
  let shown =
    Array.to_list
      (Array.mapi (fun c v -> if v then Some c else None) bs.bs_visible)
    |> List.filter_map Fun.id
  in
  let keep = List.filter (fun c -> Iset.mem c minimal) shown in
  if List.length keep = List.length shown then None
  else begin
    let b = Buffer.create 256 in
    Printf.bprintf b "buildset %s {\n" bs.bs_name;
    Printf.bprintf b "  speculation %s;\n"
      (if bs.bs_speculation then "on" else "off");
    if bs.bs_block then Buffer.add_string b "  semantic block;\n";
    (match keep with
    | [] -> Buffer.add_string b "  visibility min;\n"
    | cells ->
      Printf.bprintf b "  visibility show %s;\n"
        (String.concat ", " (List.map (Spec.cell_name spec) cells)));
    Array.iter
      (fun (name, syms) ->
        Printf.bprintf b "  entrypoint %s = %s;\n" name
          (String.concat ", " (List.map Spec.action_sym_name syms)))
      bs.bs_entrypoints;
    Buffer.add_string b "}\n";
    Some (Buffer.contents b)
  end
