(** Structured diagnostics for the LIS static analyzer ({!Lint}).

    Every diagnostic carries a stable code ([L0xx] — codes never change
    meaning once shipped), a severity, the name of the pass that produced
    it, a source span to anchor the message, and optional related notes
    pointing at other spans (the shadowing instruction, the declaration
    site of a cell, ...). Two renderers are provided: a compiler-style
    text form and a JSON form for tooling. *)

type severity = Error | Warning | Note

val severity_name : severity -> string

type t = {
  code : string;  (** stable diagnostic code, e.g. ["L010"] *)
  severity : severity;
  pass : string;  (** producing pass, the [-W] selection key *)
  span : Lis.Loc.span;
  message : string;
  related : (Lis.Loc.span * string) list;  (** secondary notes *)
}

(** [make ~code ~pass ~severity ?related span fmt ...] builds a
    diagnostic with a formatted message. *)
val make :
  code:string ->
  pass:string ->
  severity:severity ->
  ?related:(Lis.Loc.span * string) list ->
  Lis.Loc.span ->
  ('a, Format.formatter, unit, t) format4 ->
  'a

(** Total source order: by file, full span, code, message, then pass —
    sorting with it makes rendered output byte-stable across runs. *)
val compare : t -> t -> int

(** Collapse adjacent diagnostics identical up to the producing pass.
    The list must already be sorted with {!compare}. *)
val dedup : t list -> t list

(** Compiler-style rendering: ["file:line:col: error: message [L010]"]
    followed by one indented ["note:"] line per related span. *)
val pp : Format.formatter -> t -> unit

(** [(errors, warnings, notes)] counts. *)
val counts : t list -> int * int * int

val has_errors : t list -> bool

(** [json_report ~unit_name diags] renders one report object:
    [{"unit": ..., "errors": n, "warnings": n, "notes": n,
      "diagnostics": [{"code", "severity", "pass", "file", "line", "col",
      "end_line", "end_col", "message", "related": [...]}, ...]}]. *)
val json_report : unit_name:string -> t list -> string

(** [sarif_report ~units] renders a SARIF 2.1.0 document with one run
    per analyzed unit. Rule ids are the stable diagnostic codes; the
    unit name lands in [automationDetails.id]. *)
val sarif_report : units:(string * t list) list -> string
