(** Workload harness: builds program images for every simulated ISA and
    runs them through synthesized interfaces.

    This is the "benchmark programs" layer of the paper's validation
    (§V-D): the same kernels run on every ISA and every interface, and the
    observable behaviour (exit status, emulated-OS output) must agree with
    the VIR reference executor. *)

(* [workload.ml] is the library's interface module; re-export the
   hostile-kernel corpus so clients see it as [Workload.Hostile]. *)
module Hostile = Hostile

let code_base = 0x1000L

type target = {
  tname : string;
  spec : Lis.Spec.t Lazy.t;
  encode : base:int64 -> Vir.Lang.program -> int64 list;
}

let alpha =
  {
    tname = "alpha";
    spec = Isa_alpha.Alpha.spec;
    encode = Isa_alpha.Alpha_asm.encode;
  }

let arm =
  { tname = "arm"; spec = Isa_arm.Arm.spec; encode = Isa_arm.Arm_asm.encode }

let ppc =
  { tname = "ppc"; spec = Isa_ppc.Ppc.spec; encode = Isa_ppc.Ppc_asm.encode }

let riscv =
  {
    tname = "riscv";
    spec = Isa_riscv.Riscv.spec;
    encode = Isa_riscv.Riscv_asm.encode;
  }

let targets = [ alpha; arm; ppc; riscv ]

let find_target name =
  match List.find_opt (fun t -> String.equal t.tname name) targets with
  | Some t -> t
  | None ->
    Machine.Sim_error.raisef ~component:"workload" ~context:[ ("isa", name) ]
      "unknown ISA"

(** A machine loaded with a program and connected to a fresh OS emulator,
    ready to run. *)
type loaded = {
  iface : Specsim.Iface.t;
  os : Machine.Os_emu.t;
  image_words : int;
}

(** [load_image ?input t program st] prepares a machine for [program]:
    fresh OS emulator installed, code words written at {!code_base}, pc
    reset. Returns the OS emulator (its output buffer is per-machine).
    This is {!load} without the interface synthesis — the supervised
    runtime uses it to prepare several machines identically. *)
let load_image ?obs ?input (t : target) (program : Vir.Lang.program)
    (st : Machine.State.t) : Machine.Os_emu.t =
  let spec = Lazy.force t.spec in
  let os = Machine.Os_emu.create ?obs ?input () in
  (match spec.abi with
  | Some abi -> Machine.Os_emu.install os abi st
  | None ->
    Machine.Sim_error.raisef ~component:"workload" ~context:[ ("isa", t.tname) ]
      "ISA has no abi declaration");
  let words = t.encode ~base:code_base program in
  List.iteri
    (fun i w ->
      Machine.Memory.write st.mem
        ~addr:(Int64.add code_base (Int64.of_int (4 * i)))
        ~width:4 w)
    words;
  Machine.State.reset st ~pc:code_base;
  os

(** [load target ~buildset kernel] synthesizes the interface, assembles the
    kernel and installs it at the code base with the OS emulator hooked up.
    [obs] compiles instrumentation into the interface (see
    {!Specsim.Synth.make}); omitted, the interface is uninstrumented. *)
let load ?(backend = Specsim.Synth.Compiled) ?chain ?site_cache ?absint ?obs
    ?input (t : target) ~buildset (program : Vir.Lang.program) : loaded =
  let iface =
    Specsim.Synth.make ~backend ?chain ?site_cache ?absint ?obs
      (Lazy.force t.spec) buildset
  in
  let os = load_image ?obs ?input t program iface.st in
  { iface; os; image_words = List.length (t.encode ~base:code_base program) }

type outcome = {
  exit_status : int;  (** low byte, as in the VIR reference *)
  output : string;
  instructions : int64;
}

(* Non-termination and configuration problems surface as structured
   {!Machine.Sim_error.Error} values, not ad-hoc exceptions. *)
let did_not_terminate ~why (st : Machine.State.t) =
  Machine.Sim_error.raisef ~component:"workload"
    ~context:
      [ ("instructions", Int64.to_string st.instr_count);
        ("pc", Printf.sprintf "0x%Lx" st.pc) ]
    "%s" why

(** [run_to_completion ?budget loaded] drives the interface until the
    program exits. *)
let run_to_completion ?(budget = 1_000_000_000) (l : loaded) : outcome =
  let st = l.iface.st in
  let _ = Specsim.Iface.run_n l.iface budget in
  if not st.halted then did_not_terminate ~why:"instruction budget exhausted" st;
  match Machine.State.exit_status st with
  | Some s ->
    {
      exit_status = s land 0xff;
      output = Machine.Os_emu.output l.os;
      instructions = st.instr_count;
    }
  | None ->
    did_not_terminate st
      ~why:
        (match st.fault with
        | Some f -> "faulted: " ^ Machine.Fault.to_string f
        | None -> "halted without exit status")

(** [run target ~buildset kernel] — load and run in one step. *)
let run ?backend ?chain ?site_cache ?obs ?input ?budget (t : target) ~buildset
    program : outcome =
  run_to_completion ?budget
    (load ?backend ?chain ?site_cache ?obs ?input t ~buildset program)

(** [reference kernel] runs the VIR reference executor. *)
let reference ?input (program : Vir.Lang.program) : outcome =
  let r = Vir.Lang.run ?input program in
  {
    exit_status = r.exit_status;
    output = r.output;
    instructions = Int64.of_int r.dyn_instrs;
  }

(** [agrees a b] compares the observable behaviour (not instruction counts,
    which legitimately differ between ISAs). *)
let agrees (a : outcome) (b : outcome) =
  a.exit_status = b.exit_status && String.equal a.output b.output

(* ------------------------------------------------------------------ *)
(* Rotating-interface validation (paper §V-D)                           *)
(* ------------------------------------------------------------------ *)

(** [run_rotating target ~buildsets kernel] validates all the interfaces at
    once the way the paper does: every dynamic instruction (or basic
    block, for block-semantic interfaces) is executed through a different
    interface than the previous one, all interfaces sharing one machine.
    This "ensures the validity of all of the interfaces without requiring
    a complete validation run per interface". *)
let run_rotating ?input ?(budget = 100_000_000) (t : target) ~buildsets
    (program : Vir.Lang.program) : outcome =
  let spec = Lazy.force t.spec in
  let st = Lis.Spec.make_machine spec in
  let ifaces =
    List.map (fun bs -> Specsim.Synth.make ~st spec bs) buildsets
  in
  let ifaces = Array.of_list ifaces in
  if Array.length ifaces = 0 then
    Machine.Sim_error.raisef ~component:"workload" "run_rotating: no buildsets";
  let os = Machine.Os_emu.create ?input () in
  (match spec.abi with
  | Some abi -> Machine.Os_emu.install os abi st
  | None ->
    Machine.Sim_error.raisef ~component:"workload" ~context:[ ("isa", t.tname) ]
      "ISA has no abi declaration");
  let words = t.encode ~base:code_base program in
  List.iteri
    (fun i w ->
      Machine.Memory.write st.mem
        ~addr:(Int64.add code_base (Int64.of_int (4 * i)))
        ~width:4 w)
    words;
  Machine.State.reset st ~pc:code_base;
  let dis =
    Array.map
      (fun (i : Specsim.Iface.t) ->
        Specsim.Di.create ~info_slots:i.slots.di_size)
      ifaces
  in
  let k = ref 0 in
  let steps = ref 0 in
  while (not st.halted) && Int64.to_int st.instr_count < budget do
    let i = !k mod Array.length ifaces in
    let iface = ifaces.(i) in
    (* Block-semantic interfaces advance by a whole basic block; the
       others by one instruction — exactly the paper's procedure. *)
    if iface.bs.bs_block then ignore (iface.run_block ())
    else begin
      (* A Step interface is driven through all its entrypoints. *)
      let n = Specsim.Iface.n_entrypoints iface in
      if n = 1 then iface.run_one dis.(i)
      else begin
        let di = dis.(i) in
        di.pc <- st.pc;
        di.instr_index <- -1;
        di.fault <- None;
        let e = ref 0 in
        while !e < n && not st.halted do
          iface.step di !e;
          incr e
        done;
        if not st.halted then iface.retire di
      end
    end;
    incr k;
    incr steps;
    if !steps > budget then st.halted <- true
  done;
  if not st.halted then did_not_terminate ~why:"rotating budget exhausted" st;
  match Machine.State.exit_status st with
  | Some s ->
    {
      exit_status = s land 0xff;
      output = Machine.Os_emu.output os;
      instructions = st.instr_count;
    }
  | None -> did_not_terminate ~why:"halted without exit status" st
