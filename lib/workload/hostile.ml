(** Hostile workloads: kernels built to stress the interface machinery
    itself rather than the ALU.

    The benchmark kernels in {!Vir.Kernels} reproduce the paper's SPEC-like
    instruction mixes; these four instead attack the block engine's
    assumptions, the way real "bad" programs do:

    - [gc_chase]       pointer chasing that *mutates* the heap as it walks
                       it (GC-style mark phase): dependent loads plus
                       read-modify-write traffic on the same lines;
    - [interp]         a threaded interpreter whose one indirect-jump
                       dispatch site is megamorphic — it defeats the
                       bi-morphic successor cache, so block-mode chain hit
                       rates collapse;
    - [syscall_storm]  one emulated-OS call every few instructions: blocks
                       stay short and every one ends in the slow path;
    - [trampoline]     self-modifying code: position-independent snippets
                       are byte-copied into a scratch region and executed,
                       alternating between two bodies, so translated
                       blocks must be invalidated every round.

    The first three agree with the VIR reference executor. [trampoline]
    cannot (the reference's [La] values are instruction indices, so
    copied "code" is meaningless there); it carries an analytic expected
    exit status instead and is validated by cross-interface agreement. *)

open Vir.Lang

type kernel = {
  hname : string;
  program : program;
  reference_safe : bool;
      (** may be run under {!Vir.Lang.run}; [trampoline] may not *)
  expected_exit : int option;
      (** analytic exit status for kernels the reference cannot run *)
}

let data_base = Vir.Kernels.data_base

(* ------------------------------------------------------------------ *)
(* GC-like mutating pointer chase                                      *)
(* ------------------------------------------------------------------ *)

(** [n] 16-byte nodes (next, payload, mark, pad) permuted by a stride
    co-prime to [n]; [steps] dependent loads, each bumping the visited
    node's mark word — a mark phase over a scrambled heap. *)
let gc_chase ~n ~steps =
  [
    Li (8, data_base);
    Li (9, Int32.of_int n);
    Li (10, 0l) (* i *);
    Label "build";
    (* j = (i*7 + 3) mod n, by repeated subtraction *)
    Shli (11, 10, 3);
    Sub (11, 11, 10);
    Addi (11, 11, 3) (* 8i - i + 3 = 7i + 3 *);
    Label "mod";
    Bcond (Lt, 11, 9, "modok");
    Sub (11, 11, 9);
    Jmp "mod";
    Label "modok";
    (* node i at base + 16*i; next = base + 16*j *)
    Shli (12, 10, 4);
    Add (12, 12, 8);
    Shli (13, 11, 4);
    Add (13, 13, 8);
    Stw (13, 12, 0);
    (* payload = i ^ 0xA5A5; mark = 0 *)
    Li (14, 0xA5A5l);
    Xor_ (14, 14, 10);
    Stw (14, 12, 4);
    Li (14, 0l);
    Stw (14, 12, 8);
    Addi (10, 10, 1);
    Bcond (Ne, 10, 9, "build");
    (* mark-and-chase *)
    Li (4, 0l);
    Mv (6, 8);
    Li (10, Int32.of_int steps);
    Li (11, 0l);
    Label "chase";
    Ldw (12, 6, 4) (* payload *);
    Add (4, 4, 12);
    Ldw (12, 6, 8) (* mark++ — the heap mutates under the walk *);
    Addi (12, 12, 1);
    Stw (12, 6, 8);
    Add (4, 4, 12);
    Ldw (6, 6, 0) (* follow next *);
    Addi (11, 11, 1);
    Bcond (Ne, 11, 10, "chase");
  ]
  @ Vir.Kernels.epilogue

(* ------------------------------------------------------------------ *)
(* Threaded interpreter                                                *)
(* ------------------------------------------------------------------ *)

(** A bytecode program of [prog_len] opcodes (0..3), dispatched [rounds]
    times through a handler table built with [La] and jumped through with
    [Jr]. The single dispatch site rotates through four targets — a
    megamorphic indirect jump, the worst case for two-way block
    chaining. *)
let interp ~prog_len ~rounds =
  let table = Int32.add data_base (Int32.of_int (prog_len + 256)) in
  [
    (* fill bytecode: op(i) = (i*13 + 5) & 3 *)
    Li (8, data_base);
    Li (9, Int32.of_int prog_len);
    Li (10, 0l);
    Label "fill";
    Li (12, 13l);
    Mul (11, 10, 12);
    Addi (11, 11, 5);
    Andi (11, 11, 3);
    Stb (11, 8, 0);
    Addi (8, 8, 1);
    Addi (10, 10, 1);
    Bcond (Ne, 10, 9, "fill");
    (* handler table: four code addresses, stored then loaded opaquely *)
    Li (6, table);
    La (7, "op0");
    Stw (7, 6, 0);
    La (7, "op1");
    Stw (7, 6, 4);
    La (7, "op2");
    Stw (7, 6, 8);
    La (7, "op3");
    Stw (7, 6, 12);
    Li (4, 0l) (* vm accumulator / checksum *);
    Li (13, Int32.of_int rounds);
    Li (14, 0l) (* round *);
    Label "round";
    Li (8, data_base);
    Li (10, 0l) (* vm pc *);
    Label "fetch";
    Add (5, 8, 10);
    Ldb (11, 5, 0);
    Shli (11, 11, 2);
    Add (11, 11, 6);
    Ldw (11, 11, 0);
    Jr 11 (* the megamorphic dispatch *);
    Label "op0";
    Addi (4, 4, 1);
    Jmp "next";
    Label "op1";
    Xor_ (4, 4, 10);
    Jmp "next";
    Label "op2";
    Shli (5, 4, 5) (* acc = acc * 33 *);
    Add (4, 4, 5);
    Jmp "next";
    Label "op3";
    Add (4, 4, 10);
    Jmp "next";
    Label "next";
    Addi (10, 10, 1);
    Bcond (Ne, 10, 9, "fetch");
    Addi (14, 14, 1);
    Bcond (Ne, 14, 13, "round");
  ]
  @ Vir.Kernels.epilogue

(* ------------------------------------------------------------------ *)
(* Syscall storm                                                       *)
(* ------------------------------------------------------------------ *)

(** [n] iterations, each making two OS calls (a 1-byte write and a
    getpid) a handful of instructions apart: every basic block ends at
    the OS boundary, so block translation buys almost nothing. *)
let syscall_storm ~n =
  let out = Int32.of_int Vir.Kernels.out_buf in
  [
    Li (9, Int32.of_int n);
    Li (10, 0l);
    Li (4, 0l);
    Label "loop";
    (* byte = 32 + ((i*29 + 5) & 63) — printable, round-trips as output *)
    Li (12, 29l);
    Mul (11, 10, 12);
    Addi (11, 11, 5);
    Andi (11, 11, 63);
    Addi (11, 11, 32);
    Li (5, out);
    Stb (11, 5, 0);
    Li (0, 1l) (* sys_write *);
    Li (1, 1l);
    Li (2, out);
    Li (3, 1l);
    Sys;
    Add (4, 4, 0) (* ret = 1 *);
    Li (0, 5l) (* sys_getpid *);
    Sys;
    Add (4, 4, 0) (* ret = 42 *);
    Addi (10, 10, 1);
    Bcond (Ne, 10, 9, "loop");
  ]
  @ Vir.Kernels.epilogue

(* ------------------------------------------------------------------ *)
(* Self-modifying trampoline                                           *)
(* ------------------------------------------------------------------ *)

let tramp_base = 0x0020_0000l

(** Each round byte-copies one of two position-independent snippets
    (delimited by [La] label pairs) into a scratch region and jumps
    there; the snippet returns through a register. Alternating bodies
    force the block engine to invalidate and retranslate the trampoline
    page every round. Runs [rounds] rounds; even rounds add 7 to the
    checksum, odd rounds add 11 then xor in the round number. *)
let trampoline ~rounds =
  [
    Li (8, Int32.of_int rounds);
    Li (10, 0l) (* round *);
    Li (4, 0l) (* checksum *);
    Label "round";
    Andi (11, 10, 1);
    Li (12, 0l);
    Bcond (Ne, 11, 12, "useB");
    La (5, "snipA");
    La (6, "snipA_end");
    Jmp "copy";
    Label "useB";
    La (5, "snipB");
    La (6, "snipB_end");
    Label "copy";
    Li (7, tramp_base);
    Label "cploop";
    Bcond (Geu, 5, 6, "run");
    Ldb (11, 5, 0);
    Stb (11, 7, 0) (* writes into the (translated) trampoline page *);
    Addi (5, 5, 1);
    Addi (7, 7, 1);
    Jmp "cploop";
    Label "run";
    La (13, "back") (* return address *);
    Li (7, tramp_base);
    Jr 7 (* execute what we just wrote *);
    Label "back";
    Addi (10, 10, 1);
    Bcond (Ne, 10, 8, "round");
  ]
  @ Vir.Kernels.epilogue
  (* the snippet bodies: never reached in the main flow (the epilogue
     exits), only byte-copied. Register-only ops + a register jump, so
     they are position-independent under every lowering. *)
  @ [
      Label "snipA";
      Addi (4, 4, 7);
      Jr 13;
      Label "snipA_end";
      Label "snipB";
      Addi (4, 4, 11);
      Xor_ (4, 4, 10);
      Jr 13;
      Label "snipB_end";
    ]

(** The analytic result of [trampoline ~rounds] (the reference executor
    cannot run it — see the module doc). *)
let trampoline_exit ~rounds =
  let v4 = ref 0l in
  for r = 0 to rounds - 1 do
    if r land 1 = 0 then v4 := Int32.add !v4 7l
    else v4 := Int32.logxor (Int32.add !v4 11l) (Int32.of_int r)
  done;
  Int32.to_int !v4 land 0xff

(* ------------------------------------------------------------------ *)
(* Suites                                                              *)
(* ------------------------------------------------------------------ *)

let make ?expected_exit ~reference_safe hname program =
  { hname; program; reference_safe; expected_exit }

let test_suite =
  [
    make ~reference_safe:true "gc_chase" (gc_chase ~n:64 ~steps:512);
    make ~reference_safe:true "interp" (interp ~prog_len:96 ~rounds:4);
    make ~reference_safe:true "syscall_storm" (syscall_storm ~n:64);
    make ~reference_safe:false
      ~expected_exit:(trampoline_exit ~rounds:8)
      "trampoline" (trampoline ~rounds:8);
  ]

let bench_suite =
  [
    make ~reference_safe:true "gc_chase" (gc_chase ~n:1024 ~steps:50_000);
    make ~reference_safe:true "interp" (interp ~prog_len:2048 ~rounds:12);
    make ~reference_safe:true "syscall_storm" (syscall_storm ~n:4000);
    make ~reference_safe:false
      ~expected_exit:(trampoline_exit ~rounds:400)
      "trampoline" (trampoline ~rounds:400);
  ]
