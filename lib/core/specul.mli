(** Rollback journal: speculation support synthesized into an interface.

    Logs the old value of every architectural write (via {!Semir.Hooks})
    between checkpoints; [rollback] replays the log backwards. Tokens are
    monotonically increasing ints; checkpoints nest. Speculation across a
    syscall is not supported (the OS emulator's buffers are not
    journaled). The hot paths are tuned: this journal is the entire cost
    of a speculative interface (paper Table III's last row). *)

type t

val create : unit -> t

(** Record the old value of a register / memory word about to be written.
    Normally called through {!hooks} by compiled code. *)
val record_reg : t -> Machine.State.t -> int -> unit

val record_store : t -> Machine.State.t -> int64 -> int -> unit

(** Hooks to compile into speculative interfaces. *)
val hooks : t -> Semir.Hooks.t

(** [checkpoint t st] opens a speculative region, returning its token. *)
val checkpoint : t -> Machine.State.t -> int

(** [rollback t st token] undoes every architectural effect recorded since
    [checkpoint] returned [token], restoring pc, instruction count and any
    speculatively-raised fault.
    @raise Invalid_argument if the token was committed or never issued. *)
val rollback : t -> Machine.State.t -> int -> unit

(** [commit t token] declares everything up to and including the region
    opened at [token] non-speculative; when no open region remains the log
    resets to empty. *)
val commit : t -> int -> unit

(** Number of open (uncommitted) checkpoints. *)
val depth : t -> int

(** Discard committed log entries (bounded-memory sliding window);
    issued tokens remain valid. *)
val compact : t -> unit

(** Log sizes (registers, memory words), for tests and statistics. *)
val log_sizes : t -> int * int

(** Checkpoints ever issued (committed and live). *)
val checkpoints_issued : t -> int

(** Lifetime undo statistics: [(rollbacks, register writes undone,
    stores undone)]. Updated only on the rollback path. *)
val undo_stats : t -> int * int * int

(** Export journal state as "specul.*" pull gauges (zero fast-path cost). *)
val register_obs : t -> Obs.t -> unit

(** [auto_trim t ~window] keeps at most [window] open checkpoints by
    committing the oldest; called once per instruction by the engine. *)
val auto_trim : t -> window:int -> unit
