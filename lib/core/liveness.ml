(** Static cross-entrypoint liveness check — now a thin shim.

    The real analysis lives in {!Analysis.Passes.crossings}, where it is
    one of the lislint passes (diagnostic L060); this module keeps the
    historical synthesis-time API that {!Synth.make} enforces. The check
    itself is unchanged: any cell written in one entrypoint and read in a
    later one must be interface-visible — hidden cells live in scratch
    storage that is not part of the per-instruction record and cannot be
    trusted across interface calls (several dynamic instructions may be
    in flight). *)

type violation = {
  v_instr : string;
  v_cell : string;
  v_writer : string;  (** entrypoint that writes the cell *)
  v_reader : string;  (** later entrypoint that reads it *)
}

let pp_violation ppf v =
  Format.fprintf ppf
    "instruction %s: cell '%s' is written by entrypoint '%s' and read by \
     later entrypoint '%s' but is hidden by the buildset"
    v.v_instr v.v_cell v.v_writer v.v_reader

(** [check spec bs] returns all hidden-but-crossing cells. An empty list
    means the buildset is safe for any number of in-flight instructions. *)
let check (spec : Lis.Spec.t) (bs : Lis.Spec.buildset) : violation list =
  List.map
    (fun (x : Analysis.Passes.crossing) ->
      {
        v_instr = x.x_instr;
        v_cell = Lis.Spec.cell_name spec x.x_cell;
        v_writer = x.x_writer;
        v_reader = x.x_reader;
      })
    (Analysis.Passes.crossings spec bs)

(** Deduplicated (cell, writer, reader) triples across instructions —
    the form a user wants to read. *)
let summarize (vs : violation list) : (string * string * string) list =
  List.sort_uniq compare
    (List.map (fun v -> (v.v_cell, v.v_writer, v.v_reader)) vs)
