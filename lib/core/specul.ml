(** Rollback journal: speculation support synthesized into an interface.

    The paper handles speculation by carrying "enough information to roll
    back the architectural effects of each instruction". This journal logs
    the old value of every register and memory write (via {!Semir.Hooks})
    between checkpoints; [rollback] replays the log backwards.

    Tokens are monotonically increasing ints. Checkpoints nest: rolling
    back to an older token undoes everything after it. Committing a token
    merely forgets the ability to roll back before it. Speculation across
    a syscall is not supported — the OS emulator's buffers are not
    journaled — and syscall instructions end speculative regions in all
    shipped simulators.

    The layout is tuned for the per-instruction fast path (this is the
    entire cost of a speculative interface, paper Table III's last row):
    checkpoint marks are packed into immediate ints so a checkpoint is a
    couple of unboxed stores plus a capacity check. *)

type t = {
  mutable reg_flat : int array;
  mutable reg_old : int64 array;
  mutable reg_n : int;
  mutable mem_addr : int64 array;
  mutable mem_old : int64 array;
  mutable mem_width : int array;
  mutable mem_n : int;
  (* per checkpoint: packed (reg_n << 31) | mem_n, plus pc and retired
     count at checkpoint time *)
  mutable ck_meta : int array;
  mutable ck_pc : int64 array;
  mutable ck_count : int64 array;
  mutable ck_n : int;
  mutable committed : int;  (** internal indices below this are committed *)
  mutable base : int;
      (** external token = [base] + internal index; [compact] shifts
          internal indices but leaves issued tokens valid *)
  (* rollback statistics — updated only on the (cold) rollback path, so
     the per-instruction fast path is untouched *)
  mutable rollbacks : int;
  mutable undone_regs : int;
  mutable undone_stores : int;
}

let create () =
  {
    reg_flat = Array.make 256 0;
    reg_old = Array.make 256 0L;
    reg_n = 0;
    mem_addr = Array.make 256 0L;
    mem_old = Array.make 256 0L;
    mem_width = Array.make 256 0;
    mem_n = 0;
    ck_meta = Array.make 256 0;
    ck_pc = Array.make 256 0L;
    ck_count = Array.make 256 0L;
    ck_n = 0;
    committed = 0;
    base = 0;
    rollbacks = 0;
    undone_regs = 0;
    undone_stores = 0;
  }

let pack ~reg_n ~mem_n = (reg_n lsl 31) lor mem_n
let meta_reg m = m lsr 31
let meta_mem m = m land 0x7FFFFFFF

let[@inline never] grow_regs t =
  let cap = 2 * Array.length t.reg_flat in
  t.reg_flat <- Array.append t.reg_flat (Array.make (cap / 2) 0);
  t.reg_old <- Array.append t.reg_old (Array.make (cap / 2) 0L)

let[@inline never] grow_mem t =
  let cap = 2 * Array.length t.mem_addr in
  t.mem_addr <- Array.append t.mem_addr (Array.make (cap / 2) 0L);
  t.mem_old <- Array.append t.mem_old (Array.make (cap / 2) 0L);
  t.mem_width <- Array.append t.mem_width (Array.make (cap / 2) 0)

let[@inline never] grow_ck t =
  let cap = 2 * Array.length t.ck_meta in
  t.ck_meta <- Array.append t.ck_meta (Array.make (cap / 2) 0);
  t.ck_pc <- Array.append t.ck_pc (Array.make (cap / 2) 0L);
  t.ck_count <- Array.append t.ck_count (Array.make (cap / 2) 0L)

let record_reg t (st : Machine.State.t) flat =
  let n = t.reg_n in
  if n >= Array.length t.reg_flat then grow_regs t;
  Array.unsafe_set t.reg_flat n flat;
  Array.unsafe_set t.reg_old n (Machine.Regfile.read_flat st.regs flat);
  t.reg_n <- n + 1

let record_store t (st : Machine.State.t) addr width =
  let n = t.mem_n in
  if n >= Array.length t.mem_addr then grow_mem t;
  Array.unsafe_set t.mem_addr n addr;
  Array.unsafe_set t.mem_old n (Machine.Memory.read st.mem ~addr ~width);
  Array.unsafe_set t.mem_width n width;
  t.mem_n <- n + 1

(** Hooks to compile into speculative interfaces. *)
let hooks t : Semir.Hooks.t =
  {
    on_reg_write = (fun st flat -> record_reg t st flat);
    on_store = (fun st addr width -> record_store t st addr width);
  }

(** [checkpoint t st] opens a new speculative region and returns its token. *)
let checkpoint t (st : Machine.State.t) : int =
  let n = t.ck_n in
  if n >= Array.length t.ck_meta then grow_ck t;
  Array.unsafe_set t.ck_meta n (pack ~reg_n:t.reg_n ~mem_n:t.mem_n);
  Array.unsafe_set t.ck_pc n st.pc;
  Array.unsafe_set t.ck_count n st.instr_count;
  t.ck_n <- n + 1;
  t.base + n

(** [rollback t st token] undoes every architectural effect recorded since
    [checkpoint] returned [token], restoring pc and instruction count.
    @raise Invalid_argument if [token] was already committed or never issued. *)
let rollback t (st : Machine.State.t) token =
  let token = token - t.base in
  if token < t.committed || token >= t.ck_n then
    invalid_arg "Specul.rollback: invalid token";
  let meta = t.ck_meta.(token) in
  let reg_mark = meta_reg meta and mem_mark = meta_mem meta in
  t.rollbacks <- t.rollbacks + 1;
  t.undone_regs <- t.undone_regs + (t.reg_n - reg_mark);
  t.undone_stores <- t.undone_stores + (t.mem_n - mem_mark);
  for i = t.reg_n - 1 downto reg_mark do
    Machine.Regfile.write_flat st.regs t.reg_flat.(i) t.reg_old.(i)
  done;
  t.reg_n <- reg_mark;
  for i = t.mem_n - 1 downto mem_mark do
    Machine.Memory.write st.mem ~addr:t.mem_addr.(i) ~width:t.mem_width.(i)
      t.mem_old.(i)
  done;
  t.mem_n <- mem_mark;
  st.pc <- t.ck_pc.(token);
  st.next_pc <- t.ck_pc.(token);
  st.instr_count <- t.ck_count.(token);
  (* Rolling back also cancels any fault raised speculatively. *)
  st.fault <- None;
  st.halted <- false;
  t.ck_n <- token

(** [commit t token] declares everything up to and including the region
    opened at [token] non-speculative. When no open region remains, the
    log is reset to empty. *)
let commit t token =
  let token = token - t.base in
  if token >= t.ck_n then invalid_arg "Specul.commit: invalid token";
  if token + 1 > t.committed then t.committed <- token + 1;
  if t.committed >= t.ck_n then begin
    t.base <- t.base + t.ck_n;
    t.ck_n <- 0;
    t.committed <- 0;
    t.reg_n <- 0;
    t.mem_n <- 0
  end

(** Number of open (uncommitted) checkpoints. *)
let depth t = t.ck_n - t.committed

(** [compact t] discards committed log entries, shifting the arrays down.
    Called by the engine when the committed prefix grows large, so a
    sliding-window speculation policy runs in bounded memory. *)
let compact t =
  if t.committed > 0 then begin
    let ck0 = t.committed in
    let live_ck = t.ck_n - ck0 in
    let reg0 = if live_ck > 0 then meta_reg t.ck_meta.(ck0) else t.reg_n in
    let mem0 = if live_ck > 0 then meta_mem t.ck_meta.(ck0) else t.mem_n in
    Array.blit t.ck_pc ck0 t.ck_pc 0 live_ck;
    Array.blit t.ck_count ck0 t.ck_count 0 live_ck;
    for i = 0 to live_ck - 1 do
      let m = t.ck_meta.(ck0 + i) in
      t.ck_meta.(i) <- pack ~reg_n:(meta_reg m - reg0) ~mem_n:(meta_mem m - mem0)
    done;
    Array.blit t.reg_flat reg0 t.reg_flat 0 (t.reg_n - reg0);
    Array.blit t.reg_old reg0 t.reg_old 0 (t.reg_n - reg0);
    t.reg_n <- t.reg_n - reg0;
    Array.blit t.mem_addr mem0 t.mem_addr 0 (t.mem_n - mem0);
    Array.blit t.mem_old mem0 t.mem_old 0 (t.mem_n - mem0);
    Array.blit t.mem_width mem0 t.mem_width 0 (t.mem_n - mem0);
    t.mem_n <- t.mem_n - mem0;
    t.ck_n <- live_ck;
    t.base <- t.base + ck0;
    t.committed <- 0
  end

(** Log sizes, for tests and statistics. *)
let log_sizes t = (t.reg_n, t.mem_n)

(** Checkpoints ever issued (committed and live). *)
let checkpoints_issued t = t.base + t.ck_n

(** Lifetime undo statistics: [(rollbacks, register writes undone,
    stores undone)]. *)
let undo_stats t = (t.rollbacks, t.undone_regs, t.undone_stores)

(** [register_obs t obs] exports the journal's state as pull gauges
    under the "specul." namespace — sampled at snapshot time, costing
    the simulation loop nothing. *)
let register_obs t (obs : Obs.t) =
  let open Obs.Registry in
  probe obs.reg "specul.depth" (fun () -> Int (t.ck_n - t.committed));
  probe obs.reg "specul.checkpoints" (fun () -> Int (checkpoints_issued t));
  probe obs.reg "specul.rollbacks" (fun () -> Int t.rollbacks);
  probe obs.reg "specul.undone_reg_writes" (fun () -> Int t.undone_regs);
  probe obs.reg "specul.undone_stores" (fun () -> Int t.undone_stores);
  probe obs.reg "specul.log_reg_entries" (fun () -> Int t.reg_n);
  probe obs.reg "specul.log_mem_entries" (fun () -> Int t.mem_n)

(** [auto_trim t ~window] keeps at most [window] open checkpoints by
    committing the oldest, compacting occasionally. The engine calls this
    once per instruction when it auto-checkpoints, giving speculative
    interfaces a bounded-memory sliding rollback horizon. *)
let auto_trim t ~window =
  if t.ck_n - t.committed > window then begin
    commit t (t.base + t.committed);
    if t.committed > 4096 then compact t
  end
