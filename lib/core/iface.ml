(** The synthesized functional-to-timing simulator interface.

    A value of this type is what {!Synth.make} hands to a timing simulator:
    a functional simulator specialized to one buildset. The three semantic
    shapes of the paper map to three call styles:

    - [run_block]: one call executes a basic block (Block detail);
    - [run_one]: one call executes a single instruction (One detail);
    - [step]: one call executes one entrypoint of one dynamic instruction
      (Step detail) — the timing simulator controls when each piece of the
      instruction's behaviour happens.

    Informational detail is realized in the {!Di.t} records: only cells the
    buildset makes visible have DI slots ([slot_of]). Speculation, when
    enabled, gives per-instruction checkpoints ([Di.ckpt]) plus
    [rollback] / [redirect]. *)

type stats = {
  mutable blocks_compiled : int;
  mutable block_hits : int;
      (** block dispatches served from the cache (chained or probed) *)
  mutable block_invalidations : int;
      (** [flush_code_cache] calls plus blocks killed by code writes *)
  mutable sites_compiled : int;
      (** specialized per-site closures built (block mode) *)
  mutable site_cache_hits : int;
      (** site compilations avoided by the shared [(instr, encoding)]
          translation cache *)
  mutable chain_taken : int;
      (** block dispatches resolved by a predecessor's successor cache *)
  mutable chain_miss : int;
      (** chained dispatches that fell back to the block hash table *)
  mutable instrs_executed : int64;  (** via this interface's calls *)
  mutable absint_ns : int;
      (** synthesis-time cost of the abstract-interpretation pass that
          gates the store-free optimizations (0 when disabled) *)
  mutable fastpath_classes : int;
      (** instruction classes granted the memory fast path because the
          analysis proved them store- and syscall-free *)
  mutable stable_blocks : int;
      (** translated blocks whose mid-run SMC recheck was elided: every
          site is statically store-free, so the block cannot invalidate
          itself *)
}

type t = {
  spec : Lis.Spec.t;
  bs : Lis.Spec.buildset;
  st : Machine.State.t;
  slots : Slots.t;
  journal : Specul.t option;
  entry_names : string array;
  run_one : Di.t -> unit;
      (** execute the instruction at the current fetch pc; commits state
          and advances the fetch pc *)
  run_block : unit -> Di.t array * int;
      (** execute a basic block at the current fetch pc; returns the DI
          records (engine-owned, valid until the next call) and the count *)
  step : Di.t -> int -> unit;
      (** [step di k] runs entrypoint [k] for [di]; the caller owns fetch
          redirection and retirement *)
  retire : Di.t -> unit;
      (** commit a stepped instruction: advance fetch pc to [di.next_pc]
          and count it as retired *)
  redirect : int64 -> unit;  (** set the fetch pc (branch redirect) *)
  checkpoint : unit -> int;
  rollback : int -> unit;
  commit_ckpt : int -> unit;
  flush_code_cache : unit -> unit;
      (** drop compiled blocks (needed after writing code memory) *)
  run_fast : int -> int;
      (** [run_fast n] executes at least [n] instructions (rounding up to
          a block boundary) through the fastest dispatch path of this
          interface — chained block-to-block dispatch when available —
          and returns the number actually executed (less than [n] only on
          halt/fault). Produces no DI records. *)
  prof : Obs.Prof.t option;
      (** the hot-region profiler this interface attributes to, when one
          was compiled in at synthesis ([Obs.t.prof]) *)
  stats : stats;
}

let n_entrypoints t = Array.length t.entry_names
let entry_name t k = t.entry_names.(k)

(** [slot_of t name] is the DI slot of cell [name] if visible in this
    interface. Timing simulators resolve the cells they consume once, at
    connection time. *)
let slot_of t name = Slots.slot_of_name t.spec t.slots name

(** [slot_of_exn t name] raises with a helpful message when the cell is
    hidden — the typical interface-mismatch error the paper describes. *)
let slot_of_exn t name =
  match slot_of t name with
  | Some s -> s
  | None ->
    Machine.Sim_error.raisef ~component:"interface"
      ~context:
        [ ("isa", t.spec.name); ("buildset", t.bs.bs_name); ("cell", name) ]
      "cell is not exposed by this interface (hidden by visibility)"

(** [rollback_di t di] undoes the architectural effects of [di] and every
    later instruction (requires a speculative buildset). *)
let rollback_di t (di : Di.t) =
  if di.ckpt < 0 then invalid_arg "rollback_di: no checkpoint on this DI";
  t.rollback di.ckpt

(** [run_n t n] executes up to [n] instructions through the fastest call
    style of this interface (chained blocks when available) and returns
    the number actually executed (less than [n] on halt/fault). This is
    the paper's "fast-forward" entry used during sampling. Each call
    returns after at most [n] instructions (plus block slack), which is
    the preemption point watchdogs and injectors rely on: chained
    dispatch cannot spin past the slice. *)
let run_n t n = t.run_fast n
