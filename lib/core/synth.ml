(** The simulator synthesizer — the paper's contribution, mechanized.

    [make spec buildset_name] specializes a functional simulator for one
    interface: cells get storage per the buildset's visibility (DI slots
    vs. reused scratch), actions are grouped into the buildset's
    entrypoints and fused, dead information computation is eliminated,
    speculation hooks are compiled in only when asked for, and — for
    block-semantic buildsets — each basic block is specialized against its
    concrete instruction encodings and cached (the binary-translation
    analog). *)

open Machine

exception Synth_error of string

let synth_error fmt = Format.kasprintf (fun m -> raise (Synth_error m)) fmt

(** Execution backend: [Compiled] closures (default) or the reference
    [Interpreted] AST walker (paper footnote 5's baseline). *)
type backend = Compiled | Interpreted

(** Deliberate engine defects used to mutation-test the conformance
    fuzzer ([lisim fuzz --mutate]). Each reintroduces a bug class the
    translation-cache engine defends against: [Stale_chain] trusts
    successor-cache links and cached blocks without re-checking
    [b_valid]; [Skip_invalidate] never registers the code-write hook, so
    stores to translated code leave stale blocks live; [Stride4]
    hard-codes a 4-byte stride in block pc arrays (wrong for any other
    instruction size). [None] (the default) leaves the engine exactly as
    shipped. *)
type mutation = Stale_chain | Skip_invalidate | Stride4

let mutation_to_string = function
  | Stale_chain -> "stale-chain"
  | Skip_invalidate -> "skip-invalidate"
  | Stride4 -> "stride4"

let mutation_of_string = function
  | "stale-chain" -> Some Stale_chain
  | "skip-invalidate" -> Some Skip_invalidate
  | "stride4" -> Some Stride4
  | _ -> None

(* An entrypoint is a sequence of items; fetch and decode are engine
   builtins, everything else is per-instruction compiled code. *)
type item =
  | I_fetch
  | I_decode of Semir.Compile.code array  (* per instruction *)
  | I_chunk of Semir.Compile.code array

(* Segment: compilation-time view of an item. *)
type seg = Seg_fetch | Seg_decode | Seg_ir of Lis.Spec.action_sym list

let spec_window = 64

(* ------------------------------------------------------------------ *)
(* Segment construction                                                *)
(* ------------------------------------------------------------------ *)

let segments_of_entrypoint (syms : Lis.Spec.action_sym list) : seg list =
  let flush acc cur =
    match cur with [] -> acc | _ -> Seg_ir (List.rev cur) :: acc
  in
  let rec go acc cur = function
    | [] -> List.rev (flush acc cur)
    | Lis.Spec.A_fetch :: rest -> go (Seg_fetch :: flush acc cur) [] rest
    | Lis.Spec.A_decode :: rest -> go (Seg_decode :: flush acc cur) [] rest
    | sym :: rest -> go acc (sym :: cur) rest
  in
  go [] [] syms

let sym_ir (i : Lis.Spec.instr) = function
  | Lis.Spec.A_fetch | Lis.Spec.A_decode -> []
  | Lis.Spec.A_read_operands -> i.i_read
  | Lis.Spec.A_writeback -> i.i_writeback
  | Lis.Spec.A_user name -> Lis.Spec.user_action i name

(* IR contributed by a segment for instruction [i]; decode contributes the
   generated operand-id extraction. *)
let seg_ir (i : Lis.Spec.instr) = function
  | Seg_fetch -> []
  | Seg_decode -> i.i_decode
  | Seg_ir syms -> List.concat_map (sym_ir i) syms

module Iset = Set.Make (Int)

let reads_of (p : Semir.Ir.program) = Iset.of_list (Semir.Ir.program_reads p)

(* ------------------------------------------------------------------ *)
(* Translation cache                                                   *)
(* ------------------------------------------------------------------ *)

(* A compiled, cached basic block. [b_pcs] has len+1 entries; the last
   one is the fall-through pc, so the execution loop does no per-
   instruction address arithmetic. [b_s1]/[b_s2] form a bi-morphic
   inline cache on exit pc: when the previous block's exit lands on a
   remembered successor, dispatch goes block-to-block without touching
   the hash table. [b_valid] is cleared when a write lands on a page
   holding this block's code (or on [flush_code_cache]); the execution
   loop re-checks it after every site so a block that rewrites itself
   stops at the site that did the write. *)
type block = {
  b_pc0 : int64;
  b_codes : Semir.Compile.code array;
  b_encs : int64 array;
  b_idxs : int array;
  b_pcs : int64 array;
  b_stable : bool;
      (** every site is statically store- and syscall-free, so the block
          cannot invalidate itself (or any other block) mid-run: the
          per-site [b_valid] recheck is elided. Invalidation between
          runs is still honored — dispatch only trusts [b_valid]. *)
  mutable b_valid : bool;
  mutable b_s1_pc : int64;
  mutable b_s1 : block;
  mutable b_s2_pc : int64;
  mutable b_s2 : block;
}

(* Sentinel predecessor/successor: never valid, so it can neither be
   dispatched through nor receive successor installs. *)
let rec dummy_block =
  {
    b_pc0 = -1L;
    b_codes = [||];
    b_encs = [||];
    b_idxs = [||];
    b_pcs = [||];
    b_stable = false;
    b_valid = false;
    b_s1_pc = -1L;
    b_s1 = dummy_block;
    b_s2_pc = -1L;
    b_s2 = dummy_block;
  }

(* A block handed to dispatch must start at the pc that was requested —
   the one structural invariant the successor caches could silently
   break. The check is a single 64-bit compare per block dispatch; a
   violation is reported as an "engine" {!Sim_error} (exit code 5), the
   structured signal the supervised runtime's degradation ladder
   demotes on instead of executing wrong code. *)
let dispatch_invariant_violation (st : State.t) ~want ~got =
  Sim_error.raisef ~component:"engine"
    ~context:
      [
        ("pc", Printf.sprintf "0x%Lx" want);
        ("block_pc0", Printf.sprintf "0x%Lx" got);
        ("instructions", Int64.to_string st.State.instr_count);
      ]
    "block dispatch invariant violated: cached block does not start at the \
     dispatch pc"

(* ------------------------------------------------------------------ *)
(* Synthesis                                                           *)
(* ------------------------------------------------------------------ *)

let make ?(backend = Compiled) ?(allow_hidden_crossing = false) ?(chain = true)
    ?(site_cache = true) ?(absint = true) ?mutate ?obs ?st (spec : Lis.Spec.t)
    (bs_name : string) : Iface.t =
  let bs = Lis.Spec.find_buildset spec bs_name in
  let st = match st with Some s -> s | None -> Lis.Spec.make_machine spec in
  let slots = Slots.make spec bs in
  (match Liveness.check spec bs with
  | [] -> ()
  | violations when not allow_hidden_crossing ->
    let summary = Liveness.summarize violations in
    synth_error
      "buildset %s/%s hides %d cell(s) that cross entrypoint boundaries:@\n%s"
      spec.name bs.bs_name (List.length summary)
      (String.concat "\n"
         (List.map
            (fun (c, w, r) ->
              Printf.sprintf "  '%s' written in '%s', read in '%s'" c w r)
            summary))
  | _ -> ());
  let journal = if bs.bs_speculation then Some (Specul.create ()) else None in
  let hooks = Option.map Specul.hooks journal in
  let layout = st.State.regs in
  let loc = slots.Slots.loc in
  let frame =
    Semir.Frame.create ~di_slots:slots.di_size ~scratch_slots:slots.scratch_size
  in
  let n_instrs = Array.length spec.instrs in
  let decoder = Decoder.make spec in
  let instr_bytes64 = Int64.of_int spec.instr_bytes in
  (* Per-instruction encoded width: fetch always reads the full
     [instr_bytes] window; decode then corrects [next_pc] and truncates
     the encoding to the decoded instruction's own parcel. Both are
     no-ops for uniform ISAs. *)
  let size64 =
    Array.map (fun (i : Lis.Spec.instr) -> Int64.of_int i.i_size) spec.instrs
  in
  let size_mask =
    Array.map
      (fun (i : Lis.Spec.instr) ->
        if i.i_size >= 8 then -1L
        else Int64.sub (Int64.shift_left 1L (8 * i.i_size)) 1L)
      spec.instrs
  in
  let stale_chain = mutate = Some Stale_chain in
  let skip_invalidate = mutate = Some Skip_invalidate in
  let stride4 = mutate = Some Stride4 in
  let stats =
    {
      Iface.blocks_compiled = 0;
      block_hits = 0;
      block_invalidations = 0;
      sites_compiled = 0;
      site_cache_hits = 0;
      chain_taken = 0;
      chain_miss = 0;
      instrs_executed = 0L;
      absint_ns = 0;
      fastpath_classes = 0;
      stable_blocks = 0;
    }
  in

  (* Static effect analysis: which instruction classes are provably
     store-free (no [Store] on any path, no syscall whose handler could
     write memory)? Such classes can never invalidate translated code,
     so they get the memory fast path outside block mode and their
     blocks skip the per-site SMC recheck. The analysis is sound, never
     required: [absint = false] degrades every verdict to "unsafe". *)
  let class_store_free =
    if not absint then Array.make n_instrs false
    else begin
      let t0 = Obs.Clock.now_ns () in
      let sums = Analysis.Absint.summarize spec in
      let safe = Array.map Analysis.Absint.store_free sums in
      stats.Iface.absint_ns <- Obs.Clock.elapsed_ns t0;
      safe
    end
  in
  if not bs.bs_block then
    stats.Iface.fastpath_classes <-
      Array.fold_left (fun n s -> if s then n + 1 else n) 0 class_store_free;

  let compile_program ?(mem_fast_path = false) ir =
    match backend with
    | Compiled -> Semir.Compile.program ?hooks ~layout ~mem_fast_path ~loc ir
    | Interpreted -> fun st fr -> Semir.Eval.exec ?hooks ~loc st fr ir
  in

  (* --- entrypoint plans ---------------------------------------------- *)
  let ep_segs =
    Array.map (fun (_, syms) -> segments_of_entrypoint syms) bs.bs_entrypoints
  in
  let flat_segs = Array.to_list ep_segs |> List.concat in
  (* Sanity: per-instruction dispatch needs decode before any IR. *)
  (let seen_decode = ref false in
   List.iter
     (fun s ->
       match s with
       | Seg_decode -> seen_decode := true
       | Seg_ir _ when not !seen_decode ->
         synth_error
           "buildset %s/%s runs instruction actions before 'decode'" spec.name
           bs.bs_name
       | Seg_ir _ | Seg_fetch -> ())
     flat_segs);

  (* Per-instruction optimized IR per IR-bearing segment, with cross-
     segment liveness driving DCE: a cell assignment survives only if the
     cell is interface-visible or read by a later segment. *)
  let n_segs = List.length flat_segs in
  let flat_segs_arr = Array.of_list flat_segs in
  let per_instr_seg_ir =
    Array.init n_instrs (fun ii ->
        let instr = spec.instrs.(ii) in
        let irs = Array.map (seg_ir instr) flat_segs_arr in
        (* downstream reads per segment *)
        let downstream = Array.make (n_segs + 1) Iset.empty in
        for k = n_segs - 1 downto 0 do
          downstream.(k) <- Iset.union downstream.(k + 1) (reads_of irs.(k))
        done;
        Array.mapi
          (fun k ir ->
            let keep c =
              bs.bs_visible.(c) || Iset.mem c downstream.(k + 1)
            in
            Semir.Opt.optimize ~keep ir)
          irs)
  in
  let ep_items : item array array =
    let seg_index = ref 0 in
    Array.map
      (fun segs ->
        Array.of_list
          (List.map
             (fun seg ->
               let k = !seg_index in
               incr seg_index;
               match seg with
               | Seg_fetch -> I_fetch
               | Seg_decode ->
                 I_decode
                   (Array.init n_instrs (fun ii ->
                        compile_program
                          ~mem_fast_path:class_store_free.(ii)
                          per_instr_seg_ir.(ii).(k)))
               | Seg_ir _ ->
                 I_chunk
                   (Array.init n_instrs (fun ii ->
                        compile_program
                          ~mem_fast_path:class_store_free.(ii)
                          per_instr_seg_ir.(ii).(k))))
             segs))
      ep_segs
  in

  (* --- execution ------------------------------------------------------ *)
  let exec_item (di : Di.t) = function
    | I_fetch ->
      frame.enc <-
        Memory.read st.mem ~addr:frame.pc ~width:spec.instr_bytes;
      frame.next_pc <- Int64.add frame.pc instr_bytes64
    | I_decode codes ->
      let idx = Decoder.decode decoder frame.enc in
      if idx < 0 then
        State.raise_fault st (Fault.Illegal_instruction frame.enc)
      else begin
        di.instr_index <- idx;
        frame.enc <- Int64.logand frame.enc (Array.unsafe_get size_mask idx);
        frame.next_pc <- Int64.add frame.pc (Array.unsafe_get size64 idx);
        (Array.unsafe_get codes idx) st frame
      end
    | I_chunk codes ->
      let idx = di.instr_index in
      if idx < 0 then
        Sim_error.raisef ~component:"interface"
          ~context:
            [ ("isa", spec.name); ("buildset", bs.bs_name);
              ("pc", Printf.sprintf "0x%Lx" di.pc) ]
          "entrypoint called before decode"
      else (Array.unsafe_get codes idx) st frame
  in
  let exec_items di (items : item array) =
    let n = Array.length items in
    let rec go k =
      if k < n && not st.halted then begin
        exec_item di items.(k);
        go (k + 1)
      end
    in
    go 0
  in
  let load_frame (di : Di.t) =
    frame.pc <- di.pc;
    frame.enc <- di.encoding;
    frame.next_pc <- di.next_pc;
    frame.di <- di.info
  in
  let save_frame (di : Di.t) =
    di.encoding <- frame.enc;
    di.next_pc <- frame.next_pc;
    di.fault <- st.fault
  in

  let step di k =
    load_frame di;
    exec_items di ep_items.(k);
    save_frame di
  in

  let auto_checkpoint (di : Di.t) =
    match journal with
    | None -> ()
    | Some j ->
      di.ckpt <- Specul.checkpoint j st;
      Specul.auto_trim j ~window:spec_window
  in

  let n_eps = Array.length ep_items in
  let run_one (di : Di.t) =
    if not st.halted then begin
      di.pc <- st.pc;
      di.instr_index <- -1;
      di.fault <- None;
      auto_checkpoint di;
      load_frame di;
      let rec go k =
        if k < n_eps && not st.halted then begin
          exec_items di ep_items.(k);
          go (k + 1)
        end
      in
      go 0;
      save_frame di;
      if not st.halted then begin
        st.pc <- frame.next_pc;
        st.instr_count <- Int64.add st.instr_count 1L;
        stats.instrs_executed <- Int64.add stats.instrs_executed 1L
      end
    end
  in

  (* --- block mode ------------------------------------------------------ *)
  (* Full per-instruction chain IR in sequence order (fetch excluded),
     used for per-site specialization. *)
  let chain_ir =
    Array.map
      (fun (i : Lis.Spec.instr) ->
        List.concat_map
          (fun sym ->
            match sym with
            | Lis.Spec.A_decode -> i.i_decode
            | other -> sym_ir i other)
          (Array.to_list spec.sequence))
      spec.instrs
  in
  let rec stmt_is_ctrl (s : Semir.Ir.stmt) =
    match s with
    | Set_next_pc _ | Syscall | Halt | Fault_illegal | Fault_unaligned _
    | Fault_arith _ ->
      true
    | If (_, t, f) -> List.exists stmt_is_ctrl t || List.exists stmt_is_ctrl f
    | Set_cell _ | Store _ | Reg_write _ -> false
  in
  let is_ctrl = Array.map (List.exists stmt_is_ctrl) chain_ir in
  (* Cells read by some instruction before it writes them (cross-
     instruction carriers); they must survive DCE in block mode. *)
  let carried =
    Array.fold_left
      (fun acc ir ->
        let rec upward live (reads : Iset.t) = function
          | [] -> reads
          | s :: rest ->
            let srs = Iset.of_list (Semir.Ir.stmt_reads [] s) in
            let exposed = Iset.diff srs live in
            let live =
              Iset.union live (Iset.of_list (Semir.Ir.stmt_writes [] s))
            in
            upward live (Iset.union reads exposed) rest
        in
        Iset.union acc (upward Iset.empty Iset.empty ir))
      Iset.empty chain_ir
  in
  let block_keep c = bs.bs_visible.(c) || Iset.mem c carried in

  let max_block = 64 in
  let module Bcache = Hashtbl in
  let blocks : (int64, block) Bcache.t = Bcache.create 1024 in
  (* Shared translation cache: specialization depends only on the
     encoding, never on the pc, so loops entered at several pcs,
     duplicated code and rebuilt blocks reuse compiled sites instead of
     recompiling. The cache survives [flush_code_cache]: entries keyed
     by [(instr, encoding)] stay correct whatever memory now holds. *)
  let site_tbl : (int * int64, Semir.Compile.code) Hashtbl.t =
    Hashtbl.create 256
  in
  let compile_site enc idx =
    let build () =
      stats.Iface.sites_compiled <- stats.Iface.sites_compiled + 1;
      let ir = Semir.Opt.optimize ~enc ~keep:block_keep chain_ir.(idx) in
      compile_program ~mem_fast_path:site_cache ir
    in
    if site_cache then begin
      let key = (idx, enc) in
      match Hashtbl.find_opt site_tbl key with
      | Some c ->
        stats.Iface.site_cache_hits <- stats.Iface.site_cache_hits + 1;
        c
      | None ->
        let c = build () in
        Hashtbl.add site_tbl key c;
        c
    end
    else build ()
  in
  let illegal_site : Semir.Compile.code =
   fun st fr -> State.raise_fault st (Fault.Illegal_instruction fr.enc)
  in
  (* Pages holding translated code, mapped to the blocks compiled from
     them; a write to such a page invalidates those blocks (and thereby
     every chain link into them, since dispatch re-checks [b_valid]). *)
  let page_blocks : (int, block list ref) Hashtbl.t = Hashtbl.create 16 in
  let last_block = ref dummy_block in
  if bs.bs_block && not skip_invalidate then
    Memory.add_code_write_hook st.mem (fun pidx ->
        match Hashtbl.find_opt page_blocks pidx with
        | None -> ()
        | Some l ->
          List.iter
            (fun b ->
              if b.b_valid then begin
                b.b_valid <- false;
                Bcache.remove blocks b.b_pc0;
                stats.Iface.block_invalidations <-
                  stats.Iface.block_invalidations + 1
              end)
            !l;
          l := [];
          last_block := dummy_block);
  let build_block pc0 =
    let codes = ref [] and encs = ref [] and idxs = ref [] in
    let rev_pcs = ref [] in
    let n = ref 0 in
    let pc = ref pc0 in
    let stop = ref false in
    let stable = ref true in
    while not !stop do
      let enc = Memory.read st.mem ~addr:!pc ~width:spec.instr_bytes in
      let idx = Decoder.decode decoder enc in
      if idx < 0 then begin
        codes := illegal_site :: !codes;
        encs := enc :: !encs;
        idxs := idx :: !idxs;
        rev_pcs := !pc :: !rev_pcs;
        incr n;
        pc := Int64.add !pc instr_bytes64;
        stable := false;
        stop := true
      end
      else begin
        (* truncate to the decoded parcel: the tail of the fetch window
           belongs to the next instruction, and must not key the site
           cache or leak into operand fields *)
        let enc = Int64.logand enc (Array.unsafe_get size_mask idx) in
        if not class_store_free.(idx) then stable := false;
        codes := compile_site enc idx :: !codes;
        encs := enc :: !encs;
        idxs := idx :: !idxs;
        rev_pcs := !pc :: !rev_pcs;
        incr n;
        pc := Int64.add !pc (Array.unsafe_get size64 idx);
        if is_ctrl.(idx) || !n >= max_block then stop := true
      end
    done;
    stats.Iface.blocks_compiled <- stats.Iface.blocks_compiled + 1;
    if !stable then stats.Iface.stable_blocks <- stats.Iface.stable_blocks + 1;
    (* [pcs] carries the true site addresses plus the fall-through pc;
       the seeded [Stride4] defect replaces them with a uniform 4-byte
       walk, observable on any ISA whose real strides differ. *)
    let pcs =
      if stride4 then
        Array.init (!n + 1) (fun i -> Int64.add pc0 (Int64.of_int (4 * i)))
      else Array.of_list (List.rev (!pc :: !rev_pcs))
    in
    let b =
      {
        b_pc0 = pc0;
        b_codes = Array.of_list (List.rev !codes);
        b_encs = Array.of_list (List.rev !encs);
        b_idxs = Array.of_list (List.rev !idxs);
        b_pcs = pcs;
        b_stable = !stable;
        b_valid = true;
        b_s1_pc = -1L;
        b_s1 = dummy_block;
        b_s2_pc = -1L;
        b_s2 = dummy_block;
      }
    in
    (* Register the code pages this block was translated from. *)
    let lo = Memory.addr_int pc0 lsr Memory.page_bits in
    let hi = Memory.addr_int (Int64.sub pcs.(!n) 1L) lsr Memory.page_bits in
    for pidx = lo to hi do
      Memory.note_code_page st.mem pidx;
      let l =
        match Hashtbl.find_opt page_blocks pidx with
        | Some l -> l
        | None ->
          let l = ref [] in
          Hashtbl.add page_blocks pidx l;
          l
      in
      l := b :: !l
    done;
    b
  in
  let find_block pc0 =
    match Bcache.find_opt blocks pc0 with
    | Some b ->
      stats.Iface.block_hits <- stats.Iface.block_hits + 1;
      b
    | None ->
      let b = build_block pc0 in
      Bcache.add blocks pc0 b;
      b
  in
  (* Chained dispatch: try the predecessor's successor cache before the
     hash table, installing / promoting on the way (most recent first). *)
  (* [trust] is the single-trust invariant ([b_valid] is the only thing
     dispatch believes); [Stale_chain] breaks it for every real block. *)
  let trust b = b.b_valid || (stale_chain && not (Int64.equal b.b_pc0 (-1L))) in
  let lookup_from prev pc0 =
    if not (chain && trust prev) then find_block pc0
    else if Int64.equal prev.b_s1_pc pc0 && trust prev.b_s1 then begin
      stats.Iface.chain_taken <- stats.Iface.chain_taken + 1;
      stats.Iface.block_hits <- stats.Iface.block_hits + 1;
      prev.b_s1
    end
    else if Int64.equal prev.b_s2_pc pc0 && trust prev.b_s2 then begin
      let b = prev.b_s2 in
      prev.b_s2_pc <- prev.b_s1_pc;
      prev.b_s2 <- prev.b_s1;
      prev.b_s1_pc <- pc0;
      prev.b_s1 <- b;
      stats.Iface.chain_taken <- stats.Iface.chain_taken + 1;
      stats.Iface.block_hits <- stats.Iface.block_hits + 1;
      b
    end
    else begin
      stats.Iface.chain_miss <- stats.Iface.chain_miss + 1;
      let b = find_block pc0 in
      prev.b_s2_pc <- prev.b_s1_pc;
      prev.b_s2 <- prev.b_s1;
      prev.b_s1_pc <- pc0;
      prev.b_s1 <- b;
      b
    end
  in
  (* Engine-owned DI ring returned by [run_block]. *)
  let dis = ref (Array.init 4 (fun _ -> Di.create ~info_slots:slots.di_size)) in
  let ensure_dis n =
    if Array.length !dis < n then begin
      let bigger =
        Array.init (max n (2 * Array.length !dis)) (fun i ->
            if i < Array.length !dis then !dis.(i)
            else Di.create ~info_slots:slots.di_size)
      in
      dis := bigger
    end
  in
  let run_block () =
    if st.halted then (!dis, 0)
    else begin
      let pc0 = st.pc in
      let b = lookup_from !last_block pc0 in
      if not (Int64.equal b.b_pc0 pc0) then
        dispatch_invariant_violation st ~want:pc0 ~got:b.b_pc0;
      last_block := b;
      let codes = b.b_codes
      and encs = b.b_encs
      and idxs = b.b_idxs
      and pcs = b.b_pcs in
      let len = Array.length codes in
      ensure_dis len;
      let dis = !dis in
      let executed = ref 0 in
      let k = ref 0 in
      (* [b_valid] re-checked per site: a store that hits this block's
         own code page stops execution after the faulting-free site that
         performed it, so stale sites never run. Stable blocks skip the
         recheck — none of their sites can store, so nothing can
         invalidate any block while they run. *)
      while
        !k < len && not st.halted && (b.b_valid || b.b_stable || stale_chain)
      do
        let di = Array.unsafe_get dis !k in
        let pc = Array.unsafe_get pcs !k in
        di.pc <- pc;
        di.encoding <- Array.unsafe_get encs !k;
        di.instr_index <- Array.unsafe_get idxs !k;
        di.fault <- None;
        auto_checkpoint di;
        frame.pc <- pc;
        frame.enc <- di.encoding;
        frame.next_pc <- Array.unsafe_get pcs (!k + 1);
        frame.di <- di.info;
        (Array.unsafe_get codes !k) st frame;
        di.next_pc <- frame.next_pc;
        di.fault <- st.fault;
        if not st.halted then incr executed;
        incr k
      done;
      if !executed > 0 then begin
        (* the last executed site's next_pc is the continuation; on a halt
           the fetch pc stays put (rollback restores it anyway) *)
        if not st.halted then st.pc <- frame.next_pc;
        st.instr_count <- Int64.add st.instr_count (Int64.of_int !executed);
        stats.instrs_executed <-
          Int64.add stats.instrs_executed (Int64.of_int !executed)
      end;
      (dis, !executed)
    end
  in
  (* Non-block buildsets still offer [run_block] as a one-instruction
     batch so consumers can be written against one call style. *)
  let run_block =
    if bs.bs_block then begin
      if n_eps <> 1 then
        synth_error
          "buildset %s/%s: 'semantic block' requires a single entrypoint"
          spec.name bs.bs_name;
      run_block
    end
    else fun () ->
      ensure_dis 1;
      let d = !dis in
      run_one d.(0);
      (d, if st.halted && st.fault <> None then 0 else 1)
  in

  let retire (di : Di.t) =
    st.pc <- di.next_pc;
    st.instr_count <- Int64.add st.instr_count 1L;
    stats.instrs_executed <- Int64.add stats.instrs_executed 1L
  in
  let redirect pc = st.pc <- pc in
  let no_spec (_ : unit) =
    Sim_error.raisef ~component:"interface"
      ~context:[ ("isa", spec.name); ("buildset", bs.bs_name) ]
      "interface was synthesized without speculation"
  in
  let checkpoint () =
    match journal with Some j -> Specul.checkpoint j st | None -> no_spec ()
  in
  let rollback tok =
    match journal with Some j -> Specul.rollback j st tok | None -> no_spec ()
  in
  let commit_ckpt tok =
    match journal with Some j -> Specul.commit j tok | None -> no_spec ()
  in
  let flush_code_cache () =
    stats.Iface.block_invalidations <- stats.Iface.block_invalidations + 1;
    (* Invalidate before dropping: chain links and [last_block] may still
       point at these blocks, and dispatch trusts only [b_valid]. The
       shared site cache survives — [(instr, encoding)] keys stay correct
       whatever memory now holds. The memory's code-page set also stays:
       other interfaces on the same machine may still have live blocks. *)
    Bcache.iter (fun _ b -> b.b_valid <- false) blocks;
    Bcache.reset blocks;
    Hashtbl.reset page_blocks;
    last_block := dummy_block
  in

  (* --- observability --------------------------------------------------- *)
  (* Instrumented call paths are selected here, at synthesis time — the
     compiled-in hook pattern. With [obs = None] the closures above are
     handed out untouched: no flag tests, no extra indirection, the
     zero-overhead guarantee. With [obs = Some _] every entrypoint call
     and engine segment is counted and timed into log2 histograms, and a
     per-instruction event goes to the trace ring when one is attached. *)
  let run_one, run_block, step =
    match obs with
    | None -> (run_one, run_block, step)
    (* profile-only contexts skip all of this: the profiler attribution
       wrapper below is the whole instrumentation *)
    | Some o when not o.Obs.full -> (run_one, run_block, step)
    | Some (o : Obs.t) ->
      let module R = Obs.Registry in
      let reg = o.Obs.reg in
      let crossings = R.counter reg "synth.entrypoint_calls" in
      let ep_names = Array.map fst bs.bs_entrypoints in
      let ep_calls =
        Array.map (fun nm -> R.counter reg ("synth.ep." ^ nm ^ ".calls")) ep_names
      in
      let ep_hist =
        Array.map (fun nm -> R.histogram reg ("synth.ep." ^ nm ^ ".ns")) ep_names
      in
      let seg_calls =
        Array.map
          (fun nm -> R.counter reg ("synth.seg." ^ nm ^ ".calls"))
          [| "fetch"; "decode"; "ir" |]
      in
      let seg_hist =
        Array.map
          (fun nm -> R.histogram reg ("synth.seg." ^ nm ^ ".ns"))
          [| "fetch"; "decode"; "ir" |]
      in
      let block_hist = R.histogram reg "synth.block.ns" in
      (* Fused-closure accounting: in per-instruction modes every
         IR-bearing segment holds one eagerly-compiled closure per
         instruction; in block mode closures are specialized per site
         and cached with the block. *)
      let n_code_segs =
        Array.fold_left
          (fun acc items ->
            Array.fold_left
              (fun acc item ->
                match item with I_fetch -> acc | I_decode _ | I_chunk _ -> acc + 1)
              acc items)
          0 ep_items
      in
      R.probe reg "core.instrs_executed" (fun () ->
          R.Int (Int64.to_int stats.Iface.instrs_executed));
      (* block-cache gauges exist only where a block cache does, so a
         block pass sharing a registry with a per-instruction primary
         interface contributes them without fighting over names *)
      if bs.bs_block then begin
        R.probe reg "core.block_cache.hits" (fun () ->
            R.Int stats.Iface.block_hits);
        R.probe reg "core.block_cache.compiled" (fun () ->
            R.Int stats.Iface.blocks_compiled);
        R.probe reg "core.block_cache.invalidations" (fun () ->
            R.Int stats.Iface.block_invalidations);
        R.probe reg "core.block_cache.chain_taken" (fun () ->
            R.Int stats.Iface.chain_taken);
        R.probe reg "core.block_cache.chain_miss" (fun () ->
            R.Int stats.Iface.chain_miss);
        R.probe reg "core.block_cache.site_cache_hits" (fun () ->
            R.Int stats.Iface.site_cache_hits);
        R.probe reg "core.block_cache.stable_blocks" (fun () ->
            R.Int stats.Iface.stable_blocks)
      end;
      R.probe reg "core.absint_ns" (fun () -> R.Int stats.Iface.absint_ns);
      if not bs.bs_block then
        R.probe reg "core.absint_fastpath_classes" (fun () ->
            R.Int stats.Iface.fastpath_classes);
      R.probe reg "core.fused_closures_compiled" (fun () ->
          R.Int
            (if bs.bs_block then stats.Iface.sites_compiled
             else n_code_segs * n_instrs));
      R.probe reg "core.fused_closure_reuse" (fun () ->
          R.Int
            (if bs.bs_block then
               max 0
                 (Int64.to_int stats.Iface.instrs_executed
                 - stats.Iface.sites_compiled)
             else
               max 0
                 (seg_calls.(1).R.n + seg_calls.(2).R.n - (n_code_segs * n_instrs))));
      (match journal with Some j -> Specul.register_obs j o | None -> ());
      let exec_item_obs di item =
        let k = match item with I_fetch -> 0 | I_decode _ -> 1 | I_chunk _ -> 2 in
        let t0 = Obs.Clock.now_ns () in
        exec_item di item;
        let dt = Obs.Clock.elapsed_ns t0 in
        R.incr seg_calls.(k);
        Obs.Hist.record seg_hist.(k) dt
      in
      (* one observed entrypoint crossing: the timed unit of Table III *)
      let exec_ep_obs di k =
        let t0 = Obs.Clock.now_ns () in
        let items = ep_items.(k) in
        let n = Array.length items in
        let rec go i =
          if i < n && not st.halted then begin
            exec_item_obs di items.(i);
            go (i + 1)
          end
        in
        go 0;
        let dt = Obs.Clock.elapsed_ns t0 in
        R.incr crossings;
        R.incr ep_calls.(k);
        Obs.Hist.record ep_hist.(k) dt
      in
      let ring_instr (di : Di.t) t0 =
        match o.Obs.ring with
        | None -> ()
        | Some ring ->
          let name =
            if di.instr_index >= 0 then spec.instrs.(di.instr_index).i_name
            else "?"
          in
          Obs.Ring.record ring ~ts_ns:t0 ~dur_ns:(Obs.Clock.elapsed_ns t0) ~name
            ~cat:"instr"
            ~args:[ ("pc", Obs.Ring.I di.pc) ]
      in
      let run_one_obs (di : Di.t) =
        if not st.halted then begin
          let t0 = Obs.Clock.now_ns () in
          di.pc <- st.pc;
          di.instr_index <- -1;
          di.fault <- None;
          auto_checkpoint di;
          load_frame di;
          let rec go k =
            if k < n_eps && not st.halted then begin
              exec_ep_obs di k;
              go (k + 1)
            end
          in
          go 0;
          save_frame di;
          if not st.halted then begin
            st.pc <- frame.next_pc;
            st.instr_count <- Int64.add st.instr_count 1L;
            stats.instrs_executed <- Int64.add stats.instrs_executed 1L
          end;
          ring_instr di t0
        end
      in
      let step_obs di k =
        load_frame di;
        exec_ep_obs di k;
        save_frame di
      in
      let run_block_obs =
        if bs.bs_block then fun () ->
          let t0 = Obs.Clock.now_ns () in
          let (dis, n) as r = run_block () in
          let dt = Obs.Clock.elapsed_ns t0 in
          (* each executed site is one crossing of the block entrypoint *)
          R.add crossings n;
          R.add ep_calls.(0) n;
          Obs.Hist.record block_hist dt;
          (match o.Obs.ring with
          | Some ring when n > 0 ->
            Obs.Ring.record ring ~ts_ns:t0 ~dur_ns:dt ~name:"block" ~cat:"block"
              ~args:
                [ ("pc", Obs.Ring.I dis.(0).Di.pc);
                  ("instrs", Obs.Ring.I (Int64.of_int n)) ]
          | Some _ | None -> ());
          r
        else fun () ->
          ensure_dis 1;
          let d = !dis in
          run_one_obs d.(0);
          (d, if st.halted && st.fault <> None then 0 else 1)
      in
      (run_one_obs, run_block_obs, step_obs)
  in

  (* --- hot-region profiling -------------------------------------------- *)
  (* Same compiled-in rule as the counters above, layered outside them so
     it works in both full and profile-only contexts. Attribution uses
     the retired-instruction delta, so halted entries and uncounted
     halting instructions attribute exactly what [instr_count] records.
     Block interfaces attribute whole blocks at their entry pc — the
     translation cache's block extents are the aggregation unit. Stepped
     flows attribute at [retire], where the timing simulator commits. *)
  let prof = match obs with Some o -> o.Obs.prof | None -> None in
  let run_one, run_block, retire =
    match prof with
    | None -> (run_one, run_block, retire)
    | Some p ->
      let note_delta before pc =
        let d = Int64.to_int (Int64.sub st.instr_count before) in
        if d > 0 then Obs.Prof.note p ~pc ~instrs:d
      in
      let run_one_p (di : Di.t) =
        let before = st.instr_count in
        run_one di;
        note_delta before di.pc
      in
      let run_block_p () =
        let before = st.instr_count in
        let (dis, n) as r = run_block () in
        if n > 0 then note_delta before dis.(0).Di.pc;
        r
      in
      let retire_p (di : Di.t) =
        retire di;
        Obs.Prof.note p ~pc:di.pc ~instrs:1
      in
      (run_one_p, run_block_p, retire_p)
  in

  (* --- fast dispatch --------------------------------------------------- *)
  (* The generic loop reproduces the historical [run_n] exactly (and is
     what instrumented, journaled, per-instruction and unchained
     interfaces get); the chained loop below it is the translation-cache
     hot path: block-to-block dispatch through the successor caches, no
     DI materialization, no per-instruction bookkeeping. Both return
     after at most [n] instructions plus block slack — the preemption
     point watchdogs rely on, so chained dispatch cannot spin past a
     slice. *)
  let run_fast_generic n =
    let start = st.instr_count in
    let executed () = Int64.to_int (Int64.sub st.instr_count start) in
    if bs.bs_block then
      while executed () < n && not st.halted do
        ignore (run_block ())
      done
    else begin
      let di = Di.create ~info_slots:slots.di_size in
      while executed () < n && not st.halted do
        run_one di
      done
    end;
    executed ()
  in
  let fast_di = Array.make (max 1 slots.di_size) 0L in
  (* [note] is the profiler hook, called once per executed block with the
     block's entry pc and executed-site count. It is bound statically at
     synthesis time — the unprofiled instance passes a constant no-op, so
     the only residual cost is one closure call per block (~amortized to
     noise by block length), and chained dispatch survives profiling. *)
  let run_fast_chained ~note n =
    let executed = ref 0 in
    frame.di <- fast_di;
    while !executed < n && not st.halted do
      let pc0 = st.pc in
      let b = lookup_from !last_block pc0 in
      if not (Int64.equal b.b_pc0 pc0) then
        dispatch_invariant_violation st ~want:pc0 ~got:b.b_pc0;
      last_block := b;
      let codes = b.b_codes and encs = b.b_encs and pcs = b.b_pcs in
      let len = Array.length codes in
      let k = ref 0 in
      let go = ref true in
      while !go do
        frame.pc <- Array.unsafe_get pcs !k;
        frame.enc <- Array.unsafe_get encs !k;
        frame.next_pc <- Array.unsafe_get pcs (!k + 1);
        (Array.unsafe_get codes !k) st frame;
        if st.halted then go := false
        else begin
          incr k;
          if !k >= len || not (b.b_valid || b.b_stable) then go := false
        end
      done;
      if !k > 0 then begin
        if not st.halted then st.pc <- frame.next_pc;
        st.instr_count <- Int64.add st.instr_count (Int64.of_int !k);
        stats.Iface.instrs_executed <-
          Int64.add stats.Iface.instrs_executed (Int64.of_int !k);
        executed := !executed + !k;
        note pc0 !k
      end
    done;
    !executed
  in
  (* Chained dispatch is compatible with profile-only observation (the
     per-block [note] hook), but not with full instrumentation, which
     needs per-call DI materialization and timing. *)
  let run_fast =
    if
      bs.bs_block && chain
      && Option.is_none journal
      && (match obs with None -> true | Some o -> not o.Obs.full)
    then
      match prof with
      | None -> run_fast_chained ~note:(fun _ _ -> ())
      | Some p ->
        run_fast_chained ~note:(fun pc0 k -> Obs.Prof.note p ~pc:pc0 ~instrs:k)
    else run_fast_generic
  in
  {
    Iface.spec;
    bs;
    st;
    slots;
    journal;
    entry_names = Array.map fst bs.bs_entrypoints;
    run_one;
    run_block;
    step;
    retire;
    redirect;
    checkpoint;
    rollback;
    commit_ckpt;
    flush_code_cache;
    run_fast;
    prof;
    stats;
  }
