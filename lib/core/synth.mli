(** The simulator synthesizer — the paper's contribution, mechanized.

    [make spec buildset_name] specializes a functional simulator for one
    interface: cells get storage per the buildset's visibility (retained
    DI slots vs. reused scratch), actions are grouped into the buildset's
    entrypoints and fused, dead information computation is eliminated,
    speculation hooks are compiled in only when asked for, and — for
    block-semantic buildsets — each basic block is specialized against its
    concrete instruction encodings and cached (the binary-translation
    analog). *)

exception Synth_error of string

(** Execution backend: [Compiled] closures (default) or the reference
    [Interpreted] AST walker (paper footnote 5's baseline). *)
type backend = Compiled | Interpreted

(** Deliberate engine defects for mutation-testing the conformance fuzzer
    ([lisim fuzz --mutate]): [Stale_chain] trusts successor-cache links and
    cached blocks without re-checking [b_valid], [Skip_invalidate] drops
    the code-write hook so stores never invalidate translated blocks, and
    [Stride4] hard-codes a 4-byte stride in block pc arrays. A healthy
    differential fuzzer must detect all three (see {!Fuzz.Driver}). *)
type mutation = Stale_chain | Skip_invalidate | Stride4

val mutation_to_string : mutation -> string

(** Inverse of {!mutation_to_string}; [None] on unknown names. *)
val mutation_of_string : string -> mutation option

(** Internal plan/segment types, exposed for {!Emit} and for tests. *)
type item =
  | I_fetch
  | I_decode of Semir.Compile.code array
  | I_chunk of Semir.Compile.code array

type seg = Seg_fetch | Seg_decode | Seg_ir of Lis.Spec.action_sym list

(** Sliding rollback-horizon (instructions) for speculative interfaces. *)
val spec_window : int

val segments_of_entrypoint : Lis.Spec.action_sym list -> seg list

(** IR contributed by one action symbol / one segment for an instruction. *)
val sym_ir : Lis.Spec.instr -> Lis.Spec.action_sym -> Semir.Ir.program

val seg_ir : Lis.Spec.instr -> seg -> Semir.Ir.program

(** [make ?backend ?allow_hidden_crossing ?chain ?site_cache ?obs ?st
    spec buildset] synthesizes the interface. A fresh machine is created
    unless [st] is given (sharing [st] across interfaces is how sampling
    and rotating validation work).

    Block-semantic buildsets get a translation-cache engine: compiled
    blocks carry a bi-morphic successor cache so hot edges dispatch
    block-to-block without a hash probe ([chain], default on; stats
    [chain_taken]/[chain_miss]), compiled sites are shared across blocks
    through an [(instr, encoding)] cache and get per-site memory fast
    paths ([site_cache], default on; stat [site_cache_hits]), and pages
    holding translated code are tracked so writes to them invalidate the
    affected blocks and chain links — self-modifying code observes its
    own stores. Disabling both flags reproduces the pre-cache engine for
    A/B comparison. [mutate] deliberately re-breaks the engine (one
    {!mutation} bug class) — for fuzzer validation only, never for real
    simulation.

    [absint] (default on) runs {!Analysis.Absint} at synthesis time and
    gates two optimizations on its store-free verdicts: instruction
    classes proved store- and syscall-free get the memory fast path
    outside block mode, and translated blocks made only of such classes
    skip the per-site SMC recheck (they cannot invalidate themselves
    mid-run; invalidation between runs is still honored). The analysis
    is advisory — [absint:false] degrades every verdict to "unsafe" and
    reproduces the unanalyzed engine. Stats [absint_ns],
    [fastpath_classes], [stable_blocks].

    [obs], when given, compiles instrumentation into the interface's
    call paths: every entrypoint crossing is counted
    ("synth.entrypoint_calls", "synth.ep.<name>.calls") and timed into
    log2 histograms ("synth.ep.<name>.ns"), engine segments
    (fetch / decode / ir) are attributed separately ("synth.seg.*"),
    block-cache and fused-closure statistics are exported as "core.*"
    gauges, and — when the context carries a trace ring — one event is
    recorded per instruction (or per block). Without [obs] the interface
    is byte-for-byte the uninstrumented one: the zero-overhead
    guarantee, same compiled-in pattern as {!Semir.Hooks}.
    @raise Synth_error when the buildset hides a cell that crosses
    entrypoint boundaries (override with [allow_hidden_crossing] to
    observe the paper's runtime manifestation of the bug). *)
val make :
  ?backend:backend ->
  ?allow_hidden_crossing:bool ->
  ?chain:bool ->
  ?site_cache:bool ->
  ?absint:bool ->
  ?mutate:mutation ->
  ?obs:Obs.t ->
  ?st:Machine.State.t ->
  Lis.Spec.t ->
  string ->
  Iface.t
