(** Periodic metrics snapshots: a wall-clock-interval JSONL time series
    of every registry counter and histogram plus the profiler's top-N
    regions. One JSON object per line, flushed after every line — the
    same durability contract as the supervised journal, so a campaign
    killed mid-run keeps every snapshot already taken.

    Line shape (v1):

    {v
    {"v":1,"seq":0,"ts_ms":<wall clock>,"uptime_ms":<since open>,
     "counters":{...Export.json_of_snapshot...},
     "prof":[{"region":...,"instrs":...,...}]}   (absent without a profiler)
    v}

    [tick] is the hot-path entry: it is a single monotonic-clock read
    and compare unless the interval has elapsed, so drivers can call it
    per case/slice without measurable cost. [snap] writes
    unconditionally (used for final flushes). *)

type t = {
  path : string;
  oc : out_channel;
  interval_ns : int64;
  prof_top : int;
  opened_ns : int64;
  mutable last_ns : int64;  (** monotonic time of the last snapshot; 0 = none *)
  mutable seq : int;
  mutable closed : bool;
}

let default_interval_ms = 1_000

(** [open_ ~path ()] starts a series at [path] (truncating). Intervals
    of 0 ms make every [tick] write — handy in tests. *)
let open_ ?(interval_ms = default_interval_ms) ?(prof_top = 10) ~path () =
  if interval_ms < 0 then invalid_arg "Metrics.open_: negative interval";
  let oc = open_out path in
  let now = Clock.now_ns () in
  {
    path;
    oc;
    interval_ns = Int64.mul (Int64.of_int interval_ms) 1_000_000L;
    prof_top;
    opened_ns = now;
    last_ns = 0L;
    seq = 0;
    closed = false;
  }

let path t = t.path
let seq t = t.seq
let interval_ms t = Int64.to_int (Int64.div t.interval_ns 1_000_000L)

(** Write one snapshot line unconditionally and flush it to disk. *)
let snap ?prof t (reg : Registry.t) =
  if not t.closed then begin
    let now = Clock.now_ns () in
    let uptime_ms =
      Int64.to_int (Int64.div (Int64.sub now t.opened_ns) 1_000_000L)
    in
    let ts_ms = Int64.of_float (Unix.gettimeofday () *. 1_000.) in
    let fields =
      [
        ("v", Export.Int 1L);
        ("seq", Export.Int (Int64.of_int t.seq));
        ("ts_ms", Export.Int ts_ms);
        ("uptime_ms", Export.Int (Int64.of_int uptime_ms));
        ("counters", Export.json_of_snapshot (Registry.snapshot reg));
      ]
      @
      match prof with
      | None -> []
      | Some p -> [ ("prof", Prof.json_top ~top:t.prof_top p) ]
    in
    output_string t.oc (Export.to_string (Export.Obj fields));
    output_char t.oc '\n';
    flush t.oc;
    t.seq <- t.seq + 1;
    t.last_ns <- now
  end

(** Snapshot only if the configured interval has elapsed since the last
    one. The first call always writes (a series begins with its t=0
    sample). *)
let tick ?prof t reg =
  if not t.closed then begin
    let now = Clock.now_ns () in
    if t.last_ns = 0L || Int64.sub now t.last_ns >= t.interval_ns then
      snap ?prof t reg
  end

(** Final snapshot, then close the channel. Idempotent. *)
let close ?prof t reg =
  if not t.closed then begin
    snap ?prof t reg;
    t.closed <- true;
    close_out t.oc
  end
