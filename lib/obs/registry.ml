(** Counter / gauge / histogram registry with per-component namespacing.

    Names are dotted paths ("core.block_cache.hits",
    "synth.ep.in_order.ns"); the first segment is the owning component.
    Three kinds of instruments:

    - {b counters} — mutable ints a component increments directly. The
      record is returned once at registration; the hot path touches only
      the record, never the hashtable.
    - {b probes} — pull gauges: a closure sampled at {!snapshot} time.
      Components that already keep their own statistics (cache models,
      the block cache, the rollback journal) export them this way at
      zero runtime cost.
    - {b histograms} — {!Hist.t}, for latency distributions.

    {!snapshot} deep-copies everything, so a snapshot is isolated from
    later increments and from {!reset}. *)

type counter = { mutable n : int }

type value = Int of int | Float of float

type t = {
  counters : (string, counter) Hashtbl.t;
  probes : (string, unit -> value) Hashtbl.t;
  hists : (string, Hist.t) Hashtbl.t;
}

let create () =
  { counters = Hashtbl.create 64; probes = Hashtbl.create 64; hists = Hashtbl.create 16 }

(** [counter t name] — find or create. Call once, keep the record. *)
let counter t name =
  match Hashtbl.find_opt t.counters name with
  | Some c -> c
  | None ->
    let c = { n = 0 } in
    Hashtbl.replace t.counters name c;
    c

let incr (c : counter) = c.n <- c.n + 1
let add (c : counter) k = c.n <- c.n + k
let get (c : counter) = c.n

(** [probe t name f] — register a pull gauge. The first registration of
    a name wins: when several interfaces share one registry (a profile
    that runs auxiliary passes), the primary interface keeps ownership
    of the shared gauge names it registered first. *)
let probe t name f =
  if not (Hashtbl.mem t.probes name) then Hashtbl.add t.probes name f

(** [histogram t name] — find or create. Call once, keep the record. *)
let histogram t name =
  match Hashtbl.find_opt t.hists name with
  | Some h -> h
  | None ->
    let h = Hist.create () in
    Hashtbl.replace t.hists name h;
    h

(** [merge ~into src] folds [src] into [into]: counters add, histograms
    merge bucket-by-bucket ({!Hist.merge}), probes transfer under the
    usual first-registration-wins rule. Counters and histograms stay
    exact under any partition of the work — this is the join step for
    per-domain registries after a parallel campaign. [src] is left
    untouched. *)
let merge ~into src =
  Hashtbl.iter
    (fun name (c : counter) ->
      let c' = counter into name in
      c'.n <- c'.n + c.n)
    src.counters;
  Hashtbl.iter (fun name f -> probe into name f) src.probes;
  Hashtbl.iter
    (fun name h -> Hist.merge ~into:(histogram into name) h)
    src.hists

(* ------------------------------------------------------------------ *)
(* Snapshots                                                           *)
(* ------------------------------------------------------------------ *)

type item = Value of value | Histogram of Hist.t

type snapshot = (string * item) list  (** sorted by name *)

let snapshot t : snapshot =
  let acc = ref [] in
  Hashtbl.iter (fun name c -> acc := (name, Value (Int c.n)) :: !acc) t.counters;
  Hashtbl.iter (fun name f -> acc := (name, Value (f ())) :: !acc) t.probes;
  Hashtbl.iter
    (fun name h -> acc := (name, Histogram (Hist.copy h)) :: !acc)
    t.hists;
  List.sort (fun (a, _) (b, _) -> String.compare a b) !acc

(** [find snap name] — the snapshotted item, if present. *)
let find (snap : snapshot) name = List.assoc_opt name snap

(** [find_int snap name] — integer value of a counter or int probe;
    [None] for other kinds or when absent. *)
let find_int snap name =
  match find snap name with Some (Value (Int n)) -> Some n | _ -> None

(** [reset t] zeroes counters and histograms (probes re-sample their
    component on the next snapshot; resetting the component is the
    component's business). *)
let reset t =
  Hashtbl.iter (fun _ c -> c.n <- 0) t.counters;
  Hashtbl.iter (fun _ h -> Hist.reset h) t.hists
