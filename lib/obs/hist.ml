(** Log2-bucket latency histograms.

    Bucket [i] counts samples [v] with [2^i <= v < 2^(i+1)]; bucket 0
    also absorbs 0 and negative samples (a clock step backwards rounds
    to zero rather than corrupting the distribution). Recording is two
    array updates and a handful of integer ops — suitable for wrapping
    every entrypoint call of an observed interface.

    The unit is whatever the caller records (the simulator records
    nanoseconds); the histogram itself is unit-agnostic. *)

let n_buckets = 63

type t = {
  buckets : int array;  (** [n_buckets] slots *)
  mutable count : int;
  mutable sum : int;
  mutable max : int;
}

let create () = { buckets = Array.make n_buckets 0; count = 0; sum = 0; max = 0 }

(* floor(log2 v) for v >= 2; callers handle v < 2. *)
let log2_floor v =
  let rec go v acc = if v <= 1 then acc else go (v lsr 1) (acc + 1) in
  go v 0

let bucket_of v = if v < 2 then 0 else log2_floor v

(** Inclusive lower bound of bucket [i]. *)
let bucket_lo i = if i = 0 then 0 else 1 lsl i

(** Inclusive upper bound of bucket [i]. *)
let bucket_hi i = (1 lsl (i + 1)) - 1

let record t v =
  let b = bucket_of v in
  t.buckets.(b) <- t.buckets.(b) + 1;
  t.count <- t.count + 1;
  t.sum <- t.sum + max v 0;
  if v > t.max then t.max <- v

let count t = t.count
let sum t = t.sum
let max_value t = t.max
let mean t = if t.count = 0 then 0. else float_of_int t.sum /. float_of_int t.count

let reset t =
  Array.fill t.buckets 0 n_buckets 0;
  t.count <- 0;
  t.sum <- 0;
  t.max <- 0

let copy t = { t with buckets = Array.copy t.buckets }

(** [merge ~into src] adds [src]'s samples into [into]; neither loses
    information (bucket counts, totals and maxima all combine exactly). *)
let merge ~into src =
  for i = 0 to n_buckets - 1 do
    into.buckets.(i) <- into.buckets.(i) + src.buckets.(i)
  done;
  into.count <- into.count + src.count;
  into.sum <- into.sum + src.sum;
  if src.max > into.max then into.max <- src.max

(** [percentile t p] — upper bound of the bucket containing the [p]-th
    percentile sample, capped at the recorded maximum.

    Edge cases (all deliberate, all tested):
    - {b empty histogram}: returns 0. A 0 here is indistinguishable from
      a genuine sub-2 sample, so renderers that must not mislead should
      use {!percentile_opt} and omit the statistic instead;
    - {b p = 0} (and any p < 0): the rank clamps to 1, i.e. the upper
      bound of the lowest non-empty bucket — the resolution-limited
      "minimum";
    - {b p = 100} (and any p > 100): exactly [max_value t];
    - ranks are [ceil (p/100 * count)], so percentiles round {e up} to a
      recorded sample's bucket — p50 of two samples is the larger one. *)
let percentile t p =
  if t.count = 0 then 0
  else begin
    let rank =
      int_of_float (ceil (p /. 100. *. float_of_int t.count))
      |> max 1
      |> min t.count
    in
    let rec go i seen =
      if i >= n_buckets then t.max
      else
        let seen = seen + t.buckets.(i) in
        if seen >= rank then min (bucket_hi i) t.max else go (i + 1) seen
    in
    go 0 0
  end

(** [percentile_opt t p] — [None] when the histogram is empty, otherwise
    [Some (percentile t p)]. The renderer-safe variant: an absent
    statistic can be omitted where a 0 would read as "all samples < 2". *)
let percentile_opt t p = if t.count = 0 then None else Some (percentile t p)

(** Non-empty buckets as [(lo, hi, count)], low to high. *)
let nonzero_buckets t =
  let acc = ref [] in
  for i = n_buckets - 1 downto 0 do
    if t.buckets.(i) > 0 then acc := (bucket_lo i, bucket_hi i, t.buckets.(i)) :: !acc
  done;
  !acc
