(** PC-bucketed execution profiler — the hotness signal behind
    [lisim profile] and the input the adaptive-tiering scheduler will
    consume.

    The profiler divides the address space into fixed power-of-two
    {e regions} ([2^region_bits] bytes, default 64) and attributes
    retired instructions to the region of the pc that executed them.
    Like the rest of {!Obs}, it is {e compiled in} at synthesis time:
    an interface built without a profiler contains no profiling code at
    all, and an interface built with one pays a single cached-region
    compare-and-add per attribution call. Block-semantic interfaces
    attribute whole blocks at once ([note] with the block's entry pc and
    its executed-site count — the translation cache's block extents), so
    the per-instruction cost on the chained fast path is amortized to
    nearly nothing.

    Three signals per region:

    - {b instructions} — exact cumulative attribution (deterministic:
      the same run attributes the same counts);
    - {b nanoseconds} — sampled wall-time attribution: every
      [sample_ns_every] attributed instructions the monotonic clock is
      read once and the elapsed time is charged to the region that was
      current when the sample fired. Statistical, cheap, and unbiased
      for regions hot enough to matter;
    - {b hotness} — an exponentially-decaying window over attributed
      instructions. Hotness decays by half every [half_life]
      instructions of {e total} execution, so a region that stopped
      executing cools off at a rate measured in simulated work, not
      wall time — the property a tier-up/tier-down scheduler needs to
      be deterministic and replayable.

    Decay semantics (exact, unit-tested): attribution is grouped into
    {e visits} — maximal runs of consecutive attributions to the same
    region. When a visit ends (the pc moves to another region, or a
    report is taken), the region's hotness is first decayed to "now"
    ([hot *. 0.5 ** ((total - hot_at) / half_life)]) and then the whole
    visit's instruction count is added, as if it had arrived at the
    visit's end. Region transitions are also counted as edges
    (predecessor region -> successor region), which is what the
    speedscope export renders as a flame view. *)

(* Hotness is kept in 16.16-style fixed point (an int scaled by 2^16)
   rather than a float: a mutable float field in a mixed record is boxed
   in OCaml, so every store would allocate — and the switch path stores
   twice (decay, then visit credit). Fixed point makes the whole
   attribution path allocation-free; 1/65536-instruction granularity is
   far below anything a hotness ranking can distinguish. *)
let hot_fixed_one = 65_536.

type region_rec = {
  mutable i_instrs : int;  (** exact cumulative instructions *)
  mutable i_ns : int;  (** sampled wall-time attribution *)
  mutable i_hot : int;  (** decaying window, fixed-point 2^-16 units,
                            valid as of [i_hot_at] *)
  mutable i_hot_at : int;  (** total instructions at last decay *)
  i_edges : (int, int ref) Hashtbl.t;  (** successor region id -> count *)
  mutable e_dst : int;  (** one-entry edge cache: last successor id *)
  mutable e_cnt : int ref;  (** its counter (aliases an [i_edges] entry) *)
}

type t = {
  region_bits : int;
  half_life : float;  (** instructions for hotness to halve *)
  neg_ln2_over_hl : float;  (** [-ln 2 / half_life], the decay exponent *)
  sample_ns_every : int;
  tbl : (int, region_rec) Hashtbl.t;
  mutable total : int;  (** instructions attributed *)
  mutable total_ns : int;
  mutable cur_id : int;  (** current region id; -1 before the first note *)
  mutable cur : region_rec;
  mutable prev_id : int;  (** previous region id; -1 before two regions *)
  mutable prev : region_rec;  (** ping-pong cache: loops that straddle a
                                  region boundary switch between the same
                                  two regions, so the return switch skips
                                  the hashtable *)
  mutable visit : int;  (** instructions attributed in the current visit *)
  mutable next_sample : int;  (** [total] at which the next ns sample fires
                                  (a threshold compare, not a countdown
                                  store, keeps the attribution fast path
                                  at four stores) *)
  mutable last_ts : int64;
  mutable decay_dt : int;  (** memoized decay: last dt (0 = none) ... *)
  mutable decay_f : float;  (** ... and its factor. Periodic visit patterns
                                close visits at a repeating dt, so the
                                [exp] is computed once per pattern, not
                                once per region switch *)
}

let default_region_bits = 6
let default_half_life = 32_768
let default_sample_ns_every = 1_024

let dummy_rec () =
  {
    i_instrs = 0;
    i_ns = 0;
    i_hot = 0;
    i_hot_at = 0;
    i_edges = Hashtbl.create 1;
    e_dst = -1;
    e_cnt = ref 0;
  }

let create ?(region_bits = default_region_bits)
    ?(half_life = default_half_life)
    ?(sample_ns_every = default_sample_ns_every) () =
  if region_bits < 0 || region_bits > 62 then
    invalid_arg "Prof.create: region_bits must be within [0, 62]";
  if half_life <= 0 then invalid_arg "Prof.create: half_life must be positive";
  if sample_ns_every <= 0 then
    invalid_arg "Prof.create: sample_ns_every must be positive";
  {
    region_bits;
    half_life = float_of_int half_life;
    neg_ln2_over_hl = -.Float.log 2. /. float_of_int half_life;
    sample_ns_every;
    tbl = Hashtbl.create 64;
    total = 0;
    total_ns = 0;
    cur_id = -1;
    cur = dummy_rec ();
    prev_id = -1;
    prev = dummy_rec ();
    visit = 0;
    next_sample = sample_ns_every;
    last_ts = Clock.now_ns ();
    decay_dt = 0;
    decay_f = 1.;
  }

let region_bits t = t.region_bits
let total_instrs t = t.total
let total_ns t = t.total_ns
let n_regions t = Hashtbl.length t.tbl

(* Untagged-int shift: no Int64 boxing on the attribution fast path.
   Equivalent to a logical shift of the low 63 pc bits — bit 63 of a
   64-bit pc folds into the sign and simulated address spaces never
   reach it. *)
let region_id t pc = Int64.to_int pc lsr t.region_bits
let region_lo t id = Int64.shift_left (Int64.of_int id) t.region_bits
let region_hi t id =
  Int64.add (region_lo t id) (Int64.of_int ((1 lsl t.region_bits) - 1))

let region_name t id = Printf.sprintf "0x%Lx-0x%Lx" (region_lo t id) (region_hi t id)

(* Decay [r]'s hotness window to [t.total] total instructions:
   [hot *= exp (-ln 2 * dt / half_life)]. The factor for the most recent
   dt is memoized — periodic visit patterns (a loop bouncing between two
   regions) repeat the same dt, so the [exp] is rarely recomputed. *)
let decay_to t (r : region_rec) =
  let dt = t.total - r.i_hot_at in
  if dt > 0 then begin
    if r.i_hot > 0 then begin
      let f =
        if dt = t.decay_dt then t.decay_f
        else begin
          let f = Float.exp (t.neg_ln2_over_hl *. float_of_int dt) in
          t.decay_dt <- dt;
          t.decay_f <- f;
          f
        end
      in
      r.i_hot <- int_of_float (float_of_int r.i_hot *. f)
    end;
    r.i_hot_at <- t.total
  end

(* Close the current visit: decay the region to now, then credit the
   visit's instructions to the window. *)
let close_visit t =
  if t.cur_id >= 0 && t.visit > 0 then begin
    decay_to t t.cur;
    t.cur.i_hot <- t.cur.i_hot + (t.visit lsl 16);
    t.visit <- 0
  end

let find_or_create t id =
  match Hashtbl.find_opt t.tbl id with
  | Some r -> r
  | None ->
    let r = dummy_rec () in
    Hashtbl.replace t.tbl id r;
    r

(* Region switch: close the previous visit, record the transition edge,
   swap the cached record. A loop body that straddles a region boundary
   switches on every iteration, so the switch path matters too: the
   ping-pong case (returning to the previous region) and the repeated
   edge both hit one-entry caches instead of the hashtables. *)
let[@inline never] switch t id =
  close_visit t;
  let from = t.cur and from_id = t.cur_id in
  let r = if id = t.prev_id then t.prev else find_or_create t id in
  if from_id >= 0 then begin
    (if from.e_dst = id then incr from.e_cnt
     else begin
       let n =
         match Hashtbl.find_opt from.i_edges id with
         | Some n ->
           incr n;
           n
         | None ->
           let n = ref 1 in
           Hashtbl.replace from.i_edges id n;
           n
       in
       from.e_dst <- id;
       from.e_cnt <- n
     end);
    t.prev_id <- from_id;
    t.prev <- from
  end;
  t.cur_id <- id;
  t.cur <- r

(* Read the clock once and charge the elapsed time to the region that
   was current when the sample countdown expired. *)
let[@inline never] sample_ns t =
  let now = Clock.now_ns () in
  let dt = Int64.to_int (Int64.sub now t.last_ts) in
  if dt > 0 && t.cur_id >= 0 then begin
    t.cur.i_ns <- t.cur.i_ns + dt;
    t.total_ns <- t.total_ns + dt
  end;
  t.last_ts <- now;
  t.next_sample <- t.total + t.sample_ns_every

(** [note t ~pc ~instrs] attributes [instrs] retired instructions to the
    region holding [pc]. Per-instruction interfaces call it with
    [~instrs:1] and the instruction's pc; block interfaces call it once
    per executed block with the block's entry pc and executed-site
    count (block-boundary aggregation: a block that straddles a region
    boundary is charged whole to its entry region). The fast path —
    same region as the previous call — is two compares and three adds. *)
let[@inline] note t ~pc ~instrs =
  let id = region_id t pc in
  if id <> t.cur_id then switch t id;
  t.cur.i_instrs <- t.cur.i_instrs + instrs;
  t.visit <- t.visit + instrs;
  t.total <- t.total + instrs;
  if t.total >= t.next_sample then sample_ns t

(** [merge ~into src] folds [src]'s region table into [into] — the join
    step for per-domain profilers after a parallel campaign. Exact for
    cumulative attribution (per-region instructions, sampled ns, edge
    counts, totals). The decayed-hotness window is combined
    approximately: each profiler's window is first decayed to its own
    present, then summed with the merge instant taken as "now" — fine
    for hot-region ranking, which is all the window feeds. Requires
    matching [region_bits]. [src] is left with its visit closed but its
    attribution intact. *)
let merge ~into src =
  if into.region_bits <> src.region_bits then
    invalid_arg "Prof.merge: region_bits mismatch";
  close_visit into;
  close_visit src;
  Hashtbl.iter (fun _ r -> decay_to into r) into.tbl;
  Hashtbl.iter (fun _ r -> decay_to src r) src.tbl;
  let now = into.total + src.total in
  Hashtbl.iter
    (fun id (r : region_rec) ->
      let d = find_or_create into id in
      d.i_instrs <- d.i_instrs + r.i_instrs;
      d.i_ns <- d.i_ns + r.i_ns;
      d.i_hot <- d.i_hot + r.i_hot;
      Hashtbl.iter
        (fun dst n ->
          match Hashtbl.find_opt d.i_edges dst with
          | Some m -> m := !m + !n
          | None -> Hashtbl.replace d.i_edges dst (ref !n))
        r.i_edges)
    src.tbl;
  into.total <- now;
  into.total_ns <- into.total_ns + src.total_ns;
  Hashtbl.iter (fun _ r -> r.i_hot_at <- now) into.tbl;
  into.next_sample <- into.total + into.sample_ns_every

(* ------------------------------------------------------------------ *)
(* Reports                                                             *)
(* ------------------------------------------------------------------ *)

type region = {
  rg_id : int;
  rg_lo : int64;  (** inclusive region base address *)
  rg_hi : int64;  (** inclusive region end address *)
  rg_instrs : int;
  rg_ns : int;
  rg_hotness : float;  (** decayed to the report instant *)
  rg_share : float;  (** fraction of all attributed instructions *)
}

(** [report ?top t] — regions ranked by decayed hotness (ties broken by
    cumulative instructions, then address), hottest first, truncated to
    [top] when given. Taking a report closes the current visit (the
    window is brought fully up to date) but loses no attribution. *)
let report ?top t : region list =
  close_visit t;
  let total = float_of_int (max t.total 1) in
  let all =
    Hashtbl.fold
      (fun id r acc ->
        decay_to t r;
        {
          rg_id = id;
          rg_lo = region_lo t id;
          rg_hi = region_hi t id;
          rg_instrs = r.i_instrs;
          rg_ns = r.i_ns;
          rg_hotness = float_of_int r.i_hot /. hot_fixed_one;
          rg_share = float_of_int r.i_instrs /. total;
        }
        :: acc)
      t.tbl []
  in
  let ranked =
    List.sort
      (fun a b ->
        match Float.compare b.rg_hotness a.rg_hotness with
        | 0 -> (
          match compare b.rg_instrs a.rg_instrs with
          | 0 -> compare a.rg_id b.rg_id
          | c -> c)
        | c -> c)
      all
  in
  match top with
  | None -> ranked
  | Some n -> List.filteri (fun i _ -> i < n) ranked

(** Region-transition edges [(src_id, dst_id, count)], heaviest first
    (ties broken by source then destination id). *)
let edges t =
  let all =
    Hashtbl.fold
      (fun src r acc ->
        Hashtbl.fold (fun dst n acc -> (src, dst, !n) :: acc) r.i_edges acc)
      t.tbl []
  in
  List.sort
    (fun (s1, d1, n1) (s2, d2, n2) ->
      match compare n2 n1 with
      | 0 -> ( match compare s1 s2 with 0 -> compare d1 d2 | c -> c)
      | c -> c)
    all

(** [instrs_of t ~pc] — exact instructions attributed to [pc]'s region
    so far (0 when never executed). The brute-force cross-check hook. *)
let instrs_of t ~pc =
  match Hashtbl.find_opt t.tbl (region_id t pc) with
  | Some r -> r.i_instrs
  | None -> 0

(** The [lisim profile] table. *)
let pp_report ?(top = 10) ppf t =
  let rs = report ~top t in
  Format.fprintf ppf "%-24s %12s %7s %12s %12s@\n" "region" "instrs" "share"
    "hotness" "ns(sampled)";
  List.iter
    (fun r ->
      Format.fprintf ppf "%-24s %12d %6.1f%% %12.1f %12d@\n"
        (region_name t r.rg_id) r.rg_instrs
        (100. *. r.rg_share)
        r.rg_hotness r.rg_ns)
    rs;
  Format.fprintf ppf
    "%d region(s) of %d bytes, %d instructions attributed, %d ns sampled@\n"
    (n_regions t) (1 lsl t.region_bits) t.total t.total_ns

(* ------------------------------------------------------------------ *)
(* Exports                                                             *)
(* ------------------------------------------------------------------ *)

(** Top-N regions as JSON (the shape embedded in metrics snapshots). *)
let json_top ?(top = 10) t : Export.json =
  Export.Arr
    (List.map
       (fun r ->
         Export.Obj
           [
             ("region", Export.Str (region_name t r.rg_id));
             ("instrs", Export.Int (Int64.of_int r.rg_instrs));
             ("share", Export.Float r.rg_share);
             ("hotness", Export.Float r.rg_hotness);
             ("ns", Export.Int (Int64.of_int r.rg_ns));
           ])
       (report ~top t))

(** Speedscope document (load at https://www.speedscope.app or with
    [speedscope file.json]): one frame per region, and two sampled
    profiles — "hot regions" (single-frame stacks weighted by exact
    attributed instructions) and "region transitions" (two-frame
    [src; dst] stacks weighted by transition counts, the flame view of
    the region call/chain graph). *)
let speedscope ?(name = "lisim profile") t : Export.json =
  let regions =
    List.sort compare (Hashtbl.fold (fun id _ acc -> id :: acc) t.tbl [])
  in
  let index = Hashtbl.create (List.length regions) in
  List.iteri (fun i id -> Hashtbl.replace index id i) regions;
  let frames =
    List.map (fun id -> Export.Obj [ ("name", Export.Str (region_name t id)) ]) regions
  in
  let self =
    List.filter_map
      (fun r ->
        if r.rg_instrs = 0 then None
        else Some ([ Hashtbl.find index r.rg_id ], r.rg_instrs))
      (List.sort (fun a b -> compare a.rg_id b.rg_id) (report t))
  in
  let trans =
    List.map
      (fun (src, dst, n) ->
        ([ Hashtbl.find index src; Hashtbl.find index dst ], n))
      (edges t)
  in
  let profile pname samples =
    let total = List.fold_left (fun a (_, w) -> a + w) 0 samples in
    Export.Obj
      [
        ("type", Export.Str "sampled");
        ("name", Export.Str pname);
        ("unit", Export.Str "none");
        ("startValue", Export.Int 0L);
        ("endValue", Export.Int (Int64.of_int total));
        ( "samples",
          Export.Arr
            (List.map
               (fun (stack, _) ->
                 Export.Arr (List.map (fun i -> Export.Int (Int64.of_int i)) stack))
               samples) );
        ( "weights",
          Export.Arr (List.map (fun (_, w) -> Export.Int (Int64.of_int w)) samples)
        );
      ]
  in
  Export.Obj
    [
      ("$schema", Export.Str "https://www.speedscope.app/file-format-schema.json");
      ("name", Export.Str name);
      ("exporter", Export.Str "lisim");
      ("activeProfileIndex", Export.Int 0L);
      ("shared", Export.Obj [ ("frames", Export.Arr frames) ]);
      ( "profiles",
        Export.Arr
          [
            profile (name ^ ": hot regions (instructions)") self;
            profile (name ^ ": region transitions") trans;
          ] );
    ]
