(** Structured exporters: JSON, JSONL event logs, Chrome trace-event
    files (loadable in Perfetto / chrome://tracing), and the plain-text
    counter table behind [lisim stats].

    The JSON emitter and the minimal parser below avoid a third-party
    dependency; the parser exists so tests (and consumers) can validate
    emitted documents round-trip. *)

(* ------------------------------------------------------------------ *)
(* JSON values                                                         *)
(* ------------------------------------------------------------------ *)

type json =
  | Null
  | Bool of bool
  | Int of int64
  | Float of float
  | Str of string
  | Arr of json list
  | Obj of (string * json) list

let escape_to buf s =
  Buffer.add_char buf '"';
  String.iter
    (fun c ->
      match c with
      | '"' -> Buffer.add_string buf "\\\""
      | '\\' -> Buffer.add_string buf "\\\\"
      | '\n' -> Buffer.add_string buf "\\n"
      | '\r' -> Buffer.add_string buf "\\r"
      | '\t' -> Buffer.add_string buf "\\t"
      | c when Char.code c < 0x20 ->
        Buffer.add_string buf (Printf.sprintf "\\u%04x" (Char.code c))
      | c -> Buffer.add_char buf c)
    s;
  Buffer.add_char buf '"'

let float_to_string f =
  if Float.is_integer f && Float.abs f < 1e15 then
    Printf.sprintf "%.1f" f
  else Printf.sprintf "%.17g" f

let rec write buf = function
  | Null -> Buffer.add_string buf "null"
  | Bool b -> Buffer.add_string buf (if b then "true" else "false")
  | Int i -> Buffer.add_string buf (Int64.to_string i)
  | Float f ->
    if Float.is_nan f || Float.abs f = Float.infinity then
      Buffer.add_string buf "null"
    else Buffer.add_string buf (float_to_string f)
  | Str s -> escape_to buf s
  | Arr xs ->
    Buffer.add_char buf '[';
    List.iteri
      (fun i x ->
        if i > 0 then Buffer.add_char buf ',';
        write buf x)
      xs;
    Buffer.add_char buf ']'
  | Obj kvs ->
    Buffer.add_char buf '{';
    List.iteri
      (fun i (k, v) ->
        if i > 0 then Buffer.add_char buf ',';
        escape_to buf k;
        Buffer.add_char buf ':';
        write buf v)
      kvs;
    Buffer.add_char buf '}'

let to_string j =
  let buf = Buffer.create 256 in
  write buf j;
  Buffer.contents buf

let to_channel oc j = output_string oc (to_string j)

(* ------------------------------------------------------------------ *)
(* Minimal JSON parser (validation / round-trip tests)                 *)
(* ------------------------------------------------------------------ *)

exception Parse_error of int * string

let parse (s : string) : json =
  let n = String.length s in
  let pos = ref 0 in
  let fail msg = raise (Parse_error (!pos, msg)) in
  let peek () = if !pos < n then Some s.[!pos] else None in
  let advance () = incr pos in
  let rec skip_ws () =
    match peek () with
    | Some (' ' | '\t' | '\n' | '\r') ->
      advance ();
      skip_ws ()
    | _ -> ()
  in
  let expect c =
    match peek () with
    | Some c' when c' = c -> advance ()
    | _ -> fail (Printf.sprintf "expected '%c'" c)
  in
  let literal word v =
    if !pos + String.length word <= n && String.sub s !pos (String.length word) = word
    then begin
      pos := !pos + String.length word;
      v
    end
    else fail ("expected " ^ word)
  in
  let parse_string () =
    expect '"';
    let buf = Buffer.create 16 in
    let rec go () =
      if !pos >= n then fail "unterminated string";
      let c = s.[!pos] in
      advance ();
      match c with
      | '"' -> Buffer.contents buf
      | '\\' ->
        (if !pos >= n then fail "unterminated escape";
         let e = s.[!pos] in
         advance ();
         match e with
         | '"' -> Buffer.add_char buf '"'
         | '\\' -> Buffer.add_char buf '\\'
         | '/' -> Buffer.add_char buf '/'
         | 'n' -> Buffer.add_char buf '\n'
         | 'r' -> Buffer.add_char buf '\r'
         | 't' -> Buffer.add_char buf '\t'
         | 'b' -> Buffer.add_char buf '\b'
         | 'f' -> Buffer.add_char buf '\012'
         | 'u' ->
           if !pos + 4 > n then fail "bad \\u escape";
           let code = int_of_string ("0x" ^ String.sub s !pos 4) in
           pos := !pos + 4;
           (* BMP-only, encoded as UTF-8 *)
           if code < 0x80 then Buffer.add_char buf (Char.chr code)
           else if code < 0x800 then begin
             Buffer.add_char buf (Char.chr (0xC0 lor (code lsr 6)));
             Buffer.add_char buf (Char.chr (0x80 lor (code land 0x3F)))
           end
           else begin
             Buffer.add_char buf (Char.chr (0xE0 lor (code lsr 12)));
             Buffer.add_char buf (Char.chr (0x80 lor ((code lsr 6) land 0x3F)));
             Buffer.add_char buf (Char.chr (0x80 lor (code land 0x3F)))
           end
         | _ -> fail "bad escape");
        go ()
      | c -> Buffer.add_char buf c; go ()
    in
    go ()
  in
  let parse_number () =
    let start = !pos in
    let is_num_char c =
      match c with
      | '0' .. '9' | '-' | '+' | '.' | 'e' | 'E' -> true
      | _ -> false
    in
    while (match peek () with Some c when is_num_char c -> true | _ -> false) do
      advance ()
    done;
    let text = String.sub s start (!pos - start) in
    match Int64.of_string_opt text with
    | Some i -> Int i
    | None -> (
      match float_of_string_opt text with
      | Some f -> Float f
      | None -> fail "bad number")
  in
  let rec parse_value () =
    skip_ws ();
    match peek () with
    | Some '{' ->
      advance ();
      skip_ws ();
      if peek () = Some '}' then (advance (); Obj [])
      else begin
        let rec members acc =
          skip_ws ();
          let k = parse_string () in
          skip_ws ();
          expect ':';
          let v = parse_value () in
          skip_ws ();
          match peek () with
          | Some ',' ->
            advance ();
            members ((k, v) :: acc)
          | Some '}' ->
            advance ();
            Obj (List.rev ((k, v) :: acc))
          | _ -> fail "expected ',' or '}'"
        in
        members []
      end
    | Some '[' ->
      advance ();
      skip_ws ();
      if peek () = Some ']' then (advance (); Arr [])
      else begin
        let rec elements acc =
          let v = parse_value () in
          skip_ws ();
          match peek () with
          | Some ',' ->
            advance ();
            elements (v :: acc)
          | Some ']' ->
            advance ();
            Arr (List.rev (v :: acc))
          | _ -> fail "expected ',' or ']'"
        in
        elements []
      end
    | Some '"' -> Str (parse_string ())
    | Some 't' -> literal "true" (Bool true)
    | Some 'f' -> literal "false" (Bool false)
    | Some 'n' -> literal "null" Null
    | Some _ -> parse_number ()
    | None -> fail "unexpected end of input"
  in
  let v = parse_value () in
  skip_ws ();
  if !pos <> n then fail "trailing data";
  v

let parse_opt s = try Some (parse s) with Parse_error _ | Failure _ -> None

let member name = function Obj kvs -> List.assoc_opt name kvs | _ -> None

(** Typed member accessors, for consumers that read flat JSON records
    (the supervised-execution journal, tests): [None] when the key is
    absent or has a different shape. *)
let member_string name j =
  match member name j with Some (Str s) -> Some s | _ -> None

let member_int name j =
  match member name j with Some (Int i) -> Some i | _ -> None

(* ------------------------------------------------------------------ *)
(* Event exporters                                                     *)
(* ------------------------------------------------------------------ *)

let json_of_arg = function
  | Ring.I i -> Int i
  | Ring.S s -> Str s
  | Ring.F f -> Float f

let json_of_event (e : Ring.event) : json =
  Obj
    (("name", Str e.name) :: ("cat", Str e.cat)
    :: ("ts_ns", Int e.ts_ns)
    :: ("dur_ns", Int (Int64.of_int e.dur_ns))
    :: (match e.args with
       | [] -> []
       | args -> [ ("args", Obj (List.map (fun (k, v) -> (k, json_of_arg v)) args)) ]))

(** One JSON object per line, oldest event first. *)
let jsonl_of_events (events : Ring.event list) : string =
  let buf = Buffer.create 1024 in
  List.iter
    (fun e ->
      write buf (json_of_event e);
      Buffer.add_char buf '\n')
    events;
  Buffer.contents buf

(** Chrome trace-event document ("X" complete events, microsecond
    timestamps), as Perfetto and chrome://tracing load directly. *)
let chrome_of_events ?(pid = 1) ?(tid = 1) (events : Ring.event list) : json =
  let ev (e : Ring.event) =
    Obj
      [
        ("name", Str e.name);
        ("cat", Str e.cat);
        ("ph", Str "X");
        ("ts", Float (Int64.to_float e.ts_ns /. 1e3));
        ("dur", Float (float_of_int e.dur_ns /. 1e3));
        ("pid", Int (Int64.of_int pid));
        ("tid", Int (Int64.of_int tid));
        ("args", Obj (List.map (fun (k, v) -> (k, json_of_arg v)) e.args));
      ]
  in
  Obj
    [
      ("traceEvents", Arr (List.map ev events));
      ("displayTimeUnit", Str "ns");
    ]

(* ------------------------------------------------------------------ *)
(* Registry snapshots                                                  *)
(* ------------------------------------------------------------------ *)

(* Percentiles of an empty histogram are meaningless — [Hist.percentile]
   returns 0 there, which would read as "bucket [0,1]". Emit null so
   consumers can tell "no samples" from "all samples < 2". *)
let json_of_percentile h p =
  match Hist.percentile_opt h p with
  | None -> Null
  | Some v -> Int (Int64.of_int v)

let json_of_hist (h : Hist.t) : json =
  Obj
    [
      ("count", Int (Int64.of_int (Hist.count h)));
      ("sum", Int (Int64.of_int (Hist.sum h)));
      ("mean", Float (Hist.mean h));
      ("p50", json_of_percentile h 50.);
      ("p99", json_of_percentile h 99.);
      ( "buckets",
        Arr
          (List.map
             (fun (lo, hi, n) ->
               Obj
                 [
                   ("lo", Int (Int64.of_int lo));
                   ("hi", Int (Int64.of_int hi));
                   ("count", Int (Int64.of_int n));
                 ])
             (Hist.nonzero_buckets h)) );
    ]

let json_of_snapshot (snap : Registry.snapshot) : json =
  Obj
    (List.map
       (fun (name, item) ->
         ( name,
           match item with
           | Registry.Value (Registry.Int n) -> Int (Int64.of_int n)
           | Registry.Value (Registry.Float f) -> Float f
           | Registry.Histogram h -> json_of_hist h ))
       snap)

(** The [lisim stats] text table: one counter per line, histograms as a
    summary line plus their non-empty log2 buckets. Rows follow snapshot
    order (sorted by name — see {!Registry.snapshot}), so output is
    stable regardless of registration order. Percentiles of an empty
    histogram print as "-". *)
let pp_snapshot ppf (snap : Registry.snapshot) =
  let pctl h p =
    match Hist.percentile_opt h p with
    | None -> "-"
    | Some v -> string_of_int v
  in
  List.iter
    (fun (name, item) ->
      match item with
      | Registry.Value (Registry.Int n) ->
        Format.fprintf ppf "%-44s %14d@\n" name n
      | Registry.Value (Registry.Float f) ->
        Format.fprintf ppf "%-44s %14.3f@\n" name f
      | Registry.Histogram h ->
        Format.fprintf ppf "%-44s count %9d  mean %10.1f  p50 %8s  p99 %8s  max %8d@\n"
          name (Hist.count h) (Hist.mean h)
          (pctl h 50.) (pctl h 99.) (Hist.max_value h);
        List.iter
          (fun (lo, hi, n) ->
            Format.fprintf ppf "    [%10d, %10d] %12d@\n" lo hi n)
          (Hist.nonzero_buckets h))
    snap

(* ------------------------------------------------------------------ *)
(* Prometheus text format                                               *)
(* ------------------------------------------------------------------ *)

(* Prometheus metric names admit [a-zA-Z_:][a-zA-Z0-9_:]*; registry
   names use dots ("core.block_cache.chain_taken"), which map to '_'. *)
let prom_name ~prefix name =
  let buf = Buffer.create (String.length prefix + String.length name) in
  Buffer.add_string buf prefix;
  String.iter
    (fun c ->
      match c with
      | 'a' .. 'z' | 'A' .. 'Z' | '0' .. '9' | '_' | ':' -> Buffer.add_char buf c
      | _ -> Buffer.add_char buf '_')
    name;
  Buffer.contents buf

let prom_float f =
  if Float.is_nan f then "NaN"
  else if f = Float.infinity then "+Inf"
  else if f = Float.neg_infinity then "-Inf"
  else if Float.is_integer f && Float.abs f < 1e15 then
    Printf.sprintf "%.0f" f
  else Printf.sprintf "%.17g" f

(** [prom snap] — the snapshot in Prometheus text exposition format
    (version 0.0.4), no third-party deps. Integer counters and float
    probes render as gauges (the registry does not distinguish
    monotonic counters from pull gauges, and gauge is the type that is
    always safe to scrape); histograms render as native Prometheus
    histograms with cumulative [_bucket{le="..."}] series derived from
    the log2 bucket upper bounds, plus [_sum] and [_count]. Families
    appear in snapshot order, i.e. sorted by name. *)
let prom ?(prefix = "lisim_") (snap : Registry.snapshot) : string =
  let buf = Buffer.create 1024 in
  List.iter
    (fun (name, item) ->
      let m = prom_name ~prefix name in
      match item with
      | Registry.Value (Registry.Int n) ->
        Buffer.add_string buf (Printf.sprintf "# TYPE %s gauge\n%s %d\n" m m n)
      | Registry.Value (Registry.Float f) ->
        Buffer.add_string buf
          (Printf.sprintf "# TYPE %s gauge\n%s %s\n" m m (prom_float f))
      | Registry.Histogram h ->
        Buffer.add_string buf (Printf.sprintf "# TYPE %s histogram\n" m);
        let cum = ref 0 in
        List.iter
          (fun (_, hi, n) ->
            cum := !cum + n;
            Buffer.add_string buf
              (Printf.sprintf "%s_bucket{le=\"%d\"} %d\n" m hi !cum))
          (Hist.nonzero_buckets h);
        Buffer.add_string buf
          (Printf.sprintf "%s_bucket{le=\"+Inf\"} %d\n" m (Hist.count h));
        Buffer.add_string buf (Printf.sprintf "%s_sum %d\n" m (Hist.sum h));
        Buffer.add_string buf (Printf.sprintf "%s_count %d\n" m (Hist.count h)))
    snap;
  Buffer.contents buf
