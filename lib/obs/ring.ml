(** Fixed-capacity event trace: a ring buffer of structured events.

    The ring keeps the most recent [capacity] events; older events are
    overwritten in arrival order, so a bounded-memory trace of an
    arbitrarily long run always ends at "now". Events carry a monotonic
    timestamp, a duration, a name, a category and a small list of typed
    arguments — the exact shape the Chrome trace-event format wants
    (see {!Export}). *)

type arg = I of int64 | S of string | F of float

type event = {
  ts_ns : int64;  (** monotonic start timestamp *)
  dur_ns : int;
  name : string;
  cat : string;
  args : (string * arg) list;
}

type t = {
  buf : event option array;
  mutable next : int;  (** next write position *)
  mutable total : int;  (** events ever recorded (>= stored) *)
}

let create ~capacity =
  if capacity <= 0 then invalid_arg "Ring.create: capacity must be positive";
  { buf = Array.make capacity None; next = 0; total = 0 }

let capacity t = Array.length t.buf
let total_recorded t = t.total
let length t = min t.total (capacity t)

let record t ~ts_ns ~dur_ns ~name ~cat ~args =
  t.buf.(t.next) <- Some { ts_ns; dur_ns; name; cat; args };
  t.next <- (t.next + 1) mod capacity t;
  t.total <- t.total + 1

(** [event t ...] — record with the timestamp taken now and no duration. *)
let event t ~name ~cat ~args =
  record t ~ts_ns:(Clock.now_ns ()) ~dur_ns:0 ~name ~cat ~args

let clear t =
  Array.fill t.buf 0 (capacity t) None;
  t.next <- 0;
  t.total <- 0

(** Stored events, oldest first. *)
let to_list t =
  let cap = capacity t in
  let n = length t in
  let first = if t.total <= cap then 0 else t.next in
  List.init n (fun i ->
      match t.buf.((first + i) mod cap) with
      | Some e -> e
      | None -> assert false)

let iter f t = List.iter f (to_list t)
