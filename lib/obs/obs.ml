(** Observability context — what a component is handed when the user
    asks for instrumentation.

    The design rule (same as {!Semir.Hooks}): observability is
    {e compiled in} at synthesis/construction time. A component receives
    [Obs.t option]; with [None] it builds exactly the closures it builds
    today — no flag tests, no closure indirection, nothing on the fast
    path — so an unobserved simulator pays zero overhead. With [Some]
    it builds instrumented closures that update registry counters,
    record log2 latency histograms, and (when a ring is attached) append
    structured trace events.

    A context owns:
    - [reg]: the counter/gauge/histogram {!Registry}, namespaced per
      component ("core.*", "synth.*", "specul.*", "checker.*",
      "timing.*", "inject.*");
    - [ring]: an optional fixed-capacity event {!Ring} for trace export
      ({!Export.jsonl_of_events} / {!Export.chrome_of_events}). *)

module Clock = Clock
module Hist = Hist
module Ring = Ring
module Registry = Registry
module Export = Export

type t = { reg : Registry.t; ring : Ring.t option }

let default_ring_capacity = 65_536

(** [create ()] — counters and histograms only. Pass [~trace:true] (or
    an explicit [~ring_capacity]) to also buffer trace events. *)
let create ?(trace = false) ?ring_capacity () =
  let ring =
    match ring_capacity with
    | Some c -> Some (Ring.create ~capacity:c)
    | None -> if trace then Some (Ring.create ~capacity:default_ring_capacity) else None
  in
  { reg = Registry.create (); ring }

let snapshot t = Registry.snapshot t.reg
let events t = match t.ring with None -> [] | Some r -> Ring.to_list r
