(** Observability context — what a component is handed when the user
    asks for instrumentation.

    The design rule (same as {!Semir.Hooks}): observability is
    {e compiled in} at synthesis/construction time. A component receives
    [Obs.t option]; with [None] it builds exactly the closures it builds
    today — no flag tests, no closure indirection, nothing on the fast
    path — so an unobserved simulator pays zero overhead. With [Some]
    it builds instrumented closures that update registry counters,
    record log2 latency histograms, and (when a ring is attached) append
    structured trace events.

    A context owns:
    - [reg]: the counter/gauge/histogram {!Registry}, namespaced per
      component ("core.*", "synth.*", "specul.*", "checker.*",
      "timing.*", "inject.*", "os.*", "super.*");
    - [ring]: an optional fixed-capacity event {!Ring} for trace export
      ({!Export.jsonl_of_events} / {!Export.chrome_of_events});
    - [prof]: an optional hot-region execution {!Prof}iler, attributed
      by the synthesized interfaces at retirement/block boundaries;
    - [full]: whether the heavyweight counter/histogram/ring
      instrumentation is compiled in. {!profile_only} contexts set it
      to [false]: synthesis then builds the {e seed} closures plus only
      the profiler's cached-region attribution — the light hook whose
      overhead the bench profiler section bounds at 2%. *)

module Clock = Clock
module Hist = Hist
module Ring = Ring
module Registry = Registry
module Export = Export
module Prof = Prof
module Metrics = Metrics

type t = {
  reg : Registry.t;
  ring : Ring.t option;
  prof : Prof.t option;
  full : bool;
}

let default_ring_capacity = 65_536

(** [create ()] — counters and histograms only. Pass [~trace:true] (or
    an explicit [~ring_capacity]) to also buffer trace events, and
    [~prof] to additionally attribute execution to the profiler. *)
let create ?(trace = false) ?ring_capacity ?prof () =
  let ring =
    match ring_capacity with
    | Some c -> Some (Ring.create ~capacity:c)
    | None -> if trace then Some (Ring.create ~capacity:default_ring_capacity) else None
  in
  { reg = Registry.create (); ring; prof; full = true }

(** [profile_only ()] — a context that compiles in {e only} hot-region
    attribution: no counters, no histograms, no ring. The synthesized
    closures are the seed closures plus one cached-region
    compare-and-add per retirement (or per block on block interfaces,
    where the chained translation-cache fast path is retained). This is
    what [lisim profile] and the bench profiler-overhead section use. *)
let profile_only ?prof () =
  let prof = match prof with Some p -> p | None -> Prof.create () in
  { reg = Registry.create (); ring = None; prof = Some prof; full = false }

let snapshot t = Registry.snapshot t.reg
let events t = match t.ring with None -> [] | Some r -> Ring.to_list r

(** [merge ~into src] folds a worker context into a parent one — the
    join step after a parallel campaign, where every domain ran against
    its own private context. Counters and histograms combine exactly
    ({!Registry.merge}); profilers combine via {!Prof.merge} when both
    sides carry one; ring events append in [src] order after [into]'s
    (per-worker order is preserved, cross-worker order is the join
    order, which callers make deterministic by joining workers in index
    order). *)
let merge ~into src =
  Registry.merge ~into:into.reg src.reg;
  (match (into.prof, src.prof) with
  | Some p, Some q -> Prof.merge ~into:p q
  | _ -> ());
  match (into.ring, src.ring) with
  | Some r, Some s ->
    List.iter
      (fun (e : Ring.event) ->
        Ring.record r ~ts_ns:e.ts_ns ~dur_ns:e.dur_ns ~name:e.name ~cat:e.cat
          ~args:e.args)
      (Ring.to_list s)
  | _ -> ()

(** Periodic-metrics conveniences: tick/flush the series with this
    context's registry and profiler. *)
let metrics_tick m t = Metrics.tick ?prof:t.prof m t.reg
let metrics_snap m t = Metrics.snap ?prof:t.prof m t.reg
let metrics_close m t = Metrics.close ?prof:t.prof m t.reg