(** Monotonic nanosecond clock for latency attribution.

    Backed by the [clock_gettime(CLOCK_MONOTONIC)] stub that Bechamel
    ships ([@@noalloc], unboxed int64), so a timestamp costs one C call
    and no allocation — cheap enough to wrap individual entrypoint calls
    when an interface is observed. *)

let now_ns : unit -> int64 = Monotonic_clock.now

(** [elapsed_ns t0] — nanoseconds since [t0], clamped to an OCaml int
    (63 bits hold ~292 years of nanoseconds). *)
let elapsed_ns (t0 : int64) : int = Int64.to_int (Int64.sub (now_ns ()) t0)
