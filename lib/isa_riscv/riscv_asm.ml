(** RISC-V encoder and VIR lowering.

    VIR registers route around the emulated-OS ABI block (a0-a2 = x10-x12,
    a7 = x17): v0..v8 -> x1..x9, v9..v15 -> x18..x24, scratch x25. The
    lowering emits compressed parcels (C.LI, C.MV, C.ADDI, C.JR) wherever
    the fixup-free forms fit, so every lowered kernel is a genuine
    mixed-stride instruction stream — the variable-stride block engine
    gets exercised by real programs, not just fuzz inputs. *)

let check_reg name v =
  if v < 0 || v > 31 then
    invalid_arg (Printf.sprintf "riscv asm: %s=%d out of range" name v)

(* ------------------------------------------------------------------ *)
(* RV32I encoders                                                      *)
(* ------------------------------------------------------------------ *)

let rtype ~funct7 ~f3 ~rd ~rs1 ~rs2 =
  check_reg "rd" rd;
  check_reg "rs1" rs1;
  check_reg "rs2" rs2;
  Int64.of_int
    ((funct7 lsl 25) lor (rs2 lsl 20) lor (rs1 lsl 15) lor (f3 lsl 12)
    lor (rd lsl 7) lor 0x33)

let itype ~opc ~f3 ~rd ~rs1 ~imm =
  check_reg "rd" rd;
  check_reg "rs1" rs1;
  if imm < -2048 || imm > 2047 then invalid_arg "riscv asm: imm12 range";
  Int64.of_int
    (((imm land 0xFFF) lsl 20) lor (rs1 lsl 15) lor (f3 lsl 12) lor (rd lsl 7)
    lor opc)

let addi ~rd ~rs1 ~imm = itype ~opc:0x13 ~f3:0 ~rd ~rs1 ~imm
let andi ~rd ~rs1 ~imm = itype ~opc:0x13 ~f3:7 ~rd ~rs1 ~imm

(* slli/srli/srai put the shift amount in imm[4:0] and funct7 above it *)
let shifti ~funct7 ~f3 ~rd ~rs1 ~sh =
  if sh < 0 || sh > 31 then invalid_arg "riscv asm: shamt range";
  itype ~opc:0x13 ~f3 ~rd ~rs1 ~imm:((funct7 lsl 5) lor sh)

let load ~f3 ~rd ~rs1 ~imm = itype ~opc:0x03 ~f3 ~rd ~rs1 ~imm
let jalr ~rd ~rs1 ~imm = itype ~opc:0x67 ~f3:0 ~rd ~rs1 ~imm

let stype ~f3 ~rs1 ~rs2 ~imm =
  check_reg "rs1" rs1;
  check_reg "rs2" rs2;
  if imm < -2048 || imm > 2047 then invalid_arg "riscv asm: imm12 range";
  let i = imm land 0xFFF in
  Int64.of_int
    (((i lsr 5) lsl 25) lor (rs2 lsl 20) lor (rs1 lsl 15) lor (f3 lsl 12)
    lor ((i land 0x1F) lsl 7)
    lor 0x23)

let btype ~f3 ~rs1 ~rs2 ~off =
  if off < -4096 || off > 4094 || off land 1 <> 0 then
    invalid_arg "riscv asm: branch range";
  let i = off land 0x1FFF in
  Int64.of_int
    ((((i lsr 12) land 1) lsl 31)
    lor (((i lsr 5) land 0x3F) lsl 25)
    lor (rs2 lsl 20) lor (rs1 lsl 15) lor (f3 lsl 12)
    lor (((i lsr 1) land 0xF) lsl 8)
    lor (((i lsr 11) land 1) lsl 7)
    lor 0x63)

let lui ~rd ~imm20 =
  check_reg "rd" rd;
  if imm20 < 0 || imm20 > 0xFFFFF then invalid_arg "riscv asm: imm20 range";
  Int64.of_int ((imm20 lsl 12) lor (rd lsl 7) lor 0x37)

let jal ~rd ~off =
  if off < -(1 lsl 20) || off >= 1 lsl 20 || off land 1 <> 0 then
    invalid_arg "riscv asm: jal range";
  let i = off land 0x1FFFFF in
  Int64.of_int
    ((((i lsr 20) land 1) lsl 31)
    lor (((i lsr 1) land 0x3FF) lsl 21)
    lor (((i lsr 11) land 1) lsl 20)
    lor (((i lsr 12) land 0xFF) lsl 12)
    lor (rd lsl 7) lor 0x6F)

let ecall = 0x00000073L

(* ------------------------------------------------------------------ *)
(* RVC encoders (the fixup-free forms the lowering uses)               *)
(* ------------------------------------------------------------------ *)

let c_imm6 base ~rd ~imm =
  if imm < -32 || imm > 31 then invalid_arg "riscv asm: c imm6 range";
  if rd = 0 then invalid_arg "riscv asm: c rd=x0";
  let i = imm land 0x3F in
  Int64.of_int
    (base lor (((i lsr 5) land 1) lsl 12) lor (rd lsl 7) lor ((i land 0x1F) lsl 2))

let c_li ~rd ~imm = c_imm6 0x4001 ~rd ~imm
let c_addi ~rd ~imm = c_imm6 0x0001 ~rd ~imm

let c_mv ~rd ~rs2 =
  (* rs2=0 rows are C.JR's encoding — refuse rather than silently jump *)
  if rd = 0 || rs2 = 0 then invalid_arg "riscv asm: c.mv x0 operand";
  Int64.of_int (0x8002 lor (rd lsl 7) lor (rs2 lsl 2))

let c_jr ~rs1 =
  if rs1 = 0 then invalid_arg "riscv asm: c.jr rs1=x0";
  Int64.of_int (0x8002 lor (rs1 lsl 7))

(* C.LW/C.SW address the x8..x15 window: [rdp]/[rs1p]/[rs2p] are 0..7. *)
let c_mem base ~rp ~rs1p ~uimm =
  if rp < 0 || rp > 7 || rs1p < 0 || rs1p > 7 then
    invalid_arg "riscv asm: c reg' range";
  if uimm land 3 <> 0 || uimm < 0 || uimm > 124 then
    invalid_arg "riscv asm: c.lw uimm range";
  Int64.of_int
    (base
    lor (((uimm lsr 3) land 7) lsl 10)
    lor (rs1p lsl 7)
    lor (((uimm lsr 2) land 1) lsl 6)
    lor (((uimm lsr 6) land 1) lsl 5)
    lor (rp lsl 2))

let c_lw ~rdp ~rs1p ~uimm = c_mem 0x4000 ~rp:rdp ~rs1p ~uimm
let c_sw ~rs2p ~rs1p ~uimm = c_mem 0xC000 ~rp:rs2p ~rs1p ~uimm

let c_j ~off =
  if off < -2048 || off > 2046 || off land 1 <> 0 then
    invalid_arg "riscv asm: c.j range";
  let f b = (off lsr b) land 1 in
  Int64.of_int
    (0xA001
    lor (f 11 lsl 12)
    lor (f 4 lsl 11)
    lor (((off lsr 8) land 3) lsl 9)
    lor (f 10 lsl 8) lor (f 6 lsl 7) lor (f 7 lsl 6)
    lor (((off lsr 1) land 7) lsl 3)
    lor (f 5 lsl 2))

(* ------------------------------------------------------------------ *)
(* VIR lowering                                                        *)
(* ------------------------------------------------------------------ *)

module Target : Vir.Lower.TARGET = struct
  let name = "riscv"

  let r v = if v <= 8 then v + 1 else v + 9
  let t0 = 25
  let zero = 0

  let w x : Vir.Lower.item = Word x
  let h x : Vir.Lower.item = Half x

  (* %lo/%hi split: lui loads hi20 << 12, addi adds the sign-extended
     low 12 bits; the +0x800 bias makes the carry come out right. *)
  let lo12 v =
    let x = v land 0xFFF in
    if x >= 0x800 then x - 0x1000 else x

  let hi20 v = ((v + 0x800) lsr 12) land 0xFFFFF

  let li32 ~rd (v : int32) =
    let sv = Int32.to_int v in
    if sv >= -32 && sv <= 31 then [ h (c_li ~rd ~imm:sv) ]
    else if sv >= -2048 && sv <= 2047 then [ w (addi ~rd ~rs1:zero ~imm:sv) ]
    else
      let u = sv land 0xFFFFFFFF in
      [ w (lui ~rd ~imm20:(hi20 u)); w (addi ~rd ~rs1:rd ~imm:(lo12 u)) ]

  let addi_seq ~rd ~rs imm =
    if rd = rs && imm <> 0 && imm >= -32 && imm <= 31 then
      [ h (c_addi ~rd ~imm) ]
    else if imm >= -2048 && imm <= 2047 then [ w (addi ~rd ~rs1:rs ~imm) ]
    else
      li32 ~rd:t0 (Int32.of_int imm)
      @ [ w (rtype ~funct7:0 ~f3:0 ~rd ~rs1:rs ~rs2:t0) ]

  (* loads/stores with offsets outside imm12 go through the scratch *)
  let mem ~emit ~base imm =
    if imm >= -2048 && imm <= 2047 then [ w (emit ~rs1:base ~imm) ]
    else
      li32 ~rd:t0 (Int32.of_int imm)
      @ [ w (rtype ~funct7:0 ~f3:0 ~rd:t0 ~rs1:base ~rs2:t0);
          w (emit ~rs1:t0 ~imm:0) ]

  let bcond f3 ~rs1 ~rs2 label : Vir.Lower.item =
    Fix
      ( (fun ~self_pc ~target_pc ->
          btype ~f3 ~rs1 ~rs2 ~off:(Int64.to_int (Int64.sub target_pc self_pc))),
        label )

  let lower_instr (i : Vir.Lang.instr) : Vir.Lower.item list =
    match i with
    | Label l -> [ Mark l ]
    | Li (d, v) -> li32 ~rd:(r d) v
    | Mv (d, s) -> [ h (c_mv ~rd:(r d) ~rs2:(r s)) ]
    | Add (d, a, b) -> [ w (rtype ~funct7:0 ~f3:0 ~rd:(r d) ~rs1:(r a) ~rs2:(r b)) ]
    | Sub (d, a, b) ->
      [ w (rtype ~funct7:0x20 ~f3:0 ~rd:(r d) ~rs1:(r a) ~rs2:(r b)) ]
    | Mul (d, a, b) -> [ w (rtype ~funct7:1 ~f3:0 ~rd:(r d) ~rs1:(r a) ~rs2:(r b)) ]
    | And_ (d, a, b) -> [ w (rtype ~funct7:0 ~f3:7 ~rd:(r d) ~rs1:(r a) ~rs2:(r b)) ]
    | Or_ (d, a, b) -> [ w (rtype ~funct7:0 ~f3:6 ~rd:(r d) ~rs1:(r a) ~rs2:(r b)) ]
    | Xor_ (d, a, b) -> [ w (rtype ~funct7:0 ~f3:4 ~rd:(r d) ~rs1:(r a) ~rs2:(r b)) ]
    | Addi (d, a, imm) -> addi_seq ~rd:(r d) ~rs:(r a) imm
    | Andi (d, a, imm) -> [ w (andi ~rd:(r d) ~rs1:(r a) ~imm) ]
    | Shli (d, a, sh) -> [ w (shifti ~funct7:0 ~f3:1 ~rd:(r d) ~rs1:(r a) ~sh) ]
    | Shri (d, a, sh) -> [ w (shifti ~funct7:0 ~f3:5 ~rd:(r d) ~rs1:(r a) ~sh) ]
    | Sari (d, a, sh) -> [ w (shifti ~funct7:0x20 ~f3:5 ~rd:(r d) ~rs1:(r a) ~sh) ]
    | Ldw (d, a, imm) -> mem ~emit:(fun ~rs1 ~imm -> load ~f3:2 ~rd:(r d) ~rs1 ~imm) ~base:(r a) imm
    | Stw (s, a, imm) -> mem ~emit:(fun ~rs1 ~imm -> stype ~f3:2 ~rs1 ~rs2:(r s) ~imm) ~base:(r a) imm
    | Ldb (d, a, imm) -> mem ~emit:(fun ~rs1 ~imm -> load ~f3:4 ~rd:(r d) ~rs1 ~imm) ~base:(r a) imm
    | Stb (s, a, imm) -> mem ~emit:(fun ~rs1 ~imm -> stype ~f3:0 ~rs1 ~rs2:(r s) ~imm) ~base:(r a) imm
    | Bcond (c, a, b, l) ->
      let f3 =
        match c with
        | Vir.Lang.Eq -> 0
        | Ne -> 1
        | Lt -> 4
        | Ge -> 5
        | Ltu -> 6
        | Geu -> 7
      in
      [ bcond f3 ~rs1:(r a) ~rs2:(r b) l ]
    | Jmp l ->
      [
        Fix
          ( (fun ~self_pc ~target_pc ->
              jal ~rd:zero ~off:(Int64.to_int (Int64.sub target_pc self_pc))),
            l );
      ]
    | Jr s -> [ h (c_jr ~rs1:(r s)) ]
    | La (d, l) ->
      let rd = r d in
      [
        Fix
          ( (fun ~self_pc:_ ~target_pc ->
              lui ~rd ~imm20:(hi20 (Int64.to_int target_pc land 0xFFFFFFFF))),
            l );
        Fix
          ( (fun ~self_pc:_ ~target_pc ->
              addi ~rd ~rs1:rd ~imm:(lo12 (Int64.to_int target_pc))),
            l );
      ]
    | Sys ->
      [
        h (c_mv ~rd:17 ~rs2:(r 0));
        h (c_mv ~rd:10 ~rs2:(r 1));
        h (c_mv ~rd:11 ~rs2:(r 2));
        h (c_mv ~rd:12 ~rs2:(r 3));
        w ecall;
        h (c_mv ~rd:(r 0) ~rs2:10);
      ]

  let lower (p : Vir.Lang.program) = List.concat_map lower_instr p
end

(** [encode ~base p] lowers a VIR program to RISC-V words (RVC-mixed). *)
let encode ~base p = Vir.Lower.encode (module Target) ~base p
