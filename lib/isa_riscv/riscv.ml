(** RISC-V RV32I (user-mode integer subset) + RVC subset LIS description.

    32-bit, little-endian, and — unlike the three ISAs the toolchain
    grew up with — written against a frozen external manual, *after*
    the toolchain existed. EXPERIMENTS.md keeps the porting log: every
    toolchain change this spec forced is recorded there as either a
    spec bug or a tool gap, which is the repo's reproduction of the
    paper's "minutes, not days" claim on an unseen ISA.

    The RVC subset (C.ADDI, C.LI, C.LW, C.SW, C.J, C.JR, C.MV) makes
    this the first *real* mixed-stride ISA in the tree: [instrsize 4]
    is the fetch window, compressed instructions carry [size 2], and
    the decode key lives in the low 7 bits — within the 16-bit minimum
    parcel, as the toolchain now requires.

    Deviations (user-mode subset): no FENCE/EBREAK/CSR instructions;
    no misaligned-access faults (RVC makes IALIGN=16 and the memory
    system handles unaligned data); ECALL is the only trap, routed to
    the emulated OS by the OS-support file. *)

let isa_text =
  {|
// ===================================================================
// RISC-V RV32I user-mode integer instruction set (+ RVC subset)
// ===================================================================
isa "riscv" {
  endian little;
  wordsize 32;
  instrsize 4;
  decodekey 0 7;
}

// x0 is hardwired zero.
regclass X 32 width 32 zero 0;

field effective_addr : u64 decode;
field branch_target : u64 decode;
field branch_taken : u64 decode;
field alu_out : u64;

sequence fetch, decode, read_operands, address, evaluate, memory, writeback, exception;

// ---------------- operand shapes ------------------------------------
class rtype {
  operand rd  : X[bits(7,5)] write;
  operand rs1 : X[bits(15,5)] read;
  operand rs2 : X[bits(20,5)] read;
}

class itype {
  operand rd  : X[bits(7,5)] write;
  operand rs1 : X[bits(15,5)] read;
}

class utype {
  operand rd : X[bits(7,5)] write;
}

// I-type loads: effective address = rs1 + sext(imm12)
class ldaddr {
  action address { effective_addr = (rs1 + sbits(20,12)) & 0xFFFFFFFF; }
}

// S-type stores: imm split across [31:25] and [11:7]
class stype {
  operand rs1 : X[bits(15,5)] read;
  operand rs2 : X[bits(20,5)] read;
  action address {
    effective_addr = (rs1 + ((sbits(25,7) << 5) | bits(7,5))) & 0xFFFFFFFF;
  }
}

// B-type branches: imm[12|10:5] at [31:25], imm[4:1|11] at [11:7]
class btype {
  operand rs1 : X[bits(15,5)] read;
  operand rs2 : X[bits(20,5)] read;
  action address {
    branch_target = (pc + ((sbits(31,1) << 12) | (bits(7,1) << 11)
                         | (bits(25,6) << 5) | (bits(8,4) << 1))) & 0xFFFFFFFF;
  }
}

// ---------------- ALU, register-register (opcode 0110011) -----------
instr ADD : rtype match 0x00000033 mask 0xFE00707F {
  action evaluate { alu_out = (rs1 + rs2) & 0xFFFFFFFF; rd = alu_out; }
}
instr SUB : rtype match 0x40000033 mask 0xFE00707F {
  action evaluate { alu_out = (rs1 - rs2) & 0xFFFFFFFF; rd = alu_out; }
}
instr SLL : rtype match 0x00001033 mask 0xFE00707F {
  action evaluate { alu_out = (rs1 << (rs2 & 31)) & 0xFFFFFFFF; rd = alu_out; }
}
instr SLT : rtype match 0x00002033 mask 0xFE00707F {
  action evaluate { alu_out = sext(rs1,32) < sext(rs2,32); rd = alu_out; }
}
instr SLTU : rtype match 0x00003033 mask 0xFE00707F {
  action evaluate { alu_out = ltu(rs1, rs2); rd = alu_out; }
}
instr XOR : rtype match 0x00004033 mask 0xFE00707F {
  action evaluate { alu_out = rs1 ^ rs2; rd = alu_out; }
}
instr SRL : rtype match 0x00005033 mask 0xFE00707F {
  action evaluate { alu_out = rs1 >> (rs2 & 31); rd = alu_out; }
}
instr SRA : rtype match 0x40005033 mask 0xFE00707F {
  action evaluate { alu_out = asr(sext(rs1,32), rs2 & 31) & 0xFFFFFFFF; rd = alu_out; }
}
// MUL (M extension, funct7 0000001): the only M instruction carried;
// VIR kernels need a hardware multiply on every target.
instr MUL : rtype match 0x02000033 mask 0xFE00707F {
  action evaluate { alu_out = (rs1 * rs2) & 0xFFFFFFFF; rd = alu_out; }
}
instr OR : rtype match 0x00006033 mask 0xFE00707F {
  action evaluate { alu_out = rs1 | rs2; rd = alu_out; }
}
instr AND : rtype match 0x00007033 mask 0xFE00707F {
  action evaluate { alu_out = rs1 & rs2; rd = alu_out; }
}

// ---------------- ALU, immediate (opcode 0010011) --------------------
instr ADDI : itype match 0x00000013 mask 0x0000707F {
  action evaluate { alu_out = (rs1 + sbits(20,12)) & 0xFFFFFFFF; rd = alu_out; }
}
instr SLTI : itype match 0x00002013 mask 0x0000707F {
  action evaluate { alu_out = sext(rs1,32) < sbits(20,12); rd = alu_out; }
}
instr SLTIU : itype match 0x00003013 mask 0x0000707F {
  action evaluate { alu_out = ltu(rs1, sbits(20,12) & 0xFFFFFFFF); rd = alu_out; }
}
instr XORI : itype match 0x00004013 mask 0x0000707F {
  action evaluate { alu_out = (rs1 ^ sbits(20,12)) & 0xFFFFFFFF; rd = alu_out; }
}
instr ORI : itype match 0x00006013 mask 0x0000707F {
  action evaluate { alu_out = (rs1 | sbits(20,12)) & 0xFFFFFFFF; rd = alu_out; }
}
instr ANDI : itype match 0x00007013 mask 0x0000707F {
  action evaluate { alu_out = (rs1 & sbits(20,12)) & 0xFFFFFFFF; rd = alu_out; }
}
instr SLLI : itype match 0x00001013 mask 0xFE00707F {
  action evaluate { alu_out = (rs1 << bits(20,5)) & 0xFFFFFFFF; rd = alu_out; }
}
instr SRLI : itype match 0x00005013 mask 0xFE00707F {
  action evaluate { alu_out = rs1 >> bits(20,5); rd = alu_out; }
}
instr SRAI : itype match 0x40005013 mask 0xFE00707F {
  action evaluate { alu_out = asr(sext(rs1,32), bits(20,5)) & 0xFFFFFFFF; rd = alu_out; }
}

// ---------------- upper immediates -----------------------------------
instr LUI : utype match 0x00000037 mask 0x0000007F {
  action evaluate { alu_out = bits(12,20) << 12; rd = alu_out; }
}
instr AUIPC : utype match 0x00000017 mask 0x0000007F {
  action evaluate { alu_out = (pc + (bits(12,20) << 12)) & 0xFFFFFFFF; rd = alu_out; }
}

// ---------------- loads (opcode 0000011) ------------------------------
instr LB : itype, ldaddr match 0x00000003 mask 0x0000707F {
  action memory { rd = zext(load.s8(effective_addr), 32); }
}
instr LH : itype, ldaddr match 0x00001003 mask 0x0000707F {
  action memory { rd = zext(load.s16(effective_addr), 32); }
}
instr LW : itype, ldaddr match 0x00002003 mask 0x0000707F {
  action memory { rd = load.u32(effective_addr); }
}
instr LBU : itype, ldaddr match 0x00004003 mask 0x0000707F {
  action memory { rd = load.u8(effective_addr); }
}
instr LHU : itype, ldaddr match 0x00005003 mask 0x0000707F {
  action memory { rd = load.u16(effective_addr); }
}

// ---------------- stores (opcode 0100011) -----------------------------
instr SB : stype match 0x00000023 mask 0x0000707F {
  action memory { store.u8(effective_addr, rs2); }
}
instr SH : stype match 0x00001023 mask 0x0000707F {
  action memory { store.u16(effective_addr, rs2); }
}
instr SW : stype match 0x00002023 mask 0x0000707F {
  action memory { store.u32(effective_addr, rs2); }
}

// ---------------- conditional branches (opcode 1100011) --------------
instr BEQ : btype match 0x00000063 mask 0x0000707F {
  action evaluate { branch_taken = rs1 == rs2; if (branch_taken) { next_pc = branch_target; } }
}
instr BNE : btype match 0x00001063 mask 0x0000707F {
  action evaluate { branch_taken = rs1 != rs2; if (branch_taken) { next_pc = branch_target; } }
}
instr BLT : btype match 0x00004063 mask 0x0000707F {
  action evaluate { branch_taken = sext(rs1,32) < sext(rs2,32); if (branch_taken) { next_pc = branch_target; } }
}
instr BGE : btype match 0x00005063 mask 0x0000707F {
  action evaluate { branch_taken = !(sext(rs1,32) < sext(rs2,32)); if (branch_taken) { next_pc = branch_target; } }
}
instr BLTU : btype match 0x00006063 mask 0x0000707F {
  action evaluate { branch_taken = ltu(rs1, rs2); if (branch_taken) { next_pc = branch_target; } }
}
instr BGEU : btype match 0x00007063 mask 0x0000707F {
  action evaluate { branch_taken = geu(rs1, rs2); if (branch_taken) { next_pc = branch_target; } }
}

// ---------------- jumps -----------------------------------------------
// J-type: imm[20|10:1|11|19:12] at [31:12]
instr JAL : utype match 0x0000006F mask 0x0000007F {
  action address {
    branch_target = (pc + ((sbits(31,1) << 20) | (bits(12,8) << 12)
                         | (bits(20,1) << 11) | (bits(21,10) << 1))) & 0xFFFFFFFF;
  }
  action evaluate { rd = (pc + 4) & 0xFFFFFFFF; branch_taken = 1; next_pc = branch_target; }
}
// JALR clears the target's LSB (the manual's %lo-carry idiom support).
instr JALR : itype match 0x00000067 mask 0x0000707F {
  action address { branch_target = (rs1 + sbits(20,12)) & 0xFFFFFFFE; }
  action evaluate { rd = (pc + 4) & 0xFFFFFFFF; branch_taken = 1; next_pc = branch_target; }
}

// ---------------- environment call ------------------------------------
instr ECALL match 0x00000073 mask 0xFFFFFFFF {
  action exception { fault illegal; }
}
|}

(* The RVC subset, as its own source chunk: compressed parcels carry
   [size 2], their decode key (low 7 bits) never collides with the
   32-bit encodings because bits [1:0] != 11 on every RVC quadrant.
   C.JR is declared before C.MV — the specialization-before-general
   idiom the decoder lint documents (C.JR is C.MV's rs2=0 row). *)
let rvc_text =
  {|
// ===================================================================
// RVC subset: mixed 2/4-byte strides inside a real ISA
// ===================================================================

// C.ADDI: quadrant 01, funct3 000; rd = rd + sext(imm6). rd=x0 is C.NOP.
instr C_ADDI size 2 match 0x0001 mask 0xE003 {
  operand rd : X[bits(7,5)] read write;
  action evaluate { alu_out = (rd + ((sbits(12,1) << 5) | bits(2,5))) & 0xFFFFFFFF; rd = alu_out; }
}

// C.LI: quadrant 01, funct3 010; rd = sext(imm6).
instr C_LI size 2 match 0x4001 mask 0xE003 {
  operand rd : X[bits(7,5)] write;
  action evaluate { alu_out = ((sbits(12,1) << 5) | bits(2,5)) & 0xFFFFFFFF; rd = alu_out; }
}

// C.LW: quadrant 00, funct3 010; rd' = mem[rs1' + uimm7], x8-x15 window.
instr C_LW size 2 match 0x4000 mask 0xE003 {
  action address {
    effective_addr = (reg.X[bits(7,3) + 8]
                      + ((bits(10,3) << 3) | (bits(6,1) << 2) | (bits(5,1) << 6))) & 0xFFFFFFFF;
  }
  action memory { reg.X[bits(2,3) + 8] = load.u32(effective_addr); }
}

// C.SW: quadrant 00, funct3 110; mem[rs1' + uimm7] = rs2'.
instr C_SW size 2 match 0xC000 mask 0xE003 {
  action address {
    effective_addr = (reg.X[bits(7,3) + 8]
                      + ((bits(10,3) << 3) | (bits(6,1) << 2) | (bits(5,1) << 6))) & 0xFFFFFFFF;
  }
  action memory { store.u32(effective_addr, reg.X[bits(2,3) + 8]); }
}

// C.J: quadrant 01, funct3 101; pc-relative, offset[11|4|9:8|10|6|7|3:1|5].
instr C_J size 2 match 0xA001 mask 0xE003 {
  action address {
    branch_target = (pc + ((sbits(12,1) << 11) | (bits(11,1) << 4)
                         | (bits(9,2) << 8) | (bits(8,1) << 10)
                         | (bits(7,1) << 6) | (bits(6,1) << 7)
                         | (bits(3,3) << 1) | (bits(2,1) << 5))) & 0xFFFFFFFF;
  }
  action evaluate { branch_taken = 1; next_pc = branch_target; }
}

// C.JR: quadrant 10, funct4 1000, rs2 field zero — the specialization
// of C.MV's encoding row, so it must be declared first.
instr C_JR size 2 match 0x8002 mask 0xF07F {
  operand rs1 : X[bits(7,5)] read;
  action evaluate { branch_taken = 1; next_pc = rs1 & 0xFFFFFFFE; }
}

// C.MV: quadrant 10, funct4 1000; rd = rs2 (rs2=0 rows decode as C.JR).
instr C_MV size 2 match 0x8002 mask 0xF003 {
  operand rd  : X[bits(7,5)] write;
  operand rs2 : X[bits(2,5)] read;
  action evaluate { alu_out = rs2; rd = alu_out; }
}
|}

let os_text =
  {|
// OS emulation for RISC-V: the RV32 Linux convention — syscall number
// in a7 (x17), arguments in a0-a2 (x10-x12), result in a0 (x10).
abi {
  nr = X[17];
  arg0 = X[10];
  arg1 = X[11];
  arg2 = X[12];
  ret = X[10];
}

override ECALL action exception { syscall; }
|}

let full_isa_text = isa_text ^ "\n" ^ rvc_text

let buildsets_text = Specsim.Detail.canonical_buildset_file ()

let sources : Lis.Ast.source list =
  [
    {
      src_role = Lis.Ast.Isa_description;
      src_name = "riscv.lis";
      src_text = full_isa_text;
    };
    { src_role = Lis.Ast.Os_support; src_name = "riscv_os.lis"; src_text = os_text };
    {
      src_role = Lis.Ast.Buildset_file;
      src_name = "riscv_buildsets.lis";
      src_text = buildsets_text;
    };
  ]

let spec = lazy (Lis.Sema.load sources)
