(** Alpha encoder and VIR lowering.

    Canonical form: every VIR register is held sign-extended from 32 bits,
    so signed compares work directly and unsigned 32-bit compares coincide
    with 64-bit unsigned compares on the canonical values. Every lowered
    operation re-establishes the canonical form (see lib/vir's word model). *)

let check_reg name v lo hi =
  if v < lo || v > hi then
    invalid_arg (Printf.sprintf "alpha asm: %s=%d out of range" name v)

(* ------------------------------------------------------------------ *)
(* Instruction encoders                                                *)
(* ------------------------------------------------------------------ *)

let mem op ~ra ~rb ~disp =
  check_reg "ra" ra 0 31;
  check_reg "rb" rb 0 31;
  if disp < -32768 || disp > 32767 then invalid_arg "alpha asm: disp16 range";
  Int64.of_int
    ((op lsl 26) lor (ra lsl 21) lor (rb lsl 16) lor (disp land 0xFFFF))

let opr op func ~ra ~rb ~rc =
  check_reg "ra" ra 0 31;
  check_reg "rb" rb 0 31;
  check_reg "rc" rc 0 31;
  Int64.of_int
    ((op lsl 26) lor (ra lsl 21) lor (rb lsl 16) lor (func lsl 5) lor rc)

let opl op func ~ra ~lit ~rc =
  check_reg "ra" ra 0 31;
  check_reg "rc" rc 0 31;
  if lit < 0 || lit > 255 then invalid_arg "alpha asm: literal range";
  Int64.of_int
    ((op lsl 26) lor (ra lsl 21) lor (lit lsl 13) lor 0x1000 lor (func lsl 5)
   lor rc)

let branch_disp ~self_pc ~target_pc =
  let d = Int64.to_int (Int64.sub target_pc (Int64.add self_pc 4L)) asr 2 in
  if d < -(1 lsl 20) || d >= 1 lsl 20 then invalid_arg "alpha asm: branch range";
  d land 0x1FFFFF

let br_raw op ~ra ~disp21 =
  Int64.of_int ((op lsl 26) lor (ra lsl 21) lor (disp21 land 0x1FFFFF))

(* Named encoders for the subset used by tests and the lowering. *)
let lda ~ra ~rb ~disp = mem 0x08 ~ra ~rb ~disp
let ldah ~ra ~rb ~disp = mem 0x09 ~ra ~rb ~disp
let ldbu ~ra ~rb ~disp = mem 0x0A ~ra ~rb ~disp
let ldwu ~ra ~rb ~disp = mem 0x0C ~ra ~rb ~disp
let ldl ~ra ~rb ~disp = mem 0x28 ~ra ~rb ~disp
let ldq ~ra ~rb ~disp = mem 0x29 ~ra ~rb ~disp
let stb ~ra ~rb ~disp = mem 0x0E ~ra ~rb ~disp
let stw ~ra ~rb ~disp = mem 0x0D ~ra ~rb ~disp
let stl ~ra ~rb ~disp = mem 0x2C ~ra ~rb ~disp
let stq ~ra ~rb ~disp = mem 0x2D ~ra ~rb ~disp
let addl ~ra ~rb ~rc = opr 0x10 0x00 ~ra ~rb ~rc
let addl_lit ~ra ~lit ~rc = opl 0x10 0x00 ~ra ~lit ~rc
let subl ~ra ~rb ~rc = opr 0x10 0x09 ~ra ~rb ~rc
let subl_lit ~ra ~lit ~rc = opl 0x10 0x09 ~ra ~lit ~rc
let addq ~ra ~rb ~rc = opr 0x10 0x20 ~ra ~rb ~rc
let addq_lit ~ra ~lit ~rc = opl 0x10 0x20 ~ra ~lit ~rc
let subq ~ra ~rb ~rc = opr 0x10 0x29 ~ra ~rb ~rc
let cmpeq ~ra ~rb ~rc = opr 0x10 0x2D ~ra ~rb ~rc
let cmplt ~ra ~rb ~rc = opr 0x10 0x4D ~ra ~rb ~rc
let cmple ~ra ~rb ~rc = opr 0x10 0x6D ~ra ~rb ~rc
let cmpult ~ra ~rb ~rc = opr 0x10 0x1D ~ra ~rb ~rc
let cmpule ~ra ~rb ~rc = opr 0x10 0x3D ~ra ~rb ~rc
let and_ ~ra ~rb ~rc = opr 0x11 0x00 ~ra ~rb ~rc
let and_lit ~ra ~lit ~rc = opl 0x11 0x00 ~ra ~lit ~rc
let bis ~ra ~rb ~rc = opr 0x11 0x20 ~ra ~rb ~rc
let xor ~ra ~rb ~rc = opr 0x11 0x40 ~ra ~rb ~rc
let cmoveq ~ra ~rb ~rc = opr 0x11 0x24 ~ra ~rb ~rc
let sll_lit ~ra ~lit ~rc = opl 0x12 0x39 ~ra ~lit ~rc
let srl_lit ~ra ~lit ~rc = opl 0x12 0x34 ~ra ~lit ~rc
let sra_lit ~ra ~lit ~rc = opl 0x12 0x3C ~ra ~lit ~rc
let zapnot_lit ~ra ~lit ~rc = opl 0x12 0x31 ~ra ~lit ~rc
let mull ~ra ~rb ~rc = opr 0x13 0x00 ~ra ~rb ~rc
let mulq ~ra ~rb ~rc = opr 0x13 0x20 ~ra ~rb ~rc
let umulh ~ra ~rb ~rc = opr 0x13 0x30 ~ra ~rb ~rc
let jmp ~ra ~rb = Int64.of_int ((0x1A lsl 26) lor (ra lsl 21) lor (rb lsl 16))
let call_pal func = Int64.of_int (func land 0x3FFFFFF)
let callsys = call_pal 0x83

let mov ~src ~dst = bis ~ra:src ~rb:src ~rc:dst

(* ------------------------------------------------------------------ *)
(* VIR lowering                                                        *)
(* ------------------------------------------------------------------ *)

module Target : Vir.Lower.TARGET = struct
  let name = "alpha"

  (* v0..v15 -> R0..R15; scratch R27, R28; zero R31. *)
  let r v = v
  let t0 = 27
  let zero = 31

  let w x : Vir.Lower.item = Word x

  (* Canonicalize rd to sext32. *)
  let canon rd = w (addl ~ra:rd ~rb:zero ~rc:rd)

  let li32 ~rd (v : int32) =
    let v64 = Int64.of_int32 v in
    let lo = Int64.to_int (Semir.Value.sext (Int64.logand v64 0xFFFFL) 16) in
    let hi =
      Int64.to_int
        (Int64.logand
           (Int64.shift_right (Int64.sub v64 (Int64.of_int lo)) 16)
           0xFFFFL)
    in
    let hi = if hi >= 32768 then hi - 65536 else hi in
    [ w (lda ~ra:rd ~rb:zero ~disp:lo); w (ldah ~ra:rd ~rb:rd ~disp:hi); canon rd ]

  let addi ~rd ~rs imm =
    if imm >= 0 && imm <= 255 then [ w (addl_lit ~ra:rs ~lit:imm ~rc:rd) ]
    else [ w (lda ~ra:rd ~rb:rs ~disp:imm); canon rd ]

  let branch op ~ra label : Vir.Lower.item =
    Fix
      ((fun ~self_pc ~target_pc -> br_raw op ~ra ~disp21:(branch_disp ~self_pc ~target_pc)),
       label)

  let lower_instr (i : Vir.Lang.instr) : Vir.Lower.item list =
    match i with
    | Label l -> [ Mark l ]
    | Li (d, v) -> li32 ~rd:(r d) v
    | Mv (d, s) -> [ w (mov ~src:(r s) ~dst:(r d)) ]
    | Add (d, a, b) -> [ w (addl ~ra:(r a) ~rb:(r b) ~rc:(r d)) ]
    | Sub (d, a, b) -> [ w (subl ~ra:(r a) ~rb:(r b) ~rc:(r d)) ]
    | Mul (d, a, b) -> [ w (mull ~ra:(r a) ~rb:(r b) ~rc:(r d)) ]
    | And_ (d, a, b) -> [ w (and_ ~ra:(r a) ~rb:(r b) ~rc:(r d)) ]
    | Or_ (d, a, b) -> [ w (bis ~ra:(r a) ~rb:(r b) ~rc:(r d)) ]
    | Xor_ (d, a, b) -> [ w (xor ~ra:(r a) ~rb:(r b) ~rc:(r d)) ]
    | Addi (d, a, imm) -> addi ~rd:(r d) ~rs:(r a) imm
    | Andi (d, a, imm) -> [ w (and_lit ~ra:(r a) ~lit:imm ~rc:(r d)) ]
    | Shli (d, a, sh) ->
      [ w (sll_lit ~ra:(r a) ~lit:sh ~rc:(r d)); canon (r d) ]
    | Shri (d, a, sh) ->
      [
        w (zapnot_lit ~ra:(r a) ~lit:0x0F ~rc:(r d));
        w (srl_lit ~ra:(r d) ~lit:sh ~rc:(r d));
        canon (r d);
      ]
    | Sari (d, a, sh) -> [ w (sra_lit ~ra:(r a) ~lit:sh ~rc:(r d)) ]
    | Ldw (d, a, imm) -> [ w (ldl ~ra:(r d) ~rb:(r a) ~disp:imm) ]
    | Stw (s, a, imm) -> [ w (stl ~ra:(r s) ~rb:(r a) ~disp:imm) ]
    | Ldb (d, a, imm) -> [ w (ldbu ~ra:(r d) ~rb:(r a) ~disp:imm) ]
    | Stb (s, a, imm) -> [ w (stb ~ra:(r s) ~rb:(r a) ~disp:imm) ]
    | Bcond (c, a, b, l) ->
      let cmp, bop =
        match c with
        | Vir.Lang.Eq -> (cmpeq ~ra:(r a) ~rb:(r b) ~rc:t0, 0x3D (* BNE *))
        | Ne -> (cmpeq ~ra:(r a) ~rb:(r b) ~rc:t0, 0x39 (* BEQ *))
        | Lt -> (cmplt ~ra:(r a) ~rb:(r b) ~rc:t0, 0x3D)
        | Ge -> (cmplt ~ra:(r a) ~rb:(r b) ~rc:t0, 0x39)
        | Ltu -> (cmpult ~ra:(r a) ~rb:(r b) ~rc:t0, 0x3D)
        | Geu -> (cmpult ~ra:(r a) ~rb:(r b) ~rc:t0, 0x39)
      in
      [ w cmp; branch bop ~ra:t0 l ]
    | Jmp l -> [ branch 0x30 ~ra:zero l ]
    | Jr s -> [ w (jmp ~ra:zero ~rb:(r s)) ]
    | La (d, l) ->
      (* same lo/hi split as li32, but against the label's address *)
      let rd = r d in
      let split t =
        let lo = Int64.to_int (Semir.Value.sext (Int64.logand t 0xFFFFL) 16) in
        let hi =
          Int64.to_int
            (Int64.logand
               (Int64.shift_right (Int64.sub t (Int64.of_int lo)) 16)
               0xFFFFL)
        in
        (lo, if hi >= 32768 then hi - 65536 else hi)
      in
      [
        Fix
          ( (fun ~self_pc:_ ~target_pc ->
              lda ~ra:rd ~rb:zero ~disp:(fst (split target_pc))),
            l );
        Fix
          ( (fun ~self_pc:_ ~target_pc ->
              ldah ~ra:rd ~rb:rd ~disp:(snd (split target_pc))),
            l );
        canon rd;
      ]
    | Sys ->
      [
        w (mov ~src:1 ~dst:16);
        w (mov ~src:2 ~dst:17);
        w (mov ~src:3 ~dst:18);
        w callsys;
      ]

  let lower (p : Vir.Lang.program) = List.concat_map lower_instr p
end

(** [encode ~base p] lowers a VIR program to Alpha machine words. *)
let encode ~base p = Vir.Lower.encode (module Target) ~base p
