(** Alpha (user-mode integer subset) LIS description.

    64-bit, little-endian, primary opcode in bits 26..31. Operate-format
    instructions come in register and literal flavours (bit 12), described
    as separate instructions — the literal flavour folds the 8-bit literal
    straight out of the encoding, which is exactly what the paper's
    specialized simulators exploit. R31 is the hardwired zero.

    The OS-support file overrides CALL_PAL to route [callsys] (function
    0x83) into the emulated OS, following the paper's description file
    layout (ISA description / OS support / buildsets). *)

let isa_text =
  {|
// ===================================================================
// Alpha user-mode integer instruction set
// ===================================================================
isa "alpha" {
  endian little;
  wordsize 64;
  instrsize 4;
  decodekey 26 6;
}

regclass GPR 32 width 64 zero 31;

// Intermediate values (informational detail at the All level; the ones
// marked 'decode' are also part of the Decode level).
field effective_addr : u64 decode;
field branch_target : u64 decode;
field branch_taken : u64 decode;
field opb : u64;
field alu_out : u64;
field byte_mask : u64;

sequence fetch, decode, read_operands, address, evaluate, memory, writeback, exception;

// ---------------- instruction classes ------------------------------
// Operate format, register flavour: opb is the rb register value.
class op_rr {
  operand ra : GPR[bits(21,5)] read;
  operand rb : GPR[bits(16,5)] read;
  operand rc : GPR[bits(0,5)] write;
  action address { opb = rb; }
}

// Operate format, literal flavour: opb is the zero-extended 8-bit literal.
class op_lit {
  operand ra : GPR[bits(21,5)] read;
  operand rc : GPR[bits(0,5)] write;
  action address { opb = bits(13,8); }
}

// Conditional moves read their destination as well.
class cmov_rr {
  operand ra : GPR[bits(21,5)] read;
  operand rb : GPR[bits(16,5)] read;
  operand rc : GPR[bits(0,5)] read write;
  action address { opb = rb; }
}

class cmov_lit {
  operand ra : GPR[bits(21,5)] read;
  operand rc : GPR[bits(0,5)] read write;
  action address { opb = bits(13,8); }
}

// Memory format: ra is data, rb is base.
class mem_load {
  operand ra : GPR[bits(21,5)] write;
  operand rb : GPR[bits(16,5)] read;
  action address { effective_addr = rb + sbits(0,16); }
}

class mem_store {
  operand ra : GPR[bits(21,5)] read;
  operand rb : GPR[bits(16,5)] read;
  action address { effective_addr = rb + sbits(0,16); }
}

// Branch format: 21-bit word displacement from the updated pc.
class condbr {
  operand ra : GPR[bits(21,5)] read;
  action address { branch_target = pc + 4 + (sbits(0,21) << 2); }
}

class uncondbr {
  operand ra : GPR[bits(21,5)] write;
  action address { branch_target = pc + 4 + (sbits(0,21) << 2); }
  action evaluate { ra = pc + 4; branch_taken = 1; next_pc = branch_target; }
}

// ---------------- load address -------------------------------------
instr LDA : mem_load match 0x20000000 mask 0xFC000000 {
  action evaluate { ra = effective_addr; }
}
instr LDAH : mem_load match 0x24000000 mask 0xFC000000 {
  action evaluate { ra = rb + (sbits(0,16) << 16); }
}

// ---------------- memory -------------------------------------------
instr LDBU : mem_load match 0x28000000 mask 0xFC000000 {
  action memory { ra = load.u8(effective_addr); }
}
instr LDWU : mem_load match 0x30000000 mask 0xFC000000 {
  action memory { ra = load.u16(effective_addr); }
}
instr LDL : mem_load match 0xA0000000 mask 0xFC000000 {
  action memory { ra = load.s32(effective_addr); }
}
instr LDQ : mem_load match 0xA4000000 mask 0xFC000000 {
  action memory { ra = load.u64(effective_addr); }
}
instr STB : mem_store match 0x38000000 mask 0xFC000000 {
  action memory { store.u8(effective_addr, ra); }
}
instr STW : mem_store match 0x34000000 mask 0xFC000000 {
  action memory { store.u16(effective_addr, ra); }
}
instr STL : mem_store match 0xB0000000 mask 0xFC000000 {
  action memory { store.u32(effective_addr, ra); }
}
instr STQ : mem_store match 0xB4000000 mask 0xFC000000 {
  action memory { store.u64(effective_addr, ra); }
}

// ---------------- integer arithmetic (opcode 0x10) ------------------
instr ADDL : op_rr match 0x40000000 mask 0xFC001FE0 {
  action evaluate { alu_out = sext(ra + opb, 32); rc = alu_out; }
}
instr ADDL_LIT : op_lit match 0x40001000 mask 0xFC001FE0 {
  action evaluate { alu_out = sext(ra + opb, 32); rc = alu_out; }
}
instr SUBL : op_rr match 0x40000120 mask 0xFC001FE0 {
  action evaluate { alu_out = sext(ra - opb, 32); rc = alu_out; }
}
instr SUBL_LIT : op_lit match 0x40001120 mask 0xFC001FE0 {
  action evaluate { alu_out = sext(ra - opb, 32); rc = alu_out; }
}
instr ADDQ : op_rr match 0x40000400 mask 0xFC001FE0 {
  action evaluate { alu_out = ra + opb; rc = alu_out; }
}
instr ADDQ_LIT : op_lit match 0x40001400 mask 0xFC001FE0 {
  action evaluate { alu_out = ra + opb; rc = alu_out; }
}
instr SUBQ : op_rr match 0x40000520 mask 0xFC001FE0 {
  action evaluate { alu_out = ra - opb; rc = alu_out; }
}
instr SUBQ_LIT : op_lit match 0x40001520 mask 0xFC001FE0 {
  action evaluate { alu_out = ra - opb; rc = alu_out; }
}
instr S4ADDQ : op_rr match 0x40000440 mask 0xFC001FE0 {
  action evaluate { alu_out = (ra << 2) + opb; rc = alu_out; }
}
instr S4ADDQ_LIT : op_lit match 0x40001440 mask 0xFC001FE0 {
  action evaluate { alu_out = (ra << 2) + opb; rc = alu_out; }
}
instr S8ADDQ : op_rr match 0x40000640 mask 0xFC001FE0 {
  action evaluate { alu_out = (ra << 3) + opb; rc = alu_out; }
}
instr S8ADDQ_LIT : op_lit match 0x40001640 mask 0xFC001FE0 {
  action evaluate { alu_out = (ra << 3) + opb; rc = alu_out; }
}
instr S4SUBQ : op_rr match 0x40000560 mask 0xFC001FE0 {
  action evaluate { alu_out = (ra << 2) - opb; rc = alu_out; }
}
instr S4SUBQ_LIT : op_lit match 0x40001560 mask 0xFC001FE0 {
  action evaluate { alu_out = (ra << 2) - opb; rc = alu_out; }
}
instr S8SUBQ : op_rr match 0x40000760 mask 0xFC001FE0 {
  action evaluate { alu_out = (ra << 3) - opb; rc = alu_out; }
}
instr S8SUBQ_LIT : op_lit match 0x40001760 mask 0xFC001FE0 {
  action evaluate { alu_out = (ra << 3) - opb; rc = alu_out; }
}
instr S4ADDL : op_rr match 0x40000040 mask 0xFC001FE0 {
  action evaluate { alu_out = sext((ra << 2) + opb, 32); rc = alu_out; }
}
instr S4SUBL : op_rr match 0x40000160 mask 0xFC001FE0 {
  action evaluate { alu_out = sext((ra << 2) - opb, 32); rc = alu_out; }
}
instr S8ADDL : op_rr match 0x40000240 mask 0xFC001FE0 {
  action evaluate { alu_out = sext((ra << 3) + opb, 32); rc = alu_out; }
}
instr S8SUBL : op_rr match 0x40000360 mask 0xFC001FE0 {
  action evaluate { alu_out = sext((ra << 3) - opb, 32); rc = alu_out; }
}
instr CMPEQ : op_rr match 0x400005A0 mask 0xFC001FE0 {
  action evaluate { alu_out = ra == opb; rc = alu_out; }
}
instr CMPEQ_LIT : op_lit match 0x400015A0 mask 0xFC001FE0 {
  action evaluate { alu_out = ra == opb; rc = alu_out; }
}
instr CMPLT : op_rr match 0x400009A0 mask 0xFC001FE0 {
  action evaluate { alu_out = ra < opb; rc = alu_out; }
}
instr CMPLT_LIT : op_lit match 0x400019A0 mask 0xFC001FE0 {
  action evaluate { alu_out = ra < opb; rc = alu_out; }
}
instr CMPLE : op_rr match 0x40000DA0 mask 0xFC001FE0 {
  action evaluate { alu_out = ra <= opb; rc = alu_out; }
}
instr CMPLE_LIT : op_lit match 0x40001DA0 mask 0xFC001FE0 {
  action evaluate { alu_out = ra <= opb; rc = alu_out; }
}
instr CMPULT : op_rr match 0x400003A0 mask 0xFC001FE0 {
  action evaluate { alu_out = ltu(ra, opb); rc = alu_out; }
}
instr CMPULT_LIT : op_lit match 0x400013A0 mask 0xFC001FE0 {
  action evaluate { alu_out = ltu(ra, opb); rc = alu_out; }
}
instr CMPULE : op_rr match 0x400007A0 mask 0xFC001FE0 {
  action evaluate { alu_out = leu(ra, opb); rc = alu_out; }
}
instr CMPULE_LIT : op_lit match 0x400017A0 mask 0xFC001FE0 {
  action evaluate { alu_out = leu(ra, opb); rc = alu_out; }
}
instr CMPBGE : op_rr match 0x400001E0 mask 0xFC001FE0 {
  action evaluate {
    alu_out = (geu(ra & 0xFF, opb & 0xFF))
            | (geu((ra >> 8) & 0xFF, (opb >> 8) & 0xFF) << 1)
            | (geu((ra >> 16) & 0xFF, (opb >> 16) & 0xFF) << 2)
            | (geu((ra >> 24) & 0xFF, (opb >> 24) & 0xFF) << 3)
            | (geu((ra >> 32) & 0xFF, (opb >> 32) & 0xFF) << 4)
            | (geu((ra >> 40) & 0xFF, (opb >> 40) & 0xFF) << 5)
            | (geu((ra >> 48) & 0xFF, (opb >> 48) & 0xFF) << 6)
            | (geu(ra >> 56, opb >> 56) << 7);
    rc = alu_out;
  }
}

// ---------------- integer logical (opcode 0x11) ---------------------
instr AND : op_rr match 0x44000000 mask 0xFC001FE0 {
  action evaluate { alu_out = ra & opb; rc = alu_out; }
}
instr AND_LIT : op_lit match 0x44001000 mask 0xFC001FE0 {
  action evaluate { alu_out = ra & opb; rc = alu_out; }
}
instr BIC : op_rr match 0x44000100 mask 0xFC001FE0 {
  action evaluate { alu_out = ra & ~opb; rc = alu_out; }
}
instr BIC_LIT : op_lit match 0x44001100 mask 0xFC001FE0 {
  action evaluate { alu_out = ra & ~opb; rc = alu_out; }
}
instr BIS : op_rr match 0x44000400 mask 0xFC001FE0 {
  action evaluate { alu_out = ra | opb; rc = alu_out; }
}
instr BIS_LIT : op_lit match 0x44001400 mask 0xFC001FE0 {
  action evaluate { alu_out = ra | opb; rc = alu_out; }
}
instr ORNOT : op_rr match 0x44000500 mask 0xFC001FE0 {
  action evaluate { alu_out = ra | ~opb; rc = alu_out; }
}
instr ORNOT_LIT : op_lit match 0x44001500 mask 0xFC001FE0 {
  action evaluate { alu_out = ra | ~opb; rc = alu_out; }
}
instr XOR : op_rr match 0x44000800 mask 0xFC001FE0 {
  action evaluate { alu_out = ra ^ opb; rc = alu_out; }
}
instr XOR_LIT : op_lit match 0x44001800 mask 0xFC001FE0 {
  action evaluate { alu_out = ra ^ opb; rc = alu_out; }
}
instr EQV : op_rr match 0x44000900 mask 0xFC001FE0 {
  action evaluate { alu_out = ra ^ ~opb; rc = alu_out; }
}
instr EQV_LIT : op_lit match 0x44001900 mask 0xFC001FE0 {
  action evaluate { alu_out = ra ^ ~opb; rc = alu_out; }
}
instr CMOVEQ : cmov_rr match 0x44000480 mask 0xFC001FE0 {
  action evaluate { rc = ra == 0 ? opb : rc; }
}
instr CMOVEQ_LIT : cmov_lit match 0x44001480 mask 0xFC001FE0 {
  action evaluate { rc = ra == 0 ? opb : rc; }
}
instr CMOVNE : cmov_rr match 0x440004C0 mask 0xFC001FE0 {
  action evaluate { rc = ra != 0 ? opb : rc; }
}
instr CMOVNE_LIT : cmov_lit match 0x440014C0 mask 0xFC001FE0 {
  action evaluate { rc = ra != 0 ? opb : rc; }
}
instr CMOVLT : cmov_rr match 0x44000880 mask 0xFC001FE0 {
  action evaluate { rc = ra < 0 ? opb : rc; }
}
instr CMOVLT_LIT : cmov_lit match 0x44001880 mask 0xFC001FE0 {
  action evaluate { rc = ra < 0 ? opb : rc; }
}
instr CMOVGE : cmov_rr match 0x440008C0 mask 0xFC001FE0 {
  action evaluate { rc = ra >= 0 ? opb : rc; }
}
instr CMOVGE_LIT : cmov_lit match 0x440018C0 mask 0xFC001FE0 {
  action evaluate { rc = ra >= 0 ? opb : rc; }
}
instr CMOVLE : cmov_rr match 0x44000C80 mask 0xFC001FE0 {
  action evaluate { rc = ra <= 0 ? opb : rc; }
}
instr CMOVLE_LIT : cmov_lit match 0x44001C80 mask 0xFC001FE0 {
  action evaluate { rc = ra <= 0 ? opb : rc; }
}
instr CMOVGT : cmov_rr match 0x44000CC0 mask 0xFC001FE0 {
  action evaluate { rc = ra > 0 ? opb : rc; }
}
instr CMOVGT_LIT : cmov_lit match 0x44001CC0 mask 0xFC001FE0 {
  action evaluate { rc = ra > 0 ? opb : rc; }
}
instr CMOVLBS : cmov_rr match 0x44000280 mask 0xFC001FE0 {
  action evaluate { rc = (ra & 1) == 1 ? opb : rc; }
}
instr CMOVLBC : cmov_rr match 0x440002C0 mask 0xFC001FE0 {
  action evaluate { rc = (ra & 1) == 0 ? opb : rc; }
}
instr CMOVLBS_LIT : cmov_lit match 0x44001280 mask 0xFC001FE0 {
  action evaluate { rc = (ra & 1) == 1 ? opb : rc; }
}
instr CMOVLBC_LIT : cmov_lit match 0x440012C0 mask 0xFC001FE0 {
  action evaluate { rc = (ra & 1) == 0 ? opb : rc; }
}

// ---------------- shifts and byte ops (opcode 0x12) -----------------
instr SLL : op_rr match 0x48000720 mask 0xFC001FE0 {
  action evaluate { alu_out = ra << (opb & 63); rc = alu_out; }
}
instr SLL_LIT : op_lit match 0x48001720 mask 0xFC001FE0 {
  action evaluate { alu_out = ra << (opb & 63); rc = alu_out; }
}
instr SRL : op_rr match 0x48000680 mask 0xFC001FE0 {
  action evaluate { alu_out = ra >> (opb & 63); rc = alu_out; }
}
instr SRL_LIT : op_lit match 0x48001680 mask 0xFC001FE0 {
  action evaluate { alu_out = ra >> (opb & 63); rc = alu_out; }
}
instr SRA : op_rr match 0x48000780 mask 0xFC001FE0 {
  action evaluate { alu_out = asr(ra, opb & 63); rc = alu_out; }
}
instr SRA_LIT : op_lit match 0x48001780 mask 0xFC001FE0 {
  action evaluate { alu_out = asr(ra, opb & 63); rc = alu_out; }
}
instr ZAP : op_rr match 0x48000600 mask 0xFC001FE0 {
  action evaluate {
    byte_mask = (((opb >> 0) & 1) * 0xFF)
              | (((opb >> 1) & 1) * 0xFF00)
              | (((opb >> 2) & 1) * 0xFF0000)
              | (((opb >> 3) & 1) * 0xFF000000)
              | (((opb >> 4) & 1) * 0xFF00000000)
              | (((opb >> 5) & 1) * 0xFF0000000000)
              | (((opb >> 6) & 1) * 0xFF000000000000)
              | (((opb >> 7) & 1) * 0xFF00000000000000);
    alu_out = ra & ~byte_mask;
    rc = alu_out;
  }
}
instr ZAPNOT : op_rr match 0x48000620 mask 0xFC001FE0 {
  action evaluate {
    byte_mask = (((opb >> 0) & 1) * 0xFF)
              | (((opb >> 1) & 1) * 0xFF00)
              | (((opb >> 2) & 1) * 0xFF0000)
              | (((opb >> 3) & 1) * 0xFF000000)
              | (((opb >> 4) & 1) * 0xFF00000000)
              | (((opb >> 5) & 1) * 0xFF0000000000)
              | (((opb >> 6) & 1) * 0xFF000000000000)
              | (((opb >> 7) & 1) * 0xFF00000000000000);
    alu_out = ra & byte_mask;
    rc = alu_out;
  }
}
instr ZAPNOT_LIT : op_lit match 0x48001620 mask 0xFC001FE0 {
  action evaluate {
    byte_mask = (((opb >> 0) & 1) * 0xFF)
              | (((opb >> 1) & 1) * 0xFF00)
              | (((opb >> 2) & 1) * 0xFF0000)
              | (((opb >> 3) & 1) * 0xFF000000)
              | (((opb >> 4) & 1) * 0xFF00000000)
              | (((opb >> 5) & 1) * 0xFF0000000000)
              | (((opb >> 6) & 1) * 0xFF000000000000)
              | (((opb >> 7) & 1) * 0xFF00000000000000);
    alu_out = ra & byte_mask;
    rc = alu_out;
  }
}
instr EXTBL : op_rr match 0x480000C0 mask 0xFC001FE0 {
  action evaluate { alu_out = (ra >> ((opb & 7) << 3)) & 0xFF; rc = alu_out; }
}
instr EXTBL_LIT : op_lit match 0x480010C0 mask 0xFC001FE0 {
  action evaluate { alu_out = (ra >> ((opb & 7) << 3)) & 0xFF; rc = alu_out; }
}
instr EXTWL : op_rr match 0x480002C0 mask 0xFC001FE0 {
  action evaluate { alu_out = (ra >> ((opb & 7) << 3)) & 0xFFFF; rc = alu_out; }
}
instr EXTLL : op_rr match 0x480004C0 mask 0xFC001FE0 {
  action evaluate { alu_out = (ra >> ((opb & 7) << 3)) & 0xFFFFFFFF; rc = alu_out; }
}
instr EXTQL : op_rr match 0x480006C0 mask 0xFC001FE0 {
  action evaluate { alu_out = ra >> ((opb & 7) << 3); rc = alu_out; }
}
instr INSBL : op_rr match 0x48000160 mask 0xFC001FE0 {
  action evaluate { alu_out = (ra & 0xFF) << ((opb & 7) << 3); rc = alu_out; }
}
instr INSBL_LIT : op_lit match 0x48001160 mask 0xFC001FE0 {
  action evaluate { alu_out = (ra & 0xFF) << ((opb & 7) << 3); rc = alu_out; }
}
instr INSWL : op_rr match 0x48000360 mask 0xFC001FE0 {
  action evaluate { alu_out = (ra & 0xFFFF) << ((opb & 7) << 3); rc = alu_out; }
}
instr INSLL : op_rr match 0x48000560 mask 0xFC001FE0 {
  action evaluate { alu_out = (ra & 0xFFFFFFFF) << ((opb & 7) << 3); rc = alu_out; }
}
instr INSQL : op_rr match 0x48000760 mask 0xFC001FE0 {
  action evaluate { alu_out = ra << ((opb & 7) << 3); rc = alu_out; }
}
instr MSKBL : op_rr match 0x48000040 mask 0xFC001FE0 {
  action evaluate { alu_out = ra & ~(0xFF << ((opb & 7) << 3)); rc = alu_out; }
}
instr MSKWL : op_rr match 0x48000240 mask 0xFC001FE0 {
  action evaluate { alu_out = ra & ~(0xFFFF << ((opb & 7) << 3)); rc = alu_out; }
}
instr MSKLL : op_rr match 0x48000440 mask 0xFC001FE0 {
  action evaluate { alu_out = ra & ~(0xFFFFFFFF << ((opb & 7) << 3)); rc = alu_out; }
}
instr MSKQL : op_rr match 0x48000640 mask 0xFC001FE0 {
  action evaluate { alu_out = ra & ~(0xFFFFFFFFFFFFFFFF << ((opb & 7) << 3)); rc = alu_out; }
}
instr EXTWL_LIT : op_lit match 0x480012C0 mask 0xFC001FE0 {
  action evaluate { alu_out = (ra >> ((opb & 7) << 3)) & 0xFFFF; rc = alu_out; }
}

// ---------------- integer multiply (opcode 0x13) --------------------
instr MULL : op_rr match 0x4C000000 mask 0xFC001FE0 {
  action evaluate { alu_out = sext(ra * opb, 32); rc = alu_out; }
}
instr MULL_LIT : op_lit match 0x4C001000 mask 0xFC001FE0 {
  action evaluate { alu_out = sext(ra * opb, 32); rc = alu_out; }
}
instr MULQ : op_rr match 0x4C000400 mask 0xFC001FE0 {
  action evaluate { alu_out = ra * opb; rc = alu_out; }
}
instr MULQ_LIT : op_lit match 0x4C001400 mask 0xFC001FE0 {
  action evaluate { alu_out = ra * opb; rc = alu_out; }
}
instr UMULH : op_rr match 0x4C000600 mask 0xFC001FE0 {
  action evaluate { alu_out = mulhu(ra, opb); rc = alu_out; }
}
instr UMULH_LIT : op_lit match 0x4C001600 mask 0xFC001FE0 {
  action evaluate { alu_out = mulhu(ra, opb); rc = alu_out; }
}

// ---------------- counts (opcode 0x1C) -------------------------------
// Not op_rr: the class would also fetch ra, which the count unaries
// ignore (architecturally R31) — lislint L031 flags the dead fetch.
class op_count {
  operand rb : GPR[bits(16,5)] read;
  operand rc : GPR[bits(0,5)] write;
  action address { opb = rb; }
}
instr CTPOP : op_count match 0x70000600 mask 0xFC001FE0 {
  action evaluate { alu_out = popcount(opb); rc = alu_out; }
}
instr CTLZ : op_count match 0x70000640 mask 0xFC001FE0 {
  action evaluate { alu_out = clz(opb); rc = alu_out; }
}
instr CTTZ : op_count match 0x70000660 mask 0xFC001FE0 {
  action evaluate { alu_out = ctz(opb); rc = alu_out; }
}

// ---------------- control flow --------------------------------------
instr JMP match 0x68000000 mask 0xFC000000 {
  operand ra : GPR[bits(21,5)] write;
  operand rb : GPR[bits(16,5)] read;
  action evaluate { ra = pc + 4; branch_taken = 1; next_pc = rb & ~3; }
}

instr BR : uncondbr match 0xC0000000 mask 0xFC000000;
instr BSR : uncondbr match 0xD0000000 mask 0xFC000000;

instr BEQ : condbr match 0xE4000000 mask 0xFC000000 {
  action evaluate { branch_taken = ra == 0; if (branch_taken) { next_pc = branch_target; } }
}
instr BNE : condbr match 0xF4000000 mask 0xFC000000 {
  action evaluate { branch_taken = ra != 0; if (branch_taken) { next_pc = branch_target; } }
}
instr BLT : condbr match 0xE8000000 mask 0xFC000000 {
  action evaluate { branch_taken = ra < 0; if (branch_taken) { next_pc = branch_target; } }
}
instr BLE : condbr match 0xEC000000 mask 0xFC000000 {
  action evaluate { branch_taken = ra <= 0; if (branch_taken) { next_pc = branch_target; } }
}
instr BGT : condbr match 0xFC000000 mask 0xFC000000 {
  action evaluate { branch_taken = ra > 0; if (branch_taken) { next_pc = branch_target; } }
}
instr BGE : condbr match 0xF8000000 mask 0xFC000000 {
  action evaluate { branch_taken = ra >= 0; if (branch_taken) { next_pc = branch_target; } }
}
instr BLBC : condbr match 0xE0000000 mask 0xFC000000 {
  action evaluate { branch_taken = (ra & 1) == 0; if (branch_taken) { next_pc = branch_target; } }
}
instr BLBS : condbr match 0xF0000000 mask 0xFC000000 {
  action evaluate { branch_taken = (ra & 1) == 1; if (branch_taken) { next_pc = branch_target; } }
}

// ---------------- PALcode entry --------------------------------------
// In user mode only callsys/halt are meaningful; the OS-support file
// overrides the exception action to route them into the emulated OS.
instr CALL_PAL match 0x00000000 mask 0xFC000000 {
  action exception { fault illegal; }
}
|}

(** OS/simulator support: the paper's second description file. *)
let os_text =
  {|
// OS emulation for Alpha: OSF/1-style calling convention.
// v0 (R0) carries the syscall number and the result; a0-a2 (R16-R18)
// carry arguments.
abi {
  nr = GPR[0];
  arg0 = GPR[16];
  arg1 = GPR[17];
  arg2 = GPR[18];
  ret = GPR[0];
}

override CALL_PAL action exception {
  if (bits(0,26) == 0x83) {
    syscall;
  } else {
    if (bits(0,26) == 0) {
      halt;
    } else {
      fault illegal;
    }
  }
}
|}

let buildsets_text = Specsim.Detail.canonical_buildset_file ()

let sources : Lis.Ast.source list =
  [
    { src_role = Lis.Ast.Isa_description; src_name = "alpha.lis"; src_text = isa_text };
    { src_role = Lis.Ast.Os_support; src_name = "alpha_os.lis"; src_text = os_text };
    {
      src_role = Lis.Ast.Buildset_file;
      src_name = "alpha_buildsets.lis";
      src_text = buildsets_text;
    };
  ]

(** The resolved specification (parsed and analyzed once). *)
let spec = lazy (Lis.Sema.load sources)
