(** Abstract interpretation over {!Ir} programs: a value domain
    (unsigned interval × power-of-two congruence) and an effect domain
    (cells / register classes / memory / control / fault / syscall),
    computed in one forward walk — semir programs are loop-free, so the
    single walk is the fixpoint. *)

module Iset : Set.S with type elt = int

(** {1 Value domain} *)

(** Abstract value: optional unsigned interval [lo, hi] (both below
    2^62) plus a congruence — the value is [rem] modulo [modulus], a
    power of two in [1, 4096]. [modulus = 1] carries no information. *)
type aval = { itv : (int64 * int64) option; modulus : int64; rem : int64 }

val top : aval
val const : int64 -> aval
val join : aval -> aval -> aval
val is_const : aval -> int64 option
val pp_aval : Format.formatter -> aval -> unit

(** {1 Effect domain} *)

type effects = {
  reads : Iset.t;
      (** cells whose incoming value may be observed (exposed reads:
          kills are must-writes, so this never under-reports) *)
  reads_all : Iset.t;  (** cells read anywhere *)
  writes : Iset.t;  (** cells possibly written *)
  must_writes : Iset.t;  (** cells written on every path *)
  reg_reads : Iset.t;
  reg_writes : Iset.t;
  loads : bool;
  stores : bool;
  ctrl : bool;
  syscall : bool;
  halt : bool;
  faults : bool;
  must_fault : bool;  (** a fault is raised on every path *)
}

val no_effects : effects

val compose : effects -> effects -> effects
(** Sequential composition for programs analyzed on the same threaded
    {!path}. *)

val architected_effect : effects -> bool
(** True if the program may write registers or memory, syscall, or halt
    — the "purity" question for address-generation actions. *)

type reg_access = { ra_cls : int; ra_index : aval; ra_write : bool }
type mem_access = { ma_width : Ir.width; ma_addr : aval; ma_store : bool }

type result = {
  effects : effects;
  reg_acc : reg_access list;
  mem_acc : mem_access list;
}

val no_result : result
val compose_result : result -> result -> result

(** {1 Analysis} *)

(** Abstract machine state threaded across a sequence of programs. *)
type path

val fresh_path : n_cells:int -> path

val analyze : path -> Ir.program -> result
(** Effects and accesses of this program alone, given (and updating) the
    threaded path; exposed reads are relative to cells the path already
    must-wrote. *)

val analyze_program : n_cells:int -> Ir.program -> result
(** One-shot analysis from a fresh path. *)

val exposed_reads : n_cells:int -> Ir.program -> Iset.t
(** Cells whose incoming value the program may observe, with sound
    must-write kills. *)

val misaligned : mem_access -> bool
(** The congruence proves the address is never a multiple of the access
    width. *)
