(** Closure compiler for {!Ir}.

    The paper's synthesizer emits C++ specialized per interface; our analog
    compiles each action to OCaml closures once, at synthesis time, with
    every cell location, register class base, memory width and constant
    resolved statically. Execution then runs no IR dispatch at all — this
    plays the role of the paper's binary-translated execution substrate. *)

open Machine

type ecode = State.t -> Frame.t -> int64
type code = State.t -> Frame.t -> unit

let nop : code = fun _ _ -> ()

(* ------------------------------------------------------------------ *)
(* Expressions                                                         *)
(* ------------------------------------------------------------------ *)

(* Compile-time environment, threaded explicitly through the compiler.
   [env_layout]: when the register-file layout is known at synthesis
   time, static register numbers resolve to flat indices with no
   per-access lookup. [env_fast_mem]: give load/store sites a one-entry
   page cache. Kept explicit (no module-level refs) so concurrent
   synthesis on separate domains never races on compiler state. *)
type env = {
  env_layout : Machine.Regfile.t option;
  env_fast_mem : bool;
}

let default_env = { env_layout = None; env_fast_mem = false }

(* ------------------------------------------------------------------ *)
(* Per-site memory fast path (software TLB)                            *)
(* ------------------------------------------------------------------ *)

(* When enabled, each compiled load/store site carries a one-entry page
   cache: a hit costs a few integer compares plus a direct [Bytes]
   access. A different memory, a page cross, or a stale generation
   ([Memory.clear], or the page being newly marked as code) falls back
   to {!Memory}. Store sites never cache code pages, and marking a page
   as code bumps the generation, so fast-path stores can never bypass
   the code-write hooks. *)
type site_tlb = {
  mutable tl_mem : Memory.t;
  mutable tl_gen : int;
  mutable tl_idx : int;
  mutable tl_page : Bytes.t;
  mutable tl_le : bool;
}

(* Plain module-init value, not [lazy]: a lazy forced from two domains
   at once is undefined behaviour in OCaml 5, and fresh TLBs are built
   during concurrent synthesis. *)
let tlb_dummy_mem = Memory.create Little

let fresh_tlb () =
  {
    tl_mem = tlb_dummy_mem;
    tl_gen = -1;
    tl_idx = -1;
    tl_page = Bytes.empty;
    tl_le = true;
  }

let tlb_refill tl m idx =
  tl.tl_mem <- m;
  tl.tl_gen <- Memory.generation m;
  tl.tl_idx <- idx;
  tl.tl_page <- Memory.lookup_page m idx;
  tl.tl_le <- Memory.endian m = Memory.Little

let mk_fast_load ~signed ~w (ca : ecode) : ecode =
  let tl = fresh_tlb () in
  let max_off = Memory.page_size - w in
  let slow st a off idx =
    let m = st.Machine.State.mem in
    let v =
      if signed then Memory.read_signed m ~addr:a ~width:w
      else Memory.read m ~addr:a ~width:w
    in
    if off <= max_off then tlb_refill tl m idx;
    v
  in
  match (w, signed) with
  | 1, false ->
    fun st fr ->
      let a = ca st fr in
      let ai = Memory.addr_int a in
      let off = ai land Memory.page_mask and idx = ai lsr Memory.page_bits in
      let m = st.Machine.State.mem in
      if idx = tl.tl_idx && m == tl.tl_mem && tl.tl_gen = Memory.generation m
      then Int64.of_int (Char.code (Bytes.unsafe_get tl.tl_page off))
      else slow st a off idx
  | 1, true ->
    fun st fr ->
      let a = ca st fr in
      let ai = Memory.addr_int a in
      let off = ai land Memory.page_mask and idx = ai lsr Memory.page_bits in
      let m = st.Machine.State.mem in
      if idx = tl.tl_idx && m == tl.tl_mem && tl.tl_gen = Memory.generation m
      then Int64.of_int (Bytes.get_int8 tl.tl_page off)
      else slow st a off idx
  | 2, false ->
    fun st fr ->
      let a = ca st fr in
      let ai = Memory.addr_int a in
      let off = ai land Memory.page_mask and idx = ai lsr Memory.page_bits in
      let m = st.Machine.State.mem in
      if
        idx = tl.tl_idx && m == tl.tl_mem
        && tl.tl_gen = Memory.generation m
        && off <= max_off
      then
        Int64.of_int
          (if tl.tl_le then Bytes.get_uint16_le tl.tl_page off
           else Bytes.get_uint16_be tl.tl_page off)
      else slow st a off idx
  | 2, true ->
    fun st fr ->
      let a = ca st fr in
      let ai = Memory.addr_int a in
      let off = ai land Memory.page_mask and idx = ai lsr Memory.page_bits in
      let m = st.Machine.State.mem in
      if
        idx = tl.tl_idx && m == tl.tl_mem
        && tl.tl_gen = Memory.generation m
        && off <= max_off
      then
        Int64.of_int
          (if tl.tl_le then Bytes.get_int16_le tl.tl_page off
           else Bytes.get_int16_be tl.tl_page off)
      else slow st a off idx
  | 4, false ->
    fun st fr ->
      let a = ca st fr in
      let ai = Memory.addr_int a in
      let off = ai land Memory.page_mask and idx = ai lsr Memory.page_bits in
      let m = st.Machine.State.mem in
      if
        idx = tl.tl_idx && m == tl.tl_mem
        && tl.tl_gen = Memory.generation m
        && off <= max_off
      then
        Int64.logand
          (Int64.of_int32
             (if tl.tl_le then Bytes.get_int32_le tl.tl_page off
              else Bytes.get_int32_be tl.tl_page off))
          0xFFFFFFFFL
      else slow st a off idx
  | 4, true ->
    fun st fr ->
      let a = ca st fr in
      let ai = Memory.addr_int a in
      let off = ai land Memory.page_mask and idx = ai lsr Memory.page_bits in
      let m = st.Machine.State.mem in
      if
        idx = tl.tl_idx && m == tl.tl_mem
        && tl.tl_gen = Memory.generation m
        && off <= max_off
      then
        Int64.of_int32
          (if tl.tl_le then Bytes.get_int32_le tl.tl_page off
           else Bytes.get_int32_be tl.tl_page off)
      else slow st a off idx
  | _ ->
    fun st fr ->
      let a = ca st fr in
      let ai = Memory.addr_int a in
      let off = ai land Memory.page_mask and idx = ai lsr Memory.page_bits in
      let m = st.Machine.State.mem in
      if
        idx = tl.tl_idx && m == tl.tl_mem
        && tl.tl_gen = Memory.generation m
        && off <= max_off
      then
        if tl.tl_le then Bytes.get_int64_le tl.tl_page off
        else Bytes.get_int64_be tl.tl_page off
      else slow st a off idx

let mk_fast_store ~w (ca : ecode) (cv : ecode) : code =
  let tl = fresh_tlb () in
  let max_off = Memory.page_size - w in
  let slow st a v off idx =
    let m = st.Machine.State.mem in
    Memory.write m ~addr:a ~width:w v;
    (* Never cache a code page: a fast-path hit must imply the write
       needs no code-write hook. *)
    if off <= max_off && not (Memory.is_code_page m idx) then
      tlb_refill tl m idx
  in
  match w with
  | 1 ->
    fun st fr ->
      let a = ca st fr in
      let ai = Memory.addr_int a in
      let off = ai land Memory.page_mask and idx = ai lsr Memory.page_bits in
      let m = st.Machine.State.mem in
      if idx = tl.tl_idx && m == tl.tl_mem && tl.tl_gen = Memory.generation m
      then
        Bytes.unsafe_set tl.tl_page off
          (Char.unsafe_chr (Int64.to_int (cv st fr) land 0xff))
      else slow st a (cv st fr) off idx
  | 2 ->
    fun st fr ->
      let a = ca st fr in
      let ai = Memory.addr_int a in
      let off = ai land Memory.page_mask and idx = ai lsr Memory.page_bits in
      let m = st.Machine.State.mem in
      if
        idx = tl.tl_idx && m == tl.tl_mem
        && tl.tl_gen = Memory.generation m
        && off <= max_off
      then
        let v = Int64.to_int (cv st fr) land 0xffff in
        if tl.tl_le then Bytes.set_uint16_le tl.tl_page off v
        else Bytes.set_uint16_be tl.tl_page off v
      else slow st a (cv st fr) off idx
  | 4 ->
    fun st fr ->
      let a = ca st fr in
      let ai = Memory.addr_int a in
      let off = ai land Memory.page_mask and idx = ai lsr Memory.page_bits in
      let m = st.Machine.State.mem in
      if
        idx = tl.tl_idx && m == tl.tl_mem
        && tl.tl_gen = Memory.generation m
        && off <= max_off
      then
        let v = Int64.to_int32 (cv st fr) in
        if tl.tl_le then Bytes.set_int32_le tl.tl_page off v
        else Bytes.set_int32_be tl.tl_page off v
      else slow st a (cv st fr) off idx
  | _ ->
    fun st fr ->
      let a = ca st fr in
      let ai = Memory.addr_int a in
      let off = ai land Memory.page_mask and idx = ai lsr Memory.page_bits in
      let m = st.Machine.State.mem in
      if
        idx = tl.tl_idx && m == tl.tl_mem
        && tl.tl_gen = Memory.generation m
        && off <= max_off
      then
        let v = cv st fr in
        if tl.tl_le then Bytes.set_int64_le tl.tl_page off v
        else Bytes.set_int64_be tl.tl_page off v
      else slow st a (cv st fr) off idx

let rec compile_expr (env : env) (loc : Frame.location array) (e : Ir.expr) :
    ecode =
  match e with
  | Const v -> fun _ _ -> v
  | Cell c -> (
    match loc.(c) with
    | In_di i -> fun _ fr -> Array.unsafe_get fr.Frame.di i
    | In_scratch i -> fun _ fr -> Array.unsafe_get fr.Frame.scratch i)
  | Enc { lo; len; signed } ->
    if signed then fun _ fr -> Value.enc_bits fr.enc ~lo ~len ~signed:true
    else if lo + len >= 64 then fun _ fr ->
      Int64.shift_right_logical fr.enc lo
    else
      let mask = Int64.sub (Int64.shift_left 1L len) 1L in
      fun _ fr -> Int64.logand (Int64.shift_right_logical fr.enc lo) mask
  | Pc -> fun _ fr -> fr.pc
  | Next_pc -> fun _ fr -> fr.next_pc
  | Bin (op, a, b) -> binop env loc op a b
  | Un (op, a) ->
    let f = Value.unop op in
    let ca = compile_expr env loc a in
    fun st fr -> f (ca st fr)
  | Ite (c, a, b) ->
    let cc = compile_expr env loc c
    and ca = compile_expr env loc a
    and cb = compile_expr env loc b in
    fun st fr -> if Int64.equal (cc st fr) 0L then cb st fr else ca st fr
  | Load { width; signed; addr } ->
    let ca = compile_expr env loc addr in
    let w = Ir.bytes_of_width width in
    if env.env_fast_mem then mk_fast_load ~signed ~w ca
    else if signed then fun st fr ->
      Memory.read_signed st.mem ~addr:(ca st fr) ~width:w
    else fun st fr -> Memory.read st.mem ~addr:(ca st fr) ~width:w
  | Reg_read { cls; index } -> (
    match (index, env.env_layout) with
    | Const i, Some l ->
      (* Static register number against a known layout: one array read. *)
      let flat = Regaccess.flat l ~cls i in
      fun st _ -> Regfile.read_flat st.regs flat
    | Const i, None ->
      fun st _ ->
        let regs = st.regs in
        let count = (Regfile.class_def regs cls).count in
        Regfile.read_flat regs
          (Regfile.base regs cls + Regaccess.clamp ~count i)
    | _ ->
      let ci = compile_expr env loc index in
      fun st fr -> Regaccess.read st.regs ~cls (ci st fr))

and binop env loc (op : Ir.binop) (a : Ir.expr) (b : Ir.expr) : ecode =
  let ca = compile_expr env loc a in
  match (op, b) with
  (* Specialize the very common reg+constant / masked patterns. *)
  | Add, Const k -> fun st fr -> Int64.add (ca st fr) k
  | And, Const k -> fun st fr -> Int64.logand (ca st fr) k
  | Shl, Const k ->
    let s = Int64.to_int k land 63 in
    fun st fr -> Int64.shift_left (ca st fr) s
  | Lshr, Const k ->
    let s = Int64.to_int k land 63 in
    fun st fr -> Int64.shift_right_logical (ca st fr) s
  | Ashr, Const k ->
    let s = Int64.to_int k land 63 in
    fun st fr -> Int64.shift_right (ca st fr) s
  | Eq, Const k -> fun st fr -> if Int64.equal (ca st fr) k then 1L else 0L
  | _ ->
    let f = Value.binop op in
    let cb = compile_expr env loc b in
    fun st fr -> f (ca st fr) (cb st fr)

(** [expr loc e] — the default-environment compiler (no layout, no
    memory fast path), exported for standalone expression compilation. *)
let expr (loc : Frame.location array) (e : Ir.expr) : ecode =
  compile_expr default_env loc e

(* ------------------------------------------------------------------ *)
(* Statements                                                          *)
(* ------------------------------------------------------------------ *)

let rec stmt (env : env) (hooks : Hooks.t option) (loc : Frame.location array)
    (s : Ir.stmt) : code =
  match s with
  | Set_cell (c, e) -> (
    let ce = compile_expr env loc e in
    match loc.(c) with
    | In_di i -> fun st fr -> Array.unsafe_set fr.Frame.di i (ce st fr)
    | In_scratch i ->
      fun st fr -> Array.unsafe_set fr.Frame.scratch i (ce st fr))
  | Store { width; addr; value } -> (
    let ca = compile_expr env loc addr and cv = compile_expr env loc value in
    let w = Ir.bytes_of_width width in
    match hooks with
    | None ->
      if env.env_fast_mem then mk_fast_store ~w ca cv
      else fun st fr ->
        Memory.write st.mem ~addr:(ca st fr) ~width:w (cv st fr)
    | Some h ->
      (* Journaled stores keep the slow path: the hook must see every
         store, and speculation dominates the cost anyway. *)
      fun st fr ->
        let a = ca st fr in
        h.on_store st a w;
        Memory.write st.mem ~addr:a ~width:w (cv st fr))
  | Set_next_pc e ->
    let ce = compile_expr env loc e in
    fun st fr -> fr.next_pc <- ce st fr
  | Reg_write { cls; index; value } -> (
    let cv = compile_expr env loc value in
    let ci =
      match index with
      | Const i -> fun _ _ -> i
      | _ -> compile_expr env loc index
    in
    match hooks with
    | None -> (
      match (index, env.env_layout) with
      | Const i, Some l ->
        let flat = Regaccess.flat l ~cls i in
        fun st fr -> Regfile.write_flat st.regs flat (cv st fr)
      | Const i, None ->
        fun st fr ->
          let regs = st.regs in
          let count = (Regfile.class_def regs cls).count in
          Regfile.write_flat regs
            (Regfile.base regs cls + Regaccess.clamp ~count i)
            (cv st fr)
      | _ -> fun st fr -> Regaccess.write st.regs ~cls (ci st fr) (cv st fr))
    | Some h -> (
      match (index, env.env_layout) with
      | Const i, Some l ->
        let flat = Regaccess.flat l ~cls i in
        fun st fr ->
          h.on_reg_write st flat;
          Regfile.write_flat st.regs flat (cv st fr)
      | _ ->
        fun st fr ->
          let flat = Regaccess.flat st.regs ~cls (ci st fr) in
          h.on_reg_write st flat;
          Regfile.write_flat st.regs flat (cv st fr)))
  | If (c, t, f) -> (
    let cc = compile_expr env loc c in
    let ct = block env hooks loc t and cf = block env hooks loc f in
    match f with
    | [] -> fun st fr -> if not (Int64.equal (cc st fr) 0L) then ct st fr
    | _ ->
      fun st fr ->
        if Int64.equal (cc st fr) 0L then cf st fr else ct st fr)
  | Fault_illegal ->
    fun st fr -> State.raise_fault st (Fault.Illegal_instruction fr.enc)
  | Fault_unaligned e ->
    let ce = compile_expr env loc e in
    fun st fr -> State.raise_fault st (Fault.Unaligned_access (ce st fr))
  | Fault_arith msg -> fun st _ -> State.raise_fault st (Fault.Arith msg)
  | Syscall -> fun st _ -> st.syscall_handler st
  | Halt -> fun st _ -> st.halted <- true

(** [block env hooks loc stmts] fuses a statement list into one closure. *)
and block env hooks (loc : Frame.location array) (stmts : Ir.stmt list) : code
    =
  match stmts with
  | [] -> nop
  | [ s ] -> stmt env hooks loc s
  | [ s1; s2 ] ->
    let c1 = stmt env hooks loc s1 and c2 = stmt env hooks loc s2 in
    fun st fr ->
      c1 st fr;
      c2 st fr
  | s1 :: s2 :: rest ->
    let c1 = stmt env hooks loc s1 and c2 = stmt env hooks loc s2 in
    let crest = block env hooks loc rest in
    fun st fr ->
      c1 st fr;
      c2 st fr;
      crest st fr

(** [program ~loc p] compiles a whole action body. [hooks] intercept
    architectural writes for speculation journaling; [layout], when given,
    lets static register numbers compile to single array accesses. The
    compile environment is a local value, so concurrent [program] calls
    from different domains are independent. *)
let program ?hooks ?layout ?(mem_fast_path = false) ~loc (p : Ir.program) :
    code =
  let env = { env_layout = layout; env_fast_mem = mem_fast_path } in
  block env hooks loc p

(** [sequence codes] fuses already-compiled codes (used when fusing several
    actions into one entrypoint, or several instructions into one block). *)
let sequence (codes : code list) : code =
  match codes with
  | [] -> nop
  | [ c ] -> c
  | c :: rest ->
    List.fold_left
      (fun acc c ->
        fun st fr ->
         acc st fr;
         c st fr)
      c rest
