(** Closure compiler for {!Ir} — the execution substrate of synthesized
    simulators (the analog of the paper's LLVM-based binary translation).
    Compilation happens once, at synthesis time; execution runs no IR
    dispatch at all. *)

(** A compiled expression: evaluates against the machine and the frame. *)
type ecode = Machine.State.t -> Frame.t -> int64

(** A compiled statement sequence. *)
type code = Machine.State.t -> Frame.t -> unit

val nop : code

(** [expr loc e] compiles one expression under the cell-location map. *)
val expr : Frame.location array -> Ir.expr -> ecode

(** [program ?hooks ?layout ?mem_fast_path ~loc p] compiles a whole
    action body. [hooks] intercept architectural writes for speculation
    journaling; [layout], when given, lets static register numbers
    compile to single array accesses (it must match the register file of
    every machine the code will run against). [mem_fast_path] (default
    off) gives every load/store site a one-entry page cache — a per-site
    software TLB — hitting the backing bytes directly and falling back
    to {!Machine.Memory} on page cross, memory change, or generation
    mismatch. Fast-path stores never cache code pages, so code-write
    hooks still fire; journaled stores (with [hooks]) always take the
    slow path. *)
val program :
  ?hooks:Hooks.t ->
  ?layout:Machine.Regfile.t ->
  ?mem_fast_path:bool ->
  loc:Frame.location array ->
  Ir.program ->
  code

(** [sequence codes] fuses already-compiled codes into one (used when
    fusing actions into an entrypoint or instructions into a block). *)
val sequence : code list -> code
