(** Abstract interpretation over {!Ir} programs.

    Two cooperating domains, both sound over-approximations of the
    concrete 64-bit semantics of {!Eval}:

    - a *value* domain {!aval} tracking an unsigned interval and a
      low-bit congruence (value mod 2^k known), enough to bound operand
      bitfields, register indices and memory-address alignment;
    - an *effect* domain {!effects} tracking which cells, register
      classes and machine resources a program may touch, with must-write
      information for cells (kills are must-writes, so exposed reads are
      never under-reported).

    Programs are loop-free ([If] is the only join point), so one forward
    walk reaches the fixpoint: every join is computed once. The walk is
    path-threaded — a {!path} carries the abstract cell values and the
    must-written set across programs, so a chain of action bodies can be
    analyzed action by action with values flowing between them exactly
    as the synthesizer executes them. *)

module Iset = Set.Make (Int)

(* ------------------------------------------------------------------ *)
(* Value domain: unsigned interval x low-bit congruence                *)
(* ------------------------------------------------------------------ *)

(** Congruence cap: moduli are powers of two up to 2^12. Alignment
    questions only need up to the access width (8), page questions up to
    4096; capping keeps every modulus computation in small integers. *)
let align_cap = 4096L

(** Interval bound: intervals above 2^62 - 1 are widened to top so sums
    and products of in-range bounds cannot overflow [int64]. *)
let itv_cap = Int64.shift_left 1L 62

(** Abstract value. [itv = Some (lo, hi)] bounds the value as an
    unsigned integer, [0 <= lo <= hi < 2^62]. [modulus] is a power of
    two in [1, 4096]; the concrete value is always congruent to [rem]
    modulo [modulus] ([modulus = 1] carries no information). *)
type aval = { itv : (int64 * int64) option; modulus : int64; rem : int64 }

let top = { itv = None; modulus = 1L; rem = 0L }

let in_itv_range v = Int64.compare v 0L >= 0 && Int64.compare v itv_cap < 0

let const v =
  {
    itv = (if in_itv_range v then Some (v, v) else None);
    modulus = align_cap;
    rem = Int64.logand v (Int64.sub align_cap 1L);
  }

(** Value of an unsigned [len]-bit encoding field: [0, 2^len - 1].
    Signed fields sign-extend and so are unbounded as unsigned values. *)
let enc_field ~len ~signed =
  if signed || len >= 62 then top
  else { top with itv = Some (0L, Int64.sub (Int64.shift_left 1L len) 1L) }

let is_const = function
  | { itv = Some (lo, hi); _ } when Int64.equal lo hi -> Some lo
  | _ -> None

(* Largest power of two (capped) dividing every concretization: the
   modulus itself when the remainder is 0, else the remainder's lowest
   set bit. *)
let known_pow2_divisor a =
  if Int64.equal a.rem 0L then a.modulus
  else Int64.logand a.rem (Int64.neg a.rem)

let mk_cong modulus rem =
  let modulus = if Int64.compare modulus 1L < 0 then 1L else modulus in
  (modulus, Int64.logand rem (Int64.sub modulus 1L))

let join a b =
  let itv =
    match (a.itv, b.itv) with
    | Some (lo1, hi1), Some (lo2, hi2) ->
      Some (min lo1 lo2, max hi1 hi2)
    | _ -> None
  in
  (* shrink the modulus until the remainders agree *)
  let m = ref (min a.modulus b.modulus) in
  while
    Int64.compare !m 1L > 0
    && not
         (Int64.equal
            (Int64.logand a.rem (Int64.sub !m 1L))
            (Int64.logand b.rem (Int64.sub !m 1L)))
  do
    m := Int64.div !m 2L
  done;
  let modulus, rem = mk_cong !m a.rem in
  { itv; modulus; rem }

let add a b =
  let itv =
    match (a.itv, b.itv) with
    | Some (lo1, hi1), Some (lo2, hi2) ->
      let hi = Int64.add hi1 hi2 in
      if in_itv_range hi then Some (Int64.add lo1 lo2, hi) else None
    | _ -> None
  in
  let modulus, rem = mk_cong (min a.modulus b.modulus) (Int64.add a.rem b.rem) in
  { itv; modulus; rem }

let sub a b =
  let itv =
    match (a.itv, b.itv) with
    | Some (lo1, hi1), Some (lo2, hi2) when Int64.compare lo1 hi2 >= 0 ->
      Some (Int64.sub lo1 hi2, Int64.sub hi1 lo2)
    | _ -> None
  in
  let modulus, rem = mk_cong (min a.modulus b.modulus) (Int64.sub a.rem b.rem) in
  { itv; modulus; rem }

let mul a b =
  let itv =
    match (a.itv, b.itv) with
    | Some (lo1, hi1), Some (lo2, hi2)
      when Int64.equal hi2 0L
           || Int64.compare hi1 (Int64.div itv_cap (max hi2 1L)) <= 0 ->
      Some (Int64.mul lo1 lo2, Int64.mul hi1 hi2)
    | _ -> None
  in
  (* two sound congruences; keep whichever knows more:
     (1) the product of the operands' known power-of-two divisors divides
         the result;
     (2) modulo min(m1, m2) the product is r1 * r2. *)
  let p = min align_cap (Int64.mul (known_pow2_divisor a) (known_pow2_divisor b)) in
  let m2, r2 = mk_cong (min a.modulus b.modulus) (Int64.mul a.rem b.rem) in
  let modulus, rem = if Int64.compare p m2 > 0 then (p, 0L) else (m2, r2) in
  { itv; modulus; rem }

let shl a b =
  match is_const b with
  | Some k when Int64.compare k 0L >= 0 && Int64.compare k 62L < 0 ->
    let k = Int64.to_int k in
    let itv =
      match a.itv with
      | Some (lo, hi)
        when Int64.compare hi (Int64.shift_right_logical itv_cap k) < 0 ->
        Some (Int64.shift_left lo k, Int64.shift_left hi k)
      | _ -> None
    in
    let modulus, rem =
      mk_cong (min align_cap (Int64.shift_left a.modulus k))
        (Int64.shift_left a.rem k)
    in
    { itv; modulus; rem }
  | _ ->
    (* unknown non-negative shift still preserves divisibility *)
    { top with modulus = known_pow2_divisor a; rem = 0L }

let lshr a b =
  match (is_const b, a.itv) with
  | Some k, Some (lo, hi) when Int64.compare k 0L >= 0 && Int64.compare k 63L <= 0
    ->
    let k = Int64.to_int k in
    {
      top with
      itv = Some (Int64.shift_right_logical lo k, Int64.shift_right_logical hi k);
    }
  | _ -> top

(* x land mask with a low mask (mask + 1 a power of two) is x mod (mask+1) *)
let is_low_mask m =
  Int64.compare m 0L >= 0
  && Int64.equal (Int64.logand (Int64.add m 1L) m) 0L

let band a b =
  let low_mask_case v m =
    (* v land m, with m a low mask *)
    let itv =
      match v.itv with
      | Some (_, hi) when Int64.compare hi m <= 0 -> v.itv
      | _ when in_itv_range m -> Some (0L, m)
      | _ -> None
    in
    let modulus, rem = mk_cong (min v.modulus (Int64.add m 1L)) v.rem in
    { itv; modulus; rem }
  in
  match (is_const a, is_const b) with
  | _, Some m when is_low_mask m -> low_mask_case a m
  | Some m, _ when is_low_mask m -> low_mask_case b m
  | _ ->
    let itv =
      match (a.itv, b.itv) with
      | Some (_, hi1), Some (_, hi2) -> Some (0L, min hi1 hi2)
      | Some (_, hi), None | None, Some (_, hi) -> Some (0L, hi)
      | None, None -> None
    in
    { itv; modulus = 1L; rem = 0L }

(* zext n = keep the low n bits *)
let zext n a =
  if n >= 62 then { top with modulus = a.modulus; rem = a.rem }
  else band a (const (Int64.sub (Int64.shift_left 1L n) 1L))

(* sext n preserves the low n bits; the unsigned interval survives only
   when the sign bit can never be set *)
let sext n a =
  let m = if n >= 12 then a.modulus else min a.modulus (Int64.shift_left 1L n) in
  let modulus, rem = mk_cong m a.rem in
  let itv =
    match a.itv with
    | Some (_, hi)
      when n < 62 && Int64.compare hi (Int64.shift_left 1L (n - 1)) < 0 ->
      a.itv
    | _ -> None
  in
  { itv; modulus; rem }

(* comparison operators produce 0 or 1 *)
let bool_val = { itv = Some (0L, 1L); modulus = 1L; rem = 0L }

let eval_bin (op : Ir.binop) a b =
  match op with
  | Add -> add a b
  | Sub -> sub a b
  | Mul -> mul a b
  | Shl -> shl a b
  | Lshr -> lshr a b
  | And -> band a b
  | Eq | Ne | Lts | Ltu | Les | Leu -> bool_val
  | Mulhs | Mulhu | Divs | Divu | Rems | Remu | Or | Xor | Ashr | Ror -> top

let eval_un (op : Ir.unop) a =
  match op with
  | Zext n -> zext n a
  | Sext n -> sext n a
  | Bool_not -> bool_val
  | Popcount | Clz | Ctz -> { top with itv = Some (0L, 64L) }
  | Neg | Not -> top

(* ------------------------------------------------------------------ *)
(* Effect domain                                                       *)
(* ------------------------------------------------------------------ *)

(** What a program may (and for cells, must) do. All components are
    over-approximations except [must_writes] and [must_fault], which are
    under-approximations — the sound directions for their consumers
    (exposed-read and liveness questions use must-writes as kills;
    "cannot retire" claims use must-fault). *)
type effects = {
  reads : Iset.t;
      (** cells whose incoming value may be observed (read before any
          must-write on some path) *)
  reads_all : Iset.t;  (** cells read anywhere *)
  writes : Iset.t;  (** cells possibly written *)
  must_writes : Iset.t;  (** cells written on every path *)
  reg_reads : Iset.t;  (** register classes read via [Reg_read] *)
  reg_writes : Iset.t;  (** register classes written *)
  loads : bool;
  stores : bool;
  ctrl : bool;  (** may assign [next_pc] *)
  syscall : bool;
  halt : bool;
  faults : bool;  (** may raise a fault *)
  must_fault : bool;  (** raises a fault on every path *)
}

let no_effects =
  {
    reads = Iset.empty;
    reads_all = Iset.empty;
    writes = Iset.empty;
    must_writes = Iset.empty;
    reg_reads = Iset.empty;
    reg_writes = Iset.empty;
    loads = false;
    stores = false;
    ctrl = false;
    syscall = false;
    halt = false;
    faults = false;
    must_fault = false;
  }

(** Sequential composition of effect summaries for programs analyzed on
    the same threaded {!path} (the path already accounts for kills, so
    exposed reads concatenate). *)
let compose a b =
  {
    reads = Iset.union a.reads b.reads;
    reads_all = Iset.union a.reads_all b.reads_all;
    writes = Iset.union a.writes b.writes;
    must_writes = Iset.union a.must_writes b.must_writes;
    reg_reads = Iset.union a.reg_reads b.reg_reads;
    reg_writes = Iset.union a.reg_writes b.reg_writes;
    loads = a.loads || b.loads;
    stores = a.stores || b.stores;
    ctrl = a.ctrl || b.ctrl;
    syscall = a.syscall || b.syscall;
    halt = a.halt || b.halt;
    faults = a.faults || b.faults;
    must_fault = a.must_fault || b.must_fault;
  }

(** An effect beyond cell writes: memory, registers, control, faults,
    syscalls — what "purity" means for an address-generation action. *)
let architected_effect e =
  e.stores || not (Iset.is_empty e.reg_writes) || e.syscall || e.halt

(** One abstractly-observed access, for range and alignment checks. *)
type reg_access = { ra_cls : int; ra_index : aval; ra_write : bool }
type mem_access = { ma_width : Ir.width; ma_addr : aval; ma_store : bool }

(** Full analysis result for one program (or composed chain). *)
type result = {
  effects : effects;
  reg_acc : reg_access list;  (** in program order *)
  mem_acc : mem_access list;  (** in program order; includes loads *)
}

let no_result = { effects = no_effects; reg_acc = []; mem_acc = [] }

let compose_result a b =
  {
    effects = compose a.effects b.effects;
    reg_acc = a.reg_acc @ b.reg_acc;
    mem_acc = a.mem_acc @ b.mem_acc;
  }

(* ------------------------------------------------------------------ *)
(* The walk                                                            *)
(* ------------------------------------------------------------------ *)

(** Threaded abstract state: per-cell values plus the must-written set.
    Reused across programs so values flow between a sequence's actions. *)
type path = { vals : aval array; mutable killed : Iset.t }

let fresh_path ~n_cells = { vals = Array.make n_cells top; killed = Iset.empty }

type acc = {
  mutable a_reads : Iset.t;
  mutable a_reads_all : Iset.t;
  mutable a_writes : Iset.t;
  mutable a_reg_reads : Iset.t;
  mutable a_reg_writes : Iset.t;
  mutable a_loads : bool;
  mutable a_stores : bool;
  mutable a_ctrl : bool;
  mutable a_syscall : bool;
  mutable a_halt : bool;
  mutable a_faults : bool;
  mutable a_reg_acc : reg_access list;
  mutable a_mem_acc : mem_access list;
}

let rec eval_expr (acc : acc) (path : path) : Ir.expr -> aval = function
  | Const v -> const v
  | Cell c ->
    acc.a_reads_all <- Iset.add c acc.a_reads_all;
    if not (Iset.mem c path.killed) then acc.a_reads <- Iset.add c acc.a_reads;
    path.vals.(c)
  | Enc { len; signed; _ } -> enc_field ~len ~signed
  | Pc | Next_pc -> top
  | Bin (op, a, b) ->
    let va = eval_expr acc path a in
    let vb = eval_expr acc path b in
    eval_bin op va vb
  | Un (op, a) -> eval_un op (eval_expr acc path a)
  | Ite (c, a, b) ->
    ignore (eval_expr acc path c);
    join (eval_expr acc path a) (eval_expr acc path b)
  | Load { addr; width; _ } ->
    let va = eval_expr acc path addr in
    acc.a_loads <- true;
    acc.a_mem_acc <- { ma_width = width; ma_addr = va; ma_store = false } :: acc.a_mem_acc;
    top
  | Reg_read { cls; index } ->
    let vi = eval_expr acc path index in
    acc.a_reg_reads <- Iset.add cls acc.a_reg_reads;
    acc.a_reg_acc <- { ra_cls = cls; ra_index = vi; ra_write = false } :: acc.a_reg_acc;
    top

(* returns whether the statement faults on every path *)
let rec exec_stmt (acc : acc) (path : path) : Ir.stmt -> bool = function
  | Set_cell (c, e) ->
    let v = eval_expr acc path e in
    path.vals.(c) <- v;
    path.killed <- Iset.add c path.killed;
    acc.a_writes <- Iset.add c acc.a_writes;
    false
  | Store { width; addr; value } ->
    let va = eval_expr acc path addr in
    ignore (eval_expr acc path value);
    acc.a_stores <- true;
    acc.a_mem_acc <- { ma_width = width; ma_addr = va; ma_store = true } :: acc.a_mem_acc;
    false
  | Set_next_pc e ->
    ignore (eval_expr acc path e);
    acc.a_ctrl <- true;
    false
  | Reg_write { cls; index; value } ->
    let vi = eval_expr acc path index in
    ignore (eval_expr acc path value);
    acc.a_reg_writes <- Iset.add cls acc.a_reg_writes;
    acc.a_reg_acc <- { ra_cls = cls; ra_index = vi; ra_write = true } :: acc.a_reg_acc;
    false
  | If (c, t, f) ->
    ignore (eval_expr acc path c);
    let path_t = { vals = Array.copy path.vals; killed = path.killed } in
    let path_f = { vals = Array.copy path.vals; killed = path.killed } in
    let ft = exec_block acc path_t t in
    let ff = exec_block acc path_f f in
    Array.iteri
      (fun i _ -> path.vals.(i) <- join path_t.vals.(i) path_f.vals.(i))
      path.vals;
    path.killed <- Iset.inter path_t.killed path_f.killed;
    ft && ff
  | Fault_illegal | Fault_arith _ ->
    acc.a_faults <- true;
    true
  | Fault_unaligned e ->
    ignore (eval_expr acc path e);
    acc.a_faults <- true;
    true
  | Syscall ->
    acc.a_syscall <- true;
    false
  | Halt ->
    acc.a_halt <- true;
    false

and exec_block acc path stmts =
  List.fold_left (fun f s -> exec_stmt acc path s || f) false stmts

(** [analyze path p] walks [p] starting from (and updating) [path],
    returning the effects and accesses of [p] alone. Exposed reads are
    relative to the path: a cell a previous program must-wrote is not
    exposed here. *)
let analyze (path : path) (p : Ir.program) : result =
  let acc =
    {
      a_reads = Iset.empty;
      a_reads_all = Iset.empty;
      a_writes = Iset.empty;
      a_reg_reads = Iset.empty;
      a_reg_writes = Iset.empty;
      a_loads = false;
      a_stores = false;
      a_ctrl = false;
      a_syscall = false;
      a_halt = false;
      a_faults = false;
      a_reg_acc = [];
      a_mem_acc = [];
    }
  in
  let killed_before = path.killed in
  let must_fault = exec_block acc path p in
  {
    effects =
      {
        reads = acc.a_reads;
        reads_all = acc.a_reads_all;
        writes = acc.a_writes;
        must_writes = Iset.diff path.killed killed_before;
        reg_reads = acc.a_reg_reads;
        reg_writes = acc.a_reg_writes;
        loads = acc.a_loads;
        stores = acc.a_stores;
        ctrl = acc.a_ctrl;
        syscall = acc.a_syscall;
        halt = acc.a_halt;
        faults = acc.a_faults;
        must_fault;
      };
    reg_acc = List.rev acc.a_reg_acc;
    mem_acc = List.rev acc.a_mem_acc;
  }

(** [analyze_program ~n_cells p] — one-shot analysis from a fresh path. *)
let analyze_program ~n_cells (p : Ir.program) : result =
  analyze (fresh_path ~n_cells) p

(** Cells whose incoming value a program may observe, with must-write
    kills (a write under only one branch of an [If] does not hide a
    later read). This is the sound version of the synthesizer's
    carried-cell question. *)
let exposed_reads ~n_cells (p : Ir.program) : Iset.t =
  (analyze_program ~n_cells p).effects.reads

(** Provably misaligned access: the congruence proves the address is
    never a multiple of the access width. *)
let misaligned (m : mem_access) =
  let b = Int64.of_int (Ir.bytes_of_width m.ma_width) in
  Int64.compare b 1L > 0
  && Int64.compare m.ma_addr.modulus b >= 0
  && not (Int64.equal (Int64.logand m.ma_addr.rem (Int64.sub b 1L)) 0L)

let pp_aval ppf a =
  (match a.itv with
  | Some (lo, hi) when Int64.equal lo hi -> Format.fprintf ppf "{%Ld}" lo
  | Some (lo, hi) -> Format.fprintf ppf "[%Ld,%Ld]" lo hi
  | None -> Format.pp_print_string ppf "[?]");
  if Int64.compare a.modulus 1L > 0 then
    Format.fprintf ppf " ≡%Ld (mod %Ld)" a.rem a.modulus
