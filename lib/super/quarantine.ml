(** Quarantine directory: deterministic failures are persisted as
    replayable artifacts instead of aborting the campaign.

    The directory holds self-describing files — fuzz reproducers in the
    [Fuzz.Repro] text format (replayable with [lisim fuzz --replay]) and
    [.case] command files for injection cells. Names are derived from
    the case id; collisions get a numeric suffix rather than clobbering
    an earlier artifact. *)

type t = { q_dir : string }

let rec mkdir_p dir =
  if not (Sys.file_exists dir) then begin
    mkdir_p (Filename.dirname dir);
    try Unix.mkdir dir 0o755 with Unix.Unix_error (Unix.EEXIST, _, _) -> ()
  end

let create ~dir =
  mkdir_p dir;
  { q_dir = dir }

let dir t = t.q_dir

(* case ids contain '/'; flatten them into safe file names *)
let sanitize name =
  String.map
    (fun c ->
      match c with
      | 'a' .. 'z' | 'A' .. 'Z' | '0' .. '9' | '-' | '_' | '.' -> c
      | _ -> '_')
    name

(** [put t ~name ~contents] writes one artifact and returns its path.
    An existing file with the same name is never overwritten; the new
    artifact gets a [-2], [-3], ... suffix before the extension. *)
let put t ~name ~contents =
  let name = sanitize name in
  let base, ext =
    match Filename.extension name with
    | "" -> (name, "")
    | e -> (Filename.remove_extension name, e)
  in
  let rec pick k =
    let candidate =
      if k = 1 then Filename.concat t.q_dir (base ^ ext)
      else Filename.concat t.q_dir (Printf.sprintf "%s-%d%s" base k ext)
    in
    if Sys.file_exists candidate then pick (k + 1) else candidate
  in
  let path = pick 1 in
  let oc = open_out path in
  output_string oc contents;
  close_out oc;
  path

let list t =
  if Sys.file_exists t.q_dir then
    Sys.readdir t.q_dir |> Array.to_list |> List.sort String.compare
  else []

let count t = List.length (list t)
