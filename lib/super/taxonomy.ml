(** Structured failure taxonomy for supervised execution.

    Every exception escaping a campaign case is classified into one of
    three severities, which decide the supervisor's reaction:

    - {b Transient} — host-side conditions that can legitimately pass on
      a retry: wall-clock trips (the machine was slow, not the case),
      out-of-memory, I/O errors. Retried with exponential backoff.
    - {b Deterministic} — the case itself is bad and will fail the same
      way every time: instruction-budget or no-progress watchdog trips,
      engine invariant violations, interface/synthesis misuse. Never
      retried; persisted to quarantine as a replayable reproducer.
    - {b Fatal} — unclassified exceptions. Counted and re-raised: the
      supervisor must not convert an unknown crash into silent progress.

    The classification keys on {!Machine.Sim_error} components and on
    the watchdog's structured "reason" context, so it stays stable as
    message texts evolve. *)

type severity = Transient | Deterministic | Fatal

let severity_to_string = function
  | Transient -> "transient"
  | Deterministic -> "deterministic"
  | Fatal -> "fatal"

(** One classified failure: a stable dotted kind tag (for journals and
    counters) plus a one-line human detail. *)
type failure = { f_severity : severity; f_kind : string; f_detail : string }

let starts_with ~prefix s =
  String.length s >= String.length prefix
  && String.equal (String.sub s 0 (String.length prefix)) prefix

let of_sim_error (e : Machine.Sim_error.t) : failure =
  let detail = Machine.Sim_error.one_line e in
  match e.component with
  | "watchdog" ->
    let reason =
      match List.assoc_opt "reason" e.context with Some r -> r | None -> ""
    in
    if starts_with ~prefix:"wall-clock" reason then
      { f_severity = Transient; f_kind = "watchdog.wall_clock"; f_detail = detail }
    else if starts_with ~prefix:"no forward progress" reason then
      {
        f_severity = Deterministic;
        f_kind = "watchdog.no_progress";
        f_detail = detail;
      }
    else
      { f_severity = Deterministic; f_kind = "watchdog.budget"; f_detail = detail }
  | "engine" ->
    { f_severity = Deterministic; f_kind = "engine.invariant"; f_detail = detail }
  | "super" ->
    { f_severity = Deterministic; f_kind = "super.ladder"; f_detail = detail }
  | c -> { f_severity = Deterministic; f_kind = "sim." ^ c; f_detail = detail }

(** [classify exn] — the severity and stable kind of an escaped
    exception. Total: unknown exceptions come back as {!Fatal}. *)
let classify : exn -> failure = function
  | Machine.Sim_error.Error e -> of_sim_error e
  | Out_of_memory ->
    { f_severity = Transient; f_kind = "host.oom"; f_detail = "out of memory" }
  | Sys_error m ->
    { f_severity = Transient; f_kind = "host.io"; f_detail = m }
  | Unix.Unix_error (err, fn, arg) ->
    {
      f_severity = Transient;
      f_kind = "host.io";
      f_detail = Printf.sprintf "%s: %s %s" fn (Unix.error_message err) arg;
    }
  | Stack_overflow ->
    {
      f_severity = Deterministic;
      f_kind = "host.stack_overflow";
      f_detail = "stack overflow";
    }
  | exn ->
    { f_severity = Fatal; f_kind = "exn"; f_detail = Printexc.to_string exn }

let pp_failure ppf f =
  Format.fprintf ppf "%s [%s]: %s"
    (severity_to_string f.f_severity)
    f.f_kind f.f_detail
