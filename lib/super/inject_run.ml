(** Supervised fault-injection campaigns: one journaled case per ISA
    cell, resumable after a kill, deterministic failures quarantined as
    replay command files instead of aborting the whole campaign. *)

type cell = {
  c_isa : string;
  c_case : string;
  c_skipped : bool;  (** satisfied from the journal on resume *)
  c_report : Inject.Campaign.report option;  (** [None] unless run here *)
  c_failure : Taxonomy.failure option;
}

let case_id (cfg : Inject.Campaign.config) ~isa ~kernel =
  Printf.sprintf "inject/%s/%s/%s/0x%Lx/%g" isa kernel cfg.buildset cfg.seed
    cfg.rate

(* A quarantined cell is replayable by hand: the artifact records the
   exact CLI invocation that deterministically reproduces the failure. *)
let replay_command (cfg : Inject.Campaign.config) ~isa ~kernel =
  Printf.sprintf
    "lisim inject --isa %s --kernel %s --buildset %s --seed 0x%Lx --rate %g \
     --budget %d\n"
    isa kernel cfg.buildset cfg.seed cfg.rate cfg.budget

(* What a worker ships back for one executed cell: the report or the
   classified failure. Journal/quarantine writes stay on the collector. *)
type cell_out =
  | O_done of Inject.Campaign.report * int
  | O_gave_up of Taxonomy.failure * int

(** [metrics] attaches a periodic-telemetry series, ticked once per cell
    against the campaign's observability context (see
    {!Fuzz.Campaign.run} for the contract — the caller owns open/close).

    [fleet] spreads the per-ISA cells over a domain pool: each cell runs
    against its worker's domain-local {!Obs} mirror (merged back at
    join), the collector journals completions, and the returned cell
    list stays in [isas] order. A one-domain fleet (or none) runs the
    original sequential loop. *)
let run ?(isas = [ "alpha"; "arm"; "ppc" ]) ?(kernel = "sort") ?obs ?stats
    ?metrics ?(super = Supervisor.default) ?fleet ~journal ~quarantine
    ?(resume = false) (cfg : Inject.Campaign.config) : cell list =
  let mobs = match obs with Some o -> o | None -> Obs.create () in
  let tick_metrics () =
    match metrics with Some m -> Obs.metrics_tick m mobs | None -> ()
  in
  let view =
    if resume then Journal.load ~path:journal else Journal.empty_view ()
  in
  let q = Quarantine.create ~dir:quarantine in
  let w =
    Journal.open_ ~path:journal
      ~meta:
        [
          ("campaign", Obs.Export.Str "inject");
          ("kernel", Obs.Export.Str kernel);
          ("seed", Obs.Export.Str (Printf.sprintf "0x%Lx" cfg.seed));
          ("budget", Obs.Export.Int (Int64.of_int cfg.budget));
        ]
  in
  let scfg = { super with Supervisor.seed = cfg.seed } in
  let skipped_cell isa case =
    { c_isa = isa; c_case = case; c_skipped = true; c_report = None; c_failure = None }
  in
  (* The collector-side bookkeeping for one finished cell — identical on
     the sequential and fleet paths, so journal bytes and quarantine
     artifacts match. *)
  let settle isa case out =
    let cell =
      match out with
      | O_done (r, attempts) ->
        Journal.record w
          (Journal.entry ~attempts ~outcome:Journal.Pass
             ~detail:
               (Printf.sprintf "coverage %.3f, demotions %d"
                  (Inject.Campaign.coverage r)
                  r.Inject.Campaign.r_demotions)
             case);
        {
          c_isa = isa;
          c_case = case;
          c_skipped = false;
          c_report = Some r;
          c_failure = None;
        }
      | O_gave_up (f, attempts) ->
        let outcome, detail =
          match f.Taxonomy.f_severity with
          | Taxonomy.Deterministic ->
            let path =
              Quarantine.put q ~name:(case ^ ".case")
                ~contents:
                  (Printf.sprintf "# %s\n%s" f.Taxonomy.f_detail
                     (replay_command cfg ~isa ~kernel))
            in
            Option.iter
              (fun s -> Obs.Registry.incr s.Supervisor.s_quarantined)
              stats;
            (Journal.Quarantined, f.Taxonomy.f_kind ^ " -> " ^ path)
          | _ -> (Journal.Gave_up, f.Taxonomy.f_kind)
        in
        Journal.record w (Journal.entry ~attempts ~outcome ~detail case);
        {
          c_isa = isa;
          c_case = case;
          c_skipped = false;
          c_report = None;
          c_failure = Some f;
        }
    in
    tick_metrics ();
    cell
  in
  let run_one ?obs ?stats ~index isa =
    match
      Supervisor.run_case ?stats scfg ~index (fun ~deadline:_ ->
          match Inject.Campaign.run ~isas:[ isa ] ~kernel ?obs cfg with
          | [ r ] -> r
          | rs -> List.hd rs)
    with
    | Supervisor.Done (r, attempts) -> O_done (r, attempts)
    | Supervisor.Gave_up (f, attempts) -> O_gave_up (f, attempts)
  in
  let cells =
    match fleet with
    | Some fl when Fleet.jobs fl > 1 ->
      (* force every ISA's spec on the collector before fan-out:
         concurrent [Lazy.force] is undefined in OCaml 5 *)
      List.iter
        (fun isa ->
          ignore (Lazy.force (Workload.find_target isa).Workload.spec))
        isas;
      let isas = Array.of_list isas in
      let todo =
        Array.of_list
          (List.filter
             (fun i ->
               not
                 (Journal.is_complete view (case_id cfg ~isa:isas.(i) ~kernel)))
             (List.init (Array.length isas) Fun.id))
      in
      let out =
        Array.init (Array.length isas) (fun i ->
            skipped_cell isas.(i) (case_id cfg ~isa:isas.(i) ~kernel))
      in
      let workers =
        Array.init (Fleet.jobs fl) (fun _ -> Supervisor.worker_ctx ?obs ?stats ())
      in
      let finish () =
        Array.iter (Supervisor.join_worker_ctx ?obs ?stats ~into:mobs) workers
      in
      (try
         Fleet.run fl ~workers
           ~tasks:
             (Array.map
                (fun i (ws : Supervisor.worker_ctx) ->
                  run_one ?obs:ws.Supervisor.wc_obs
                    ?stats:ws.Supervisor.wc_stats ~index:(Int64.of_int i)
                    isas.(i))
                todo)
           ~complete:(fun t o ->
             let i = todo.(t) in
             out.(i) <- settle isas.(i) (case_id cfg ~isa:isas.(i) ~kernel) o)
       with exn ->
         finish ();
         Journal.close w;
         raise exn);
      finish ();
      Array.to_list out
    | _ ->
      List.mapi
        (fun i isa ->
          let case = case_id cfg ~isa ~kernel in
          if Journal.is_complete view case then begin
            let cell = skipped_cell isa case in
            tick_metrics ();
            cell
          end
          else settle isa case (run_one ?obs ?stats ~index:(Int64.of_int i) isa))
        isas
  in
  Journal.close w;
  cells

let pp_cells ppf (cells : cell list) =
  List.iter
    (fun c ->
      match (c.c_skipped, c.c_report, c.c_failure) with
      | true, _, _ -> Format.fprintf ppf "%s: resumed from journal@\n" c.c_case
      | _, Some r, _ -> Inject.Campaign.pp_report ppf r
      | _, _, Some f ->
        Format.fprintf ppf "%s: %a@\n" c.c_case Taxonomy.pp_failure f
      | _ -> ())
    cells
