(** Durable campaign journal: one JSON object per line, appended and
    flushed after every completed case.

    The journal is the supervisor's crash-safety story. A campaign that
    is killed mid-run (SIGKILL, OOM, power) leaves behind a prefix of
    complete lines plus at most one torn final line; [load] tolerates
    the torn tail, and a rerun with [--resume] skips exactly the cases
    whose outcome lines survived. Case ids are deterministic functions
    of the campaign parameters (seed, index, buildset), so skipped cases
    still consume their slot in the generation sequence and the resumed
    run covers the same case window as an uninterrupted one.

    Line shapes (version 1):

    {v
    {"v":1,"kind":"meta","campaign":"fuzz","isa":"tiny","seed":"0x2a","budget":200}
    {"v":1,"kind":"case","case":"fuzz/tiny/0x2a/17/block_min","outcome":"ok","attempts":1}
    {"v":1,"kind":"case","case":"...","outcome":"quarantined","attempts":1,
     "digest":"0x1234","level":"step_all","detail":"quarantine/....repro"}
    v}

    Unknown keys are ignored on read; unknown or torn lines are counted
    but never fatal. *)

let version = 1

type outcome = Pass | Quarantined | Gave_up

let outcome_to_string = function
  | Pass -> "ok"
  | Quarantined -> "quarantined"
  | Gave_up -> "gave-up"

let outcome_of_string = function
  | "ok" -> Some Pass
  | "quarantined" -> Some Quarantined
  | "gave-up" -> Some Gave_up
  | _ -> None

type entry = {
  e_case : string;  (** deterministic case id, unique within a campaign *)
  e_outcome : outcome;
  e_attempts : int;
  e_digest : int64 option;  (** architectural digest at case end, if taken *)
  e_level : string option;  (** final degradation level, if a session ran *)
  e_detail : string option;  (** free-form: reproducer path, failure kind *)
}

let entry ?digest ?level ?detail ~attempts ~outcome case =
  {
    e_case = case;
    e_outcome = outcome;
    e_attempts = attempts;
    e_digest = digest;
    e_level = level;
    e_detail = detail;
  }

(* ------------------------------------------------------------------ *)
(* Writer                                                              *)
(* ------------------------------------------------------------------ *)

type writer = { w_path : string; w_oc : out_channel }

let json_of_entry (e : entry) : Obs.Export.json =
  let opt k f = function Some v -> [ (k, f v) ] | None -> [] in
  Obs.Export.Obj
    ([
       ("v", Obs.Export.Int (Int64.of_int version));
       ("kind", Obs.Export.Str "case");
       ("case", Obs.Export.Str e.e_case);
       ("outcome", Obs.Export.Str (outcome_to_string e.e_outcome));
       ("attempts", Obs.Export.Int (Int64.of_int e.e_attempts));
     ]
    @ opt "digest" (fun d -> Obs.Export.Str (Printf.sprintf "0x%Lx" d)) e.e_digest
    @ opt "level" (fun l -> Obs.Export.Str l) e.e_level
    @ opt "detail" (fun d -> Obs.Export.Str d) e.e_detail)

(** [open_ ~path ~meta] opens [path] for appending, creating it (and
    writing one meta line from the [meta] key/value pairs) when absent
    or empty. Appending to an existing journal never rewrites history. *)
let open_ ~path ~(meta : (string * Obs.Export.json) list) : writer =
  let fresh =
    (not (Sys.file_exists path)) || (Unix.stat path).Unix.st_size = 0
  in
  let oc =
    open_out_gen [ Open_append; Open_creat; Open_wronly ] 0o644 path
  in
  if fresh then begin
    let line =
      Obs.Export.to_string
        (Obs.Export.Obj
           (("v", Obs.Export.Int (Int64.of_int version))
           :: ("kind", Obs.Export.Str "meta")
           :: meta))
    in
    output_string oc line;
    output_char oc '\n';
    flush oc
  end;
  { w_path = path; w_oc = oc }

(** Append one case line and flush it, so a kill after [record] never
    loses the case. *)
let record (w : writer) (e : entry) =
  output_string w.w_oc (Obs.Export.to_string (json_of_entry e));
  output_char w.w_oc '\n';
  flush w.w_oc

let close (w : writer) = close_out w.w_oc

(* ------------------------------------------------------------------ *)
(* Reader                                                              *)
(* ------------------------------------------------------------------ *)

type view = {
  v_entries : entry list;  (** journal order *)
  v_completed : (string, outcome) Hashtbl.t;
  v_torn : int;  (** unparsable lines tolerated (torn tail, corruption) *)
}

let empty_view () =
  { v_entries = []; v_completed = Hashtbl.create 16; v_torn = 0 }

let entry_of_json (j : Obs.Export.json) : entry option =
  match Obs.Export.member_string "kind" j with
  | Some "case" -> (
    match
      ( Obs.Export.member_string "case" j,
        Option.bind (Obs.Export.member_string "outcome" j) outcome_of_string )
    with
    | Some case, Some outcome ->
      let attempts =
        match Obs.Export.member_int "attempts" j with
        | Some n -> Int64.to_int n
        | None -> 1
      in
      let digest =
        Option.bind (Obs.Export.member_string "digest" j) Int64.of_string_opt
      in
      Some
        {
          e_case = case;
          e_outcome = outcome;
          e_attempts = attempts;
          e_digest = digest;
          e_level = Obs.Export.member_string "level" j;
          e_detail = Obs.Export.member_string "detail" j;
        }
    | _ -> None)
  | _ -> None

(** [load ~path] reads a journal back. A missing file is an empty view;
    meta lines are skipped; torn or foreign lines are counted in
    [v_torn] and otherwise ignored. *)
let load ~path : view =
  if not (Sys.file_exists path) then empty_view ()
  else begin
    let ic = open_in path in
    let completed = Hashtbl.create 64 in
    let entries = ref [] in
    let torn = ref 0 in
    (try
       while true do
         let line = input_line ic in
         if String.length (String.trim line) > 0 then
           match Obs.Export.parse_opt line with
           | None -> incr torn
           | Some j -> (
             match Obs.Export.member_string "kind" j with
             | Some "meta" -> ()
             | _ -> (
               match entry_of_json j with
               | Some e ->
                 entries := e :: !entries;
                 Hashtbl.replace completed e.e_case e.e_outcome
               | None -> incr torn))
       done
     with End_of_file -> ());
    close_in ic;
    { v_entries = List.rev !entries; v_completed = completed; v_torn = !torn }
  end

(** A case is complete when any outcome line for it survived — passes,
    quarantines and give-ups all count: rerunning them cannot change a
    deterministic outcome, and transient give-ups were already retried. *)
let is_complete (v : view) case = Hashtbl.mem v.v_completed case

let completed_count (v : view) = Hashtbl.length v.v_completed
