(** Case supervisor: runs one campaign case under a deadline with
    bounded, deterministic retry.

    Failures are classified by {!Taxonomy.classify}:

    - transient failures are retried up to [max_attempts] times with
      exponential backoff whose jitter comes from the campaign's
      splitmix PRNG — two runs with the same seed sleep the same
      schedule, keeping supervised campaigns reproducible;
    - deterministic failures are returned immediately as {!Gave_up}
      (the caller quarantines them);
    - fatal (unclassified) failures are re-raised: the supervisor never
      converts an unknown crash into silent progress. *)

type config = {
  seed : int64;  (** campaign seed; jitter derives from it *)
  max_attempts : int;
  backoff_base_s : float;
  backoff_max_s : float;
  case_deadline_s : float option;
      (** per-attempt wall-clock allowance; the case body receives the
          absolute deadline and is expected to poll
          {!Inject.Watchdog.check_deadline} at its preemption points *)
}

let default =
  {
    seed = 0L;
    max_attempts = 3;
    backoff_base_s = 0.05;
    backoff_max_s = 2.0;
    case_deadline_s = None;
  }

(** Supervision counters, shared by the supervised campaign drivers.
    [probe]-registered so several drivers can attach to one registry. *)
type stats = {
  s_cases : Obs.Registry.counter;
  s_retries : Obs.Registry.counter;
  s_transient : Obs.Registry.counter;
  s_gave_up : Obs.Registry.counter;
  s_quarantined : Obs.Registry.counter;
  s_demotions : Obs.Registry.counter;
  s_replays : Obs.Registry.counter;
  s_slices : Obs.Registry.counter;
}

let of_registry (reg : Obs.Registry.t) : stats =
  {
    s_cases = Obs.Registry.counter reg "super.cases";
    s_retries = Obs.Registry.counter reg "super.retries";
    s_transient = Obs.Registry.counter reg "super.transient_failures";
    s_gave_up = Obs.Registry.counter reg "super.gave_up";
    s_quarantined = Obs.Registry.counter reg "super.quarantined";
    s_demotions = Obs.Registry.counter reg "super.demotions";
    s_replays = Obs.Registry.counter reg "super.replays";
    s_slices = Obs.Registry.counter reg "super.slices";
  }

let unregistered () = of_registry (Obs.Registry.create ())

(** Domain-local worker state for fleet-parallel campaign drivers: an
    {!Obs} context mirroring the caller's instrumentation and
    supervision counters registered on that worker's own registry.
    Tasks receive only their executing worker's context, so a
    cross-domain counter increment is unrepresentable — the campaign
    joins workers back with {!join_worker_ctx} when the batch drains. *)
type worker_ctx = {
  wc_obs : Obs.t option;
  wc_stats : stats option;
}

let mirror_obs (o : Obs.t) =
  let prof =
    Option.map
      (fun p -> Obs.Prof.create ~region_bits:(Obs.Prof.region_bits p) ())
      o.Obs.prof
  in
  if o.Obs.full then Obs.create ~trace:(o.Obs.ring <> None) ?prof ()
  else Obs.profile_only ?prof ()

(** [worker_ctx ?obs ?stats ()] — a worker's private mirror of the
    campaign instrumentation: present exactly when the caller's is. *)
let worker_ctx ?obs ?stats () =
  let wc_obs = Option.map mirror_obs obs in
  let wc_stats =
    match stats with
    | None -> None
    | Some _ ->
      let reg =
        match wc_obs with
        | Some o -> o.Obs.reg
        | None -> Obs.Registry.create ()
      in
      Some (of_registry reg)
  in
  { wc_obs; wc_stats }

(** [join_worker_ctx ?obs ?stats ~into ws] folds a worker's counters
    back into the campaign's. With an [obs] context the whole worker
    registry (super.* included, since worker stats register there)
    merges in one {!Obs.merge} into [into]; with only [stats], the
    supervision counters transfer field-by-field. Either way the totals
    are exactly what one domain would have counted. *)
let join_worker_ctx ?obs ?stats ~into (ws : worker_ctx) =
  (match (obs, ws.wc_obs) with
  | Some _, Some wo -> Obs.merge ~into wo
  | _ -> ());
  match (obs, stats, ws.wc_stats) with
  | None, Some (d : stats), Some (s : stats) ->
    let tr get = Obs.Registry.add (get d) (Obs.Registry.get (get s)) in
    tr (fun x -> x.s_cases);
    tr (fun x -> x.s_retries);
    tr (fun x -> x.s_transient);
    tr (fun x -> x.s_gave_up);
    tr (fun x -> x.s_quarantined);
    tr (fun x -> x.s_demotions);
    tr (fun x -> x.s_replays);
    tr (fun x -> x.s_slices)
  | _ -> ()

type 'a outcome =
  | Done of 'a * int  (** result, attempts used *)
  | Gave_up of Taxonomy.failure * int
      (** last failure, attempts used; deterministic failures give up on
          attempt 1, transient ones after [max_attempts] *)

(** Deterministic backoff before retry [attempt] (1-based count of
    failures so far): exponential in the attempt number, capped, scaled
    by a jitter factor in [0.5, 1.5) drawn from the splitmix stream of
    [(seed, index)]. *)
let backoff_delay cfg ~index ~attempt =
  let exp = min cfg.backoff_max_s (cfg.backoff_base_s *. (2. ** float_of_int (attempt - 1))) in
  let jitter =
    0.5 +. Inject.Prng.uniform ~seed:cfg.seed ~index ~salt:(100 + attempt)
  in
  exp *. jitter

(** [run_case ?stats ?sleep cfg ~index f] runs [f ~deadline] under
    supervision. [index] is the case's position in the campaign stream
    (it salts the jitter). [sleep] is injectable for tests.
    @raise exn fatal (unclassified) exceptions are re-raised. *)
let run_case ?stats ?(sleep = Unix.sleepf) (cfg : config) ~index
    (f : deadline:float option -> 'a) : 'a outcome =
  Option.iter (fun s -> Obs.Registry.incr s.s_cases) stats;
  let rec attempt k =
    let deadline =
      Option.map (fun d -> Unix.gettimeofday () +. d) cfg.case_deadline_s
    in
    match f ~deadline with
    | v -> Done (v, k)
    | exception exn -> (
      let failure = Taxonomy.classify exn in
      match failure.Taxonomy.f_severity with
      | Taxonomy.Fatal -> raise exn
      | Taxonomy.Deterministic -> Gave_up (failure, k)
      | Taxonomy.Transient ->
        Option.iter (fun s -> Obs.Registry.incr s.s_transient) stats;
        if k >= cfg.max_attempts then Gave_up (failure, k)
        else begin
          Option.iter (fun s -> Obs.Registry.incr s.s_retries) stats;
          sleep (backoff_delay cfg ~index ~attempt:k);
          attempt (k + 1)
        end)
  in
  let out = attempt 1 in
  (match out with
  | Gave_up _ -> Option.iter (fun s -> Obs.Registry.incr s.s_gave_up) stats
  | Done _ -> ());
  out
