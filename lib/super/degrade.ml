(** Graceful block-engine degradation.

    A degradation session runs a workload through a checked primary
    interface while a [step_all] shadow machine executes the same image
    in lockstep at slice granularity. At every verified slice boundary
    (architectural states byte-agree) a whole-machine checkpoint is
    taken. When the primary misbehaves — an engine invariant trips, it
    stops making progress, or its state diverges from the shadow — the
    session does not abort: it restores both machines to the last
    verified boundary and re-synthesizes the primary one rung down the
    demotion ladder

    {v full  →  no-chain  →  no-site-cache  →  step_all v}

    then replays the slice. The ladder always ends at the reference
    buildset, whose semantics are the conformance oracle itself, so a
    defective translation cache degrades a campaign to interpreter speed
    instead of killing it. Exhausting the ladder (the reference level
    itself fails) raises a ["super"] {!Machine.Sim_error} — exit code 6.

    [force_demote_at] demotes once at the first verified boundary after
    the given instruction count even when nothing is wrong. The
    conformance property behind it: a session demoted at an arbitrary
    boundary must finish with the same architectural digest as an
    uninterrupted run. *)

open Machine

type level = {
  lv_name : string;
  lv_buildset : string;
  lv_chain : bool;
  lv_site : bool;
  lv_mutate : Specsim.Synth.mutation option;
      (** seeded defects survive block-level demotions (they model a bug
          in the block engine itself) and drop off at the reference level *)
}

(** The demotion ladder for [buildset], deduplicating rungs that the
    starting flags already disable. Non-block buildsets have no cache
    machinery to shed, so their ladder is just [buildset → reference]. *)
let ladder (spec : Lis.Spec.t) ~buildset ~chain ~site_cache ~mutate ~reference
    : level list =
  let bs = Lis.Spec.find_buildset spec buildset in
  let full =
    {
      lv_name = "full";
      lv_buildset = buildset;
      lv_chain = chain;
      lv_site = site_cache;
      lv_mutate = mutate;
    }
  in
  let reference_level =
    {
      lv_name = reference;
      lv_buildset = reference;
      lv_chain = false;
      lv_site = false;
      lv_mutate = None;
    }
  in
  if String.equal buildset reference then [ reference_level ]
  else if not bs.Lis.Spec.bs_block then [ full; reference_level ]
  else begin
    let block_levels =
      [
        full;
        { full with lv_name = "no-chain"; lv_chain = false };
        { full with lv_name = "no-site-cache"; lv_chain = false; lv_site = false };
      ]
    in
    let rec dedup = function
      | a :: b :: rest ->
        if a.lv_chain = b.lv_chain && a.lv_site = b.lv_site then a :: dedup rest
        else a :: dedup (b :: rest)
      | rest -> rest
    in
    dedup block_levels @ [ reference_level ]
  end

type t = {
  d_spec : Lis.Spec.t;
  d_levels : level array;
  mutable d_idx : int;
  d_st : State.t;  (** primary machine *)
  mutable d_iface : Specsim.Iface.t;  (** primary interface, re-synthesized on demote *)
  d_shadow_st : State.t;
  d_shadow : Specsim.Iface.t;  (** trusted [reference] lockstep shadow *)
  mutable d_ckpt : string;  (** state at the last verified slice boundary *)
  d_obs : Obs.t option;
  d_stats : Supervisor.stats option;
}

let level_name t = t.d_levels.(t.d_idx).lv_name

(** The primary machine (re-synthesized interfaces share it). *)
let primary_state t = t.d_st

(** The trusted shadow machine; its architectural state is the session's
    verified result (exit status, output, digest). *)
let shadow_state t = t.d_shadow_st

let synth_level ?obs ~st spec (lv : level) =
  Specsim.Synth.make ?obs ?mutate:lv.lv_mutate ~chain:lv.lv_chain
    ~site_cache:lv.lv_site ~st spec lv.lv_buildset

(** [create ~spec ~buildset ~load ()] prepares a session. [load] must
    fully prepare a machine for the workload — image, OS emulation,
    reset — and is applied identically to the primary and the shadow. *)
let create ?obs ?stats ?mutate ?(chain = true) ?(site_cache = true)
    ?(reference = "step_all") ~spec ~buildset ~(load : State.t -> unit) () : t
    =
  let levels =
    Array.of_list (ladder spec ~buildset ~chain ~site_cache ~mutate ~reference)
  in
  let st = Lis.Spec.make_machine spec in
  let sst = Lis.Spec.make_machine spec in
  load st;
  load sst;
  {
    d_spec = spec;
    d_levels = levels;
    d_idx = 0;
    d_st = st;
    d_iface = synth_level ?obs ~st spec levels.(0);
    d_shadow_st = sst;
    d_shadow = Specsim.Synth.make ~st:sst spec reference;
    d_ckpt = Checkpoint.save sst;
    d_obs = obs;
    d_stats = stats;
  }

let states_agree (p : State.t) (s : State.t) =
  Bool.equal p.halted s.halted
  && Option.equal Fault.equal p.fault s.fault
  && Int64.equal p.instr_count s.instr_count
  && Regfile.equal p.regs s.regs
  && Memory.equal_contents p.mem s.mem
  (* the block engine leaves the pc at the block entry on halt *)
  && (p.halted || Int64.equal p.pc s.pc)

(** Bring the shadow up to the primary's retirement count. The block
    engine overshoots slice requests to block boundaries; the shadow
    executes exact counts, so catching up is one-directional — except
    that a halting instruction retires nothing, so at equal counts the
    still-running machine owes exactly one more (halting) instruction. *)
let sync t =
  let p = t.d_st and s = t.d_shadow_st in
  let continue = ref true in
  while !continue do
    let d = Int64.sub p.instr_count s.instr_count in
    if Int64.compare d 0L > 0 && not s.halted then
      ignore (t.d_shadow.Specsim.Iface.run_fast (Int64.to_int d))
    else if Int64.equal d 0L && p.halted && not s.halted then
      ignore (t.d_shadow.Specsim.Iface.run_fast 1)
    else if Int64.equal d 0L && s.halted && not p.halted then
      ignore (t.d_iface.Specsim.Iface.run_fast 1)
    else continue := false
  done

let demote t ~detail =
  if t.d_idx + 1 >= Array.length t.d_levels then
    Sim_error.raisef ~component:"super"
      ~context:
        [
          ("level", level_name t);
          ("instructions", Int64.to_string t.d_shadow_st.State.instr_count);
          ("detail", detail);
        ]
      "degradation ladder exhausted: the reference level itself failed";
  Checkpoint.restore t.d_st t.d_ckpt;
  Checkpoint.restore t.d_shadow_st t.d_ckpt;
  t.d_idx <- t.d_idx + 1;
  t.d_iface <- synth_level ?obs:t.d_obs ~st:t.d_st t.d_spec t.d_levels.(t.d_idx);
  Option.iter
    (fun s ->
      Obs.Registry.incr s.Supervisor.s_demotions;
      Obs.Registry.incr s.Supervisor.s_replays)
    t.d_stats

type result = {
  r_final_level : string;
  r_demotions : int;
  r_replays : int;  (** slices re-executed after a restore *)
  r_slices : int;  (** verified slice boundaries *)
  r_instructions : int64;  (** retired on the trusted shadow *)
  r_digest : int64;  (** {!Machine.Checkpoint.digest} of the shadow *)
  r_halted : bool;
}

(** [run ~budget t] executes until the workload halts or [budget]
    verified instructions retire (block slack may overshoot slightly).
    [deadline] is polled at slice boundaries via the watchdog.
    @raise Machine.Sim_error.Error on ladder exhaustion or deadline. *)
let run ?(slice = 256) ?deadline ?force_demote_at ~budget t : result =
  let slice = max 1 slice in
  let demotions = ref 0 and replays = ref 0 and slices = ref 0 in
  let force_pending = ref (force_demote_at <> None) in
  let finished = ref false in
  let do_demote detail =
    demote t ~detail;
    incr demotions;
    incr replays
  in
  while not !finished do
    Inject.Watchdog.check_deadline ?deadline t.d_st;
    let verified = Int64.to_int t.d_shadow_st.State.instr_count in
    if verified >= budget || (t.d_st.State.halted && t.d_shadow_st.State.halted)
    then finished := true
    else begin
      let want = min slice (budget - verified) in
      match t.d_iface.Specsim.Iface.run_fast want with
      | exception Sim_error.Error e when not (String.equal e.component "super")
        ->
        do_demote (Sim_error.one_line e)
      | 0 when not t.d_st.State.halted ->
        do_demote "no forward progress through the primary interface"
      | _executed ->
        let forced =
          !force_pending
          && (t.d_st.State.halted
             || match force_demote_at with
                | Some k -> Int64.compare t.d_st.State.instr_count (Int64.of_int k) >= 0
                | None -> false)
        in
        if forced then begin
          force_pending := false;
          (* forced demotion discards the unverified slice entirely *)
          if t.d_idx + 1 < Array.length t.d_levels then do_demote "forced"
        end
        else begin
          sync t;
          if states_agree t.d_st t.d_shadow_st then begin
            t.d_ckpt <- Checkpoint.save t.d_shadow_st;
            incr slices;
            Option.iter
              (fun s -> Obs.Registry.incr s.Supervisor.s_slices)
              t.d_stats
          end
          else
            do_demote
              (Printf.sprintf "state divergence from %s at %Ld instructions"
                 t.d_shadow.Specsim.Iface.bs.Lis.Spec.bs_name
                 t.d_shadow_st.State.instr_count)
        end
    end
  done;
  {
    r_final_level = level_name t;
    r_demotions = !demotions;
    r_replays = !replays;
    r_slices = !slices;
    r_instructions = t.d_shadow_st.State.instr_count;
    r_digest = Checkpoint.digest t.d_shadow_st;
    r_halted = t.d_shadow_st.State.halted;
  }
