(** Dynamic instruction-mix statistics — a small timing-side consumer that
    needs exactly the Decode informational level (the opclass cell), used
    by the `lisim mix` command and as workload documentation.

    This is the kind of lightweight analysis tool the paper's
    functional-first organization serves: it consumes the instruction
    stream, reads only decode information, and exerts no control. *)

type summary = {
  total : int64;
  counts : (string * int64) list;  (** per instruction name, descending *)
  loads : int64;
  stores : int64;
  branches : int64;
  taken_branches : int64;
}

(** [collect target ~buildset program ~budget] runs [program] and
    histograms retired instructions. The buildset must expose [opclass]
    (Decode or All detail). [obs] compiles instrumentation into the
    interface driven by the collection run. *)
let collect ?(buildset = "one_decode") ?(budget = 10_000_000) ?obs
    (t : Workload.target) (program : Vir.Lang.program) : summary =
  let l = Workload.load ?obs t ~buildset program in
  let iface = l.iface in
  let spec = iface.spec in
  let kinds = Specsim.Classify.of_spec spec in
  let n = Array.length spec.instrs in
  let counts = Array.make n 0L in
  let loads = ref 0L
  and stores = ref 0L
  and branches = ref 0L
  and taken = ref 0L in
  let di = Specsim.Di.create ~info_slots:iface.slots.di_size in
  let st = iface.st in
  let budget64 = Int64.of_int budget in
  while (not st.halted) && Int64.compare st.instr_count budget64 < 0 do
    iface.run_one di;
    let idx = di.instr_index in
    if idx >= 0 && di.fault = None then begin
      counts.(idx) <- Int64.add counts.(idx) 1L;
      let k = kinds.(idx) in
      if k.is_load then loads := Int64.add !loads 1L;
      if k.is_store then stores := Int64.add !stores 1L;
      if k.is_branch then begin
        branches := Int64.add !branches 1L;
        if not (Int64.equal di.next_pc (Int64.add di.pc 4L)) then
          taken := Int64.add !taken 1L
      end
    end
  done;
  let named =
    Array.to_list (Array.mapi (fun i c -> (spec.instrs.(i).i_name, c)) counts)
    |> List.filter (fun (_, c) -> Int64.compare c 0L > 0)
    |> List.sort (fun (_, a) (_, b) -> Int64.compare b a)
  in
  {
    total = st.instr_count;
    counts = named;
    loads = !loads;
    stores = !stores;
    branches = !branches;
    taken_branches = !taken;
  }

let pct part total =
  if Int64.equal total 0L then 0.
  else 100. *. Int64.to_float part /. Int64.to_float total

let print ppf (s : summary) =
  Format.fprintf ppf "%Ld instructions retired@." s.total;
  Format.fprintf ppf "loads %.1f%%  stores %.1f%%  branches %.1f%% (%.1f%% taken)@."
    (pct s.loads s.total) (pct s.stores s.total) (pct s.branches s.total)
    (pct s.taken_branches (if Int64.equal s.branches 0L then 1L else s.branches));
  List.iteri
    (fun i (name, c) ->
      if i < 15 then
        Format.fprintf ppf "  %-12s %10Ld  %5.1f%%@." name c (pct c s.total))
    s.counts
