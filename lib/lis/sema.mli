(** Semantic analysis: surface AST -> resolved {!Spec.t}.

    Name resolution (cells, register classes, actions), cell-id
    assignment, operand merging across instruction classes, translation of
    action bodies to {!Semir.Ir}, generation of the builtin decode /
    operand-fetch / writeback programs, and buildset entrypoint and
    visibility resolution. All errors raise {!Loc.Error}. *)

(** The default per-instruction action sequence used when a description
    has no [sequence] declaration: fetch, decode, read_operands, address,
    evaluate, memory, writeback, exception. *)
val default_sequence : string list

(** Names of the four builtin actions (their semantics are generated). *)
val builtin_action_names : string list

val sym_of_name : string -> Spec.action_sym

(** [analyze ?line_stats decls] resolves a parsed description, raising
    {!Loc.Error} with the first error in source order. *)
val analyze : ?line_stats:Count.stats -> Ast.t -> Spec.t

(** [analyze_all decls] resolves as much of the description as it can.
    Errors in the global scaffolding (ISA header, register classes,
    sequence, field table) abort immediately, but errors local to one
    instruction, override, buildset or the ABI are accumulated, so a
    single run reports them all (in source order). *)
val analyze_all :
  ?line_stats:Count.stats -> Ast.t -> (Spec.t, (Loc.span * string) list) result

(** [load sources] parses and analyzes a list of description files,
    attaching their line statistics (paper Table I). *)
val load : Ast.source list -> Spec.t

(** [load_all sources] is {!load} with {!analyze_all}'s error
    accumulation (parse errors still abort at the first). *)
val load_all :
  Ast.source list -> (Spec.t, (Loc.span * string) list) result
