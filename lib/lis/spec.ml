(** Resolved LIS specification — the output of {!Sema} and the input to the
    synthesizer ({!Specsim.Synth}).

    Everything is name-resolved: cells, register classes and instructions
    are dense integer indices, and all action bodies are {!Semir.Ir}
    programs that have passed well-formedness checks. *)

(** The ordered per-instruction execution sequence is a list of action
    symbols. Four are built in (their semantics are generated from operand
    declarations or supplied by the engine); the rest are user actions. *)
type action_sym =
  | A_fetch
  | A_decode
  | A_read_operands
  | A_writeback
  | A_user of string

let action_sym_name = function
  | A_fetch -> "fetch"
  | A_decode -> "decode"
  | A_read_operands -> "read_operands"
  | A_writeback -> "writeback"
  | A_user s -> s

type cell_kind =
  | K_field of { decode_info : bool }
  | K_operand_val
  | K_operand_id

type cell_info = {
  cell_name : string;
  kind : cell_kind;
  cell_span : Loc.span;  (** declaration site (for diagnostics) *)
}

type operand = {
  op_name : string;
  op_cls : int;  (** register class index *)
  op_lo : int;
  op_len : int;
  op_read : bool;
  op_write : bool;
  op_id_cell : Semir.Ir.cell;
  op_val_cell : Semir.Ir.cell;
}

type instr = {
  i_name : string;
  i_index : int;
  i_size : int;
      (** encoded width in bytes; equals [instr_bytes] except for
          compressed/parcel encodings of a variable-length ISA *)
  i_match : int64;
  i_mask : int64;
  i_operands : operand array;
  i_decode : Semir.Ir.program;  (** generated operand-id extraction *)
  i_read : Semir.Ir.program;  (** generated source-operand fetch *)
  i_writeback : Semir.Ir.program;  (** generated destination commit *)
  i_user : (string * Semir.Ir.program) list;
      (** user action bodies, keyed by user action name *)
  i_span : Loc.span;  (** declaration site (for diagnostics) *)
}

type buildset = {
  bs_name : string;
  bs_speculation : bool;
  bs_block : bool;
  bs_visible : bool array;  (** per cell: stored in the DI record? *)
  bs_explicit_visibility : bool;
      (** the visibility clause listed cells by name ([show]/[hide])
          rather than a named policy ([all]/[min]/[decode]) — only such
          hand-picked sets are candidates for minimality lints *)
  bs_entrypoints : (string * action_sym list) array;
  bs_span : Loc.span;  (** declaration site (for diagnostics) *)
}

type t = {
  name : string;
  endian : Machine.Memory.endian;
  wordsize : int;
  instr_bytes : int;
  decode_lo : int;
  decode_len : int;
  reg_classes : Machine.Regfile.class_def array;
  cells : cell_info array;
  opclass_cell : Semir.Ir.cell;
      (** generated decode-information cell holding the instruction index *)
  sequence : action_sym array;
  instrs : instr array;
  buildsets : buildset array;
  abi : Machine.Os_emu.abi option;
  line_stats : Count.stats;
  isa_span : Loc.span;  (** span of the [isa] header declaration *)
}

let n_cells t = Array.length t.cells
let n_classes t = Array.length t.reg_classes

let cell_id t name =
  let rec go i =
    if i >= Array.length t.cells then raise Not_found
    else if String.equal t.cells.(i).cell_name name then i
    else go (i + 1)
  in
  go 0

let cell_name t i = t.cells.(i).cell_name

let find_buildset t name =
  match
    Array.find_opt (fun b -> String.equal b.bs_name name) t.buildsets
  with
  | Some b -> b
  | None ->
    invalid_arg
      (Printf.sprintf "no buildset named %s in ISA %s" name t.name)

let buildset_names t =
  Array.to_list (Array.map (fun b -> b.bs_name) t.buildsets)

let find_instr t name =
  match
    Array.find_opt (fun i -> String.equal i.i_name name) t.instrs
  with
  | Some i -> i
  | None ->
    invalid_arg (Printf.sprintf "no instruction named %s in ISA %s" name t.name)

(** Register-file template for this ISA. *)
let make_regfile t = Machine.Regfile.create (Array.to_list t.reg_classes)

(** Fresh machine with this ISA's register layout and endianness. *)
let make_machine t =
  Machine.State.create ~endian:t.endian (Array.to_list t.reg_classes)

(** [user_action instr name] is the body of user action [name] for
    [instr], or [[]] if the instruction does not define it. *)
let user_action (i : instr) name =
  match List.assoc_opt name i.i_user with Some p -> p | None -> []
