(** LIS pretty-printer: renders a surface AST back to concrete syntax.

    Round-trip property: parsing the printed text must yield a
    specification equivalent to the original (the test suite checks this
    for every shipped ISA). Expressions are fully parenthesized, so no
    precedence reasoning is needed. *)

open Ast

let binop_token : Semir.Ir.binop -> string = function
  | Add -> "+"
  | Sub -> "-"
  | Mul -> "*"
  | Divs -> "/"
  | Rems -> "%"
  | And -> "&"
  | Or -> "|"
  | Xor -> "^"
  | Shl -> "<<"
  | Lshr -> ">>"
  | Eq -> "=="
  | Ne -> "!="
  | Lts -> "<"
  | Les -> "<="
  | Mulhs | Mulhu | Divu | Remu | Ashr | Ror | Ltu | Leu ->
    (* these reach the AST only through calls; handled in emit_expr *)
    assert false

let call_of_binop : Semir.Ir.binop -> string option = function
  | Mulhs -> Some "mulhs"
  | Mulhu -> Some "mulhu"
  | Divu -> Some "udiv"
  | Remu -> Some "urem"
  | Ashr -> Some "asr"
  | Ror -> Some "ror"
  | Ltu -> Some "ltu"
  | Leu -> Some "leu"
  | _ -> None

let width_name (w : Semir.Ir.width) signed =
  Printf.sprintf "%s%d" (if signed then "s" else "u") (8 * Semir.Ir.bytes_of_width w)

let rec emit_expr b (e : expr) =
  let add = Buffer.add_string b in
  match e.e with
  | E_int v ->
    if Int64.compare v 0L < 0 then add (Printf.sprintf "0x%Lx" v)
    else add (Int64.to_string v)
  | E_var name -> add name
  | E_bits { lo; len; signed } ->
    add (if signed then "sbits(" else "bits(");
    emit_expr b lo;
    add ", ";
    emit_expr b len;
    add ")"
  | E_pc -> add "pc"
  | E_next_pc -> add "next_pc"
  | E_bin (op, x, y) -> (
    match call_of_binop op with
    | Some f ->
      add f;
      add "(";
      emit_expr b x;
      add ", ";
      emit_expr b y;
      add ")"
    | None ->
      add "(";
      emit_expr b x;
      add " ";
      add (binop_token op);
      add " ";
      emit_expr b y;
      add ")")
  | E_log_and (x, y) ->
    add "(";
    emit_expr b x;
    add " && ";
    emit_expr b y;
    add ")"
  | E_log_or (x, y) ->
    add "(";
    emit_expr b x;
    add " || ";
    emit_expr b y;
    add ")"
  | E_un (Neg, x) ->
    add "(0 - ";
    emit_expr b x;
    add ")"
  | E_un (Not, x) ->
    add "(~";
    emit_expr b x;
    add ")"
  | E_un (Bool_not, x) ->
    add "(!";
    emit_expr b x;
    add ")"
  | E_un (Sext n, x) ->
    add "sext(";
    emit_expr b x;
    add (Printf.sprintf ", %d)" n)
  | E_un (Zext n, x) ->
    add "zext(";
    emit_expr b x;
    add (Printf.sprintf ", %d)" n)
  | E_un (Popcount, x) ->
    add "popcount(";
    emit_expr b x;
    add ")"
  | E_un (Clz, x) ->
    add "clz(";
    emit_expr b x;
    add ")"
  | E_un (Ctz, x) ->
    add "ctz(";
    emit_expr b x;
    add ")"
  | E_call (f, args) ->
    add f;
    add "(";
    List.iteri
      (fun i a ->
        if i > 0 then add ", ";
        emit_expr b a)
      args;
    add ")"
  | E_ite (c, x, y) ->
    add "(";
    emit_expr b c;
    add " ? ";
    emit_expr b x;
    add " : ";
    emit_expr b y;
    add ")"
  | E_load { width; signed; addr } ->
    add (Printf.sprintf "load.%s(" (width_name width signed));
    emit_expr b addr;
    add ")"
  | E_reg (cls, idx) ->
    add (Printf.sprintf "reg.%s[" cls);
    emit_expr b idx;
    add "]"

let rec emit_stmt b ~indent (s : stmt) =
  let add = Buffer.add_string b in
  let pad = String.make indent ' ' in
  add pad;
  (match s.s with
  | S_set (name, e) ->
    add name;
    add " = ";
    emit_expr b e;
    add ";"
  | S_set_next_pc e ->
    add "next_pc = ";
    emit_expr b e;
    add ";"
  | S_store { width; addr; value } ->
    add (Printf.sprintf "store.%s(" (width_name width false));
    emit_expr b addr;
    add ", ";
    emit_expr b value;
    add ");"
  | S_set_reg (cls, idx, v) ->
    add (Printf.sprintf "reg.%s[" cls);
    emit_expr b idx;
    add "] = ";
    emit_expr b v;
    add ";"
  | S_if (c, t, f) ->
    add "if (";
    emit_expr b c;
    add ") {\n";
    List.iter (emit_stmt b ~indent:(indent + 2)) t;
    add pad;
    (match f with
    | [] -> add "}"
    | _ ->
      add "} else {\n";
      List.iter (emit_stmt b ~indent:(indent + 2)) f;
      add pad;
      add "}")
  | S_fault_illegal -> add "fault illegal;"
  | S_fault_unaligned e ->
    add "fault unaligned(";
    emit_expr b e;
    add ");"
  | S_fault_arith m -> add (Printf.sprintf "fault arith(%S);" m)
  | S_syscall -> add "syscall;"
  | S_halt -> add "halt;");
  add "\n"

let emit_operand b ~indent (o : operand_decl) =
  Buffer.add_string b
    (Printf.sprintf "%soperand %s : %s[bits(%d,%d)]%s%s;\n"
       (String.make indent ' ') o.o_name.id o.o_class.id o.o_lo o.o_len
       (if o.o_read then " read" else "")
       (if o.o_write then " write" else ""))

let emit_action b ~indent (a : action_def) =
  Buffer.add_string b
    (Printf.sprintf "%saction %s {\n" (String.make indent ' ') a.a_name.id);
  List.iter (emit_stmt b ~indent:(indent + 2)) a.a_body;
  Buffer.add_string b (Printf.sprintf "%s}\n" (String.make indent ' '))

let emit_instr_like b (il : instr_like) =
  List.iter (emit_operand b ~indent:2) il.d_operands;
  List.iter (emit_action b ~indent:2) il.d_actions

let emit_decl b (d : decl) =
  let add = Buffer.add_string b in
  match d with
  | D_isa p ->
    add (Printf.sprintf "isa %S {\n" p.p_name);
    add
      (Printf.sprintf "  endian %s;\n"
         (match p.p_endian with Machine.Memory.Little -> "little" | Big -> "big"));
    add (Printf.sprintf "  wordsize %d;\n" p.p_wordsize);
    add (Printf.sprintf "  instrsize %d;\n" p.p_instr_bytes);
    add (Printf.sprintf "  decodekey %d %d;\n" p.p_decode_lo p.p_decode_len);
    add "}\n\n"
  | D_regclass r ->
    add
      (Printf.sprintf "regclass %s %d width %d%s;\n" r.r_name.id r.r_count
         r.r_width
         (match r.r_zero with Some z -> Printf.sprintf " zero %d" z | None -> ""))
  | D_field f ->
    add
      (Printf.sprintf "field %s : u64%s;\n" f.f_name.id
         (if f.f_decode_info then " decode" else ""))
  | D_sequence ids ->
    add
      (Printf.sprintf "sequence %s;\n"
         (String.concat ", " (List.map (fun i -> i.id) ids)))
  | D_class c ->
    add (Printf.sprintf "class %s {\n" c.c_name.id);
    emit_instr_like b c.c_body;
    add "}\n\n"
  | D_instr i ->
    add
      (Printf.sprintf "instr %s%s%s match 0x%08Lx mask 0x%08Lx" i.i_name.id
         (match i.i_classes with
         | [] -> ""
         | cs -> " : " ^ String.concat ", " (List.map (fun c -> c.id) cs))
         (match i.i_size with
         | Some s -> Printf.sprintf " size %d" s
         | None -> "")
         i.i_match i.i_mask);
    if i.i_body.d_operands = [] && i.i_body.d_actions = [] then add ";\n"
    else begin
      add " {\n";
      emit_instr_like b i.i_body;
      add "}\n"
    end
  | D_override o ->
    add (Printf.sprintf "override %s action %s {\n" o.ov_instr.id o.ov_action.id);
    List.iter (emit_stmt b ~indent:2) o.ov_body;
    add "}\n\n"
  | D_buildset bs ->
    add (Printf.sprintf "buildset %s {\n" bs.b_name.id);
    add (Printf.sprintf "  speculation %s;\n" (if bs.b_speculation then "on" else "off"));
    if bs.b_block then add "  semantic block;\n";
    (match bs.b_visibility with
    | V_all -> add "  visibility all;\n"
    | V_min -> add "  visibility min;\n"
    | V_decode -> add "  visibility decode;\n"
    | V_show ids ->
      add
        (Printf.sprintf "  visibility show %s;\n"
           (String.concat ", " (List.map (fun i -> i.id) ids)))
    | V_hide ids ->
      add
        (Printf.sprintf "  visibility hide %s;\n"
           (String.concat ", " (List.map (fun i -> i.id) ids))));
    List.iter
      (fun (ep : entrypoint) ->
        add
          (Printf.sprintf "  entrypoint %s = %s;\n" ep.ep_name.id
             (String.concat ", " (List.map (fun a -> a.id) ep.ep_actions))))
      bs.b_entrypoints;
    add "}\n\n"
  | D_abi a ->
    add "abi {\n";
    let item name (cls, idx) =
      add (Printf.sprintf "  %s = %s[%d];\n" name cls.id idx)
    in
    item "nr" a.abi_nr;
    List.iteri (fun i arg -> item (Printf.sprintf "arg%d" i) arg) a.abi_args;
    item "ret" a.abi_ret;
    add "}\n\n"

(** [to_string decls] renders a whole description. *)
let to_string (decls : Ast.t) : string =
  let b = Buffer.create 16384 in
  List.iter (emit_decl b) decls;
  Buffer.contents b
