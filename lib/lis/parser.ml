(** Recursive-descent parser for LIS.

    The grammar is LL(2); expressions use precedence climbing. All errors
    are reported through {!Loc.Error} with the offending span. *)

type st = { toks : Lexer.lexed array; mutable i : int }

let cur st = st.toks.(st.i)
let cur_tok st = (cur st).tok
let cur_span st = (cur st).span

let advance st = if st.i < Array.length st.toks - 1 then st.i <- st.i + 1

let err st fmt = Loc.error (cur_span st) fmt

let expect st (t : Token.t) =
  if cur_tok st = t then advance st
  else
    err st "expected '%s' but found '%s'" (Token.to_string t)
      (Token.to_string (cur_tok st))

let accept st (t : Token.t) =
  if cur_tok st = t then begin
    advance st;
    true
  end
  else false

let ident st : Ast.ident =
  match cur_tok st with
  | Ident id ->
    let span = cur_span st in
    advance st;
    { id; span }
  | t -> err st "expected identifier, found '%s'" (Token.to_string t)

(** Accepts a specific keyword (LIS has no reserved words; keywords are
    contextual identifiers). *)
let keyword st kw =
  match cur_tok st with
  | Ident id when String.equal id kw -> advance st
  | t -> err st "expected '%s', found '%s'" kw (Token.to_string t)

let accept_keyword st kw =
  match cur_tok st with
  | Ident id when String.equal id kw ->
    advance st;
    true
  | _ -> false

let int_lit st =
  match cur_tok st with
  | Int v ->
    advance st;
    v
  | t -> err st "expected integer literal, found '%s'" (Token.to_string t)

let int_lit_small st =
  let v = int_lit st in
  if Int64.compare v 0L < 0 || Int64.compare v 0x3FFFFFFFL > 0 then
    err st "integer out of range"
  else Int64.to_int v

let string_lit st =
  match cur_tok st with
  | String s ->
    advance st;
    s
  | t -> err st "expected string literal, found '%s'" (Token.to_string t)

let ident_list st =
  let rec go acc =
    let id = ident st in
    if accept st Comma then go (id :: acc) else List.rev (id :: acc)
  in
  go []

(* ------------------------------------------------------------------ *)
(* Expressions                                                         *)
(* ------------------------------------------------------------------ *)

let width_of_name st name : Semir.Ir.width * bool =
  match name with
  | "u8" -> (Semir.Ir.W1, false)
  | "u16" -> (Semir.Ir.W2, false)
  | "u32" -> (Semir.Ir.W4, false)
  | "u64" -> (Semir.Ir.W8, false)
  | "s8" -> (Semir.Ir.W1, true)
  | "s16" -> (Semir.Ir.W2, true)
  | "s32" -> (Semir.Ir.W4, true)
  | "s64" -> (Semir.Ir.W8, true)
  | _ -> err st "unknown access width '%s' (expected u8..u64 or s8..s64)" name

let rec expr st : Ast.expr = ternary st

and ternary st =
  let start = cur_span st in
  let c = logical_or st in
  if accept st Question then begin
    let a = expr st in
    expect st Colon;
    let b = ternary st in
    { e = E_ite (c, a, b); espan = start }
  end
  else c

and logical_or st =
  let start = cur_span st in
  let rec go acc =
    if accept st BarBar then
      let rhs = logical_and st in
      go { Ast.e = E_log_or (acc, rhs); espan = start }
    else acc
  in
  go (logical_and st)

and logical_and st =
  let start = cur_span st in
  let rec go acc =
    if accept st AmpAmp then
      let rhs = bit_or st in
      go { Ast.e = E_log_and (acc, rhs); espan = start }
    else acc
  in
  go (bit_or st)

and binlevel st next (table : (Token.t * Semir.Ir.binop) list) =
  let start = cur_span st in
  let rec go acc =
    match List.assoc_opt (cur_tok st) table with
    | Some op ->
      advance st;
      let rhs = next st in
      go { Ast.e = E_bin (op, acc, rhs); espan = start }
    | None -> acc
  in
  go (next st)

and bit_or st = binlevel st bit_xor [ (Token.Bar, Semir.Ir.Or) ]
and bit_xor st = binlevel st bit_and [ (Token.Caret, Semir.Ir.Xor) ]
and bit_and st = binlevel st equality [ (Token.Amp, Semir.Ir.And) ]

and equality st =
  binlevel st relational [ (Token.EqEq, Semir.Ir.Eq); (Token.NotEq, Semir.Ir.Ne) ]

and relational st =
  let start = cur_span st in
  let rec go acc =
    match cur_tok st with
    | Lt ->
      advance st;
      go { Ast.e = E_bin (Semir.Ir.Lts, acc, shift st); espan = start }
    | Le ->
      advance st;
      go { Ast.e = E_bin (Semir.Ir.Les, acc, shift st); espan = start }
    | Gt ->
      advance st;
      (* a > b  ==  b < a *)
      let rhs = shift st in
      go { Ast.e = E_bin (Semir.Ir.Lts, rhs, acc); espan = start }
    | Ge ->
      advance st;
      let rhs = shift st in
      go { Ast.e = E_bin (Semir.Ir.Les, rhs, acc); espan = start }
    | _ -> acc
  in
  go (shift st)

and shift st =
  binlevel st additive [ (Token.Shl, Semir.Ir.Shl); (Token.Shr, Semir.Ir.Lshr) ]

and additive st =
  binlevel st multiplicative
    [ (Token.Plus, Semir.Ir.Add); (Token.Minus, Semir.Ir.Sub) ]

and multiplicative st =
  binlevel st unary
    [
      (Token.Star, Semir.Ir.Mul);
      (Token.Slash, Semir.Ir.Divs);
      (Token.Percent, Semir.Ir.Rems);
    ]

and unary st =
  let start = cur_span st in
  match cur_tok st with
  | Minus ->
    advance st;
    { e = E_un (Semir.Ir.Neg, unary st); espan = start }
  | Tilde ->
    advance st;
    { e = E_un (Semir.Ir.Not, unary st); espan = start }
  | Bang ->
    advance st;
    { e = E_un (Semir.Ir.Bool_not, unary st); espan = start }
  | _ -> primary st

and primary st : Ast.expr =
  let start = cur_span st in
  let mk e : Ast.expr = { e; espan = start } in
  match cur_tok st with
  | Int v ->
    advance st;
    mk (E_int v)
  | Lparen ->
    advance st;
    let e = expr st in
    expect st Rparen;
    e
  | Ident "pc" ->
    advance st;
    mk E_pc
  | Ident "next_pc" ->
    advance st;
    mk E_next_pc
  | Ident "bits" ->
    advance st;
    bits_expr st ~signed:false ~start
  | Ident "sbits" ->
    advance st;
    bits_expr st ~signed:true ~start
  | Ident "load" ->
    advance st;
    expect st Dot;
    let w = ident st in
    let width, signed = width_of_name st w.id in
    expect st Lparen;
    let addr = expr st in
    expect st Rparen;
    mk (E_load { width; signed; addr })
  | Ident "reg" ->
    advance st;
    expect st Dot;
    let cls = ident st in
    expect st Lbracket;
    let idx = expr st in
    expect st Rbracket;
    mk (E_reg (cls.id, idx))
  | Ident name when st.toks.(st.i + 1).tok = Token.Lparen ->
    advance st;
    advance st;
    let args =
      if cur_tok st = Rparen then []
      else
        let rec go acc =
          let a = expr st in
          if accept st Comma then go (a :: acc) else List.rev (a :: acc)
        in
        go []
    in
    expect st Rparen;
    mk (E_call (name, args))
  | Ident name ->
    advance st;
    mk (E_var name)
  | t -> err st "expected expression, found '%s'" (Token.to_string t)

and bits_expr st ~signed ~start : Ast.expr =
  expect st Lparen;
  let lo = expr st in
  expect st Comma;
  let len = expr st in
  expect st Rparen;
  { e = E_bits { lo; len; signed }; espan = start }

(* ------------------------------------------------------------------ *)
(* Statements                                                          *)
(* ------------------------------------------------------------------ *)

let rec stmt st : Ast.stmt =
  let start = cur_span st in
  let mk s : Ast.stmt = { s; sspan = start } in
  match cur_tok st with
  | Ident "if" ->
    advance st;
    expect st Lparen;
    let c = expr st in
    expect st Rparen;
    let t = block st in
    let f =
      if accept_keyword st "else" then
        if cur_tok st = Ident "if" then [ stmt st ] else block st
      else []
    in
    mk (S_if (c, t, f))
  | Ident "fault" ->
    advance st;
    let kind = ident st in
    let s =
      match kind.id with
      | "illegal" -> Ast.S_fault_illegal
      | "unaligned" ->
        expect st Lparen;
        let e = expr st in
        expect st Rparen;
        Ast.S_fault_unaligned e
      | "arith" ->
        expect st Lparen;
        let m = string_lit st in
        expect st Rparen;
        Ast.S_fault_arith m
      | other -> err st "unknown fault kind '%s'" other
    in
    expect st Semi;
    mk s
  | Ident "syscall" ->
    advance st;
    expect st Semi;
    mk S_syscall
  | Ident "halt" ->
    advance st;
    expect st Semi;
    mk S_halt
  | Ident "store" ->
    advance st;
    expect st Dot;
    let w = ident st in
    let width, _ = width_of_name st w.id in
    expect st Lparen;
    let addr = expr st in
    expect st Comma;
    let value = expr st in
    expect st Rparen;
    expect st Semi;
    mk (S_store { width; addr; value })
  | Ident "next_pc" ->
    advance st;
    expect st Assign;
    let e = expr st in
    expect st Semi;
    mk (S_set_next_pc e)
  | Ident "reg" ->
    advance st;
    expect st Dot;
    let cls = ident st in
    expect st Lbracket;
    let idx = expr st in
    expect st Rbracket;
    expect st Assign;
    let v = expr st in
    expect st Semi;
    mk (S_set_reg (cls.id, idx, v))
  | Ident name ->
    advance st;
    expect st Assign;
    let e = expr st in
    expect st Semi;
    mk (S_set (name, e))
  | t -> err st "expected statement, found '%s'" (Token.to_string t)

and block st : Ast.stmt list =
  expect st Lbrace;
  let rec go acc =
    if accept st Rbrace then List.rev acc else go (stmt st :: acc)
  in
  go []

(* ------------------------------------------------------------------ *)
(* Declarations                                                        *)
(* ------------------------------------------------------------------ *)

let isa_decl st span : Ast.decl =
  let name = string_lit st in
  expect st Lbrace;
  let endian = ref Machine.Memory.Little in
  let wordsize = ref 64 in
  let instr_bytes = ref 4 in
  let decode_lo = ref 26 in
  let decode_len = ref 6 in
  let rec go () =
    if accept st Rbrace then ()
    else begin
      let k = ident st in
      (match k.id with
      | "endian" ->
        let e = ident st in
        endian :=
          (match e.id with
          | "little" -> Machine.Memory.Little
          | "big" -> Machine.Memory.Big
          | other -> err st "unknown endianness '%s'" other)
      | "wordsize" -> wordsize := int_lit_small st
      | "instrsize" -> instr_bytes := int_lit_small st
      | "decodekey" ->
        decode_lo := int_lit_small st;
        decode_len := int_lit_small st
      | other -> err st "unknown isa property '%s'" other);
      expect st Semi;
      go ()
    end
  in
  go ();
  D_isa
    {
      p_name = name;
      p_endian = !endian;
      p_wordsize = !wordsize;
      p_instr_bytes = !instr_bytes;
      p_decode_lo = !decode_lo;
      p_decode_len = !decode_len;
      p_span = span;
    }

let regclass_decl st : Ast.decl =
  let name = ident st in
  let count = int_lit_small st in
  keyword st "width";
  let width = int_lit_small st in
  let zero = if accept_keyword st "zero" then Some (int_lit_small st) else None in
  expect st Semi;
  D_regclass { r_name = name; r_count = count; r_width = width; r_zero = zero }

let field_decl st : Ast.decl =
  let name = ident st in
  if accept st Colon then ignore (ident st);
  let decode_info = accept_keyword st "decode" in
  expect st Semi;
  D_field { f_name = name; f_decode_info = decode_info }

let operand_decl st : Ast.operand_decl =
  let name = ident st in
  expect st Colon;
  let cls = ident st in
  expect st Lbracket;
  keyword st "bits";
  expect st Lparen;
  let lo = int_lit_small st in
  expect st Comma;
  let len = int_lit_small st in
  expect st Rparen;
  expect st Rbracket;
  let read = ref false and write = ref false in
  let rec flags () =
    if accept_keyword st "read" then begin
      read := true;
      flags ()
    end
    else if accept_keyword st "write" then begin
      write := true;
      flags ()
    end
  in
  flags ();
  if not (!read || !write) then
    Loc.error name.span "operand '%s' must be read, write or both" name.id;
  expect st Semi;
  {
    o_name = name;
    o_class = cls;
    o_lo = lo;
    o_len = len;
    o_read = !read;
    o_write = !write;
  }

let action_def st : Ast.action_def =
  let name = ident st in
  let body = block st in
  { a_name = name; a_body = body }

let instr_like st : Ast.instr_like =
  expect st Lbrace;
  let operands = ref [] and actions = ref [] in
  let rec go () =
    if accept st Rbrace then ()
    else if accept_keyword st "operand" then begin
      operands := operand_decl st :: !operands;
      go ()
    end
    else if accept_keyword st "action" then begin
      actions := action_def st :: !actions;
      go ()
    end
    else err st "expected 'operand', 'action' or '}'"
  in
  go ();
  { d_operands = List.rev !operands; d_actions = List.rev !actions }

let class_decl st : Ast.decl =
  let name = ident st in
  let body = instr_like st in
  D_class { c_name = name; c_body = body }

let instr_decl st : Ast.decl =
  let name = ident st in
  let classes = if accept st Colon then ident_list st else [] in
  let size =
    if accept_keyword st "size" then Some (int_lit_small st) else None
  in
  keyword st "match";
  let m = int_lit st in
  keyword st "mask";
  let msk = int_lit st in
  let body =
    if cur_tok st = Lbrace then instr_like st
    else begin
      expect st Semi;
      { Ast.d_operands = []; d_actions = [] }
    end
  in
  D_instr
    {
      i_name = name;
      i_classes = classes;
      i_size = size;
      i_match = m;
      i_mask = msk;
      i_body = body;
    }

let override_decl st : Ast.decl =
  let instr = ident st in
  keyword st "action";
  let action = ident st in
  let body = block st in
  D_override { ov_instr = instr; ov_action = action; ov_body = body }

let buildset_decl st : Ast.decl =
  let name = ident st in
  expect st Lbrace;
  let speculation = ref false in
  let block_mode = ref false in
  let visibility = ref Ast.V_all in
  let entrypoints = ref [] in
  let rec go () =
    if accept st Rbrace then ()
    else begin
      let k = ident st in
      (match k.id with
      | "speculation" ->
        let v = ident st in
        (speculation :=
           match v.id with
           | "on" -> true
           | "off" -> false
           | other -> err st "expected 'on' or 'off', found '%s'" other);
        expect st Semi
      | "semantic" ->
        keyword st "block";
        block_mode := true;
        expect st Semi
      | "visibility" ->
        let v = ident st in
        (visibility :=
           match v.id with
           | "all" -> Ast.V_all
           | "min" -> Ast.V_min
           | "decode" -> Ast.V_decode
           | "show" -> Ast.V_show (ident_list st)
           | "hide" -> Ast.V_hide (ident_list st)
           | other -> err st "unknown visibility '%s'" other);
        expect st Semi
      | "entrypoint" ->
        let ep_name = ident st in
        expect st Assign;
        let actions = ident_list st in
        expect st Semi;
        entrypoints := { Ast.ep_name; ep_actions = actions } :: !entrypoints
      | other -> err st "unknown buildset item '%s'" other);
      go ()
    end
  in
  go ();
  D_buildset
    {
      b_name = name;
      b_speculation = !speculation;
      b_block = !block_mode;
      b_visibility = !visibility;
      b_entrypoints = List.rev !entrypoints;
    }

let abi_decl st : Ast.decl =
  expect st Lbrace;
  let nr = ref None and ret = ref None and args = ref [] in
  let rec go () =
    if accept st Rbrace then ()
    else begin
      let k = ident st in
      expect st Assign;
      let cls = ident st in
      expect st Lbracket;
      let idx = int_lit_small st in
      expect st Rbracket;
      expect st Semi;
      (match k.id with
      | "nr" -> nr := Some (cls, idx)
      | "ret" -> ret := Some (cls, idx)
      | s when String.length s > 3 && String.sub s 0 3 = "arg" ->
        args := (s, (cls, idx)) :: !args
      | other -> err st "unknown abi item '%s'" other);
      go ()
    end
  in
  go ();
  let nr = match !nr with Some v -> v | None -> err st "abi missing 'nr'" in
  let ret = match !ret with Some v -> v | None -> err st "abi missing 'ret'" in
  let args =
    List.sort (fun (a, _) (b, _) -> String.compare a b) !args |> List.map snd
  in
  D_abi { abi_nr = nr; abi_args = args; abi_ret = ret }

let decl st : Ast.decl =
  let span = cur_span st in
  let k = ident st in
  match k.id with
  | "isa" -> isa_decl st span
  | "regclass" -> regclass_decl st
  | "field" -> field_decl st
  | "sequence" ->
    let ids = ident_list st in
    expect st Semi;
    D_sequence ids
  | "class" -> class_decl st
  | "instr" -> instr_decl st
  | "override" -> override_decl st
  | "buildset" -> buildset_decl st
  | "abi" -> abi_decl st
  | other -> Loc.error k.span "unknown declaration '%s'" other

(** [parse ~file src] parses one LIS source file.
    @raise Loc.Error on syntax errors. *)
let parse ~file src : Ast.t =
  let st = { toks = Lexer.tokenize ~file src; i = 0 } in
  let rec go acc =
    if cur_tok st = Eof then List.rev acc else go (decl st :: acc)
  in
  go []

(** [parse_sources srcs] parses and concatenates several description files
    (ISA description, OS support, buildsets — the paper's file layout). *)
let parse_sources (srcs : Ast.source list) : Ast.t =
  List.concat_map (fun s -> parse ~file:s.Ast.src_name s.Ast.src_text) srcs
