(** Surface abstract syntax of LIS descriptions.

    The AST mirrors the source closely; name resolution, cell-id assignment
    and translation of action bodies to {!Semir.Ir} happen in {!Sema}. *)

type ident = { id : string; span : Loc.span }

(* ------------------------------------------------------------------ *)
(* Expressions and statements of action bodies                         *)
(* ------------------------------------------------------------------ *)

type expr = { e : expr_desc; espan : Loc.span }

and expr_desc =
  | E_int of int64
  | E_var of string  (** field, operand value, or operand id cell *)
  | E_bits of { lo : expr; len : expr; signed : bool }
      (** [bits(lo,len)] / [sbits(lo,len)] — encoding bitfields; arguments
          must fold to constants *)
  | E_pc
  | E_next_pc
  | E_bin of Semir.Ir.binop * expr * expr
  | E_log_and of expr * expr  (** short-circuit [&&] (both sides pure) *)
  | E_log_or of expr * expr
  | E_un of Semir.Ir.unop * expr
  | E_call of string * expr list
      (** builtin functions: sext, zext, asr, ror, udiv, urem, ltu, leu,
          gtu, geu, popcount, clz, ctz *)
  | E_ite of expr * expr * expr
  | E_load of { width : Semir.Ir.width; signed : bool; addr : expr }
  | E_reg of string * expr  (** [reg.CLASS\[e\]] raw register read *)

type stmt = { s : stmt_desc; sspan : Loc.span }

and stmt_desc =
  | S_set of string * expr  (** [name = e;] *)
  | S_set_next_pc of expr
  | S_store of { width : Semir.Ir.width; addr : expr; value : expr }
  | S_set_reg of string * expr * expr  (** [reg.CLASS\[i\] = e;] *)
  | S_if of expr * stmt list * stmt list
  | S_fault_illegal
  | S_fault_unaligned of expr
  | S_fault_arith of string
  | S_syscall
  | S_halt

(* ------------------------------------------------------------------ *)
(* Declarations                                                        *)
(* ------------------------------------------------------------------ *)

type isa_props = {
  p_name : string;
  p_endian : Machine.Memory.endian;
  p_wordsize : int;
  p_instr_bytes : int;
  p_decode_lo : int;
  p_decode_len : int;
  p_span : Loc.span;
}

type regclass = {
  r_name : ident;
  r_count : int;
  r_width : int;
  r_zero : int option;
}

type field_decl = {
  f_name : ident;
  f_decode_info : bool;
      (** marked [decode]: included in the Decode informational level *)
}

(** Operand access kinds. A destination operand's value cell is staged by
    user actions and committed to architectural state by the generated
    writeback action. *)
type operand_decl = {
  o_name : ident;
  o_class : ident;  (** register class *)
  o_lo : int;  (** encoding bitfield of the register number *)
  o_len : int;
  o_read : bool;
  o_write : bool;
}

type action_def = { a_name : ident; a_body : stmt list }

type instr_like = {
  d_operands : operand_decl list;
  d_actions : action_def list;
}

type class_decl = { c_name : ident; c_body : instr_like }

type instr_decl = {
  i_name : ident;
  i_classes : ident list;  (** inherited instruction classes, in order *)
  i_size : int option;
      (** encoded width in bytes when narrower than [instrsize]
          (compressed/parcel encodings); [None] means the full width *)
  i_match : int64;
  i_mask : int64;
  i_body : instr_like;
}

type override_decl = {
  ov_instr : ident;
  ov_action : ident;
  ov_body : stmt list;
}

type visibility =
  | V_all
  | V_min
  | V_decode
  | V_show of ident list
  | V_hide of ident list

type entrypoint = { ep_name : ident; ep_actions : ident list }

type buildset_decl = {
  b_name : ident;
  b_speculation : bool;
  b_block : bool;
  b_visibility : visibility;
  b_entrypoints : entrypoint list;
}

type abi_decl = {
  abi_nr : ident * int;
  abi_args : (ident * int) list;
  abi_ret : ident * int;
}

type decl =
  | D_isa of isa_props
  | D_regclass of regclass
  | D_field of field_decl
  | D_sequence of ident list
  | D_class of class_decl
  | D_instr of instr_decl
  | D_override of override_decl
  | D_buildset of buildset_decl
  | D_abi of abi_decl

(** The role of a source file, used for the Table I line statistics. *)
type role = Isa_description | Os_support | Buildset_file

type source = { src_role : role; src_name : string; src_text : string }

type t = decl list
