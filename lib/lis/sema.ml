(** Semantic analysis: surface AST -> resolved {!Spec.t}.

    Responsibilities: name resolution (cells, register classes, actions),
    cell-id assignment, operand merging across instruction classes,
    translation of action bodies into {!Semir.Ir}, generation of the
    builtin decode / operand-fetch / writeback programs, buildset
    entrypoint/visibility resolution, and all the consistency checks the
    paper's methodology relies on. *)

open Ast

let err span fmt = Loc.error span fmt

let default_sequence =
  [
    "fetch";
    "decode";
    "read_operands";
    "address";
    "evaluate";
    "memory";
    "writeback";
    "exception";
  ]

let builtin_action_names = [ "fetch"; "decode"; "read_operands"; "writeback" ]

let sym_of_name name : Spec.action_sym =
  match name with
  | "fetch" -> A_fetch
  | "decode" -> A_decode
  | "read_operands" -> A_read_operands
  | "writeback" -> A_writeback
  | s -> A_user s

(* ------------------------------------------------------------------ *)
(* Environment built while walking declarations                        *)
(* ------------------------------------------------------------------ *)

type env = {
  mutable props : Ast.isa_props option;
  mutable regclasses : Ast.regclass list;  (** reversed *)
  mutable fields : Ast.field_decl list;  (** reversed *)
  mutable sequence : string list option;
  classes : (string, Ast.instr_like) Hashtbl.t;
  mutable instrs : Ast.instr_decl list;  (** reversed *)
  mutable overrides : Ast.override_decl list;  (** reversed *)
  mutable buildsets : Ast.buildset_decl list;  (** reversed *)
  mutable abi : Ast.abi_decl option;
}

let collect (decls : Ast.t) : env =
  let env =
    {
      props = None;
      regclasses = [];
      fields = [];
      sequence = None;
      classes = Hashtbl.create 16;
      instrs = [];
      overrides = [];
      buildsets = [];
      abi = None;
    }
  in
  List.iter
    (fun d ->
      match d with
      | D_isa p ->
        if env.props <> None then err p.p_span "duplicate 'isa' declaration";
        env.props <- Some p
      | D_regclass r -> env.regclasses <- r :: env.regclasses
      | D_field f -> env.fields <- f :: env.fields
      | D_sequence ids ->
        if env.sequence <> None then
          err (List.hd ids).span "duplicate 'sequence' declaration";
        env.sequence <- Some (List.map (fun i -> i.id) ids)
      | D_class c ->
        if Hashtbl.mem env.classes c.c_name.id then
          err c.c_name.span "duplicate class '%s'" c.c_name.id;
        Hashtbl.add env.classes c.c_name.id c.c_body
      | D_instr i -> env.instrs <- i :: env.instrs
      | D_override o -> env.overrides <- o :: env.overrides
      | D_buildset b -> env.buildsets <- b :: env.buildsets
      | D_abi a ->
        if env.abi <> None then
          err (fst a.abi_nr).span "duplicate 'abi' declaration";
        env.abi <- Some a)
    decls;
  env.regclasses <- List.rev env.regclasses;
  env.fields <- List.rev env.fields;
  env.instrs <- List.rev env.instrs;
  env.overrides <- List.rev env.overrides;
  env.buildsets <- List.rev env.buildsets;
  env

(* ------------------------------------------------------------------ *)
(* Cell table                                                          *)
(* ------------------------------------------------------------------ *)

type cells = {
  table : (string, int) Hashtbl.t;
  mutable infos : Spec.cell_info list;  (** reversed *)
  mutable next : int;
}

let add_cell cells span name kind =
  if Hashtbl.mem cells.table name then
    err span "duplicate cell name '%s' (fields and operands share one namespace)"
      name;
  let id = cells.next in
  Hashtbl.add cells.table name id;
  cells.infos <- { Spec.cell_name = name; kind; cell_span = span } :: cells.infos;
  cells.next <- id + 1;
  id

(* ------------------------------------------------------------------ *)
(* Expression / statement translation                                  *)
(* ------------------------------------------------------------------ *)

type xlate_ctx = {
  cells_tbl : (string, int) Hashtbl.t;
  class_tbl : (string, int) Hashtbl.t;  (** register class name -> index *)
}

let const_int (e : Ast.expr) =
  match e.e with
  | E_int v -> Int64.to_int v
  | _ -> err e.espan "expected a constant integer here"

let rec xlate_expr ctx (e : Ast.expr) : Semir.Ir.expr =
  match e.e with
  | E_int v -> Const v
  | E_var name -> (
    match Hashtbl.find_opt ctx.cells_tbl name with
    | Some c -> Cell c
    | None -> err e.espan "unknown field or operand '%s'" name)
  | E_bits { lo; len; signed } ->
    let lo = const_int lo and len = const_int len in
    if lo < 0 || len <= 0 || lo + len > 64 then
      err e.espan "bitfield [%d,+%d] out of range" lo len;
    Enc { lo; len; signed }
  | E_pc -> Pc
  | E_next_pc -> Next_pc
  | E_bin (op, a, b) -> Bin (op, xlate_expr ctx a, xlate_expr ctx b)
  | E_log_and (a, b) ->
    Ite
      ( xlate_expr ctx a,
        Bin (Ne, xlate_expr ctx b, Const 0L),
        Const 0L )
  | E_log_or (a, b) ->
    Ite
      ( xlate_expr ctx a,
        Const 1L,
        Bin (Ne, xlate_expr ctx b, Const 0L) )
  | E_un (op, a) -> Un (op, xlate_expr ctx a)
  | E_call (name, args) -> xlate_call ctx e.espan name args
  | E_ite (c, a, b) ->
    Ite (xlate_expr ctx c, xlate_expr ctx a, xlate_expr ctx b)
  | E_load { width; signed; addr } ->
    Load { width; signed; addr = xlate_expr ctx addr }
  | E_reg (cls, idx) -> (
    match Hashtbl.find_opt ctx.class_tbl cls with
    | Some c -> Reg_read { cls = c; index = xlate_expr ctx idx }
    | None -> err e.espan "unknown register class '%s'" cls)

and xlate_call ctx span name args : Semir.Ir.expr =
  let unary f =
    match args with
    | [ a ] -> f (xlate_expr ctx a)
    | _ -> err span "%s expects 1 argument" name
  in
  let binary f =
    match args with
    | [ a; b ] -> f (xlate_expr ctx a) (xlate_expr ctx b)
    | _ -> err span "%s expects 2 arguments" name
  in
  let ext mk =
    match args with
    | [ a; n ] ->
      let n = const_int n in
      if n < 1 || n > 64 then err span "extension width %d out of range" n;
      Semir.Ir.Un (mk n, xlate_expr ctx a)
    | _ -> err span "%s expects (expr, width)" name
  in
  match name with
  | "sext" -> ext (fun n -> Semir.Ir.Sext n)
  | "zext" -> ext (fun n -> Semir.Ir.Zext n)
  | "asr" -> binary (fun a b -> Semir.Ir.Bin (Ashr, a, b))
  | "ror" -> binary (fun a b -> Semir.Ir.Bin (Ror, a, b))
  | "mulhu" -> binary (fun a b -> Semir.Ir.Bin (Mulhu, a, b))
  | "mulhs" -> binary (fun a b -> Semir.Ir.Bin (Mulhs, a, b))
  | "udiv" -> binary (fun a b -> Semir.Ir.Bin (Divu, a, b))
  | "urem" -> binary (fun a b -> Semir.Ir.Bin (Remu, a, b))
  | "ltu" -> binary (fun a b -> Semir.Ir.Bin (Ltu, a, b))
  | "leu" -> binary (fun a b -> Semir.Ir.Bin (Leu, a, b))
  | "gtu" -> binary (fun a b -> Semir.Ir.Bin (Ltu, b, a))
  | "geu" -> binary (fun a b -> Semir.Ir.Bin (Leu, b, a))
  | "popcount" -> unary (fun a -> Semir.Ir.Un (Popcount, a))
  | "clz" -> unary (fun a -> Semir.Ir.Un (Clz, a))
  | "ctz" -> unary (fun a -> Semir.Ir.Un (Ctz, a))
  | _ -> err span "unknown function '%s'" name

let rec xlate_stmt ctx (s : Ast.stmt) : Semir.Ir.stmt =
  match s.s with
  | S_set (name, e) -> (
    match Hashtbl.find_opt ctx.cells_tbl name with
    | Some c -> Set_cell (c, xlate_expr ctx e)
    | None -> err s.sspan "unknown field or operand '%s'" name)
  | S_set_next_pc e -> Set_next_pc (xlate_expr ctx e)
  | S_store { width; addr; value } ->
    Store { width; addr = xlate_expr ctx addr; value = xlate_expr ctx value }
  | S_set_reg (cls, idx, v) -> (
    match Hashtbl.find_opt ctx.class_tbl cls with
    | Some c ->
      Reg_write { cls = c; index = xlate_expr ctx idx; value = xlate_expr ctx v }
    | None -> err s.sspan "unknown register class '%s'" cls)
  | S_if (c, t, f) ->
    If (xlate_expr ctx c, List.map (xlate_stmt ctx) t, List.map (xlate_stmt ctx) f)
  | S_fault_illegal -> Fault_illegal
  | S_fault_unaligned e -> Fault_unaligned (xlate_expr ctx e)
  | S_fault_arith m -> Fault_arith m
  | S_syscall -> Syscall
  | S_halt -> Halt

(* ------------------------------------------------------------------ *)
(* Instruction assembly                                                *)
(* ------------------------------------------------------------------ *)

(** Merge operand declarations: class operands first (in class-list order),
    then the instruction's own. Identical re-declarations are deduplicated;
    conflicting ones are errors. *)
let merge_operands (decls : Ast.operand_decl list) : Ast.operand_decl list =
  let seen : (string, Ast.operand_decl) Hashtbl.t = Hashtbl.create 8 in
  List.filter
    (fun (o : Ast.operand_decl) ->
      match Hashtbl.find_opt seen o.o_name.id with
      | None ->
        Hashtbl.add seen o.o_name.id o;
        true
      | Some prev ->
        if
          String.equal prev.o_class.id o.o_class.id
          && prev.o_lo = o.o_lo && prev.o_len = o.o_len
          && prev.o_read = o.o_read && prev.o_write = o.o_write
        then false
        else
          err o.o_name.span
            "operand '%s' redeclared with different class/bits/access"
            o.o_name.id)
    decls

(** Merge action bodies by name: class bodies first, instruction's own
    appended (an instruction refines its class's action). *)
let merge_actions (defs : Ast.action_def list) : (string * Ast.stmt list) list =
  List.fold_left
    (fun acc (d : Ast.action_def) ->
      let name = d.a_name.id in
      if List.mem name builtin_action_names then
        err d.a_name.span
          "'%s' is a builtin action and cannot be defined by instructions" name;
      match List.assoc_opt name acc with
      | Some body ->
        (name, body @ d.a_body) :: List.remove_assoc name acc
      | None -> (name, d.a_body) :: acc)
    [] defs
  |> List.rev

(* ------------------------------------------------------------------ *)
(* Main entry                                                          *)
(* ------------------------------------------------------------------ *)

(** [analyze_all decls] resolves as much of the description as it can and
    returns either the spec or every resolution error found, in source
    order. Errors in the global scaffolding (ISA header, register classes,
    sequence, field table) abort immediately; an error inside one
    instruction, override, buildset or the ABI is recorded and analysis
    continues with the next unit, so a single [lisim check] run reports
    them all. *)
let analyze_all ?(line_stats = Count.zero) (decls : Ast.t) :
    (Spec.t, (Loc.span * string) list) result =
 try
  let env = collect decls in
  let props =
    match env.props with
    | Some p -> p
    | None -> err Loc.dummy "missing 'isa' declaration"
  in
  (* Unit-level error accumulation. [guard] runs one resolution unit and
     records its first error instead of aborting the whole analysis. *)
  let errors = ref [] in
  let record span msg = errors := (span, msg) :: !errors in
  let guard f = try Some (f ()) with Loc.Error (s, m) -> record s m; None in
  (* Register classes *)
  let reg_classes =
    Array.of_list
      (List.map
         (fun (r : Ast.regclass) ->
           {
             Machine.Regfile.cname = r.r_name.id;
             count = r.r_count;
             width = r.r_width;
             hardwired_zero = r.r_zero;
           })
         env.regclasses)
  in
  let class_tbl = Hashtbl.create 8 in
  Array.iteri
    (fun i (c : Machine.Regfile.class_def) ->
      if Hashtbl.mem class_tbl c.cname then
        err Loc.dummy "duplicate register class '%s'" c.cname;
      Hashtbl.add class_tbl c.cname i)
    reg_classes;

  (* Sequence *)
  let seq_names =
    match env.sequence with Some s -> s | None -> default_sequence
  in
  let sequence = Array.of_list (List.map sym_of_name seq_names) in
  let builtin_positions =
    List.filter_map
      (fun b ->
        let rec find i =
          if i >= Array.length sequence then None
          else if sequence.(i) = sym_of_name b then Some (b, i)
          else find (i + 1)
        in
        find 0)
      builtin_action_names
  in
  List.iter
    (fun b ->
      if not (List.mem_assoc b builtin_positions) then
        err Loc.dummy "sequence must include builtin action '%s'" b)
    builtin_action_names;
  let pos b = List.assoc b builtin_positions in
  if
    not
      (pos "fetch" < pos "decode"
      && pos "decode" < pos "read_operands"
      && pos "read_operands" < pos "writeback")
  then err Loc.dummy "builtin actions out of order in 'sequence'";
  (* duplicate names in sequence *)
  let seen_seq = Hashtbl.create 8 in
  List.iter
    (fun n ->
      if Hashtbl.mem seen_seq n then
        err Loc.dummy "duplicate action '%s' in sequence" n;
      Hashtbl.add seen_seq n ())
    seq_names;
  let user_action_names =
    List.filter (fun n -> not (List.mem n builtin_action_names)) seq_names
  in

  (* Cells: fields, then opclass, then operand cells in discovery order. *)
  let cells = { table = Hashtbl.create 32; infos = []; next = 0 } in
  List.iter
    (fun (f : Ast.field_decl) ->
      ignore
        (add_cell cells f.f_name.span f.f_name.id
           (Spec.K_field { decode_info = f.f_decode_info })))
    env.fields;
  let opclass_cell =
    add_cell cells Loc.dummy "opclass" (Spec.K_field { decode_info = true })
  in

  (* Resolve instruction-class references and gather operand declarations *)
  let class_body name (id : Ast.ident) =
    match Hashtbl.find_opt env.classes name with
    | Some b -> b
    | None -> err id.span "unknown instruction class '%s'" name
  in
  let instr_operand_decls (i : Ast.instr_decl) =
    let from_classes =
      List.concat_map
        (fun c -> (class_body c.id c).d_operands)
        i.i_classes
    in
    merge_operands (from_classes @ i.i_body.d_operands)
  in
  (* Assign operand cells in global discovery order. An instruction whose
     operands fail to resolve is marked broken here (error recorded once)
     and skipped by the assembly phase below. *)
  let broken : (string, unit) Hashtbl.t = Hashtbl.create 4 in
  let operand_cells : (string, int * int) Hashtbl.t = Hashtbl.create 32 in
  (* name -> (val_cell, id_cell) *)
  List.iter
    (fun (i : Ast.instr_decl) ->
      match
        guard (fun () ->
            List.iter
              (fun (o : Ast.operand_decl) ->
                if not (Hashtbl.mem operand_cells o.o_name.id) then begin
                  let v =
                    add_cell cells o.o_name.span o.o_name.id Spec.K_operand_val
                  in
                  let id =
                    add_cell cells o.o_name.span (o.o_name.id ^ "_id")
                      Spec.K_operand_id
                  in
                  Hashtbl.add operand_cells o.o_name.id (v, id)
                end)
              (instr_operand_decls i))
      with
      | Some () -> ()
      | None -> Hashtbl.replace broken i.i_name.id ())
    env.instrs;

  let ctx = { cells_tbl = cells.table; class_tbl } in
  let n_cells = cells.next in
  let n_classes = Array.length reg_classes in

  let xlate_body span name body =
    let p = List.map (xlate_stmt ctx) body in
    (try Semir.Ir.validate ~n_cells ~n_classes p
     with Semir.Ir.Invalid m -> err span "in action '%s': %s" name m);
    p
  in

  (* Instructions *)
  let instr_tbl = Hashtbl.create 64 in
  let skipped = ref false in
  let instrs =
    List.mapi
      (fun index (i : Ast.instr_decl) ->
        if Hashtbl.mem broken i.i_name.id then begin
          skipped := true;
          None
        end
        else
          let built =
            guard (fun () ->
                if Hashtbl.mem instr_tbl i.i_name.id then
                  err i.i_name.span "duplicate instruction '%s'" i.i_name.id;
                Hashtbl.add instr_tbl i.i_name.id index;
                if
                  not
                    (Int64.equal
                       (Int64.logand i.i_match (Int64.lognot i.i_mask))
                       0L)
                then
                  err i.i_name.span
                    "instruction '%s': match value 0x%Lx has bits outside mask 0x%Lx"
                    i.i_name.id i.i_match i.i_mask;
                let size =
                  match i.i_size with
                  | None -> props.p_instr_bytes
                  | Some s ->
                    if s < 1 || s > props.p_instr_bytes then
                      err i.i_name.span
                        "instruction '%s': size %d is outside [1,%d] \
                         (instrsize)"
                        i.i_name.id s props.p_instr_bytes;
                    let bits = 8 * s in
                    let outside =
                      if bits >= 64 then 0L else Int64.shift_left (-1L) bits
                    in
                    if not (Int64.equal (Int64.logand i.i_mask outside) 0L)
                    then
                      err i.i_name.span
                        "instruction '%s': mask 0x%Lx has bits outside its \
                         %d-byte encoding"
                        i.i_name.id i.i_mask s;
                    s
                in
                let operand_decls = instr_operand_decls i in
                let operands =
                  Array.of_list
                    (List.map
                       (fun (o : Ast.operand_decl) ->
                         let cls =
                           match Hashtbl.find_opt class_tbl o.o_class.id with
                           | Some c -> c
                           | None ->
                             err o.o_class.span "unknown register class '%s'"
                               o.o_class.id
                         in
                         let val_cell, id_cell =
                           Hashtbl.find operand_cells o.o_name.id
                         in
                         {
                           Spec.op_name = o.o_name.id;
                           op_cls = cls;
                           op_lo = o.o_lo;
                           op_len = o.o_len;
                           op_read = o.o_read;
                           op_write = o.o_write;
                           op_id_cell = id_cell;
                           op_val_cell = val_cell;
                         })
                       operand_decls)
                in
                (* Generated builtin programs *)
                let decode_prog =
                  Array.to_list
                    (Array.map
                       (fun (o : Spec.operand) ->
                         Semir.Ir.Set_cell
                           ( o.op_id_cell,
                             Enc { lo = o.op_lo; len = o.op_len; signed = false }
                           ))
                       operands)
                  @ [ Semir.Ir.Set_cell (opclass_cell, Const (Int64.of_int index)) ]
                in
                let read_prog =
                  Array.to_list operands
                  |> List.filter (fun (o : Spec.operand) -> o.op_read)
                  |> List.map (fun (o : Spec.operand) ->
                         Semir.Ir.Set_cell
                           ( o.op_val_cell,
                             Reg_read { cls = o.op_cls; index = Cell o.op_id_cell }
                           ))
                in
                let writeback_prog =
                  Array.to_list operands
                  |> List.filter (fun (o : Spec.operand) -> o.op_write)
                  |> List.map (fun (o : Spec.operand) ->
                         Semir.Ir.Reg_write
                           {
                             cls = o.op_cls;
                             index = Cell o.op_id_cell;
                             value = Cell o.op_val_cell;
                           })
                in
                (* User actions: class actions first, own actions merged in *)
                let action_defs =
                  List.concat_map
                    (fun c -> (class_body c.id c).d_actions)
                    i.i_classes
                  @ i.i_body.d_actions
                in
                let user =
                  List.map
                    (fun (name, body) ->
                      if not (List.mem name user_action_names) then
                        err i.i_name.span
                          "instruction '%s' defines action '%s' which is not \
                           in the sequence"
                          i.i_name.id name;
                      (name, xlate_body i.i_name.span name body))
                    (merge_actions action_defs)
                in
                {
                  Spec.i_name = i.i_name.id;
                  i_index = index;
                  i_size = size;
                  i_match = i.i_match;
                  i_mask = i.i_mask;
                  i_operands = operands;
                  i_decode = decode_prog;
                  i_read = read_prog;
                  i_writeback = writeback_prog;
                  i_user = user;
                  i_span = i.i_name.span;
                })
          in
          if built = None then skipped := true;
          built)
      env.instrs
    |> List.filter_map Fun.id
  in
  let instrs = Array.of_list instrs in
  (* The decode key must fit inside the shortest encoding, so the decoder
     can bucket without knowing the instruction's length yet. *)
  let min_size =
    Array.fold_left
      (fun acc (i : Spec.instr) -> min acc i.i_size)
      props.p_instr_bytes instrs
  in
  if props.p_decode_lo + props.p_decode_len > 8 * min_size then
    err props.p_span
      "decodekey [%d,+%d] reaches past the %d-byte minimum instruction size"
      props.p_decode_lo props.p_decode_len min_size;

  (* Overrides (the paper's OS-support mechanism). When instructions were
     skipped above, the index table no longer lines up with the array, so
     overrides are checked but not applied (the spec is discarded anyway). *)
  List.iter
    (fun (o : Ast.override_decl) ->
      ignore
        (guard (fun () ->
             let idx =
               match Hashtbl.find_opt instr_tbl o.ov_instr.id with
               | Some i -> i
               | None ->
                 err o.ov_instr.span "unknown instruction '%s'" o.ov_instr.id
             in
             let name = o.ov_action.id in
             if not (List.mem name user_action_names) then
               err o.ov_action.span "action '%s' is not in the sequence" name;
             let body = xlate_body o.ov_action.span name o.ov_body in
             if not !skipped then begin
               let i = instrs.(idx) in
               instrs.(idx) <-
                 { i with i_user = (name, body) :: List.remove_assoc name i.i_user }
             end)))
    env.overrides;

  (* Buildsets *)
  let cell_infos = Array.of_list (List.rev cells.infos) in
  let resolve_vis (v : Ast.visibility) : bool array =
    let vis = Array.make n_cells false in
    (match v with
    | V_all -> Array.fill vis 0 n_cells true
    | V_min -> ()
    | V_decode ->
      Array.iteri
        (fun i (c : Spec.cell_info) ->
          match c.kind with
          | K_operand_id | K_field { decode_info = true } -> vis.(i) <- true
          | K_field { decode_info = false } | K_operand_val -> ())
        cell_infos
    | V_show ids ->
      List.iter
        (fun (id : Ast.ident) ->
          match Hashtbl.find_opt cells.table id.id with
          | Some c -> vis.(c) <- true
          | None -> err id.span "unknown field or operand '%s'" id.id)
        ids
    | V_hide ids ->
      Array.fill vis 0 n_cells true;
      List.iter
        (fun (id : Ast.ident) ->
          match Hashtbl.find_opt cells.table id.id with
          | Some c -> vis.(c) <- false
          | None -> err id.span "unknown field or operand '%s'" id.id)
        ids);
    vis
  in
  let buildsets =
    List.filter_map
      (fun (b : Ast.buildset_decl) ->
        guard (fun () ->
            let entrypoints =
              Array.of_list
                (List.map
                   (fun (ep : Ast.entrypoint) ->
                     ( ep.ep_name.id,
                       List.map
                         (fun (a : Ast.ident) ->
                           if not (List.mem a.id seq_names) then
                             err a.span "action '%s' is not in the sequence"
                               a.id;
                           sym_of_name a.id)
                         ep.ep_actions ))
                   b.b_entrypoints)
            in
            (* The concatenation of entrypoint actions must equal the
               sequence exactly: nothing duplicated, nothing left out. *)
            let flat = Array.to_list entrypoints |> List.concat_map snd in
            let expected = Array.to_list sequence in
            if flat <> expected then
              err b.b_name.span
                "buildset '%s': entrypoints must partition the action \
                 sequence [%s] in order (got [%s])"
                b.b_name.id
                (String.concat ", " (List.map Spec.action_sym_name expected))
                (String.concat ", " (List.map Spec.action_sym_name flat));
            {
              Spec.bs_name = b.b_name.id;
              bs_speculation = b.b_speculation;
              bs_block = b.b_block;
              bs_visible = resolve_vis b.b_visibility;
              bs_explicit_visibility =
                (match b.b_visibility with
                | V_show _ | V_hide _ -> true
                | V_all | V_min | V_decode -> false);
              bs_entrypoints = entrypoints;
              bs_span = b.b_name.span;
            }))
      env.buildsets
    |> Array.of_list
  in
  let bs_seen = Hashtbl.create 8 in
  Array.iter
    (fun (b : Spec.buildset) ->
      if Hashtbl.mem bs_seen b.bs_name then
        record Loc.dummy (Printf.sprintf "duplicate buildset '%s'" b.bs_name);
      Hashtbl.add bs_seen b.bs_name ())
    buildsets;

  (* ABI *)
  let abi =
    match env.abi with
    | None -> None
    | Some (a : Ast.abi_decl) ->
      guard (fun () ->
          let r (id, idx) =
            match Hashtbl.find_opt class_tbl id.Ast.id with
            | Some c -> (c, idx)
            | None -> err id.Ast.span "unknown register class '%s'" id.Ast.id
          in
          {
            Machine.Os_emu.nr = r a.abi_nr;
            args = Array.of_list (List.map r a.abi_args);
            ret = r a.abi_ret;
          })
  in

  match List.rev !errors with
  | [] ->
    Ok
      {
        Spec.name = props.p_name;
        endian = props.p_endian;
        wordsize = props.p_wordsize;
        instr_bytes = props.p_instr_bytes;
        decode_lo = props.p_decode_lo;
        decode_len = props.p_decode_len;
        reg_classes;
        cells = cell_infos;
        opclass_cell;
        sequence;
        instrs;
        buildsets;
        abi;
        line_stats;
        isa_span = props.p_span;
      }
  | errs -> Error errs
 with Loc.Error (span, msg) -> Error [ (span, msg) ]

(** [analyze decls] is {!analyze_all} restricted to the historical
    interface: the first error (in source order) is raised as
    {!Loc.Error}. *)
let analyze ?line_stats (decls : Ast.t) : Spec.t =
  match analyze_all ?line_stats decls with
  | Ok spec -> spec
  | Error ((span, msg) :: _) -> raise (Loc.Error (span, msg))
  | Error [] -> assert false

(** [load_all sources] parses and analyzes description files, reporting
    every resolution error (parse errors still abort at the first). *)
let load_all (sources : Ast.source list) :
    (Spec.t, (Loc.span * string) list) result =
  match Parser.parse_sources sources with
  | exception Loc.Error (span, msg) -> Error [ (span, msg) ]
  | decls -> analyze_all ~line_stats:(Count.of_sources sources) decls

(** [load sources] parses and analyzes a list of description files. *)
let load (sources : Ast.source list) : Spec.t =
  let decls = Parser.parse_sources sources in
  analyze ~line_stats:(Count.of_sources sources) decls
