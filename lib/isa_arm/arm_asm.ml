(** ARM encoder and VIR lowering.

    VIR registers map directly to r0..r14 (v15 is rejected: r15 is the
    program counter). Condition codes make compare-and-branch a natural
    two-instruction sequence with no scratch register. *)

let al = 0xE (* the ALways condition *)

let cond_eq = 0x0
let cond_ne = 0x1
let cond_hs = 0x2
let cond_lo = 0x3
let cond_ge = 0xA
let cond_lt = 0xB

let check_reg name v =
  if v < 0 || v > 15 then
    invalid_arg (Printf.sprintf "arm asm: %s=%d out of range" name v)

(* ------------------------------------------------------------------ *)
(* Encoders                                                            *)
(* ------------------------------------------------------------------ *)

(* Data-processing, immediate shifter: imm8 rotated right by 2*rot. *)
let dp_imm ?(cond = al) ?(s = false) ~op ~rn ~rd ~imm8 ~rot () =
  check_reg "rn" rn;
  check_reg "rd" rd;
  if imm8 < 0 || imm8 > 255 || rot < 0 || rot > 15 then
    invalid_arg "arm asm: dp immediate range";
  Int64.of_int
    ((cond lsl 28) lor 0x02000000 lor (op lsl 21)
    lor ((if s then 1 else 0) lsl 20)
    lor (rn lsl 16) lor (rd lsl 12) lor (rot lsl 8) lor imm8)

(* Data-processing, register shifted by immediate. *)
let dp_reg ?(cond = al) ?(s = false) ~op ~rn ~rd ~rm ?(shift_type = 0)
    ?(shift_imm = 0) () =
  check_reg "rn" rn;
  check_reg "rd" rd;
  check_reg "rm" rm;
  if shift_imm < 0 || shift_imm > 31 then invalid_arg "arm asm: shift imm";
  Int64.of_int
    ((cond lsl 28) lor (op lsl 21)
    lor ((if s then 1 else 0) lsl 20)
    lor (rn lsl 16) lor (rd lsl 12) lor (shift_imm lsl 7)
    lor (shift_type lsl 5) lor rm)

(* Data-processing, register shifted by register. *)
let dp_rsr ?(cond = al) ?(s = false) ~op ~rn ~rd ~rm ~shift_type ~rs () =
  Int64.of_int
    ((cond lsl 28) lor (op lsl 21)
    lor ((if s then 1 else 0) lsl 20)
    lor (rn lsl 16) lor (rd lsl 12) lor (rs lsl 8) lor (shift_type lsl 5)
    lor 0x10 lor rm)

let op_and = 0 and op_eor = 1 and op_sub = 2 and op_rsb = 3
and op_add = 4 and op_adc = 5 and op_sbc = 6 and op_rsc = 7
and op_tst = 8 and op_teq = 9 and op_cmp = 10 and op_cmn = 11
and op_orr = 12 and op_mov = 13 and op_bic = 14 and op_mvn = 15

let mul ?(cond = al) ?(s = false) ~rd ~rm ~rs () =
  Int64.of_int
    ((cond lsl 28) lor ((if s then 1 else 0) lsl 20) lor (rd lsl 16)
    lor (rs lsl 8) lor 0x90 lor rm)

let mla ?(cond = al) ?(s = false) ~rd ~rm ~rs ~ra () =
  Int64.of_int
    ((cond lsl 28) lor 0x00200000
    lor ((if s then 1 else 0) lsl 20)
    lor (rd lsl 16) lor (ra lsl 12) lor (rs lsl 8) lor 0x90 lor rm)

(* Single data transfer, immediate offset (P=1, W=0). *)
let ldst_imm ?(cond = al) ~load ~byte ~rn ~rt ~imm () =
  let u = imm >= 0 in
  let imm = abs imm in
  if imm > 4095 then invalid_arg "arm asm: ldst offset range";
  Int64.of_int
    ((cond lsl 28) lor 0x04000000 lor 0x01000000
    lor ((if u then 1 else 0) lsl 23)
    lor ((if byte then 1 else 0) lsl 22)
    lor ((if load then 1 else 0) lsl 20)
    lor (rn lsl 16) lor (rt lsl 12) lor imm)

let ldr ?cond ~rn ~rt ~imm () = ldst_imm ?cond ~load:true ~byte:false ~rn ~rt ~imm ()
let str ?cond ~rn ~rt ~imm () = ldst_imm ?cond ~load:false ~byte:false ~rn ~rt ~imm ()
let ldrb ?cond ~rn ~rt ~imm () = ldst_imm ?cond ~load:true ~byte:true ~rn ~rt ~imm ()
let strb ?cond ~rn ~rt ~imm () = ldst_imm ?cond ~load:false ~byte:true ~rn ~rt ~imm ()

(* Halfword transfer, immediate offset. *)
let ldsth ?(cond = al) ~code ~load ~rn ~rt ~imm () =
  let u = imm >= 0 in
  let imm = abs imm in
  if imm > 255 then invalid_arg "arm asm: halfword offset range";
  Int64.of_int
    ((cond lsl 28) lor 0x01000000
    lor ((if u then 1 else 0) lsl 23)
    lor 0x00400000
    lor ((if load then 1 else 0) lsl 20)
    lor (rn lsl 16) lor (rt lsl 12)
    lor ((imm lsr 4) lsl 8)
    lor code lor (imm land 0xF))

let ldrh ?cond ~rn ~rt ~imm () = ldsth ?cond ~code:0xB0 ~load:true ~rn ~rt ~imm ()
let strh ?cond ~rn ~rt ~imm () = ldsth ?cond ~code:0xB0 ~load:false ~rn ~rt ~imm ()
let ldrsb ?cond ~rn ~rt ~imm () = ldsth ?cond ~code:0xD0 ~load:true ~rn ~rt ~imm ()
let ldrsh ?cond ~rn ~rt ~imm () = ldsth ?cond ~code:0xF0 ~load:true ~rn ~rt ~imm ()

let b_raw ?(cond = al) ~link ~off24 () =
  Int64.of_int
    ((cond lsl 28) lor 0x0A000000
    lor ((if link then 1 else 0) lsl 24)
    lor (off24 land 0xFFFFFF))

let bx ?(cond = al) ~rm () =
  Int64.of_int ((cond lsl 28) lor 0x012FFF10 lor rm)

let swi ?(cond = al) imm () =
  Int64.of_int ((cond lsl 28) lor 0x0F000000 lor (imm land 0xFFFFFF))

(* ------------------------------------------------------------------ *)
(* Immediate synthesis                                                 *)
(* ------------------------------------------------------------------ *)

let rol32 v n =
  let v = Int32.to_int v land 0xFFFFFFFF in
  let n = n land 31 in
  ((v lsl n) lor (v lsr (32 - n))) land 0xFFFFFFFF

(** [arm_imm v] finds (imm8, rot) such that [imm8 ror 2*rot = v], if any. *)
let arm_imm (v : int32) : (int * int) option =
  let rec go k =
    if k > 15 then None
    else
      let candidate = rol32 v (2 * k) in
      if candidate <= 0xFF then Some (candidate, k) else go (k + 1)
  in
  go 0

(* ------------------------------------------------------------------ *)
(* VIR lowering                                                        *)
(* ------------------------------------------------------------------ *)

module Target : Vir.Lower.TARGET = struct
  let name = "arm"

  let r v =
    if v > 14 then invalid_arg "arm target: v15 is reserved (r15 is the pc)";
    v

  let w x : Vir.Lower.item = Word x

  let mov_reg ~rd ~rm = dp_reg ~op:op_mov ~rn:0 ~rd ~rm ()

  let li32 ~rd (v : int32) =
    match arm_imm v with
    | Some (imm8, rot) -> [ w (dp_imm ~op:op_mov ~rn:0 ~rd ~imm8 ~rot ()) ]
    | None ->
      (* build from bytes: mov + up to three orrs *)
      let byte i = Int32.to_int (Int32.shift_right_logical v (8 * i)) land 0xFF in
      let items = ref [ w (dp_imm ~op:op_mov ~rn:0 ~rd ~imm8:(byte 0) ~rot:0 ()) ] in
      for i = 1 to 3 do
        if byte i <> 0 then
          (* rot field rotates right by 2*rot; byte i sits at bit 8*i, i.e.
             rotate right by 32-8i = 2*(16-4i) *)
          items :=
            w (dp_imm ~op:op_orr ~rn:rd ~rd ~imm8:(byte i) ~rot:(16 - (4 * i)) ())
            :: !items
      done;
      List.rev !items

  let addi ~rd ~rs imm =
    if imm = 0 then [ w (mov_reg ~rd ~rm:rs) ]
    else
      let op, v = if imm > 0 then (op_add, imm) else (op_sub, -imm) in
      let b0 = v land 0xFF and b1 = (v lsr 8) land 0xFF in
      let first = w (dp_imm ~op ~rn:rs ~rd ~imm8:b0 ~rot:0 ()) in
      if b1 = 0 then [ first ]
      else [ first; w (dp_imm ~op ~rn:rd ~rd ~imm8:b1 ~rot:12 ()) ]

  let branch ?(cond = al) label : Vir.Lower.item =
    Fix
      ( (fun ~self_pc ~target_pc ->
          let off =
            Int64.to_int (Int64.sub target_pc (Int64.add self_pc 8L)) asr 2
          in
          if off < -(1 lsl 23) || off >= 1 lsl 23 then
            invalid_arg "arm asm: branch range";
          b_raw ~cond ~link:false ~off24:off ()),
        label )

  let lower_instr (i : Vir.Lang.instr) : Vir.Lower.item list =
    match i with
    | Label l -> [ Mark l ]
    | Li (d, v) -> li32 ~rd:(r d) v
    | Mv (d, s) -> [ w (mov_reg ~rd:(r d) ~rm:(r s)) ]
    | Add (d, a, b) -> [ w (dp_reg ~op:op_add ~rn:(r a) ~rd:(r d) ~rm:(r b) ()) ]
    | Sub (d, a, b) -> [ w (dp_reg ~op:op_sub ~rn:(r a) ~rd:(r d) ~rm:(r b) ()) ]
    | Mul (d, a, b) ->
      if d = a then
        (* MUL requires rd <> rm on real hardware; swap operands *)
        [ w (mul ~rd:(r d) ~rm:(r b) ~rs:(r a) ()) ]
      else [ w (mul ~rd:(r d) ~rm:(r a) ~rs:(r b) ()) ]
    | And_ (d, a, b) -> [ w (dp_reg ~op:op_and ~rn:(r a) ~rd:(r d) ~rm:(r b) ()) ]
    | Or_ (d, a, b) -> [ w (dp_reg ~op:op_orr ~rn:(r a) ~rd:(r d) ~rm:(r b) ()) ]
    | Xor_ (d, a, b) -> [ w (dp_reg ~op:op_eor ~rn:(r a) ~rd:(r d) ~rm:(r b) ()) ]
    | Addi (d, a, imm) -> addi ~rd:(r d) ~rs:(r a) imm
    | Andi (d, a, imm) -> [ w (dp_imm ~op:op_and ~rn:(r a) ~rd:(r d) ~imm8:imm ~rot:0 ()) ]
    | Shli (d, a, sh) ->
      [ w (dp_reg ~op:op_mov ~rn:0 ~rd:(r d) ~rm:(r a) ~shift_type:0 ~shift_imm:sh ()) ]
    | Shri (d, a, sh) ->
      if sh = 0 then [ w (mov_reg ~rd:(r d) ~rm:(r a)) ]
      else
        [ w (dp_reg ~op:op_mov ~rn:0 ~rd:(r d) ~rm:(r a) ~shift_type:1 ~shift_imm:sh ()) ]
    | Sari (d, a, sh) ->
      if sh = 0 then [ w (mov_reg ~rd:(r d) ~rm:(r a)) ]
      else
        [ w (dp_reg ~op:op_mov ~rn:0 ~rd:(r d) ~rm:(r a) ~shift_type:2 ~shift_imm:sh ()) ]
    | Ldw (d, a, imm) -> [ w (ldr ~rn:(r a) ~rt:(r d) ~imm ()) ]
    | Stw (s, a, imm) -> [ w (str ~rn:(r a) ~rt:(r s) ~imm ()) ]
    | Ldb (d, a, imm) -> [ w (ldrb ~rn:(r a) ~rt:(r d) ~imm ()) ]
    | Stb (s, a, imm) -> [ w (strb ~rn:(r a) ~rt:(r s) ~imm ()) ]
    | Bcond (c, a, b, l) ->
      let cond =
        match c with
        | Vir.Lang.Eq -> cond_eq
        | Ne -> cond_ne
        | Lt -> cond_lt
        | Ge -> cond_ge
        | Ltu -> cond_lo
        | Geu -> cond_hs
      in
      [
        w (dp_reg ~s:true ~op:op_cmp ~rn:(r a) ~rd:0 ~rm:(r b) ());
        branch ~cond l;
      ]
    | Jmp l -> [ branch l ]
    | Jr s -> [ w (bx ~rm:(r s) ()) ]
    | La (d, l) ->
      (* fixed four-word sequence (mov + three orrs) so the lowered length
         never depends on the label's address *)
      let rd = r d in
      let byte t i = Int64.to_int (Int64.shift_right_logical t (8 * i)) land 0xFF in
      let piece ~op ~rn ~rot i : Vir.Lower.item =
        Fix
          ( (fun ~self_pc:_ ~target_pc ->
              dp_imm ~op ~rn ~rd ~imm8:(byte target_pc i) ~rot ()),
            l )
      in
      [
        piece ~op:op_mov ~rn:0 ~rot:0 0;
        piece ~op:op_orr ~rn:rd ~rot:12 1;
        piece ~op:op_orr ~rn:rd ~rot:8 2;
        piece ~op:op_orr ~rn:rd ~rot:4 3;
      ]
    | Sys -> [ w (swi 0 ()) ]

  let lower (p : Vir.Lang.program) = List.concat_map lower_instr p
end

let encode ~base p = Vir.Lower.encode (module Target) ~base p
