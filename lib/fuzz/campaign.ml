(** Supervised fuzz campaign: the {!Driver} search loop ported onto the
    supervised execution runtime ({!Super}).

    Differences from the bare {!Driver.hunt}:

    - every oracle execution is a supervised {e case} with a stable id
      ([fuzz/<isa>/0x<seed>/<index>/<buildset>]), run under the
      supervisor's deadline/retry policy;
    - a divergence does not end the campaign: the testcase is shrunk,
      persisted to the quarantine directory as a replayable reproducer
      (same format as [--repro-out]), demonstrated to degrade gracefully
      down the demotion ladder, and the campaign moves on;
    - every case outcome is appended to a durable journal; a rerun with
      the same (seed, budget) and [resume] skips completed cases while
      consuming their budget slots, so the case window is identical.

    Everything downstream of (isa, seed) stays deterministic — the
    supervisor's retry jitter comes from the same splitmix stream. *)

type report = {
  p_isa : string;
  p_programs : int;  (** testcases generated *)
  p_execs : int;  (** budget slots consumed (executed + skipped) *)
  p_cases : int;  (** cases actually executed this run *)
  p_skipped : int;  (** cases skipped because the journal has them *)
  p_clean : int;
  p_quarantined : int;
  p_gave_up : int;  (** transient failures that exhausted their retries *)
  p_retries : int;
  p_demotions : int;  (** ladder steps across all degradation sessions *)
  p_torn : int;  (** unparsable journal lines tolerated on resume *)
}

let case_id ~isa ~seed ~index ~buildset =
  Printf.sprintf "fuzz/%s/0x%Lx/%d/%s" isa seed index buildset

(* After a divergence is quarantined, demonstrate that a supervised
   session over the same (shrunk) testcase completes by demoting down
   the ladder — the degraded-but-alive path a campaign takes when the
   block engine itself is defective. *)
let degrade_session ?obs ?stats (cfg : Oracle.config) spec ~buildset tc
    ~deadline =
  let session =
    Super.Degrade.create ?obs ?stats ?mutate:cfg.Oracle.mutate
      ~chain:cfg.chain ~site_cache:cfg.site_cache ~reference:cfg.reference
      ~spec ~buildset
      ~load:(Oracle.load_image spec tc)
      ()
  in
  Super.Degrade.run ?deadline ~slice:64 ~budget:cfg.max_instrs session

(* The one-core driver loop, kept verbatim as the [--jobs 1] path: its
   journal bytes, quarantine names and stats are the reference output a
   parallel run must reproduce. *)
let run_seq ~cfg ?obs ?stats ?metrics ~super ~isa ~seed ~budget ~journal
    ~quarantine ~resume () : report =
  let spec = Driver.spec_of_isa isa in
  let cx = Gen.make_ctx ~isa spec in
  let view =
    if resume then Super.Journal.load ~path:journal
    else Super.Journal.empty_view ()
  in
  let q = Super.Quarantine.create ~dir:quarantine in
  let w =
    Super.Journal.open_ ~path:journal
      ~meta:
        [
          ("campaign", Obs.Export.Str "fuzz");
          ("isa", Obs.Export.Str isa);
          ("seed", Obs.Export.Str (Printf.sprintf "0x%Lx" seed));
          ("budget", Obs.Export.Int (Int64.of_int budget));
        ]
  in
  let scfg = { super with Super.Supervisor.seed } in
  (* the context the metrics series samples: the campaign's own when
     instrumented, otherwise an empty stand-in (timestamps still flow) *)
  let mobs = match obs with Some o -> o | None -> Obs.create () in
  (* a profiler on the campaign context is shared into every oracle
     candidate boot, accumulating one campaign-wide region table *)
  let prof = mobs.Obs.prof in
  let tick_metrics () =
    match metrics with Some m -> Obs.metrics_tick m mobs | None -> ()
  in
  let execs = ref 0 in
  let programs = ref 0 in
  let cases = ref 0 and skipped = ref 0 in
  let clean = ref 0 and quarantined = ref 0 and gave_up = ref 0 in
  let retries = ref 0 and demotions = ref 0 in
  let index = ref 0 in
  let quarantine_case ?digest ?level ~case ~attempts ~detail contents =
    let path =
      Super.Quarantine.put q ~name:(case ^ ".repro") ~contents
    in
    Option.iter
      (fun s -> Obs.Registry.incr s.Super.Supervisor.s_quarantined)
      stats;
    incr quarantined;
    Super.Journal.record w
      (Super.Journal.entry ?digest ?level ~attempts
         ~outcome:Super.Journal.Quarantined
         ~detail:(detail ^ " -> " ^ path) case)
  in
  (try
     while !execs < budget do
       let tc = Gen.generate cx ~seed ~index:!index in
       incr programs;
       let tc_index = !index in
       incr index;
       List.iter
         (fun bs ->
           if !execs < budget then begin
             incr execs;
             let case = case_id ~isa ~seed ~index:tc_index ~buildset:bs in
             if Super.Journal.is_complete view case then incr skipped
             else begin
               incr cases;
               match
                 Super.Supervisor.run_case ?stats scfg
                   ~index:(Int64.of_int !execs)
                   (fun ~deadline:_ ->
                     Oracle.run_pair spec ?prof cfg tc ~buildset:bs)
               with
               | Super.Supervisor.Done (None, attempts) ->
                 incr clean;
                 retries := !retries + attempts - 1;
                 Super.Journal.record w
                   (Super.Journal.entry ~attempts ~outcome:Super.Journal.Pass
                      case)
               | Super.Supervisor.Done (Some d, attempts) ->
                 retries := !retries + attempts - 1;
                 (* shrink, persist, then prove graceful degradation *)
                 let { Shrink.s_tc; s_tests = _ } =
                   Shrink.shrink spec cfg ~buildset:bs tc
                 in
                 let r =
                   degrade_session ?obs ?stats cfg spec ~buildset:bs s_tc
                     ~deadline:None
                 in
                 demotions := !demotions + r.Super.Degrade.r_demotions;
                 quarantine_case ~digest:r.Super.Degrade.r_digest
                   ~level:r.Super.Degrade.r_final_level ~case ~attempts
                   ~detail:(Oracle.pp_divergence d)
                   (Repro.to_string cfg ~buildset:bs s_tc)
               | Super.Supervisor.Gave_up (f, attempts) -> (
                 retries := !retries + attempts - 1;
                 match f.Super.Taxonomy.f_severity with
                 | Super.Taxonomy.Deterministic ->
                   (* deterministic crash: no verified divergence to
                      shrink against, quarantine the testcase as-is *)
                   quarantine_case ~case ~attempts
                     ~detail:
                       (f.Super.Taxonomy.f_kind ^ ": "
                      ^ f.Super.Taxonomy.f_detail)
                     (Repro.to_string cfg ~buildset:bs tc)
                 | _ ->
                   incr gave_up;
                   Super.Journal.record w
                     (Super.Journal.entry ~attempts
                        ~outcome:Super.Journal.Gave_up
                        ~detail:f.Super.Taxonomy.f_kind case))
             end;
             tick_metrics ()
           end)
         cfg.Oracle.buildsets
     done
   with exn ->
     Super.Journal.close w;
     raise exn);
  Super.Journal.close w;
  {
    p_isa = isa;
    p_programs = !programs;
    p_execs = !execs;
    p_cases = !cases;
    p_skipped = !skipped;
    p_clean = !clean;
    p_quarantined = !quarantined;
    p_gave_up = !gave_up;
    p_retries = !retries;
    p_demotions = !demotions;
    p_torn = view.Super.Journal.v_torn;
  }

(* ------------------------------------------------------------------ *)
(* Parallel path (domain fleet)                                        *)
(* ------------------------------------------------------------------ *)

(* Budget slot [k] of the sequential loop is (program [k / nbs],
   buildset [k mod nbs]) — regenerating the program from
   [Gen.case_seed (seed, k / nbs)] is pure, so any worker can own any
   slot and the case set is schedule-independent. *)

(* What a worker ships back for one executed case. Strings and scalars
   only: every journal append and quarantine write happens on the
   collector, so the JSONL tail stays torn-safe and artifact naming is
   single-writer. *)
type case_out =
  | C_pass of int  (** attempts *)
  | C_diverged of {
      co_attempts : int;
      co_detail : string;
      co_contents : string;
      co_digest : int64;
      co_level : string;
      co_demotions : int;
    }
  | C_det_crash of {
      cd_attempts : int;
      cd_detail : string;
      cd_contents : string;
    }
  | C_gave_up of { cg_attempts : int; cg_kind : string }

let run_fleet ~cfg ?obs ?stats ?metrics ~super fl ~isa ~seed ~budget ~journal
    ~quarantine ~resume () : report =
  (* Force every lazy this campaign touches on the collector, before
     fan-out: concurrent [Lazy.force] is undefined in OCaml 5. *)
  let spec = Driver.spec_of_isa isa in
  let cx = Gen.make_ctx ~isa spec in
  let view =
    if resume then Super.Journal.load ~path:journal
    else Super.Journal.empty_view ()
  in
  let q = Super.Quarantine.create ~dir:quarantine in
  let w =
    Super.Journal.open_ ~path:journal
      ~meta:
        [
          ("campaign", Obs.Export.Str "fuzz");
          ("isa", Obs.Export.Str isa);
          ("seed", Obs.Export.Str (Printf.sprintf "0x%Lx" seed));
          ("budget", Obs.Export.Int (Int64.of_int budget));
        ]
  in
  let scfg = { super with Super.Supervisor.seed } in
  let mobs = match obs with Some o -> o | None -> Obs.create () in
  let tick_metrics () =
    match metrics with Some m -> Obs.metrics_tick m mobs | None -> ()
  in
  let buildsets = Array.of_list cfg.Oracle.buildsets in
  let nbs = Array.length buildsets in
  let case_of_slot k =
    case_id ~isa ~seed ~index:(k / nbs) ~buildset:buildsets.(k mod nbs)
  in
  (* resume filtering happens here, on the collector: skipped slots
     consume budget without being submitted *)
  let todo = ref [] in
  let skipped = ref 0 in
  for k = budget - 1 downto 0 do
    if Super.Journal.is_complete view (case_of_slot k) then incr skipped
    else todo := k :: !todo
  done;
  let todo = Array.of_list !todo in
  let clean = ref 0 and quarantined = ref 0 and gave_up = ref 0 in
  let retries = ref 0 and demotions = ref 0 in
  let quarantine_case ?digest ?level ~case ~attempts ~detail contents =
    let path = Super.Quarantine.put q ~name:(case ^ ".repro") ~contents in
    Option.iter
      (fun s -> Obs.Registry.incr s.Super.Supervisor.s_quarantined)
      stats;
    incr quarantined;
    Super.Journal.record w
      (Super.Journal.entry ?digest ?level ~attempts
         ~outcome:Super.Journal.Quarantined
         ~detail:(detail ^ " -> " ^ path)
         case)
  in
  let workers =
    Array.init (Fleet.jobs fl) (fun _ ->
        Super.Supervisor.worker_ctx ?obs ?stats ())
  in
  let task k (ws : Super.Supervisor.worker_ctx) : case_out =
    let tc = Gen.generate cx ~seed ~index:(k / nbs) in
    let bs = buildsets.(k mod nbs) in
    let prof =
      match ws.Super.Supervisor.wc_obs with
      | Some o -> o.Obs.prof
      | None -> None
    in
    match
      Super.Supervisor.run_case ?stats:ws.Super.Supervisor.wc_stats scfg
        ~index:(Int64.of_int (k + 1))
        (fun ~deadline:_ -> Oracle.run_pair spec ?prof cfg tc ~buildset:bs)
    with
    | Super.Supervisor.Done (None, attempts) -> C_pass attempts
    | Super.Supervisor.Done (Some d, attempts) ->
      let { Shrink.s_tc; s_tests = _ } =
        Shrink.shrink spec cfg ~buildset:bs tc
      in
      let r =
        degrade_session ?obs:ws.Super.Supervisor.wc_obs
          ?stats:ws.Super.Supervisor.wc_stats cfg spec ~buildset:bs s_tc
          ~deadline:None
      in
      C_diverged
        {
          co_attempts = attempts;
          co_detail = Oracle.pp_divergence d;
          co_contents = Repro.to_string cfg ~buildset:bs s_tc;
          co_digest = r.Super.Degrade.r_digest;
          co_level = r.Super.Degrade.r_final_level;
          co_demotions = r.Super.Degrade.r_demotions;
        }
    | Super.Supervisor.Gave_up (f, attempts) -> (
      match f.Super.Taxonomy.f_severity with
      | Super.Taxonomy.Deterministic ->
        C_det_crash
          {
            cd_attempts = attempts;
            cd_detail =
              f.Super.Taxonomy.f_kind ^ ": " ^ f.Super.Taxonomy.f_detail;
            cd_contents = Repro.to_string cfg ~buildset:bs tc;
          }
      | _ -> C_gave_up { cg_attempts = attempts; cg_kind = f.Super.Taxonomy.f_kind })
  in
  let complete i out =
    let k = todo.(i) in
    let case = case_of_slot k in
    (match out with
    | C_pass attempts ->
      incr clean;
      retries := !retries + attempts - 1;
      Super.Journal.record w
        (Super.Journal.entry ~attempts ~outcome:Super.Journal.Pass case)
    | C_diverged o ->
      retries := !retries + o.co_attempts - 1;
      demotions := !demotions + o.co_demotions;
      quarantine_case ~digest:o.co_digest ~level:o.co_level ~case
        ~attempts:o.co_attempts ~detail:o.co_detail o.co_contents
    | C_det_crash o ->
      retries := !retries + o.cd_attempts - 1;
      quarantine_case ~case ~attempts:o.cd_attempts ~detail:o.cd_detail
        o.cd_contents
    | C_gave_up o ->
      retries := !retries + o.cg_attempts - 1;
      incr gave_up;
      Super.Journal.record w
        (Super.Journal.entry ~attempts:o.cg_attempts
           ~outcome:Super.Journal.Gave_up ~detail:o.cg_kind case));
    tick_metrics ()
  in
  let finish () =
    Array.iter
      (Super.Supervisor.join_worker_ctx ?obs ?stats ~into:mobs)
      workers;
    Super.Journal.close w
  in
  (try
     Fleet.run fl ~workers ~tasks:(Array.map (fun k -> task k) todo) ~complete;
     tick_metrics ()
   with exn ->
     finish ();
     raise exn);
  finish ();
  {
    p_isa = isa;
    p_programs = (budget + nbs - 1) / nbs;
    p_execs = budget;
    p_cases = Array.length todo;
    p_skipped = !skipped;
    p_clean = !clean;
    p_quarantined = !quarantined;
    p_gave_up = !gave_up;
    p_retries = !retries;
    p_demotions = !demotions;
    p_torn = view.Super.Journal.v_torn;
  }

(** [metrics] attaches a periodic-telemetry series: after every budget
    slot the series is ticked against the campaign's observability
    context (registry counters, plus the profiler when one is attached),
    so long campaigns emit durable wall-clock-interval progress
    snapshots alongside the journal.

    [fleet] spreads the case window over a domain {!Fleet}: workers run
    cases against domain-local state and the calling domain journals and
    quarantines completions, so the quarantined-reproducer set, report
    and merged counter totals match the sequential run at the same seed
    (journal line {e order} follows completion order). With no [fleet]
    (or a one-domain one) the original sequential loop runs unchanged. *)
let run ?(cfg = Oracle.default_config) ?obs ?stats ?metrics
    ?(super = Super.Supervisor.default) ?fleet ~isa ~seed ~budget ~journal
    ~quarantine ?(resume = false) () : report =
  match fleet with
  | Some fl when Fleet.jobs fl > 1 ->
    run_fleet ~cfg ?obs ?stats ?metrics ~super fl ~isa ~seed ~budget ~journal
      ~quarantine ~resume ()
  | _ ->
    run_seq ~cfg ?obs ?stats ?metrics ~super ~isa ~seed ~budget ~journal
      ~quarantine ~resume ()

let pp_report ppf (p : report) =
  Format.fprintf ppf
    "%s: %d programs, %d budget slots (%d executed, %d resumed)@\n" p.p_isa
    p.p_programs p.p_execs p.p_cases p.p_skipped;
  Format.fprintf ppf
    "  clean %d, quarantined %d, gave up %d; retries %d, demotions %d@\n"
    p.p_clean p.p_quarantined p.p_gave_up p.p_retries p.p_demotions;
  if p.p_torn > 0 then
    Format.fprintf ppf "  (tolerated %d torn journal line(s) on resume)@\n"
      p.p_torn
