(** Differential oracle: run one testcase through a candidate interface
    in lockstep with the Step/All reference and compare everything
    observable.

    The reference is the highest-detail interface ([step_all] — every
    entrypoint exposed, every cell visible, no block engine), so any
    candidate disagreement is attributable to the candidate's
    synthesis / caching machinery. Sync points are candidate units: a
    basic block for Block interfaces, one instruction for One / Step
    interfaces; the reference is advanced by the same number of retired
    instructions. At each sync point the oracle compares halt state,
    fault, pc, retired-instruction count, a register digest and the Obs
    crossing count; memory digests are compared every [mem_interval]
    retired instructions and at halt (they cost a full page walk). *)

type config = {
  reference : string;
  buildsets : string list;  (** candidates to check *)
  chain : bool;  (** candidate block engines: successor chaining *)
  site_cache : bool;  (** candidate block engines: shared site cache *)
  mutate : Specsim.Synth.mutation option;  (** candidate-only defect *)
  max_instrs : int;  (** per-run retirement budget *)
  mem_interval : int;
  check_crossings : bool;
}

let default_config =
  {
    reference = "step_all";
    buildsets =
      List.map Specsim.Detail.buildset_name Specsim.Detail.table2_interfaces;
    chain = true;
    site_cache = true;
    mutate = None;
    max_instrs = 2048;
    mem_interval = 16;
    check_crossings = true;
  }

type divergence = {
  d_buildset : string;
  d_kind : string;
      (** "halt" | "fault" | "pc" | "count" | "regs" | "mem" |
          "crossings" | "stuck" *)
  d_retired : int64;  (** candidate retirements at detection *)
  d_detail : string;
}

let pp_divergence d =
  Printf.sprintf "%s: %s after %Ld instruction(s): %s" d.d_buildset d.d_kind
    d.d_retired d.d_detail

(* Deterministic pseudo-OS: syscall 0 exits with arg0's low byte, any
   other number just mixes the inputs into the return register. Unlike
   {!Machine.Os_emu}, no syscall loops over a register-supplied byte
   count, so wild generated register values stay cheap. *)
let install_pseudo_os (spec : Lis.Spec.t) (st : Machine.State.t) =
  match spec.abi with
  | None -> ()
  | Some abi ->
    st.syscall_handler <-
      (fun st ->
        let rd (c, i) = Machine.Regfile.read st.regs ~cls:c ~idx:i in
        let nr = rd abi.nr in
        if Int64.equal nr 0L then
          let a0 = if Array.length abi.args > 0 then rd abi.args.(0) else 0L in
          Machine.State.raise_fault st
            (Machine.Fault.Exit (Int64.to_int (Int64.logand a0 0xFFL)))
        else begin
          let h = ref (Inject.Prng.mix nr) in
          Array.iter
            (fun a -> h := Inject.Prng.mix (Int64.logxor !h (rd a)))
            abi.args;
          let rc, ri = abi.ret in
          Machine.Regfile.write st.regs ~cls:rc ~idx:ri !h
        end)

(** [load_image spec tc st] loads a testcase image into [st]: data
    words, code words at {!Gen.code_base}, initial registers, the
    pseudo-OS, and a reset with the pc at the code base. Shared by
    {!boot} and by the supervised runtime's degradation sessions, which
    need to prepare several machines identically. *)
let load_image (spec : Lis.Spec.t) (tc : Gen.testcase) (st : Machine.State.t) =
  Array.iter
    (fun (addr, w) -> Machine.Memory.write st.mem ~addr ~width:8 w)
    tc.Gen.tc_mem;
  let offsets = Gen.code_offsets spec tc.Gen.tc_code in
  Array.iteri
    (fun i w ->
      let width = offsets.(i + 1) - offsets.(i) in
      Machine.Memory.write st.mem
        ~addr:(Int64.add Gen.code_base (Int64.of_int offsets.(i)))
        ~width w)
    tc.tc_code;
  Array.iter
    (fun (c, i, v) -> Machine.Regfile.write st.regs ~cls:c ~idx:i v)
    tc.tc_regs;
  install_pseudo_os spec st;
  Machine.State.reset st ~pc:Gen.code_base

(** [boot spec tc ...] synthesizes an interface on a fresh machine loaded
    with the testcase image, pseudo-OS installed, pc at the code base. *)
let boot (spec : Lis.Spec.t) (tc : Gen.testcase) ~buildset ~chain ~site_cache
    ?mutate ?obs () : Specsim.Iface.t =
  let iface = Specsim.Synth.make ~chain ~site_cache ?mutate ?obs spec buildset in
  load_image spec tc iface.st;
  iface

(* One lockstep participant: interface plus its call-style driver. *)
type style = Block | One | Step

type drv = { iface : Specsim.Iface.t; style : style; di : Specsim.Di.t }

let driver (iface : Specsim.Iface.t) : drv =
  let style =
    if iface.bs.bs_block then Block
    else if Specsim.Iface.n_entrypoints iface = 1 then One
    else Step
  in
  { iface; style; di = Specsim.Di.create ~info_slots:iface.slots.Specsim.Slots.di_size }

(** [advance d] runs one unit (block / instruction) and returns
    [(retired, entrypoint_calls)] — the latter is what the compiled-in
    "synth.entrypoint_calls" counter must have grown by. *)
let advance (d : drv) : int * int =
  let st = d.iface.st in
  if st.halted then (0, 0)
  else begin
    let before = st.instr_count in
    let eps =
      match d.style with
      | Block ->
        ignore (d.iface.run_block ());
        Int64.to_int (Int64.sub st.instr_count before)
      | One ->
        d.iface.run_one d.di;
        1
      | Step ->
        let di = d.di in
        di.pc <- st.pc;
        di.instr_index <- -1;
        di.fault <- None;
        let n = Specsim.Iface.n_entrypoints d.iface in
        let e = ref 0 in
        while !e < n && not st.halted do
          d.iface.step di !e;
          incr e
        done;
        if not st.halted then d.iface.retire di;
        !e
    in
    (Int64.to_int (Int64.sub st.instr_count before), eps)
  end

let fault_str (st : Machine.State.t) =
  match st.fault with None -> "-" | Some f -> Machine.Fault.to_string f

(** [run_pair spec cfg tc ~buildset] — lockstep one candidate against the
    reference; [None] means full agreement within the budget. [?prof]
    attaches a shared hot-region profiler to every candidate boot, so a
    whole campaign accumulates into one region table (the flame view of
    the campaign). *)
let run_pair (spec : Lis.Spec.t) ?prof (cfg : config) (tc : Gen.testcase)
    ~buildset : divergence option =
  let obs =
    if cfg.check_crossings then Some (Obs.create ?prof ())
    else Option.map (fun p -> Obs.profile_only ~prof:p ()) prof
  in
  let cand =
    driver
      (boot spec tc ~buildset ~chain:cfg.chain ~site_cache:cfg.site_cache
         ?mutate:cfg.mutate ?obs ())
  in
  let refd =
    driver (boot spec tc ~buildset:cfg.reference ~chain:true ~site_cache:true ())
  in
  (* only a fully-instrumented context counts crossings; a profile-only
     one builds seed closures and its registry would read a false 0 *)
  let crossings =
    if cfg.check_crossings then
      Option.map
        (fun (o : Obs.t) ->
          Obs.Registry.counter o.Obs.reg "synth.entrypoint_calls")
        obs
    else None
  in
  let cst = cand.iface.st and rst = refd.iface.st in
  let expected = ref 0 in
  let total = ref 0 in
  let stuck = ref 0 in
  let next_mem = ref cfg.mem_interval in
  let div = ref None in
  let diverge kind detail =
    if !div = None then
      div :=
        Some
          {
            d_buildset = buildset;
            d_kind = kind;
            d_retired = cst.instr_count;
            d_detail = detail;
          }
  in
  let compare_mem () =
    let mc = Machine.Memory.digest cst.mem
    and mr = Machine.Memory.digest rst.mem in
    if not (Int64.equal mc mr) then
      diverge "mem"
        (Printf.sprintf "memory digest 0x%Lx, reference 0x%Lx" mc mr)
  in
  let compare_sync ~mem =
    if cst.halted <> rst.halted then
      diverge "halt"
        (Printf.sprintf "candidate %s, reference %s"
           (if cst.halted then "halted (" ^ fault_str cst ^ ")" else "running")
           (if rst.halted then "halted (" ^ fault_str rst ^ ")" else "running"))
    else if cst.halted && not (String.equal (fault_str cst) (fault_str rst))
    then
      diverge "fault"
        (Printf.sprintf "candidate fault %s, reference %s" (fault_str cst)
           (fault_str rst))
    else if (not cst.halted) && not (Int64.equal cst.pc rst.pc) then
      diverge "pc"
        (Printf.sprintf "fetch pc 0x%Lx, reference 0x%Lx" cst.pc rst.pc);
    if !div = None && not (Int64.equal cst.instr_count rst.instr_count) then
      diverge "count"
        (Printf.sprintf "retired %Ld, reference %Ld" cst.instr_count
           rst.instr_count);
    if !div = None then begin
      let rc = Inject.Watchdog.regs_digest cst.regs
      and rr = Inject.Watchdog.regs_digest rst.regs in
      if not (Int64.equal rc rr) then
        diverge "regs"
          (Printf.sprintf "register digest 0x%Lx, reference 0x%Lx" rc rr)
    end;
    (match crossings with
    | Some c when !div = None && c.Obs.Registry.n <> !expected ->
      diverge "crossings"
        (Printf.sprintf "entrypoint crossings %d, expected %d"
           c.Obs.Registry.n !expected)
    | _ -> ());
    if !div = None && mem then compare_mem ()
  in
  let rec loop () =
    if !div <> None then ()
    else if cst.halted && rst.halted then ()
    else if !total >= cfg.max_instrs then ()
    else begin
      let n, eps = advance cand in
      expected := !expected + eps;
      total := !total + n;
      if n = 0 && not cst.halted then begin
        incr stuck;
        if !stuck > 4 then
          diverge "stuck"
            (Printf.sprintf
               "no forward progress at pc 0x%Lx (invalid block dispatched?)"
               cst.pc)
      end
      else stuck := 0;
      (* the reference follows, one instruction per unit *)
      let fed = ref 0 in
      while !div = None && !fed < n && not rst.halted do
        let m, _ = advance refd in
        if m = 0 && not rst.halted then
          diverge "stuck" "reference made no progress"
        else fed := !fed + m
      done;
      (* a halting instruction retires nothing, so when the candidate
         halts the reference needs one extra unit to take the same fault *)
      if !div = None && cst.halted && not rst.halted then ignore (advance refd);
      if !div = None then
        compare_sync
          ~mem:
            (cst.halted
            ||
            if !total >= !next_mem then begin
              next_mem := !total + cfg.mem_interval;
              true
            end
            else false);
      loop ()
    end
  in
  loop ();
  (* end of budget with both still running: full final comparison,
     including the canonical whole-state digest. Skipped on halt: a
     halted machine's fetch pc is unspecified (a block engine leaves it
     at the block entry), and {!Machine.Checkpoint.digest} includes it. *)
  if !div = None && not cst.halted then begin
    compare_sync ~mem:true;
    if !div = None then begin
      let dc = Machine.Checkpoint.digest cst
      and dr = Machine.Checkpoint.digest rst in
      if not (Int64.equal dc dr) then
        diverge "state"
          (Printf.sprintf "state digest 0x%Lx, reference 0x%Lx" dc dr)
    end
  end;
  !div

(** [run_all spec cfg tc] checks every configured candidate buildset;
    returns all divergences found (empty = conforming testcase). *)
let run_all (spec : Lis.Spec.t) (cfg : config) (tc : Gen.testcase) :
    divergence list =
  List.filter_map (fun bs -> run_pair spec cfg tc ~buildset:bs) cfg.buildsets
