(** Reproducer minimization: delta-debug the instruction list down to a
    minimal diverging core, then simplify the surviving words.

    Shrinking re-runs the oracle against the single buildset that
    diverged; any divergence (not necessarily the same kind) counts as
    "still failing", which is the standard guard against shrink
    slippage stalls. Because generated programs are full of absolute
    code pointers (self-modifying stores, computed jumps), plain
    instruction removal usually breaks the reproduction by shifting
    every later address — so each removal is retried with a pointer
    fixup that slides code-region register values down past the cut.
    The passes — ddmin chunk removal, pairwise removal of non-adjacent
    survivors, and per-word operand simplification — iterate to a
    fixpoint. All steps are deterministic, so the shrunk testcase — and
    the replay of its reproducer file — is stable across runs. *)

type result = {
  s_tc : Gen.testcase;
  s_tests : int;  (** oracle executions spent shrinking *)
}

let shrink (spec : Lis.Spec.t) (cfg : Oracle.config) ~buildset
    (tc : Gen.testcase) : result =
  let tests = ref 0 in
  let still_fails tc' =
    incr tests;
    Option.is_some (Oracle.run_pair spec cfg tc' ~buildset)
  in
  let cur = ref tc in
  (* [remove ~fixup t idxs] drops the instruction slots in [idxs]
     (sorted ascending); with [fixup], register values pointing into the
     code region past a cut slide down by the removed bytes, so
     self-modifying stores and indirect branches keep hitting the same
     surviving instruction. Slot widths come from {!Gen.code_offsets},
     so the slide is exact on mixed-size ISAs too. *)
  let remove ~fixup (t : Gen.testcase) idxs : Gen.testcase =
    let n = Array.length t.Gen.tc_code in
    let keep = Array.make n true in
    List.iter (fun i -> keep.(i) <- false) idxs;
    let code =
      Array.to_list t.tc_code
      |> List.filteri (fun i _ -> keep.(i))
      |> Array.of_list
    in
    if not fixup then { t with Gen.tc_code = code }
    else begin
      let offsets = Gen.code_offsets spec t.tc_code in
      let code_end = Int64.add Gen.code_base (Int64.of_int offsets.(n)) in
      let shift v =
        if Int64.compare v Gen.code_base >= 0 && Int64.compare v code_end < 0
        then
          let removed_below =
            List.fold_left
              (fun acc r ->
                if
                  Int64.compare
                    (Int64.add Gen.code_base (Int64.of_int offsets.(r)))
                    v
                  < 0
                then acc + (offsets.(r + 1) - offsets.(r))
                else acc)
              0 idxs
          in
          Int64.sub v (Int64.of_int removed_below)
        else v
      in
      {
        t with
        Gen.tc_code = code;
        tc_regs = Array.map (fun (c, i, v) -> (c, i, shift v)) t.tc_regs;
      }
    end
  in
  let try_remove_idxs idxs =
    let t = !cur in
    let n = Array.length t.Gen.tc_code in
    if List.length idxs >= n then false
    else begin
      let plain = remove ~fixup:false t idxs in
      if still_fails plain then begin
        cur := plain;
        true
      end
      else begin
        let fixed = remove ~fixup:true t idxs in
        if fixed.tc_regs <> plain.tc_regs && still_fails fixed then begin
          cur := fixed;
          true
        end
        else false
      end
    end
  in
  (* --- ddmin over the instruction array --------------------------- *)
  let try_remove lo len =
    let n = Array.length !cur.Gen.tc_code in
    if len <= 0 || lo >= n then false
    else try_remove_idxs (List.init (min len (n - lo)) (fun k -> lo + k))
  in
  let rec dd chunk =
    let removed = ref false in
    let lo = ref 0 in
    while !lo < Array.length !cur.Gen.tc_code do
      if try_remove !lo chunk then removed := true else lo := !lo + chunk
    done;
    if chunk > 1 then dd (max 1 (chunk / 2))
    else if !removed then dd 1
  in
  (* --- pairwise removal ------------------------------------------- *)
  (* ddmin only ever drops contiguous chunks; a divergence whose setup
     and consumer must leave together (a pointer load plus the store
     through it) can be stuck on non-adjacent pairs. O(n^2) oracle
     runs, but n is small by now. *)
  let drop_pairs () =
    let dropped = ref false in
    let i = ref 0 in
    while !i < Array.length !cur.Gen.tc_code - 1 do
      let j = ref (!i + 2) in
      (* j = i+1 is a contiguous chunk ddmin already tried *)
      while !j < Array.length !cur.Gen.tc_code do
        if try_remove_idxs [ !i; !j ] then dropped := true else incr j
      done;
      incr i
    done;
    !dropped
  in
  (* --- per-word operand minimization ------------------------------ *)
  let decoder = Specsim.Decoder.make spec in
  let try_set p w' =
    let a = !cur.Gen.tc_code in
    if Int64.equal a.(p) w' then false
    else begin
      let b = Array.copy a in
      b.(p) <- w';
      let t = { !cur with Gen.tc_code = b } in
      if still_fails t then begin
        cur := t;
        true
      end
      else false
    end
  in
  let minimize_words () =
    Array.iteri
      (fun p w ->
        let idx = Specsim.Decoder.decode decoder w in
        if idx >= 0 then begin
          let instr = spec.instrs.(idx) in
          (* canonical form first (all free bits zero), else clear each
             free run individually *)
          if not (try_set p instr.i_match) then
            List.iter
              (fun (lo, len) ->
                let mask =
                  if len >= 64 then -1L
                  else Int64.sub (Int64.shift_left 1L len) 1L
                in
                let cleared =
                  Int64.logand
                    !cur.Gen.tc_code.(p)
                    (Int64.lognot (Int64.shift_left mask lo))
                in
                ignore (try_set p cleared))
              (Gen.free_runs spec instr)
        end)
      (Array.copy !cur.Gen.tc_code)
  in
  (* --- fixpoint loop ---------------------------------------------- *)
  let stable = ref false in
  while not !stable do
    let before = !cur in
    if Array.length !cur.Gen.tc_code > 1 then
      dd (max 1 (Array.length !cur.Gen.tc_code / 2));
    ignore (drop_pairs ());
    minimize_words ();
    stable := !cur = before
  done;
  { s_tc = !cur; s_tests = !tests }
