(** tiny16 — a 2-byte-instruction toy ISA (3-bit opcode in bits 13..15)
    shipped as a first-class fuzz target.

    Its reason to exist is the stride bug class: on the three real ISAs
    every instruction is 4 bytes, so an engine that hard-codes a 4-byte
    stride ({!Specsim.Synth.Stride4}) is observationally correct there and
    only a spec with a different [instrsize] can expose it. The dispatch
    test suite uses the same spec for its stride regression. *)

let isa_text =
  {|
isa "tiny16" {
  endian little;
  wordsize 64;
  instrsize 2;
  decodekey 13 3;
}

regclass R 8 width 64 zero 7;

field alu_out : u64;
field eff : u64;

class ri {
  operand ra : R[bits(10,3)] read;
  operand rc : R[bits(7,3)] write;
}

instr ADDI : ri match 0x0000 mask 0xE000 {
  action evaluate { alu_out = ra + sbits(0,7); rc = alu_out; }
}

instr BEQZ match 0x2000 mask 0xE000 {
  operand ra : R[bits(10,3)] read;
  action evaluate { if (ra == 0) { next_pc = pc + 2 + (sbits(0,10) << 1); } }
}

instr SYS match 0x4000 mask 0xE000 {
  action exception { syscall; }
}

instr ADD match 0x6000 mask 0xE000 {
  operand ra : R[bits(10,3)] read;
  operand rb : R[bits(7,3)] read;
  operand rc : R[bits(4,3)] write;
  action evaluate { alu_out = ra + rb; rc = alu_out; }
}

instr STW match 0x8000 mask 0xE000 {
  operand ra : R[bits(10,3)] read;
  operand rb : R[bits(7,3)] read;
  action evaluate { eff = ra + sbits(0,7); }
  action memory { store.u32(eff, rb); }
}

instr LDW match 0xA000 mask 0xE000 {
  operand ra : R[bits(10,3)] read;
  operand rc : R[bits(7,3)] write;
  action evaluate { eff = ra + sbits(0,7); }
  action memory { rc = load.u32(eff); }
}

abi {
  nr = R[0];
  arg0 = R[1];
  arg1 = R[2];
  arg2 = R[3];
  ret = R[0];
}
|}

(** Resolved spec with the twelve canonical buildsets attached. *)
let spec =
  lazy
    (Lis.Sema.load
       [
         {
           Lis.Ast.src_role = Lis.Ast.Isa_description;
           src_name = "tiny16.lis";
           src_text = isa_text;
         };
         {
           Lis.Ast.src_role = Lis.Ast.Buildset_file;
           src_name = "tiny16_buildsets.lis";
           src_text = Specsim.Detail.canonical_buildset_file ();
         };
       ])

(* Hand encoders, for directed tests. *)

let addi ~ra ~imm ~rc =
  Int64.of_int ((0 lsl 13) lor (ra lsl 10) lor (rc lsl 7) lor (imm land 0x7F))

let beqz ~ra ~off =
  Int64.of_int ((1 lsl 13) lor (ra lsl 10) lor (off land 0x3FF))

let sys = Int64.of_int (2 lsl 13)

let add ~ra ~rb ~rc =
  Int64.of_int ((3 lsl 13) lor (ra lsl 10) lor (rb lsl 7) lor (rc lsl 4))

let stw ~ra ~rb ~imm =
  Int64.of_int ((4 lsl 13) lor (ra lsl 10) lor (rb lsl 7) lor (imm land 0x7F))

let ldw ~ra ~imm ~rc =
  Int64.of_int ((5 lsl 13) lor (ra lsl 10) lor (rc lsl 7) lor (imm land 0x7F))
