(** Spec-derived program generation for the conformance fuzzer.

    Programs are generated from the resolved LIS spec itself: encodings
    are built from each instruction's match/mask ({!encoding_with_noise},
    the same construction the decoder property tests use), register
    operand fields are filled within the declared class counts, and the
    remaining free bit runs (immediates, offsets, condition fields) get
    biased values. The bias is aimed at the translation-cache engine's
    weak spots: registers pointing into the code region (self-modifying
    stores), small negative branch displacements (backward branches and
    multi-block loops), pointers near a page boundary (straddling
    accesses) and a deliberate share of syscalls.

    Every draw is a pure function of the testcase seed via
    {!Inject.Prng}, so a testcase is exactly reproducible from
    [(isa, seed, index)] — and a written reproducer needs no generator
    at all: it carries the materialized registers, memory and code. *)

(* Layout shared with {!Workload}: code at 0x1000, scratch data two pages
   up, so a generated program (≤ 64 instructions) never overlaps its
   data region. *)
let code_base = 0x1000L
let data_base = 0x4000L

(** One generated program: initial register values, initial data memory
    and the instruction words to place at {!code_base}. *)
type testcase = {
  tc_isa : string;
  tc_seed : int64;  (** per-program seed every draw below derives from *)
  tc_regs : (int * int * int64) array;  (** class, index, value *)
  tc_mem : (int64 * int64) array;  (** address, 64-bit word *)
  tc_code : int64 array;
}

let width_mask (spec : Lis.Spec.t) =
  if spec.instr_bytes >= 8 then -1L
  else Int64.sub (Int64.shift_left 1L (8 * spec.instr_bytes)) 1L

(** Per-instruction encoding width: narrower than the spec's fetch
    window for compressed parcels of a variable-length ISA. *)
let instr_width_mask (i : Lis.Spec.instr) =
  if i.i_size >= 8 then -1L
  else Int64.sub (Int64.shift_left 1L (8 * i.i_size)) 1L

(** Does [spec] mix encoding sizes (an RVC-style ISA)? Mixed-size-only
    bias draws are gated on this so uniform ISAs' testcase streams stay
    byte-identical. *)
let mixed_size (spec : Lis.Spec.t) =
  Array.exists
    (fun (i : Lis.Spec.instr) -> i.i_size < spec.instr_bytes)
    spec.instrs

(** [encoding_with_noise spec i noise] fills every bit the decoder does
    not constrain with bits from [noise] — the canonical random-encoding
    construction. *)
let encoding_with_noise (_spec : Lis.Spec.t) (i : Lis.Spec.instr) noise =
  Int64.logor i.i_match
    (Int64.logand noise
       (Int64.logand (Int64.lognot i.i_mask) (instr_width_mask i)))

(** [code_offsets spec code] — cumulative byte offsets of the code
    slots ([n+1] entries, the last being the image's total size). Each
    slot occupies its decoded instruction's own width (the fetch window
    width when undecodable) — exactly the layout {!Oracle.load_image}
    writes and the variable-stride engine walks. Reduces to
    [instr_bytes * i] on uniform ISAs. *)
let code_offsets (spec : Lis.Spec.t) (code : int64 array) : int array =
  let n = Array.length code in
  let offs = Array.make (n + 1) 0 in
  if not (mixed_size spec) then
    for i = 0 to n do
      offs.(i) <- spec.instr_bytes * i
    done
  else begin
    let dec = Specsim.Decoder.make spec in
    let off = ref 0 in
    for i = 0 to n - 1 do
      offs.(i) <- !off;
      let idx = Specsim.Decoder.decode dec code.(i) in
      let w = if idx < 0 then spec.instr_bytes else spec.instrs.(idx).i_size in
      off := !off + w
    done;
    offs.(n) <- !off
  end;
  offs

(** Maximal runs [(lo, len)] of encoding bits neither fixed by the
    mask nor covered by an operand field: immediates, displacements,
    sub-opcode and condition fields. *)
let free_runs (_spec : Lis.Spec.t) (i : Lis.Spec.instr) : (int * int) list =
  let bits = 8 * i.i_size in
  let covered = Array.make bits false in
  for b = 0 to bits - 1 do
    if not (Int64.equal (Int64.logand i.i_mask (Int64.shift_left 1L b)) 0L)
    then covered.(b) <- true
  done;
  Array.iter
    (fun (op : Lis.Spec.operand) ->
      for b = op.op_lo to min (bits - 1) (op.op_lo + op.op_len - 1) do
        covered.(b) <- true
      done)
    i.i_operands;
  let runs = ref [] in
  let b = ref 0 in
  while !b < bits do
    if covered.(!b) then incr b
    else begin
      let lo = !b in
      while !b < bits && not covered.(!b) do incr b done;
      runs := (lo, !b - lo) :: !runs
    end
  done;
  List.rev !runs

(* Instruction categories, in bias priority order: an instruction that
   both loads and stores counts as a store, etc. *)
type cat = C_syscall | C_store | C_load | C_branch | C_alu

type ctx = {
  cx_isa : string;
  cx_spec : Lis.Spec.t;
  cx_kinds : Specsim.Classify.kind array;
  cx_cats : int array array;  (** instruction indices per {!cat} *)
}

let cat_index = function
  | C_syscall -> 0
  | C_store -> 1
  | C_load -> 2
  | C_branch -> 3
  | C_alu -> 4

let cat_of (k : Specsim.Classify.kind) =
  if k.is_syscall then C_syscall
  else if k.is_store then C_store
  else if k.is_load then C_load
  else if k.is_branch then C_branch
  else C_alu

let make_ctx ~isa (spec : Lis.Spec.t) : ctx =
  let kinds = Specsim.Classify.of_spec spec in
  let buckets = Array.make 5 [] in
  Array.iteri
    (fun ii k ->
      let c = cat_index (cat_of k) in
      buckets.(c) <- ii :: buckets.(c))
    kinds;
  {
    cx_isa = isa;
    cx_spec = spec;
    cx_kinds = kinds;
    cx_cats = Array.map (fun l -> Array.of_list (List.rev l)) buckets;
  }

(* Draw-plane layout: instruction slot [i] uses index [i]; register
   (c, r) uses 10000 + 256c + r; data word [k] uses 20000 + k. The salt
   separates the decisions made at one index. *)
let draw tc_seed ~index ~salt = Inject.Prng.draw ~seed:tc_seed ~index ~salt
let below tc_seed ~index ~salt n = Inject.Prng.below ~seed:tc_seed ~index ~salt n

let run_value ps ~index ~salt ~is_branch (len : int) : int64 =
  let full = draw ps ~index ~salt in
  let mask =
    if len >= 64 then -1L else Int64.sub (Int64.shift_left 1L len) 1L
  in
  let mode = below ps ~index ~salt:(salt + 1) 10 in
  let small n = Int64.of_int (below ps ~index ~salt:(salt + 2) n) in
  let v =
    if is_branch && len >= 4 then
      (* displacement fields: mostly short backward and short forward
         branches — loops are where translation caches earn their keep *)
      if mode < 4 then Int64.sub mask (small 8) (* -1 .. -8 sign-extended *)
      else if mode < 7 then Int64.add 1L (small 7)
      else full
    else if mode < 3 then 0L
    else if mode < 6 then Int64.add 1L (small 14)
    else if mode = 6 then mask (* all ones: -1 / max immediate *)
    else full
  in
  Int64.logand v mask

(** [gen_word ctx ps ~index ~n_code] generates one instruction word for
    slot [index] of a program [n_code] instructions long. *)
let gen_word (cx : ctx) ps ~index ~n_code:_ : int64 =
  let spec = cx.cx_spec in
  let r = below ps ~index ~salt:0 100 in
  (* 50% plain ALU, then loads / stores / branches / syscalls *)
  let cat =
    if r < 50 then C_alu
    else if r < 64 then C_load
    else if r < 79 then C_store
    else if r < 94 then C_branch
    else C_syscall
  in
  (* Mixed-size hard cases: over-sample branches so compressed backward
     branches land mid-parcel in already-translated blocks. The draws
     are salted, stateless and gated, so uniform ISAs are untouched. *)
  let cat =
    if mixed_size spec && below ps ~index ~salt:5 100 < 20 then C_branch
    else cat
  in
  let bucket =
    let b = cx.cx_cats.(cat_index cat) in
    if Array.length b > 0 then b else cx.cx_cats.(cat_index C_alu)
  in
  let bucket =
    if Array.length bucket > 0 then bucket
    else Array.init (Array.length spec.instrs) (fun i -> i)
  in
  let ii = bucket.(below ps ~index ~salt:1 (Array.length bucket)) in
  (* Half the time, swap in a compressed encoding from the same category
     when one exists: mixed 2/4-byte strides are the whole point. *)
  let ii =
    if mixed_size spec && below ps ~index ~salt:7 2 = 0 then begin
      let compressed =
        Array.to_list bucket
        |> List.filter (fun k -> spec.instrs.(k).i_size < spec.instr_bytes)
      in
      match compressed with
      | [] -> ii
      | l -> List.nth l (below ps ~index ~salt:8 (List.length l))
    end
    else ii
  in
  let instr = spec.instrs.(ii) in
  let is_branch = cx.cx_kinds.(ii).is_branch in
  let enc = ref instr.i_match in
  let put lo len v =
    let mask =
      if len >= 64 then -1L else Int64.sub (Int64.shift_left 1L len) 1L
    in
    let v = Int64.logand v mask in
    (* never disturb bits the decoder matches on *)
    let field = Int64.logand (Int64.shift_left v lo) (Int64.lognot instr.i_mask) in
    enc := Int64.logor !enc field
  in
  Array.iteri
    (fun oi (op : Lis.Spec.operand) ->
      let count = spec.reg_classes.(op.op_cls).count in
      let salt = 10 + (3 * oi) in
      let mode = below ps ~index ~salt 10 in
      let pick =
        if mode < 6 then below ps ~index ~salt:(salt + 1) (min 8 count)
        else if mode = 6 then count - 1
        else below ps ~index ~salt:(salt + 1) count
      in
      put op.op_lo op.op_len (Int64.of_int pick))
    instr.i_operands;
  List.iteri
    (fun ri (lo, len) ->
      let salt = 40 + (4 * ri) in
      put lo len (run_value ps ~index ~salt ~is_branch len))
    (free_runs spec instr);
  Int64.logand !enc (instr_width_mask instr)

(** [reg_value spec ps ~cls ~idx ~offsets] — [offsets] is the code
    image's {!code_offsets}, so code-region pointers land on true
    instruction starts whatever the per-slot widths are (and, on
    mixed-size ISAs, occasionally mid-parcel on purpose). *)
let reg_value (spec : Lis.Spec.t) ps ~cls ~idx ~offsets : int64 =
  let index = Int64.of_int (10_000 + (256 * cls) + idx) in
  let mode = below ps ~index ~salt:0 12 in
  let small n = Int64.of_int (below ps ~index ~salt:1 n) in
  if mode < 3 then small 64
  else if mode < 5 then Int64.add data_base (Int64.mul 8L (small 256))
  else if mode = 5 then
    (* pointer just under the next page boundary: accesses straddle *)
    Int64.add data_base (Int64.add 0xFF8L (small 16))
  else if mode < 9 then begin
    (* pointer into the code region: stores through it self-modify *)
    let n = Array.length offsets - 1 in
    let k = Int64.to_int (small (n + 4)) in
    let off =
      if k <= n then offsets.(k)
      else offsets.(n) + (spec.instr_bytes * (k - n))
    in
    (* mixed-size hard case: land a quarter of them mid-parcel, so
       indirect jumps re-decode the stream at a different phase *)
    let off =
      if mixed_size spec && below ps ~index ~salt:3 4 = 0 then off + 2
      else off
    in
    Int64.add code_base (Int64.of_int off)
  end
  else if mode = 9 then 0L
  else draw ps ~index ~salt:2

(** [case_seed ~seed ~index] — the per-program seed: a splitmix mix of
    the campaign seed and the case index. Every draw of program [index]
    derives from this value and nothing else, so a case's program is
    identical whether generated alone, mid-campaign, or on another
    domain — the property that makes parallel campaigns
    schedule-independent (and that the golden test pins). *)
let case_seed ~seed ~index = Inject.Prng.derive ~seed ~salt:index

(** [generate ctx ~seed ~index] builds program number [index] of the
    campaign keyed by [seed]. *)
let generate (cx : ctx) ~seed ~index : testcase =
  let spec = cx.cx_spec in
  let ps = case_seed ~seed ~index in
  let n_code = 4 + Inject.Prng.below ~seed:ps ~index:(-1L) ~salt:0 16 in
  let code =
    Array.init n_code (fun i ->
        gen_word cx ps ~index:(Int64.of_int i) ~n_code)
  in
  let offsets = code_offsets spec code in
  let regs = ref [] in
  Array.iteri
    (fun cls (def : Machine.Regfile.class_def) ->
      for idx = 0 to def.count - 1 do
        regs := (cls, idx, reg_value spec ps ~cls ~idx ~offsets) :: !regs
      done)
    spec.reg_classes;
  let mem =
    Array.init 12 (fun k ->
        let addr =
          if k < 8 then Int64.add data_base (Int64.of_int (8 * k))
          else Int64.add data_base (Int64.of_int (0xFE8 + (8 * (k - 8))))
        in
        (addr, draw ps ~index:(Int64.of_int (20_000 + k)) ~salt:0))
  in
  {
    tc_isa = cx.cx_isa;
    tc_seed = ps;
    tc_regs = Array.of_list (List.rev !regs);
    tc_mem = mem;
    tc_code = code;
  }
