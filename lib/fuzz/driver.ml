(** Campaign driver: generate → 12-way oracle → shrink → reproducer.

    The budget is counted in oracle executions (one candidate/reference
    lockstep run); shrinking does not consume it. Everything downstream
    of [(isa, seed)] is deterministic. *)

let spec_of_isa = function
  | "tiny" -> Lazy.force Tiny.spec
  | name -> Lazy.force (Workload.find_target name).Workload.spec

(** ISAs a campaign covers with --isa all: the four real ISAs plus the
    2-byte tiny16. A stride defect is observable only where real strides
    differ from 4 — tiny16 everywhere, riscv wherever RVC parcels mix
    into a block. *)
let all_isas = [ "alpha"; "arm"; "ppc"; "riscv"; "tiny" ]

type outcome = {
  o_isa : string;
  o_programs : int;  (** testcases generated *)
  o_execs : int;  (** oracle executions spent searching *)
  o_found : (Gen.testcase * Oracle.divergence) option;
  o_shrunk : (Gen.testcase * Oracle.divergence) option;
      (** minimized testcase and its (re-verified) divergence *)
  o_shrink_tests : int;
}

(* Fleet search: the budget window is scanned in rounds of a few
   programs' worth of slots; each slot regenerates its program from
   [(seed, slot / n_buildsets)] — pure, so any worker can own any slot
   — and the first divergence in slot order wins. The outcome (and its
   reported execs/programs accounting) is exactly the sequential
   hunt's; a round may merely execute a few slots past the hit. *)
let hunt_fleet ~cfg fl ~isa ~seed ~budget : outcome =
  let spec = spec_of_isa isa in
  let cx = Gen.make_ctx ~isa spec in
  let buildsets = Array.of_list cfg.Oracle.buildsets in
  let nbs = Array.length buildsets in
  let workers = Array.make (Fleet.jobs fl) () in
  let chunk = nbs * max 2 (Fleet.jobs fl) in
  let found = ref None in
  let base = ref 0 in
  while !found = None && !base < budget do
    let n = min chunk (budget - !base) in
    let results =
      Fleet.map fl ~workers
        ~tasks:
          (Array.init n (fun i ->
               let k = !base + i in
               fun () ->
                 let tc = Gen.generate cx ~seed ~index:(k / nbs) in
                 match
                   Oracle.run_pair spec cfg tc ~buildset:buildsets.(k mod nbs)
                 with
                 | Some d -> Some (k, tc, d)
                 | None -> None))
    in
    (* ascending slot order: the first hit is the sequential one *)
    Array.iter
      (fun r -> if !found = None then found := r)
      results;
    base := !base + n
  done;
  match !found with
  | None ->
    {
      o_isa = isa;
      o_programs = (budget + nbs - 1) / nbs;
      o_execs = budget;
      o_found = None;
      o_shrunk = None;
      o_shrink_tests = 0;
    }
  | Some (k, tc, d) ->
    let bs = d.Oracle.d_buildset in
    let { Shrink.s_tc; s_tests } = Shrink.shrink spec cfg ~buildset:bs tc in
    let d' =
      match Oracle.run_pair spec cfg s_tc ~buildset:bs with
      | Some d' -> d'
      | None -> d
    in
    {
      o_isa = isa;
      o_programs = (k / nbs) + 1;
      o_execs = k + 1;
      o_found = Some (tc, d);
      o_shrunk = Some (s_tc, d');
      o_shrink_tests = s_tests;
    }

(** [hunt ?cfg ?fleet ~isa ~seed ~budget ()] searches for a divergence,
    stopping at the first one found (then shrinking it) or when [budget]
    oracle executions are spent. [fleet] parallelizes the search over a
    domain pool; the outcome is identical to the sequential scan. *)
let hunt ?(cfg = Oracle.default_config) ?fleet ~isa ~seed ~budget () : outcome
    =
  match fleet with
  | Some fl when Fleet.jobs fl > 1 -> hunt_fleet ~cfg fl ~isa ~seed ~budget
  | _ ->
  let spec = spec_of_isa isa in
  let cx = Gen.make_ctx ~isa spec in
  let execs = ref 0 in
  let programs = ref 0 in
  let found = ref None in
  let index = ref 0 in
  while !found = None && !execs < budget do
    let tc = Gen.generate cx ~seed ~index:!index in
    incr programs;
    incr index;
    List.iter
      (fun bs ->
        if !found = None && !execs < budget then begin
          incr execs;
          match Oracle.run_pair spec cfg tc ~buildset:bs with
          | Some d -> found := Some (tc, d)
          | None -> ()
        end)
      cfg.Oracle.buildsets
  done;
  match !found with
  | None ->
    {
      o_isa = isa;
      o_programs = !programs;
      o_execs = !execs;
      o_found = None;
      o_shrunk = None;
      o_shrink_tests = 0;
    }
  | Some (tc, d) ->
    let bs = d.Oracle.d_buildset in
    let { Shrink.s_tc; s_tests } = Shrink.shrink spec cfg ~buildset:bs tc in
    let d' =
      match Oracle.run_pair spec cfg s_tc ~buildset:bs with
      | Some d' -> d'
      | None -> d (* cannot happen: shrinking preserves divergence *)
    in
    {
      o_isa = isa;
      o_programs = !programs;
      o_execs = !execs;
      o_found = Some (tc, d);
      o_shrunk = Some (s_tc, d');
      o_shrink_tests = s_tests;
    }

(** [replay r] re-runs a reproducer through every buildset its config
    names and returns the per-buildset verdicts, recorded-buildset
    first. Deterministic: same file, same verdicts, same strings. *)
let replay (r : Repro.t) : (string * Oracle.divergence option) list =
  let spec = spec_of_isa r.Repro.r_tc.Gen.tc_isa in
  let buildsets =
    match r.r_buildset with
    | Some bs ->
      bs :: List.filter (fun b -> not (String.equal b bs)) r.r_cfg.Oracle.buildsets
    | None -> r.r_cfg.Oracle.buildsets
  in
  List.map
    (fun bs -> (bs, Oracle.run_pair spec r.r_cfg r.r_tc ~buildset:bs))
    buildsets
