(** Deterministic replay files for fuzzer-found divergences.

    A reproducer carries the fully materialized testcase (registers,
    data memory, code words) plus the oracle configuration that showed
    the divergence, so replaying needs no generator and no seed
    arithmetic: `lisim fuzz --isa <isa> --replay FILE` rebuilds the exact
    machines and reports the same verdicts, byte for byte. The format is
    line-based text, versioned by the header line. *)

let header = "lisim-fuzz-repro v1"

let to_string (cfg : Oracle.config) ?buildset (tc : Gen.testcase) : string =
  let b = Buffer.create 1024 in
  let line fmt = Printf.ksprintf (fun s -> Buffer.add_string b (s ^ "\n")) fmt in
  line "%s" header;
  line "isa %s" tc.Gen.tc_isa;
  line "seed 0x%Lx" tc.tc_seed;
  (match buildset with Some bs -> line "buildset %s" bs | None -> ());
  (match cfg.Oracle.mutate with
  | Some m -> line "mutate %s" (Specsim.Synth.mutation_to_string m)
  | None -> ());
  if not cfg.chain then line "chain off";
  if not cfg.site_cache then line "site-cache off";
  line "max-instrs %d" cfg.max_instrs;
  Array.iter (fun (c, i, v) -> line "reg %d %d 0x%Lx" c i v) tc.tc_regs;
  Array.iter (fun (a, v) -> line "mem 0x%Lx 0x%Lx" a v) tc.tc_mem;
  Array.iter (fun w -> line "code 0x%Lx" w) tc.tc_code;
  line "end";
  Buffer.contents b

let write ~path (cfg : Oracle.config) ?buildset (tc : Gen.testcase) : unit =
  let oc = open_out path in
  output_string oc (to_string cfg ?buildset tc);
  close_out oc

type t = {
  r_tc : Gen.testcase;
  r_buildset : string option;  (** the buildset recorded as diverging *)
  r_cfg : Oracle.config;
}

exception Bad_repro of string

let bad fmt = Printf.ksprintf (fun m -> raise (Bad_repro m)) fmt

let parse (text : string) : t =
  let lines =
    String.split_on_char '\n' text
    |> List.map String.trim
    |> List.filter (fun l -> l <> "" && not (String.length l > 0 && l.[0] = '#'))
  in
  (match lines with
  | h :: _ when String.equal h header -> ()
  | h :: _ -> bad "unsupported header %S" h
  | [] -> bad "empty reproducer");
  let isa = ref "" in
  let seed = ref 0L in
  let buildset = ref None in
  let cfg = ref Oracle.default_config in
  let regs = ref [] and mem = ref [] and code = ref [] in
  let ended = ref false in
  List.iteri
    (fun ln l ->
      if ln = 0 || !ended then ()
      else
        match String.split_on_char ' ' l |> List.filter (( <> ) "") with
        | [ "isa"; v ] -> isa := v
        | [ "seed"; v ] -> seed := Int64.of_string v
        | [ "buildset"; v ] -> buildset := Some v
        | [ "mutate"; v ] -> (
          match Specsim.Synth.mutation_of_string v with
          | Some m -> cfg := { !cfg with Oracle.mutate = Some m }
          | None -> bad "unknown mutation %S" v)
        | [ "chain"; "off" ] -> cfg := { !cfg with Oracle.chain = false }
        | [ "site-cache"; "off" ] ->
          cfg := { !cfg with Oracle.site_cache = false }
        | [ "max-instrs"; v ] ->
          cfg := { !cfg with Oracle.max_instrs = int_of_string v }
        | [ "reg"; c; i; v ] ->
          regs := (int_of_string c, int_of_string i, Int64.of_string v) :: !regs
        | [ "mem"; a; v ] -> mem := (Int64.of_string a, Int64.of_string v) :: !mem
        | [ "code"; w ] -> code := Int64.of_string w :: !code
        | [ "end" ] -> ended := true
        | _ -> bad "bad line %d: %S" (ln + 1) l)
    lines;
  if not !ended then bad "missing 'end' line";
  if String.equal !isa "" then bad "missing 'isa' line";
  if !code = [] then bad "no code words";
  {
    r_tc =
      {
        Gen.tc_isa = !isa;
        tc_seed = !seed;
        tc_regs = Array.of_list (List.rev !regs);
        tc_mem = Array.of_list (List.rev !mem);
        tc_code = Array.of_list (List.rev !code);
      };
    r_buildset = !buildset;
    r_cfg = !cfg;
  }

let load ~path : t =
  let ic = open_in_bin path in
  let n = in_channel_length ic in
  let text = really_input_string ic n in
  close_in ic;
  parse text
