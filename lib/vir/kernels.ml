(** The benchmark kernels — SPEC CPU2000int / MediaBench stand-ins.

    Each kernel initializes its own data deterministically, computes a
    checksum, writes it through the emulated OS (observable output) and
    exits with the low checksum byte. They are chosen to reproduce the
    dynamic instruction mixes the paper's workloads exercise:

    - [vec_sum]    streaming arithmetic (art/equake-like regular loops)
    - [list_chase] dependent loads (mcf-like pointer chasing)
    - [matmul]     nested loops, dense address arithmetic
    - [sort]       branchy data-dependent control flow (gcc/crafty-like)
    - [hash_loop]  bit manipulation, shifts and xors (crafty-like)
    - [str_ops]    byte loads/stores and comparisons (gzip/perl-like)
    - [crc32]      branchy bit manipulation (pegwit/gzip-like)
    - [saturate]   clamping filter over bytes (MediaBench image/audio-like)

    All data lives below 0x4000_0000 so 32- and 64-bit targets agree
    (see {!Vir} on the 32-bit word model). *)

open Lang

let data_base = 0x0010_0000l
let out_buf = 0x0008_0000

(* Common epilogue: v4 holds the checksum. Writes it via the OS (byte by
   byte, so big- and little-endian targets emit identical output), then
   exits with its low byte. *)
let epilogue =
  [
    Li (5, Int32.of_int out_buf);
    Stb (4, 5, 0);
    Shri (6, 4, 8);
    Stb (6, 5, 1);
    Shri (6, 4, 16);
    Stb (6, 5, 2);
    Shri (6, 4, 24);
    Stb (6, 5, 3);
    Li (0, 1l) (* sys_write *);
    Li (1, 1l) (* fd *);
    Li (2, Int32.of_int out_buf);
    Li (3, 4l) (* len *);
    Sys;
    Andi (4, 4, 0xff);
    Li (0, 0l) (* sys_exit *);
    Mv (1, 4);
    Sys;
  ]

(* Simple multiplicative generator: v_dst = v_seed * 1103515245 + 12345 *)
let lcg ~seed ~dst ~tmp =
  [ Li (tmp, 1103515245l); Mul (dst, seed, tmp); Addi (dst, dst, 12345) ]

(** Streaming sum over [n] 32-bit elements, initialized in a first pass. *)
let vec_sum ~n =
  [
    Li (8, data_base);
    Li (9, Int32.of_int n) (* counter *);
    Li (10, 0l) (* index/seed *);
    Mv (6, 8) (* cursor *);
    Label "init";
  ]
  @ lcg ~seed:10 ~dst:11 ~tmp:12
  @ [
      Stw (11, 6, 0);
      Addi (6, 6, 4);
      Addi (10, 10, 1);
      Bcond (Ne, 10, 9, "init");
      (* sum pass *)
      Li (4, 0l);
      Li (10, 0l);
      Mv (6, 8);
      Label "sum";
      Ldw (11, 6, 0);
      Add (4, 4, 11);
      Addi (6, 6, 4);
      Addi (10, 10, 1);
      Bcond (Ne, 10, 9, "sum");
    ]
  @ epilogue

(** Pointer chasing: [n] nodes of 8 bytes (next, payload), permuted with a
    stride co-prime to [n]; then [steps] dependent loads. *)
let list_chase ~n ~steps =
  (* node i at data_base + 8*i; next(i) = (i*5 + 1) mod n *)
  [
    Li (8, data_base);
    Li (9, Int32.of_int n);
    Li (10, 0l) (* i *);
    Label "build";
    (* t11 = (i*5+1) mod n — avoid div: j += 5; if j >= n then j -= n (works for stride 5) *)
    Shli (11, 10, 2);
    Add (11, 11, 10);
    Addi (11, 11, 1);
    Label "mod";
    Bcond (Lt, 11, 9, "modok");
    Sub (11, 11, 9);
    Jmp "mod";
    Label "modok";
    (* addr of node i: v12 = base + 8*i *)
    Shli (12, 10, 3);
    Add (12, 12, 8);
    (* next pointer value: base + 8*j *)
    Shli (13, 11, 3);
    Add (13, 13, 8);
    Stw (13, 12, 0);
    (* payload = i ^ 0x5a5a *)
    Li (14, 0x5a5al);
    Xor_ (14, 14, 10);
    Stw (14, 12, 4);
    Addi (10, 10, 1);
    Bcond (Ne, 10, 9, "build");
    (* chase *)
    Li (4, 0l);
    Mv (6, 8) (* current node *);
    Li (10, Int32.of_int steps);
    Li (11, 0l);
    Label "chase";
    Ldw (12, 6, 4) (* payload *);
    Add (4, 4, 12);
    Ldw (6, 6, 0) (* follow next *);
    Addi (11, 11, 1);
    Bcond (Ne, 11, 10, "chase");
  ]
  @ epilogue

(** Dense [n]x[n] 32-bit matrix multiply; checksum is the sum of C. *)
let matmul ~n =
  let a = data_base in
  let b = Int32.add data_base (Int32.of_int (4 * n * n)) in
  let c = Int32.add b (Int32.of_int (4 * n * n)) in
  [
    (* init A and B with small values *)
    Li (8, a);
    Li (9, Int32.of_int (2 * n * n)) (* elements of A and B together *);
    Li (10, 0l);
    Label "init";
    Andi (11, 10, 63);
    Addi (11, 11, 1);
    Stw (11, 8, 0);
    Addi (8, 8, 4);
    Addi (10, 10, 1);
    Bcond (Ne, 10, 9, "init");
    (* triple loop *)
    Li (4, 0l) (* checksum *);
    Li (10, 0l) (* i *);
    Li (14, Int32.of_int n);
    Label "iloop";
    Li (11, 0l) (* j *);
    Label "jloop";
    Li (12, 0l) (* k *);
    Li (5, 0l) (* acc *);
    Label "kloop";
    (* A[i][k]: a + 4*(i*n + k) *)
    Mul (6, 10, 14);
    Add (6, 6, 12);
    Shli (6, 6, 2);
    Li (7, a);
    Add (6, 6, 7);
    Ldw (6, 6, 0);
    (* B[k][j] *)
    Mul (7, 12, 14);
    Add (7, 7, 11);
    Shli (7, 7, 2);
    Li (13, b);
    Add (7, 7, 13);
    Ldw (7, 7, 0);
    Mul (6, 6, 7);
    Add (5, 5, 6);
    Addi (12, 12, 1);
    Bcond (Ne, 12, 14, "kloop");
    (* C[i][j] = acc *)
    Mul (6, 10, 14);
    Add (6, 6, 11);
    Shli (6, 6, 2);
    Li (7, c);
    Add (6, 6, 7);
    Stw (5, 6, 0);
    Add (4, 4, 5);
    Addi (11, 11, 1);
    Bcond (Ne, 11, 14, "jloop");
    Addi (10, 10, 1);
    Bcond (Ne, 10, 14, "iloop");
  ]
  @ epilogue

(** Bubble sort of [n] pseudo-random elements; checksum mixes the sorted
    array so ordering errors are observable. *)
let sort ~n =
  [
    Li (8, data_base);
    Li (9, Int32.of_int n);
    Li (10, 0l);
    Mv (6, 8);
    Label "init";
  ]
  @ lcg ~seed:10 ~dst:11 ~tmp:12
  @ [
      Andi (11, 11, 255);
      Stw (11, 6, 0);
      Addi (6, 6, 4);
      Addi (10, 10, 1);
      Bcond (Ne, 10, 9, "init");
      (* outer: n-1 passes *)
      Li (10, 0l) (* pass *);
      Addi (13, 9, -1) (* n-1 *);
      Label "outer";
      Li (11, 0l) (* index *);
      Mv (6, 8);
      Label "inner";
      Ldw (12, 6, 0);
      Ldw (14, 6, 4);
      Bcond (Ge, 14, 12, "noswap");
      Stw (14, 6, 0);
      Stw (12, 6, 4);
      Label "noswap";
      Addi (6, 6, 4);
      Addi (11, 11, 1);
      Bcond (Ne, 11, 13, "inner");
      Addi (10, 10, 1);
      Bcond (Ne, 10, 13, "outer");
      (* checksum: sum of a[i] * (i+1) *)
      Li (4, 0l);
      Li (10, 0l);
      Mv (6, 8);
      Label "ck";
      Ldw (11, 6, 0);
      Addi (12, 10, 1);
      Mul (11, 11, 12);
      Add (4, 4, 11);
      Addi (6, 6, 4);
      Addi (10, 10, 1);
      Bcond (Ne, 10, 9, "ck");
    ]
  @ epilogue

(** FNV-1a-style hash over a [len]-byte buffer, repeated [rounds] times. *)
let hash_loop ~len ~rounds =
  [
    (* fill buffer with bytes *)
    Li (8, data_base);
    Li (9, Int32.of_int len);
    Li (10, 0l);
    Label "fill";
    Andi (11, 10, 255);
    Stb (11, 8, 0);
    Addi (8, 8, 1);
    Addi (10, 10, 1);
    Bcond (Ne, 10, 9, "fill");
    Li (4, 0x1505l) (* hash state *);
    Li (13, Int32.of_int rounds);
    Li (14, 0l) (* round *);
    Label "round";
    Li (8, data_base);
    Li (10, 0l);
    Label "byte";
    Ldb (11, 8, 0);
    Xor_ (4, 4, 11);
    (* hash = hash * 33 (shift+add) *)
    Shli (12, 4, 5);
    Add (4, 4, 12);
    Addi (8, 8, 1);
    Addi (10, 10, 1);
    Bcond (Ne, 10, 9, "byte");
    Addi (14, 14, 1);
    Bcond (Ne, 14, 13, "round");
  ]
  @ epilogue

(** Byte-wise copy + compare over [len] bytes, [rounds] times. *)
let str_ops ~len ~rounds =
  let src = data_base in
  let dst = Int32.add data_base (Int32.of_int (len + 64)) in
  [
    Li (8, src);
    Li (9, Int32.of_int len);
    Li (10, 0l);
    Label "fill";
    Andi (11, 10, 127);
    Addi (11, 11, 32);
    Stb (11, 8, 0);
    Addi (8, 8, 1);
    Addi (10, 10, 1);
    Bcond (Ne, 10, 9, "fill");
    Li (4, 0l);
    Li (13, Int32.of_int rounds);
    Li (14, 0l);
    Label "round";
    (* memcpy *)
    Li (8, src);
    Li (7, dst);
    Li (10, 0l);
    Label "copy";
    Ldb (11, 8, 0);
    Stb (11, 7, 0);
    Addi (8, 8, 1);
    Addi (7, 7, 1);
    Addi (10, 10, 1);
    Bcond (Ne, 10, 9, "copy");
    (* compare and count matches of a needle byte *)
    Li (7, dst);
    Li (10, 0l);
    Li (12, 65l) (* needle 'A' *);
    Label "scan";
    Ldb (11, 7, 0);
    Bcond (Ne, 11, 12, "nomatch");
    Addi (4, 4, 1);
    Label "nomatch";
    Add (4, 4, 11);
    Addi (7, 7, 1);
    Addi (10, 10, 1);
    Bcond (Ne, 10, 9, "scan");
    Addi (14, 14, 1);
    Bcond (Ne, 14, 13, "round");
  ]
  @ epilogue

(** Bitwise CRC-32 over a [len]-byte buffer, [rounds] times — branchy bit
    manipulation in the style of MediaBench's pegwit/gzip inner loops. *)
let crc32 ~len ~rounds =
  [
    Li (8, data_base);
    Li (9, Int32.of_int len);
    Li (10, 0l);
    Label "fill";
    Andi (11, 10, 255);
    Xor_ (11, 11, 10);
    Andi (11, 11, 255);
    Stb (11, 8, 0);
    Addi (8, 8, 1);
    Addi (10, 10, 1);
    Bcond (Ne, 10, 9, "fill");
    Li (4, -1l) (* crc state *);
    Li (13, Int32.of_int rounds);
    Li (14, 0l);
    Label "round";
    Li (8, data_base);
    Li (10, 0l);
    Label "byte";
    Ldb (11, 8, 0);
    Xor_ (4, 4, 11);
    (* 8 bit steps: crc = (crc >> 1) ^ (crc & 1 ? 0xEDB88320 : 0) *)
    Li (12, 8l);
    Label "bit";
    Andi (11, 4, 1);
    Shri (4, 4, 1);
    Bcond (Eq, 11, 0, "nopoly");
    Li (7, 0xEDB88320l);
    Xor_ (4, 4, 7);
    Label "nopoly";
    Addi (12, 12, -1);
    Bcond (Ne, 12, 0, "bit");
    Addi (8, 8, 1);
    Addi (10, 10, 1);
    Bcond (Ne, 10, 9, "byte");
    Addi (14, 14, 1);
    Bcond (Ne, 14, 13, "round");
  ]
  @ epilogue

(** Saturating 8-bit filter over a byte buffer — the clamping branches of
    MediaBench's image/audio kernels. out[i] = clamp(a[i] + a[i+1] - 96). *)
let saturate ~len ~rounds =
  let src = data_base in
  let dst = Int32.add data_base (Int32.of_int (len + 64)) in
  [
    Li (8, src);
    Li (9, Int32.of_int len);
    Li (10, 0l);
    Label "fill";
    Li (12, 37l);
    Mul (11, 10, 12);
    Addi (11, 11, 11);
    Andi (11, 11, 255);
    Stb (11, 8, 0);
    Addi (8, 8, 1);
    Addi (10, 10, 1);
    Bcond (Ne, 10, 9, "fill");
    Li (4, 0l);
    Li (13, Int32.of_int rounds);
    Li (14, 0l);
    Label "round";
    Li (8, src);
    Li (7, dst);
    Li (10, 1l);
    Label "elem";
    Ldb (11, 8, 0);
    Ldb (12, 8, 1);
    Add (11, 11, 12);
    Addi (11, 11, -96);
    (* clamp to [0, 255] *)
    Li (12, 0l);
    Bcond (Ge, 11, 12, "notlow");
    Li (11, 0l);
    Label "notlow";
    Li (12, 255l);
    Bcond (Lt, 11, 12, "nothigh");
    Li (11, 255l);
    Label "nothigh";
    Stb (11, 7, 0);
    Add (4, 4, 11);
    Addi (8, 8, 1);
    Addi (7, 7, 1);
    Addi (10, 10, 1);
    Bcond (Ne, 10, 9, "elem");
    Addi (14, 14, 1);
    Bcond (Ne, 14, 13, "round");
  ]
  @ epilogue

(** Named kernels at test scale (fast) and bench scale (the paper's runs
    use billions of instructions; we use ~1-2M dynamic instructions per
    kernel so the whole Table II sweep stays in CI time). *)
type sized = { kname : string; program : program }

let test_suite =
  [
    { kname = "vec_sum"; program = vec_sum ~n:256 };
    { kname = "list_chase"; program = list_chase ~n:64 ~steps:512 };
    { kname = "matmul"; program = matmul ~n:8 };
    { kname = "sort"; program = sort ~n:48 };
    { kname = "hash_loop"; program = hash_loop ~len:128 ~rounds:4 };
    { kname = "str_ops"; program = str_ops ~len:96 ~rounds:4 };
    { kname = "crc32"; program = crc32 ~len:64 ~rounds:2 };
    { kname = "saturate"; program = saturate ~len:96 ~rounds:3 };
  ]

(** Pathological workloads: these never exit and exist to exercise
    watchdog / budget handling ([spin] is an architectural fixed point,
    [count_forever] makes progress in a register but never terminates). *)
let pathological =
  [
    { kname = "spin"; program = [ Label "spin"; Jmp "spin" ] };
    {
      kname = "count_forever";
      program = [ Li (4, 0l); Label "loop"; Addi (4, 4, 1); Jmp "loop" ];
    };
  ]

let bench_suite =
  [
    { kname = "vec_sum"; program = vec_sum ~n:20_000 };
    { kname = "list_chase"; program = list_chase ~n:1024 ~steps:60_000 };
    { kname = "matmul"; program = matmul ~n:28 };
    { kname = "sort"; program = sort ~n:300 };
    { kname = "hash_loop"; program = hash_loop ~len:4096 ~rounds:8 };
    { kname = "str_ops"; program = str_ops ~len:4096 ~rounds:6 };
    { kname = "crc32"; program = crc32 ~len:2048 ~rounds:2 };
    { kname = "saturate"; program = saturate ~len:4096 ~rounds:4 };
  ]
