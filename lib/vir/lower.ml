(** Generic assembly support for VIR lowerings.

    A lowering expands each VIR instruction into target instructions; since
    branch displacements depend on final addresses, branch words are emitted
    as fixups resolved in a second pass. Fixed-width targets emit 4-byte
    [Word]/[Fix] items only, and addresses are known as soon as the item
    list is. A mixed-width target (RISC-V with RVC) additionally emits
    2-byte [Half] parcels; such streams are assembled through a
    little-endian byte buffer, zero-padded to a multiple of 4 and repacked
    into 4-byte words — the unit {!Workload.load_image} writes. *)

type item =
  | Word of int64  (** a fully-encoded instruction *)
  | Half of int64
      (** a 2-byte compressed parcel (little-endian targets only) *)
  | Fix of (self_pc:int64 -> target_pc:int64 -> int64) * string
      (** an instruction whose encoding needs the label's address *)
  | Mark of string  (** defines a label at the current position *)

let item_size = function Mark _ -> 0 | Half _ -> 2 | Word _ | Fix _ -> 4

(** [assemble ~base items] resolves labels and returns encoded words. *)
let assemble ~base (items : item list) : int64 list =
  let labels = Hashtbl.create 64 in
  let pc = ref base in
  List.iter
    (fun it ->
      match it with
      | Mark l ->
        if Hashtbl.mem labels l then
          Machine.Sim_error.raisef ~component:"asm"
            ~context:[ ("label", l); ("pc", Printf.sprintf "0x%Lx" !pc) ]
            "duplicate label";
        Hashtbl.add labels l !pc
      | it -> pc := Int64.add !pc (Int64.of_int (item_size it)))
    items;
  let find pc l =
    match Hashtbl.find_opt labels l with
    | Some t -> t
    | None ->
      Machine.Sim_error.raisef ~component:"asm"
        ~context:[ ("label", l); ("pc", Printf.sprintf "0x%Lx" pc) ]
        "unknown label"
  in
  if not (List.exists (function Half _ -> true | _ -> false) items) then begin
    (* uniform 4-byte path: words pass through untouched, so big-endian
       targets (PPC) keep their word-at-a-time framing *)
    let pc = ref base in
    List.filter_map
      (fun it ->
        match it with
        | Mark _ -> None
        | Half _ -> assert false
        | Word w ->
          pc := Int64.add !pc 4L;
          Some w
        | Fix (f, l) ->
          let w = f ~self_pc:!pc ~target_pc:(find !pc l) in
          pc := Int64.add !pc 4L;
          Some w)
      items
  end
  else begin
    let buf = Buffer.create 256 in
    let put v n =
      for i = 0 to n - 1 do
        Buffer.add_char buf
          (Char.chr (Int64.to_int (Int64.shift_right_logical v (8 * i)) land 0xff))
      done
    in
    let pc = ref base in
    List.iter
      (fun it ->
        match it with
        | Mark _ -> ()
        | Half w ->
          put w 2;
          pc := Int64.add !pc 2L
        | Word w ->
          put w 4;
          pc := Int64.add !pc 4L
        | Fix (f, l) ->
          put (f ~self_pc:!pc ~target_pc:(find !pc l)) 4;
          pc := Int64.add !pc 4L)
      items;
    (* zero padding never executes; 0x0000 is an illegal parcel anyway *)
    while Buffer.length buf mod 4 <> 0 do
      Buffer.add_char buf '\000'
    done;
    let words = ref [] in
    let s = Buffer.contents buf in
    for k = (String.length s / 4) - 1 downto 0 do
      let b i = Int64.of_int (Char.code s.[(4 * k) + i]) in
      words :=
        Int64.logor (b 0)
          (Int64.logor
             (Int64.shift_left (b 1) 8)
             (Int64.logor
                (Int64.shift_left (b 2) 16)
                (Int64.shift_left (b 3) 24)))
        :: !words
    done;
    !words
  end

(** Interface each ISA implements to run VIR workloads. *)
module type TARGET = sig
  val name : string

  (** [lower p] expands a validated VIR program. *)
  val lower : Lang.program -> item list
end

(** [encode (module T) ~base p] lowers and assembles in one step. *)
let encode (module T : TARGET) ~base (p : Lang.program) : int64 list =
  Lang.validate p;
  assemble ~base (T.lower p)
