(** Generic assembly support for VIR lowerings.

    A lowering expands each VIR instruction into target instructions; since
    branch displacements depend on final addresses, branch words are emitted
    as fixups resolved in a second pass. All supported targets use fixed
    4-byte instructions, so addresses are known as soon as the item list is. *)

type item =
  | Word of int64  (** a fully-encoded instruction *)
  | Fix of (self_pc:int64 -> target_pc:int64 -> int64) * string
      (** an instruction whose encoding needs the label's address *)
  | Mark of string  (** defines a label at the current position *)

(** [assemble ~base items] resolves labels and returns encoded words. *)
let assemble ~base (items : item list) : int64 list =
  let labels = Hashtbl.create 64 in
  let pc = ref base in
  List.iter
    (fun it ->
      match it with
      | Mark l ->
        if Hashtbl.mem labels l then
          Machine.Sim_error.raisef ~component:"asm"
            ~context:[ ("label", l); ("pc", Printf.sprintf "0x%Lx" !pc) ]
            "duplicate label";
        Hashtbl.add labels l !pc
      | Word _ | Fix _ -> pc := Int64.add !pc 4L)
    items;
  let pc = ref base in
  List.filter_map
    (fun it ->
      match it with
      | Mark _ -> None
      | Word w ->
        pc := Int64.add !pc 4L;
        Some w
      | Fix (f, l) ->
        let target =
          match Hashtbl.find_opt labels l with
          | Some t -> t
          | None ->
            Machine.Sim_error.raisef ~component:"asm"
              ~context:[ ("label", l); ("pc", Printf.sprintf "0x%Lx" !pc) ]
              "unknown label"
        in
        let w = f ~self_pc:!pc ~target_pc:target in
        pc := Int64.add !pc 4L;
        Some w)
    items

(** Interface each ISA implements to run VIR workloads. *)
module type TARGET = sig
  val name : string

  (** [lower p] expands a validated VIR program. *)
  val lower : Lang.program -> item list
end

(** [encode (module T) ~base p] lowers and assembles in one step. *)
let encode (module T : TARGET) ~base (p : Lang.program) : int64 list =
  Lang.validate p;
  assemble ~base (T.lower p)
